package repro

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/exp"
	"repro/internal/gen"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// ParseQuery parses a simple XPath expression such as "/a/b", "/a//c" or
// "/a/c/*".
func ParseQuery(expr string) (Query, error) { return xpath.Parse(expr) }

// MustParseQuery is ParseQuery for static expressions; it panics on error.
func MustParseQuery(expr string) Query { return xpath.MustParse(expr) }

// ParseDocument parses one XML document from r.
func ParseDocument(id DocID, r io.Reader) (*Document, error) {
	root, err := xmldoc.Parse(r)
	if err != nil {
		return nil, err
	}
	return xmldoc.NewDocument(id, root), nil
}

// NewCollection builds a collection from documents with unique IDs.
func NewCollection(docs []*Document) (*Collection, error) { return xmldoc.NewCollection(docs) }

// LoadCollection builds a collection from the .xml files of a directory,
// ordered by file name and assigned IDs 1..n.
func LoadCollection(dir string) (*Collection, error) { return xmldoc.LoadDir(dir) }

// GenerateDocuments produces a synthetic collection from a built-in schema
// (NITFSchema or NASASchema), deterministically for a given seed.
func GenerateDocuments(schema string, numDocs int, seed int64) (*Collection, error) {
	s := dtd.ByName(schema)
	if s == nil {
		return nil, fmt.Errorf("repro: unknown schema %q (have %q, %q)", schema, NITFSchema, NASASchema)
	}
	return gen.Documents(gen.DocConfig{Schema: s, NumDocs: numDocs, Seed: seed})
}

// GenerateQueries produces numQueries satisfiable queries over the
// collection with the paper's workload parameters: maxDepth is D_Q and
// wildcardProb is P.
func GenerateQueries(c *Collection, numQueries, maxDepth int, wildcardProb float64, seed int64) ([]Query, error) {
	return gen.Queries(c, gen.QueryConfig{
		NumQueries:   numQueries,
		MaxDepth:     maxDepth,
		WildcardProb: wildcardProb,
		Seed:         seed,
	})
}

// GenerateWorkload draws numRequests client requests from a query pool.
// zipfS > 1 skews popularity Zipf-style (popular queries are requested by
// many clients); zipfS == 0 draws uniformly. Arrivals are spaced
// arrivalSpacing bytes apart.
func GenerateWorkload(pool []Query, numRequests int, zipfS float64, arrivalSpacing, seed int64) ([]ClientRequest, error) {
	qs, err := gen.Requests(pool, gen.WorkloadConfig{NumRequests: numRequests, ZipfS: zipfS, Seed: seed})
	if err != nil {
		return nil, err
	}
	reqs := make([]ClientRequest, len(qs))
	for i, q := range qs {
		reqs[i] = ClientRequest{Query: q, Arrival: int64(i) * arrivalSpacing}
	}
	return reqs, nil
}

// BuildIndex constructs the Compact Index of a collection under the default
// size model. Use BuildIndexWithModel to override widths.
func BuildIndex(c *Collection) (*Index, error) {
	return core.BuildCI(c, core.DefaultSizeModel())
}

// BuildIndexWithModel constructs the Compact Index under a custom size
// model.
func BuildIndexWithModel(c *Collection, m SizeModel) (*Index, error) {
	return core.BuildCI(c, m)
}

// SaveIndex persists an index to w as a standalone file in the given tier's
// packed layout; LoadIndex is the inverse.
func SaveIndex(w io.Writer, ix *Index, tier core.Tier) error {
	return wire.WriteIndexFile(w, ix, ix.Pack(tier))
}

// LoadIndex reads an index file written by SaveIndex, returning the index
// and the tier it was packed under.
func LoadIndex(r io.Reader) (*Index, core.Tier, error) {
	return wire.ReadIndexFile(r)
}

// FilterDocuments evaluates a query set over the collection with the shared
// NFA filter (the server-side YFilter step), returning one sorted DocID
// slice per query.
func FilterDocuments(c *Collection, queries []Query) [][]DocID {
	return yfilter.New(queries).Filter(c)
}

// NewScheduler returns a broadcast scheduler by name: "leelo" (the paper's
// policy), "fcfs", "mrf" or "rxw".
func NewScheduler(name string) (Scheduler, error) { return schedule.New(name) }

// SchedulerNames lists the available scheduling policies.
func SchedulerNames() []string { return schedule.Names() }

// Simulate runs the discrete-event broadcast simulation to completion.
func Simulate(cfg SimulationConfig) (*SimulationResult, error) { return sim.Run(cfg) }

// RunRestartSim executes a deterministic cycle-clocked broadcast run over a
// durability journal. With CrashSeed or TornAfter set, the run is killed
// mid-pipeline, recovered from the journal, and resumed; its per-cycle wire
// hashes and pending keys must match a crash-free control run of the same
// script (the crash-equivalence property the journal guarantees).
func RunRestartSim(cfg RestartSimConfig) (*RestartSimResult, error) { return sim.RunRestart(cfg) }

// Experiments lists every reproducible table and figure of the paper's
// evaluation (plus this repository's ablations) in execution order.
func Experiments() []Experiment { return exp.Experiments() }

// RunExperiment executes one experiment by ID (e.g. "fig11a") under the
// given configuration and returns its result table.
func RunExperiment(id string, cfg ExperimentConfig) (*ResultTable, error) {
	e, err := exp.Find(id)
	if err != nil {
		return nil, err
	}
	return e.Run(cfg)
}

// RunAllExperiments executes every experiment and writes the rendered
// tables to w.
func RunAllExperiments(w io.Writer, cfg ExperimentConfig) error { return exp.RunAll(w, cfg) }

// EngineBenchResult reports the assembly engine's concurrency profile:
// serial-vs-parallel timings for document matching and DataGuide merging,
// full-vs-incremental PCI re-pruning under query churn, full-vs-incremental
// cycle planning under pending-set churn, plus the per-stage telemetry of a
// full simulation.
type EngineBenchResult = exp.EngineBenchResult

// RunEngineBenchmark measures the engine's concurrent stages on the
// configured workload (cmd/bcast-exp -bench-engine writes the result as
// BENCH_engine.json).
func RunEngineBenchmark(cfg ExperimentConfig) (*EngineBenchResult, error) {
	return exp.RunEngineBench(cfg)
}

// CompareEngineBenchmarks gates a fresh engine benchmark against a recorded
// baseline, returning an error when the build-stage or schedule-stage mean
// regressed by more than tolerance (a fraction, e.g. 0.25 for 25%). Used by
// CI via cmd/bcast-exp -bench-baseline.
func CompareEngineBenchmarks(baseline, current *EngineBenchResult, tolerance float64) (string, error) {
	return exp.CompareEngineBench(baseline, current, tolerance)
}
