// Command bcast-sim runs one on-demand broadcast simulation and prints the
// server- and client-side metrics: index sizes per cycle, tuning time and
// access time per client, and their means.
//
// Usage:
//
//	bcast-sim -mode two-tier -docs 100 -nq 500 -p 0.1 -dq 5
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-sim", flag.ContinueOnError)
	var (
		mode      = fs.String("mode", "two-tier", "index organisation: one-tier or two-tier")
		indexEnc  = fs.String("index-enc", "node", "first-tier wire layout: node or succinct (two-tier only)")
		channels  = fs.Int("channels", 1, "parallel broadcast channels K at fixed aggregate bandwidth (two-tier only)")
		schema    = fs.String("schema", "nitf", "document schema: nitf or nasa")
		dataDir   = fs.String("data", "", "directory of .xml files to broadcast (overrides -schema/-docs)")
		docs      = fs.Int("docs", 50, "number of generated documents")
		nq        = fs.Int("nq", 100, "number of client requests")
		p         = fs.Float64("p", 0.1, "wildcard probability")
		dq        = fs.Int("dq", 5, "maximum query depth")
		capacity  = fs.Int("capacity", 100_000, "cycle document budget in bytes")
		compress  = fs.Bool("compress", false, "model the transport's per-frame DEFLATE: cycles accounted at compressed air size (K=1 only)")
		sched     = fs.String("scheduler", "leelo", "scheduler: leelo, fcfs, mrf or rxw")
		seed      = fs.Int64("seed", 1, "random seed")
		adaptive  = fs.Bool("adaptive", false, "enable the self-tuning admission controller (auto-picked churn thresholds; health in the engine line)")
		targetLat = fs.Duration("target-latency", 0, "adaptive controller's per-cycle assembly-latency goal (0 = default)")
		verbose   = fs.Bool("v", false, "print per-cycle and per-client detail")

		restart   = fs.Bool("restart-check", false, "run the crash-restart equivalence check instead of the metrics simulation: a crashed-and-recovered journaled run must be wire-identical to a crash-free control")
		crashSeed = fs.Int64("crash-seed", 1, "seed choosing the injected crash's pipeline stage and cycle (-restart-check)")
		cycles    = fs.Int("cycles", 40, "committed cycles per leg (-restart-check)")
		stateDir  = fs.String("state-dir", "", "journal directory root for -restart-check (empty = temp, removed after)")
		fsync     = fs.Bool("fsync", false, "fsync journal appends (-restart-check)")
		snapEvery = fs.Int("snapshot-every", 0, "journal records between compacting snapshots, 0 = default (-restart-check)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var bm repro.BroadcastMode
	switch *mode {
	case "one-tier":
		bm = repro.OneTierMode
	case "two-tier":
		bm = repro.TwoTierMode
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	enc, err := repro.ParseIndexEncoding(*indexEnc)
	if err != nil {
		return err
	}

	var coll *repro.Collection
	if *dataDir != "" {
		coll, err = repro.LoadCollection(*dataDir)
	} else {
		coll, err = repro.GenerateDocuments(*schema, *docs, *seed)
	}
	if err != nil {
		return err
	}
	queries, err := repro.GenerateQueries(coll, *nq, *dq, *p, *seed+1)
	if err != nil {
		return err
	}
	reqs := make([]repro.ClientRequest, len(queries))
	for i, q := range queries {
		reqs[i] = repro.ClientRequest{Query: q, Arrival: int64(i) * 100}
	}
	if *restart {
		return restartCheck(coll, queries, restartCheckConfig{
			sched:     *sched,
			channels:  *channels,
			capacity:  *capacity,
			cycles:    *cycles,
			crashSeed: *crashSeed,
			stateDir:  *stateDir,
			fsync:     *fsync,
			snapEvery: *snapEvery,
			verbose:   *verbose,
		})
	}
	scheduler, err := repro.NewScheduler(*sched)
	if err != nil {
		return err
	}
	res, err := repro.Simulate(repro.SimulationConfig{
		Collection:     coll,
		Mode:           bm,
		IndexEncoding:  enc,
		Channels:       *channels,
		Scheduler:      scheduler,
		CycleCapacity:  *capacity,
		Requests:       reqs,
		Compress:       *compress,
		Adaptive:       *adaptive,
		AdaptiveTarget: *targetLat,
	})
	if err != nil {
		return err
	}

	fmt.Printf("mode=%s enc=%s schema=%s docs=%d data=%dB requests=%d scheduler=%s channels=%d compress=%v\n",
		*mode, enc, *schema, coll.Len(), coll.TotalSize(), len(reqs), *sched, *channels, *compress)
	fmt.Printf("cycles broadcast:        %d\n", res.NumCycles())
	fmt.Printf("mean cycle length:       %.0f B\n", res.MeanCycleBytes())
	fmt.Printf("mean index size (L_I):   %.0f B\n", res.MeanIndexBytes())
	fmt.Printf("mean 2nd tier (L_O):     %.0f B\n", res.MeanSecondTierBytes())
	fmt.Printf("mean cycles per query:   %.1f\n", res.MeanCyclesListened())
	fmt.Printf("mean index tuning:       %.0f B\n", res.MeanIndexTuningBytes())
	fmt.Printf("mean doc tuning:         %.0f B\n", res.MeanDocTuningBytes())
	fmt.Printf("mean access time:        %.0f B\n", res.MeanAccessBytes())
	fmt.Printf("access p50 / p99:        %.0f / %.0f B\n",
		res.AccessBytesPercentile(50), res.AccessBytesPercentile(99))
	fmt.Printf("index tuning p50 / p99:  %.0f / %.0f B\n",
		res.IndexTuningBytesPercentile(50), res.IndexTuningBytesPercentile(99))
	fmt.Printf("engine:                  %s\n", res.Engine)

	if *verbose {
		fmt.Println("\ncycle  start      L_I    L_O   docs  docBytes  pending")
		for _, c := range res.Cycles {
			fmt.Printf("%5d  %9d  %5d  %5d  %4d  %8d  %7d\n",
				c.Number, c.Start, c.IndexBytes, c.SecondTierBytes, c.NumDocs, c.DocBytes, c.Pending)
		}
		fmt.Println("\nclient  arrival    tuning(idx)  tuning(doc)  access     cycles  query")
		for i, cl := range res.Clients {
			fmt.Printf("%6d  %9d  %11d  %11d  %9d  %6d  %s\n",
				i, cl.Arrival, cl.IndexTuningBytes, cl.DocTuningBytes, cl.AccessBytes, cl.CyclesListened, cl.Query)
		}
	}
	return nil
}

type restartCheckConfig struct {
	sched     string
	channels  int
	capacity  int
	cycles    int
	crashSeed int64
	stateDir  string
	fsync     bool
	snapEvery int
	verbose   bool
}

// restartCheck runs the same admission script twice over a durability
// journal — once crash-free, once with a seed-chosen mid-pipeline crash
// followed by warm recovery — and verifies the two runs are wire-identical
// cycle by cycle.
func restartCheck(coll *repro.Collection, queries []repro.Query, cfg restartCheckConfig) error {
	// Queries with empty result sets never enter the pending set; the
	// remainder are admitted evenly across the first two thirds of the run
	// so the crash window always has live pending state around it.
	matches := repro.FilterDocuments(coll, queries)
	var live []repro.Query
	for i, q := range queries {
		if len(matches[i]) > 0 {
			live = append(live, q)
		}
	}
	if len(live) == 0 {
		return fmt.Errorf("restart-check: no query in the workload matches any document")
	}
	span := cfg.cycles * 2 / 3
	if span < 1 {
		span = 1
	}
	script := make([]repro.ScriptedRequest, len(live))
	for i, q := range live {
		script[i] = repro.ScriptedRequest{Cycle: int64(i * span / len(live)), Query: q}
	}

	root := cfg.stateDir
	if root == "" {
		tmp, err := os.MkdirTemp("", "bcast-sim-restart")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		root = tmp
	}

	leg := func(dir string, crashSeed int64) (*repro.RestartSimResult, error) {
		scheduler, err := repro.NewScheduler(cfg.sched)
		if err != nil {
			return nil, err
		}
		return repro.RunRestartSim(repro.RestartSimConfig{
			Collection:    coll,
			Scheduler:     scheduler,
			Channels:      cfg.channels,
			CycleCapacity: cfg.capacity,
			Script:        script,
			Cycles:        int64(cfg.cycles),
			StateDir:      dir,
			Fsync:         cfg.fsync,
			SnapshotEvery: cfg.snapEvery,
			CrashSeed:     crashSeed,
		})
	}
	control, err := leg(filepath.Join(root, "control"), 0)
	if err != nil {
		return err
	}
	crashed, err := leg(filepath.Join(root, "crash"), cfg.crashSeed)
	if err != nil {
		return err
	}

	fmt.Printf("restart-check: %d requests over %d cycles, K=%d, seed-%d crash\n",
		len(script), cfg.cycles, cfg.channels, cfg.crashSeed)
	if crashed.Crashed {
		fmt.Printf("crash:     stage %s, cycle %d\n", crashed.CrashStage, crashed.CrashCycle)
		fmt.Printf("recovery:  generation %d, %d pending restored, truncated=%v\n",
			crashed.Generation, crashed.RecoveredPending, crashed.RecoveredTruncated)
	} else {
		fmt.Printf("crash:     seed %d never reached its probe point (run was crash-free)\n", cfg.crashSeed)
	}
	if len(control.CycleHashes) != len(crashed.CycleHashes) {
		return fmt.Errorf("restart-check: control committed %d cycles, crashed run %d",
			len(control.CycleHashes), len(crashed.CycleHashes))
	}
	for i := range control.CycleHashes {
		if control.CycleHashes[i] != crashed.CycleHashes[i] {
			return fmt.Errorf("restart-check: cycle %d wire hash diverged: control %016x, recovered %016x",
				i, control.CycleHashes[i], crashed.CycleHashes[i])
		}
		if control.PendingKeys[i] != crashed.PendingKeys[i] {
			return fmt.Errorf("restart-check: cycle %d pending set diverged", i)
		}
	}
	if cfg.verbose {
		fmt.Println("\ncycle  wire hash         pending")
		for i, h := range control.CycleHashes {
			n := 0
			if control.PendingKeys[i] != "" {
				n = strings.Count(control.PendingKeys[i], ";")
			}
			fmt.Printf("%5d  %016x  %7d\n", i, h, n)
		}
	}
	fmt.Printf("verdict:   equivalent (%d cycles wire-identical, pending sets match)\n", len(control.CycleHashes))
	return nil
}
