package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestRunBothModes(t *testing.T) {
	for _, mode := range []string{"one-tier", "two-tier"} {
		t.Run(mode, func(t *testing.T) {
			out, err := capture(t, []string{"-mode", mode, "-docs", "10", "-nq", "8", "-capacity", "40000"})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range []string{"cycles broadcast", "mean index tuning", "mean access time"} {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestVerbose(t *testing.T) {
	out, err := capture(t, []string{"-docs", "8", "-nq", "5", "-capacity", "40000", "-v"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "cycle  start") || !strings.Contains(out, "client  arrival") {
		t.Errorf("verbose output missing detail:\n%s", out)
	}
}

func TestSchedulers(t *testing.T) {
	for _, s := range []string{"fcfs", "mrf", "rxw"} {
		if _, err := capture(t, []string{"-docs", "8", "-nq", "5", "-capacity", "40000", "-scheduler", s}); err != nil {
			t.Errorf("scheduler %s: %v", s, err)
		}
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-mode", "three-tier"},
		{"-schema", "bogus"},
		{"-scheduler", "bogus", "-docs", "5", "-nq", "3"},
		{"-bogusflag"},
	}
	for _, args := range tests {
		if _, err := capture(t, args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}

func TestDataDirectory(t *testing.T) {
	dir := t.TempDir()
	for i, src := range []string{"<a><b/><b/></a>", "<a><c/></a>", "<a><b><c/></b></a>"} {
		if err := os.WriteFile(dir+"/"+string(rune('a'+i))+".xml", []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := capture(t, []string{"-data", dir, "-nq", "3", "-capacity", "1000"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "docs=3") {
		t.Errorf("data dir not loaded:\n%s", out)
	}
}

func TestDataDirectoryMissing(t *testing.T) {
	if _, err := capture(t, []string{"-data", "/does/not/exist"}); err == nil {
		t.Error("missing data dir succeeded")
	}
}
