package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro"
)

func makeCapture(t *testing.T) string {
	t.Helper()
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 8, 1)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	srv, err := repro.StartBroadcastServer(repro.BroadcastServerConfig{
		Collection:    coll,
		CycleCapacity: 40_000,
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartBroadcastServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	cl, err := repro.DialBroadcast(srv.UplinkAddr(), srv.BroadcastAddr(), repro.SizeModel{})
	if err != nil {
		t.Fatalf("DialBroadcast: %v", err)
	}
	t.Cleanup(cl.Close)
	// Keep the channel busy for the whole recording: a drained pending set
	// stops the cycle loop and would starve the recorder of cycle heads.
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	t.Cleanup(func() { close(feederStop); <-feederDone })
	go func() {
		defer close(feederDone)
		q := repro.MustParseQuery("/nitf/head/title")
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			if err := cl.Submit(q); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	path := filepath.Join(t.TempDir(), "session.xbc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if _, err := repro.RecordBroadcast(ctx, srv.BroadcastAddr(), 2, f); err != nil {
		t.Fatalf("RecordBroadcast: %v", err)
	}
	f.Close()
	return path
}

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestInspect(t *testing.T) {
	path := makeCapture(t)
	out, err := capture(t, []string{"-in", path})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "captured cycles") || !strings.Contains(out, "index:") {
		t.Errorf("inspect output malformed:\n%s", out)
	}
}

func TestInspectWithQuery(t *testing.T) {
	path := makeCapture(t)
	out, err := capture(t, []string{"-in", path, "-query", "/nitf/head/title"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "/nitf/head/title ->") {
		t.Errorf("query evaluation missing:\n%s", out)
	}
}

func TestInspectErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -in succeeded")
	}
	if err := run([]string{"-in", "/does/not/exist"}); err == nil {
		t.Error("missing file succeeded")
	}
	path := makeCapture(t)
	if err := run([]string{"-in", path, "-query", "not a path"}); err == nil {
		t.Error("bad query succeeded")
	}
	bad := filepath.Join(t.TempDir(), "bad.xbc")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}); err == nil {
		t.Error("junk capture succeeded")
	}
}

func TestInspectIndexFile(t *testing.T) {
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 6, 2)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	ix, err := repro.BuildIndex(coll)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	path := filepath.Join(t.TempDir(), "ci.xidx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveIndex(f, ix, repro.FirstTier); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	f.Close()
	out, err := capture(t, []string{"-index", path, "-query", "/nitf"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "index file") || !strings.Contains(out, "/nitf ->") {
		t.Errorf("index inspection malformed:\n%s", out)
	}
}

func TestInspectIndexFileErrors(t *testing.T) {
	if err := run([]string{"-index", "/does/not/exist"}); err == nil {
		t.Error("missing index file succeeded")
	}
	path := filepath.Join(t.TempDir(), "junk.xidx")
	if err := os.WriteFile(path, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-index", path}); err == nil {
		t.Error("junk index file succeeded")
	}
}
