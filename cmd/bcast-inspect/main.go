// Command bcast-inspect summarises a broadcast capture file produced by
// cmd/bcast-capture: per-cycle segment sizes, decoded index structure and,
// optionally, the answer a query would obtain from each captured index.
//
// Usage:
//
//	bcast-inspect -in session.xbc
//	bcast-inspect -in session.xbc -query /nitf/head/title
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-inspect:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-inspect", flag.ContinueOnError)
	var (
		in      = fs.String("in", "", "capture file from bcast-capture")
		indexIn = fs.String("index", "", "standalone index file from bcast-index")
		query   = fs.String("query", "", "optional XPath query to evaluate against each index")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *indexIn != "" {
		return inspectIndexFile(*indexIn, *query)
	}
	if *in == "" {
		return fmt.Errorf("one of -in or -index is required")
	}
	f, err := os.Open(*in)
	if err != nil {
		return err
	}
	defer f.Close()
	records, err := repro.ReadBroadcastCapture(f)
	if err != nil {
		return err
	}
	var q repro.Query
	if *query != "" {
		q, err = repro.ParseQuery(*query)
		if err != nil {
			return err
		}
	}
	model := repro.DefaultSizeModel()
	fmt.Printf("%d captured cycles\n", len(records))
	for i := range records {
		rec := &records[i]
		ix, err := rec.DecodeIndex(model)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", rec.Number, err)
		}
		st := ix.Stats()
		mode := "one-tier"
		if rec.TwoTier {
			mode = "two-tier"
		}
		fmt.Printf("\ncycle %d (%s): index %d B, 2nd tier %d B, %d docs\n",
			rec.Number, mode, len(rec.IndexSeg), len(rec.SecondTierSeg), len(rec.Docs))
		fmt.Printf("  index: %d nodes (%d leaves), depth %d, max fanout %d, %d attachments over %d docs\n",
			st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout, st.Attachments, st.Docs)
		if entries, err := rec.SecondTier(model); err == nil && entries != nil {
			fmt.Printf("  offsets:")
			for _, e := range entries {
				fmt.Printf(" d%d@%d", e.Doc, e.Offset)
			}
			fmt.Println()
		}
		if *query != "" {
			res := ix.Lookup(q)
			fmt.Printf("  %s -> %v (%d index nodes read)\n", q, res.Docs, len(res.Visited))
		}
	}
	return nil
}

// inspectIndexFile summarises a standalone index file.
func inspectIndexFile(path, query string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	ix, tier, err := repro.LoadIndex(f)
	if err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Printf("index file %s (%v layout)\n", path, tier)
	fmt.Printf("  %d nodes (%d leaves), depth %d, max fanout %d (avg %.2f)\n",
		st.Nodes, st.Leaves, st.MaxDepth, st.MaxFanout, st.AvgFanout)
	fmt.Printf("  %d attachments over %d docs; %d B one-tier / %d B first-tier\n",
		st.Attachments, st.Docs, st.OneTierBytes, st.FirstTierBytes)
	if query != "" {
		q, err := repro.ParseQuery(query)
		if err != nil {
			return err
		}
		res := ix.Lookup(q)
		fmt.Printf("  %s -> %v (%d index nodes read)\n", q, res.Docs, len(res.Visited))
	}
	return nil
}
