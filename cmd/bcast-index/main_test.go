package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestBuildAndSaveCI(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ci.xidx")
	if err := run([]string{"-docs", "10", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	ix, tier, err := repro.LoadIndex(f)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if tier != repro.FirstTier {
		t.Errorf("tier = %v", tier)
	}
	if ix.NumNodes() == 0 {
		t.Error("saved index empty")
	}
}

func TestBuildPrunedOneTier(t *testing.T) {
	out := filepath.Join(t.TempDir(), "pci.xidx")
	if err := run([]string{"-docs", "10", "-queries", "/nitf/head/title", "-tier", "one", "-out", out}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	ix, tier, err := repro.LoadIndex(f)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if tier != repro.OneTier {
		t.Errorf("tier = %v", tier)
	}
	// A PCI pruned to one exact query is a single root-to-leaf path.
	if got := ix.NumNodes(); got != 3 {
		t.Errorf("PCI nodes = %d, want 3 (/nitf/head/title)", got)
	}
}

func TestErrors(t *testing.T) {
	tests := [][]string{
		{"-schema", "bogus"},
		{"-data", "/does/not/exist"},
		{"-queries", "not a path", "-docs", "5"},
		{"-tier", "third", "-docs", "5"},
		{"-out", "/no/such/dir/x.xidx", "-docs", "5"},
		{"-bogus"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}
