// Command bcast-index builds the Compact Index of a document collection,
// optionally prunes it to a pending query set, and saves it as a standalone
// index file (inspectable with cmd/bcast-inspect -index).
//
// Usage:
//
//	bcast-index -docs 100 -out ci.xidx
//	bcast-index -data ./corpus -queries "/nitf/head/title,/nitf//p" -tier first -out pci.xidx
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-index:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-index", flag.ContinueOnError)
	var (
		schema  = fs.String("schema", "nitf", "document schema: nitf or nasa")
		dataDir = fs.String("data", "", "directory of .xml files (overrides -schema/-docs)")
		docs    = fs.Int("docs", 50, "number of generated documents")
		seed    = fs.Int64("seed", 1, "random seed")
		queries = fs.String("queries", "", "comma-separated pending queries; prunes the CI into a PCI")
		tier    = fs.String("tier", "first", "packed layout: one or first")
		out     = fs.String("out", "index.xidx", "output index file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var (
		coll *repro.Collection
		err  error
	)
	if *dataDir != "" {
		coll, err = repro.LoadCollection(*dataDir)
	} else {
		coll, err = repro.GenerateDocuments(*schema, *docs, *seed)
	}
	if err != nil {
		return err
	}
	idx, err := repro.BuildIndex(coll)
	if err != nil {
		return err
	}
	label := "CI"
	if *queries != "" {
		var pending []repro.Query
		for _, expr := range strings.Split(*queries, ",") {
			q, err := repro.ParseQuery(strings.TrimSpace(expr))
			if err != nil {
				return err
			}
			pending = append(pending, q)
		}
		pci, st, err := idx.Prune(pending)
		if err != nil {
			return err
		}
		idx = pci
		label = fmt.Sprintf("PCI (%d -> %d nodes for %d queries)", st.NodesBefore, st.NodesAfter, len(pending))
	}
	var t = repro.FirstTier
	switch *tier {
	case "one":
		t = repro.OneTier
	case "first":
	default:
		return fmt.Errorf("unknown tier %q (want one or first)", *tier)
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := repro.SaveIndex(f, idx, t); err != nil {
		return err
	}
	st := idx.Stats()
	fmt.Printf("wrote %s to %s: %d nodes, %d attachments over %d docs, %d B (%s tier)\n",
		label, *out, st.Nodes, st.Attachments, st.Docs, idx.Size(t), *tier)
	return nil
}
