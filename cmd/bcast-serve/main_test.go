package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestServeSelfDriveForDuration(t *testing.T) {
	if err := run([]string{"-docs", "8", "-selfdrive", "-interval", "5ms", "-for", "300ms"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestServeWithDataDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.xml"), []byte("<a><b/></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-data", dir, "-for", "100ms"}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestServeErrors(t *testing.T) {
	tests := [][]string{
		{"-mode", "three-tier"},
		{"-schema", "bogus"},
		{"-data", "/does/not/exist"},
		{"-bogus"},
		{"-uplink", "256.0.0.1:99999"},
	}
	for _, args := range tests {
		if err := run(args); err == nil {
			t.Errorf("args %v succeeded, want error", args)
		}
	}
}
