// Command bcast-serve runs a live broadcast server over TCP: an uplink port
// accepting XPath query frames and a broadcast port streaming cycles to any
// subscriber (try cmd/bcast-capture against it). With -selfdrive the server
// also feeds itself a trickle of synthetic requests so the channel is busy
// without external clients.
//
// Usage:
//
//	bcast-serve -uplink 127.0.0.1:9001 -broadcast 127.0.0.1:9000 -selfdrive
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-serve", flag.ContinueOnError)
	var (
		uplink    = fs.String("uplink", "127.0.0.1:0", "uplink listen address")
		bcast     = fs.String("broadcast", "127.0.0.1:0", "broadcast listen address")
		schema    = fs.String("schema", "nitf", "document schema: nitf or nasa")
		dataDir   = fs.String("data", "", "directory of .xml files to broadcast (overrides -schema/-docs)")
		docs      = fs.Int("docs", 50, "number of generated documents")
		capacity  = fs.Int("capacity", 100_000, "cycle document budget in bytes")
		mode      = fs.String("mode", "two-tier", "index organisation: one-tier or two-tier")
		indexEnc  = fs.String("index-enc", "node", "first-tier wire layout: node or succinct (two-tier only)")
		channels  = fs.Int("channels", 1, "parallel broadcast channels K (two-tier only; K>1 streams protocol v3)")
		compress  = fs.Bool("compress", false, "per-frame DEFLATE on the downlink and for willing uplinks (K=1 only)")
		muxCredit = fs.Int("mux-credit", 0, "per-stream flow-control window granted to multiplexed uplinks (0 = default)")
		muxCli    = fs.Int("mux-clients", 0, "with -selfdrive: fan the request trickle over this many logical clients on one multiplexed uplink connection (0 = plain client)")
		interval  = fs.Duration("interval", 100*time.Millisecond, "cycle pacing")
		seed      = fs.Int64("seed", 1, "random seed")
		selfdrive = fs.Bool("selfdrive", false, "submit synthetic requests continuously")
		duration  = fs.Duration("for", 0, "stop after this long (default: run until interrupted)")

		maxPending  = fs.Int("max-pending", 0, "admission cap on the pending query set (0 = unlimited)")
		answerCache = fs.Int("answer-cache", 0, "max memoized query answers, LRU-evicted (0 = unlimited)")
		payloadMB   = fs.Int("payload-cache", 0, "max cached document payload megabytes, LRU-evicted (0 = unlimited)")
		buildBudget = fs.Duration("build-budget", 0, "per-cycle index-pruning deadline; overruns broadcast the unpruned CI (0 = none)")
		uplinkRate  = fs.Float64("uplink-rate", 0, "per-connection query rate limit in queries/s (0 = unlimited)")
		uplinkBurst = fs.Int("uplink-burst", 0, "token-bucket burst for -uplink-rate (default 8)")
		pruneChurn  = fs.Float64("prune-churn", 0, "query-churn fraction forcing a full re-prune (0 = default, negative = always re-prune from scratch)")
		schedChurn  = fs.Float64("sched-churn", 0, "pending-churn fraction forcing a demand-index rebuild (0 = default, negative = replan from scratch every cycle)")
		adaptive    = fs.Bool("adaptive", false, "self-tune the admission limits (AIMD over -max-pending/-uplink-rate, auto-picked churn thresholds); static values become seeds")
		targetLat   = fs.Duration("target-latency", 0, "adaptive controller's per-cycle assembly-latency goal (0 = derive from -build-budget or default)")
		pprofAddr   = fs.String("pprof", "", "serve net/http/pprof on this address (e.g. 127.0.0.1:6060; empty = disabled)")

		stateDir  = fs.String("state-dir", "", "durability journal directory: ack-after-durability admissions, warm restart on the same directory (empty = in-memory)")
		fsync     = fs.Bool("fsync", false, "fsync the journal on every append (survives power loss, not just process death)")
		snapEvery = fs.Int("snapshot-every", 0, "journal records between compacting snapshots (0 = default, negative = never)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var bm repro.BroadcastMode
	switch *mode {
	case "one-tier":
		bm = repro.OneTierMode
	case "two-tier":
		bm = repro.TwoTierMode
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	enc, err := repro.ParseIndexEncoding(*indexEnc)
	if err != nil {
		return err
	}
	var coll *repro.Collection
	if *dataDir != "" {
		coll, err = repro.LoadCollection(*dataDir)
	} else {
		coll, err = repro.GenerateDocuments(*schema, *docs, *seed)
	}
	if err != nil {
		return err
	}
	srv, err := repro.StartBroadcastServer(repro.BroadcastServerConfig{
		Collection:    coll,
		Mode:          bm,
		IndexEncoding: enc,
		Channels:      *channels,
		CycleCapacity: *capacity,
		CycleInterval: *interval,
		UplinkAddr:    *uplink,
		BroadcastAddr: *bcast,
		Limits: repro.EngineLimits{
			MaxPending:            *maxPending,
			MaxAnswerCacheEntries: *answerCache,
			MaxPayloadCacheBytes:  *payloadMB << 20,
			BuildBudget:           *buildBudget,
		},
		Compress:       *compress,
		MuxCredit:      *muxCredit,
		UplinkRate:     *uplinkRate,
		UplinkBurst:    *uplinkBurst,
		PruneChurn:     *pruneChurn,
		ScheduleChurn:  *schedChurn,
		Adaptive:       *adaptive,
		AdaptiveTarget: *targetLat,
		StateDir:       *stateDir,
		Fsync:          *fsync,
		SnapshotEvery:  *snapEvery,
	})
	if err != nil {
		return err
	}
	defer srv.Shutdown()
	if *stateDir != "" {
		fmt.Printf("journal   %s (epoch %x, generation %d, %d pending recovered)\n",
			*stateDir, srv.Epoch(), srv.Generation(), srv.RecoveredPending())
	}
	if *pprofAddr != "" {
		// DefaultServeMux carries the net/http/pprof handlers via its
		// blank import; the listener is opt-in and should stay loopback.
		ln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			return fmt.Errorf("pprof listen: %w", err)
		}
		defer ln.Close()
		fmt.Printf("pprof     http://%s/debug/pprof/\n", ln.Addr())
		go func() {
			if err := http.Serve(ln, nil); err != nil && !errors.Is(err, net.ErrClosed) {
				fmt.Fprintln(os.Stderr, "bcast-serve: pprof:", err)
			}
		}()
	}
	fmt.Printf("serving %d documents (%d bytes) in %s mode, %s index encoding\n",
		coll.Len(), coll.TotalSize(), *mode, enc)
	if *compress {
		fmt.Println("transport per-frame DEFLATE on (downlink compressed; uplinks negotiate at hello)")
	}
	fmt.Printf("uplink    %s\n", srv.UplinkAddr())
	if addrs := srv.ChannelAddrs(); len(addrs) > 1 {
		for ch, a := range addrs {
			fmt.Printf("channel %d %s\n", ch, a)
		}
	} else {
		fmt.Printf("broadcast %s\n", srv.BroadcastAddr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	driverDone := make(chan struct{})
	driverStop := make(chan struct{})
	if *selfdrive {
		pool, err := repro.GenerateQueries(coll, 30, 5, 0.1, *seed+1)
		if err != nil {
			return err
		}
		var submit func(i int) error
		var closeDriver func()
		if *muxCli > 0 {
			// Fan the trickle over logical clients sharing one multiplexed
			// uplink connection, exercising the stream framing the way a
			// gateway proxying many mobile clients would.
			mx, err := repro.DialBroadcastMux(srv.UplinkAddr(), repro.BroadcastMuxConfig{Compress: *compress})
			if err != nil {
				return err
			}
			clients := make([]*repro.BroadcastLogicalClient, *muxCli)
			for i := range clients {
				if clients[i], err = mx.Open(); err != nil {
					mx.Close()
					return err
				}
			}
			fmt.Printf("selfdrive %d logical clients on one mux uplink (compressed=%v)\n",
				*muxCli, mx.Compressed())
			submit = func(i int) error { return clients[i%len(clients)].Submit(pool[i%len(pool)]) }
			closeDriver = mx.Close
		} else {
			cl, err := repro.DialBroadcastChannels(srv.UplinkAddr(), srv.ChannelAddrs(), repro.SizeModel{})
			if err != nil {
				return err
			}
			submit = func(i int) error { return cl.Submit(pool[i%len(pool)]) }
			closeDriver = func() { cl.Close() }
		}
		go func() {
			defer close(driverDone)
			defer closeDriver()
			ticker := time.NewTicker(*interval)
			defer ticker.Stop()
			i := 0
			for {
				select {
				case <-driverStop:
					return
				case <-ticker.C:
					err := submit(i)
					var rej *repro.BroadcastRejectedError
					if errors.As(err, &rej) {
						// Admission control shedding the self-driver is
						// backpressure, not failure: skip this tick.
						continue
					}
					if err != nil {
						return
					}
					i++
				}
			}
		}()
	} else {
		close(driverDone)
	}

	if *duration > 0 {
		select {
		case <-stop:
		case <-time.After(*duration):
		}
	} else {
		<-stop
	}
	close(driverStop)
	<-driverDone
	st := srv.Stats()
	fmt.Printf("shutting down after %d cycles\n", st.Cycles)
	fmt.Printf("engine: %s\n", st.Engine)
	if st.Health != "" {
		fmt.Printf("health: %s\n", st.Health)
	}
	if st.RejectedRate > 0 || st.RejectedPending > 0 {
		fmt.Printf("rejected: %d rate-limited, %d over pending cap\n", st.RejectedRate, st.RejectedPending)
	}
	return nil
}
