package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestGenerateQueries(t *testing.T) {
	out, err := capture(t, []string{"-docs", "10", "-n", "7", "-p", "0.2", "-dq", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 7 {
		t.Fatalf("got %d queries, want 7:\n%s", len(lines), out)
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "/") {
			t.Errorf("line %q is not an absolute path", l)
		}
	}
}

func TestCounts(t *testing.T) {
	out, err := capture(t, []string{"-docs", "10", "-n", "4", "-counts"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 {
			t.Fatalf("line %q missing count", l)
		}
		if parts[1] == "0" {
			t.Errorf("query %s has zero results", parts[0])
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, []string{"-schema", "bogus"}); err == nil {
		t.Error("bogus schema succeeded")
	}
	if _, err := capture(t, []string{"-n", "0"}); err == nil {
		t.Error("zero queries succeeded")
	}
	if _, err := capture(t, []string{"-bogusflag"}); err == nil {
		t.Error("bogus flag succeeded")
	}
}
