// Command querygen generates a synthetic simple-XPath workload against a
// built-in document schema, mirroring the paper's query generator: maximum
// depth D_Q and wildcard probability P. Every emitted query is satisfiable
// over the generated collection.
//
// Usage:
//
//	querygen -schema nitf -docs 100 -n 500 -p 0.1 -dq 5
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "querygen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("querygen", flag.ContinueOnError)
	var (
		schema = fs.String("schema", "nitf", "document schema: nitf or nasa")
		docs   = fs.Int("docs", 100, "size of the backing collection")
		n      = fs.Int("n", 100, "number of queries")
		p      = fs.Float64("p", 0.1, "wildcard probability P")
		dq     = fs.Int("dq", 5, "maximum depth D_Q")
		seed   = fs.Int64("seed", 1, "random seed")
		counts = fs.Bool("counts", false, "append each query's result count")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	coll, err := repro.GenerateDocuments(*schema, *docs, *seed)
	if err != nil {
		return err
	}
	queries, err := repro.GenerateQueries(coll, *n, *dq, *p, *seed+1)
	if err != nil {
		return err
	}
	var answers [][]repro.DocID
	if *counts {
		answers = repro.FilterDocuments(coll, queries)
	}
	for i, q := range queries {
		if *counts {
			fmt.Printf("%s\t%d\n", q, len(answers[i]))
			continue
		}
		fmt.Println(q)
	}
	return nil
}
