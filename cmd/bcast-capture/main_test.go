package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro"
)

func startBusyServer(t *testing.T) *repro.BroadcastServer {
	t.Helper()
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 8, 1)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	srv, err := repro.StartBroadcastServer(repro.BroadcastServerConfig{
		Collection:    coll,
		CycleCapacity: 40_000,
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartBroadcastServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	cl, err := repro.DialBroadcast(srv.UplinkAddr(), srv.BroadcastAddr(), repro.SizeModel{})
	if err != nil {
		t.Fatalf("DialBroadcast: %v", err)
	}
	t.Cleanup(cl.Close)
	// Keep the channel busy for the whole test: a drained pending set
	// stops the cycle loop and would starve the recorder of cycle heads.
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	t.Cleanup(func() { close(feederStop); <-feederDone })
	go func() {
		defer close(feederDone)
		q := repro.MustParseQuery("/nitf")
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			if err := cl.Submit(q); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	return srv
}

func TestCaptureToFile(t *testing.T) {
	srv := startBusyServer(t)
	out := filepath.Join(t.TempDir(), "session.xbc")
	if err := run([]string{"-addr", srv.BroadcastAddr(), "-cycles", "2", "-out", out, "-timeout", "15s"}); err != nil {
		t.Fatalf("run: %v", err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer f.Close()
	recs, err := repro.ReadBroadcastCapture(f)
	if err != nil {
		t.Fatalf("ReadBroadcastCapture: %v", err)
	}
	if len(recs) < 2 {
		t.Errorf("captured %d cycles, want >= 2", len(recs))
	}
}

func TestCaptureErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -addr succeeded")
	}
	if err := run([]string{"-addr", "127.0.0.1:1", "-timeout", "300ms", "-out", filepath.Join(t.TempDir(), "x.xbc")}); err == nil {
		t.Error("dead address succeeded")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bogus flag succeeded")
	}
}
