// Command bcast-capture subscribes to a running broadcast server (see
// cmd/bcast-serve or repro.StartBroadcastServer) and records complete
// broadcast cycles into a capture file for offline inspection with
// cmd/bcast-inspect.
//
// Usage:
//
//	bcast-capture -addr 127.0.0.1:9000 -cycles 5 -out session.xbc
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-capture:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-capture", flag.ContinueOnError)
	var (
		addr    = fs.String("addr", "", "broadcast address to subscribe to (required)")
		cycles  = fs.Int("cycles", 3, "number of complete cycles to record")
		out     = fs.String("out", "capture.xbc", "output capture file")
		timeout = fs.Duration("timeout", 30*time.Second, "recording deadline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("-addr is required")
	}
	f, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer f.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	n, err := repro.RecordBroadcast(ctx, *addr, *cycles, f)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d cycles to %s\n", n, *out)
	return nil
}
