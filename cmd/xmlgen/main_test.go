package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteToDirectory(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-schema", "nitf", "-docs", "3", "-seed", "5", "-out", dir}); err != nil {
		t.Fatalf("run: %v", err)
	}
	files, err := filepath.Glob(filepath.Join(dir, "nitf-*.xml"))
	if err != nil {
		t.Fatalf("glob: %v", err)
	}
	if len(files) != 3 {
		t.Fatalf("wrote %d files, want 3", len(files))
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !strings.HasPrefix(string(data), "<nitf>") {
		t.Errorf("file does not look like NITF XML: %.60s", data)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a, b := t.TempDir(), t.TempDir()
	for _, dir := range []string{a, b} {
		if err := run([]string{"-docs", "2", "-seed", "9", "-out", dir}); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	fa, _ := os.ReadFile(filepath.Join(a, "nitf-0001.xml"))
	fb, _ := os.ReadFile(filepath.Join(b, "nitf-0001.xml"))
	if string(fa) != string(fb) {
		t.Error("same seed produced different files")
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{"-schema", "bogus"}); err == nil {
		t.Error("bogus schema succeeded")
	}
	if err := run([]string{"-docs", "0"}); err == nil {
		t.Error("zero docs succeeded")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("bogus flag succeeded")
	}
}
