// Command xmlgen generates a synthetic XML document collection from one of
// the built-in schemas (the stand-in for the IBM XML Generator of the
// paper's evaluation) and writes one file per document.
//
// Usage:
//
//	xmlgen -schema nitf -docs 100 -out ./data
//	xmlgen -schema nasa -docs 5            # print to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "xmlgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("xmlgen", flag.ContinueOnError)
	var (
		schema = fs.String("schema", "nitf", "document schema: nitf or nasa")
		docs   = fs.Int("docs", 10, "number of documents")
		seed   = fs.Int64("seed", 1, "random seed")
		out    = fs.String("out", "", "output directory (default: stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	coll, err := repro.GenerateDocuments(*schema, *docs, *seed)
	if err != nil {
		return err
	}
	if *out == "" {
		for _, d := range coll.Docs() {
			fmt.Printf("%s\n", d.Marshal())
		}
		return nil
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	for _, d := range coll.Docs() {
		name := filepath.Join(*out, fmt.Sprintf("%s-%04d.xml", *schema, d.ID))
		if err := os.WriteFile(name, d.Marshal(), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %d documents (%d bytes) to %s\n", coll.Len(), coll.TotalSize(), *out)
	return nil
}
