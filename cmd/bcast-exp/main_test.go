package main

import (
	"os"
	"strings"
	"testing"
)

// capture runs run() with stdout redirected to a pipe and returns the
// output.
func capture(t *testing.T, args []string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := r.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String(), runErr
}

func TestList(t *testing.T) {
	out, err := capture(t, []string{"-list"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"fig9a", "fig11c", "claims", "baseline-perdoc", "ext-energy"} {
		if !strings.Contains(out, want) {
			t.Errorf("list output missing %q", want)
		}
	}
}

func TestRunSetupWithOverrides(t *testing.T) {
	out, err := capture(t, []string{"-exp", "setup", "-docs", "10", "-nq", "20", "-p", "0.2", "-dq", "4",
		"-capacity", "50000", "-scheduler", "mrf", "-schema", "nitf", "-doc-seed", "3", "-query-seed", "4"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, want := range []string{"10", "20", "0.200", "mrf"} {
		if !strings.Contains(out, want) {
			t.Errorf("setup output missing %q:\n%s", want, out)
		}
	}
}

func TestRunSmallExperiment(t *testing.T) {
	out, err := capture(t, []string{"-exp", "fig9a", "-docs", "10", "-nq", "10"})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "N_Q") || !strings.Contains(out, "PCI") {
		t.Errorf("fig9a output malformed:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	if _, err := capture(t, nil); err == nil {
		t.Error("no-op invocation succeeded")
	}
	if _, err := capture(t, []string{"-exp", "nope"}); err == nil {
		t.Error("unknown experiment succeeded")
	}
	if _, err := capture(t, []string{"-exp", "setup", "-schema", "bogus"}); err == nil {
		t.Error("bogus schema succeeded")
	}
	if _, err := capture(t, []string{"-bogusflag"}); err == nil {
		t.Error("bogus flag succeeded")
	}
}

func TestFormats(t *testing.T) {
	csvOut, err := capture(t, []string{"-exp", "setup", "-docs", "10", "-format", "csv"})
	if err != nil {
		t.Fatalf("csv: %v", err)
	}
	if !strings.HasPrefix(csvOut, "variable,description,value\n") {
		t.Errorf("csv malformed:\n%s", csvOut)
	}
	jsonOut, err := capture(t, []string{"-exp", "setup", "-docs", "10", "-format", "json"})
	if err != nil {
		t.Fatalf("json: %v", err)
	}
	if !strings.Contains(jsonOut, `"columns"`) {
		t.Errorf("json malformed:\n%s", jsonOut)
	}
	if _, err := capture(t, []string{"-exp", "setup", "-docs", "10", "-format", "yaml"}); err == nil {
		t.Error("unknown format accepted")
	}
}
