// Command bcast-exp regenerates the paper's evaluation: every figure and
// table of §4 plus this repository's ablations, printed as text tables.
//
// Usage:
//
//	bcast-exp -list
//	bcast-exp -exp fig11a
//	bcast-exp -all
//
// Workload parameters (N_Q, P, D_Q, document count, cycle capacity,
// scheduler, seeds) can be overridden with flags; defaults reproduce the
// reconstructed Table 2 setup.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bcast-exp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bcast-exp", flag.ContinueOnError)
	var (
		list      = fs.Bool("list", false, "list available experiments and exit")
		expID     = fs.String("exp", "", "experiment ID to run (see -list)")
		all       = fs.Bool("all", false, "run every experiment")
		benchEng  = fs.Bool("bench-engine", false, "benchmark the assembly engine and write BENCH_engine.json")
		benchPath = fs.String("bench-out", "BENCH_engine.json", "output path for -bench-engine")
		benchBase = fs.String("bench-baseline", "", "baseline BENCH_engine.json to compare against; exit non-zero on regression")
		benchTol  = fs.Float64("bench-tolerance", 0.25, "allowed fractional regression of the build- and schedule-stage means for -bench-baseline")

		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the run to this file (go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile at exit to this file (go tool pprof)")
		schema     = fs.String("schema", "", "document schema: nitf or nasa")
		docs       = fs.Int("docs", 0, "number of generated documents")
		nq         = fs.Int("nq", 0, "N_Q: pending queries")
		p          = fs.Float64("p", -1, "P: wildcard probability")
		dq         = fs.Int("dq", 0, "D_Q: maximum query depth")
		cap        = fs.Int("capacity", 0, "cycle document budget in bytes")
		channels   = fs.Int("channels", 0, "parallel broadcast channels K for experiment runs (two-tier legs only; -bench-engine always measures at K=1)")
		compress   = fs.Bool("compress", false, "model the transport's per-frame DEFLATE in experiment runs (K=1 only; -bench-engine always measures both legs)")
		indexEnc   = fs.String("index-enc", "", "first-tier wire layout for experiment runs: node or succinct (two-tier legs only; -bench-engine always measures both)")
		sched      = fs.String("scheduler", "", "scheduler: leelo, fcfs, mrf or rxw")
		docSeed    = fs.Int64("doc-seed", 0, "document generation seed")
		qSeed      = fs.Int64("query-seed", 0, "query generation seed")
		format     = fs.String("format", "table", "output format for -exp: table, csv or json")

		maxPending  = fs.Int("max-pending", 0, "engine admission cap on the pending set (0 = unlimited)")
		answerCache = fs.Int("answer-cache", 0, "max memoized query answers, LRU-evicted (0 = unlimited)")
		payloadMB   = fs.Int("payload-cache", 0, "max cached document payload megabytes, LRU-evicted (0 = unlimited)")
		buildBudget = fs.Duration("build-budget", 0, "per-cycle index-pruning deadline; overruns broadcast the unpruned CI (0 = none)")
		adaptive    = fs.Bool("adaptive", false, "enable the self-tuning admission controller in experiment runs (never in -bench-engine)")
		targetLat   = fs.Duration("target-latency", 0, "adaptive controller's per-cycle assembly-latency goal (0 = default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range repro.Experiments() {
			fmt.Printf("%-20s %s\n", e.ID, e.Desc)
		}
		return nil
	}

	cfg := repro.DefaultExperimentConfig()
	if *schema != "" {
		cfg.Schema = *schema
	}
	if *docs > 0 {
		cfg.NumDocs = *docs
	}
	if *nq > 0 {
		cfg.NQ = *nq
	}
	if *p >= 0 {
		cfg.P = *p
	}
	if *dq > 0 {
		cfg.DQ = *dq
	}
	if *cap > 0 {
		cfg.CycleCapacity = *cap
	}
	if *channels > 0 {
		cfg.Channels = *channels
	}
	cfg.Compress = *compress
	if *indexEnc != "" {
		enc, err := repro.ParseIndexEncoding(*indexEnc)
		if err != nil {
			return err
		}
		cfg.IndexEncoding = enc
	}
	if *sched != "" {
		cfg.Scheduler = *sched
	}
	if *docSeed != 0 {
		cfg.DocSeed = *docSeed
	}
	if *qSeed != 0 {
		cfg.QuerySeed = *qSeed
	}
	cfg.Limits = repro.EngineLimits{
		MaxPending:            *maxPending,
		MaxAnswerCacheEntries: *answerCache,
		MaxPayloadCacheBytes:  *payloadMB << 20,
		BuildBudget:           *buildBudget,
	}
	cfg.Adaptive = *adaptive
	cfg.AdaptiveTarget = *targetLat

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "bcast-exp: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "bcast-exp: memprofile:", err)
			}
		}()
	}

	switch {
	case *benchEng:
		res, err := repro.RunEngineBenchmark(cfg)
		if err != nil {
			return err
		}
		data, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (GOMAXPROCS=%d, filter speedup %.2fx, merge speedup %.2fx, prune speedup %.2fx, schedule speedup %.2fx, %d cycles)\n",
			*benchPath, res.GOMAXPROCS, res.FilterSpeedup, res.MergeSpeedup, res.PruneSpeedup, res.ScheduleSpeedup, res.Cycles)
		if mb := res.Multichannel; mb != nil {
			fmt.Printf("multichannel K=%d: mean access %.0f B vs K=1 %.0f B (%.1f%% reduction, %d/%d clients eavesdropped)\n",
				mb.Channels, mb.MeanAccessBytesK, mb.MeanAccessBytesK1, mb.AccessReductionPct, mb.EavesdropClients, mb.Clients)
		}
		if sb := res.Succinct; sb != nil {
			fmt.Printf("succinct tier: %d B vs node %d B (%.1f%% smaller), index tuning %.0f B vs %.0f B (%.1f%% less), encode %d ns vs %d ns\n",
				sb.FirstTierBytesSuccinct, sb.FirstTierBytesNode, sb.FirstTierReductionPct,
				sb.MeanIndexTuningBytesSuccinct, sb.MeanIndexTuningBytesNode, sb.TuningReductionPct,
				sb.EncodeSuccinctNS, sb.EncodeNodeNS)
		}
		if tb := res.Transport; tb != nil {
			fmt.Printf("transport: cycle %.0f B compressed vs %.0f B plain (%.1f%% smaller), ratios index %.2f / tier %.2f / doc %.2f, encode %d ns, decode %d ns, mux fan-in %.0f frames/s\n",
				tb.MeanCycleBytesCompressed, tb.MeanCycleBytesPlain, tb.CycleReductionPct,
				tb.IndexRatio, tb.SecondTierRatio, tb.DocRatio,
				tb.EncodeFrameNS, tb.DecodeFrameNS, tb.MuxFanInFramesPerSec)
		}
		if *benchBase != "" {
			baseData, err := os.ReadFile(*benchBase)
			if err != nil {
				return err
			}
			var base repro.EngineBenchResult
			if err := json.Unmarshal(baseData, &base); err != nil {
				return fmt.Errorf("parse %s: %w", *benchBase, err)
			}
			summary, err := repro.CompareEngineBenchmarks(&base, res, *benchTol)
			if err != nil {
				return err
			}
			fmt.Println(summary)
		}
		return nil
	case *all:
		return repro.RunAllExperiments(os.Stdout, cfg)
	case *expID != "":
		tbl, err := repro.RunExperiment(*expID, cfg)
		if err != nil {
			return err
		}
		switch *format {
		case "table":
			fmt.Print(tbl.Render())
		case "csv":
			fmt.Print(tbl.RenderCSV())
		case "json":
			data, err := json.MarshalIndent(tbl, "", "  ")
			if err != nil {
				return err
			}
			fmt.Println(string(data))
		default:
			return fmt.Errorf("unknown format %q (want table, csv or json)", *format)
		}
		return nil
	default:
		return fmt.Errorf("nothing to do: pass -list, -exp <id> or -all")
	}
}
