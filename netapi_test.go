package repro_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro"
)

// TestNetworkFacadeEndToEnd drives the public networking surface: start a
// server, submit over the uplink, retrieve over the broadcast, record a
// capture and decode it — all through the repro package.
func TestNetworkFacadeEndToEnd(t *testing.T) {
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 8, 3)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	srv, err := repro.StartBroadcastServer(repro.BroadcastServerConfig{
		Collection:    coll,
		Mode:          repro.TwoTierMode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartBroadcastServer: %v", err)
	}
	defer srv.Shutdown()

	cl, err := repro.DialBroadcast(srv.UplinkAddr(), srv.BroadcastAddr(), repro.SizeModel{})
	if err != nil {
		t.Fatalf("DialBroadcast: %v", err)
	}
	defer cl.Close()
	q := repro.MustParseQuery("/nitf/head/title")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, stats, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	want := q.MatchingDocs(coll)
	if len(docs) != len(want) {
		t.Fatalf("retrieved %d docs, want %d", len(docs), len(want))
	}
	if stats.TuningBytes <= 0 {
		t.Error("no tuning accounted")
	}

	// Keep traffic flowing for the recorder.
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	defer func() { close(feederStop); <-feederDone }()
	go func() {
		defer close(feederDone)
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			if err := cl.Submit(q); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()
	var buf bytes.Buffer
	if _, err := repro.RecordBroadcast(ctx, srv.BroadcastAddr(), 2, &buf); err != nil {
		t.Fatalf("RecordBroadcast: %v", err)
	}
	recs, err := repro.ReadBroadcastCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadBroadcastCapture: %v", err)
	}
	if len(recs) < 2 {
		t.Fatalf("captured %d cycles", len(recs))
	}
	ix, err := recs[0].DecodeIndex(repro.DefaultSizeModel())
	if err != nil {
		t.Fatalf("DecodeIndex: %v", err)
	}
	if got := ix.Lookup(q).Docs; len(got) != len(want) {
		t.Errorf("captured index answers %v, want %d docs", got, len(want))
	}
}

// TestSaveLoadIndexFacade exercises the index persistence surface.
func TestSaveLoadIndexFacade(t *testing.T) {
	coll, err := repro.GenerateDocuments(repro.NASASchema, 6, 4)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	ix, err := repro.BuildIndex(coll)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	var buf bytes.Buffer
	if err := repro.SaveIndex(&buf, ix, repro.FirstTier); err != nil {
		t.Fatalf("SaveIndex: %v", err)
	}
	back, tier, err := repro.LoadIndex(&buf)
	if err != nil {
		t.Fatalf("LoadIndex: %v", err)
	}
	if tier != repro.FirstTier || back.NumNodes() != ix.NumNodes() {
		t.Errorf("round trip: tier %v, %d nodes (want %d)", tier, back.NumNodes(), ix.NumNodes())
	}
	q := repro.MustParseQuery("/dataset/title")
	if len(back.Lookup(q).Docs) != len(ix.Lookup(q).Docs) {
		t.Error("loaded index answers differently")
	}
}
