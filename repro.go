// Package repro is a Go implementation of "Two-Tier Air Indexing for
// On-Demand XML Data Broadcast" (Sun, Yu, Qing, Zhang, Zheng — ICDCS 2009):
// an on-demand wireless broadcast system for XML documents in which the
// server answers simple XPath queries by broadcasting, ahead of each cycle's
// documents, a compact air index built from merged DataGuides, pruned to the
// pending query set, and split into two tiers so that clients can doze
// through almost the entire broadcast.
//
// This root package is the public API: a facade over the internal substrates
// (document model, synthetic generators, XPath engine, NFA filter, index
// core, wire format, schedulers and the discrete-event simulator). The
// typical flow:
//
//	coll, _ := repro.GenerateDocuments(repro.NITFSchema, 100, 1)
//	idx, _ := repro.BuildIndex(coll)
//	q, _ := repro.ParseQuery("/nitf/body//block")
//	res := idx.Lookup(q)                    // → matching document IDs
//	pci, _, _ := idx.Prune([]repro.Query{q}) // → per-cycle pruned index
//
// or, end to end,
//
//	out, _ := repro.Simulate(repro.SimulationConfig{ ... })
//
// The experiment harness that regenerates every table and figure of the
// paper's evaluation is exposed through Experiments / RunExperiment and the
// cmd/bcast-exp binary.
package repro

import (
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/exp"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Core data model.
type (
	// Document is one XML document with a collection-unique ID.
	Document = xmldoc.Document
	// Node is an element node of a document tree.
	Node = xmldoc.Node
	// DocID identifies a document (2 bytes on air).
	DocID = xmldoc.DocID
	// Collection is the server's immutable document set.
	Collection = xmldoc.Collection
)

// Query language.
type (
	// Query is a parsed simple XPath expression (/, // and * steps).
	Query = xpath.Path
	// QueryStep is one location step of a Query.
	QueryStep = xpath.Step
)

// Index core.
type (
	// Index is a Compact Index (CI) or its pruned form (PCI).
	Index = core.Index
	// IndexNode is one node of an Index.
	IndexNode = core.Node
	// SizeModel fixes the on-air byte widths of index fields.
	SizeModel = core.SizeModel
	// Packing is an index's packet layout on air.
	Packing = core.Packing
	// LookupResult is the outcome of a client-style index navigation.
	LookupResult = core.LookupResult
	// PruneStats summarises a pruning pass.
	PruneStats = core.PruneStats
)

// Tiers of the physical index layout.
const (
	// OneTier embeds document offsets in the index tree.
	OneTier = core.OneTier
	// FirstTier is the offset-free first tier of the two-tier structure.
	FirstTier = core.FirstTier
)

// Broadcast modes.
const (
	// OneTierMode broadcasts the flat baseline index.
	OneTierMode = broadcast.OneTierMode
	// TwoTierMode broadcasts the paper's two-tier organisation.
	TwoTierMode = broadcast.TwoTierMode
)

// BroadcastMode selects the index organisation of a simulation.
type BroadcastMode = broadcast.Mode

// IndexEncoding selects the first tier's wire layout (see
// SimulationConfig.IndexEncoding and BroadcastServerConfig.IndexEncoding).
type IndexEncoding = core.IndexEncoding

// First-tier wire layouts.
const (
	// EncodingNode is the node-pointer stream, the default.
	EncodingNode = core.EncodingNode
	// EncodingSuccinct is the balanced-parentheses succinct tier
	// (two-tier mode only): smaller on air, navigated in place by clients.
	EncodingSuccinct = core.EncodingSuccinct
)

// ParseIndexEncoding parses an encoding name: "node" (or empty) and
// "succinct".
func ParseIndexEncoding(s string) (IndexEncoding, error) {
	return core.ParseIndexEncoding(s)
}

// Simulation types.
type (
	// SimulationConfig parameterises a run (see Simulate).
	SimulationConfig = sim.Config
	// ClientRequest is one query submission with its arrival byte-time.
	ClientRequest = sim.ClientRequest
	// SimulationResult aggregates per-client and per-cycle statistics.
	SimulationResult = sim.Result
	// ClientStats is one client's tuning/access outcome.
	ClientStats = sim.ClientStats
	// Scheduler plans the document content of broadcast cycles.
	Scheduler = schedule.Scheduler
	// ScheduleClockUnit selects the clock a simulation's scheduler sees
	// (see SimulationConfig.ScheduleClock).
	ScheduleClockUnit = sim.ClockUnit
)

// Crash-restart equivalence driver (see RunRestartSim): a deterministic
// cycle-clocked broadcast run over a durability journal, with an optional
// seed-chosen mid-pipeline crash followed by warm recovery.
type (
	// RestartSimConfig parameterises RunRestartSim.
	RestartSimConfig = sim.RestartConfig
	// RestartSimResult carries per-cycle wire fingerprints and pending-set
	// keys — the crash-equivalence evidence — plus crash/recovery telemetry.
	RestartSimResult = sim.RestartResult
	// ScriptedRequest is one admission of a restart-equivalence script.
	ScriptedRequest = sim.ScriptedRequest
)

// Scheduler clock units.
const (
	// ClockBytes hands schedulers the simulator's native byte-time.
	ClockBytes = sim.ClockBytes
	// ClockCycles hands schedulers admission cycle numbers, matching the
	// networked server's clock for clock-sensitive policies such as RxW.
	ClockCycles = sim.ClockCycles
)

// Assembly-engine telemetry: the shared cycle-assembly pipeline behind both
// Simulate and StartBroadcastServer reports per-stage wall time and sizes,
// answer-cache hit rate and cycle counters. SimulationResult.Engine and
// BroadcastServer.Stats().Engine carry an EngineMetrics snapshot; a custom
// EngineProbe can additionally be wired through SimulationConfig.Probe or
// BroadcastServerConfig.Probe.
type (
	// EngineMetrics is an aggregated telemetry snapshot.
	EngineMetrics = engine.Metrics
	// EngineStageStats is one pipeline stage's aggregate.
	EngineStageStats = engine.StageStats
	// EngineProbe receives pipeline events as they happen.
	EngineProbe = engine.Probe
	// EngineLimits bounds engine memory (LRU answer/payload caches,
	// pending-set cap) and per-cycle build latency; wire it through
	// SimulationConfig.Limits or BroadcastServerConfig.Limits.
	EngineLimits = engine.Limits
	// EngineHealth is the adaptive admission controller's three-state load
	// signal (EngineHealthy, EngineShedding, EngineDegraded), carried by
	// EngineMetrics.Health and BroadcastServerStats.Health when the
	// controller is enabled (SimulationConfig.Adaptive or
	// BroadcastServerConfig.Adaptive).
	EngineHealth = engine.Health
	// EngineAdaptiveState snapshots the controller's live limits, latency
	// estimates and shed/grow counters (EngineMetrics.Adaptive).
	EngineAdaptiveState = engine.AdaptiveState
)

// Adaptive controller health states.
const (
	// EngineHealthy: latency under target, limits opening additively.
	EngineHealthy = engine.Healthy
	// EngineShedding: limits recently cut and held down until recovery.
	EngineShedding = engine.Shedding
	// EngineDegraded: cycles blowing their build budget despite shedding.
	EngineDegraded = engine.Degraded
)

// EngineOverload is the sentinel matched (via errors.Is) by every
// admission-control rejection: engine MaxPending refusals and the networked
// server's FrameReject responses (BroadcastRejectedError).
var EngineOverload = engine.ErrOverload

// Experiment harness types.
type (
	// ExperimentConfig is the reconstructed Table 2 setup.
	ExperimentConfig = exp.Config
	// Experiment is one reproducible table or figure.
	Experiment = exp.Experiment
	// ResultTable is a rendered result table.
	ResultTable = stats.Table
)

// Built-in schema names accepted by GenerateDocuments.
const (
	// NITFSchema is the News Industry Text Format-like document set.
	NITFSchema = "nitf"
	// NASASchema is the NASA astronomy-dataset-like document set.
	NASASchema = "nasa"
)

// DefaultSizeModel returns the paper's §4.1 widths: 2-byte flags and doc
// IDs, 4-byte labels and pointers, 128-byte packets.
func DefaultSizeModel() SizeModel { return core.DefaultSizeModel() }

// DefaultExperimentConfig returns the reconstructed Table 2 defaults.
func DefaultExperimentConfig() ExperimentConfig { return exp.Default() }
