package repro_test

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 20, 1)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	if coll.Len() != 20 {
		t.Fatalf("Len = %d", coll.Len())
	}
	idx, err := repro.BuildIndex(coll)
	if err != nil {
		t.Fatalf("BuildIndex: %v", err)
	}
	queries, err := repro.GenerateQueries(coll, 10, 5, 0.2, 2)
	if err != nil {
		t.Fatalf("GenerateQueries: %v", err)
	}
	// Index lookups agree with the server-side filter.
	answers := repro.FilterDocuments(coll, queries)
	for i, q := range queries {
		if got := idx.Lookup(q).Docs; !reflect.DeepEqual(got, answers[i]) {
			t.Errorf("query %s: lookup %v, filter %v", q, got, answers[i])
		}
	}
	// Prune and check transparency.
	pci, st, err := idx.Prune(queries)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if st.NodesAfter > st.NodesBefore {
		t.Errorf("pruning grew the index: %+v", st)
	}
	for i, q := range queries {
		if got := pci.Lookup(q).Docs; !reflect.DeepEqual(got, answers[i]) {
			t.Errorf("query %s over PCI: %v, want %v", q, got, answers[i])
		}
	}
	// Two-tier layout is smaller.
	if pci.Size(repro.FirstTier) >= pci.Size(repro.OneTier) {
		t.Error("first tier not smaller than one tier")
	}
}

func TestPublicAPISimulation(t *testing.T) {
	coll, err := repro.GenerateDocuments(repro.NASASchema, 12, 3)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	queries, err := repro.GenerateQueries(coll, 8, 4, 0.1, 4)
	if err != nil {
		t.Fatalf("GenerateQueries: %v", err)
	}
	reqs := make([]repro.ClientRequest, len(queries))
	for i, q := range queries {
		reqs[i] = repro.ClientRequest{Query: q, Arrival: int64(i) * 100}
	}
	sched, err := repro.NewScheduler("leelo")
	if err != nil {
		t.Fatalf("NewScheduler: %v", err)
	}
	res, err := repro.Simulate(repro.SimulationConfig{
		Collection:    coll,
		Mode:          repro.TwoTierMode,
		Scheduler:     sched,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		Requests:      reqs,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Clients) != len(reqs) || res.NumCycles() == 0 {
		t.Fatalf("result incomplete: %d clients, %d cycles", len(res.Clients), res.NumCycles())
	}
	if res.MeanIndexTuningBytes() <= 0 || res.MeanAccessBytes() <= 0 {
		t.Error("aggregates not positive")
	}
}

func TestPublicAPIParsers(t *testing.T) {
	q, err := repro.ParseQuery("/a//b/*")
	if err != nil {
		t.Fatalf("ParseQuery: %v", err)
	}
	if q.String() != "/a//b/*" {
		t.Errorf("String = %q", q.String())
	}
	if _, err := repro.ParseQuery("not a path"); err == nil {
		t.Error("bad query parsed")
	}
	d, err := repro.ParseDocument(7, strings.NewReader("<a><b>x</b></a>"))
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	if d.ID != 7 || d.Root.Label != "a" {
		t.Errorf("document = %+v", d)
	}
	if _, err := repro.ParseDocument(1, strings.NewReader("<a>")); err == nil {
		t.Error("bad document parsed")
	}
	c, err := repro.NewCollection([]*repro.Document{d})
	if err != nil || c.Len() != 1 {
		t.Errorf("NewCollection: %v", err)
	}
}

func TestPublicAPIGeneratorsErrors(t *testing.T) {
	if _, err := repro.GenerateDocuments("bogus", 1, 1); err == nil {
		t.Error("bogus schema accepted")
	}
	if _, err := repro.NewScheduler("bogus"); err == nil {
		t.Error("bogus scheduler accepted")
	}
}

func TestPublicAPIExperiments(t *testing.T) {
	if len(repro.Experiments()) < 10 {
		t.Errorf("only %d experiments", len(repro.Experiments()))
	}
	cfg := repro.DefaultExperimentConfig()
	cfg.NumDocs = 10
	cfg.NQ = 15
	cfg.CycleCapacity = 50_000
	tbl, err := repro.RunExperiment("setup", cfg)
	if err != nil {
		t.Fatalf("RunExperiment: %v", err)
	}
	if !strings.Contains(tbl.Render(), "N_Q") {
		t.Error("setup table missing N_Q")
	}
	if _, err := repro.RunExperiment("nope", cfg); err == nil {
		t.Error("unknown experiment accepted")
	}
	var buf bytes.Buffer
	if err := repro.RunAllExperiments(&buf, cfg); err != nil {
		t.Fatalf("RunAllExperiments: %v", err)
	}
	if !strings.Contains(buf.String(), "## claims") {
		t.Error("RunAllExperiments output missing claims")
	}
}

func TestDefaultSizeModel(t *testing.T) {
	m := repro.DefaultSizeModel()
	if m.PacketBytes != 128 || m.DocIDBytes != 2 || m.PointerBytes != 4 {
		t.Errorf("unexpected default model: %+v", m)
	}
}

func TestFacadeCoverageHelpers(t *testing.T) {
	if len(repro.SchedulerNames()) != 4 {
		t.Errorf("SchedulerNames = %v", repro.SchedulerNames())
	}
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 3, 1)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	m := repro.DefaultSizeModel()
	m.PacketBytes = 64
	ix, err := repro.BuildIndexWithModel(coll, m)
	if err != nil {
		t.Fatalf("BuildIndexWithModel: %v", err)
	}
	if ix.Model.PacketBytes != 64 {
		t.Errorf("model not applied: %+v", ix.Model)
	}
	if _, err := repro.BuildIndexWithModel(coll, repro.SizeModel{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestFacadeLoadCollection(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "one.xml"), []byte("<a><b/></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	coll, err := repro.LoadCollection(dir)
	if err != nil {
		t.Fatalf("LoadCollection: %v", err)
	}
	if coll.Len() != 1 {
		t.Errorf("Len = %d", coll.Len())
	}
	if _, err := repro.LoadCollection("/does/not/exist"); err == nil {
		t.Error("missing dir loaded")
	}
}
