package repro_test

import (
	"testing"

	"repro"
)

// TestStressLargeWorkload runs the system well above the paper's scale —
// 500 documents (~5.6 MB) and 2000 concurrent requests — as a bounded
// soak test of the whole pipeline. Skipped in -short mode.
func TestStressLargeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	coll, err := repro.GenerateDocuments(repro.NITFSchema, 500, 11)
	if err != nil {
		t.Fatalf("GenerateDocuments: %v", err)
	}
	queries, err := repro.GenerateQueries(coll, 200, 6, 0.15, 12)
	if err != nil {
		t.Fatalf("GenerateQueries: %v", err)
	}
	reqs, err := repro.GenerateWorkload(queries, 2000, 1.3, 50, 13)
	if err != nil {
		t.Fatalf("GenerateWorkload: %v", err)
	}
	res, err := repro.Simulate(repro.SimulationConfig{
		Collection:    coll,
		Mode:          repro.TwoTierMode,
		CycleCapacity: 200_000,
		Requests:      reqs,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if len(res.Clients) != 2000 {
		t.Fatalf("%d clients finished", len(res.Clients))
	}
	for i, cl := range res.Clients {
		if cl.Completed < cl.Arrival || len(cl.Docs) == 0 {
			t.Fatalf("client %d incomplete: %+v", i, cl)
		}
	}
	if res.MeanIndexTuningBytes() <= 0 {
		t.Error("no tuning recorded")
	}
	t.Logf("stress: %d cycles, mean cycle %.0f B, tuning %.0f B, access %.0f B, %0.1f cycles/query",
		res.NumCycles(), res.MeanCycleBytes(), res.MeanIndexTuningBytes(),
		res.MeanAccessBytes(), res.MeanCyclesListened())
}
