package repro_test

import (
	"fmt"
	"strings"

	"repro"
)

// ExampleBuildIndex builds the paper's running example and answers query q1.
func ExampleBuildIndex() {
	sources := []string{
		`<a><b><a/><c/></b></a>`,
		`<a><b><a/><c/></b><c><b/></c></a>`,
		`<a><b/><c/></a>`,
		`<a><c><a/></c></a>`,
		`<a><b/><c><a/></c></a>`,
	}
	docs := make([]*repro.Document, len(sources))
	for i, src := range sources {
		d, err := repro.ParseDocument(repro.DocID(i+1), strings.NewReader(src))
		if err != nil {
			panic(err)
		}
		docs[i] = d
	}
	coll, err := repro.NewCollection(docs)
	if err != nil {
		panic(err)
	}
	idx, err := repro.BuildIndex(coll)
	if err != nil {
		panic(err)
	}
	res := idx.Lookup(repro.MustParseQuery("/a/b/a"))
	fmt.Println(res.Docs)
	// Output: [1 2]
}

// ExampleIndex_Prune prunes the index to a pending query set, keeping only
// nodes on root-to-match paths (paper §3.2, Fig. 6).
func ExampleIndex_Prune() {
	d1, _ := repro.ParseDocument(1, strings.NewReader(`<a><b><a/><c/></b></a>`))
	d2, _ := repro.ParseDocument(2, strings.NewReader(`<a><b/><c/></a>`))
	coll, _ := repro.NewCollection([]*repro.Document{d1, d2})
	idx, _ := repro.BuildIndex(coll)

	pending := []repro.Query{repro.MustParseQuery("/a/b")}
	pci, stats, err := idx.Prune(pending)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d -> %d nodes\n", stats.NodesBefore, stats.NodesAfter)
	fmt.Println(pci.Lookup(pending[0]).Docs)
	// Output:
	// 5 -> 2 nodes
	// [1 2]
}

// ExampleParseQuery shows the supported XPath fragment.
func ExampleParseQuery() {
	q, err := repro.ParseQuery("/a//c/*")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.Depth(), q.HasWildcards())
	// Output: 3 true
}

// ExampleSimulate runs a tiny end-to-end broadcast simulation.
func ExampleSimulate() {
	coll, _ := repro.GenerateDocuments(repro.NITFSchema, 10, 1)
	queries, _ := repro.GenerateQueries(coll, 5, 4, 0.1, 2)
	reqs := make([]repro.ClientRequest, len(queries))
	for i, q := range queries {
		reqs[i] = repro.ClientRequest{Query: q, Arrival: int64(i) * 100}
	}
	res, err := repro.Simulate(repro.SimulationConfig{
		Collection:    coll,
		Mode:          repro.TwoTierMode,
		CycleCapacity: 50_000,
		Requests:      reqs,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(res.Clients) == 5, res.NumCycles() > 0)
	// Output: true true
}
