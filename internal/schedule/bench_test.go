package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/xmldoc"
)

func benchPending(n int) ([]Request, func(xmldoc.DocID) int) {
	r := rand.New(rand.NewSource(1))
	sizes := make(map[xmldoc.DocID]int, 100)
	for i := 1; i <= 100; i++ {
		sizes[xmldoc.DocID(i)] = 5000 + r.Intn(15000)
	}
	pending := make([]Request, n)
	for i := range pending {
		docs := make([]xmldoc.DocID, 1+r.Intn(20))
		for j := range docs {
			docs[j] = xmldoc.DocID(1 + r.Intn(100))
		}
		pending[i] = Request{ID: int64(i), Arrival: int64(i * 10), Docs: docs}
	}
	return pending, func(d xmldoc.DocID) int { return sizes[d] }
}

func benchScheduler(b *testing.B, s Scheduler) {
	pending, size := benchPending(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PlanCycle(pending, size, 100_000, int64(i))
	}
}

func BenchmarkLeeLo(b *testing.B) { benchScheduler(b, LeeLo{}) }
func BenchmarkFCFS(b *testing.B)  { benchScheduler(b, FCFS{}) }
func BenchmarkMRF(b *testing.B)   { benchScheduler(b, MRF{}) }
func BenchmarkRxW(b *testing.B)   { benchScheduler(b, RxW{}) }
