package schedule

import (
	"math/rand"
	"testing"

	"repro/internal/xmldoc"
)

func benchPending(n int) ([]Request, func(xmldoc.DocID) int) {
	r := rand.New(rand.NewSource(1))
	sizes := make(map[xmldoc.DocID]int, 100)
	for i := 1; i <= 100; i++ {
		sizes[xmldoc.DocID(i)] = 5000 + r.Intn(15000)
	}
	pending := make([]Request, n)
	for i := range pending {
		docs := make([]xmldoc.DocID, 1+r.Intn(20))
		for j := range docs {
			docs[j] = xmldoc.DocID(1 + r.Intn(100))
		}
		pending[i] = Request{ID: int64(i), Arrival: int64(i * 10), Docs: docs}
	}
	return pending, func(d xmldoc.DocID) int { return sizes[d] }
}

func benchScheduler(b *testing.B, s Scheduler) {
	pending, size := benchPending(500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.PlanCycle(pending, size, 100_000, int64(i))
	}
}

// benchChurnFixture builds the incremental-scheduling workload: a 10k
// pending set over a wide document universe (sparse requester sharing, the
// regime the demand index targets) with ~5% of requests swapped per cycle.
func benchChurnFixture() ([]Request, func(xmldoc.DocID) int, *rand.Rand) {
	r := rand.New(rand.NewSource(2))
	const nDocs = 4000
	sizes := make([]int, nDocs)
	for d := range sizes {
		sizes[d] = 2000 + r.Intn(18000)
	}
	pending := make([]Request, 10_000)
	for i := range pending {
		pending[i] = Request{
			ID:      int64(i),
			Arrival: int64(i / 16),
			Docs:    randomSortedDocs(r, nDocs, 1+r.Intn(4)),
		}
	}
	return pending, func(d xmldoc.DocID) int { return sizes[d] }, r
}

const benchChurnSwap = 500 // of 10k pending: 5% churn per cycle

// BenchmarkScheduleIncremental compares one cycle of LeeLo planning under
// 5% pending-set churn: the full per-cycle rebuild the reference oracle
// performs versus delta maintenance of a persistent DemandIndex. The
// engine bench records the same ratio as schedule_speedup in
// BENCH_engine.json (target ≥5×).
func BenchmarkScheduleIncremental(b *testing.B) {
	b.Run("full", func(b *testing.B) {
		pending, size, r := benchChurnFixture()
		nextID := int64(len(pending))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < benchChurnSwap; k++ {
				pending = pending[1:]
				pending = append(pending, Request{
					ID:      nextID,
					Arrival: int64(i),
					Docs:    randomSortedDocs(r, 4000, 1+r.Intn(4)),
				})
				nextID++
			}
			LeeLo{}.PlanCycle(pending, size, 400_000, int64(i))
		}
	})
	b.Run("incremental", func(b *testing.B) {
		pending, size, r := benchChurnFixture()
		x := NewDemandIndex()
		x.Rebuild(pending, size, 8)
		nextID := int64(len(pending))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for k := 0; k < benchChurnSwap; k++ {
				x.Remove(pending[0].ID)
				pending = pending[1:]
				nr := Request{
					ID:      nextID,
					Arrival: int64(i),
					Docs:    randomSortedDocs(r, 4000, 1+r.Intn(4)),
				}
				nextID++
				pending = append(pending, nr)
				x.Apply(nr, size)
			}
			LeeLo{}.PlanIndexed(x, 400_000, int64(i))
		}
	})
}

func BenchmarkLeeLo(b *testing.B) { benchScheduler(b, LeeLo{}) }
func BenchmarkFCFS(b *testing.B)  { benchScheduler(b, FCFS{}) }
func BenchmarkMRF(b *testing.B)   { benchScheduler(b, MRF{}) }
func BenchmarkRxW(b *testing.B)   { benchScheduler(b, RxW{}) }
