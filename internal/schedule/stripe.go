package schedule

import "repro/internal/xmldoc"

// Stripe partitions a cycle's document plan across k parallel data channels.
// The plan arrives in the policy's broadcast order (LeeLo, FCFS, MRF, RxW —
// whatever produced it) and that order is preserved within every stripe, so
// each channel broadcasts its share under the same policy semantics; the
// striping only decides which channel carries which document.
//
// Assignment is greedy least-loaded by accumulated bytes, walking the plan in
// delivery order and placing each document on the channel with the fewest
// bytes so far (ties break to the lowest channel index). This keeps channel
// loads within one document of each other — the multichannel cycle length is
// k times the heaviest channel, so balance is directly cycle length — and is
// fully deterministic, which the sim-vs-netcast byte-equivalence tests
// require.
//
// k <= 1 returns the plan as a single stripe.
func Stripe(plan []xmldoc.DocID, size func(xmldoc.DocID) int, k int) [][]xmldoc.DocID {
	if k <= 1 {
		return [][]xmldoc.DocID{plan}
	}
	stripes := make([][]xmldoc.DocID, k)
	loads := make([]int, k)
	for _, d := range plan {
		best := 0
		for c := 1; c < k; c++ {
			if loads[c] < loads[best] {
				best = c
			}
		}
		stripes[best] = append(stripes[best], d)
		loads[best] += size(d)
	}
	return stripes
}

// StripeSkewed partitions a plan across k data channels with deliberately
// unequal byte budgets: stripe 0 gets weight 1 and every other stripe weight
// k, so stripe 0 carries roughly 1/(1+k(k-1)) of the cycle's bytes. The plan
// arrives in the policy's delivery order — demand-ranked first under the
// on-demand policies — and the split is contiguous, so the hottest documents
// land together on the small stripe. In the air-time model a channel lighter
// than the cycle's heaviest replays its unit through the slack
// (broadcast.Cycle.ChannelRepetitions), so the small hot stripe repeats
// several times per cycle: the broadcast-disk allocation, with repetition
// frequency skewed toward demand. The deliberate imbalance lengthens the
// cycle (k times the heaviest stripe), which the repetitions of the hot set
// must buy back; a skewed workload is what makes the trade profitable.
//
// k <= 1 returns the plan as a single stripe; k == 2 degenerates to a
// contiguous half split.
func StripeSkewed(plan []xmldoc.DocID, size func(xmldoc.DocID) int, k int) [][]xmldoc.DocID {
	if k <= 1 {
		return [][]xmldoc.DocID{plan}
	}
	total := 0
	for _, d := range plan {
		total += size(d)
	}
	weights := make([]int, k)
	sum := 0
	for c := range weights {
		weights[c] = k
		if c == 0 {
			weights[c] = 1
		}
		sum += weights[c]
	}
	stripes := make([][]xmldoc.DocID, k)
	c, load := 0, 0
	for _, d := range plan {
		// Advance to the next stripe once this one's budget is filled; the
		// last stripe takes the remainder.
		for c < k-1 && load >= total*weights[c]/sum {
			c, load = c+1, 0
		}
		stripes[c] = append(stripes[c], d)
		load += size(d)
	}
	return stripes
}
