package schedule

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/xmldoc"
)

func constSize(s int) func(xmldoc.DocID) int {
	return func(xmldoc.DocID) int { return s }
}

func TestNewAndNames(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if s.Name() != name {
			t.Errorf("Name() = %q, want %q", s.Name(), name)
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("New(bogus) succeeded")
	}
}

func TestFCFSOrdersByArrival(t *testing.T) {
	pending := []Request{
		{ID: 2, Arrival: 50, Docs: []xmldoc.DocID{3, 4}},
		{ID: 1, Arrival: 10, Docs: []xmldoc.DocID{1, 2}},
	}
	got := FCFS{}.PlanCycle(pending, constSize(10), 30, 100)
	want := []xmldoc.DocID{1, 2, 3} // oldest request first, then capacity runs out
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCycle = %v, want %v", got, want)
	}
}

func TestMRFPopularityWins(t *testing.T) {
	pending := []Request{
		{ID: 1, Docs: []xmldoc.DocID{5}},
		{ID: 2, Docs: []xmldoc.DocID{5, 7}},
		{ID: 3, Docs: []xmldoc.DocID{5, 7, 9}},
	}
	got := MRF{}.PlanCycle(pending, constSize(10), 20, 0)
	want := []xmldoc.DocID{5, 7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCycle = %v, want %v", got, want)
	}
}

func TestRxWAgePromotes(t *testing.T) {
	pending := []Request{
		// doc 1: requested once, waiting 100; doc 2: requested twice, waiting 10.
		{ID: 1, Arrival: 0, Docs: []xmldoc.DocID{1}},
		{ID: 2, Arrival: 90, Docs: []xmldoc.DocID{2}},
		{ID: 3, Arrival: 90, Docs: []xmldoc.DocID{2}},
	}
	got := RxW{}.PlanCycle(pending, constSize(10), 10, 100)
	// R×W: doc1 = 1×100 = 100, doc2 = 2×10 = 20 → doc 1 wins.
	want := []xmldoc.DocID{1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCycle = %v, want %v", got, want)
	}
}

func TestLeeLoCompletesNearlyDoneQueries(t *testing.T) {
	sizes := map[xmldoc.DocID]int{1: 10, 2: 10, 3: 10, 4: 10}
	size := func(d xmldoc.DocID) int { return sizes[d] }
	pending := []Request{
		// Request 1 needs only doc 1 (10 bytes remaining).
		{ID: 1, Docs: []xmldoc.DocID{1}},
		// Request 2 needs three docs (30 bytes remaining).
		{ID: 2, Docs: []xmldoc.DocID{2, 3, 4}},
	}
	got := LeeLo{}.PlanCycle(pending, size, 10, 0)
	want := []xmldoc.DocID{1} // completing request 1 scores 1/10 > 1/30
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCycle = %v, want %v", got, want)
	}
}

func TestLeeLoPopularityAccumulates(t *testing.T) {
	pending := []Request{
		{ID: 1, Docs: []xmldoc.DocID{7, 8}},
		{ID: 2, Docs: []xmldoc.DocID{7, 9}},
		{ID: 3, Docs: []xmldoc.DocID{7}},
	}
	got := LeeLo{}.PlanCycle(pending, constSize(10), 10, 0)
	// doc 7 is needed by all three requests: 1/20+1/20+1/10 beats the rest.
	want := []xmldoc.DocID{7}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PlanCycle = %v, want %v", got, want)
	}
}

func TestOversizedDocScheduledAlone(t *testing.T) {
	pending := []Request{{ID: 1, Docs: []xmldoc.DocID{1}}}
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		got := s.PlanCycle(pending, constSize(1000), 100, 0)
		if !reflect.DeepEqual(got, []xmldoc.DocID{1}) {
			t.Errorf("%s: oversized doc plan = %v, want [1]", name, got)
		}
	}
}

func TestEmptyPending(t *testing.T) {
	for _, name := range Names() {
		s, err := New(name)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if got := s.PlanCycle(nil, constSize(1), 100, 0); len(got) != 0 {
			t.Errorf("%s: plan over no pending = %v", name, got)
		}
	}
}

// TestQuickSchedulerContracts checks, for every scheduler over random
// workloads: no duplicates, only demanded documents, capacity respected
// (except the oversized-alone rule), and determinism.
func TestQuickSchedulerContracts(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		numDocs := 1 + r.Intn(20)
		sizes := make(map[xmldoc.DocID]int, numDocs)
		for i := 1; i <= numDocs; i++ {
			sizes[xmldoc.DocID(i)] = 1 + r.Intn(50)
		}
		size := func(d xmldoc.DocID) int { return sizes[d] }
		var pending []Request
		demanded := make(map[xmldoc.DocID]bool)
		for i := 0; i < 1+r.Intn(10); i++ {
			var docs []xmldoc.DocID
			for j := 0; j < 1+r.Intn(5); j++ {
				d := xmldoc.DocID(1 + r.Intn(numDocs))
				docs = append(docs, d)
				demanded[d] = true
			}
			pending = append(pending, Request{ID: int64(i), Arrival: int64(r.Intn(100)), Docs: docs})
		}
		capacity := 20 + r.Intn(100)
		now := int64(200)
		for _, name := range Names() {
			s, err := New(name)
			if err != nil {
				return false
			}
			plan := s.PlanCycle(pending, size, capacity, now)
			again := s.PlanCycle(pending, size, capacity, now)
			if !reflect.DeepEqual(plan, again) {
				t.Logf("%s not deterministic", name)
				return false
			}
			seen := make(map[xmldoc.DocID]bool)
			total := 0
			for _, d := range plan {
				if seen[d] || !demanded[d] {
					t.Logf("%s: duplicate or undemanded doc %d", name, d)
					return false
				}
				seen[d] = true
				total += size(d)
			}
			if total > capacity && len(plan) != 1 {
				t.Logf("%s: plan %v exceeds capacity %d", name, plan, capacity)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickLeeLoNeverIdles: if any demanded document fits, the plan is
// non-empty (work-conserving).
func TestQuickLeeLoNeverIdles(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pending := []Request{{ID: 1, Docs: []xmldoc.DocID{1, 2, 3}}}
		size := func(d xmldoc.DocID) int { return 5 + int(d) }
		capacity := 6 + r.Intn(50)
		plan := LeeLo{}.PlanCycle(pending, size, capacity, 0)
		return len(plan) > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
