package schedule

import (
	"sort"
	"sync"

	"repro/internal/xmldoc"
)

// DefaultScheduleChurn is the pending-set churn fraction (changed plus
// removed requests over the union of the incoming and indexed sets) above
// which the engine abandons delta maintenance of the demand index and
// rebuilds it from scratch, mirroring core.DefaultPruneChurn for the PCI.
const DefaultScheduleChurn = 0.25

// demandReq is one pending request's scheduling state inside a DemandIndex.
type demandReq struct {
	id      int64
	arrival int64
	// seq is the request's first-seen order. Requester lists are kept in
	// seq order so LeeLo's float score sums run in exactly the pending-slice
	// order the reference PlanCycle uses — bit-identical summation.
	seq  int64
	docs []xmldoc.DocID // still-missing docs, sorted ascending
	// remaining is the byte sum of docs (LeeLo's denominator base).
	remaining int
	// planDelta is the bytes of docs picked for this request within the
	// plan currently being built; always rolled back to 0 afterwards.
	planDelta int
	// zombie marks a request whose last doc was delivered by a plan; it is
	// kept (with its seq) until the driver's next pending set confirms the
	// completion, so a lossy delivery can resurrect it without changing the
	// summation order.
	zombie bool
	dead   bool // removed; awaiting byArrival compaction
}

// demandDoc is one demanded document's aggregation inside a DemandIndex.
type demandDoc struct {
	id   xmldoc.DocID
	size int
	// reqs lists the requesters in seq order (see demandReq.seq).
	reqs       []*demandReq
	minArrival int64
	// score is the cached LeeLo base score Σ 1/remaining over reqs, valid
	// when dirty is false.
	score float64
	dirty bool
	// hver versions heap entries pushed for this doc during a plan; a
	// popped entry with a stale version is discarded (a fresher entry was
	// pushed when a sharing requester's pick changed the score).
	hver uint32
	// pickedAt/droppedAt/rescoredAt are plan-local stamps compared against
	// the index's plan and op counters, avoiding per-plan clearing.
	pickedAt   int64
	droppedAt  int64
	rescoredAt uint64
}

// docHeapEntry is one candidate document in a policy's selection heap.
type docHeapEntry struct {
	fscore float64 // LeeLo score
	iscore int64   // MRF count / RxW count×wait
	doc    xmldoc.DocID
	ver    uint32
}

// DemandIndex is persistent per-document demand aggregation maintained
// across broadcast cycles by pending-set deltas instead of being rebuilt
// from each cycle's full pending slice: per-document requester lists with
// refcounts-by-construction, arrival extrema for RxW, and cached LeeLo
// scores with dirty tracking. The incremental schedulers (PlanIndexed on
// each policy) plan directly from it and are defined to produce exactly the
// plan the reference PlanCycle would produce for the equivalent pending
// slice.
//
// Contracts, matching how the engine's drivers behave:
//   - Request.Docs handed to Apply/Rebuild are sorted ascending without
//     duplicates and non-empty.
//   - A request keeps its arrival time for its whole life; between
//     consecutive reconciles of the same ID its doc set only shrinks
//     (documents are delivered, never re-demanded with others swapped in at
//     equal count). Arbitrary same-size substitutions require a Rebuild.
//   - Requester-list order is first-seen (Apply/Rebuild) order, so callers
//     must present pending slices with new requests appended after old ones
//     for LeeLo plan identity with the reference oracle.
//
// Not safe for concurrent use; the engine serialises access under its
// mutex.
type DemandIndex struct {
	reqs map[int64]*demandReq
	// docTab is the per-document state, dense-indexed by DocID (a uint16):
	// slice indexing keeps the planners' inner loops off map hashing, which
	// dominated the dense-sharing profile. nil slots are undemanded docs.
	docTab []*demandDoc
	ndocs  int

	// byArrival holds live requests plus tombstones in (arrival, id) order
	// when sortDirty is false; FCFS streams it directly.
	byArrival []*demandReq
	tombs     int
	sortDirty bool

	seq     int64
	nzombie int
	zombies []*demandReq // may hold resurrected entries; filtered lazily

	dirty []xmldoc.DocID // docs whose cached LeeLo score is stale
	edits int            // requester-list edits since TakeEdits

	maxDoc  xmldoc.DocID
	seen    []uint32 // FCFS dedup bitmap, generation-stamped
	seenGen uint32

	plan int64  // plan stamp epoch (LeeLo pickedAt/droppedAt)
	op   uint64 // per-pick stamp epoch (LeeLo rescoredAt)

	// plan scratch, reused across cycles
	heap    []docHeapEntry
	out     []xmldoc.DocID
	touched []*demandReq

	// rebuild scratch, reused across rebuilds
	reqSlab    []demandReq
	docSlab    []demandDoc
	docIDSlab  []xmldoc.DocID
	reqPtrSlab []*demandReq
	offs       []int
	gcount     []int32 // per-doc counts, zeroed again after each rebuild
	doff       []int32 // per-doc fill cursors, init-before-use per rebuild
	dsize      []int   // per-doc sizes, init-before-use per rebuild
	rebuilt    []xmldoc.DocID
}

// NewDemandIndex returns an empty index.
func NewDemandIndex() *DemandIndex {
	return &DemandIndex{reqs: make(map[int64]*demandReq)}
}

// doc returns the state of a demanded document, or nil.
func (x *DemandIndex) doc(d xmldoc.DocID) *demandDoc {
	if int(d) >= len(x.docTab) {
		return nil
	}
	return x.docTab[d]
}

func (x *DemandIndex) putDoc(d xmldoc.DocID, ds *demandDoc) {
	if int(d) >= len(x.docTab) {
		n := 2 * len(x.docTab)
		if n <= int(d) {
			n = int(d) + 1
		}
		grown := make([]*demandDoc, n)
		copy(grown, x.docTab)
		x.docTab = grown
	}
	x.docTab[d] = ds
	x.ndocs++
}

func (x *DemandIndex) delDoc(d xmldoc.DocID) {
	x.docTab[d] = nil
	x.ndocs--
}

// Len is the number of tracked requests, including zombies awaiting their
// driver-confirmed completion.
func (x *DemandIndex) Len() int { return len(x.reqs) }

// NumDocs is the number of distinct demanded documents.
func (x *DemandIndex) NumDocs() int { return x.ndocs }

// Zombies is the number of tracked requests whose completion a plan
// predicted but the driver has not yet confirmed.
func (x *DemandIndex) Zombies() int { return x.nzombie }

// Peek reports a tracked request's still-missing doc count and arrival.
// The engine's per-cycle diff uses it: under the shrink-only contract,
// equal (count, arrival) implies the doc sets are equal too.
func (x *DemandIndex) Peek(id int64) (docs int, arrival int64, ok bool) {
	rs := x.reqs[id]
	if rs == nil {
		return 0, 0, false
	}
	return len(rs.docs), rs.arrival, true
}

// TakeEdits returns and resets the number of requester-list edits applied
// since the last call (the schedule-delta probe's output unit).
func (x *DemandIndex) TakeEdits() int {
	e := x.edits
	x.edits = 0
	return e
}

// Apply upserts one request: unknown IDs are added, known IDs are
// reconciled against the incoming doc set (documents delivered elsewhere
// are detached, lost documents re-attached) preserving the request's seq so
// summation order is stable. An arrival change is treated as a new request.
func (x *DemandIndex) Apply(r Request, size func(xmldoc.DocID) int) {
	rs := x.reqs[r.ID]
	if rs == nil {
		x.addRequest(r, size)
		return
	}
	if rs.arrival != r.Arrival {
		x.Remove(r.ID)
		x.addRequest(r, size)
		return
	}
	if rs.zombie {
		rs.zombie = false
		x.nzombie--
	}
	before := rs.remaining
	old, incoming := rs.docs, r.Docs
	i, j := 0, 0
	changed := false
	for i < len(old) || j < len(incoming) {
		switch {
		case j == len(incoming) || (i < len(old) && old[i] < incoming[j]):
			x.detach(rs, old[i])
			i++
			changed = true
		case i == len(old) || old[i] > incoming[j]:
			x.attach(rs, incoming[j], size(incoming[j]))
			j++
			changed = true
		default:
			i, j = i+1, j+1
		}
	}
	if changed {
		rs.docs = append(rs.docs[:0], incoming...)
	}
	if rs.remaining != before {
		for _, d := range rs.docs {
			x.markDirty(x.doc(d))
		}
	}
}

// Remove drops one tracked request (driver abandoned or retired it).
func (x *DemandIndex) Remove(id int64) {
	rs := x.reqs[id]
	if rs == nil {
		return
	}
	x.removeReq(rs)
}

func (x *DemandIndex) removeReq(rs *demandReq) {
	for _, d := range rs.docs {
		x.detach(rs, d)
	}
	if rs.zombie {
		rs.zombie = false
		x.nzombie--
	}
	rs.dead = true
	rs.docs = nil
	x.tombs++
	delete(x.reqs, rs.id)
	if x.tombs > 64 && x.tombs*2 > len(x.byArrival) {
		live := x.byArrival[:0]
		for _, r := range x.byArrival {
			if !r.dead {
				live = append(live, r)
			}
		}
		x.byArrival = live
		x.tombs = 0
	}
}

// RemoveExcept drops every tracked request whose ID is not in keep.
func (x *DemandIndex) RemoveExcept(keep map[int64]struct{}) {
	for id, rs := range x.reqs {
		if _, ok := keep[id]; !ok {
			x.removeReq(rs)
		}
	}
}

// ExpireZombies drops every request whose plan-predicted completion was not
// contradicted by a reconcile since. The engine uses it as the cheap sweep
// when the only requests missing from a cycle's pending set are exactly the
// previous plan's completions.
func (x *DemandIndex) ExpireZombies() {
	for _, rs := range x.zombies {
		if rs.zombie && !rs.dead {
			x.removeReq(rs)
		}
	}
	x.zombies = x.zombies[:0]
	x.nzombie = 0
}

// DeliverDoc applies one planned document's predicted delivery: the
// document leaves every requester's missing set (and the index), and
// requesters left with nothing become zombies until the driver confirms.
func (x *DemandIndex) DeliverDoc(d xmldoc.DocID) {
	ds := x.doc(d)
	if ds == nil {
		return
	}
	for _, rs := range ds.reqs {
		i := sort.Search(len(rs.docs), func(i int) bool { return rs.docs[i] >= d })
		copy(rs.docs[i:], rs.docs[i+1:])
		rs.docs = rs.docs[:len(rs.docs)-1]
		rs.remaining -= ds.size
		x.edits++
		if len(rs.docs) == 0 {
			rs.zombie = true
			x.nzombie++
			x.zombies = append(x.zombies, rs)
			continue
		}
		for _, d2 := range rs.docs {
			x.markDirty(x.doc(d2))
		}
	}
	x.delDoc(d)
}

func (x *DemandIndex) addRequest(r Request, size func(xmldoc.DocID) int) {
	rs := &demandReq{id: r.ID, arrival: r.Arrival, seq: x.seq}
	x.seq++
	rs.docs = append(make([]xmldoc.DocID, 0, len(r.Docs)), r.Docs...)
	for _, d := range r.Docs {
		x.attach(rs, d, size(d))
	}
	x.reqs[r.ID] = rs
	if n := len(x.byArrival); n > 0 {
		if last := x.byArrival[n-1]; r.Arrival < last.arrival ||
			(r.Arrival == last.arrival && r.ID < last.id) {
			x.sortDirty = true
		}
	}
	x.byArrival = append(x.byArrival, rs)
}

// attach adds rs to d's requester list at its seq position and folds the
// doc's size into the request's remaining bytes.
func (x *DemandIndex) attach(rs *demandReq, d xmldoc.DocID, size int) {
	ds := x.doc(d)
	if ds == nil {
		ds = &demandDoc{id: d, size: size, minArrival: rs.arrival}
		x.putDoc(d, ds)
		if d > x.maxDoc {
			x.maxDoc = d
		}
	} else if rs.arrival < ds.minArrival {
		ds.minArrival = rs.arrival
	}
	i := sort.Search(len(ds.reqs), func(i int) bool { return ds.reqs[i].seq > rs.seq })
	ds.reqs = append(ds.reqs, nil)
	copy(ds.reqs[i+1:], ds.reqs[i:])
	ds.reqs[i] = rs
	rs.remaining += size
	x.markDirty(ds)
	x.edits++
}

// detach removes rs from d's requester list, re-deriving the arrival
// extremum when rs held it, and drops the doc once undemanded.
func (x *DemandIndex) detach(rs *demandReq, d xmldoc.DocID) {
	ds := x.doc(d)
	i := sort.Search(len(ds.reqs), func(i int) bool { return ds.reqs[i].seq >= rs.seq })
	copy(ds.reqs[i:], ds.reqs[i+1:])
	ds.reqs = ds.reqs[:len(ds.reqs)-1]
	rs.remaining -= ds.size
	x.edits++
	if len(ds.reqs) == 0 {
		x.delDoc(d)
		return
	}
	if rs.arrival == ds.minArrival {
		min := ds.reqs[0].arrival
		for _, r := range ds.reqs[1:] {
			if r.arrival < min {
				min = r.arrival
			}
		}
		ds.minArrival = min
	}
	x.markDirty(ds)
}

func (x *DemandIndex) markDirty(ds *demandDoc) {
	if ds != nil && !ds.dirty {
		ds.dirty = true
		x.dirty = append(x.dirty, ds.id)
	}
}

// refreshScores recomputes the cached LeeLo base score of every dirtied
// doc. Summation runs over the seq-ordered requester list, which is the
// reference oracle's pending-slice order, so cached and from-scratch scores
// are bit-identical.
func (x *DemandIndex) refreshScores() {
	for _, d := range x.dirty {
		if ds := x.doc(d); ds != nil && ds.dirty {
			ds.score = x.planScore(ds)
			ds.dirty = false
		}
	}
	x.dirty = x.dirty[:0]
}

// planScore is the doc's LeeLo score against the plan being built:
// Σ 1/(remaining − planDelta) over requesters, in seq order.
func (x *DemandIndex) planScore(ds *demandDoc) float64 {
	s := 0.0
	for _, rs := range ds.reqs {
		if rem := rs.remaining - rs.planDelta; rem > 0 {
			s += 1 / float64(rem)
		}
	}
	return s
}

func (x *DemandIndex) nextSeenGen() uint32 {
	x.seenGen++
	if x.seenGen == 0 { // wrapped: stale stamps could alias, restart clean
		clear(x.seen)
		x.seenGen = 1
	}
	return x.seenGen
}

func (x *DemandIndex) ensureSeen() {
	if int(x.maxDoc) >= len(x.seen) {
		grown := make([]uint32, int(x.maxDoc)+1)
		copy(grown, x.seen)
		x.seen = grown
	}
}

// grow returns s resized to n, reallocating only when capacity is short.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// Rebuild replaces the index content from a full pending slice: the cold
// start and high-churn fallback path. Request state construction is sharded
// across workers; per-document aggregation is a serial counting sort into
// slab-backed requester lists (document sizes are resolved serially because
// xmldoc.Document.Size caches lazily), and remaining-byte sums are sharded
// again. All scratch is retained and reused by later rebuilds.
func (x *DemandIndex) Rebuild(reqs []Request, size func(xmldoc.DocID) int, workers int) {
	clear(x.reqs)
	clear(x.docTab)
	x.ndocs = 0
	x.byArrival = x.byArrival[:0]
	x.tombs = 0
	x.sortDirty = false
	x.zombies = x.zombies[:0]
	x.nzombie = 0
	x.dirty = x.dirty[:0]
	x.seq = int64(len(reqs))

	n := len(reqs)
	if n == 0 {
		return
	}
	x.offs = grow(x.offs, n+1)
	total := 0
	for i := range reqs {
		x.offs[i] = total
		total += len(reqs[i].Docs)
	}
	x.offs[n] = total
	x.reqSlab = grow(x.reqSlab, n)
	x.docIDSlab = grow(x.docIDSlab, total)

	if workers > n/512+1 {
		workers = n/512 + 1
	}
	if workers < 1 {
		workers = 1
	}
	shard := (n + workers - 1) / workers

	// Phase 1 (sharded): request states with slab-backed doc copies.
	runShards(workers, shard, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			r := &reqs[i]
			off, end := x.offs[i], x.offs[i+1]
			docs := x.docIDSlab[off:end:end]
			copy(docs, r.Docs)
			x.reqSlab[i] = demandReq{id: r.ID, arrival: r.Arrival, seq: int64(i), docs: docs}
		}
	})

	// Phase 2 (serial): count demand per doc, resolve sizes, lay out
	// requester lists by counting sort — shard-ascending fill order keeps
	// every list in seq order.
	maxDoc := xmldoc.DocID(0)
	for _, d := range x.docIDSlab[:total] {
		if d > maxDoc {
			maxDoc = d
		}
	}
	if maxDoc > x.maxDoc {
		x.maxDoc = maxDoc
	}
	if int(maxDoc) >= len(x.gcount) {
		x.gcount = make([]int32, int(maxDoc)+1)
		x.doff = make([]int32, int(maxDoc)+1)
		x.dsize = make([]int, int(maxDoc)+1)
	}
	distinct := x.rebuilt[:0]
	for _, d := range x.docIDSlab[:total] {
		if x.gcount[d] == 0 {
			distinct = append(distinct, d)
		}
		x.gcount[d]++
	}
	x.rebuilt = distinct
	x.docSlab = grow(x.docSlab, len(distinct))
	x.reqPtrSlab = grow(x.reqPtrSlab, total)
	cur := int32(0)
	for di, d := range distinct {
		x.doff[d] = cur
		cur += x.gcount[d]
		x.dsize[d] = size(d)
		x.docSlab[di] = demandDoc{id: d, size: x.dsize[d]}
		x.putDoc(d, &x.docSlab[di])
	}
	for i := 0; i < n; i++ {
		rs := &x.reqSlab[i]
		for _, d := range rs.docs {
			x.reqPtrSlab[x.doff[d]] = rs
			x.doff[d]++
		}
	}
	for di, d := range distinct {
		ds := &x.docSlab[di]
		end := x.doff[d]
		start := end - x.gcount[d]
		ds.reqs = x.reqPtrSlab[start:end:end]
		min := ds.reqs[0].arrival
		for _, r := range ds.reqs[1:] {
			if r.arrival < min {
				min = r.arrival
			}
		}
		ds.minArrival = min
		ds.dirty = true
		x.dirty = append(x.dirty, d)
		x.gcount[d] = 0 // restore the zeroed-counts invariant
	}

	// Phase 3 (sharded): remaining-byte sums and the reqs map refill.
	var mu sync.Mutex
	runShards(workers, shard, n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rs := &x.reqSlab[i]
			sum := 0
			for _, d := range rs.docs {
				sum += x.dsize[d]
			}
			rs.remaining = sum
		}
		mu.Lock()
		for i := lo; i < hi; i++ {
			x.reqs[x.reqSlab[i].id] = &x.reqSlab[i]
		}
		mu.Unlock()
	})

	x.byArrival = grow(x.byArrival, n)
	for i := range x.reqSlab[:n] {
		x.byArrival[i] = &x.reqSlab[i]
	}
	for i := 1; i < n; i++ {
		a, b := x.byArrival[i-1], x.byArrival[i]
		if b.arrival < a.arrival || (b.arrival == a.arrival && b.id < a.id) {
			x.sortDirty = true
			break
		}
	}
	x.edits += total
}

// runShards runs fn over [0,n) in contiguous ranges of the given width,
// serially when one worker suffices.
func runShards(workers, width, n int, fn func(lo, hi int)) {
	if workers <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += width {
		hi := lo + width
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
