package schedule

import (
	"reflect"
	"testing"

	"repro/internal/xmldoc"
)

// FuzzDemandIndex interprets the input as an op stream over a DemandIndex —
// add, shrink-reconcile, remove, deliver, plan (with its plan-delta
// rollback), zombie expiry and sharded rebuild — mirrored against a plain
// pending slice. After every op the index invariants must hold and all four
// incremental planners must equal their reference oracles.
func FuzzDemandIndex(f *testing.F) {
	f.Add([]byte{0x10, 0x23, 0x31, 0x42, 0x00, 0x57, 0x68})
	f.Add([]byte{0x00, 0x00, 0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80})
	f.Add([]byte{0x0f, 0x1f, 0x2f, 0x3f, 0x4f, 0x5f, 0x6f, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		const nDocs, capacity = 16, 900
		size := func(d xmldoc.DocID) int { return 100 + 37*int(d) }

		x := NewDemandIndex()
		var mirror []Request
		nextID := int64(0)
		now := int64(0)
		next := func() (byte, bool) {
			if len(data) == 0 {
				return 0, false
			}
			b := data[0]
			data = data[1:]
			return b, true
		}
		for {
			op, ok := next()
			if !ok {
				break
			}
			arg, _ := next()
			now++
			switch op % 6 {
			case 0: // add
				docs := []xmldoc.DocID{xmldoc.DocID(arg % nDocs)}
				if extra := xmldoc.DocID((arg >> 4) % nDocs); extra != docs[0] {
					if extra < docs[0] {
						docs = []xmldoc.DocID{extra, docs[0]}
					} else {
						docs = append(docs, extra)
					}
				}
				r := Request{ID: nextID, Arrival: now - int64(arg%5), Docs: docs}
				nextID++
				mirror = append(mirror, r)
				x.Apply(r, size)
			case 1: // remove
				if len(mirror) == 0 {
					continue
				}
				i := int(arg) % len(mirror)
				x.Remove(mirror[i].ID)
				mirror = append(mirror[:i], mirror[i+1:]...)
			case 2: // shrink-reconcile: one doc delivered out of band
				if len(mirror) == 0 {
					continue
				}
				i := int(arg) % len(mirror)
				r := &mirror[i]
				if len(r.Docs) > 1 {
					j := int(arg>>4) % len(r.Docs)
					r.Docs = append(r.Docs[:j], r.Docs[j+1:]...)
					x.Apply(*r, size)
				}
			case 3: // deliver one doc everywhere, retire completions
				d := xmldoc.DocID(arg % nDocs)
				x.DeliverDoc(d)
				live := mirror[:0]
				for _, r := range mirror {
					kept := r.Docs[:0]
					for _, rd := range r.Docs {
						if rd != d {
							kept = append(kept, rd)
						}
					}
					r.Docs = kept
					if len(r.Docs) > 0 {
						live = append(live, r)
					}
				}
				mirror = live
				x.ExpireZombies()
			case 4: // plan and compare all four policies
				if len(mirror) == 0 {
					continue
				}
				for _, name := range Names() {
					sched, _ := New(name)
					want := sched.PlanCycle(mirror, size, capacity, now)
					got := sched.(IncrementalScheduler).PlanIndexed(x, capacity, now)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("%s: PlanIndexed = %v, reference = %v", name, got, want)
					}
				}
			case 5: // sharded rebuild
				x.Rebuild(mirror, size, 1+int(arg%4))
			}
			checkInvariants(t, x)
		}
	})
}
