// Package schedule implements the on-demand broadcast schedulers that decide
// which result documents fill each fixed-length cycle. The paper adopts the
// multi-data-item allocation of Lee & Lo (MONET 2003) [8]; that policy is the
// default here, alongside classic on-demand baselines (FCFS, MRF, RxW) used
// by the repository's ablation experiments to show the index comparison is
// scheduler-robust.
package schedule

import (
	"fmt"
	"sort"

	"repro/internal/xmldoc"
)

// Request is one pending query at the server, reduced to what scheduling
// needs: its identity, arrival time (in broadcast bytes) and the result
// documents the client still lacks.
type Request struct {
	// ID uniquely identifies the request.
	ID int64
	// Arrival is the byte-time the request reached the server.
	Arrival int64
	// Docs are the still-missing result documents.
	Docs []xmldoc.DocID
}

// Scheduler plans the document content of broadcast cycles.
type Scheduler interface {
	// Name identifies the policy.
	Name() string
	// PlanCycle chooses the documents of the next cycle: at most capacity
	// bytes (by size), drawn from the union of pending requests' documents,
	// without duplicates, in broadcast order. If the single best document
	// exceeds the capacity on an otherwise empty plan it is scheduled
	// alone, so oversized documents cannot starve.
	PlanCycle(pending []Request, size func(xmldoc.DocID) int, capacity int, now int64) []xmldoc.DocID
}

// New returns a scheduler by name: "leelo" (default policy of the paper's
// evaluation), "fcfs", "mrf" or "rxw".
func New(name string) (Scheduler, error) {
	switch name {
	case "leelo":
		return LeeLo{}, nil
	case "fcfs":
		return FCFS{}, nil
	case "mrf":
		return MRF{}, nil
	case "rxw":
		return RxW{}, nil
	default:
		return nil, fmt.Errorf("schedule: unknown scheduler %q (have %v)", name, Names())
	}
}

// Names lists the available scheduler names.
func Names() []string { return []string{"leelo", "fcfs", "mrf", "rxw"} }

// demand aggregates, per document, which pending requests need it.
type demand struct {
	docs []xmldoc.DocID
	need map[xmldoc.DocID][]int // doc -> indexes into pending
}

func buildDemand(pending []Request) demand {
	d := demand{need: make(map[xmldoc.DocID][]int)}
	for ri := range pending {
		for _, doc := range pending[ri].Docs {
			if _, ok := d.need[doc]; !ok {
				d.docs = append(d.docs, doc)
			}
			d.need[doc] = append(d.need[doc], ri)
		}
	}
	sort.Slice(d.docs, func(i, j int) bool { return d.docs[i] < d.docs[j] })
	return d
}

// fill appends docs in the given priority order while they fit, honouring
// the oversized-document rule.
func fill(order []xmldoc.DocID, size func(xmldoc.DocID) int, capacity int) []xmldoc.DocID {
	var out []xmldoc.DocID
	used := 0
	for _, doc := range order {
		s := size(doc)
		if used+s > capacity {
			if used == 0 && s > capacity {
				return []xmldoc.DocID{doc}
			}
			continue
		}
		out = append(out, doc)
		used += s
	}
	return out
}

// FCFS serves requests in arrival order, packing each request's remaining
// documents before moving to the next.
type FCFS struct{}

// Name implements Scheduler.
func (FCFS) Name() string { return "fcfs" }

// PlanCycle implements Scheduler.
func (FCFS) PlanCycle(pending []Request, size func(xmldoc.DocID) int, capacity int, _ int64) []xmldoc.DocID {
	byArrival := make([]int, len(pending))
	for i := range byArrival {
		byArrival[i] = i
	}
	sort.SliceStable(byArrival, func(i, j int) bool {
		a, b := pending[byArrival[i]], pending[byArrival[j]]
		if a.Arrival != b.Arrival {
			return a.Arrival < b.Arrival
		}
		return a.ID < b.ID
	})
	var order []xmldoc.DocID
	seen := make(map[xmldoc.DocID]struct{})
	for _, ri := range byArrival {
		for _, doc := range pending[ri].Docs {
			if _, ok := seen[doc]; !ok {
				seen[doc] = struct{}{}
				order = append(order, doc)
			}
		}
	}
	return fill(order, size, capacity)
}

// MRF (most requested first) broadcasts the documents demanded by the most
// pending requests.
type MRF struct{}

// Name implements Scheduler.
func (MRF) Name() string { return "mrf" }

// PlanCycle implements Scheduler.
func (MRF) PlanCycle(pending []Request, size func(xmldoc.DocID) int, capacity int, _ int64) []xmldoc.DocID {
	d := buildDemand(pending)
	order := append([]xmldoc.DocID(nil), d.docs...)
	sort.SliceStable(order, func(i, j int) bool {
		ci, cj := len(d.need[order[i]]), len(d.need[order[j]])
		if ci != cj {
			return ci > cj
		}
		return order[i] < order[j]
	})
	return fill(order, size, capacity)
}

// RxW scores each document by (number of requests) × (wait of the oldest
// requester), the classic on-demand broadcast heuristic.
type RxW struct{}

// Name implements Scheduler.
func (RxW) Name() string { return "rxw" }

// PlanCycle implements Scheduler.
func (RxW) PlanCycle(pending []Request, size func(xmldoc.DocID) int, capacity int, now int64) []xmldoc.DocID {
	d := buildDemand(pending)
	score := make(map[xmldoc.DocID]int64, len(d.docs))
	for _, doc := range d.docs {
		oldest := int64(0)
		for _, ri := range d.need[doc] {
			if w := now - pending[ri].Arrival; w > oldest {
				oldest = w
			}
		}
		if oldest < 1 {
			oldest = 1 // fresh requests still compete on R
		}
		score[doc] = int64(len(d.need[doc])) * oldest
	}
	order := append([]xmldoc.DocID(nil), d.docs...)
	sort.SliceStable(order, func(i, j int) bool {
		if score[order[i]] != score[order[j]] {
			return score[order[i]] > score[order[j]]
		}
		return order[i] < order[j]
	})
	return fill(order, size, capacity)
}

// LeeLo is the default policy, after Lee & Lo's broadcast data allocation
// for multi-item queries [8]: a query is only satisfied when its whole
// result set has been received, so the scheduler favours documents that
// bring popular, nearly-complete queries to completion. Each candidate
// document is scored by Σ over the requests needing it of
// 1 / (remaining result bytes of that request), and documents are chosen
// greedily, rescoring as requests shrink within the cycle plan.
type LeeLo struct{}

// Name implements Scheduler.
func (LeeLo) Name() string { return "leelo" }

// PlanCycle implements Scheduler.
func (LeeLo) PlanCycle(pending []Request, size func(xmldoc.DocID) int, capacity int, _ int64) []xmldoc.DocID {
	d := buildDemand(pending)
	remaining := make([]int, len(pending)) // remaining result bytes per request
	for ri := range pending {
		for _, doc := range pending[ri].Docs {
			remaining[ri] += size(doc)
		}
	}
	scheduled := make(map[xmldoc.DocID]struct{})
	var out []xmldoc.DocID
	used := 0
	for {
		best := xmldoc.DocID(0)
		bestScore := -1.0
		found := false
		for _, doc := range d.docs {
			if _, ok := scheduled[doc]; ok {
				continue
			}
			s := size(doc)
			if used+s > capacity && !(used == 0 && s > capacity) {
				continue
			}
			score := 0.0
			for _, ri := range d.need[doc] {
				if remaining[ri] > 0 {
					score += 1 / float64(remaining[ri])
				}
			}
			if score > bestScore {
				bestScore, best, found = score, doc, true
			}
		}
		if !found {
			break
		}
		scheduled[best] = struct{}{}
		out = append(out, best)
		used += size(best)
		for _, ri := range d.need[best] {
			remaining[ri] -= size(best)
		}
		if used >= capacity {
			break
		}
	}
	return out
}
