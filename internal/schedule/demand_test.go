package schedule

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/xmldoc"
)

// checkInvariants verifies the DemandIndex's internal consistency: doc
// lists sorted, requester lists in seq order, remaining-byte sums exact,
// arrival extrema correct, zombie accounting balanced, plan deltas rolled
// back, and the FCFS order sorted whenever it claims to be.
func checkInvariants(t *testing.T, x *DemandIndex) {
	t.Helper()
	live, nz := 0, 0
	for id, rs := range x.reqs {
		if rs.dead {
			t.Fatalf("request %d tracked but dead", id)
		}
		if rs.id != id {
			t.Fatalf("request map key %d holds id %d", id, rs.id)
		}
		if rs.planDelta != 0 {
			t.Fatalf("request %d planDelta %d not rolled back", id, rs.planDelta)
		}
		if rs.zombie != (len(rs.docs) == 0) {
			t.Fatalf("request %d zombie=%v with %d docs", id, rs.zombie, len(rs.docs))
		}
		if rs.zombie {
			nz++
		}
		sum := 0
		for k, d := range rs.docs {
			if k > 0 && rs.docs[k-1] >= d {
				t.Fatalf("request %d docs not strictly ascending: %v", id, rs.docs)
			}
			ds := x.doc(d)
			if ds == nil {
				t.Fatalf("request %d demands doc %d missing from index", id, d)
			}
			sum += ds.size
			found := false
			for _, r := range ds.reqs {
				if r == rs {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("doc %d requester list misses request %d", d, id)
			}
		}
		if sum != rs.remaining {
			t.Fatalf("request %d remaining %d, want %d", id, rs.remaining, sum)
		}
		live++
	}
	if nz != x.nzombie {
		t.Fatalf("nzombie %d, counted %d", x.nzombie, nz)
	}
	ndocs := 0
	for i, ds := range x.docTab {
		if ds == nil {
			continue
		}
		ndocs++
		d := xmldoc.DocID(i)
		if ds.id != d {
			t.Fatalf("doc slot %d holds id %d", d, ds.id)
		}
		if len(ds.reqs) == 0 {
			t.Fatalf("doc %d has empty requester list", d)
		}
		min := ds.reqs[0].arrival
		for k, rs := range ds.reqs {
			if k > 0 && ds.reqs[k-1].seq >= rs.seq {
				t.Fatalf("doc %d requester list not in seq order", d)
			}
			if rs.arrival < min {
				min = rs.arrival
			}
			if rs.dead {
				t.Fatalf("doc %d lists dead request %d", d, rs.id)
			}
			if x.reqs[rs.id] != rs {
				t.Fatalf("doc %d lists untracked request %d", d, rs.id)
			}
			has := false
			for _, rd := range rs.docs {
				if rd == d {
					has = true
					break
				}
			}
			if !has {
				t.Fatalf("doc %d lists request %d that no longer demands it", d, rs.id)
			}
		}
		if min != ds.minArrival {
			t.Fatalf("doc %d minArrival %d, want %d", d, ds.minArrival, min)
		}
	}
	if ndocs != x.ndocs {
		t.Fatalf("ndocs %d, counted %d", x.ndocs, ndocs)
	}
	seen := 0
	for _, rs := range x.byArrival {
		if rs.dead {
			continue
		}
		seen++
		if x.reqs[rs.id] != rs {
			t.Fatalf("byArrival holds live entry %d not in request map", rs.id)
		}
	}
	if seen != live {
		t.Fatalf("byArrival holds %d live entries, request map %d", seen, live)
	}
	if !x.sortDirty {
		for i := 1; i < len(x.byArrival); i++ {
			a, b := x.byArrival[i-1], x.byArrival[i]
			if b.arrival < a.arrival || (b.arrival == a.arrival && b.id < a.id) {
				t.Fatalf("byArrival claims sorted but (%d,%d) precedes (%d,%d)",
					a.arrival, a.id, b.arrival, b.id)
			}
		}
	}
}

func randomSortedDocs(rng *rand.Rand, nDocs, k int) []xmldoc.DocID {
	picked := make(map[xmldoc.DocID]struct{}, k)
	for len(picked) < k {
		picked[xmldoc.DocID(rng.Intn(nDocs))] = struct{}{}
	}
	docs := make([]xmldoc.DocID, 0, k)
	for d := range picked {
		docs = append(docs, d)
	}
	for i := 1; i < len(docs); i++ {
		for j := i; j > 0 && docs[j-1] > docs[j]; j-- {
			docs[j-1], docs[j] = docs[j], docs[j-1]
		}
	}
	return docs
}

// TestIncrementalMatchesReferenceUnderChurn drives a DemandIndex and a
// mirror pending slice through randomized multi-cycle churn — arrivals,
// abandons, plan-predicted deliveries with client-side loss forcing
// reconciles, zombie expiry and periodic sharded rebuilds — asserting after
// every cycle that PlanIndexed equals the reference PlanCycle oracle
// exactly, for all four policies.
func TestIncrementalMatchesReferenceUnderChurn(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			sched, err := New(name)
			if err != nil {
				t.Fatal(err)
			}
			inc := sched.(IncrementalScheduler)
			ref := sched
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				const nDocs, capacity = 50, 5000
				sizes := make([]int, nDocs)
				for d := range sizes {
					sizes[d] = 300 + rng.Intn(4200)
				}
				sizes[nDocs-1] = capacity + 1000 // exercise the oversized rule
				size := func(d xmldoc.DocID) int { return sizes[d] }

				x := NewDemandIndex()
				var mirror []Request
				nextID := int64(0)
				now := int64(0)
				for step := 0; step < 45; step++ {
					now += int64(400 + rng.Intn(600))
					for k := 1 + rng.Intn(5); k > 0; k-- {
						r := Request{
							ID:      nextID,
							Arrival: now - int64(rng.Intn(200)),
							Docs:    randomSortedDocs(rng, nDocs, 1+rng.Intn(4)),
						}
						nextID++
						mirror = append(mirror, r)
						x.Apply(r, size)
					}
					if len(mirror) > 0 && rng.Intn(4) == 0 { // abandon
						i := rng.Intn(len(mirror))
						x.Remove(mirror[i].ID)
						mirror = append(mirror[:i], mirror[i+1:]...)
					}
					if step%9 == 5 { // cold-start / high-churn fallback path
						x.Rebuild(mirror, size, 1+rng.Intn(4))
					}
					checkInvariants(t, x)
					if len(mirror) == 0 {
						continue
					}

					want := ref.PlanCycle(mirror, size, capacity, now)
					got := inc.PlanIndexed(x, capacity, now)
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("seed %d step %d: PlanIndexed = %v, reference = %v",
							seed, step, got, want)
					}
					checkInvariants(t, x)

					planned := make(map[xmldoc.DocID]struct{}, len(got))
					for _, d := range got {
						planned[d] = struct{}{}
						x.DeliverDoc(d)
					}
					liveMirror := mirror[:0]
					for i := range mirror {
						r := mirror[i]
						kept := r.Docs[:0]
						for _, d := range r.Docs {
							if _, ok := planned[d]; ok && rng.Float64() >= 0.15 {
								continue // delivered
							}
							kept = append(kept, d) // not planned, or lost
						}
						r.Docs = kept
						if len(r.Docs) == 0 {
							continue // completed: driver retires it
						}
						if n, _, ok := x.Peek(r.ID); !ok || n != len(r.Docs) {
							x.Apply(r, size) // lossy delivery: reconcile
						}
						liveMirror = append(liveMirror, r)
					}
					mirror = liveMirror
					x.ExpireZombies()
					checkInvariants(t, x)
				}
			}
		})
	}
}

// TestIncrementalContractsAtScale quick-checks the scheduler contracts —
// capacity bound, no duplicates, demanded-documents-only, oversized rule —
// and exact reference equality on a 10k-request pending set, through a
// sharded rebuild plus incremental churn rounds.
func TestIncrementalContractsAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rng := rand.New(rand.NewSource(7))
	const nDocs, nReq, capacity = 400, 10_000, 120_000
	sizes := make([]int, nDocs)
	for d := range sizes {
		sizes[d] = 2000 + rng.Intn(18000)
	}
	sizes[nDocs-1] = capacity * 2
	size := func(d xmldoc.DocID) int { return sizes[d] }

	pending := make([]Request, nReq)
	for i := range pending {
		pending[i] = Request{
			ID:      int64(i),
			Arrival: int64(i / 16),
			Docs:    randomSortedDocs(rng, nDocs, 1+rng.Intn(4)),
		}
	}
	nextID := int64(nReq)

	x := NewDemandIndex()
	x.Rebuild(pending, size, 8)

	verify := func(round int) {
		t.Helper()
		now := int64(nReq/16 + round)
		demanded := make(map[xmldoc.DocID]struct{})
		for i := range pending {
			for _, d := range pending[i].Docs {
				demanded[d] = struct{}{}
			}
		}
		for _, name := range Names() {
			sched, _ := New(name)
			plan := sched.(IncrementalScheduler).PlanIndexed(x, capacity, now)
			seen := make(map[xmldoc.DocID]struct{}, len(plan))
			used := 0
			for _, d := range plan {
				if _, dup := seen[d]; dup {
					t.Fatalf("round %d %s: duplicate doc %d", round, name, d)
				}
				seen[d] = struct{}{}
				if _, ok := demanded[d]; !ok {
					t.Fatalf("round %d %s: undemanded doc %d", round, name, d)
				}
				used += size(d)
			}
			if used > capacity && !(len(plan) == 1 && size(plan[0]) > capacity) {
				t.Fatalf("round %d %s: %d bytes exceed capacity %d", round, name, used, capacity)
			}
			if want := sched.PlanCycle(pending, size, capacity, now); !reflect.DeepEqual(want, plan) {
				t.Fatalf("round %d %s: PlanIndexed diverges from reference", round, name)
			}
		}
	}

	verify(0)
	for round := 1; round <= 3; round++ {
		for k := 0; k < 500; k++ { // ~5% churn: drop the oldest, add a new
			x.Remove(pending[0].ID)
			pending = pending[1:]
			r := Request{
				ID:      nextID,
				Arrival: int64(nReq/16 + round),
				Docs:    randomSortedDocs(rng, nDocs, 1+rng.Intn(4)),
			}
			nextID++
			pending = append(pending, r)
			x.Apply(r, size)
		}
		verify(round)
	}
	checkInvariants(t, x)
}
