package schedule

import (
	"sort"

	"repro/internal/xmldoc"
)

// IncrementalScheduler is a Scheduler that can plan directly from a
// maintained DemandIndex instead of a per-cycle pending slice. The plan is
// defined to be identical to PlanCycle over the equivalent pending set (see
// the DemandIndex contracts); all four built-in policies implement it.
type IncrementalScheduler interface {
	Scheduler
	// PlanIndexed chooses the next cycle's documents from the index under
	// PlanCycle's capacity, duplicate and oversized-document rules.
	PlanIndexed(x *DemandIndex, capacity int, now int64) []xmldoc.DocID
}

var (
	_ IncrementalScheduler = LeeLo{}
	_ IncrementalScheduler = FCFS{}
	_ IncrementalScheduler = MRF{}
	_ IncrementalScheduler = RxW{}
)

// PlanIndexed implements IncrementalScheduler.
func (FCFS) PlanIndexed(x *DemandIndex, capacity int, _ int64) []xmldoc.DocID {
	return x.planFCFS(capacity)
}

// PlanIndexed implements IncrementalScheduler.
func (MRF) PlanIndexed(x *DemandIndex, capacity int, _ int64) []xmldoc.DocID {
	return x.planByCount(capacity, func(ds *demandDoc) int64 {
		return int64(len(ds.reqs))
	})
}

// PlanIndexed implements IncrementalScheduler. The oldest wait per document
// is read off the maintained min-arrival extremum instead of a per-cycle
// scan.
func (RxW) PlanIndexed(x *DemandIndex, capacity int, now int64) []xmldoc.DocID {
	return x.planByCount(capacity, func(ds *demandDoc) int64 {
		oldest := now - ds.minArrival
		if oldest < 1 {
			oldest = 1 // fresh requests still compete on R
		}
		return int64(len(ds.reqs)) * oldest
	})
}

// PlanIndexed implements IncrementalScheduler.
func (LeeLo) PlanIndexed(x *DemandIndex, capacity int, _ int64) []xmldoc.DocID {
	return x.planLeeLo(capacity)
}

// planFCFS streams the (arrival, id)-ordered request list through fill's
// packing rules, deduplicating docs with a generation-stamped bitmap. The
// order is kept sorted lazily: appends are monotone in steady state, so a
// sort only happens after an out-of-order add or a rebuild from an
// unsorted slice.
func (x *DemandIndex) planFCFS(capacity int) []xmldoc.DocID {
	if x.sortDirty {
		sort.Slice(x.byArrival, func(i, j int) bool {
			a, b := x.byArrival[i], x.byArrival[j]
			if a.arrival != b.arrival {
				return a.arrival < b.arrival
			}
			return a.id < b.id
		})
		x.sortDirty = false
	}
	x.ensureSeen()
	gen := x.nextSeenGen()
	out := x.out[:0]
	used := 0
	for _, rs := range x.byArrival {
		if rs.dead {
			continue
		}
		for _, d := range rs.docs {
			if x.seen[d] == gen {
				continue
			}
			x.seen[d] = gen
			s := x.doc(d).size
			if used+s > capacity {
				if used == 0 && s > capacity {
					x.out = out
					return []xmldoc.DocID{d}
				}
				continue
			}
			out = append(out, d)
			used += s
		}
	}
	x.out = out
	return append([]xmldoc.DocID(nil), out...)
}

// planByCount runs MRF/RxW: integer document scores popped from a max-heap
// (score descending, doc ascending — the reference's stable sort order)
// through fill's packing rules, with an early exit once no live document
// can fit the remaining capacity.
func (x *DemandIndex) planByCount(capacity int, score func(*demandDoc) int64) []xmldoc.DocID {
	h := x.heap[:0]
	minSize := int(^uint(0) >> 1)
	for _, ds := range x.docTab {
		if ds == nil {
			continue
		}
		h = append(h, docHeapEntry{iscore: score(ds), doc: ds.id})
		if ds.size < minSize {
			minSize = ds.size
		}
	}
	heapify(h, lessByCount)
	out := x.out[:0]
	used := 0
	for len(h) > 0 {
		if used > 0 && capacity-used < minSize {
			break // nothing left can fit: identical output, fewer pops
		}
		var e docHeapEntry
		e, h = heapPop(h, lessByCount)
		s := x.doc(e.doc).size
		if used+s > capacity {
			if used == 0 && s > capacity {
				x.heap, x.out = h[:0], out
				return []xmldoc.DocID{e.doc}
			}
			continue
		}
		out = append(out, e.doc)
		used += s
	}
	x.heap, x.out = h[:0], out
	return append([]xmldoc.DocID(nil), out...)
}

// planLeeLo is the greedy Lee & Lo allocation over a lazy max-heap of
// document scores. Because scores only grow while a plan accrues picks
// (remaining bytes shrink), stale heap entries underestimate: picking a
// document therefore eagerly re-scores every document sharing a requester
// with it and pushes a fresh versioned entry (invalidate-and-repush), so
// the heap top with a current version is always the true maximum and stale
// pops are simply discarded. Non-fitting documents are dropped permanently
// (used bytes only grow), and per-request plan deltas are rolled back on
// exit.
func (x *DemandIndex) planLeeLo(capacity int) []xmldoc.DocID {
	x.refreshScores()
	x.plan++
	h := x.heap[:0]
	for _, ds := range x.docTab {
		if ds == nil {
			continue
		}
		h = append(h, docHeapEntry{fscore: ds.score, doc: ds.id, ver: ds.hver})
	}
	heapify(h, lessLeeLo)
	out := x.out[:0]
	used := 0
	touched := x.touched[:0]
	for len(h) > 0 {
		var e docHeapEntry
		e, h = heapPop(h, lessLeeLo)
		ds := x.doc(e.doc)
		if ds == nil || ds.pickedAt == x.plan || ds.droppedAt == x.plan || e.ver != ds.hver {
			continue
		}
		s := ds.size
		if used+s > capacity && !(used == 0 && s > capacity) {
			ds.droppedAt = x.plan
			continue
		}
		ds.pickedAt = x.plan
		out = append(out, ds.id)
		used += s
		x.op++
		ds.rescoredAt = x.op
		for _, rs := range ds.reqs {
			if rs.planDelta == 0 {
				touched = append(touched, rs)
			}
			rs.planDelta += s
		}
		// Rescore sharers only after every requester's delta is applied:
		// a doc sharing several requesters with the pick must see all of
		// them shrink before its fresh entry is scored.
		for _, rs := range ds.reqs {
			for _, d2 := range rs.docs {
				o := x.doc(d2)
				if o == ds || o.rescoredAt == x.op ||
					o.pickedAt == x.plan || o.droppedAt == x.plan {
					continue
				}
				o.rescoredAt = x.op
				o.hver++
				h = heapPush(h, docHeapEntry{fscore: x.planScore(o), doc: o.id, ver: o.hver}, lessLeeLo)
			}
		}
		if used >= capacity {
			break
		}
	}
	for _, rs := range touched {
		rs.planDelta = 0
	}
	x.touched = touched[:0]
	x.heap, x.out = h[:0], out
	return append([]xmldoc.DocID(nil), out...)
}

// lessLeeLo orders heap entries by float score descending, doc ascending —
// the pop order the reference's ascending strict-max scan produces.
func lessLeeLo(a, b docHeapEntry) bool {
	if a.fscore != b.fscore {
		return a.fscore > b.fscore
	}
	return a.doc < b.doc
}

// lessByCount orders heap entries by integer score descending, doc
// ascending.
func lessByCount(a, b docHeapEntry) bool {
	if a.iscore != b.iscore {
		return a.iscore > b.iscore
	}
	return a.doc < b.doc
}

func heapify(h []docHeapEntry, less func(a, b docHeapEntry) bool) {
	for i := len(h)/2 - 1; i >= 0; i-- {
		siftDown(h, i, less)
	}
}

func heapPush(h []docHeapEntry, e docHeapEntry, less func(a, b docHeapEntry) bool) []docHeapEntry {
	h = append(h, e)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	return h
}

func heapPop(h []docHeapEntry, less func(a, b docHeapEntry) bool) (docHeapEntry, []docHeapEntry) {
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	siftDown(h, 0, less)
	return top, h
}

func siftDown(h []docHeapEntry, i int, less func(a, b docHeapEntry) bool) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && less(h[l], h[best]) {
			best = l
		}
		if r < n && less(h[r], h[best]) {
			best = r
		}
		if best == i {
			return
		}
		h[i], h[best] = h[best], h[i]
		i = best
	}
}
