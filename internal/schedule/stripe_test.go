package schedule

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/xmldoc"
)

func TestStripeSingleChannelIdentity(t *testing.T) {
	plan := []xmldoc.DocID{5, 3, 9, 1}
	size := func(d xmldoc.DocID) int { return int(d) }
	for _, k := range []int{0, 1} {
		got := Stripe(plan, size, k)
		if len(got) != 1 || !reflect.DeepEqual(got[0], plan) {
			t.Errorf("Stripe(k=%d) = %v, want the plan as one stripe", k, got)
		}
	}
}

func TestStripePreservesOrderAndPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	sizes := make(map[xmldoc.DocID]int)
	var plan []xmldoc.DocID
	for i := 0; i < 50; i++ {
		d := xmldoc.DocID(i)
		plan = append(plan, d)
		sizes[d] = 100 + rng.Intn(4000)
	}
	size := func(d xmldoc.DocID) int { return sizes[d] }
	for _, k := range []int{2, 3, 7} {
		stripes := Stripe(plan, size, k)
		if len(stripes) != k {
			t.Fatalf("k=%d: got %d stripes", k, len(stripes))
		}
		// Every document appears exactly once, and each stripe preserves
		// the plan's delivery order.
		seen := make(map[xmldoc.DocID]bool)
		for _, s := range stripes {
			for i, d := range s {
				if seen[d] {
					t.Fatalf("k=%d: doc %d striped twice", k, d)
				}
				seen[d] = true
				if i > 0 && s[i-1] >= d {
					t.Errorf("k=%d: stripe order %v violates plan order", k, s)
				}
			}
		}
		if len(seen) != len(plan) {
			t.Errorf("k=%d: %d of %d docs striped", k, len(seen), len(plan))
		}
	}
}

func TestStripeBalance(t *testing.T) {
	// Uniform sizes: greedy least-loaded must keep loads within one
	// document of each other.
	var plan []xmldoc.DocID
	for i := 0; i < 41; i++ {
		plan = append(plan, xmldoc.DocID(i))
	}
	const docSize = 1000
	size := func(xmldoc.DocID) int { return docSize }
	stripes := Stripe(plan, size, 4)
	min, max := len(plan), 0
	for _, s := range stripes {
		if len(s) < min {
			min = len(s)
		}
		if len(s) > max {
			max = len(s)
		}
	}
	if max-min > 1 {
		t.Errorf("uniform stripes sized %d..%d docs; want within one", min, max)
	}
}

func TestStripeSkewed(t *testing.T) {
	size := func(xmldoc.DocID) int { return 100 }
	plan := make([]xmldoc.DocID, 130)
	for i := range plan {
		plan[i] = xmldoc.DocID(i)
	}
	for _, k := range []int{0, 1} {
		got := StripeSkewed(plan, size, k)
		if len(got) != 1 || !reflect.DeepEqual(got[0], plan) {
			t.Errorf("StripeSkewed(k=%d) returned %d stripes, want the plan as one", k, len(got))
		}
	}

	const k = 4
	stripes := StripeSkewed(plan, size, k)
	if len(stripes) != k {
		t.Fatalf("got %d stripes, want %d", len(stripes), k)
	}
	// The split is contiguous in delivery order: concatenating the stripes
	// reproduces the plan, so the hottest prefix lands on stripe 0.
	var cat []xmldoc.DocID
	for _, s := range stripes {
		cat = append(cat, s...)
	}
	if !reflect.DeepEqual(cat, plan) {
		t.Errorf("stripes are not a contiguous split of the plan")
	}
	// Stripe 0 has weight 1 against k for the rest: it carries roughly
	// 1/(1+k(k-1)) of the bytes, so with uniform sizes it must be the
	// smallest stripe by a wide margin.
	if got, want := len(stripes[0]), len(plan)/(1+k*(k-1)); got != want {
		t.Errorf("hot stripe carries %d docs, want %d", got, want)
	}
	for c := 1; c < k; c++ {
		if len(stripes[c]) <= len(stripes[0]) {
			t.Errorf("stripe %d (%d docs) not larger than hot stripe (%d docs)", c, len(stripes[c]), len(stripes[0]))
		}
	}
}

func TestStripeDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := make(map[xmldoc.DocID]int)
	var plan []xmldoc.DocID
	for i := 0; i < 30; i++ {
		d := xmldoc.DocID(rng.Intn(1000))
		if _, dup := sizes[d]; dup {
			continue
		}
		plan = append(plan, d)
		sizes[d] = 1 + rng.Intn(5000)
	}
	size := func(d xmldoc.DocID) int { return sizes[d] }
	first := Stripe(plan, size, 5)
	for i := 0; i < 10; i++ {
		if got := Stripe(plan, size, 5); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: striping is not deterministic", i)
		}
	}
}
