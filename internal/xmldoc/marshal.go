package xmldoc

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Marshal serialises the document as a compact XML byte string (no
// indentation, no XML declaration). The serialised length is what Size
// reports and what the broadcast scheduler budgets against.
func (d *Document) Marshal() []byte {
	var buf bytes.Buffer
	if d.Root != nil {
		writeNode(&buf, d.Root)
	}
	return buf.Bytes()
}

func writeNode(buf *bytes.Buffer, n *Node) {
	buf.WriteByte('<')
	buf.WriteString(n.Label)
	if n.Text == "" && len(n.Children) == 0 {
		buf.WriteString("/>")
		return
	}
	buf.WriteByte('>')
	if n.Text != "" {
		// Errors from EscapeText are impossible on a bytes.Buffer.
		_ = xml.EscapeText(buf, []byte(n.Text))
	}
	for _, c := range n.Children {
		writeNode(buf, c)
	}
	buf.WriteString("</")
	buf.WriteString(n.Label)
	buf.WriteByte('>')
}

// Parse reads one XML document from r and returns its element tree.
// Attributes, comments and processing instructions are discarded; character
// data is trimmed and attached to the enclosing element.
func Parse(r io.Reader) (*Node, error) {
	dec := xml.NewDecoder(r)
	var (
		stack []*Node
		root  *Node
	)
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmldoc: parse: %w", err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			n := &Node{Label: t.Name.Local}
			if len(stack) == 0 {
				if root != nil {
					return nil, fmt.Errorf("xmldoc: parse: multiple root elements")
				}
				root = n
			} else {
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmldoc: parse: unbalanced end element </%s>", t.Name.Local)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) == 0 {
				continue
			}
			text := strings.TrimSpace(string(t))
			if text == "" {
				continue
			}
			top := stack[len(stack)-1]
			if top.Text != "" {
				top.Text += " "
			}
			top.Text += text
		}
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmldoc: parse: unclosed element <%s>", stack[len(stack)-1].Label)
	}
	if root == nil {
		return nil, fmt.Errorf("xmldoc: parse: empty document")
	}
	return root, nil
}

// ParseString is Parse over a string.
func ParseString(s string) (*Node, error) {
	return Parse(strings.NewReader(s))
}
