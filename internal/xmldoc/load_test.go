package xmldoc

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
}

func TestLoadDir(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "b.xml", "<b><x/></b>")
	writeFile(t, dir, "a.xml", "<a/>")
	writeFile(t, dir, "notes.txt", "ignore me")
	if err := os.Mkdir(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	c, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Name-sorted: a.xml gets ID 1.
	if c.ByID(1).Root.Label != "a" || c.ByID(2).Root.Label != "b" {
		t.Errorf("documents out of order: %s, %s", c.ByID(1).Root.Label, c.ByID(2).Root.Label)
	}
}

func TestLoadDirErrors(t *testing.T) {
	if _, err := LoadDir("/does/not/exist"); err == nil {
		t.Error("missing dir loaded")
	}
	empty := t.TempDir()
	if _, err := LoadDir(empty); err == nil {
		t.Error("empty dir loaded")
	}
	bad := t.TempDir()
	writeFile(t, bad, "broken.xml", "<a><b>")
	if _, err := LoadDir(bad); err == nil {
		t.Error("malformed XML silently accepted")
	}
}

func TestLoadDirCaseInsensitiveSuffix(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir, "UP.XML", "<up/>")
	c, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if c.Len() != 1 || c.ByID(1).Root.Label != "up" {
		t.Errorf("uppercase suffix not loaded")
	}
}
