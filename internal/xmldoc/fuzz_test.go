package xmldoc

import "testing"

// FuzzParse checks the XML reader never panics and that anything it accepts
// survives a marshal/parse round trip with identical shape.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"<a/>", "<a><b>t</b></a>", "<a", "", "<a x='1'><!-- c --><b/></a>",
		"<a>&lt;</a>", "<a><b></a></b>", "<a/><b/>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		root, err := ParseString(src)
		if err != nil {
			return
		}
		d := NewDocument(1, root)
		back, err := ParseString(string(d.Marshal()))
		if err != nil {
			t.Fatalf("remarshal of accepted input failed: %v", err)
		}
		if !sameShape(root, back) {
			t.Fatal("marshal/parse round trip changed the tree")
		}
	})
}
