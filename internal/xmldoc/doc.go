// Package xmldoc provides the XML document model used throughout the
// broadcast system: element trees, parsing, serialisation and the label-path
// view that DataGuides and air indexes are built from.
//
// The model is deliberately minimal — elements, character data and document
// identity — because the ICDCS'09 two-tier air index operates purely on the
// label-path structure of documents. Attributes and processing instructions
// are parsed and discarded.
package xmldoc

import (
	"fmt"
	"sort"
	"strings"
)

// DocID identifies a document within a collection. The paper allocates two
// bytes per document identifier on air, which this type mirrors.
type DocID uint16

// Node is a single element node in a document tree.
type Node struct {
	// Label is the element name.
	Label string
	// Text is the concatenated character data directly under this element.
	Text string
	// Children are the child elements in document order.
	Children []*Node
}

// El constructs an element node with the given children. It is a convenience
// for building documents in code and tests.
func El(label string, children ...*Node) *Node {
	return &Node{Label: label, Children: children}
}

// TextEl constructs a leaf element carrying character data.
func TextEl(label, text string) *Node {
	return &Node{Label: label, Text: text}
}

// NumNodes reports the number of element nodes in the subtree rooted at n.
func (n *Node) NumNodes() int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += c.NumNodes()
	}
	return total
}

// Depth reports the maximum element depth of the subtree rooted at n, where a
// leaf element has depth 1.
func (n *Node) Depth() int {
	if n == nil {
		return 0
	}
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Child returns the first child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	for _, c := range n.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Document is one XML document with a stable identity in a collection.
type Document struct {
	ID   DocID
	Root *Node

	// size caches the serialised length; 0 means "not yet computed".
	size int
}

// NewDocument wraps a root element as a document with the given identity.
func NewDocument(id DocID, root *Node) *Document {
	return &Document{ID: id, Root: root}
}

// Size reports the serialised byte length of the document. The result is
// cached; mutating the tree after the first call yields stale sizes, so
// documents are treated as immutable once placed in a Collection.
func (d *Document) Size() int {
	if d.size == 0 {
		d.size = len(d.Marshal())
	}
	return d.size
}

// Labels returns the sorted set of distinct element labels in the document.
func (d *Document) Labels() []string {
	set := make(map[string]struct{})
	var walk func(*Node)
	walk = func(n *Node) {
		set[n.Label] = struct{}{}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if d.Root != nil {
		walk(d.Root)
	}
	labels := make([]string, 0, len(set))
	for l := range set {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// WalkPaths visits every element of the document in pre-order together with
// its root-to-element label path. The callback must not retain the path
// slice, which is reused between invocations.
func (d *Document) WalkPaths(visit func(path []string, n *Node)) {
	if d.Root == nil {
		return
	}
	path := make([]string, 0, 16)
	var walk func(*Node)
	walk = func(n *Node) {
		path = append(path, n.Label)
		visit(path, n)
		for _, c := range n.Children {
			walk(c)
		}
		path = path[:len(path)-1]
	}
	walk(d.Root)
}

// UniquePaths returns the set of distinct label paths of the document, each
// encoded with PathKey, in sorted order. This is exactly the node set of the
// document's strong DataGuide.
func (d *Document) UniquePaths() []string {
	set := make(map[string]struct{})
	d.WalkPaths(func(path []string, _ *Node) {
		set[PathKey(path)] = struct{}{}
	})
	paths := make([]string, 0, len(set))
	for p := range set {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// PathKey encodes a label path as a canonical string, e.g. ["a","b"] → "/a/b".
func PathKey(path []string) string {
	if len(path) == 0 {
		return "/"
	}
	var b strings.Builder
	for _, step := range path {
		b.WriteByte('/')
		b.WriteString(step)
	}
	return b.String()
}

// SplitPathKey is the inverse of PathKey.
func SplitPathKey(key string) []string {
	if key == "" || key == "/" {
		return nil
	}
	return strings.Split(strings.TrimPrefix(key, "/"), "/")
}

// Collection is an immutable set of documents the server broadcasts from.
type Collection struct {
	docs []*Document
	byID map[DocID]*Document
}

// NewCollection builds a collection from documents. Document IDs must be
// unique; a duplicate ID is reported as an error.
func NewCollection(docs []*Document) (*Collection, error) {
	byID := make(map[DocID]*Document, len(docs))
	for _, d := range docs {
		if _, dup := byID[d.ID]; dup {
			return nil, fmt.Errorf("xmldoc: duplicate document id %d", d.ID)
		}
		byID[d.ID] = d
	}
	cp := make([]*Document, len(docs))
	copy(cp, docs)
	return &Collection{docs: cp, byID: byID}, nil
}

// Len reports the number of documents.
func (c *Collection) Len() int { return len(c.docs) }

// Docs returns the documents in collection order. Callers must not mutate
// the returned slice.
func (c *Collection) Docs() []*Document { return c.docs }

// ByID returns the document with the given ID, or nil if absent.
func (c *Collection) ByID(id DocID) *Document { return c.byID[id] }

// TotalSize reports the summed serialised size of all documents in bytes.
func (c *Collection) TotalSize() int {
	total := 0
	for _, d := range c.docs {
		total += d.Size()
	}
	return total
}

// IDs returns all document IDs in collection order.
func (c *Collection) IDs() []DocID {
	ids := make([]DocID, len(c.docs))
	for i, d := range c.docs {
		ids[i] = d.ID
	}
	return ids
}
