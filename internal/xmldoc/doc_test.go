package xmldoc

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func sampleDoc() *Document {
	// Mirrors document d1 of the paper's running example (Fig. 2):
	// a root with b children, b containing a and c.
	root := El("a",
		El("b", El("a"), El("c")),
		El("b", El("a")),
	)
	return NewDocument(1, root)
}

func TestNodeBasics(t *testing.T) {
	d := sampleDoc()
	if got := d.Root.NumNodes(); got != 6 {
		t.Errorf("NumNodes() = %d, want 6", got)
	}
	if got := d.Root.Depth(); got != 3 {
		t.Errorf("Depth() = %d, want 3", got)
	}
	if got := d.Root.Child("b"); got == nil || got.Label != "b" {
		t.Errorf("Child(b) = %v, want first b child", got)
	}
	if got := d.Root.Child("zzz"); got != nil {
		t.Errorf("Child(zzz) = %v, want nil", got)
	}
}

func TestUniquePaths(t *testing.T) {
	d := sampleDoc()
	want := []string{"/a", "/a/b", "/a/b/a", "/a/b/c"}
	if got := d.UniquePaths(); !reflect.DeepEqual(got, want) {
		t.Errorf("UniquePaths() = %v, want %v", got, want)
	}
}

func TestLabels(t *testing.T) {
	d := sampleDoc()
	want := []string{"a", "b", "c"}
	if got := d.Labels(); !reflect.DeepEqual(got, want) {
		t.Errorf("Labels() = %v, want %v", got, want)
	}
}

func TestPathKeyRoundTrip(t *testing.T) {
	tests := []struct {
		path []string
		key  string
	}{
		{nil, "/"},
		{[]string{"a"}, "/a"},
		{[]string{"a", "b", "c"}, "/a/b/c"},
	}
	for _, tt := range tests {
		if got := PathKey(tt.path); got != tt.key {
			t.Errorf("PathKey(%v) = %q, want %q", tt.path, got, tt.key)
		}
		back := SplitPathKey(tt.key)
		if len(back) != len(tt.path) {
			t.Errorf("SplitPathKey(%q) = %v, want %v", tt.key, back, tt.path)
			continue
		}
		for i := range back {
			if back[i] != tt.path[i] {
				t.Errorf("SplitPathKey(%q)[%d] = %q, want %q", tt.key, i, back[i], tt.path[i])
			}
		}
	}
}

func TestMarshalParse(t *testing.T) {
	tests := []struct {
		name string
		give *Node
		want string
	}{
		{
			name: "empty leaf",
			give: El("a"),
			want: "<a/>",
		},
		{
			name: "text leaf",
			give: TextEl("a", "hi <there>"),
			want: "<a>hi &lt;there&gt;</a>",
		},
		{
			name: "nested",
			give: El("a", El("b", El("c")), TextEl("d", "x")),
			want: "<a><b><c/></b><d>x</d></a>",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := NewDocument(1, tt.give)
			got := string(d.Marshal())
			if got != tt.want {
				t.Fatalf("Marshal() = %q, want %q", got, tt.want)
			}
			back, err := ParseString(got)
			if err != nil {
				t.Fatalf("ParseString(%q): %v", got, err)
			}
			if !sameShape(tt.give, back) {
				t.Errorf("parse(marshal(doc)) has different shape: %v vs %v", tt.give, back)
			}
		})
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		give string
	}{
		{"empty", ""},
		{"unclosed", "<a><b></b>"},
		{"two roots", "<a/><b/>"},
		{"garbage", "<a><"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ParseString(tt.give); err == nil {
				t.Errorf("ParseString(%q) succeeded, want error", tt.give)
			}
		})
	}
}

func TestParseDiscardsAttributesAndComments(t *testing.T) {
	n, err := ParseString(`<a x="1"><!-- hi --><b y="2">t</b></a>`)
	if err != nil {
		t.Fatalf("ParseString: %v", err)
	}
	if n.Label != "a" || len(n.Children) != 1 || n.Children[0].Label != "b" {
		t.Fatalf("unexpected tree: %+v", n)
	}
	if n.Children[0].Text != "t" {
		t.Errorf("text = %q, want %q", n.Children[0].Text, "t")
	}
}

func TestDocumentSizeMatchesMarshal(t *testing.T) {
	d := sampleDoc()
	if d.Size() != len(d.Marshal()) {
		t.Errorf("Size() = %d, want %d", d.Size(), len(d.Marshal()))
	}
	// Cached value stays stable.
	if d.Size() != len(d.Marshal()) {
		t.Errorf("second Size() differs")
	}
}

func TestCollection(t *testing.T) {
	a := NewDocument(1, El("a"))
	b := NewDocument(2, El("b"))
	c, err := NewCollection([]*Document{a, b})
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	if c.Len() != 2 {
		t.Errorf("Len() = %d, want 2", c.Len())
	}
	if c.ByID(2) != b {
		t.Errorf("ByID(2) != b")
	}
	if c.ByID(99) != nil {
		t.Errorf("ByID(99) != nil")
	}
	if got := c.TotalSize(); got != a.Size()+b.Size() {
		t.Errorf("TotalSize() = %d, want %d", got, a.Size()+b.Size())
	}
	if got := c.IDs(); !reflect.DeepEqual(got, []DocID{1, 2}) {
		t.Errorf("IDs() = %v", got)
	}
}

func TestCollectionDuplicateID(t *testing.T) {
	a := NewDocument(1, El("a"))
	b := NewDocument(1, El("b"))
	if _, err := NewCollection([]*Document{a, b}); err == nil {
		t.Fatal("NewCollection with duplicate IDs succeeded, want error")
	}
}

// randomTree builds a random element tree for property tests.
func randomTree(r *rand.Rand, depth int) *Node {
	labels := []string{"a", "b", "c", "d", "e"}
	n := &Node{Label: labels[r.Intn(len(labels))]}
	if r.Intn(3) == 0 {
		n.Text = "txt"
	}
	if depth > 0 {
		kids := r.Intn(4)
		for i := 0; i < kids; i++ {
			n.Children = append(n.Children, randomTree(r, depth-1))
		}
	}
	return n
}

func sameShape(a, b *Node) bool {
	if a.Label != b.Label || a.Text != b.Text || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Children {
		if !sameShape(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// TestQuickMarshalParseRoundTrip checks parse(marshal(t)) == t for random
// trees.
func TestQuickMarshalParseRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tree := randomTree(r, 4)
		d := NewDocument(1, tree)
		back, err := ParseString(string(d.Marshal()))
		if err != nil {
			return false
		}
		return sameShape(tree, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickUniquePathsAreWalkPaths checks that UniquePaths is exactly the
// deduplicated, sorted set of WalkPaths keys.
func TestQuickUniquePathsAreWalkPaths(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		d := NewDocument(1, randomTree(r, 4))
		set := make(map[string]struct{})
		d.WalkPaths(func(path []string, _ *Node) {
			set[PathKey(path)] = struct{}{}
		})
		want := make([]string, 0, len(set))
		for k := range set {
			want = append(want, k)
		}
		sort.Strings(want)
		return reflect.DeepEqual(d.UniquePaths(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
