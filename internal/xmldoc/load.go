package xmldoc

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir builds a collection from every .xml file in a directory
// (non-recursively). Files are ordered by name and assigned document IDs
// 1..n, so a directory is a reproducible collection. Files that fail to
// parse are reported, not skipped: a broadcast server must not silently
// drop content.
func LoadDir(dir string) (*Collection, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("xmldoc: load %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(strings.ToLower(e.Name()), ".xml") {
			continue
		}
		names = append(names, e.Name())
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("xmldoc: no .xml files in %s", dir)
	}
	sort.Strings(names)
	if len(names) > int(^DocID(0)) {
		return nil, fmt.Errorf("xmldoc: %d documents exceed the DocID space", len(names))
	}
	docs := make([]*Document, 0, len(names))
	for i, name := range names {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("xmldoc: load %s: %w", name, err)
		}
		root, err := Parse(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("xmldoc: load %s: %w", name, err)
		}
		docs = append(docs, NewDocument(DocID(i+1), root))
	}
	return NewCollection(docs)
}
