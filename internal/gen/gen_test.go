package gen

import (
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func TestDocumentsDeterministic(t *testing.T) {
	cfg := DocConfig{Schema: dtd.NITF(), NumDocs: 5, Seed: 7}
	a, err := Documents(cfg)
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	b, err := Documents(cfg)
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	if a.TotalSize() != b.TotalSize() {
		t.Errorf("same seed produced different sizes: %d vs %d", a.TotalSize(), b.TotalSize())
	}
	for i := range a.Docs() {
		if string(a.Docs()[i].Marshal()) != string(b.Docs()[i].Marshal()) {
			t.Fatalf("doc %d differs between identical runs", i)
		}
	}
	c, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 5, Seed: 8})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	if string(a.Docs()[0].Marshal()) == string(c.Docs()[0].Marshal()) {
		t.Error("different seeds produced identical first documents")
	}
}

func TestDocumentsShape(t *testing.T) {
	for _, schema := range []*dtd.Schema{dtd.NITF(), dtd.NASA()} {
		t.Run(schema.Name, func(t *testing.T) {
			c, err := Documents(DocConfig{Schema: schema, NumDocs: 20, Seed: 1})
			if err != nil {
				t.Fatalf("Documents: %v", err)
			}
			if c.Len() != 20 {
				t.Fatalf("Len() = %d, want 20", c.Len())
			}
			declared := make(map[string]bool)
			for _, l := range schema.Labels() {
				declared[l] = true
			}
			for _, d := range c.Docs() {
				if d.Root.Label != schema.Root {
					t.Fatalf("doc %d root = %q, want %q", d.ID, d.Root.Label, schema.Root)
				}
				for _, l := range d.Labels() {
					if !declared[l] {
						t.Fatalf("doc %d has undeclared label %q", d.ID, l)
					}
				}
				if d.Size() < 100 {
					t.Errorf("doc %d suspiciously small: %d bytes", d.ID, d.Size())
				}
			}
		})
	}
}

func TestDocumentsDepthCap(t *testing.T) {
	c, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 30, MaxDepth: 6, Seed: 3})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	for _, d := range c.Docs() {
		if depth := d.Root.Depth(); depth > 6 {
			t.Fatalf("doc %d depth %d exceeds cap 6", d.ID, depth)
		}
	}
}

func TestDocumentsTextScale(t *testing.T) {
	small, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 1, TextScale: 0.5})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	large, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 1, TextScale: 4})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	if large.TotalSize() <= small.TotalSize() {
		t.Errorf("TextScale did not scale sizes: %d vs %d", large.TotalSize(), small.TotalSize())
	}
}

func TestDocumentsErrors(t *testing.T) {
	tests := []struct {
		name string
		give DocConfig
	}{
		{"nil schema", DocConfig{NumDocs: 1}},
		{"zero docs", DocConfig{Schema: dtd.NITF()}},
		{"negative docs", DocConfig{Schema: dtd.NITF(), NumDocs: -2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Documents(tt.give); err == nil {
				t.Error("Documents succeeded, want error")
			}
		})
	}
}

func testCollection(t *testing.T) *xmldoc.Collection {
	t.Helper()
	c, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 42})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	return c
}

func TestQueriesNonEmptyResults(t *testing.T) {
	c := testCollection(t)
	qs, err := Queries(c, QueryConfig{NumQueries: 100, MaxDepth: 5, WildcardProb: 0.3, Seed: 9})
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	if len(qs) != 100 {
		t.Fatalf("got %d queries, want 100", len(qs))
	}
	for _, q := range qs {
		if len(q.MatchingDocs(c)) == 0 {
			t.Fatalf("query %s has empty result set", q)
		}
	}
}

func TestQueriesRespectDepth(t *testing.T) {
	c := testCollection(t)
	for _, depth := range []int{1, 2, 4, 8} {
		qs, err := Queries(c, QueryConfig{NumQueries: 50, MaxDepth: depth, Seed: 1})
		if err != nil {
			t.Fatalf("Queries: %v", err)
		}
		for _, q := range qs {
			if q.Depth() > depth {
				t.Fatalf("query %s exceeds depth %d", q, depth)
			}
		}
	}
}

func TestQueriesWildcardProb(t *testing.T) {
	c := testCollection(t)
	exact, err := Queries(c, QueryConfig{NumQueries: 200, MaxDepth: 5, WildcardProb: 0, Seed: 2})
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	for _, q := range exact {
		if q.HasWildcards() {
			t.Fatalf("P=0 produced wildcard query %s", q)
		}
	}
	wild, err := Queries(c, QueryConfig{NumQueries: 200, MaxDepth: 5, WildcardProb: 0.5, Seed: 2})
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	count := 0
	for _, q := range wild {
		if q.HasWildcards() {
			count++
		}
	}
	if count == 0 {
		t.Error("P=0.5 produced no wildcard queries")
	}
}

func TestQueriesErrors(t *testing.T) {
	c := testCollection(t)
	tests := []struct {
		name string
		give QueryConfig
	}{
		{"zero queries", QueryConfig{}},
		{"bad prob", QueryConfig{NumQueries: 1, WildcardProb: 2}},
		{"bad depth", QueryConfig{NumQueries: 1, MaxDepth: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Queries(c, tt.give); err == nil {
				t.Error("Queries succeeded, want error")
			}
		})
	}
	empty, err := xmldoc.NewCollection(nil)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	if _, err := Queries(empty, QueryConfig{NumQueries: 1}); err == nil {
		t.Error("Queries over empty collection succeeded, want error")
	}
}

func TestRequestsUniformAndZipf(t *testing.T) {
	pool := []xpath.Path{
		xpath.MustParse("/a"),
		xpath.MustParse("/b"),
		xpath.MustParse("/c"),
		xpath.MustParse("/d"),
	}
	uni, err := Requests(pool, WorkloadConfig{NumRequests: 400, Seed: 5})
	if err != nil {
		t.Fatalf("Requests: %v", err)
	}
	if len(uni) != 400 {
		t.Fatalf("got %d requests, want 400", len(uni))
	}
	zipf, err := Requests(pool, WorkloadConfig{NumRequests: 400, ZipfS: 2.0, Seed: 5})
	if err != nil {
		t.Fatalf("Requests: %v", err)
	}
	count := func(reqs []xpath.Path, q xpath.Path) int {
		n := 0
		for _, r := range reqs {
			if r.Equal(q) {
				n++
			}
		}
		return n
	}
	// Under Zipf the first pool entry must dominate.
	if c0 := count(zipf, pool[0]); c0 < 200 {
		t.Errorf("zipf head count = %d, want >= 200", c0)
	}
	// Under uniform it must not.
	if c0 := count(uni, pool[0]); c0 > 200 {
		t.Errorf("uniform head count = %d, want < 200", c0)
	}
}

func TestRequestsErrors(t *testing.T) {
	pool := []xpath.Path{xpath.MustParse("/a")}
	if _, err := Requests(nil, WorkloadConfig{NumRequests: 1}); err == nil {
		t.Error("empty pool succeeded")
	}
	if _, err := Requests(pool, WorkloadConfig{}); err == nil {
		t.Error("zero requests succeeded")
	}
	if _, err := Requests(pool, WorkloadConfig{NumRequests: 1, ZipfS: 0.5}); err == nil {
		t.Error("bad zipf succeeded")
	}
}

// TestQuickQueriesAlwaysSatisfiable is the load-bearing workload invariant:
// for any seed and wildcard probability, every generated query matches at
// least one document.
func TestQuickQueriesAlwaysSatisfiable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := testCollection(t)
	f := func(seed int64, pRaw uint8) bool {
		p := float64(pRaw%101) / 100
		qs, err := Queries(c, QueryConfig{NumQueries: 10, MaxDepth: 6, WildcardProb: p, Seed: seed})
		if err != nil {
			return false
		}
		for _, q := range qs {
			if len(q.MatchingDocs(c)) == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPoissonArrivals(t *testing.T) {
	a, err := PoissonArrivals(200, 100, 7)
	if err != nil {
		t.Fatalf("PoissonArrivals: %v", err)
	}
	if len(a) != 200 {
		t.Fatalf("len = %d", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i] < a[i-1] {
			t.Fatalf("arrivals not monotone at %d", i)
		}
	}
	// Mean gap within a loose band of the requested 100.
	mean := float64(a[len(a)-1]) / float64(len(a))
	if mean < 50 || mean > 200 {
		t.Errorf("mean gap %.1f far from 100", mean)
	}
	// Determinism.
	b, err := PoissonArrivals(200, 100, 7)
	if err != nil {
		t.Fatalf("PoissonArrivals: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("not deterministic")
		}
	}
	if _, err := PoissonArrivals(0, 100, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := PoissonArrivals(1, 0, 1); err == nil {
		t.Error("meanGap=0 accepted")
	}
}
