// Package gen produces the synthetic workloads of the paper's evaluation:
// schema-driven random XML documents (standing in for the IBM XML Generator
// over the NITF and NASA DTDs) and random simple-XPath queries with a
// configurable wildcard probability P and maximum depth D_Q (standing in for
// the modified YFilter query generator). All generation is deterministic for
// a given seed.
package gen

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/dtd"
	"repro/internal/xmldoc"
)

// DocConfig controls document generation.
type DocConfig struct {
	// Schema drives the element structure. Required.
	Schema *dtd.Schema
	// NumDocs is how many documents to generate. Required (> 0).
	NumDocs int
	// MaxDepth caps the element depth of generated trees; elements at the
	// cap are emitted as leaves. This bounds recursive schemas. Default 12.
	MaxDepth int
	// TextScale multiplies every element's mean text length, scaling the
	// byte size of documents without changing their path structure.
	// Default 1.0.
	TextScale float64
	// FirstID is the DocID assigned to the first document; subsequent
	// documents get consecutive IDs. Default 1.
	FirstID xmldoc.DocID
	// Seed seeds the deterministic random source. A zero seed is valid and
	// distinct from seed 1.
	Seed int64
}

func (c *DocConfig) applyDefaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 12
	}
	if c.TextScale == 0 {
		c.TextScale = 1
	}
	if c.FirstID == 0 {
		c.FirstID = 1
	}
}

// Documents generates a document collection according to cfg.
func Documents(cfg DocConfig) (*xmldoc.Collection, error) {
	cfg.applyDefaults()
	if cfg.Schema == nil {
		return nil, fmt.Errorf("gen: DocConfig.Schema is required")
	}
	if err := cfg.Schema.Validate(); err != nil {
		return nil, fmt.Errorf("gen: %w", err)
	}
	if cfg.NumDocs <= 0 {
		return nil, fmt.Errorf("gen: DocConfig.NumDocs must be positive, got %d", cfg.NumDocs)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	docs := make([]*xmldoc.Document, 0, cfg.NumDocs)
	g := &docGen{schema: cfg.Schema, r: r, maxDepth: cfg.MaxDepth, textScale: cfg.TextScale}
	for i := 0; i < cfg.NumDocs; i++ {
		root := g.element(cfg.Schema.Root, 1)
		docs = append(docs, xmldoc.NewDocument(cfg.FirstID+xmldoc.DocID(i), root))
	}
	return xmldoc.NewCollection(docs)
}

type docGen struct {
	schema    *dtd.Schema
	r         *rand.Rand
	maxDepth  int
	textScale float64
}

func (g *docGen) element(name string, depth int) *xmldoc.Node {
	decl := g.schema.Elements[name]
	n := &xmldoc.Node{Label: name}
	if depth < g.maxDepth {
		for _, p := range decl.Children {
			if p.Prob < 1 && g.r.Float64() >= p.Prob {
				continue
			}
			count := p.Min
			if p.Max > p.Min {
				count += g.r.Intn(p.Max - p.Min + 1)
			}
			for i := 0; i < count; i++ {
				n.Children = append(n.Children, g.element(p.Name, depth+1))
			}
		}
	}
	if decl.TextProb > 0 && g.r.Float64() < decl.TextProb {
		n.Text = g.text(int(float64(decl.TextLen) * g.textScale))
	}
	return n
}

// loremWords provides filler character data; content is irrelevant to the
// index, only byte volume matters.
var loremWords = strings.Fields(
	"lorem ipsum dolor sit amet consectetur adipiscing elit sed do eiusmod " +
		"tempor incididunt ut labore et dolore magna aliqua enim ad minim veniam " +
		"quis nostrud exercitation ullamco laboris nisi aliquip ex ea commodo")

func (g *docGen) text(meanLen int) string {
	if meanLen <= 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(meanLen + 12)
	for b.Len() < meanLen {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(loremWords[g.r.Intn(len(loremWords))])
	}
	return b.String()
}
