package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// QueryConfig controls query-pool generation, mirroring the paper's
// parameters P (wildcard probability) and D_Q (maximum query depth).
type QueryConfig struct {
	// NumQueries is the pool size. Required (> 0).
	NumQueries int
	// MaxDepth is D_Q, the maximum number of location steps. Default 5.
	MaxDepth int
	// WildcardProb is P, the per-step probability that the step is relaxed
	// into a wildcard: half of the relaxations become a `*` node test, the
	// other half a `//` axis. Default 0 (exact paths).
	WildcardProb float64
	// DepthExact makes every query as deep as possible (min of MaxDepth
	// and the source path's length) instead of drawing the depth uniformly
	// from [1, MaxDepth]. Deep-only workloads make D_Q a true selectivity
	// knob: raising it strictly increases average query selectivity, which
	// is the regime the paper's Fig. 9(c)/11(c) D_Q sweeps describe. Under
	// the default uniform draw, shallow queries stay in every mix and
	// dominate the requested-document union.
	DepthExact bool
	// Seed seeds the deterministic random source.
	Seed int64
}

func (c *QueryConfig) applyDefaults() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 5
	}
}

// Queries generates a pool of queries against the given collection. Each
// query is derived from an existing label path of some document and then
// relaxed, so every generated query has a non-empty result set — the paper
// assumes "the result set for each request is not empty".
func Queries(c *xmldoc.Collection, cfg QueryConfig) ([]xpath.Path, error) {
	cfg.applyDefaults()
	if cfg.NumQueries <= 0 {
		return nil, fmt.Errorf("gen: QueryConfig.NumQueries must be positive, got %d", cfg.NumQueries)
	}
	if cfg.MaxDepth <= 0 {
		return nil, fmt.Errorf("gen: QueryConfig.MaxDepth must be positive, got %d", cfg.MaxDepth)
	}
	if cfg.WildcardProb < 0 || cfg.WildcardProb > 1 {
		return nil, fmt.Errorf("gen: QueryConfig.WildcardProb must be in [0,1], got %g", cfg.WildcardProb)
	}
	if c.Len() == 0 {
		return nil, fmt.Errorf("gen: cannot generate queries over an empty collection")
	}
	// Collect the distinct label paths of the whole collection once; queries
	// are random truncations of random paths.
	paths := collectionPaths(c)
	if len(paths) == 0 {
		return nil, fmt.Errorf("gen: collection has no label paths")
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	out := make([]xpath.Path, 0, cfg.NumQueries)
	for len(out) < cfg.NumQueries {
		base := paths[r.Intn(len(paths))]
		// The depth roll is drawn unconditionally (common random numbers,
		// as for the wildcard rolls below).
		roll := r.Intn(min(len(base), cfg.MaxDepth))
		depth := 1 + roll
		if cfg.DepthExact {
			depth = min(len(base), cfg.MaxDepth)
		}
		q := xpath.Path{Steps: make([]xpath.Step, depth)}
		for i := 0; i < depth; i++ {
			q.Steps[i] = xpath.Step{Axis: xpath.Child, Label: base[i]}
			// Common random numbers: the roll and the relaxation kind are
			// drawn unconditionally so that, for a fixed seed, sweeping P
			// produces pointwise-relaxed query sets (a step relaxed at
			// P = p1 stays relaxed, identically, at every P > p1). This
			// makes index-size curves monotone in P, free of workload
			// resampling noise.
			roll := r.Float64()
			star := r.Intn(2) == 0
			if roll < cfg.WildcardProb {
				if star {
					q.Steps[i].Label = xpath.Wildcard
				} else {
					q.Steps[i].Axis = xpath.Descendant
				}
			}
		}
		// A truncated path always matches the document it came from only if
		// the truncation itself is a full element path — which it is, since
		// every prefix of a label path is a label path. Relaxation then only
		// grows the match set, so q is guaranteed non-empty.
		out = append(out, q)
	}
	return out, nil
}

// collectionPaths returns every distinct label path in the collection as a
// label slice, in deterministic order.
func collectionPaths(c *xmldoc.Collection) [][]string {
	seen := make(map[string][]string)
	order := make([]string, 0, 64)
	for _, d := range c.Docs() {
		for _, key := range d.UniquePaths() {
			if _, ok := seen[key]; !ok {
				seen[key] = xmldoc.SplitPathKey(key)
				order = append(order, key)
			}
		}
	}
	out := make([][]string, len(order))
	for i, key := range order {
		out[i] = seen[key]
	}
	return out
}

// WorkloadConfig controls how client requests are drawn from a query pool.
type WorkloadConfig struct {
	// NumRequests is the number of requests to draw. Required (> 0).
	NumRequests int
	// ZipfS is the Zipf skew parameter (> 1) over pool ranks; popular
	// queries are requested by many clients, as in a real broadcast
	// audience. Zero selects the uniform distribution.
	ZipfS float64
	// Seed seeds the deterministic random source.
	Seed int64
}

// Requests draws a request workload from the pool. Duplicate requests are
// expected and meaningful (the paper's example has q2 == q6).
func Requests(pool []xpath.Path, cfg WorkloadConfig) ([]xpath.Path, error) {
	if len(pool) == 0 {
		return nil, fmt.Errorf("gen: empty query pool")
	}
	if cfg.NumRequests <= 0 {
		return nil, fmt.Errorf("gen: WorkloadConfig.NumRequests must be positive, got %d", cfg.NumRequests)
	}
	if cfg.ZipfS != 0 && cfg.ZipfS <= 1 {
		return nil, fmt.Errorf("gen: WorkloadConfig.ZipfS must be > 1 (or 0 for uniform), got %g", cfg.ZipfS)
	}
	r := rand.New(rand.NewSource(cfg.Seed))
	pick := func() int { return r.Intn(len(pool)) }
	if cfg.ZipfS != 0 {
		z := rand.NewZipf(r, cfg.ZipfS, 1, uint64(len(pool)-1))
		pick = func() int { return int(z.Uint64()) }
	}
	out := make([]xpath.Path, cfg.NumRequests)
	for i := range out {
		out[i] = pool[pick()]
	}
	return out, nil
}

// PoissonArrivals draws n request arrival times (in broadcast bytes) with
// exponentially distributed inter-arrival gaps of the given mean — the
// classic open-system arrival process, as opposed to the evenly spaced
// arrivals the experiment defaults use. Times are non-decreasing and start
// at the first gap.
func PoissonArrivals(n int, meanGap float64, seed int64) ([]int64, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: PoissonArrivals needs n > 0, got %d", n)
	}
	if meanGap <= 0 {
		return nil, fmt.Errorf("gen: PoissonArrivals needs meanGap > 0, got %g", meanGap)
	}
	r := rand.New(rand.NewSource(seed))
	out := make([]int64, n)
	t := 0.0
	for i := range out {
		t += r.ExpFloat64() * meanGap
		out[i] = int64(t)
	}
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
