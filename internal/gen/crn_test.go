package gen

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/xpath"
)

// TestQueriesCommonRandomNumbers verifies the sweep property the experiment
// harness relies on: with a fixed seed, raising P only relaxes steps — the
// query sets at P1 < P2 are pointwise related (same shape, P2's steps are a
// superset of P1's relaxations), so every match set grows monotonically.
func TestQueriesCommonRandomNumbers(t *testing.T) {
	c, err := Documents(DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 42})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	gen := func(p float64) []xpath.Path {
		qs, err := Queries(c, QueryConfig{NumQueries: 80, MaxDepth: 5, WildcardProb: p, Seed: 9})
		if err != nil {
			t.Fatalf("Queries(P=%v): %v", p, err)
		}
		return qs
	}
	low := gen(0.1)
	high := gen(0.4)
	if len(low) != len(high) {
		t.Fatalf("query counts differ: %d vs %d", len(low), len(high))
	}
	for i := range low {
		if len(low[i].Steps) != len(high[i].Steps) {
			t.Fatalf("query %d: depths differ (%s vs %s)", i, low[i], high[i])
		}
		for s := range low[i].Steps {
			ls, hs := low[i].Steps[s], high[i].Steps[s]
			lRelaxed := ls.Label == xpath.Wildcard || ls.Axis == xpath.Descendant
			hRelaxed := hs.Label == xpath.Wildcard || hs.Axis == xpath.Descendant
			if lRelaxed && !hRelaxed {
				t.Fatalf("query %d step %d: relaxed at P=0.1 but not at P=0.4 (%s vs %s)", i, s, low[i], high[i])
			}
			if lRelaxed && hRelaxed && ls != hs {
				t.Fatalf("query %d step %d: relaxation kind changed (%s vs %s)", i, s, low[i], high[i])
			}
			if !lRelaxed && !hRelaxed && ls != hs {
				t.Fatalf("query %d step %d: unrelaxed steps differ (%s vs %s)", i, s, low[i], high[i])
			}
		}
		// Consequence: the match set can only grow.
		lowDocs := low[i].MatchingDocs(c)
		highDocs := high[i].MatchingDocs(c)
		if len(highDocs) < len(lowDocs) {
			t.Fatalf("query %d: match set shrank with P (%d -> %d)", i, len(lowDocs), len(highDocs))
		}
	}
}
