// Package journal is the broadcast server's durability layer: an
// append-only, CRC-framed write-ahead log of pending-set events (admissions,
// cycle commits, request and document removals) compacted by periodic
// snapshots, so a killed server restarts with the exact pending set it had
// durably acknowledged and resumes cycle assembly from the last committed
// cycle.
//
// The design follows the classic WAL + checkpoint recipe:
//
//   - every state change is appended to wal.log as a sync-byte + CRC32C
//     framed record carrying a monotonically increasing sequence number;
//   - every Options.SnapshotEvery records (and on clean Close) the full
//     state is written to state.snap via write-to-temp + atomic rename, and
//     the log is truncated — replay after a checkpoint skips records whose
//     sequence the snapshot already covers, so a crash between rename and
//     truncate never double-applies;
//   - recovery (Open on a non-empty directory) loads the snapshot, replays
//     the log, and stops at the first torn or corrupt record, truncating the
//     tail — a crash mid-append loses at most the record being written,
//     which by protocol was not yet acknowledged to anyone.
//
// Appends are flushed to the OS on every call, so a killed *process* loses
// nothing that was acknowledged; Options.Fsync additionally fsyncs each
// append for power-loss durability. Kill and CrashAfter simulate SIGKILL and
// torn writes deterministically for the crash-chaos tests.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// File names inside Options.Dir.
const (
	walName      = "wal.log"
	snapName     = "state.snap"
	snapTempName = "state.snap.tmp"
)

// snapMagic opens a snapshot file.
var snapMagic = []byte("XBJSNP01")

// Record sync bytes: every WAL record and snapshot body starts with this
// pair, so recovery can distinguish a torn tail from garbage.
const (
	recSync0 = 0xD5
	recSync1 = 0x1E
)

// Record types.
const (
	recAdmit     = 1 // one request admitted to the pending set
	recCommit    = 2 // one cycle's deliveries applied, cycle counter advanced
	recRemove    = 3 // one request removed without delivery (administrative)
	recDocAdd    = 4 // collection grew; payload is the new fingerprint
	recDocRemove = 5 // one document retired; pending remaining sets shrink
	recSnapshot  = 6 // full state (snapshot files only)
)

// recHdrLen is sync(2) + type(1) + length(4); recCRCLen trails the payload.
const (
	recHdrLen = 7
	recCRCLen = 4
)

// maxRecord bounds record payloads defensively (16 MiB).
const maxRecord = 16 << 20

// Defaults for Options zero values.
const (
	// DefaultSnapshotEvery is the number of appended records between
	// automatic compacting snapshots.
	DefaultSnapshotEvery = 256
	// DefaultServedHorizon is how many recently retired requests the journal
	// remembers for the session-resume handshake's "already served" answers.
	DefaultServedHorizon = 1024
)

// castagnoli is the CRC32C table shared by all record writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends after Close, Kill, or a crash-point
// failure injected with CrashAfter.
var ErrClosed = errors.New("journal: closed")

// errCorrupt marks a record rejected during replay (bad sync, insane length,
// checksum mismatch, or undecodable payload). Recovery treats it as the torn
// tail of the log, not a fatal error.
var errCorrupt = errors.New("journal: corrupt record")

// Options parameterises Open.
type Options struct {
	// Dir is the state directory; created if missing. Required.
	Dir string
	// Fsync fsyncs the log after every append. Without it appends are still
	// flushed to the OS (surviving a killed process), but a power failure
	// can lose the unsynced tail.
	Fsync bool
	// SnapshotEvery is the number of appended records between automatic
	// compacting snapshots. Zero selects DefaultSnapshotEvery; negative
	// disables automatic snapshots (Close still writes one).
	SnapshotEvery int
	// Epoch identifies the journal lineage in the session-resume handshake.
	// Used only when the directory is fresh; zero draws from the clock.
	Epoch uint64
	// ServedHorizon bounds the retired-request memory used to answer
	// "already served" on session resume. Zero selects DefaultServedHorizon.
	ServedHorizon int
}

// Request is one pending request as the journal records it.
type Request struct {
	// ID is the server-assigned request ID (admission order).
	ID int64
	// Arrival is the admission cycle number.
	Arrival int64
	// Query is the canonical XPath string.
	Query string
	// Remaining are the result documents not yet delivered.
	Remaining []uint16
}

// Delivery is one request's share of a committed cycle.
type Delivery struct {
	// ID is the request the documents were delivered to.
	ID int64
	// Docs are the document IDs removed from the request's remaining set.
	Docs []uint16
	// Retired marks the request as completed by this cycle.
	Retired bool
}

// ServedEntry remembers one retired request for session resumption.
type ServedEntry struct {
	// ID is the retired request.
	ID int64
	// Cycle is the cycle that completed it.
	Cycle int64
}

// State is the recovered (or live mirrored) journal state.
type State struct {
	// Epoch identifies the journal lineage; it survives restarts.
	Epoch uint64
	// Generation counts recoveries: 1 on a fresh directory, +1 per Open.
	Generation uint32
	// NextID is the last assigned request ID.
	NextID int64
	// Cycles is the next cycle number to assemble (last committed + 1).
	Cycles int64
	// Fingerprint is the document-collection fingerprint at the last
	// recorded epoch event (see Fingerprint).
	Fingerprint uint64
	// Pending holds the outstanding requests in admission order.
	Pending []Request
	// Served holds recently retired requests, oldest first.
	Served []ServedEntry
	// Truncated reports that recovery dropped a torn or corrupt log tail.
	Truncated bool
	// Replayed is the number of log records applied during recovery.
	Replayed int

	// seqFloor is the snapshot's sequence watermark: replay skips records at
	// or below it. replayCount counts records applied during recovery.
	seqFloor    uint64
	replayCount int
}

// clone deep-copies the state for handing outside the journal's lock.
func (s *State) clone() *State {
	out := *s
	out.Pending = make([]Request, len(s.Pending))
	for i, r := range s.Pending {
		r.Remaining = append([]uint16(nil), r.Remaining...)
		out.Pending[i] = r
	}
	out.Served = append([]ServedEntry(nil), s.Served...)
	return &out
}

// pendingIndex locates a request by ID, or -1.
func (s *State) pendingIndex(id int64) int {
	for i := range s.Pending {
		if s.Pending[i].ID == id {
			return i
		}
	}
	return -1
}

// Journal is an open write-ahead log plus its mirrored in-memory state. All
// methods are safe for concurrent use.
type Journal struct {
	mu   sync.Mutex
	dir  string
	opts Options

	f   *os.File
	w   io.Writer // f, or a crash-injecting wrapper
	buf []byte    // frame scratch

	state    State
	seq      uint64 // last assigned record sequence number
	appended int    // records since the last snapshot

	// crashBudget, when >= 0, is the number of bytes the log will still
	// accept before the journal dies mid-write (torn append). -1 disables.
	crashBudget int64
	dead        bool
}

// Open recovers the journal in dir (creating it when missing), bumps the
// restart generation, checkpoints the recovered state, and returns the
// journal ready for appends plus a deep copy of the recovered state.
func Open(opts Options) (*Journal, *State, error) {
	if opts.Dir == "" {
		return nil, nil, fmt.Errorf("journal: Options.Dir is required")
	}
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.ServedHorizon <= 0 {
		opts.ServedHorizon = DefaultServedHorizon
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: opts.Dir, opts: opts, crashBudget: -1}

	fresh, err := j.recover()
	if err != nil {
		return nil, nil, err
	}
	if fresh {
		j.state.Epoch = opts.Epoch
		if j.state.Epoch == 0 {
			j.state.Epoch = uint64(time.Now().UnixNano())
		}
	}
	j.state.Generation++

	// Checkpoint immediately: the bumped generation (and the compacted
	// recovered state) must be durable before any new appends.
	if err := j.checkpointLocked(); err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(filepath.Join(opts.Dir, walName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: open log: %w", err)
	}
	j.f = f
	j.w = f
	return j, j.state.clone(), nil
}

// recover loads the snapshot and replays the log into j.state, truncating
// any torn tail. Reports whether the directory held no prior state.
func (j *Journal) recover() (fresh bool, err error) {
	snapPath := filepath.Join(j.dir, snapName)
	snapData, err := os.ReadFile(snapPath)
	switch {
	case errors.Is(err, os.ErrNotExist):
		fresh = true
	case err != nil:
		return false, fmt.Errorf("journal: read snapshot: %w", err)
	default:
		if err := decodeSnapshot(snapData, &j.state); err != nil {
			return false, fmt.Errorf("journal: %w", err)
		}
		j.seq = j.state.seqFloor
	}

	walPath := filepath.Join(j.dir, walName)
	walData, err := os.ReadFile(walPath)
	if errors.Is(err, os.ErrNotExist) {
		return fresh, nil
	}
	if err != nil {
		return false, fmt.Errorf("journal: read log: %w", err)
	}
	if len(walData) > 0 {
		fresh = false
	}
	good := replay(walData, &j.state, &j.seq, j.opts.ServedHorizon)
	j.state.Replayed = j.state.replayCount
	if good < len(walData) {
		j.state.Truncated = true
		if err := os.Truncate(walPath, int64(good)); err != nil {
			return false, fmt.Errorf("journal: truncate torn tail: %w", err)
		}
	}
	return fresh, nil
}

// Admit appends one admission. The request is durably logged before Admit
// returns, so callers may acknowledge it to the client afterwards.
func (j *Journal) Admit(r Request) error {
	p := make([]byte, 0, 64+len(r.Query)+2*len(r.Remaining))
	p = binary.LittleEndian.AppendUint64(p, uint64(r.ID))
	p = binary.LittleEndian.AppendUint64(p, uint64(r.Arrival))
	if len(r.Query) > 0xFFFF {
		return fmt.Errorf("journal: query of %d bytes exceeds limit", len(r.Query))
	}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(r.Query)))
	p = append(p, r.Query...)
	if len(r.Remaining) > 0xFFFF {
		return fmt.Errorf("journal: %d remaining documents exceed limit", len(r.Remaining))
	}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(r.Remaining)))
	for _, d := range r.Remaining {
		p = binary.LittleEndian.AppendUint16(p, d)
	}
	return j.append(recAdmit, p)
}

// Commit appends one cycle's deliveries: the remaining-set shrinkage per
// request, retirements, and the cycle-counter advance to cycle+1.
func (j *Journal) Commit(cycle int64, deliveries []Delivery) error {
	p := make([]byte, 0, 16+32*len(deliveries))
	p = binary.LittleEndian.AppendUint64(p, uint64(cycle))
	if len(deliveries) > 0xFFFF {
		return fmt.Errorf("journal: %d deliveries exceed limit", len(deliveries))
	}
	p = binary.LittleEndian.AppendUint16(p, uint16(len(deliveries)))
	for _, d := range deliveries {
		p = binary.LittleEndian.AppendUint64(p, uint64(d.ID))
		if len(d.Docs) > 0xFFFF {
			return fmt.Errorf("journal: %d delivered documents exceed limit", len(d.Docs))
		}
		p = binary.LittleEndian.AppendUint16(p, uint16(len(d.Docs)))
		for _, doc := range d.Docs {
			p = binary.LittleEndian.AppendUint16(p, doc)
		}
		if d.Retired {
			p = append(p, 1)
		} else {
			p = append(p, 0)
		}
	}
	return j.append(recCommit, p)
}

// Remove appends one administrative removal: the request leaves the pending
// set without joining the served memory.
func (j *Journal) Remove(id int64) error {
	p := binary.LittleEndian.AppendUint64(nil, uint64(id))
	return j.append(recRemove, p)
}

// DocAdded records a collection-grow event and the resulting fingerprint.
func (j *Journal) DocAdded(fingerprint uint64) error {
	p := binary.LittleEndian.AppendUint64(nil, fingerprint)
	return j.append(recDocAdd, p)
}

// DocRemoved records a document retirement: every pending request drops doc
// from its remaining set, and requests thereby satisfied retire as served.
func (j *Journal) DocRemoved(doc uint16, fingerprint uint64) error {
	p := binary.LittleEndian.AppendUint64(nil, fingerprint)
	p = binary.LittleEndian.AppendUint16(p, doc)
	return j.append(recDocRemove, p)
}

// Served reports the retire cycle of a recently completed request, if it is
// still within the served horizon.
func (j *Journal) Served(id int64) (int64, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := len(j.state.Served) - 1; i >= 0; i-- {
		if j.state.Served[i].ID == id {
			return j.state.Served[i].Cycle, true
		}
	}
	return 0, false
}

// PendingID reports whether a request is still outstanding.
func (j *Journal) PendingID(id int64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.pendingIndex(id) >= 0
}

// Epoch reports the journal lineage ID.
func (j *Journal) Epoch() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Epoch
}

// Generation reports the restart generation (1 = fresh directory).
func (j *Journal) Generation() uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.Generation
}

// MirrorState deep-copies the journal's live mirrored state, exactly what a
// recovery at this instant would reconstruct (modulo an unsynced tail).
func (j *Journal) MirrorState() *State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state.clone()
}

// Snapshot checkpoints the state now and truncates the log.
func (j *Journal) Snapshot() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	return j.checkpointLocked()
}

// Sync flushes and (regardless of Options.Fsync) fsyncs the log.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return ErrClosed
	}
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close checkpoints, fsyncs and closes the journal. Further appends fail
// with ErrClosed.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead {
		return nil
	}
	err := j.checkpointLocked()
	j.dead = true
	if j.f != nil {
		if serr := j.f.Close(); err == nil {
			err = serr
		}
		j.f = nil
	}
	return err
}

// Kill is the SIGKILL equivalent: the journal dies in place with no final
// checkpoint, flush or fsync. Durable state is whatever previous appends
// already pushed to the OS (everything, unless CrashAfter tore the tail).
func (j *Journal) Kill() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.dead = true
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// CrashAfter arms a deterministic torn-write crash point: the log accepts at
// most n more bytes, then the journal dies mid-record — the partial frame is
// on disk, exactly as a power cut mid-append would leave it. n = 0 kills the
// next append before it writes anything.
func (j *Journal) CrashAfter(n int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.crashBudget = n
}

// append frames, mirrors and writes one record; the caller-visible error is
// nil only once the bytes reached the OS (and the disk under Fsync).
func (j *Journal) append(typ byte, payload []byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.dead || j.f == nil {
		return ErrClosed
	}
	j.seq++
	frame := appendRecord(j.buf[:0], typ, j.seq, payload)
	j.buf = frame[:0]

	// Mirror first: a write failure below kills the journal anyway, so the
	// mirror can never run behind a record that was durably acknowledged.
	if err := applyRecord(&j.state, typ, payload, j.opts.ServedHorizon); err != nil {
		j.seq--
		return err
	}

	if j.crashBudget >= 0 && int64(len(frame)) > j.crashBudget {
		// Torn write: part of the frame lands, then the "machine" dies.
		_, _ = j.f.Write(frame[:j.crashBudget])
		j.dead = true
		j.f.Close()
		j.f = nil
		return fmt.Errorf("journal: %w (crash point)", ErrClosed)
	}
	if j.crashBudget >= 0 {
		j.crashBudget -= int64(len(frame))
	}
	if _, err := j.f.Write(frame); err != nil {
		j.dead = true
		return fmt.Errorf("journal: append: %w", err)
	}
	if j.opts.Fsync {
		if err := j.f.Sync(); err != nil {
			j.dead = true
			return fmt.Errorf("journal: fsync: %w", err)
		}
	}
	j.appended++
	if j.opts.SnapshotEvery > 0 && j.appended >= j.opts.SnapshotEvery {
		if err := j.checkpointLocked(); err != nil {
			return err
		}
	}
	return nil
}

// checkpointLocked writes the snapshot atomically and truncates the log.
// Called with j.mu held.
func (j *Journal) checkpointLocked() error {
	snap := encodeSnapshot(&j.state, j.seq)
	tmp := filepath.Join(j.dir, snapTempName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if _, err := f.Write(snap); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("journal: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("journal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(j.dir, snapName)); err != nil {
		return fmt.Errorf("journal: snapshot rename: %w", err)
	}
	syncDir(j.dir)
	// The snapshot covers every logged record; restart the log. A crash
	// between the rename and this truncate double-covers records, which
	// replay skips by sequence number.
	if j.f != nil {
		if err := j.f.Truncate(0); err != nil {
			return fmt.Errorf("journal: truncate log: %w", err)
		}
		if _, err := j.f.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("journal: truncate log: %w", err)
		}
	} else {
		if err := os.Truncate(filepath.Join(j.dir, walName), 0); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("journal: truncate log: %w", err)
		}
	}
	j.appended = 0
	return nil
}

// syncDir best-effort fsyncs a directory so renames survive power loss.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// --- record framing -------------------------------------------------------

// appendRecord frames one record: sync bytes, type, payload length, the
// sequence number + payload, and a CRC32C trailer over type/length/body.
func appendRecord(dst []byte, typ byte, seq uint64, payload []byte) []byte {
	body := 8 + len(payload)
	dst = append(dst, recSync0, recSync1, typ)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(body))
	crcFrom := len(dst) - 5 // type + length
	dst = binary.LittleEndian.AppendUint64(dst, seq)
	dst = append(dst, payload...)
	crc := crc32.Checksum(dst[crcFrom:], castagnoli)
	return binary.LittleEndian.AppendUint32(dst, crc)
}

// readRecord parses one record at data[off:], returning the type, sequence,
// payload and the offset past the record. Torn or corrupt data returns
// errCorrupt (io.EOF when off is exactly at the end).
func readRecord(data []byte, off int) (typ byte, seq uint64, payload []byte, next int, err error) {
	if off == len(data) {
		return 0, 0, nil, off, io.EOF
	}
	if off+recHdrLen > len(data) {
		return 0, 0, nil, off, errCorrupt
	}
	if data[off] != recSync0 || data[off+1] != recSync1 {
		return 0, 0, nil, off, errCorrupt
	}
	typ = data[off+2]
	n := int(binary.LittleEndian.Uint32(data[off+3:]))
	if n < 8 || n > maxRecord {
		return 0, 0, nil, off, errCorrupt
	}
	end := off + recHdrLen + n + recCRCLen
	if end > len(data) {
		return 0, 0, nil, off, errCorrupt
	}
	body := data[off+recHdrLen : off+recHdrLen+n]
	got := binary.LittleEndian.Uint32(data[off+recHdrLen+n:])
	if want := crc32.Checksum(data[off+2:off+recHdrLen+n], castagnoli); got != want {
		return 0, 0, nil, off, errCorrupt
	}
	seq = binary.LittleEndian.Uint64(body)
	return typ, seq, body[8:], end, nil
}

// replay applies log records to st, skipping records the snapshot already
// covers, and returns the byte offset of the last good record boundary.
func replay(data []byte, st *State, seq *uint64, servedHorizon int) (good int) {
	off := 0
	for {
		typ, recSeq, payload, next, err := readRecord(data, off)
		if err != nil {
			return off
		}
		if recSeq > *seq {
			if recSeq != *seq+1 {
				// A gap means the log is not the snapshot's continuation;
				// treat everything from here as corrupt.
				return off
			}
			if err := applyRecord(st, typ, payload, servedHorizon); err != nil {
				return off
			}
			*seq = recSeq
			st.replayCount++
		}
		off = next
	}
}

// applyRecord applies one record's payload to the mirrored state. Decode
// errors leave st untouched and report errCorrupt.
func applyRecord(st *State, typ byte, p []byte, servedHorizon int) error {
	switch typ {
	case recAdmit:
		r, err := decodeAdmit(p)
		if err != nil {
			return err
		}
		if st.pendingIndex(r.ID) >= 0 {
			return fmt.Errorf("%w: duplicate admit %d", errCorrupt, r.ID)
		}
		st.Pending = append(st.Pending, r)
		if r.ID > st.NextID {
			st.NextID = r.ID
		}
	case recCommit:
		cycle, deliveries, err := decodeCommit(p)
		if err != nil {
			return err
		}
		for _, d := range deliveries {
			i := st.pendingIndex(d.ID)
			if i < 0 {
				continue
			}
			req := &st.Pending[i]
			if len(d.Docs) > 0 {
				drop := make(map[uint16]struct{}, len(d.Docs))
				for _, doc := range d.Docs {
					drop[doc] = struct{}{}
				}
				kept := req.Remaining[:0]
				for _, doc := range req.Remaining {
					if _, gone := drop[doc]; !gone {
						kept = append(kept, doc)
					}
				}
				req.Remaining = kept
			}
			if d.Retired || len(req.Remaining) == 0 {
				st.retire(i, cycle, servedHorizon)
			}
		}
		if cycle+1 > st.Cycles {
			st.Cycles = cycle + 1
		}
	case recRemove:
		if len(p) != 8 {
			return fmt.Errorf("%w: remove payload %d bytes", errCorrupt, len(p))
		}
		id := int64(binary.LittleEndian.Uint64(p))
		if i := st.pendingIndex(id); i >= 0 {
			st.Pending = append(st.Pending[:i], st.Pending[i+1:]...)
		}
	case recDocAdd:
		if len(p) != 8 {
			return fmt.Errorf("%w: doc-add payload %d bytes", errCorrupt, len(p))
		}
		st.Fingerprint = binary.LittleEndian.Uint64(p)
	case recDocRemove:
		if len(p) != 10 {
			return fmt.Errorf("%w: doc-remove payload %d bytes", errCorrupt, len(p))
		}
		st.Fingerprint = binary.LittleEndian.Uint64(p)
		doc := binary.LittleEndian.Uint16(p[8:])
		for i := 0; i < len(st.Pending); {
			req := &st.Pending[i]
			kept := req.Remaining[:0]
			for _, d := range req.Remaining {
				if d != doc {
					kept = append(kept, d)
				}
			}
			req.Remaining = kept
			if len(kept) == 0 {
				st.retire(i, st.Cycles, servedHorizon)
				continue
			}
			i++
		}
	default:
		return fmt.Errorf("%w: unknown record type %d", errCorrupt, typ)
	}
	return nil
}

// retire moves Pending[i] into the bounded served memory.
func (s *State) retire(i int, cycle int64, horizon int) {
	id := s.Pending[i].ID
	s.Pending = append(s.Pending[:i], s.Pending[i+1:]...)
	s.Served = append(s.Served, ServedEntry{ID: id, Cycle: cycle})
	if horizon > 0 && len(s.Served) > horizon {
		s.Served = append(s.Served[:0], s.Served[len(s.Served)-horizon:]...)
	}
}

func decodeAdmit(p []byte) (Request, error) {
	var r Request
	if len(p) < 18 {
		return r, fmt.Errorf("%w: admit payload %d bytes", errCorrupt, len(p))
	}
	r.ID = int64(binary.LittleEndian.Uint64(p))
	r.Arrival = int64(binary.LittleEndian.Uint64(p[8:]))
	qlen := int(binary.LittleEndian.Uint16(p[16:]))
	p = p[18:]
	if len(p) < qlen+2 {
		return r, fmt.Errorf("%w: admit query truncated", errCorrupt)
	}
	r.Query = string(p[:qlen])
	p = p[qlen:]
	n := int(binary.LittleEndian.Uint16(p))
	p = p[2:]
	if len(p) != 2*n {
		return r, fmt.Errorf("%w: admit remaining truncated", errCorrupt)
	}
	r.Remaining = make([]uint16, n)
	for i := 0; i < n; i++ {
		r.Remaining[i] = binary.LittleEndian.Uint16(p[2*i:])
	}
	return r, nil
}

func decodeCommit(p []byte) (int64, []Delivery, error) {
	if len(p) < 10 {
		return 0, nil, fmt.Errorf("%w: commit payload %d bytes", errCorrupt, len(p))
	}
	cycle := int64(binary.LittleEndian.Uint64(p))
	n := int(binary.LittleEndian.Uint16(p[8:]))
	p = p[10:]
	deliveries := make([]Delivery, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 10 {
			return 0, nil, fmt.Errorf("%w: commit delivery truncated", errCorrupt)
		}
		var d Delivery
		d.ID = int64(binary.LittleEndian.Uint64(p))
		nd := int(binary.LittleEndian.Uint16(p[8:]))
		p = p[10:]
		if len(p) < 2*nd+1 {
			return 0, nil, fmt.Errorf("%w: commit documents truncated", errCorrupt)
		}
		d.Docs = make([]uint16, nd)
		for k := 0; k < nd; k++ {
			d.Docs[k] = binary.LittleEndian.Uint16(p[2*k:])
		}
		p = p[2*nd:]
		d.Retired = p[0] == 1
		p = p[1:]
		deliveries = append(deliveries, d)
	}
	if len(p) != 0 {
		return 0, nil, fmt.Errorf("%w: commit trailing bytes", errCorrupt)
	}
	return cycle, deliveries, nil
}

// --- snapshot encoding ----------------------------------------------------

// encodeSnapshot serialises the full state as the snapshot magic followed by
// one framed recSnapshot record whose sequence is the log floor.
func encodeSnapshot(st *State, seq uint64) []byte {
	p := make([]byte, 0, 64+64*len(st.Pending)+16*len(st.Served))
	p = binary.LittleEndian.AppendUint64(p, st.Epoch)
	p = binary.LittleEndian.AppendUint32(p, st.Generation)
	p = binary.LittleEndian.AppendUint64(p, uint64(st.NextID))
	p = binary.LittleEndian.AppendUint64(p, uint64(st.Cycles))
	p = binary.LittleEndian.AppendUint64(p, st.Fingerprint)
	p = binary.LittleEndian.AppendUint32(p, uint32(len(st.Pending)))
	for _, r := range st.Pending {
		p = binary.LittleEndian.AppendUint64(p, uint64(r.ID))
		p = binary.LittleEndian.AppendUint64(p, uint64(r.Arrival))
		p = binary.LittleEndian.AppendUint16(p, uint16(len(r.Query)))
		p = append(p, r.Query...)
		p = binary.LittleEndian.AppendUint16(p, uint16(len(r.Remaining)))
		for _, d := range r.Remaining {
			p = binary.LittleEndian.AppendUint16(p, d)
		}
	}
	p = binary.LittleEndian.AppendUint32(p, uint32(len(st.Served)))
	for _, e := range st.Served {
		p = binary.LittleEndian.AppendUint64(p, uint64(e.ID))
		p = binary.LittleEndian.AppendUint64(p, uint64(e.Cycle))
	}
	out := append([]byte(nil), snapMagic...)
	return appendRecord(out, recSnapshot, seq, p)
}

// decodeSnapshot is the inverse of encodeSnapshot. It fills st and its
// seqFloor from the framed record.
func decodeSnapshot(data []byte, st *State) error {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return fmt.Errorf("%w: bad snapshot magic", errCorrupt)
	}
	typ, seq, p, next, err := readRecord(data, len(snapMagic))
	if err != nil || typ != recSnapshot || next != len(data) {
		return fmt.Errorf("%w: bad snapshot record", errCorrupt)
	}
	read := func(n int) ([]byte, bool) {
		if len(p) < n {
			return nil, false
		}
		out := p[:n]
		p = p[n:]
		return out, true
	}
	hdr, ok := read(36)
	if !ok {
		return fmt.Errorf("%w: snapshot header truncated", errCorrupt)
	}
	st.Epoch = binary.LittleEndian.Uint64(hdr)
	st.Generation = binary.LittleEndian.Uint32(hdr[8:])
	st.NextID = int64(binary.LittleEndian.Uint64(hdr[12:]))
	st.Cycles = int64(binary.LittleEndian.Uint64(hdr[20:]))
	st.Fingerprint = binary.LittleEndian.Uint64(hdr[28:])
	nb, ok := read(4)
	if !ok {
		return fmt.Errorf("%w: snapshot pending count truncated", errCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(nb))
	if n > maxRecord {
		return fmt.Errorf("%w: snapshot pending count %d", errCorrupt, n)
	}
	st.Pending = nil
	for i := 0; i < n; i++ {
		hdr, ok := read(18)
		if !ok {
			return fmt.Errorf("%w: snapshot request truncated", errCorrupt)
		}
		var r Request
		r.ID = int64(binary.LittleEndian.Uint64(hdr))
		r.Arrival = int64(binary.LittleEndian.Uint64(hdr[8:]))
		qb, ok := read(int(binary.LittleEndian.Uint16(hdr[16:])))
		if !ok {
			return fmt.Errorf("%w: snapshot query truncated", errCorrupt)
		}
		r.Query = string(qb)
		cb, ok := read(2)
		if !ok {
			return fmt.Errorf("%w: snapshot remaining truncated", errCorrupt)
		}
		nd := int(binary.LittleEndian.Uint16(cb))
		db, ok := read(2 * nd)
		if !ok {
			return fmt.Errorf("%w: snapshot remaining truncated", errCorrupt)
		}
		r.Remaining = make([]uint16, nd)
		for k := 0; k < nd; k++ {
			r.Remaining[k] = binary.LittleEndian.Uint16(db[2*k:])
		}
		st.Pending = append(st.Pending, r)
	}
	nb, ok = read(4)
	if !ok {
		return fmt.Errorf("%w: snapshot served count truncated", errCorrupt)
	}
	n = int(binary.LittleEndian.Uint32(nb))
	if n > maxRecord {
		return fmt.Errorf("%w: snapshot served count %d", errCorrupt, n)
	}
	st.Served = nil
	for i := 0; i < n; i++ {
		eb, ok := read(16)
		if !ok {
			return fmt.Errorf("%w: snapshot served truncated", errCorrupt)
		}
		st.Served = append(st.Served, ServedEntry{
			ID:    int64(binary.LittleEndian.Uint64(eb)),
			Cycle: int64(binary.LittleEndian.Uint64(eb[8:])),
		})
	}
	if len(p) != 0 {
		return fmt.Errorf("%w: snapshot trailing bytes", errCorrupt)
	}
	st.seqFloor = seq
	return nil
}

// Fingerprint is the order-independent collection fingerprint the server
// journals with epoch events: XOR of per-document hashes, so adds and
// removes update it incrementally. docs maps document ID to byte size.
func Fingerprint(docs map[uint16]int) uint64 {
	var fp uint64
	for id, size := range docs {
		fp ^= DocHash(id, size)
	}
	return fp
}

// DocHash is one document's fingerprint contribution (see Fingerprint).
func DocHash(id uint16, size int) uint64 {
	x := uint64(id)<<32 ^ uint64(uint32(size))
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// SortedPendingIDs is a test/diagnostic helper: the pending request IDs in
// ascending order.
func (s *State) SortedPendingIDs() []int64 {
	ids := make([]int64, 0, len(s.Pending))
	for _, r := range s.Pending {
		ids = append(ids, r.ID)
	}
	sort.Slice(ids, func(i, k int) bool { return ids[i] < ids[k] })
	return ids
}
