package journal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

func mustOpen(t *testing.T, opts Options) (*Journal, *State) {
	t.Helper()
	j, st, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return j, st
}

func req(id int64, arrival int64, q string, rem ...uint16) Request {
	return Request{ID: id, Arrival: arrival, Query: q, Remaining: rem}
}

// TestRoundTrip admits, commits, kills and recovers: the recovered state
// must match the live mirror at the kill point.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, st := mustOpen(t, Options{Dir: dir, Epoch: 42})
	if st.Generation != 1 || st.Epoch != 42 {
		t.Fatalf("fresh state: gen=%d epoch=%d", st.Generation, st.Epoch)
	}

	if err := j.Admit(req(1, 0, "/a/b", 3, 5, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(2, 0, "//c", 5)); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(0, []Delivery{{ID: 1, Docs: []uint16{5}}, {ID: 2, Docs: []uint16{5}, Retired: true}}); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(3, 1, "/x", 7)); err != nil {
		t.Fatal(err)
	}
	if err := j.DocAdded(0xDEAD); err != nil {
		t.Fatal(err)
	}
	want := j.MirrorState()
	j.Kill()

	j2, got := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if got.Epoch != 42 {
		t.Errorf("epoch: got %d want 42", got.Epoch)
	}
	if got.Generation != 2 {
		t.Errorf("generation: got %d want 2", got.Generation)
	}
	if got.NextID != 3 {
		t.Errorf("nextID: got %d want 3", got.NextID)
	}
	if got.Cycles != 1 {
		t.Errorf("cycles: got %d want 1", got.Cycles)
	}
	if got.Fingerprint != 0xDEAD {
		t.Errorf("fingerprint: got %#x want 0xDEAD", got.Fingerprint)
	}
	if !reflect.DeepEqual(got.Pending, want.Pending) {
		t.Errorf("pending mismatch:\n got  %+v\n want %+v", got.Pending, want.Pending)
	}
	if !reflect.DeepEqual(got.Served, want.Served) {
		t.Errorf("served mismatch:\n got  %+v\n want %+v", got.Served, want.Served)
	}
	if _, ok := j2.Served(2); !ok {
		t.Errorf("request 2 not in served memory after recovery")
	}
	if !j2.PendingID(1) || !j2.PendingID(3) {
		t.Errorf("pending IDs lost: 1=%v 3=%v", j2.PendingID(1), j2.PendingID(3))
	}
}

// TestTornTailTruncated cuts the log mid-record at every byte offset of the
// final record; recovery must drop exactly that record and keep the prefix.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if err := j.Admit(req(1, 0, "/a", 2)); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	prefix, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(2, 0, "/b", 4)); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	j.Kill()
	if len(full) <= len(prefix) {
		t.Fatalf("second record added no bytes: %d vs %d", len(full), len(prefix))
	}

	for cut := len(prefix); cut < len(full); cut++ {
		work := t.TempDir()
		copyFile(t, filepath.Join(dir, snapName), filepath.Join(work, snapName))
		if err := os.WriteFile(filepath.Join(work, walName), full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		j2, st := mustOpen(t, Options{Dir: work})
		if cut > len(prefix) && !st.Truncated {
			t.Errorf("cut=%d: torn tail not reported", cut)
		}
		if want := []int64{1}; !reflect.DeepEqual(st.SortedPendingIDs(), want) {
			t.Errorf("cut=%d: pending IDs %v, want %v", cut, st.SortedPendingIDs(), want)
		}
		j2.Close()
	}
}

// TestCorruptMiddleStopsReplay flips a byte inside the first record; replay
// must stop there, losing both records but never panicking.
func TestCorruptMiddleStopsReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if err := j.Admit(req(1, 0, "/a", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(2, 0, "/b", 4)); err != nil {
		t.Fatal(err)
	}
	j.Kill()
	walPath := filepath.Join(dir, walName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[recHdrLen+3] ^= 0xFF // inside the first record's body
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, st := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if !st.Truncated {
		t.Error("corruption not reported as truncation")
	}
	if len(st.Pending) != 0 {
		t.Errorf("pending after corrupt first record: %+v", st.Pending)
	}
}

// TestSnapshotCompaction drives enough appends to trigger automatic
// snapshots and verifies the log is compacted and recovery still exact.
func TestSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: 8})
	for i := int64(1); i <= 40; i++ {
		if err := j.Admit(req(i, i/4, "/q", uint16(i), uint16(i+1))); err != nil {
			t.Fatal(err)
		}
		if i%5 == 0 {
			if err := j.Commit(i/5-1, []Delivery{{ID: i - 4, Docs: []uint16{uint16(i - 4)}, Retired: true}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := j.MirrorState()
	fi, err := os.Stat(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	// 48 appends at SnapshotEvery=8 → the log never holds more than 8
	// records (~50 bytes each); well under the uncompacted ~2.5 KB.
	if fi.Size() > 1024 {
		t.Errorf("log not compacted: %d bytes", fi.Size())
	}
	j.Kill()

	j2, got := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if !reflect.DeepEqual(got.Pending, want.Pending) {
		t.Errorf("pending mismatch after compaction:\n got  %+v\n want %+v", got.Pending, want.Pending)
	}
	if got.Cycles != want.Cycles || got.NextID != want.NextID {
		t.Errorf("counters: got cycles=%d nextID=%d want cycles=%d nextID=%d",
			got.Cycles, got.NextID, want.Cycles, want.NextID)
	}
}

// TestGenerationBumps opens the same directory three times.
func TestGenerationBumps(t *testing.T) {
	dir := t.TempDir()
	for want := uint32(1); want <= 3; want++ {
		j, st := mustOpen(t, Options{Dir: dir})
		if st.Generation != want {
			t.Fatalf("open %d: generation %d", want, st.Generation)
		}
		j.Close()
	}
}

// TestCrashAfterTornWrite arms a byte budget so an append tears mid-frame;
// the journal must die, and recovery must see only the durable prefix.
func TestCrashAfterTornWrite(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if err := j.Admit(req(1, 0, "/a", 2)); err != nil {
		t.Fatal(err)
	}
	j.CrashAfter(5) // next frame is ~30 bytes; 5 land, then death
	if err := j.Admit(req(2, 0, "/b", 4)); err == nil {
		t.Fatal("append past crash point succeeded")
	}
	if err := j.Admit(req(3, 0, "/c", 6)); err == nil {
		t.Fatal("append on dead journal succeeded")
	}

	j2, st := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if !st.Truncated {
		t.Error("torn write not reported")
	}
	if want := []int64{1}; !reflect.DeepEqual(st.SortedPendingIDs(), want) {
		t.Errorf("pending IDs %v, want %v", st.SortedPendingIDs(), want)
	}
}

// TestCrashBetweenSnapshotAndTruncate simulates the rename-then-crash
// window: the snapshot covers the log's records, so replay must skip them
// rather than double-apply.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1})
	if err := j.Admit(req(1, 0, "/a", 2, 3)); err != nil {
		t.Fatal(err)
	}
	if err := j.Commit(0, []Delivery{{ID: 1, Docs: []uint16{2}}}); err != nil {
		t.Fatal(err)
	}
	// Save the log, snapshot (which truncates it), then put the stale log
	// back — as if the machine died between the rename and the truncate.
	walPath := filepath.Join(dir, walName)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Snapshot(); err != nil {
		t.Fatal(err)
	}
	want := j.MirrorState()
	j.Kill()
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, got := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if got.Replayed != 0 {
		t.Errorf("replayed %d records the snapshot already covers", got.Replayed)
	}
	if !reflect.DeepEqual(got.Pending, want.Pending) {
		t.Errorf("double-apply:\n got  %+v\n want %+v", got.Pending, want.Pending)
	}
}

// TestServedHorizonBounded retires more requests than the horizon holds.
func TestServedHorizonBounded(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, ServedHorizon: 4})
	for i := int64(1); i <= 10; i++ {
		if err := j.Admit(req(i, 0, "/q", 1)); err != nil {
			t.Fatal(err)
		}
		if err := j.Commit(i-1, []Delivery{{ID: i, Docs: []uint16{1}, Retired: true}}); err != nil {
			t.Fatal(err)
		}
	}
	st := j.MirrorState()
	if len(st.Served) != 4 {
		t.Fatalf("served memory holds %d, want 4", len(st.Served))
	}
	if _, ok := j.Served(10); !ok {
		t.Error("newest retiree evicted")
	}
	if _, ok := j.Served(5); ok {
		t.Error("old retiree survived past the horizon")
	}
	j.Close()
}

// TestDocRemoveShrinksPending retires a document and checks pending sets
// shrink, with fully-satisfied requests moving to served.
func TestDocRemoveShrinksPending(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	if err := j.Admit(req(1, 0, "/a", 7)); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(2, 0, "/b", 7, 9)); err != nil {
		t.Fatal(err)
	}
	if err := j.DocRemoved(7, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	j.Kill()

	j2, st := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if want := []int64{2}; !reflect.DeepEqual(st.SortedPendingIDs(), want) {
		t.Errorf("pending IDs %v, want %v", st.SortedPendingIDs(), want)
	}
	if !reflect.DeepEqual(st.Pending[0].Remaining, []uint16{9}) {
		t.Errorf("remaining %v, want [9]", st.Pending[0].Remaining)
	}
	if _, ok := j2.Served(1); !ok {
		t.Error("request satisfied by doc removal not in served memory")
	}
	if st.Fingerprint != 0xBEEF {
		t.Errorf("fingerprint %#x, want 0xBEEF", st.Fingerprint)
	}
}

// TestFingerprintIncremental checks the XOR fingerprint is order-independent
// and reversible.
func TestFingerprintIncremental(t *testing.T) {
	docs := map[uint16]int{1: 100, 2: 250, 3: 999}
	full := Fingerprint(docs)
	var inc uint64
	for _, id := range []uint16{3, 1, 2} {
		inc ^= DocHash(id, docs[id])
	}
	if inc != full {
		t.Errorf("incremental %#x != full %#x", inc, full)
	}
	inc ^= DocHash(2, 250)
	delete(docs, 2)
	if inc != Fingerprint(docs) {
		t.Errorf("after removal: incremental %#x != full %#x", inc, Fingerprint(docs))
	}
}

// TestMissingSnapshotWalOnly recovers from a directory holding only a log.
func TestMissingSnapshotWalOnly(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir, SnapshotEvery: -1, Epoch: 7})
	if err := j.Admit(req(1, 0, "/a", 2)); err != nil {
		t.Fatal(err)
	}
	j.Kill()
	if err := os.Remove(filepath.Join(dir, snapName)); err != nil {
		t.Fatal(err)
	}
	j2, st := mustOpen(t, Options{Dir: dir})
	defer j2.Close()
	if want := []int64{1}; !reflect.DeepEqual(st.SortedPendingIDs(), want) {
		t.Errorf("pending IDs %v, want %v", st.SortedPendingIDs(), want)
	}
	// The snapshot held the epoch; without it a fresh one is drawn, but the
	// log's records must still be applied. (Directories that lose their
	// snapshot lose lineage identity — clients resubmit, nothing is lost.)
	if st.Generation != 1 {
		t.Errorf("generation %d, want 1 for snapshot-less recovery", st.Generation)
	}
}

// TestCloseThenAppendFails verifies ErrClosed.
func TestCloseThenAppendFails(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, Options{Dir: dir})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Admit(req(1, 0, "/a")); err == nil {
		t.Fatal("append after Close succeeded")
	}
	if err := j.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func copyFile(t *testing.T, src, dst string) {
	t.Helper()
	data, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dst, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestRecordFraming round-trips the low-level framing.
func TestRecordFraming(t *testing.T) {
	frame := appendRecord(nil, recAdmit, 17, []byte("payload"))
	typ, seq, payload, next, err := readRecord(frame, 0)
	if err != nil {
		t.Fatal(err)
	}
	if typ != recAdmit || seq != 17 || !bytes.Equal(payload, []byte("payload")) || next != len(frame) {
		t.Errorf("round trip: typ=%d seq=%d payload=%q next=%d", typ, seq, payload, next)
	}
	// Every single-byte corruption must be rejected.
	for i := range frame {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x01
		if _, _, _, _, err := readRecord(mut, 0); err == nil {
			t.Errorf("corruption at byte %d accepted", i)
		}
	}
}
