package journal

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalRecover feeds arbitrary bytes as the snapshot and log of a
// state directory. Recovery must never panic: any corrupt prefix is either
// rejected (snapshot) or truncated (log), and the journal that comes back
// must accept appends and survive a second recovery.
func FuzzJournalRecover(f *testing.F) {
	// Seed with a well-formed snapshot + log pair, then torn/corrupt
	// variants of each.
	dir := f.TempDir()
	j, _, err := Open(Options{Dir: dir, SnapshotEvery: -1, Epoch: 3})
	if err != nil {
		f.Fatal(err)
	}
	j.Admit(Request{ID: 1, Arrival: 0, Query: "/a/b", Remaining: []uint16{2, 5}})
	j.Commit(0, []Delivery{{ID: 1, Docs: []uint16{2}}})
	j.DocAdded(0x1234)
	j.Kill()
	snap, _ := os.ReadFile(filepath.Join(dir, snapName))
	wal, _ := os.ReadFile(filepath.Join(dir, walName))
	f.Add(snap, wal)
	f.Add(snap, wal[:len(wal)/2])
	f.Add(snap[:len(snap)/2], wal)
	f.Add([]byte{}, wal)
	f.Add(snap, []byte{})
	f.Add([]byte{recSync0, recSync1, 99, 0xFF, 0xFF, 0xFF, 0xFF}, []byte{recSync0, recSync1})
	if len(wal) > 4 {
		mut := append([]byte(nil), wal...)
		mut[len(mut)/2] ^= 0xFF
		f.Add(snap, mut)
	}

	f.Fuzz(func(t *testing.T, snapData, walData []byte) {
		dir := t.TempDir()
		if len(snapData) > 0 {
			if err := os.WriteFile(filepath.Join(dir, snapName), snapData, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if len(walData) > 0 {
			if err := os.WriteFile(filepath.Join(dir, walName), walData, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		j, st, err := Open(Options{Dir: dir})
		if err != nil {
			// A corrupt snapshot is a hard error (lineage identity is
			// gone); the one thing forbidden is a panic.
			return
		}
		// Whatever was recovered must be internally consistent: pending IDs
		// unique and within NextID.
		seen := make(map[int64]bool, len(st.Pending))
		for _, r := range st.Pending {
			if seen[r.ID] {
				t.Fatalf("duplicate pending ID %d", r.ID)
			}
			seen[r.ID] = true
			if r.ID > st.NextID {
				t.Fatalf("pending ID %d above NextID %d", r.ID, st.NextID)
			}
		}
		// The recovered journal must accept appends and survive a second
		// recovery with the appended record intact.
		if err := j.Admit(Request{ID: st.NextID + 1, Arrival: st.Cycles, Query: "/z", Remaining: []uint16{1}}); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j.Kill()
		j2, st2, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if !j2.PendingID(st.NextID + 1) {
			t.Fatalf("record appended after recovery lost (pending %v)", st2.SortedPendingIDs())
		}
		j2.Close()
	})
}
