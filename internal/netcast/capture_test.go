package netcast

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/xpath"
)

func TestRecordAndReadCapture(t *testing.T) {
	srv, coll := startServer(t, broadcast.TwoTierMode)
	// Seed a request so the server broadcasts.
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	// Keep the channel busy for the whole recording: a drained pending set
	// stops the cycle loop and would starve the recorder of cycle heads.
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	t.Cleanup(func() { close(feederStop); <-feederDone })
	go func() {
		defer close(feederDone)
		q := xpath.MustParse("/nitf")
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			if err := cl.Submit(q); err != nil {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var buf bytes.Buffer
	n, err := Record(ctx, srv.BroadcastAddr(), 2, &buf)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if n != 2 {
		t.Fatalf("recorded %d cycles, want 2", n)
	}

	records, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCapture: %v", err)
	}
	if len(records) < 2 {
		t.Fatalf("parsed %d records, want >= 2", len(records))
	}
	for _, rec := range records[:2] {
		if !rec.TwoTier {
			t.Error("record not two-tier")
		}
		ix, err := rec.DecodeIndex(core.DefaultSizeModel())
		if err != nil {
			t.Fatalf("DecodeIndex: %v", err)
		}
		if ix.NumNodes() == 0 {
			t.Error("captured index empty")
		}
		st := ix.Stats()
		if st.Nodes != ix.NumNodes() || st.MaxDepth < 1 {
			t.Errorf("stats inconsistent: %+v", st)
		}
		entries, err := rec.SecondTier(core.DefaultSizeModel())
		if err != nil {
			t.Fatalf("SecondTier: %v", err)
		}
		if len(entries) != len(rec.Docs) {
			t.Errorf("second tier has %d entries for %d docs", len(entries), len(rec.Docs))
		}
		for i := range rec.Docs {
			id := rec.DocID(i)
			if coll.ByID(id) == nil {
				t.Errorf("captured unknown doc %d", id)
			}
		}
	}
}

func TestRecordValidation(t *testing.T) {
	var buf bytes.Buffer
	if _, err := Record(context.Background(), "127.0.0.1:1", 0, &buf); err == nil {
		t.Error("zero cycles accepted")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if _, err := Record(ctx, "127.0.0.1:1", 1, &buf); err == nil {
		t.Error("dead address recorded")
	}
}

func TestReadCaptureErrors(t *testing.T) {
	if _, err := ReadCapture(strings.NewReader("")); err == nil {
		t.Error("empty capture parsed")
	}
	if _, err := ReadCapture(strings.NewReader("NOTMAGIC")); err == nil {
		t.Error("bad magic parsed")
	}
	// Magic plus a truncated frame: the partial tail is dropped cleanly.
	var buf bytes.Buffer
	buf.WriteString(captureMagic)
	buf.Write([]byte{frameSync0, frameSync1, byte(FrameCycleHead), 200, 0, 0, 0, 1, 2})
	recs, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("truncated capture: %v", err)
	}
	if len(recs) != 0 {
		t.Errorf("truncated capture yielded %d records", len(recs))
	}
	// A corrupt (checksum-failing) frame mid-capture is an error, not a
	// panic and not silent acceptance.
	buf.Reset()
	buf.WriteString(captureMagic)
	if err := writeFrame(&buf, FrameCycleHead, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-1] ^= 0xFF // corrupt the CRC trailer
	if _, err := ReadCapture(bytes.NewReader(raw)); err == nil {
		t.Error("corrupt capture frame accepted")
	}
}

// TestReadCaptureV1Compat: legacy captures (XBCAST1 magic, plain 5-byte
// frame headers, no checksums) still parse after the v2 bump.
func TestReadCaptureV1Compat(t *testing.T) {
	h := &cycleHead{Number: 9, TwoTier: false, NumDocs: 1, Catalog: []byte{0, 0}}
	headBytes, err := h.encode()
	if err != nil {
		t.Fatal(err)
	}
	writeV1 := func(buf *bytes.Buffer, ft FrameType, payload []byte) {
		var hdr [5]byte
		hdr[0] = byte(ft)
		hdr[1] = byte(len(payload))
		buf.Write(hdr[:])
		buf.Write(payload)
	}
	var buf bytes.Buffer
	buf.WriteString(captureMagicV1)
	writeV1(&buf, FrameCycleHead, headBytes)
	writeV1(&buf, FrameIndex, []byte{1, 2, 3})
	writeV1(&buf, FrameDoc, []byte{7, 0, '<', 'a', '/', '>'})
	recs, err := ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("v1 capture: %v", err)
	}
	if len(recs) != 1 || recs[0].Number != 9 || len(recs[0].Docs) != 1 {
		t.Fatalf("v1 capture parsed as %+v", recs)
	}
	if recs[0].DocID(0) != 7 {
		t.Errorf("v1 doc id = %d, want 7", recs[0].DocID(0))
	}
}
