package netcast

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/netcast/transport"
	"repro/internal/succinct"
	"repro/internal/wire"
	"repro/internal/xmldoc"
)

// captureMagic heads a capture file. Version 2 captures hold checksummed v2
// frames; version 1 captures (legacy magic, plain 5-byte frame headers)
// still parse. Version 3 captures hold transport envelopes copied verbatim
// off a compressed downlink — byte-faithful, so a capture replays exactly
// what was on the air.
const (
	captureMagic   = "XBCAST2\n"
	captureMagicV1 = "XBCAST1\n"
	captureMagicV3 = "XBCAST3\n"
)

// Record subscribes to a broadcast address and copies numCycles complete
// cycles (from cycle head to the last document frame) into w, producing a
// capture file readable by ReadCapture. It returns the number of cycles
// written. The context bounds the recording.
func Record(ctx context.Context, broadcastAddr string, numCycles int, w io.Writer) (int, error) {
	if numCycles <= 0 {
		return 0, fmt.Errorf("netcast: numCycles must be positive, got %d", numCycles)
	}
	conn, err := net.DialTimeout("tcp", broadcastAddr, 5*time.Second)
	if err != nil {
		return 0, fmt.Errorf("netcast: record dial: %w", err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	// Sniff the downlink: a compressed server opens with a transport hello,
	// in which case the capture stores the transport envelopes verbatim
	// (magic v3) so the file is byte-faithful to the air. A bare downlink
	// records checksummed v2 frames as before.
	br := bufio.NewReaderSize(conn, downlinkBufSize)
	var tr *transport.Reader
	if first, perr := br.Peek(4); perr == nil && transport.IsHelloPrefix(first) {
		if _, err := transport.ReadHello(br); err != nil {
			return 0, fmt.Errorf("netcast: record hello: %w", err)
		}
		tr = transport.NewReaderFromBufio(br)
	}
	magic := captureMagic
	if tr != nil {
		magic = captureMagicV3
	}
	if _, err := io.WriteString(w, magic); err != nil {
		return 0, err
	}
	var (
		recorded int
		inCycle  bool
		multi    bool // stream carries channel heads (multichannel, v3)
	)
	for recorded < numCycles {
		if err := ctx.Err(); err != nil {
			return recorded, err
		}
		var (
			t       FrameType
			payload []byte
			raw     []byte // transport envelope bytes, verbatim
		)
		if tr != nil {
			fr, err := tr.Next()
			if err != nil {
				return recorded, fmt.Errorf("netcast: record read: %w", err)
			}
			raw = fr.Raw
			if t, payload, err = decodeInner(fr.Inner); err != nil {
				return recorded, fmt.Errorf("netcast: record read: %w", err)
			}
		} else {
			var err error
			if t, payload, err = readFrame(br); err != nil {
				return recorded, fmt.Errorf("netcast: record read: %w", err)
			}
		}
		// The cycle boundary is the channel head on a multichannel stream
		// (every channel's share opens with one), the cycle head otherwise.
		// A stream is known multichannel from its first channel head; a
		// cycle head only bounds cycles until then, so on the index channel
		// — where the channel head precedes the cycle head — the cycle head
		// never double-counts.
		if t == FrameChannelHead {
			multi = true
		}
		if t == FrameChannelHead || (t == FrameCycleHead && !multi) {
			if inCycle {
				recorded++
				if recorded == numCycles {
					return recorded, nil
				}
			}
			inCycle = true
		}
		if !inCycle {
			continue // wait for a cycle boundary before recording
		}
		if tr != nil {
			if _, err := w.Write(raw); err != nil {
				return recorded, err
			}
		} else if err := writeFrame(w, t, payload); err != nil {
			return recorded, err
		}
	}
	return recorded, nil
}

// CycleRecord is one captured cycle — on a multichannel stream, one
// channel's share of one cycle.
type CycleRecord struct {
	// Number is the cycle sequence number from the head.
	Number uint32
	// TwoTier reports the broadcast mode.
	TwoTier bool
	// Succinct reports that the index segment is the succinct
	// balanced-parentheses tier rather than the node-pointer stream.
	Succinct bool
	// Channel and Channels identify a multichannel capture's stream: this
	// record holds cycle Number's share on channel Channel of Channels.
	// Both are zero in a single-channel capture.
	Channel, Channels uint8
	// IsData reports a data channel's record (second-tier stripe plus
	// documents, no index segment).
	IsData bool
	// NumDocs is the document count promised by the channel head
	// (multichannel only; used to detect truncated trailing records).
	NumDocs uint16
	// IndexSeg is the raw packed index segment.
	IndexSeg []byte
	// SecondTierSeg is the raw second-tier segment (two-tier mode only).
	SecondTierSeg []byte
	// DirSeg is the raw channel-directory segment (multichannel index
	// channel only).
	DirSeg []byte
	// Docs holds each document frame's payload: 2 ID bytes then XML.
	Docs [][]byte

	head *cycleHead
}

// ChannelDir decodes the captured channel directory; nil for single-channel
// captures and data-channel records.
func (r *CycleRecord) ChannelDir(m core.SizeModel) ([]wire.ChannelDirEntry, error) {
	if r.DirSeg == nil {
		return nil, nil
	}
	return wire.DecodeChannelDir(r.DirSeg, m)
}

// complete reports whether the record captured its cycle's whole share:
// single-channel and index-channel records need the index segment, data
// channels every promised document.
func (r *CycleRecord) complete() bool {
	if r.IsData {
		return len(r.Docs) == int(r.NumDocs)
	}
	return r.IndexSeg != nil
}

// DocID extracts the document ID of a captured document payload.
func (r *CycleRecord) DocID(i int) xmldoc.DocID {
	p := r.Docs[i]
	return xmldoc.DocID(uint16(p[0]) | uint16(p[1])<<8)
}

// DecodeIndex reconstructs the cycle's air index from the captured bytes.
func (r *CycleRecord) DecodeIndex(m core.SizeModel) (*core.Index, error) {
	if r.head == nil {
		return nil, fmt.Errorf("netcast: record carries no index (data channel capture)")
	}
	cat, err := wire.DecodeCatalog(r.head.Catalog)
	if err != nil {
		return nil, err
	}
	if r.Succinct {
		st, err := succinct.Parse(r.IndexSeg, m, cat)
		if err != nil {
			return nil, err
		}
		return st.Decode()
	}
	tier := core.OneTier
	if r.TwoTier {
		tier = core.FirstTier
	}
	ix, _, err := wire.DecodeIndex(r.IndexSeg, m, tier, cat)
	if err != nil {
		return nil, err
	}
	if err := wire.ApplyRootLabels(ix, r.head.RootLabels); err != nil {
		return nil, err
	}
	return ix, nil
}

// SecondTier decodes the captured offset list.
func (r *CycleRecord) SecondTier(m core.SizeModel) ([]wire.SecondTierEntry, error) {
	if r.SecondTierSeg == nil {
		return nil, nil
	}
	return wire.DecodeSecondTier(r.SecondTierSeg, m)
}

// ReadCapture parses a capture file into complete cycle records. A trailing
// partial cycle (recording cut mid-cycle) is dropped; a corrupt frame in
// the middle of a capture is an error, never a panic. Both v2 (checksummed)
// and legacy v1 captures are accepted.
func ReadCapture(r io.Reader) ([]CycleRecord, error) {
	magic := make([]byte, len(captureMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("netcast: capture header: %w", err)
	}
	read := readFrame
	switch string(magic) {
	case captureMagic:
	case captureMagicV1:
		read = readFrameV1
	case captureMagicV3:
		// Transport envelopes: unwrap each to its inner v2 frame.
		tr := transport.NewReader(r)
		read = func(io.Reader) (FrameType, []byte, error) {
			fr, err := tr.Next()
			if err != nil {
				return 0, nil, err
			}
			return decodeInner(fr.Inner)
		}
	default:
		return nil, fmt.Errorf("netcast: not a capture file")
	}
	var (
		records []CycleRecord
		cur     *CycleRecord
	)
	for {
		t, payload, err := read(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil && errors.Is(err, io.ErrUnexpectedEOF) {
			break // truncated trailing frame
		}
		if err != nil {
			return nil, err
		}
		switch t {
		case FrameChannelHead:
			if cur != nil {
				records = append(records, *cur)
			}
			ch, err := decodeChannelHead(payload)
			if err != nil {
				return nil, err
			}
			cur = &CycleRecord{
				Number:   ch.Number,
				Channel:  ch.Channel,
				Channels: ch.Channels,
				IsData:   ch.Role == channelRoleData,
				NumDocs:  ch.NumDocs,
			}
		case FrameCycleHead:
			head, err := decodeCycleHead(payload)
			if err != nil {
				return nil, err
			}
			if cur != nil && cur.Channels > 0 {
				// Multichannel index channel: the cycle head rides inside
				// the channel-head-bounded record.
				cur.TwoTier = head.TwoTier
				cur.Succinct = head.Succinct
				cur.head = head
				continue
			}
			if cur != nil {
				records = append(records, *cur)
			}
			cur = &CycleRecord{Number: head.Number, TwoTier: head.TwoTier, Succinct: head.Succinct, head: head}
		case FrameChannelDir:
			if cur != nil {
				cur.DirSeg = payload
			}
		case FrameIndex:
			if cur != nil {
				cur.IndexSeg = payload
			}
		case FrameSecondTier:
			if cur != nil {
				cur.SecondTierSeg = payload
			}
		case FrameDoc:
			if cur != nil {
				if len(payload) < 2 {
					return nil, fmt.Errorf("netcast: short doc frame in capture")
				}
				cur.Docs = append(cur.Docs, payload)
			}
		default:
			return nil, fmt.Errorf("netcast: unexpected frame type %d in capture", t)
		}
	}
	if cur != nil && cur.complete() {
		records = append(records, *cur)
	}
	return records, nil
}
