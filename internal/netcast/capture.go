package netcast

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
)

// captureMagic heads a capture file. Version 2 captures hold checksummed v2
// frames; version 1 captures (legacy magic, plain 5-byte frame headers)
// still parse.
const (
	captureMagic   = "XBCAST2\n"
	captureMagicV1 = "XBCAST1\n"
)

// Record subscribes to a broadcast address and copies numCycles complete
// cycles (from cycle head to the last document frame) into w, producing a
// capture file readable by ReadCapture. It returns the number of cycles
// written. The context bounds the recording.
func Record(ctx context.Context, broadcastAddr string, numCycles int, w io.Writer) (int, error) {
	if numCycles <= 0 {
		return 0, fmt.Errorf("netcast: numCycles must be positive, got %d", numCycles)
	}
	conn, err := net.DialTimeout("tcp", broadcastAddr, 5*time.Second)
	if err != nil {
		return 0, fmt.Errorf("netcast: record dial: %w", err)
	}
	defer conn.Close()
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	}
	if _, err := io.WriteString(w, captureMagic); err != nil {
		return 0, err
	}
	var (
		recorded int
		inCycle  bool
	)
	for recorded < numCycles {
		if err := ctx.Err(); err != nil {
			return recorded, err
		}
		t, payload, err := readFrame(conn)
		if err != nil {
			return recorded, fmt.Errorf("netcast: record read: %w", err)
		}
		if t == FrameCycleHead {
			if inCycle {
				recorded++
				if recorded == numCycles {
					return recorded, nil
				}
			}
			inCycle = true
		}
		if !inCycle {
			continue // wait for a cycle boundary before recording
		}
		if err := writeFrame(w, t, payload); err != nil {
			return recorded, err
		}
	}
	return recorded, nil
}

// CycleRecord is one captured cycle.
type CycleRecord struct {
	// Number is the cycle sequence number from the head.
	Number uint32
	// TwoTier reports the broadcast mode.
	TwoTier bool
	// IndexSeg is the raw packed index segment.
	IndexSeg []byte
	// SecondTierSeg is the raw second-tier segment (two-tier mode only).
	SecondTierSeg []byte
	// Docs holds each document frame's payload: 2 ID bytes then XML.
	Docs [][]byte

	head *cycleHead
}

// DocID extracts the document ID of a captured document payload.
func (r *CycleRecord) DocID(i int) xmldoc.DocID {
	p := r.Docs[i]
	return xmldoc.DocID(uint16(p[0]) | uint16(p[1])<<8)
}

// DecodeIndex reconstructs the cycle's air index from the captured bytes.
func (r *CycleRecord) DecodeIndex(m core.SizeModel) (*core.Index, error) {
	cat, err := wire.DecodeCatalog(r.head.Catalog)
	if err != nil {
		return nil, err
	}
	tier := core.OneTier
	if r.TwoTier {
		tier = core.FirstTier
	}
	ix, _, err := wire.DecodeIndex(r.IndexSeg, m, tier, cat)
	if err != nil {
		return nil, err
	}
	if err := wire.ApplyRootLabels(ix, r.head.RootLabels); err != nil {
		return nil, err
	}
	return ix, nil
}

// SecondTier decodes the captured offset list.
func (r *CycleRecord) SecondTier(m core.SizeModel) ([]wire.SecondTierEntry, error) {
	if r.SecondTierSeg == nil {
		return nil, nil
	}
	return wire.DecodeSecondTier(r.SecondTierSeg, m)
}

// ReadCapture parses a capture file into complete cycle records. A trailing
// partial cycle (recording cut mid-cycle) is dropped; a corrupt frame in
// the middle of a capture is an error, never a panic. Both v2 (checksummed)
// and legacy v1 captures are accepted.
func ReadCapture(r io.Reader) ([]CycleRecord, error) {
	magic := make([]byte, len(captureMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("netcast: capture header: %w", err)
	}
	read := readFrame
	switch string(magic) {
	case captureMagic:
	case captureMagicV1:
		read = readFrameV1
	default:
		return nil, fmt.Errorf("netcast: not a capture file")
	}
	var (
		records []CycleRecord
		cur     *CycleRecord
	)
	for {
		t, payload, err := read(r)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil && errors.Is(err, io.ErrUnexpectedEOF) {
			break // truncated trailing frame
		}
		if err != nil {
			return nil, err
		}
		switch t {
		case FrameCycleHead:
			if cur != nil {
				records = append(records, *cur)
			}
			head, err := decodeCycleHead(payload)
			if err != nil {
				return nil, err
			}
			cur = &CycleRecord{Number: head.Number, TwoTier: head.TwoTier, head: head}
		case FrameIndex:
			if cur != nil {
				cur.IndexSeg = payload
			}
		case FrameSecondTier:
			if cur != nil {
				cur.SecondTierSeg = payload
			}
		case FrameDoc:
			if cur != nil {
				if len(payload) < 2 {
					return nil, fmt.Errorf("netcast: short doc frame in capture")
				}
				cur.Docs = append(cur.Docs, payload)
			}
		default:
			return nil, fmt.Errorf("netcast: unexpected frame type %d in capture", t)
		}
	}
	if cur != nil && cur.IndexSeg != nil {
		records = append(records, *cur)
	}
	return records, nil
}
