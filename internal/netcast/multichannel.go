package netcast

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// chanStream is one channel's downlink: the connection, its frame source
// (which sniffs transport-layer compression per stream), the redial target,
// and at most one channel head that was read off the stream but whose share
// has not been consumed yet (a data channel can run ahead of the cycle the
// client is working on).
type chanStream struct {
	conn    net.Conn
	src     *frameSource
	addr    string
	pending *channelHead
}

// DialChannels connects to a multichannel server: one uplink plus one
// downlink per broadcast channel, in the order reported by
// Server.ChannelAddrs (entry 0 must be the index channel). With a single
// address it is equivalent to Dial.
func DialChannels(uplinkAddr string, channelAddrs []string, model core.SizeModel) (*Client, error) {
	if len(channelAddrs) == 0 {
		return nil, fmt.Errorf("netcast: DialChannels needs at least one broadcast address")
	}
	if len(channelAddrs) == 1 {
		return Dial(uplinkAddr, channelAddrs[0], model)
	}
	if model == (core.SizeModel{}) {
		model = core.DefaultSizeModel()
	}
	up, err := net.DialTimeout("tcp", uplinkAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netcast: dial uplink: %w", err)
	}
	chans := make([]*chanStream, 0, len(channelAddrs))
	closeAll := func() {
		up.Close()
		for _, cs := range chans {
			cs.conn.Close()
		}
	}
	for i, addr := range channelAddrs {
		conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("netcast: dial broadcast channel %d: %w", i, err)
		}
		chans = append(chans, &chanStream{conn: conn, src: newFrameSource(conn), addr: addr})
	}
	return &Client{
		model:      model,
		up:         up,
		chans:      chans,
		upAddr:     uplinkAddr,
		AckTimeout: defaultAckTimeout,
	}, nil
}

// retrieveMulti is Retrieve over a multichannel subscription: per cycle, one
// short read of the index channel (channel head, cycle head, channel
// directory, and — first cycle only — the first tier), then a hop to each
// data channel carrying a wanted document. Streams the client runs ahead of
// are drained as doze; recovery resyncs the failing channel to its next
// channel head (or redials it) and re-registers the query, mirroring the
// single-channel protocol's guarantees per stream.
func (c *Client) retrieveMulti(ctx context.Context, q xpath.Path) ([]*xmldoc.Document, ClientStats, error) {
	var (
		stats     ClientStats
		nav       = core.NewNavigator(q)
		knowsDocs bool
		remaining = make(map[xmldoc.DocID]struct{})
		got       = make(map[xmldoc.DocID]*xmldoc.Document)
	)
	applyDeadlines := func() {
		for _, cs := range c.chans {
			armIdle(ctx, cs.conn)
		}
	}
	applyDeadlines()
	defer func() {
		for _, cs := range c.chans {
			_ = cs.conn.SetReadDeadline(time.Time{})
		}
	}()

	// recover routes one channel's failure: resync within the stream for
	// detected corruption, redial for connection loss. Either way the query
	// is re-registered and the current cycle abandoned by the caller.
	recover := func(ch int, err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		cs := c.chans[ch]
		cs.pending = nil
		stats.DozeBytes += cs.src.takeDoze()
		if isCorrupt(err) {
			stats.Resyncs++
			c.resubmit(q)
			return nil // the next head scan realigns the stream
		}
		stats.Reconnects++
		cs.conn.Close()
		delay := reconnectBaseDelay
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			conn, derr := net.DialTimeout("tcp", cs.addr, 5*time.Second)
			if derr == nil {
				cs.conn = conn
				cs.src = newFrameSource(conn)
				applyDeadlines()
				c.resubmit(q)
				return nil
			}
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoffWait(delay)):
			}
			if delay *= 2; delay > reconnectMaxDelay {
				delay = reconnectMaxDelay
			}
		}
	}

cycles:
	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		// Phase 1: the index channel. Take the next cycle's share: channel
		// head, then cycle head, channel directory and first tier in order.
		head, dir, err := c.readIndexShare(ctx, nav, &knowsDocs, remaining, got, &stats)
		if err != nil {
			if err := recover(0, err); err != nil {
				return nil, stats, err
			}
			continue
		}
		if knowsDocs && len(remaining) == 0 {
			return collect(got), stats, nil
		}
		if !knowsDocs {
			// This cycle's index predates the submission (or was dozed);
			// wait for a covering cycle.
			continue
		}
		// Phase 2: hop to each data channel carrying a wanted document, in
		// channel order (single-tuner: one stream at a time).
		want := make(map[uint8][]wire.ChannelDirEntry)
		for _, e := range dir {
			if _, need := remaining[e.Doc]; need {
				want[e.Channel] = append(want[e.Channel], e)
			}
		}
		for ch := 1; ch < len(c.chans); ch++ {
			if len(want[uint8(ch)]) == 0 {
				continue
			}
			if err := c.drainDataShare(ctx, ch, head.Number, remaining, got, &stats); err != nil {
				if err := recover(ch, err); err != nil {
					return nil, stats, err
				}
				continue cycles
			}
		}
		if len(remaining) == 0 {
			return collect(got), stats, nil
		}
	}
}

// nextHead returns the stream's next channel head: the stashed one if a
// previous drain ran into it, otherwise the next one off the wire (dozing
// frames before it, which belong to shares the client skipped).
func (c *Client) nextHead(ctx context.Context, ch int, stats *ClientStats) (*channelHead, error) {
	cs := c.chans[ch]
	if h := cs.pending; h != nil {
		cs.pending = nil
		return h, nil
	}
	for {
		armIdle(ctx, cs.conn)
		t, payload, air, err := cs.src.next()
		stats.DozeBytes += cs.src.takeDoze()
		if err != nil {
			return nil, err
		}
		if t != FrameChannelHead {
			stats.DozeBytes += air
			continue
		}
		h, derr := decodeChannelHead(payload)
		if derr != nil {
			return nil, errFrameCorrupt
		}
		if int(h.Channel) != ch {
			return nil, errFrameCorrupt // stream/channel mismatch
		}
		return h, nil
	}
}

// readIndexShare consumes one full cycle share off the index channel. The
// channel directory is read every cycle; the first tier only until the
// result set is known (and only from a cycle covering the submission).
func (c *Client) readIndexShare(ctx context.Context, nav *core.Navigator, knowsDocs *bool, remaining map[xmldoc.DocID]struct{}, got map[xmldoc.DocID]*xmldoc.Document, stats *ClientStats) (*channelHead, []wire.ChannelDirEntry, error) {
	chead, err := c.nextHead(ctx, 0, stats)
	if err != nil {
		return nil, nil, err
	}
	if chead.Role != channelRoleIndex {
		return nil, nil, errFrameCorrupt
	}
	stats.Cycles++
	var (
		head *cycleHead
		dir  []wire.ChannelDirEntry
	)
	for {
		armIdle(ctx, c.chans[0].conn)
		t, payload, air, err := c.chans[0].src.next()
		stats.DozeBytes += c.chans[0].src.takeDoze()
		if err != nil {
			return nil, nil, err
		}
		switch t {
		case FrameCycleHead:
			h, derr := decodeCycleHead(payload)
			if derr != nil {
				return nil, nil, errFrameCorrupt
			}
			head = h
		case FrameChannelDir:
			stats.TuningBytes += air
			entries, derr := wire.DecodeChannelDir(payload, c.model)
			if derr != nil {
				return nil, nil, errFrameCorrupt
			}
			dir = entries
		case FrameIndex:
			// The index share ends with the first tier; decode it only
			// while the result set is unknown and the cycle covers the
			// submission.
			if *knowsDocs || head == nil || chead.Number < c.coveredFrom {
				stats.DozeBytes += air
				return chead, dir, nil
			}
			stats.TuningBytes += air
			docs, _, derr := c.decodeAndNavigate(payload, head, nav, head.TwoTier)
			if derr != nil {
				return nil, nil, errFrameCorrupt
			}
			for _, d := range docs {
				if _, done := got[d]; !done {
					remaining[d] = struct{}{}
				}
			}
			*knowsDocs = true
			return chead, dir, nil
		case FrameChannelHead:
			// The next cycle began without an index frame: corrupt share.
			return nil, nil, errFrameCorrupt
		default:
			stats.DozeBytes += air
		}
	}
}

// drainDataShare reads data channel ch up to and through cycle num's share,
// keeping the documents still in remaining. Shares of earlier cycles are
// drained as doze; if the stream is already past num (it reconnected ahead),
// the head is stashed for the next cycle and the wanted documents stay in
// remaining for a later rebroadcast.
func (c *Client) drainDataShare(ctx context.Context, ch int, num uint32, remaining map[xmldoc.DocID]struct{}, got map[xmldoc.DocID]*xmldoc.Document, stats *ClientStats) error {
	for {
		h, err := c.nextHead(ctx, ch, stats)
		if err != nil {
			return err
		}
		if h.Number > num {
			c.chans[ch].pending = h
			return nil
		}
		take := h.Number == num
		for docs := 0; docs < int(h.NumDocs); {
			armIdle(ctx, c.chans[ch].conn)
			t, payload, air, err := c.chans[ch].src.next()
			stats.DozeBytes += c.chans[ch].src.takeDoze()
			if err != nil {
				return err
			}
			switch t {
			case FrameSecondTier:
				stats.DozeBytes += air
			case FrameDoc:
				docs++
				if len(payload) < 2 {
					return errFrameCorrupt
				}
				id := xmldoc.DocID(binary.LittleEndian.Uint16(payload))
				if _, need := remaining[id]; !need || !take {
					stats.DozeBytes += air
					continue
				}
				cost := air
				if !c.chans[ch].src.isTransport() {
					cost -= 2 // bare protocol: the 2 ID bytes are header
				}
				stats.TuningBytes += cost
				root, derr := xmldoc.Parse(bytes.NewReader(payload[2:]))
				if derr != nil {
					return errFrameCorrupt
				}
				got[id] = xmldoc.NewDocument(id, root)
				delete(remaining, id)
			case FrameChannelHead:
				return errFrameCorrupt // share ended short of its doc count
			default:
				stats.DozeBytes += air
			}
		}
		if take {
			return nil
		}
	}
}
