package netcast

import (
	"bytes"
	"testing"
	"time"
)

// FuzzFrame: flipping any single bit of a well-formed frame — in the sync
// bytes, type byte, payload or CRC trailer — must be rejected; no mutated
// frame is ever accepted with a valid checksum. (Bits of the length field
// are excluded: a length mutation re-frames the stream rather than
// corrupting covered bytes, and CRC32C only guarantees detection within one
// frame's coverage.) A round trip of the unmutated frame must still work.
func FuzzFrame(f *testing.F) {
	f.Add([]byte("payload"), uint16(0))
	f.Add([]byte{}, uint16(3))
	f.Add([]byte{0xB5, 0xCA, 0xB5, 0xCA}, uint16(40)) // payload full of sync bytes
	f.Fuzz(func(t *testing.T, payload []byte, bitPick uint16) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, FrameDoc, payload); err != nil {
			return // oversized payload; nothing to assert
		}
		enc := buf.Bytes()

		// Unmutated: must round-trip exactly.
		ft, back, err := readFrame(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("clean frame rejected: %v", err)
		}
		if ft != FrameDoc || !bytes.Equal(back, payload) {
			t.Fatalf("clean frame round trip changed the payload")
		}

		// Mutated: pick a bit outside the 4 length bytes (enc[3:7]).
		mutable := make([]int, 0, len(enc)-4)
		for i := range enc {
			if i < 3 || i >= frameHdrLen {
				mutable = append(mutable, i)
			}
		}
		idx := mutable[int(bitPick)%len(mutable)]
		bit := byte(1) << ((bitPick / uint16(len(mutable))) % 8)
		enc[idx] ^= bit
		if _, _, err := readFrame(bytes.NewReader(enc)); err == nil {
			t.Fatalf("single-bit flip at byte %d bit %02x accepted", idx, bit)
		}
	})
}

// FuzzReadCapture: arbitrary capture bytes — including truncated and
// corrupted v1/v2 captures — must produce records or an error, never a
// panic.
func FuzzReadCapture(f *testing.F) {
	head, _ := (&cycleHead{Number: 1, TwoTier: true, NumDocs: 1, Catalog: []byte{0, 0}}).encode()
	var v2 bytes.Buffer
	v2.WriteString(captureMagic)
	_ = writeFrame(&v2, FrameCycleHead, head)
	_ = writeFrame(&v2, FrameIndex, []byte{1, 2, 3})
	_ = writeFrame(&v2, FrameDoc, []byte{7, 0, 'x'})
	f.Add(v2.Bytes())
	f.Add(v2.Bytes()[:v2.Len()-5]) // truncated mid-frame
	f.Add([]byte(captureMagicV1))
	f.Add([]byte(captureMagic))
	f.Add([]byte("XBCAST9\njunk"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadCapture(bytes.NewReader(data))
		if err == nil {
			// Whatever parsed must be internally consistent enough to walk.
			for _, r := range recs {
				for i := range r.Docs {
					_ = r.DocID(i)
				}
			}
		}
	})
}

// FuzzDecodeReject: arbitrary FrameReject payloads must never panic, every
// accepted payload must decode to a retry-after inside the clamp bounds, and
// re-encoding what was decoded must be stable.
func FuzzDecodeReject(f *testing.F) {
	f.Add(encodeReject(0, ""))
	f.Add(encodeReject(time.Second, "rate limited"))
	f.Add(encodeReject(2*time.Hour, "pending set full")) // encoder clamps to maxRetryAfter
	// Controller-priced hints: the adaptive limiter emits its measured
	// inter-cycle latency, so odd sub-second durations (truncated to wire
	// milliseconds), its 1ms floor, and sub-ms values that truncate to 0
	// all cross the wire.
	f.Add(encodeReject(time.Millisecond, "pending set full"))
	f.Add(encodeReject(500*time.Microsecond, "pending set full"))
	f.Add(encodeReject(20*time.Millisecond+617*time.Microsecond, "pending set full"))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})                   // short of the retry-after header
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})    // max ms, no reason
	f.Add([]byte{0, 0, 0, 0, 0xB5, 0xCA, 0}) // reason full of sync bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		retryAfter, reason, err := decodeReject(data)
		if err != nil {
			return
		}
		if retryAfter < 0 || retryAfter > maxRetryAfter {
			t.Fatalf("decoded retry-after %s outside [0, %s]", retryAfter, maxRetryAfter)
		}
		back := encodeReject(retryAfter, reason)
		again, reason2, err := decodeReject(back)
		if err != nil {
			t.Fatalf("re-encode of accepted reject failed to decode: %v", err)
		}
		// Millisecond wire granularity: a round trip through encode is exact
		// once the first decode has already truncated to milliseconds.
		if again != retryAfter || reason2 != reason {
			t.Fatalf("reject round trip unstable: %s/%q -> %s/%q", retryAfter, reason, again, reason2)
		}
	})
}

// FuzzDecodeCycleHead must never panic, and what it accepts must re-encode
// and decode to the same head.
func FuzzDecodeCycleHead(f *testing.F) {
	good, err := (&cycleHead{Number: 3, TwoTier: true, NumDocs: 2, Catalog: []byte{9}, RootLabels: []string{"a"}}).encode()
	if err != nil {
		f.Fatal(err)
	}
	succ, err := (&cycleHead{Number: 4, TwoTier: true, Succinct: true, NumDocs: 1, Catalog: []byte{9}}).encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(succ)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 2, 0, 1, 3})
	f.Add([]byte{1, 0, 0, 0, 3, 2, 0, 0, 0, 0, 0, 0}) // organisation byte 3: unknown
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeCycleHead(data)
		if err != nil {
			return
		}
		back, err := h.encode()
		if err != nil {
			t.Fatalf("re-encode of accepted head failed: %v", err)
		}
		again, err := decodeCycleHead(back)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if again.Number != h.Number || again.TwoTier != h.TwoTier || again.Succinct != h.Succinct ||
			again.NumDocs != h.NumDocs || len(again.RootLabels) != len(h.RootLabels) {
			t.Fatal("cycle head round trip unstable")
		}
	})
}
