package netcast

import "testing"

// FuzzDecodeCycleHead must never panic, and what it accepts must re-encode
// and decode to the same head.
func FuzzDecodeCycleHead(f *testing.F) {
	good, err := (&cycleHead{Number: 3, TwoTier: true, NumDocs: 2, Catalog: []byte{9}, RootLabels: []string{"a"}}).encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 1, 2, 0, 1, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeCycleHead(data)
		if err != nil {
			return
		}
		back, err := h.encode()
		if err != nil {
			t.Fatalf("re-encode of accepted head failed: %v", err)
		}
		again, err := decodeCycleHead(back)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if again.Number != h.Number || again.TwoTier != h.TwoTier ||
			again.NumDocs != h.NumDocs || len(again.RootLabels) != len(h.RootLabels) {
			t.Fatal("cycle head round trip unstable")
		}
	})
}
