package netcast

import (
	"bytes"
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func startMultichannelServer(t *testing.T, channels int) (*Server, *xmldoc.Collection) {
	t.Helper()
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		Channels:      channels,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, coll
}

func TestMultichannelConfigValidation(t *testing.T) {
	coll := testCollection(t)
	for _, tc := range []struct {
		name     string
		mode     broadcast.Mode
		channels int
	}{
		{"one-tier multichannel", broadcast.OneTierMode, 4},
		{"negative channels", broadcast.TwoTierMode, -1},
		{"too many channels", broadcast.TwoTierMode, 257},
	} {
		if _, err := StartServer(ServerConfig{
			Collection:    coll,
			Mode:          tc.mode,
			Channels:      tc.channels,
			CycleCapacity: 10000,
		}); err == nil {
			t.Errorf("%s: StartServer accepted invalid config", tc.name)
		}
	}
}

func TestMultichannelAddrs(t *testing.T) {
	srv, _ := startMultichannelServer(t, 4)
	addrs := srv.ChannelAddrs()
	if len(addrs) != 4 {
		t.Fatalf("ChannelAddrs returned %d entries, want 4", len(addrs))
	}
	if addrs[0] != srv.BroadcastAddr() {
		t.Errorf("channel 0 addr %s != BroadcastAddr %s", addrs[0], srv.BroadcastAddr())
	}
	seen := make(map[string]bool)
	for _, a := range addrs {
		if seen[a] {
			t.Errorf("duplicate channel address %s", a)
		}
		seen[a] = true
	}
	if srv.Channels() != 4 {
		t.Errorf("Channels() = %d, want 4", srv.Channels())
	}
}

// TestMultichannelRetrieve runs the end-to-end access protocol over K
// parallel streams: submit over the uplink, read the index channel for the
// directory and first tier, hop to the data channels for the documents.
func TestMultichannelRetrieve(t *testing.T) {
	for _, k := range []int{2, 4} {
		t.Run(map[int]string{2: "k2", 4: "k4"}[k], func(t *testing.T) {
			srv, coll := startMultichannelServer(t, k)
			cl, err := DialChannels(srv.UplinkAddr(), srv.ChannelAddrs(), core.SizeModel{})
			if err != nil {
				t.Fatalf("DialChannels: %v", err)
			}
			defer cl.Close()

			q := xpath.MustParse("/nitf/body/body.content/block")
			want := q.MatchingDocs(coll)
			if len(want) == 0 {
				t.Fatal("test query matches nothing")
			}
			if err := cl.Submit(q); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			docs, stats, err := cl.Retrieve(ctx, q)
			if err != nil {
				t.Fatalf("Retrieve: %v", err)
			}
			gotIDs := make([]xmldoc.DocID, len(docs))
			for i, d := range docs {
				gotIDs[i] = d.ID
			}
			if !reflect.DeepEqual(gotIDs, want) {
				t.Errorf("retrieved %v, want %v", gotIDs, want)
			}
			for _, d := range docs {
				if d.Root == nil || d.Root.Label != "nitf" {
					t.Errorf("doc %d has bad root", d.ID)
				}
			}
			if stats.TuningBytes <= 0 || stats.Cycles == 0 {
				t.Errorf("stats = %+v", stats)
			}
		})
	}
}

// TestMultichannelCapture records every channel of a K=2 broadcast and
// checks the captured shares are structurally sound: the index channel
// carries head, directory and index; the data channel carries exactly the
// documents the directory places on it.
func TestMultichannelCapture(t *testing.T) {
	srv, coll := startMultichannelServer(t, 2)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	addrs := srv.ChannelAddrs()
	bufs := make([]bytes.Buffer, len(addrs))
	recDone := make(chan error, len(addrs))
	for i, addr := range addrs {
		go func(i int, addr string) {
			_, err := Record(ctx, addr, 2, &bufs[i])
			recDone <- err
		}(i, addr)
	}
	waitSubs := func() bool { return srv.Stats().Subscribers >= len(addrs) }
	for !waitSubs() {
		select {
		case <-ctx.Done():
			t.Fatal("timed out waiting for recorder subscriptions")
		case <-time.After(2 * time.Millisecond):
		}
	}

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/body/body.content/block")
	if len(q.MatchingDocs(coll)) == 0 {
		t.Fatal("test query matches nothing")
	}
	if err := cl.Submit(q); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(addrs); i++ {
		if err := <-recDone; err != nil {
			t.Fatalf("Record: %v", err)
		}
	}

	chanRecords := make([][]CycleRecord, len(addrs))
	for i := range bufs {
		recs, err := ReadCapture(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("ReadCapture channel %d: %v", i, err)
		}
		if len(recs) == 0 {
			t.Fatalf("channel %d capture is empty", i)
		}
		chanRecords[i] = recs
	}

	for _, rec := range chanRecords[0] {
		if rec.IsData || rec.Channel != 0 || rec.Channels != 2 {
			t.Fatalf("index-channel record misidentified: %+v", rec)
		}
		if rec.IndexSeg == nil || rec.DirSeg == nil {
			t.Fatalf("index-channel record cycle %d missing segments", rec.Number)
		}
		if len(rec.Docs) != 0 || rec.SecondTierSeg != nil {
			t.Fatalf("index-channel record cycle %d carries data segments", rec.Number)
		}
		if _, err := rec.DecodeIndex(core.DefaultSizeModel()); err != nil {
			t.Fatalf("cycle %d index decode: %v", rec.Number, err)
		}
	}
	// Match each index record's directory against the data channel's share
	// of the same cycle.
	dataByNumber := make(map[uint32]CycleRecord)
	for _, rec := range chanRecords[1] {
		if !rec.IsData || rec.Channel != 1 {
			t.Fatalf("data-channel record misidentified: %+v", rec)
		}
		if rec.SecondTierSeg == nil {
			t.Fatalf("data record cycle %d missing second-tier stripe", rec.Number)
		}
		dataByNumber[rec.Number] = rec
	}
	matched := 0
	for _, rec := range chanRecords[0] {
		data, ok := dataByNumber[rec.Number]
		if !ok {
			continue // trailing share lost to capture cutoff
		}
		matched++
		dir, err := rec.ChannelDir(core.DefaultSizeModel())
		if err != nil {
			t.Fatalf("cycle %d dir decode: %v", rec.Number, err)
		}
		if len(dir) != int(rec.NumDocs) {
			t.Errorf("cycle %d: dir has %d entries, channel head promises %d docs", rec.Number, len(dir), rec.NumDocs)
		}
		fromDir := make(map[xmldoc.DocID]bool)
		for _, e := range dir {
			if e.Channel != 1 {
				t.Errorf("cycle %d: dir entry %v names channel %d of a 2-channel cycle", rec.Number, e.Doc, e.Channel)
			}
			fromDir[e.Doc] = true
		}
		if len(data.Docs) != len(dir) {
			t.Errorf("cycle %d: data channel carried %d docs, dir lists %d", rec.Number, len(data.Docs), len(dir))
		}
		for i := range data.Docs {
			if !fromDir[data.DocID(i)] {
				t.Errorf("cycle %d: doc %d aired off-directory", rec.Number, data.DocID(i))
			}
		}
		st, err := data.SecondTier(core.DefaultSizeModel())
		if err != nil {
			t.Fatalf("cycle %d stripe decode: %v", rec.Number, err)
		}
		if len(st) != len(data.Docs) {
			t.Errorf("cycle %d: stripe lists %d docs, channel aired %d", rec.Number, len(st), len(data.Docs))
		}
	}
	if matched == 0 {
		t.Fatal("no cycle captured on both channels")
	}
}
