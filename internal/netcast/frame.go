// Package netcast runs the paper's system (Fig. 1) over real sockets: a
// broadcast server with a TCP uplink for XPath requests and a TCP downlink
// that streams broadcast cycles — cycle head, air index (in the wire
// format), second-tier offset list and documents — to every subscriber.
// Clients implement the §3.4 access protocols against the decoded byte
// stream, so the whole pipeline (index build → prune → pack → encode →
// decode → navigate → retrieve) is exercised end to end on the wire.
//
// Framing (protocol version 2) is length-prefixed and checksummed: 2 sync
// bytes, 1 type byte, 4 length bytes (little endian), the payload, then a
// CRC32C trailer over the type, length and payload. The sync bytes let a
// client that lost framing (corruption, truncation, mid-stream join after
// lost bytes) rescan the byte stream for the next frame boundary; the
// checksum turns silent mis-decodes into detected, recoverable corruption.
package netcast

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

// FrameType tags downlink and uplink frames.
type FrameType byte

const (
	// FrameQuery is an uplink request: payload is the XPath expression.
	FrameQuery FrameType = iota + 1
	// FrameAck acknowledges an uplink request: payload is "ok" or an error
	// message prefixed with "err:".
	FrameAck
	// FrameCycleHead starts a cycle: payload is the encoded cycleHead.
	FrameCycleHead
	// FrameIndex carries the packed index segment.
	FrameIndex
	// FrameSecondTier carries the second-tier offset list (two-tier mode).
	FrameSecondTier
	// FrameDoc carries one document: 2 ID bytes then the XML.
	FrameDoc
	// FrameReject refuses an uplink request under overload: payload is a
	// 4-byte little-endian retry-after hint in milliseconds followed by a
	// human-readable reason. Sent on the uplink in place of FrameAck.
	FrameReject
	// FrameChannelHead starts one channel's share of a multichannel cycle
	// (protocol version 3): payload is the encoded channelHead. Emitted only
	// when the server runs K > 1 channels, so single-channel streams remain
	// byte-identical v2.
	FrameChannelHead
	// FrameChannelDir carries the channel directory (index channel of a
	// multichannel cycle): the wire.ChannelDir encoding tagging every
	// scheduled doc ID with its carrying channel and stream offset.
	FrameChannelDir
	// FrameResume opens a session-resume handshake on the uplink: after a
	// reconnect the client presents the request IDs the server acked before
	// the outage (payload: uint16 count, then count uint64 IDs) instead of
	// blindly resubmitting. Sent in place of a FrameQuery; the server
	// answers with FrameResumeAck in lockstep.
	FrameResume
	// FrameResumeAck answers a FrameResume with the server's identity and a
	// per-request disposition: uint64 server epoch (journal lineage), uint32
	// restart generation, uint16 count, then per request a uint64 ID, a
	// status byte (resumed / already-served / resubmit) and a uint64 detail
	// (the covering cycle for resumed requests, the retire cycle for
	// already-served ones).
	FrameResumeAck

	frameTypeMax = FrameResumeAck
)

// Frame sync bytes: every v2 frame starts with this pair so receivers can
// re-acquire frame boundaries after losing sync.
const (
	frameSync0 = 0xB5
	frameSync1 = 0xCA
)

// frameHdrLen is sync(2) + type(1) + length(4); frameCRCLen trails the
// payload.
const (
	frameHdrLen = 7
	frameCRCLen = 4
)

// maxFrame bounds payload sizes defensively (16 MiB).
const maxFrame = 16 << 20

// castagnoli is the CRC32C table shared by all frame writers and readers.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errFrameCorrupt marks a frame rejected for bad sync bytes, an insane
// length, or a checksum mismatch — as opposed to connection-level I/O
// errors. Corruption is recoverable by rescanning the stream; I/O errors
// require a reconnect.
var errFrameCorrupt = errors.New("netcast: corrupt frame")

// isCorrupt reports whether err is a detected-corruption error rather than
// a connection failure.
func isCorrupt(err error) bool { return errors.Is(err, errFrameCorrupt) }

// frameCRC computes the trailer checksum over the type/length header bytes
// and the payload.
func frameCRC(hdr []byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdr)
	return crc32.Update(crc, castagnoli, payload)
}

// writeFrame writes one v2 frame.
func writeFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netcast: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHdrLen]byte
	hdr[0] = frameSync0
	hdr[1] = frameSync1
	hdr[2] = byte(t)
	binary.LittleEndian.PutUint32(hdr[3:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var trailer [frameCRCLen]byte
	binary.LittleEndian.PutUint32(trailer[:], frameCRC(hdr[2:], payload))
	_, err := w.Write(trailer[:])
	return err
}

// appendFrame appends one encoded v2 frame to dst, returning the extended
// slice: the in-memory form of writeFrame, used where a complete frame must
// exist as bytes before it goes anywhere — transport envelopes, mux frames,
// capture files. The two encoders are byte-identical by construction.
func appendFrame(dst []byte, t FrameType, payload []byte) ([]byte, error) {
	if len(payload) > maxFrame {
		return nil, fmt.Errorf("netcast: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHdrLen]byte
	hdr[0] = frameSync0
	hdr[1] = frameSync1
	hdr[2] = byte(t)
	binary.LittleEndian.PutUint32(hdr[3:], uint32(len(payload)))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	var trailer [frameCRCLen]byte
	binary.LittleEndian.PutUint32(trailer[:], frameCRC(hdr[2:], payload))
	return append(dst, trailer[:]...), nil
}

// readFrame reads one v2 frame, verifying sync bytes and checksum. Corrupt
// frames return an error satisfying isCorrupt; I/O failures pass through
// unwrapped so callers can distinguish resync from reconnect.
func readFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [frameHdrLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	if hdr[0] != frameSync0 || hdr[1] != frameSync1 {
		return 0, nil, fmt.Errorf("%w: bad sync bytes %#02x %#02x", errFrameCorrupt, hdr[0], hdr[1])
	}
	n := binary.LittleEndian.Uint32(hdr[3:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("%w: frame of %d bytes exceeds limit", errFrameCorrupt, n)
	}
	body := make([]byte, n+frameCRCLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	payload := body[:n]
	got := binary.LittleEndian.Uint32(body[n:])
	if want := frameCRC(hdr[2:], payload); got != want {
		return 0, nil, fmt.Errorf("%w: checksum %#08x, want %#08x", errFrameCorrupt, got, want)
	}
	return FrameType(hdr[2]), payload, nil
}

// readFrameV1 reads one legacy (protocol version 1) frame: 1 type byte,
// 4 length bytes, payload — no sync bytes, no checksum. Kept so old capture
// files still parse.
func readFrameV1(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("netcast: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// resyncFrame scans a desynchronised byte stream for the next well-formed
// frame of type want, returning its payload and the number of bytes
// consumed before the accepted frame (scanned garbage plus any candidate
// frames that failed their checksum). I/O errors propagate; the scan itself
// never gives up — the broadcast is endless, so the caller's context or
// read deadline bounds it.
func resyncFrame(br *bufio.Reader, want FrameType) (payload []byte, skipped int64, err error) {
	for {
		b, err := br.ReadByte()
		if err != nil {
			return nil, skipped, err
		}
		skipped++
		if b != frameSync0 {
			continue
		}
		// Candidate boundary: peek the rest of the header without consuming,
		// so a false positive advances by only one byte.
		hdr, err := br.Peek(frameHdrLen - 1)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, skipped, io.ErrUnexpectedEOF
			}
			return nil, skipped, err
		}
		t := FrameType(hdr[1])
		n := binary.LittleEndian.Uint32(hdr[2:6])
		if hdr[0] != frameSync1 || t != want || n > maxFrame {
			continue
		}
		// Header looks right: commit to reading the candidate frame.
		if _, err := br.Discard(frameHdrLen - 1); err != nil {
			return nil, skipped, err
		}
		skipped += frameHdrLen - 1
		body := make([]byte, n+frameCRCLen)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, skipped, err
		}
		var full [5]byte
		full[0] = byte(t)
		binary.LittleEndian.PutUint32(full[1:], n)
		if binary.LittleEndian.Uint32(body[n:]) != frameCRC(full[:], body[:n]) {
			// False sync inside other data, or the candidate itself is
			// corrupt; keep scanning after the consumed bytes.
			skipped += int64(len(body))
			continue
		}
		// The accepted frame's own header bytes are not skipped garbage.
		return body[:n], skipped - frameHdrLen, nil
	}
}

// rejectHdrLen is the fixed prefix of a FrameReject payload: the uint32
// little-endian retry-after hint in milliseconds.
const rejectHdrLen = 4

// maxRetryAfter clamps the encoded retry-after hint (~49.7 days, the uint32
// millisecond ceiling is far above it anyway; this keeps hints sane).
const maxRetryAfter = time.Hour

// encodeReject serialises a FrameReject payload: retry-after hint (clamped
// to [0, maxRetryAfter], millisecond granularity) then the reason text.
func encodeReject(retryAfter time.Duration, reason string) []byte {
	if retryAfter < 0 {
		retryAfter = 0
	}
	if retryAfter > maxRetryAfter {
		retryAfter = maxRetryAfter
	}
	out := make([]byte, rejectHdrLen, rejectHdrLen+len(reason))
	binary.LittleEndian.PutUint32(out, uint32(retryAfter/time.Millisecond))
	return append(out, reason...)
}

// decodeReject is the inverse of encodeReject.
func decodeReject(payload []byte) (retryAfter time.Duration, reason string, err error) {
	if len(payload) < rejectHdrLen {
		return 0, "", fmt.Errorf("netcast: reject frame truncated (%d bytes)", len(payload))
	}
	retryAfter = time.Duration(binary.LittleEndian.Uint32(payload)) * time.Millisecond
	if retryAfter > maxRetryAfter {
		retryAfter = maxRetryAfter
	}
	return retryAfter, string(payload[rejectHdrLen:]), nil
}

// Resume statuses: the server's per-request disposition in a FrameResumeAck.
const (
	// ResumeResumed: the request is still pending server-side; no resubmit
	// is needed, and the detail field names the next covering cycle.
	ResumeResumed byte = 0
	// ResumeServed: the request was completed during the outage window; the
	// detail field names the retiring cycle. The client eavesdrops or
	// resubmits if it actually missed the documents.
	ResumeServed byte = 1
	// ResumeResubmit: the server does not know the request (lost journal,
	// served horizon exceeded, or a fresh state directory); resubmit it.
	ResumeResubmit byte = 2
)

// maxResumeIDs bounds one handshake's ID list defensively.
const maxResumeIDs = 1024

// resumeEntry is one request's disposition in a FrameResumeAck.
type resumeEntry struct {
	ID     int64
	Status byte
	Detail int64
}

// encodeResume serialises a FrameResume payload.
func encodeResume(ids []int64) ([]byte, error) {
	if len(ids) > maxResumeIDs {
		return nil, fmt.Errorf("netcast: %d resume IDs exceed limit %d", len(ids), maxResumeIDs)
	}
	out := make([]byte, 0, 2+8*len(ids))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ids)))
	for _, id := range ids {
		out = binary.LittleEndian.AppendUint64(out, uint64(id))
	}
	return out, nil
}

// decodeResume is the inverse of encodeResume.
func decodeResume(payload []byte) ([]int64, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("netcast: resume frame truncated (%d bytes)", len(payload))
	}
	n := int(binary.LittleEndian.Uint16(payload))
	payload = payload[2:]
	if n > maxResumeIDs || len(payload) != 8*n {
		return nil, fmt.Errorf("netcast: resume frame claims %d IDs with %d payload bytes", n, len(payload))
	}
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(binary.LittleEndian.Uint64(payload[8*i:]))
	}
	return ids, nil
}

// encodeResumeAck serialises a FrameResumeAck payload.
func encodeResumeAck(epoch uint64, generation uint32, entries []resumeEntry) ([]byte, error) {
	if len(entries) > maxResumeIDs {
		return nil, fmt.Errorf("netcast: %d resume entries exceed limit %d", len(entries), maxResumeIDs)
	}
	out := make([]byte, 0, 14+17*len(entries))
	out = binary.LittleEndian.AppendUint64(out, epoch)
	out = binary.LittleEndian.AppendUint32(out, generation)
	out = binary.LittleEndian.AppendUint16(out, uint16(len(entries)))
	for _, e := range entries {
		out = binary.LittleEndian.AppendUint64(out, uint64(e.ID))
		out = append(out, e.Status)
		out = binary.LittleEndian.AppendUint64(out, uint64(e.Detail))
	}
	return out, nil
}

// decodeResumeAck is the inverse of encodeResumeAck.
func decodeResumeAck(payload []byte) (epoch uint64, generation uint32, entries []resumeEntry, err error) {
	if len(payload) < 14 {
		return 0, 0, nil, fmt.Errorf("netcast: resume ack truncated (%d bytes)", len(payload))
	}
	epoch = binary.LittleEndian.Uint64(payload)
	generation = binary.LittleEndian.Uint32(payload[8:])
	n := int(binary.LittleEndian.Uint16(payload[12:]))
	payload = payload[14:]
	if n > maxResumeIDs || len(payload) != 17*n {
		return 0, 0, nil, fmt.Errorf("netcast: resume ack claims %d entries with %d payload bytes", n, len(payload))
	}
	entries = make([]resumeEntry, n)
	for i := range entries {
		e := &entries[i]
		e.ID = int64(binary.LittleEndian.Uint64(payload))
		e.Status = payload[8]
		if e.Status > ResumeResubmit {
			return 0, 0, nil, fmt.Errorf("netcast: resume ack status %d invalid", e.Status)
		}
		e.Detail = int64(binary.LittleEndian.Uint64(payload[9:]))
		payload = payload[17:]
	}
	return epoch, generation, entries, nil
}

// channelHead is the decoded per-channel stream header of a multichannel
// cycle (protocol version 3). Every channel's share of every cycle starts
// with one: `uint32` cycle number, `uint8` channel ID, `uint8` channel
// count, `uint8` role (0 = index, 1 = data), `uint16` doc count carried by
// this channel this cycle.
type channelHead struct {
	Number   uint32
	Channel  uint8
	Channels uint8
	Role     uint8
	NumDocs  uint16
}

// Channel head role values.
const (
	channelRoleIndex uint8 = 0
	channelRoleData  uint8 = 1
)

const channelHeadLen = 9

// encode serialises the channel head.
func (h *channelHead) encode() []byte {
	out := make([]byte, channelHeadLen)
	binary.LittleEndian.PutUint32(out, h.Number)
	out[4] = h.Channel
	out[5] = h.Channels
	out[6] = h.Role
	binary.LittleEndian.PutUint16(out[7:], h.NumDocs)
	return out
}

// decodeChannelHead is the inverse of encode.
func decodeChannelHead(data []byte) (*channelHead, error) {
	if len(data) != channelHeadLen {
		return nil, fmt.Errorf("netcast: channel head has %d bytes, want %d", len(data), channelHeadLen)
	}
	h := &channelHead{
		Number:   binary.LittleEndian.Uint32(data),
		Channel:  data[4],
		Channels: data[5],
		Role:     data[6],
		NumDocs:  binary.LittleEndian.Uint16(data[7:]),
	}
	if h.Channels < 2 {
		return nil, fmt.Errorf("netcast: channel head claims %d channels", h.Channels)
	}
	if h.Channel >= h.Channels {
		return nil, fmt.Errorf("netcast: channel head for channel %d of %d", h.Channel, h.Channels)
	}
	if h.Role != channelRoleIndex && h.Role != channelRoleData {
		return nil, fmt.Errorf("netcast: channel head role %d invalid", h.Role)
	}
	if (h.Role == channelRoleIndex) != (h.Channel == 0) {
		return nil, fmt.Errorf("netcast: channel %d with role %d", h.Channel, h.Role)
	}
	return h, nil
}

// cycleHead is the decoded head segment of one cycle. The organisation byte
// (offset 4) negotiates the index layout per cycle: 0 = one-tier, 1 =
// two-tier with the node-pointer index, 2 = two-tier with the succinct
// balanced-parentheses tier. Clients that predate value 2 reject the head
// cleanly instead of mis-decoding the index segment.
type cycleHead struct {
	Number     uint32
	TwoTier    bool
	Succinct   bool // first tier is the succinct encoding (implies TwoTier)
	NumDocs    uint16
	Catalog    []byte   // encoded wire.Catalog
	RootLabels []string // labels of index roots, in root order
}

// encode serialises the head.
func (h *cycleHead) encode() ([]byte, error) {
	if len(h.RootLabels) > 0xFF {
		return nil, fmt.Errorf("netcast: %d root labels exceed limit", len(h.RootLabels))
	}
	out := make([]byte, 0, 16+len(h.Catalog))
	var num [4]byte
	binary.LittleEndian.PutUint32(num[:], h.Number)
	out = append(out, num[:]...)
	switch {
	case h.Succinct:
		if !h.TwoTier {
			return nil, fmt.Errorf("netcast: succinct cycle head requires two-tier")
		}
		out = append(out, 2)
	case h.TwoTier:
		out = append(out, 1)
	default:
		out = append(out, 0)
	}
	var nd [2]byte
	binary.LittleEndian.PutUint16(nd[:], h.NumDocs)
	out = append(out, nd[:]...)
	out = append(out, byte(len(h.RootLabels)))
	for _, l := range h.RootLabels {
		if len(l) > 0xFF {
			return nil, fmt.Errorf("netcast: root label %q too long", l)
		}
		out = append(out, byte(len(l)))
		out = append(out, l...)
	}
	var cl [4]byte
	binary.LittleEndian.PutUint32(cl[:], uint32(len(h.Catalog)))
	out = append(out, cl[:]...)
	out = append(out, h.Catalog...)
	return out, nil
}

// decodeCycleHead is the inverse of encode.
func decodeCycleHead(data []byte) (*cycleHead, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("netcast: cycle head truncated")
	}
	if data[4] > 2 {
		return nil, fmt.Errorf("netcast: cycle head organisation %d unknown", data[4])
	}
	h := &cycleHead{
		Number:   binary.LittleEndian.Uint32(data),
		TwoTier:  data[4] >= 1,
		Succinct: data[4] == 2,
		NumDocs:  binary.LittleEndian.Uint16(data[5:]),
	}
	pos := 7
	nRoots := int(data[pos])
	pos++
	for i := 0; i < nRoots; i++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("netcast: cycle head truncated at root %d", i)
		}
		l := int(data[pos])
		pos++
		if pos+l > len(data) {
			return nil, fmt.Errorf("netcast: root label %d truncated", i)
		}
		h.RootLabels = append(h.RootLabels, string(data[pos:pos+l]))
		pos += l
	}
	if pos+4 > len(data) {
		return nil, fmt.Errorf("netcast: cycle head catalog length truncated")
	}
	cl := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if pos+cl > len(data) {
		return nil, fmt.Errorf("netcast: cycle head catalog truncated")
	}
	h.Catalog = data[pos : pos+cl]
	return h, nil
}
