// Package netcast runs the paper's system (Fig. 1) over real sockets: a
// broadcast server with a TCP uplink for XPath requests and a TCP downlink
// that streams broadcast cycles — cycle head, air index (in the wire
// format), second-tier offset list and documents — to every subscriber.
// Clients implement the §3.4 access protocols against the decoded byte
// stream, so the whole pipeline (index build → prune → pack → encode →
// decode → navigate → retrieve) is exercised end to end on the wire.
//
// Framing is length-prefixed: 1 type byte, 4 length bytes (little endian),
// then the payload.
package netcast

import (
	"encoding/binary"
	"fmt"
	"io"
)

// FrameType tags downlink and uplink frames.
type FrameType byte

const (
	// FrameQuery is an uplink request: payload is the XPath expression.
	FrameQuery FrameType = iota + 1
	// FrameAck acknowledges an uplink request: payload is "ok" or an error
	// message prefixed with "err:".
	FrameAck
	// FrameCycleHead starts a cycle: payload is the encoded cycleHead.
	FrameCycleHead
	// FrameIndex carries the packed index segment.
	FrameIndex
	// FrameSecondTier carries the second-tier offset list (two-tier mode).
	FrameSecondTier
	// FrameDoc carries one document: 2 ID bytes then the XML.
	FrameDoc
)

// maxFrame bounds payload sizes defensively (16 MiB).
const maxFrame = 16 << 20

// writeFrame writes one frame.
func writeFrame(w io.Writer, t FrameType, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("netcast: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = byte(t)
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame.
func readFrame(r io.Reader) (FrameType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("netcast: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return FrameType(hdr[0]), payload, nil
}

// cycleHead is the decoded head segment of one cycle.
type cycleHead struct {
	Number     uint32
	TwoTier    bool
	NumDocs    uint16
	Catalog    []byte   // encoded wire.Catalog
	RootLabels []string // labels of index roots, in root order
}

// encode serialises the head.
func (h *cycleHead) encode() ([]byte, error) {
	if len(h.RootLabels) > 0xFF {
		return nil, fmt.Errorf("netcast: %d root labels exceed limit", len(h.RootLabels))
	}
	out := make([]byte, 0, 16+len(h.Catalog))
	var num [4]byte
	binary.LittleEndian.PutUint32(num[:], h.Number)
	out = append(out, num[:]...)
	if h.TwoTier {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	var nd [2]byte
	binary.LittleEndian.PutUint16(nd[:], h.NumDocs)
	out = append(out, nd[:]...)
	out = append(out, byte(len(h.RootLabels)))
	for _, l := range h.RootLabels {
		if len(l) > 0xFF {
			return nil, fmt.Errorf("netcast: root label %q too long", l)
		}
		out = append(out, byte(len(l)))
		out = append(out, l...)
	}
	var cl [4]byte
	binary.LittleEndian.PutUint32(cl[:], uint32(len(h.Catalog)))
	out = append(out, cl[:]...)
	out = append(out, h.Catalog...)
	return out, nil
}

// decodeCycleHead is the inverse of encode.
func decodeCycleHead(data []byte) (*cycleHead, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("netcast: cycle head truncated")
	}
	h := &cycleHead{
		Number:  binary.LittleEndian.Uint32(data),
		TwoTier: data[4] == 1,
		NumDocs: binary.LittleEndian.Uint16(data[5:]),
	}
	pos := 7
	nRoots := int(data[pos])
	pos++
	for i := 0; i < nRoots; i++ {
		if pos >= len(data) {
			return nil, fmt.Errorf("netcast: cycle head truncated at root %d", i)
		}
		l := int(data[pos])
		pos++
		if pos+l > len(data) {
			return nil, fmt.Errorf("netcast: root label %d truncated", i)
		}
		h.RootLabels = append(h.RootLabels, string(data[pos:pos+l]))
		pos += l
	}
	if pos+4 > len(data) {
		return nil, fmt.Errorf("netcast: cycle head catalog length truncated")
	}
	cl := int(binary.LittleEndian.Uint32(data[pos:]))
	pos += 4
	if pos+cl > len(data) {
		return nil, fmt.Errorf("netcast: cycle head catalog truncated")
	}
	h.Catalog = data[pos : pos+cl]
	return h, nil
}
