package netcast

import (
	"bufio"
	"bytes"
	"fmt"
	"io"

	"repro/internal/netcast/transport"
)

// frameSource adapts one downlink connection to frame-at-a-time reads. The
// server speaks either the bare v2/v3 protocol or the transport layer
// (per-frame DEFLATE under the same frames); the source sniffs which by
// peeking the stream's first bytes — a transport hello switches it into
// transport mode, anything else is served exactly as before, byte for byte.
//
// Every frame comes back with its air cost: on the bare protocol that is
// the payload size (matching the pre-transport accounting exactly), in
// transport mode it is the envelope's wire size — so tuning and doze
// metrics count *compressed* air bytes when compression is negotiated,
// which is the whole point of compressing.
type frameSource struct {
	br      *bufio.Reader
	tr      *transport.Reader // non-nil once a transport hello was sniffed
	sniffed bool

	// doze accumulates bytes the source skipped internally while
	// realigning after transport-level corruption; takeDoze drains it into
	// the caller's stats.
	doze int64

	// A transport-level resync leaves the recovered frame stashed here so
	// the corruption error can surface to the protocol layer (which must
	// count the resync and drop its cycle state) without losing the frame.
	hasStash bool
	stashT   FrameType
	stashP   []byte
	stashAir int64
}

// newFrameSource wraps a downlink connection.
func newFrameSource(conn io.Reader) *frameSource {
	return &frameSource{br: bufio.NewReaderSize(conn, downlinkBufSize)}
}

// sniff inspects the stream's first bytes once: a transport hello switches
// the source into transport mode. A peek failure is left for the next read
// to report (a legacy stream's first frame is always longer than the peek).
func (fs *frameSource) sniff() error {
	if fs.sniffed {
		return nil
	}
	p, err := fs.br.Peek(4)
	if err == nil && transport.IsHelloPrefix(p) {
		h, err := transport.ReadHello(fs.br)
		if err != nil {
			return fmt.Errorf("netcast: transport hello: %w", err)
		}
		_ = h // the downlink hello only announces framing; nothing to grant
		fs.tr = transport.NewReaderFromBufio(fs.br)
	}
	fs.sniffed = true
	return nil
}

// isTransport reports whether the downlink negotiated the transport layer.
// Meaningful after the first next/resync call.
func (fs *frameSource) isTransport() bool { return fs.tr != nil }

// takeDoze drains bytes skipped during internal transport-level resyncs.
func (fs *frameSource) takeDoze() int64 {
	d := fs.doze
	fs.doze = 0
	return d
}

// next reads one protocol frame and its air cost. Corruption — at either
// the transport or the frame layer — satisfies isCorrupt; in transport
// mode the stream is realigned internally first (the recovered frame is
// stashed for the following call), so the protocol layer's recovery logic
// never has to know which layer detected the damage.
func (fs *frameSource) next() (t FrameType, payload []byte, air int64, err error) {
	if err := fs.sniff(); err != nil {
		return 0, nil, 0, err
	}
	if fs.tr == nil {
		t, payload, err = readFrame(fs.br)
		return t, payload, int64(len(payload)), err
	}
	if fs.hasStash {
		fs.hasStash = false
		return fs.stashT, fs.stashP, fs.stashAir, nil
	}
	fr, err := fs.tr.Next()
	if err != nil {
		if !transport.IsCorrupt(err) {
			return 0, nil, 0, err
		}
		// Realign at the transport layer now; surface the corruption once.
		rfr, skipped, rerr := fs.tr.Resync()
		fs.doze += skipped
		if rerr != nil {
			return 0, nil, 0, rerr
		}
		if st, sp, derr := decodeInner(rfr.Inner); derr == nil {
			fs.stashT, fs.stashP, fs.stashAir, fs.hasStash = st, sp, int64(rfr.Wire), true
		} else {
			fs.doze += int64(rfr.Wire)
		}
		return 0, nil, 0, fmt.Errorf("%w: %v", errFrameCorrupt, err)
	}
	t, payload, derr := decodeInner(fr.Inner)
	if derr != nil {
		// A CRC-valid envelope wrapping an undecodable inner frame; the
		// stream itself is still aligned.
		return 0, nil, 0, fmt.Errorf("%w: inner frame: %v", errFrameCorrupt, derr)
	}
	return t, payload, int64(fr.Wire), nil
}

// resync scans for the next frame of type want, returning the bytes skipped
// on the way (the caller adds them to doze accounting).
func (fs *frameSource) resync(want FrameType) (payload []byte, skipped int64, err error) {
	if err := fs.sniff(); err != nil {
		return nil, 0, err
	}
	if fs.tr == nil {
		return resyncFrame(fs.br, want)
	}
	for {
		t, p, air, err := fs.next()
		skipped += fs.takeDoze()
		if err != nil {
			if isCorrupt(err) {
				continue
			}
			return nil, skipped, err
		}
		if t == want {
			return p, skipped, nil
		}
		skipped += air
	}
}

// decodeInner parses the protocol frame wrapped by a transport envelope.
// readFrame copies the payload out, so the result outlives the transport
// reader's buffer reuse.
func decodeInner(inner []byte) (FrameType, []byte, error) {
	t, payload, err := readFrame(bytes.NewReader(inner))
	if err != nil {
		return 0, nil, err
	}
	return t, payload, nil
}
