package netcast

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func testCollection(t *testing.T) *xmldoc.Collection {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 77})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	return c
}

func startServer(t *testing.T, mode broadcast.Mode) (*Server, *xmldoc.Collection) {
	t.Helper()
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          mode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, coll
}

func TestEndToEndRetrieve(t *testing.T) {
	for _, mode := range []broadcast.Mode{broadcast.OneTierMode, broadcast.TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			srv, coll := startServer(t, mode)
			cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer cl.Close()

			q := xpath.MustParse("/nitf/body/body.content/block")
			want := q.MatchingDocs(coll)
			if len(want) == 0 {
				t.Fatal("test query matches nothing")
			}
			if err := cl.Submit(q); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			docs, stats, err := cl.Retrieve(ctx, q)
			if err != nil {
				t.Fatalf("Retrieve: %v", err)
			}
			gotIDs := make([]xmldoc.DocID, len(docs))
			for i, d := range docs {
				gotIDs[i] = d.ID
			}
			if !reflect.DeepEqual(gotIDs, want) {
				t.Errorf("retrieved %v, want %v", gotIDs, want)
			}
			// The retrieved documents decode to real trees.
			for _, d := range docs {
				if d.Root == nil || d.Root.Label != "nitf" {
					t.Errorf("doc %d has bad root", d.ID)
				}
			}
			if stats.TuningBytes <= 0 || stats.Cycles == 0 {
				t.Errorf("stats = %+v", stats)
			}
		})
	}
}

func TestTwoClientsShareBroadcast(t *testing.T) {
	srv, coll := startServer(t, broadcast.TwoTierMode)
	q1 := xpath.MustParse("/nitf/head/title")
	q2 := xpath.MustParse("/nitf//p")

	type outcome struct {
		ids  []xmldoc.DocID
		err  error
		doze int64
	}
	runClient := func(q xpath.Path, ch chan<- outcome) {
		cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		defer cl.Close()
		if err := cl.Submit(q); err != nil {
			ch <- outcome{err: err}
			return
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		docs, stats, err := cl.Retrieve(ctx, q)
		if err != nil {
			ch <- outcome{err: err}
			return
		}
		ids := make([]xmldoc.DocID, len(docs))
		for i, d := range docs {
			ids[i] = d.ID
		}
		ch <- outcome{ids: ids, doze: stats.DozeBytes}
	}
	ch1 := make(chan outcome, 1)
	ch2 := make(chan outcome, 1)
	go runClient(q1, ch1)
	go runClient(q2, ch2)
	o1, o2 := <-ch1, <-ch2
	if o1.err != nil || o2.err != nil {
		t.Fatalf("client errors: %v / %v", o1.err, o2.err)
	}
	if !reflect.DeepEqual(o1.ids, q1.MatchingDocs(coll)) {
		t.Errorf("client 1 ids = %v, want %v", o1.ids, q1.MatchingDocs(coll))
	}
	if !reflect.DeepEqual(o2.ids, q2.MatchingDocs(coll)) {
		t.Errorf("client 2 ids = %v, want %v", o2.ids, q2.MatchingDocs(coll))
	}
}

func TestSubmitRejectsBadQueries(t *testing.T) {
	srv, _ := startServer(t, broadcast.TwoTierMode)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Submit(xpath.MustParse("/definitely/absent")); err == nil {
		t.Error("empty-result query accepted")
	}
	var junk xpath.Path
	junk.Steps = []xpath.Step{{Axis: xpath.Child, Label: "has space"}}
	if err := cl.Submit(junk); err == nil {
		t.Error("malformed query accepted")
	}
	// The connection still works after rejections.
	if err := cl.Submit(xpath.MustParse("/nitf")); err != nil {
		t.Errorf("valid submit after rejections: %v", err)
	}
}

func TestServerShutdownIdempotentAndClean(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{Collection: coll, CycleCapacity: 50_000})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	srv.Shutdown()
	srv.Shutdown() // must not panic or hang
	if _, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{}); err == nil {
		t.Error("dial succeeded after shutdown")
	}
}

func TestStartServerValidation(t *testing.T) {
	coll := testCollection(t)
	if _, err := StartServer(ServerConfig{CycleCapacity: 1}); err == nil {
		t.Error("nil collection accepted")
	}
	if _, err := StartServer(ServerConfig{Collection: coll}); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestServerProgress(t *testing.T) {
	srv, _ := startServer(t, broadcast.TwoTierMode)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Submit(xpath.MustParse("/nitf")); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for srv.Pending() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never drained the request")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if srv.Cycles() == 0 {
		t.Error("no cycles broadcast")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	h := &cycleHead{Number: 42, TwoTier: true, NumDocs: 7, Catalog: []byte{1, 2, 3}, RootLabels: []string{"nitf", "x"}}
	data, err := h.encode()
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := decodeCycleHead(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if back.Number != 42 || !back.TwoTier || back.NumDocs != 7 ||
		!reflect.DeepEqual(back.RootLabels, h.RootLabels) ||
		!reflect.DeepEqual(back.Catalog, h.Catalog) {
		t.Errorf("round trip = %+v", back)
	}
}

func TestDecodeCycleHeadErrors(t *testing.T) {
	tests := [][]byte{
		nil,
		{1, 2, 3},
		{1, 0, 0, 0, 1, 0, 0, 2, 5}, // truncated root label
	}
	for i, data := range tests {
		if _, err := decodeCycleHead(data); err == nil {
			t.Errorf("case %d decoded", i)
		}
	}
}
