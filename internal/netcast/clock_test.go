package netcast

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/xpath"
)

// The token bucket is pure arithmetic over a supplied clock, so its behaviour
// is exactly computable: 2 tokens/s with burst 1 grants the burst token, then
// demands a 500ms wait per query.
func TestTokenBucketDeterministic(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	b := newTokenBucket(2, 1, clk.Now())

	if wait := b.take(clk.Now()); wait != 0 {
		t.Fatalf("burst token refused: wait = %v", wait)
	}
	if wait := b.take(clk.Now()); wait != 500*time.Millisecond {
		t.Fatalf("empty bucket: wait = %v, want 500ms", wait)
	}
	clk.Advance(500 * time.Millisecond)
	if wait := b.take(clk.Now()); wait != 0 {
		t.Fatalf("refilled token refused: wait = %v", wait)
	}
	clk.Advance(250 * time.Millisecond)
	if wait := b.take(clk.Now()); wait != 250*time.Millisecond {
		t.Fatalf("half-refilled bucket: wait = %v, want 250ms", wait)
	}

	// Idle time accrues at most the burst capacity.
	clk.Advance(time.Hour)
	if wait := b.take(clk.Now()); wait != 0 {
		t.Fatalf("token after idle refused: wait = %v", wait)
	}
	if wait := b.take(clk.Now()); wait != 500*time.Millisecond {
		t.Fatalf("burst not clamped after idle: wait = %v, want 500ms", wait)
	}
}

// waitForWaiter polls until a goroutine blocks on the fake clock's After.
func waitForWaiter(t *testing.T, clk *control.Fake) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for clk.Waiters() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no goroutine ever blocked on the injected clock")
		}
		time.Sleep(time.Millisecond)
	}
}

// SubmitRetry's backoff waits must run on the injected clock: against a stub
// server that rejects twice before admitting, the retry loop blocks on the
// fake clock (observable via Waiters) and completes only as the test advances
// it — no wall-clock sleeps.
func TestSubmitRetryBackoffOnInjectedClock(t *testing.T) {
	upLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer upLn.Close()
	bcLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer bcLn.Close()
	go func() {
		// Broadcast side: hold the connection open, send nothing.
		conn, err := bcLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-make(chan struct{})
	}()

	const rejects = 2
	go func() {
		conn, err := upLn.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for i := 0; ; i++ {
			if _, _, err := readFrame(conn); err != nil {
				return
			}
			if i < rejects {
				_ = writeFrame(conn, FrameReject, encodeReject(100*time.Millisecond, "busy"))
			} else {
				_ = writeFrame(conn, FrameAck, []byte("ok:1"))
				return
			}
		}
	}()

	cl, err := Dial(upLn.Addr().String(), bcLn.Addr().String(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	clk := control.NewFake(time.Unix(0, 0))
	cl.Clock = clk

	done := make(chan error, 1)
	go func() {
		done <- cl.SubmitRetry(context.Background(), xpath.MustParse("/nitf"))
	}()
	for i := 0; i < rejects; i++ {
		select {
		case err := <-done:
			t.Fatalf("SubmitRetry returned after %d rejections without waiting: %v", i, err)
		default:
		}
		waitForWaiter(t, clk)
		// The 100ms hint gains at most 50% jitter; 200ms always covers it.
		clk.Advance(200 * time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SubmitRetry: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SubmitRetry did not complete after the final admit")
	}
	if got := cl.CoveredFrom(); got != 1 {
		t.Errorf("CoveredFrom = %d, want 1 from the stub ack", got)
	}
}
