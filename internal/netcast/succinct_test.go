package netcast

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestEndToEndRetrieveSuccinct drives the succinct first tier over real TCP:
// the cycle head negotiates the encoding (organisation byte 2), the client
// navigates the balanced-parentheses tier in place, and retrieval answers
// exactly as the node-pointer stream would.
func TestEndToEndRetrieveSuccinct(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		IndexEncoding: core.EncodingSuccinct,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	q := xpath.MustParse("/nitf/body/body.content/block")
	want := q.MatchingDocs(coll)
	if len(want) == 0 {
		t.Fatal("test query matches nothing")
	}
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, stats, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	gotIDs := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		gotIDs[i] = d.ID
	}
	if !reflect.DeepEqual(gotIDs, want) {
		t.Errorf("retrieved %v, want %v", gotIDs, want)
	}
	for _, d := range docs {
		if d.Root == nil || d.Root.Label != "nitf" {
			t.Errorf("doc %d has bad root", d.ID)
		}
	}
	if stats.TuningBytes <= 0 || stats.Cycles == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestStartServerRejectsSuccinctOneTier pins the negotiation's validation:
// the succinct tier carries no document offsets, so a one-tier succinct
// server must fail to start rather than broadcast an unanswerable stream.
func TestStartServerRejectsSuccinctOneTier(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.OneTierMode,
		IndexEncoding: core.EncodingSuccinct,
		CycleCapacity: coll.TotalSize(),
	})
	if err == nil {
		srv.Shutdown()
		t.Fatal("one-tier succinct server started, want configuration error")
	}
}
