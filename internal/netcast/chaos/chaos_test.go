package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestFaulterDeterministic: the same seed and stream must produce identical
// output regardless of chunking.
func TestFaulterDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, FlipProb: 0.01, DropProb: 0.005}
	stream := make([]byte, 10000)
	for i := range stream {
		stream[i] = byte(i * 31)
	}
	run := func(chunkSizes []int) []byte {
		f := newFaulter(cfg, 7, &counters{})
		var out []byte
		rest := append([]byte(nil), stream...)
		i := 0
		for len(rest) > 0 {
			n := chunkSizes[i%len(chunkSizes)]
			if n > len(rest) {
				n = len(rest)
			}
			i++
			chunk := append([]byte(nil), rest[:n]...)
			rest = rest[n:]
			o, _ := f.process(chunk)
			out = append(out, o...)
		}
		return out
	}
	a := run([]int{10000})
	b := run([]int{1})
	c := run([]int{7, 512, 3})
	if !bytes.Equal(a, b) || !bytes.Equal(a, c) {
		t.Fatal("fault pattern depends on chunking")
	}
	if bytes.Equal(a, stream) {
		t.Fatal("no faults injected at these rates over 10 kB")
	}
}

// TestFaulterSeedsDiffer: different seeds (or connection numbers) must fault
// different positions.
func TestFaulterSeedsDiffer(t *testing.T) {
	stream := make([]byte, 10000)
	p := func(seed, conn int64) []byte {
		f := newFaulter(Config{Seed: seed, FlipProb: 0.01}, conn, &counters{})
		out, _ := f.process(append([]byte(nil), stream...))
		return out
	}
	if bytes.Equal(p(1, 0), p(2, 0)) {
		t.Error("seeds 1 and 2 faulted identically")
	}
	if bytes.Equal(p(1, 0), p(1, 1)) {
		t.Error("connections 0 and 1 faulted identically")
	}
}

// TestFaulterRates: injected fault counts land near the configured
// per-byte probabilities.
func TestFaulterRates(t *testing.T) {
	ctr := &counters{}
	f := newFaulter(Config{Seed: 3, FlipProb: 0.01, DropProb: 0.01}, 0, ctr)
	n := 200000
	out, _ := f.process(make([]byte, n))
	st := ctr.snapshot()
	wantLo, wantHi := int64(float64(n)*0.005), int64(float64(n)*0.02)
	if st.BitFlips < wantLo || st.BitFlips > wantHi {
		t.Errorf("flips = %d, want within [%d,%d]", st.BitFlips, wantLo, wantHi)
	}
	if st.Drops < wantLo || st.Drops > wantHi {
		t.Errorf("drops = %d, want within [%d,%d]", st.Drops, wantLo, wantHi)
	}
	if len(out) != n-int(st.Drops) {
		t.Errorf("output %d bytes, want %d", len(out), n-int(st.Drops))
	}
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{FlipProb: 0.5}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{FlipProb: 1.5}).Validate(); err == nil {
		t.Error("FlipProb 1.5 accepted")
	}
	if err := (Config{MaxDelay: -time.Second}).Validate(); err == nil {
		t.Error("negative delay accepted")
	}
}

// TestProxyForwardsAndKills: a clean proxy is transparent; KillAll drops
// live links but new connections still work.
func TestProxyForwardsAndKills(t *testing.T) {
	// Echo server.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() { io.Copy(c, c); c.Close() }()
		}
	}()

	p, err := NewProxy(ln.Addr().String(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	conn, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	msg := []byte("hello through the proxy")
	if _, err := conn.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn, got); err != nil {
		t.Fatalf("echo read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echo = %q, want %q", got, msg)
	}

	if n := p.KillAll(); n != 1 {
		t.Errorf("KillAll killed %d links, want 1", n)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(got); err == nil {
		t.Error("read succeeded on a killed link")
	}

	// The proxy still accepts fresh connections after KillAll.
	conn2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatalf("redial after KillAll: %v", err)
	}
	defer conn2.Close()
	if _, err := conn2.Write(msg); err != nil {
		t.Fatal(err)
	}
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn2, got); err != nil {
		t.Fatalf("echo after reconnect: %v", err)
	}
	if st := p.Stats(); st.Conns != 2 || st.Kills < 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestWrappedConnKill: KillProb eventually severs a wrapped connection.
func TestWrappedConnKill(t *testing.T) {
	server, client := net.Pipe()
	defer server.Close()
	wrapped := WrapConn(client, Config{Seed: 9, KillProb: 0.01}, 0)
	go func() {
		buf := make([]byte, 1024)
		for i := 0; i < 100; i++ {
			if _, err := server.Write(buf); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 1024)
	for i := 0; i < 100; i++ {
		if _, err := wrapped.Read(buf); err != nil {
			return // killed, as expected
		}
	}
	t.Fatal("connection survived 100 kB at KillProb 1%")
}
