// Package chaos injects deterministic, seedable faults — bit flips, byte
// drops (truncation), delays and connection kills — into net.Conn byte
// streams, net.Listeners and TCP proxies. It exists to prove the broadcast
// channel's recovery paths: tests wrap a server's downlink in a Proxy and
// assert that clients still retrieve exactly their result sets, just with
// more cycles, resyncs and reconnects.
//
// Fault decisions are a pure function of (Seed, connection number, byte
// position), so a given configuration corrupts the same stream positions on
// every run regardless of how the bytes are chunked by TCP.
package chaos

import (
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Config parameterises a fault injector. All probabilities are per byte of
// forwarded traffic; zero disables that fault.
type Config struct {
	// Seed makes every fault decision reproducible.
	Seed int64
	// FlipProb is the per-byte probability of flipping one of its bits —
	// in-place corruption that checksums must catch.
	FlipProb float64
	// DropProb is the per-byte probability of deleting the byte from the
	// stream — truncation that desynchronises length-prefixed framing.
	DropProb float64
	// KillProb is the per-byte probability of killing the connection after
	// forwarding the byte.
	KillProb float64
	// MaxDelay, when positive, sleeps a deterministic pseudo-random duration
	// in [0, MaxDelay) before forwarding each chunk.
	MaxDelay time.Duration
}

// Stats counts injected faults across all connections of a Listener or
// Proxy.
type Stats struct {
	// Conns is the number of connections fault-injected so far.
	Conns int64
	// Bytes is the number of bytes that passed through (before drops).
	Bytes int64
	// BitFlips, Drops and Kills count injected faults by kind.
	BitFlips int64
	Drops    int64
	Kills    int64
}

// counters aggregates fault counts with atomics so data paths never share a
// lock.
type counters struct {
	conns, bytes, flips, drops, kills atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Conns:    c.conns.Load(),
		Bytes:    c.bytes.Load(),
		BitFlips: c.flips.Load(),
		Drops:    c.drops.Load(),
		Kills:    c.kills.Load(),
	}
}

// splitmix64 is the SplitMix64 mixer; a full-avalanche hash of the input.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// faulter applies Config faults to one direction of one connection. Fault
// decisions hash the absolute byte position, so they are independent of
// read/write chunk boundaries.
type faulter struct {
	cfg   Config
	key   uint64 // seed ⊕ connection number
	pos   uint64 // absolute position in the stream
	stats *counters
}

func newFaulter(cfg Config, connNum int64, stats *counters) *faulter {
	return &faulter{cfg: cfg, key: splitmix64(uint64(cfg.Seed)) ^ splitmix64(uint64(connNum)*0x9e3779b97f4a7c15), stats: stats}
}

// rand returns a uniform [0,1) float and a raw hash for the given stream
// position and decision lane.
func (f *faulter) rand(pos uint64, lane uint64) (float64, uint64) {
	h := splitmix64(f.key ^ splitmix64(pos*4+lane))
	return float64(h>>11) / float64(1<<53), h
}

// process applies faults to chunk in place, returning the bytes to forward
// and whether to kill the connection after forwarding them. The returned
// slice aliases chunk.
func (f *faulter) process(chunk []byte) (out []byte, kill bool) {
	if f.cfg.MaxDelay > 0 && len(chunk) > 0 {
		frac, _ := f.rand(f.pos, 3)
		time.Sleep(time.Duration(frac * float64(f.cfg.MaxDelay)))
	}
	f.stats.bytes.Add(int64(len(chunk)))
	w := 0
	for i := 0; i < len(chunk); i++ {
		pos := f.pos
		f.pos++
		if f.cfg.DropProb > 0 {
			if p, _ := f.rand(pos, 0); p < f.cfg.DropProb {
				f.stats.drops.Add(1)
				continue // byte deleted from the stream
			}
		}
		b := chunk[i]
		if f.cfg.FlipProb > 0 {
			if p, h := f.rand(pos, 1); p < f.cfg.FlipProb {
				b ^= 1 << (h & 7)
				f.stats.flips.Add(1)
			}
		}
		if f.cfg.KillProb > 0 && !kill {
			if p, _ := f.rand(pos, 2); p < f.cfg.KillProb {
				f.stats.kills.Add(1)
				kill = true
			}
		}
		chunk[w] = b
		w++
	}
	return chunk[:w], kill
}

// Conn wraps a net.Conn, injecting faults into the bytes it Reads (the
// incoming direction). Writes pass through untouched.
type Conn struct {
	net.Conn
	f      *faulter
	killed atomic.Bool
}

// WrapConn fault-injects the read side of conn. connNum diversifies the
// fault pattern between connections sharing a Config.
func WrapConn(conn net.Conn, cfg Config, connNum int64) *Conn {
	ctr := &counters{}
	ctr.conns.Add(1)
	return &Conn{Conn: conn, f: newFaulter(cfg, connNum, ctr)}
}

// Read reads from the underlying connection and applies faults to the data.
func (c *Conn) Read(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, fmt.Errorf("chaos: connection killed")
	}
	n, err := c.Conn.Read(p)
	if n == 0 {
		return n, err
	}
	out, kill := c.f.process(p[:n])
	if kill {
		c.killed.Store(true)
		c.Conn.Close()
	}
	return len(out), err
}

// Listener wraps a net.Listener so every accepted connection is
// fault-injected on its read side.
type Listener struct {
	net.Listener
	cfg  Config
	ctr  counters
	next atomic.Int64
}

// WrapListener fault-injects every connection accepted from ln.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg}
}

// Accept accepts the next connection wrapped with a per-connection fault
// pattern.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.ctr.conns.Add(1)
	return &Conn{Conn: conn, f: newFaulter(l.cfg, l.next.Add(1), &l.ctr)}, nil
}

// Stats reports fault counts across all accepted connections.
func (l *Listener) Stats() Stats { return l.ctr.snapshot() }

// Proxy is a TCP proxy that forwards the client→server direction verbatim
// and fault-injects the server→client direction — a lossy wireless downlink
// in front of an honest broadcast server. Clients dial Addr instead of the
// server; reconnecting clients get a fresh (differently-seeded) link.
type Proxy struct {
	ln     net.Listener
	target string
	cfg    Config
	ctr    counters

	mu    sync.Mutex
	links map[*proxyLink]struct{}
	next  int64

	closed chan struct{}
	wg     sync.WaitGroup
}

// proxyLink is one client connection and its server-side pair.
type proxyLink struct {
	client, server net.Conn
	once           sync.Once
}

func (pl *proxyLink) close() {
	pl.once.Do(func() {
		pl.client.Close()
		pl.server.Close()
	})
}

// NewProxy listens on 127.0.0.1:0 and forwards connections to target with
// downstream fault injection.
func NewProxy(target string, cfg Config) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, cfg: cfg, links: make(map[*proxyLink]struct{}), closed: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the proxy's listen address — what clients should dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Stats reports the faults injected so far.
func (p *Proxy) Stats() Stats { return p.ctr.snapshot() }

// LiveConns reports the number of client connections currently proxied.
func (p *Proxy) LiveConns() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.links)
}

// KillAll force-closes every live proxied connection — a forced disconnect
// of all clients — and returns how many links were killed. The proxy keeps
// accepting new connections, so clients can reconnect.
func (p *Proxy) KillAll() int {
	p.mu.Lock()
	links := make([]*proxyLink, 0, len(p.links))
	for pl := range p.links {
		links = append(links, pl)
		// Forget the link immediately so LiveConns observed after KillAll
		// only counts connections established afterwards.
		delete(p.links, pl)
	}
	p.mu.Unlock()
	for _, pl := range links {
		pl.close()
	}
	p.ctr.kills.Add(int64(len(links)))
	return len(links)
}

// Close stops accepting, kills every live link and waits for the forwarding
// goroutines to exit.
func (p *Proxy) Close() {
	select {
	case <-p.closed:
	default:
		close(p.closed)
	}
	p.ln.Close()
	p.KillAll()
	p.wg.Wait()
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		server, err := net.DialTimeout("tcp", p.target, 5*time.Second)
		if err != nil {
			client.Close()
			continue
		}
		pl := &proxyLink{client: client, server: server}
		p.mu.Lock()
		p.links[pl] = struct{}{}
		connNum := p.next
		p.next++
		p.mu.Unlock()
		p.ctr.conns.Add(1)
		p.wg.Add(2)
		go p.pipeUp(pl)
		go p.pipeDown(pl, connNum)
	}
}

// pipeUp forwards client→server verbatim (the uplink through the proxy is
// clean; netcast tests point only the broadcast downlink here, but keeping
// the upstream honest also makes the proxy usable in front of the uplink).
func (p *Proxy) pipeUp(pl *proxyLink) {
	defer p.wg.Done()
	defer p.unlink(pl)
	buf := make([]byte, 32<<10)
	for {
		n, err := pl.client.Read(buf)
		if n > 0 {
			if _, werr := pl.server.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// pipeDown forwards server→client through the fault injector.
func (p *Proxy) pipeDown(pl *proxyLink, connNum int64) {
	defer p.wg.Done()
	defer p.unlink(pl)
	f := newFaulter(p.cfg, connNum, &p.ctr)
	buf := make([]byte, 32<<10)
	for {
		n, err := pl.server.Read(buf)
		if n > 0 {
			out, kill := f.process(buf[:n])
			if len(out) > 0 {
				if _, werr := pl.client.Write(out); werr != nil {
					return
				}
			}
			if kill {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// unlink closes and forgets one link.
func (p *Proxy) unlink(pl *proxyLink) {
	pl.close()
	p.mu.Lock()
	delete(p.links, pl)
	p.mu.Unlock()
}

// Validate rejects nonsensical configurations (probabilities outside
// [0,1], negative delay).
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"FlipProb", c.FlipProb}, {"DropProb", c.DropProb}, {"KillProb", c.KillProb}} {
		if p.v < 0 || p.v > 1 || math.IsNaN(p.v) {
			return fmt.Errorf("chaos: %s = %v outside [0,1]", p.name, p.v)
		}
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("chaos: negative MaxDelay")
	}
	return nil
}
