package chaos

import (
	"sync"
	"time"

	"repro/internal/engine"
)

// StageCycleDone is the pseudo-stage a Crasher associates with the engine's
// CycleDone callback: the instant a cycle finishes assembly, after planning
// and building but before the driver commits it to the journal.
const StageCycleDone = "cycle-done"

// CrashStages are the pipeline probe points a Crasher can fire on. Every
// entry fires once per assembled (and, for encode, encoded) cycle, so a
// seed-chosen (stage, occurrence) pair lands the crash at a deterministic
// point of a deterministic cycle regardless of wall-clock timing.
var CrashStages = []string{
	engine.StageSchedule,
	engine.StageBuild,
	engine.StageEncode,
	StageCycleDone,
}

// Crasher is a deterministic crash-point injector: an engine.Probe that
// calls a kill function — typically journal.Kill or netcast's Server.Crash —
// the first time a seed-chosen occurrence of a seed-chosen pipeline stage
// completes. It models a process dying mid-pipeline (after scheduling,
// mid-build, after encoding, or between assembly and commit), the window the
// durability journal must make crash-safe: everything acked before the kill
// is durable, everything after never happened.
//
// The choice is a pure function of the seed, so a given configuration
// crashes at the same point of the same cycle on every run.
type Crasher struct {
	engine.NopProbe
	kill  func()
	stage string
	at    int64

	mu    sync.Mutex
	seen  map[string]int64
	fired bool
}

// NewCrasher picks a crash point from seed — a stage from CrashStages and an
// occurrence count in [1, horizon] — and returns a probe that calls kill the
// first time that occurrence of that stage completes. horizon is the number
// of cycles the run is expected to assemble (values < 1 are treated as 1);
// kill runs on the engine's reporting goroutine, so it must not block on the
// pipeline it interrupts.
func NewCrasher(seed int64, horizon int, kill func()) *Crasher {
	h := splitmix64(uint64(seed))
	stage := CrashStages[h%uint64(len(CrashStages))]
	if horizon < 1 {
		horizon = 1
	}
	at := int64(splitmix64(h)%uint64(horizon)) + 1
	return &Crasher{kill: kill, stage: stage, at: at, seen: make(map[string]int64)}
}

// hit counts one completion of stage and fires the kill exactly once when
// the chosen occurrence of the chosen stage is reached.
func (c *Crasher) hit(stage string) {
	c.mu.Lock()
	c.seen[stage]++
	fire := !c.fired && stage == c.stage && c.seen[stage] == c.at
	if fire {
		c.fired = true
	}
	c.mu.Unlock()
	if fire {
		c.kill()
	}
}

// StageDone implements engine.Probe.
func (c *Crasher) StageDone(stage string, _ time.Duration, _, _ int) { c.hit(stage) }

// CycleDone implements engine.Probe, counting the StageCycleDone
// pseudo-stage.
func (c *Crasher) CycleDone() { c.hit(StageCycleDone) }

// Stage is the seed-chosen crash stage.
func (c *Crasher) Stage() string { return c.stage }

// At is the seed-chosen occurrence count (1-based) of Stage that triggers
// the crash.
func (c *Crasher) At() int64 { return c.at }

// Fired reports whether the crash has been injected.
func (c *Crasher) Fired() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired
}
