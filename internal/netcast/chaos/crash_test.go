package chaos

import (
	"testing"
	"time"
)

// drive replays n completions of every crash stage against the crasher,
// returning how many times the kill fired.
func drive(c *Crasher, n int) int {
	fired := 0
	kill := c.kill
	c.kill = func() { fired++; kill() }
	for i := 0; i < n; i++ {
		for _, stage := range CrashStages {
			if stage == StageCycleDone {
				c.CycleDone()
			} else {
				c.StageDone(stage, time.Millisecond, 1, 1)
			}
		}
	}
	return fired
}

// TestCrasherDeterministic: the crash point is a pure function of the seed,
// the kill fires exactly once, and Fired flips at the chosen occurrence.
func TestCrasherDeterministic(t *testing.T) {
	const horizon = 25
	for seed := int64(1); seed <= 50; seed++ {
		a := NewCrasher(seed, horizon, func() {})
		b := NewCrasher(seed, horizon, func() {})
		if a.Stage() != b.Stage() || a.At() != b.At() {
			t.Fatalf("seed %d not deterministic: %s@%d vs %s@%d",
				seed, a.Stage(), a.At(), b.Stage(), b.At())
		}
		if a.At() < 1 || a.At() > horizon {
			t.Fatalf("seed %d occurrence %d outside [1, %d]", seed, a.At(), horizon)
		}
		ok := false
		for _, s := range CrashStages {
			ok = ok || s == a.Stage()
		}
		if !ok {
			t.Fatalf("seed %d picked unknown stage %q", seed, a.Stage())
		}
		if a.Fired() {
			t.Fatalf("seed %d fired before any stage completed", seed)
		}
		// Twice the horizon: the kill must still fire exactly once.
		if fired := drive(a, 2*horizon); fired != 1 {
			t.Fatalf("seed %d fired %d times over %d rounds", seed, fired, 2*horizon)
		}
		if !a.Fired() {
			t.Fatalf("seed %d Fired() false after firing", seed)
		}
	}
}

// TestCrasherSeedDiversity: across a modest seed range the chosen stages and
// occurrences are not all identical (the injector actually explores the
// pipeline, rather than always killing at one point).
func TestCrasherSeedDiversity(t *testing.T) {
	stages := map[string]bool{}
	ats := map[int64]bool{}
	for seed := int64(1); seed <= 32; seed++ {
		c := NewCrasher(seed, 40, func() {})
		stages[c.Stage()] = true
		ats[c.At()] = true
	}
	if len(stages) < len(CrashStages) {
		t.Errorf("32 seeds covered only %d of %d stages", len(stages), len(CrashStages))
	}
	if len(ats) < 8 {
		t.Errorf("32 seeds produced only %d distinct occurrences", len(ats))
	}
}

// TestCrasherHorizonClamp: horizons below 1 still yield a valid occurrence.
func TestCrasherHorizonClamp(t *testing.T) {
	c := NewCrasher(7, 0, func() {})
	if c.At() != 1 {
		t.Errorf("horizon 0 occurrence = %d, want 1", c.At())
	}
}
