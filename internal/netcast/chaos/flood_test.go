package chaos

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

func TestFloodCountsOutcomes(t *testing.T) {
	errRejected := errors.New("rejected")
	errBroken := errors.New("broken")
	var n atomic.Int64
	ctx, cancel := context.WithCancel(context.Background())
	submit := func(worker, seq int) error {
		if n.Add(1) >= 200 {
			cancel()
		}
		switch {
		case seq == 0:
			return errBroken
		case seq%2 == 1:
			return errRejected
		default:
			return nil
		}
	}
	stats := Flood(ctx, 4, 0, submit, func(err error) bool { return errors.Is(err, errRejected) })
	if stats.Attempts == 0 {
		t.Fatal("no attempts recorded")
	}
	if got := stats.Accepted + stats.Rejected + stats.Failed; got != stats.Attempts {
		t.Errorf("outcomes %d do not sum to attempts %d", got, stats.Attempts)
	}
	if stats.Rejected == 0 {
		t.Error("no rejections classified")
	}
	if stats.Failed == 0 {
		t.Error("the injected failure was not counted")
	}
}

func TestFloodHonorsInterval(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	stats := Flood(ctx, 1, 20*time.Millisecond, func(int, int) error { return nil }, nil)
	// 50 ms with a 20 ms pause per call bounds the attempts well below a
	// flat-out loop; allow generous slack for scheduler jitter.
	if stats.Attempts == 0 || stats.Attempts > 10 {
		t.Errorf("attempts = %d, want a small paced count", stats.Attempts)
	}
}
