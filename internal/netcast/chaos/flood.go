package chaos

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// FloodStats counts one flood's outcomes.
type FloodStats struct {
	// Attempts is the number of submissions issued.
	Attempts int64
	// Accepted counts submissions the target admitted.
	Accepted int64
	// Rejected counts submissions the target refused by admission control
	// (as classified by the caller's isReject).
	Rejected int64
	// Failed counts submissions that errored any other way (I/O, parse).
	Failed int64
}

// Flood hammers a target with concurrent submissions until the context is
// cancelled: workers goroutines each call submit in a loop, pausing interval
// between calls (zero means flat out). submit receives the worker index and
// a per-worker sequence number so callers can vary the submitted payload;
// isReject classifies its error as an admission-control rejection versus a
// real failure (nil treats every error as a failure).
//
// The package stays transport-agnostic — the caller supplies the submission
// closure — so floods compose with Conn/Proxy fault injection and with any
// uplink protocol.
func Flood(ctx context.Context, workers int, interval time.Duration, submit func(worker, seq int) error, isReject func(error) bool) FloodStats {
	if workers <= 0 {
		workers = 1
	}
	var attempts, accepted, rejected, failed atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; ctx.Err() == nil; seq++ {
				attempts.Add(1)
				switch err := submit(w, seq); {
				case err == nil:
					accepted.Add(1)
				case isReject != nil && isReject(err):
					rejected.Add(1)
				default:
					failed.Add(1)
				}
				if interval > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(interval):
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return FloodStats{
		Attempts: attempts.Load(),
		Accepted: accepted.Load(),
		Rejected: rejected.Load(),
		Failed:   failed.Load(),
	}
}
