package netcast

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/control"
	"repro/internal/netcast/transport"
	"repro/internal/xpath"
)

// MuxConfig parameterises DialMux.
type MuxConfig struct {
	// Compress requests per-frame DEFLATE on the uplink; granted only if
	// the server enables compression too.
	Compress bool
	// AckTimeout bounds each logical client's wait for its ack. Zero
	// selects the Submit default.
	AckTimeout time.Duration
	// Clock supplies backoff waits (SubmitRetry). Nil selects the wall
	// clock.
	Clock control.Clock
}

// Mux multiplexes many logical clients over one uplink TCP connection:
// each LogicalClient's frames carry its varint stream ID, a per-stream
// flow-control credit (granted by the server's hello) bounds how many
// frames one stream may have in flight, and a writer goroutine drains the
// streams' queues in fair round-robin so a chatty stream cannot starve the
// rest. This is how a load generator drives tens of thousands of clients
// over a handful of sockets.
//
// The Mux itself is safe for concurrent use; each LogicalClient serves one
// goroutine.
type Mux struct {
	conn       net.Conn
	enc        *transport.Encoder // owned by the writer goroutine
	bw         *bufio.Writer      // owned by the writer goroutine
	credit     int
	compress   bool
	ackTimeout time.Duration
	clock      control.Clock

	mu      sync.Mutex
	streams map[int64]*LogicalClient
	order   []*LogicalClient // round-robin scan order
	nextID  int64
	failErr error
	closed  bool

	notify   chan struct{} // pokes the writer when a queue gains a frame
	done     chan struct{} // closed on failure or Close
	failOnce sync.Once
	wg       sync.WaitGroup

	// unknown counts frames for unknown (closed or never-opened) stream
	// IDs; they are dropped, never misdelivered.
	unknown atomic.Int64
}

// muxResp is one uplink response delivered to a logical client.
type muxResp struct {
	t       FrameType
	payload []byte
}

// LogicalClient is one multiplexed client: it submits queries over its
// mux's shared connection under its own stream ID and flow-control window.
// Not safe for concurrent use (like Client).
type LogicalClient struct {
	mux *Mux
	id  int64

	sendq  chan []byte   // encoded inner frames awaiting the round-robin drain
	resp   chan muxResp  // responses dispatched by the reader
	tokens chan struct{} // flow-control window; one token per in-flight frame

	// rng seeds this logical client's backoff jitter — per-client, so ten
	// thousand streams backing off concurrently neither race on a shared
	// source nor jitter in lockstep.
	rng *rand.Rand

	coveredFrom uint32
	closed      bool
}

// DialMux opens a multiplexed uplink to a server. The hello handshake
// negotiates compression (if both sides want it) and learns the per-stream
// credit; Open then mints logical clients.
func DialMux(uplinkAddr string, cfg MuxConfig) (*Mux, error) {
	conn, err := net.DialTimeout("tcp", uplinkAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netcast: dial mux uplink: %w", err)
	}
	if err := transport.WriteHello(conn, transport.Hello{Compress: cfg.Compress, Mux: true}); err != nil {
		conn.Close()
		return nil, fmt.Errorf("netcast: mux hello: %w", err)
	}
	br := bufio.NewReaderSize(conn, downlinkBufSize)
	_ = conn.SetReadDeadline(time.Now().Add(defaultAckTimeout))
	grant, err := transport.ReadHello(br)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("netcast: mux hello reply: %w", err)
	}
	_ = conn.SetReadDeadline(time.Time{})
	if !grant.Mux {
		conn.Close()
		return nil, fmt.Errorf("netcast: server refused multiplexing")
	}
	credit := int(grant.Credit)
	if credit <= 0 {
		credit = 1
	}
	ackTimeout := cfg.AckTimeout
	if ackTimeout == 0 {
		ackTimeout = defaultAckTimeout
	}
	m := &Mux{
		conn:       conn,
		enc:        transport.NewEncoder(grant.Compress, 0),
		bw:         bufio.NewWriterSize(conn, downlinkBufSize),
		credit:     credit,
		compress:   grant.Compress,
		ackTimeout: ackTimeout,
		clock:      control.Or(cfg.Clock),
		streams:    make(map[int64]*LogicalClient),
		notify:     make(chan struct{}, 1),
		done:       make(chan struct{}),
	}
	m.wg.Add(2)
	go m.readLoop(br)
	go m.writeLoop()
	return m, nil
}

// Credit reports the per-stream flow-control window the server granted.
func (m *Mux) Credit() int { return m.credit }

// Compressed reports whether the uplink negotiated per-frame DEFLATE.
func (m *Mux) Compressed() bool { return m.compress }

// UnknownFrames reports responses dropped for carrying an unknown stream ID.
func (m *Mux) UnknownFrames() int64 { return m.unknown.Load() }

// Open mints a new logical client on the mux.
func (m *Mux) Open() (*LogicalClient, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, errors.New("netcast: mux closed")
	}
	if m.failErr != nil {
		return nil, fmt.Errorf("netcast: mux failed: %w", m.failErr)
	}
	lc := &LogicalClient{
		mux:    m,
		id:     m.nextID,
		sendq:  make(chan []byte, m.credit),
		resp:   make(chan muxResp, m.credit),
		tokens: make(chan struct{}, m.credit),
		rng:    newClientRand(),
	}
	m.nextID++
	for i := 0; i < m.credit; i++ {
		lc.tokens <- struct{}{}
	}
	m.streams[lc.id] = lc
	m.order = append(m.order, lc)
	return lc, nil
}

// Close tears the mux down: every logical client's pending Submit fails.
func (m *Mux) Close() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.fail(errors.New("netcast: mux closed"))
	m.wg.Wait()
}

// fail records the first fatal error, wakes every waiter and kills the
// connection. The uplink is drop-and-redial by protocol convention, so any
// read or write failure fails the whole mux.
func (m *Mux) fail(err error) {
	m.failOnce.Do(func() {
		m.mu.Lock()
		m.failErr = err
		m.mu.Unlock()
		close(m.done)
		m.conn.Close()
	})
}

// Err reports the error that failed the mux, nil while it is healthy.
func (m *Mux) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil // deliberate Close is not a failure
	}
	return m.failErr
}

// writeLoop drains the logical clients' send queues in fair round-robin —
// at most one frame per stream per pass — encoding each inner frame into a
// stream-stamped transport envelope. The buffered writer flushes only when
// every queue is empty, so bursts from many streams batch into large
// writes.
func (m *Mux) writeLoop() {
	defer m.wg.Done()
	for {
		wrote := false
		m.mu.Lock()
		order := m.order
		m.mu.Unlock()
		for _, lc := range order {
			select {
			case inner := <-lc.sendq:
				env, err := m.enc.Encode(lc.id, inner)
				if err != nil {
					m.fail(err)
					return
				}
				if _, err := m.bw.Write(env); err != nil {
					m.fail(err)
					return
				}
				wrote = true
			default:
			}
		}
		if wrote {
			continue // another fair pass while queues are non-empty
		}
		if err := m.bw.Flush(); err != nil {
			m.fail(err)
			return
		}
		select {
		case <-m.notify:
		case <-m.done:
			return
		}
	}
}

// kick pokes the writer after an enqueue.
func (m *Mux) kick() {
	select {
	case m.notify <- struct{}{}:
	default:
	}
}

// readLoop dispatches responses to their streams by ID. Unknown streams
// are counted and dropped; a response beyond a stream's credit window is a
// protocol violation, also dropped. Any read failure fails the whole mux.
func (m *Mux) readLoop(br *bufio.Reader) {
	defer m.wg.Done()
	tr := transport.NewReaderFromBufio(br)
	for {
		fr, err := tr.Next()
		if err != nil {
			m.fail(err)
			return
		}
		t, payload, derr := decodeInner(fr.Inner)
		if derr != nil {
			m.fail(derr)
			return
		}
		m.mu.Lock()
		lc := m.streams[fr.Stream]
		m.mu.Unlock()
		if lc == nil {
			m.unknown.Add(1)
			continue
		}
		select {
		case lc.resp <- muxResp{t: t, payload: payload}:
		default:
			m.unknown.Add(1)
		}
	}
}

// ID is the logical client's stream ID on the shared connection.
func (lc *LogicalClient) ID() int64 { return lc.id }

// CoveredFrom reports the first cycle number whose index covers the most
// recently submitted query, as acked by the server.
func (lc *LogicalClient) CoveredFrom() int64 { return int64(lc.coveredFrom) }

// Close detaches the logical client from its mux; later responses for its
// stream are dropped as unknown. The shared connection stays up.
func (lc *LogicalClient) Close() {
	if lc.closed {
		return
	}
	lc.closed = true
	m := lc.mux
	m.mu.Lock()
	delete(m.streams, lc.id)
	for i, o := range m.order {
		if o == lc {
			m.order = append(append([]*LogicalClient(nil), m.order[:i]...), m.order[i+1:]...)
			break
		}
	}
	m.mu.Unlock()
}

// Submit sends one query under this stream's ID and waits for its ack,
// spending one flow-control credit for the round trip. Mirrors
// Client.Submit's semantics (including RejectedError on admission refusal).
func (lc *LogicalClient) Submit(q xpath.Path) error {
	m := lc.mux
	// One credit per in-flight frame: when the window is exhausted the
	// submit waits for an earlier response to return a token.
	select {
	case <-lc.tokens:
	case <-m.done:
		return lc.muxDead()
	case <-m.clock.After(m.ackTimeout):
		return fmt.Errorf("netcast: submit: stream %d credit window exhausted", lc.id)
	}
	inner, err := appendFrame(nil, FrameQuery, []byte(q.String()))
	if err != nil {
		lc.tokens <- struct{}{}
		return fmt.Errorf("netcast: submit: %w", err)
	}
	select {
	case lc.sendq <- inner:
	case <-m.done:
		lc.tokens <- struct{}{}
		return lc.muxDead()
	}
	m.kick()
	select {
	case r := <-lc.resp:
		lc.tokens <- struct{}{}
		covered, _, _, err := parseSubmitAck(r.t, r.payload)
		if err != nil {
			return err
		}
		lc.coveredFrom = covered
		return nil
	case <-m.done:
		return lc.muxDead()
	case <-m.clock.After(m.ackTimeout):
		// The response may still arrive later; the credit stays spent so
		// the window keeps bounding what is truly in flight.
		return fmt.Errorf("netcast: submit: stream %d ack timeout", lc.id)
	}
}

// SubmitRetry submits q, waiting out admission-control rejections with the
// server's retry-after hint (clamped and jittered from this logical
// client's own rand source) until admitted, a non-overload error occurs,
// or the context expires.
func (lc *LogicalClient) SubmitRetry(ctx context.Context, q xpath.Path) error {
	for {
		err := lc.Submit(q)
		var rej *RejectedError
		if !errors.As(err, &rej) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-lc.mux.clock.After(backoffJitter(lc.rng, rej.RetryAfter)):
		}
	}
}

// muxDead names the mux's fatal error for a failed logical-client call.
func (lc *LogicalClient) muxDead() error {
	lc.mux.mu.Lock()
	err := lc.mux.failErr
	lc.mux.mu.Unlock()
	if err == nil {
		err = errors.New("netcast: mux closed")
	}
	return fmt.Errorf("netcast: submit: %w", err)
}
