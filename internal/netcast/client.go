package netcast

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/succinct"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// RejectedError reports a query refused by the server's admission control
// (FrameReject): the uplink is healthy and the query was valid, the server
// is just shedding load. It matches errors.Is(err, engine.ErrOverload), so
// callers distinguish overload from network failure and back off instead of
// redialing.
type RejectedError struct {
	// RetryAfter is the server's hint for when to retry.
	RetryAfter time.Duration
	// Reason is the server's human-readable explanation.
	Reason string
}

// Error implements error.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("netcast: server rejected query: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Is reports overload identity so errors.Is(err, engine.ErrOverload) works.
func (e *RejectedError) Is(target error) bool { return target == engine.ErrOverload }

// ClientStats accounts one retrieval, mirroring the simulator's metrics on
// the real byte stream.
type ClientStats struct {
	// TuningBytes counts bytes the client actually downloaded: index
	// segments, second tiers and matching documents.
	TuningBytes int64
	// DozeBytes counts broadcast bytes the client slept through (frames it
	// skipped without reading their payloads into the protocol), plus bytes
	// discarded while rescanning for a frame boundary after corruption.
	DozeBytes int64
	// Cycles is the number of cycle heads observed.
	Cycles int
	// Resyncs counts mid-stream recoveries: a corrupt, truncated or
	// undecodable frame made the client drop its cycle state and rescan the
	// byte stream for the next cycle head.
	Resyncs int
	// Reconnects counts broadcast connections re-established after the
	// downlink dropped mid-retrieval.
	Reconnects int
	// Resubmits counts queries re-registered over the uplink after a resync
	// or reconnect; ResubmitDropped counts queries evicted oldest-first from
	// the bounded resubmit queue during a long outage. Resumed counts
	// queries the session-resume handshake re-attached without a resubmit.
	// All three are client-lifetime totals, not per-retrieval deltas.
	Resubmits, ResubmitDropped, Resumed int64
}

// Reconnect backoff bounds: the delay starts at reconnectBaseDelay, doubles
// per failed dial up to reconnectMaxDelay, and each wait adds up to 50%
// random jitter so a fleet of clients dropped together doesn't redial in
// lockstep.
const (
	reconnectBaseDelay = 25 * time.Millisecond
	reconnectMaxDelay  = 2 * time.Second
)

// downlinkBufSize sizes the broadcast-side read buffer (also the window the
// resync scanner works within).
const downlinkBufSize = 64 << 10

// resubmitQueueCap bounds the queries waiting for re-registration while the
// uplink is down. During a long outage every resync/reconnect attempt wants
// to re-register; without a bound the queue would grow with outage length.
// Oldest entries are dropped first — they are the most likely to have been
// served (or re-enqueued again) by the time the uplink returns.
const resubmitQueueCap = 32

// defaultAckTimeout bounds Submit's wait for the server's ack.
const defaultAckTimeout = 10 * time.Second

// idleResubmitTimeout bounds how long a retrieval waits on a silent
// downlink before treating the stream as lost. An on-demand server airs
// nothing when its pending set is empty, so a client whose request was
// retired while it was desynchronised (the server sent the documents; the
// channel ate them) would otherwise block forever on a healthy-but-silent
// connection — no frames means no corruption to resync on. The rolling
// deadline turns that silence into the normal reconnect path, whose
// re-registration makes the server air the documents again.
const idleResubmitTimeout = 3 * time.Second

// armIdle sets conn's read deadline idleResubmitTimeout from now, clamped
// to the retrieval context's own deadline. Re-armed before every frame
// read, so it fires only on a genuinely silent stream, not a slow cycle.
func armIdle(ctx context.Context, conn net.Conn) {
	dl := time.Now().Add(idleResubmitTimeout)
	if d, ok := ctx.Deadline(); ok && d.Before(dl) {
		dl = d
	}
	_ = conn.SetReadDeadline(dl)
}

// Client is a mobile client: an uplink connection for submissions and a
// downlink subscription to the broadcast stream. A Client is not safe for
// concurrent use.
type Client struct {
	model core.SizeModel
	up    net.Conn
	down  net.Conn
	dl    *frameSource // buffered downlink; recreated on reconnect

	upAddr, downAddr string // redial targets for recovery

	// chans holds the per-channel downlink streams of a multichannel client
	// (DialChannels); nil on a classic single-stream client. chans[0] is the
	// index channel.
	chans []*chanStream

	// AckTimeout bounds how long Submit waits for the server's ack before
	// failing instead of hanging on a stalled server. Zero disables the
	// deadline. Dial sets it to 10 s.
	AckTimeout time.Duration

	// Clock supplies the waits between admission-control retries
	// (SubmitRetry and resubmit backoff). Nil selects the wall clock;
	// tests inject control.Fake so backoff runs deterministically without
	// wall-clock sleeps.
	Clock control.Clock

	// coveredFrom is the first cycle number whose index covers the last
	// submitted query (from the server's ack); earlier cycles' indexes are
	// slept through during Retrieve.
	coveredFrom uint32

	// session tracks acked submissions (durable request IDs) for the
	// session-resume handshake; resumeCapable is set once an ack carries a
	// request ID, gating resume frames to servers that understand them.
	session       *ClientSession
	resumeCapable bool

	// resubq queues queries whose re-registration failed while the uplink
	// was down, bounded at resubmitQueueCap with drop-oldest. The counters
	// surface through ClientStats.
	resubq     []xpath.Path
	resubmits  int64
	resubDrops int64
	resumedCnt int64

	// rng seeds this client's backoff jitter. Each client (and each
	// logical client behind a mux) owns its source: the shared global
	// would race under -race when thousands of logical clients back off
	// concurrently, and per-client streams keep jitter independent.
	rng *rand.Rand
}

// newClientRand returns a per-client jitter source, seeded from the global
// generator (the only use of the shared source, and a synchronised one).
func newClientRand() *rand.Rand {
	return rand.New(rand.NewPCG(rand.Uint64(), rand.Uint64()))
}

// jitter returns this client's backoff jitter source, created on first use
// so zero-value and test-constructed clients work.
func (c *Client) jitter() *rand.Rand {
	if c.rng == nil {
		c.rng = newClientRand()
	}
	return c.rng
}

// SessionEntry is one acked submission in a resumable session.
type SessionEntry struct {
	// ID is the server-assigned durable request ID from the ack.
	ID int64
	// Query is the canonical query string.
	Query string
}

// ClientSession is the client-side state of a resumable uplink session: the
// request IDs the server acked, plus the server identity from the last
// resume handshake. Extract it with Session before discarding a client and
// hand it to a new client (dialed at the restarted server's addresses) with
// AdoptSession to resume where the old session stopped.
type ClientSession struct {
	// Epoch and Generation are the server's journal lineage and restart
	// generation from the last FrameResumeAck; zero before any resume.
	Epoch      uint64
	Generation uint32
	// Entries holds acked submissions in submission order, newest last.
	Entries []SessionEntry
}

// clone deep-copies the session.
func (s *ClientSession) clone() *ClientSession {
	if s == nil {
		return nil
	}
	out := *s
	out.Entries = append([]SessionEntry(nil), s.Entries...)
	return &out
}

// ResumeStatus is one query's disposition from a session-resume handshake.
type ResumeStatus struct {
	// ID and Query identify the presented request.
	ID    int64
	Query string
	// Status is the server's disposition: ResumeResumed, ResumeServed or
	// ResumeResubmit.
	Status byte
	// Detail is the covering cycle (resumed) or retiring cycle (served).
	Detail int64
	// NewID is the replacement request ID when Resume resubmitted the query
	// (Status == ResumeResubmit and the resubmission was acked); zero
	// otherwise.
	NewID int64
}

// Dial connects to a server's uplink and broadcast addresses.
func Dial(uplinkAddr, broadcastAddr string, model core.SizeModel) (*Client, error) {
	if model == (core.SizeModel{}) {
		model = core.DefaultSizeModel()
	}
	up, err := net.DialTimeout("tcp", uplinkAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netcast: dial uplink: %w", err)
	}
	down, err := net.DialTimeout("tcp", broadcastAddr, 5*time.Second)
	if err != nil {
		up.Close()
		return nil, fmt.Errorf("netcast: dial broadcast: %w", err)
	}
	return &Client{
		model:      model,
		up:         up,
		down:       down,
		dl:         newFrameSource(down),
		upAddr:     uplinkAddr,
		downAddr:   broadcastAddr,
		AckTimeout: defaultAckTimeout,
	}, nil
}

// Close releases every connection.
func (c *Client) Close() {
	if c.up != nil {
		c.up.Close()
	}
	if c.down != nil {
		c.down.Close()
	}
	for _, cs := range c.chans {
		cs.conn.Close()
	}
}

// Submit sends one query over the uplink and waits for the server's ack,
// for at most AckTimeout.
func (c *Client) Submit(q xpath.Path) error {
	if err := writeFrame(c.up, FrameQuery, []byte(q.String())); err != nil {
		return fmt.Errorf("netcast: submit: %w", err)
	}
	if c.AckTimeout > 0 {
		_ = c.up.SetReadDeadline(time.Now().Add(c.AckTimeout))
		defer c.up.SetReadDeadline(time.Time{})
	}
	t, payload, err := readFrame(c.up)
	if err != nil {
		return fmt.Errorf("netcast: submit ack: %w", err)
	}
	covered, id, hasID, err := parseSubmitAck(t, payload)
	if err != nil {
		return err
	}
	if hasID {
		c.recordSession(id, q.String())
		c.resumeCapable = true
	}
	c.coveredFrom = covered
	return nil
}

// parseSubmitAck interprets one uplink response to a query submission —
// shared by Client.Submit and the multiplexed LogicalClient. hasID reports
// the durable-request-ID ack form ("ok:<covered>:<id>") from a
// journal-aware server.
func parseSubmitAck(t FrameType, payload []byte) (covered uint32, id int64, hasID bool, err error) {
	if t == FrameReject {
		retryAfter, reason, derr := decodeReject(payload)
		if derr != nil {
			return 0, 0, false, fmt.Errorf("netcast: submit ack: %w", derr)
		}
		return 0, 0, false, &RejectedError{RetryAfter: retryAfter, Reason: reason}
	}
	if t != FrameAck {
		return 0, 0, false, fmt.Errorf("netcast: unexpected ack frame type %d", t)
	}
	msg := string(payload)
	if strings.HasPrefix(msg, "err:") {
		return 0, 0, false, fmt.Errorf("netcast: server rejected query: %s", strings.TrimSpace(msg[4:]))
	}
	if rest, ok := strings.CutPrefix(msg, "ok:"); ok {
		// Two ack forms: "ok:<covered>" (legacy) and "ok:<covered>:<id>"
		// from a durability-aware server, where <id> is the journaled
		// request ID the client presents on session resume.
		cov := rest
		if i := strings.IndexByte(rest, ':'); i >= 0 {
			cov = rest[:i]
			id, err = strconv.ParseInt(rest[i+1:], 10, 64)
			if err != nil {
				return 0, 0, false, fmt.Errorf("netcast: malformed ack %q", msg)
			}
			hasID = true
		}
		n, err := strconv.ParseUint(cov, 10, 32)
		if err != nil {
			return 0, 0, false, fmt.Errorf("netcast: malformed ack %q", msg)
		}
		return uint32(n), id, hasID, nil
	}
	return 0, 0, false, fmt.Errorf("netcast: malformed ack %q", msg)
}

// recordSession remembers an acked submission for session resumption. A
// resubmitted query replaces its older entry (the old ID is either retired
// or a duplicate registration), and the entry list is bounded at
// maxResumeIDs with drop-oldest so an endless query stream cannot grow it
// without bound.
func (c *Client) recordSession(id int64, query string) {
	if c.session == nil {
		c.session = &ClientSession{}
	}
	entries := c.session.Entries
	for i := range entries {
		if entries[i].Query == query {
			entries = append(entries[:i], entries[i+1:]...)
			break
		}
	}
	entries = append(entries, SessionEntry{ID: id, Query: query})
	if len(entries) > maxResumeIDs {
		entries = append(entries[:0], entries[len(entries)-maxResumeIDs:]...)
	}
	c.session.Entries = entries
}

// Session deep-copies the client's resumable session state: the acked
// request IDs and the last seen server identity. Nil until an ack carried a
// request ID.
func (c *Client) Session() *ClientSession { return c.session.clone() }

// AdoptSession installs a session extracted from another client (typically
// one whose server restarted at new addresses), making this client
// resume-capable with that session's request IDs.
func (c *Client) AdoptSession(s *ClientSession) {
	c.session = s.clone()
	c.resumeCapable = c.session != nil && len(c.session.Entries) > 0
}

// Resume runs the session-resume handshake: it presents every acked request
// ID over the uplink and applies the server's per-query dispositions —
// still-pending queries are re-attached with no resubmit (their covering
// cycle becomes CoveredFrom), already-served ones are reported for the
// caller to eavesdrop or resubmit, and unknown ones are resubmitted through
// the normal Submit path (their session entries pick up the new IDs).
// Returns the dispositions in presentation order.
func (c *Client) Resume() ([]ResumeStatus, error) {
	if c.session == nil || len(c.session.Entries) == 0 {
		return nil, nil
	}
	entries := c.session.Entries
	ids := make([]int64, len(entries))
	byID := make(map[int64]string, len(entries))
	for i, e := range entries {
		ids[i] = e.ID
		byID[e.ID] = e.Query
	}
	payload, err := encodeResume(ids)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c.up, FrameResume, payload); err != nil {
		return nil, fmt.Errorf("netcast: resume: %w", err)
	}
	if c.AckTimeout > 0 {
		_ = c.up.SetReadDeadline(time.Now().Add(c.AckTimeout))
		defer c.up.SetReadDeadline(time.Time{})
	}
	t, ack, err := readFrame(c.up)
	if err != nil {
		return nil, fmt.Errorf("netcast: resume ack: %w", err)
	}
	if t == FrameReject {
		retryAfter, reason, derr := decodeReject(ack)
		if derr != nil {
			return nil, fmt.Errorf("netcast: resume ack: %w", derr)
		}
		return nil, &RejectedError{RetryAfter: retryAfter, Reason: reason}
	}
	if t != FrameResumeAck {
		return nil, fmt.Errorf("netcast: unexpected resume ack frame type %d", t)
	}
	epoch, generation, srv, err := decodeResumeAck(ack)
	if err != nil {
		return nil, err
	}
	// The epoch ties a session to one journal lineage. A server answering
	// from a different lineage (state directory swapped behind the same
	// address) may coincidentally hold pending requests under the presented
	// IDs; its resumed/served claims describe someone else's queries, so
	// every entry degrades to a resubmit. A zero prior epoch means the
	// session never completed a handshake and has no lineage to defend.
	if prior := c.session.Epoch; prior != 0 && epoch != prior {
		for i := range srv {
			srv[i].Status, srv[i].Detail = ResumeResubmit, 0
		}
	}
	c.session.Epoch = epoch
	c.session.Generation = generation
	out := make([]ResumeStatus, 0, len(srv))
	for _, e := range srv {
		st := ResumeStatus{ID: e.ID, Query: byID[e.ID], Status: e.Status, Detail: e.Detail}
		switch e.Status {
		case ResumeResumed:
			// Still pending server-side: no resubmit, and the server names
			// the next cycle covering it.
			c.resumedCnt++
			c.coveredFrom = uint32(e.Detail)
		case ResumeResubmit:
			// Unknown to the server (fresh state directory, lost journal or
			// past the served horizon): re-register through the normal
			// submit path, which records the replacement ID.
			if q, perr := xpath.Parse(st.Query); perr == nil {
				if serr := c.Submit(q); serr == nil {
					c.resubmits++
					if n := len(c.session.Entries); n > 0 && c.session.Entries[n-1].Query == st.Query {
						st.NewID = c.session.Entries[n-1].ID
					}
				} else {
					c.queueResubmit(q)
				}
			}
		}
		out = append(out, st)
	}
	return out, nil
}

// CoveredFrom reports the first cycle number whose index covers the most
// recently submitted query, as acked by the server. It is the network
// protocol's arrival clock: a query acked with CoveredFrom k is scheduled
// exactly as a simulator request arriving at cycle k's start time.
func (c *Client) CoveredFrom() int64 { return int64(c.coveredFrom) }

// SubmitRetry submits q, honoring the server's admission control: each
// rejection is waited out for the server's retry-after hint (clamped to the
// reconnect backoff bounds, plus up to 50% jitter so a shedding server isn't
// re-flooded in lockstep) until the query is admitted, a non-overload error
// occurs, or the context expires.
func (c *Client) SubmitRetry(ctx context.Context, q xpath.Path) error {
	for {
		err := c.Submit(q)
		var rej *RejectedError
		if !errors.As(err, &rej) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-control.Or(c.Clock).After(c.backoffWait(rej.RetryAfter)):
		}
	}
}

// backoffWait turns a server retry-after hint into a client wait: clamped to
// the reconnect backoff bounds, with up to 50% random jitter added from this
// client's own source.
func (c *Client) backoffWait(hint time.Duration) time.Duration {
	return backoffJitter(c.jitter(), hint)
}

// backoffJitter clamps hint to the reconnect backoff bounds and adds up to
// 50% jitter from rng.
func backoffJitter(rng *rand.Rand, hint time.Duration) time.Duration {
	if hint < reconnectBaseDelay {
		hint = reconnectBaseDelay
	}
	if hint > reconnectMaxDelay {
		hint = reconnectMaxDelay
	}
	return hint + time.Duration(rng.Int64N(int64(hint)/2+1))
}

// Retrieve follows the access protocol over the broadcast stream until every
// result document of q has been received, returning the parsed documents in
// ID order. The context bounds the wait.
//
// Retrieve survives an unreliable downlink. A corrupt, truncated or
// undecodable frame drops the current cycle's state and rescans the byte
// stream for the next cycle head (the protocol is self-describing; the next
// index re-covers the query). A failed read redials the broadcast address
// with capped exponential backoff plus jitter. Both recoveries preserve the
// documents already received, and both resubmit q over the uplink so the
// server rebroadcasts anything the client may have missed (the server
// retires a request once its documents have been *sent*, not received). A
// downlink silent for idleResubmitTimeout is treated as lost the same way:
// an on-demand server with an empty pending set airs nothing, so silence
// after a missed delivery must trigger re-registration, not a longer wait.
func (c *Client) Retrieve(ctx context.Context, q xpath.Path) (_ []*xmldoc.Document, stats ClientStats, _ error) {
	// The resubmit-queue and resume counters are client-lifetime totals;
	// stamp them on whatever stats this retrieval returns.
	defer func() {
		stats.Resubmits = c.resubmits
		stats.ResubmitDropped = c.resubDrops
		stats.Resumed = c.resumedCnt
	}()
	if len(c.chans) > 1 {
		return c.retrieveMulti(ctx, q)
	}
	var (
		nav       = core.NewNavigator(q)
		knowsDocs bool
		remaining = make(map[xmldoc.DocID]struct{})
		inCycle   bool // synchronised to a cycle head
		twoTier   bool
		head      *cycleHead
		wantThis  map[xmldoc.DocID]struct{} // docs to catch this cycle
		got       = make(map[xmldoc.DocID]*xmldoc.Document)
	)
	applyDeadline := func() { armIdle(ctx, c.down) }
	applyDeadline()
	defer func() { _ = c.down.SetReadDeadline(time.Time{}) }()

	// dropCycle forgets mid-cycle state after corruption or disconnect; the
	// received-document state (got/remaining) is kept.
	dropCycle := func() {
		inCycle = false
		twoTier = false
		head = nil
		wantThis = nil
	}

	// resync recovers from in-stream corruption: count it, drop cycle
	// state, re-register the query, and rescan for the next cycle head.
	// Returns an I/O error if the scan hits one (caller then reconnects).
	resync := func() error {
		stats.Resyncs++
		dropCycle()
		c.resubmit(q)
		for {
			payload, skipped, err := c.dl.resync(FrameCycleHead)
			stats.DozeBytes += skipped
			if err != nil {
				return err
			}
			h, derr := decodeCycleHead(payload)
			if derr != nil {
				// Checksum-valid but undecodable (shouldn't happen with an
				// honest server); keep scanning.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			head = h
			inCycle = true
			twoTier = h.TwoTier
			stats.Cycles++
			return nil
		}
	}

	// reconnect redials the broadcast address with capped exponential
	// backoff and jitter, then re-registers the query.
	reconnect := func() error {
		dropCycle()
		c.down.Close()
		delay := reconnectBaseDelay
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			conn, err := net.DialTimeout("tcp", c.downAddr, 5*time.Second)
			if err == nil {
				c.down = conn
				c.dl = newFrameSource(conn)
				applyDeadline()
				stats.Reconnects++
				c.resubmit(q)
				return nil
			}
			jittered := delay + time.Duration(c.jitter().Int64N(int64(delay)/2+1))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(jittered):
			}
			if delay *= 2; delay > reconnectMaxDelay {
				delay = reconnectMaxDelay
			}
		}
	}

	// recoverStream routes a failure to the right recovery: resync within
	// the stream for detected corruption, reconnect for connection loss.
	recoverStream := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if isCorrupt(err) {
			err = resync()
			if err == nil {
				return nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err := reconnect(); err != nil {
			return fmt.Errorf("netcast: broadcast reconnect: %w", err)
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		applyDeadline()
		t, payload, air, err := c.dl.next()
		stats.DozeBytes += c.dl.takeDoze()
		if err != nil {
			if err := recoverStream(err); err != nil {
				return nil, stats, err
			}
			continue
		}
		switch t {
		case FrameCycleHead:
			h, derr := decodeCycleHead(payload)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			head = h
			inCycle = true
			twoTier = head.TwoTier
			wantThis = nil
			stats.Cycles++
		case FrameIndex:
			if !inCycle {
				stats.DozeBytes += air
				continue
			}
			if twoTier && knowsDocs {
				// Improved protocol: the first tier was already read once.
				stats.DozeBytes += air
				continue
			}
			if head.Number < c.coveredFrom {
				// This cycle's index predates our submission and need not
				// cover our query; doze until a covering cycle.
				stats.DozeBytes += air
				continue
			}
			stats.TuningBytes += air
			docs, offs, derr := c.decodeAndNavigate(payload, head, nav, twoTier)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			if !knowsDocs {
				for _, d := range docs {
					if _, done := got[d]; !done {
						remaining[d] = struct{}{}
					}
				}
				knowsDocs = true
			}
			if !twoTier {
				wantThis = make(map[xmldoc.DocID]struct{})
				for d := range offs {
					if _, need := remaining[d]; need {
						wantThis[d] = struct{}{}
					}
				}
			}
		case FrameSecondTier:
			if !inCycle || !knowsDocs {
				stats.DozeBytes += air
				continue
			}
			stats.TuningBytes += air
			entries, derr := wire.DecodeSecondTier(payload, c.model)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			wantThis = make(map[xmldoc.DocID]struct{})
			for _, e := range entries {
				if _, need := remaining[e.Doc]; need {
					wantThis[e.Doc] = struct{}{}
				}
			}
		case FrameDoc:
			if len(payload) < 2 {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			id := xmldoc.DocID(binary.LittleEndian.Uint16(payload))
			if _, want := wantThis[id]; !want {
				stats.DozeBytes += air
				continue
			}
			// On the bare protocol the 2 ID bytes are header, not content;
			// a transport envelope is atomic, so its whole air cost counts.
			cost := air
			if !c.dl.isTransport() {
				cost -= 2
			}
			stats.TuningBytes += cost
			root, derr := xmldoc.Parse(bytes.NewReader(payload[2:]))
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			got[id] = xmldoc.NewDocument(id, root)
			delete(remaining, id)
			delete(wantThis, id)
		default:
			// A checksum-valid frame of unknown type means version skew or a
			// scan that locked onto the wrong boundary; resynchronise.
			if err := recoverStream(errFrameCorrupt); err != nil {
				return nil, stats, err
			}
			continue
		}
		// The retrieval is complete as soon as the remaining set drains —
		// including right after index decode when the query's result set was
		// already fully received, so a zero-remaining client returns
		// immediately instead of spinning until the context deadline.
		if knowsDocs && len(remaining) == 0 {
			return collect(got), stats, nil
		}
	}
}

// resubmit re-registers q after a resync or reconnect: the server retires a
// request once its documents have been broadcast, so anything this client
// missed is only rebroadcast if the query is pending again. Best effort —
// if the uplink died with the downlink it is redialed once; queries whose
// re-registration still fails wait in a bounded drop-oldest queue and are
// flushed by the next recovery that finds the uplink healthy.
func (c *Client) resubmit(q xpath.Path) {
	if c.up == nil {
		return // listen-only client (e.g. capture replay); nothing to re-register
	}
	c.queueResubmit(q)
	c.flushResubmits()
}

// queueResubmit enqueues q for re-registration, dropping the oldest entry
// (counted in ClientStats.ResubmitDropped) when the queue is full. A query
// already queued is not duplicated.
func (c *Client) queueResubmit(q xpath.Path) {
	key := q.String()
	for _, p := range c.resubq {
		if p.String() == key {
			return
		}
	}
	if len(c.resubq) >= resubmitQueueCap {
		drop := len(c.resubq) - resubmitQueueCap + 1
		c.resubq = append(c.resubq[:0], c.resubq[drop:]...)
		c.resubDrops += int64(drop)
	}
	c.resubq = append(c.resubq, q)
}

// flushResubmits re-registers every queued query, oldest first, stopping at
// the first failure that means the uplink is down. A rejection (admission
// control; the uplink itself is healthy) is waited out once per flush with
// the server's retry-after hint; a network failure redials the uplink once.
// Whatever cannot be submitted stays queued for the next recovery.
func (c *Client) flushResubmits() {
	redialed, backedOff := false, false
	for len(c.resubq) > 0 {
		q := c.resubq[0]
		err := c.Submit(q)
		if err == nil {
			c.resubq = c.resubq[1:]
			c.resubmits++
			continue
		}
		var rej *RejectedError
		switch {
		case errors.As(err, &rej) && !backedOff:
			// The server is shedding load: honor the retry-after hint once
			// instead of redialing (which would only add connection churn
			// to an overloaded server).
			backedOff = true
			<-control.Or(c.Clock).After(c.backoffWait(rej.RetryAfter))
		case errors.As(err, &rej):
			return // still shedding after one wait; try again next recovery
		case !redialed:
			redialed = true
			conn, derr := net.DialTimeout("tcp", c.upAddr, 5*time.Second)
			if derr != nil {
				return // uplink unreachable; the queue holds the backlog
			}
			c.up.Close()
			c.up = conn
		default:
			return // redialed and still failing
		}
	}
}

// decodeAndNavigate decodes an index segment and runs the client's query
// automaton over it, returning the result doc IDs and (one-tier) offsets.
// Under the succinct encoding the segment is navigated in place with a
// cursor — no core.Index is ever materialized client-side.
func (c *Client) decodeAndNavigate(seg []byte, head *cycleHead, nav *core.Navigator, twoTier bool) ([]xmldoc.DocID, wire.DocOffsets, error) {
	cat, err := wire.DecodeCatalog(head.Catalog)
	if err != nil {
		return nil, nil, err
	}
	if head.Succinct {
		st, err := succinct.Parse(seg, c.model, cat)
		if err != nil {
			return nil, nil, err
		}
		return st.NewCursor().Lookup(nav.Filter()), nil, nil
	}
	tier := core.OneTier
	if twoTier {
		tier = core.FirstTier
	}
	ix, offs, err := wire.DecodeIndex(seg, c.model, tier, cat)
	if err != nil {
		return nil, nil, err
	}
	if err := wire.ApplyRootLabels(ix, head.RootLabels); err != nil {
		return nil, nil, err
	}
	res := nav.Lookup(ix)
	return res.Docs, offs, nil
}

// collect returns the received documents sorted by ID.
func collect(got map[xmldoc.DocID]*xmldoc.Document) []*xmldoc.Document {
	ids := make([]int, 0, len(got))
	for id := range got {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]*xmldoc.Document, 0, len(ids))
	for _, id := range ids {
		out = append(out, got[xmldoc.DocID(id)])
	}
	return out
}
