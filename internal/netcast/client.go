package netcast

import (
	"bufio"
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// RejectedError reports a query refused by the server's admission control
// (FrameReject): the uplink is healthy and the query was valid, the server
// is just shedding load. It matches errors.Is(err, engine.ErrOverload), so
// callers distinguish overload from network failure and back off instead of
// redialing.
type RejectedError struct {
	// RetryAfter is the server's hint for when to retry.
	RetryAfter time.Duration
	// Reason is the server's human-readable explanation.
	Reason string
}

// Error implements error.
func (e *RejectedError) Error() string {
	return fmt.Sprintf("netcast: server rejected query: %s (retry after %s)", e.Reason, e.RetryAfter)
}

// Is reports overload identity so errors.Is(err, engine.ErrOverload) works.
func (e *RejectedError) Is(target error) bool { return target == engine.ErrOverload }

// ClientStats accounts one retrieval, mirroring the simulator's metrics on
// the real byte stream.
type ClientStats struct {
	// TuningBytes counts bytes the client actually downloaded: index
	// segments, second tiers and matching documents.
	TuningBytes int64
	// DozeBytes counts broadcast bytes the client slept through (frames it
	// skipped without reading their payloads into the protocol), plus bytes
	// discarded while rescanning for a frame boundary after corruption.
	DozeBytes int64
	// Cycles is the number of cycle heads observed.
	Cycles int
	// Resyncs counts mid-stream recoveries: a corrupt, truncated or
	// undecodable frame made the client drop its cycle state and rescan the
	// byte stream for the next cycle head.
	Resyncs int
	// Reconnects counts broadcast connections re-established after the
	// downlink dropped mid-retrieval.
	Reconnects int
}

// Reconnect backoff bounds: the delay starts at reconnectBaseDelay, doubles
// per failed dial up to reconnectMaxDelay, and each wait adds up to 50%
// random jitter so a fleet of clients dropped together doesn't redial in
// lockstep.
const (
	reconnectBaseDelay = 25 * time.Millisecond
	reconnectMaxDelay  = 2 * time.Second
)

// downlinkBufSize sizes the broadcast-side read buffer (also the window the
// resync scanner works within).
const downlinkBufSize = 64 << 10

// defaultAckTimeout bounds Submit's wait for the server's ack.
const defaultAckTimeout = 10 * time.Second

// Client is a mobile client: an uplink connection for submissions and a
// downlink subscription to the broadcast stream. A Client is not safe for
// concurrent use.
type Client struct {
	model core.SizeModel
	up    net.Conn
	down  net.Conn
	br    *bufio.Reader // buffered downlink; recreated on reconnect

	upAddr, downAddr string // redial targets for recovery

	// chans holds the per-channel downlink streams of a multichannel client
	// (DialChannels); nil on a classic single-stream client. chans[0] is the
	// index channel.
	chans []*chanStream

	// AckTimeout bounds how long Submit waits for the server's ack before
	// failing instead of hanging on a stalled server. Zero disables the
	// deadline. Dial sets it to 10 s.
	AckTimeout time.Duration

	// Clock supplies the waits between admission-control retries
	// (SubmitRetry and resubmit backoff). Nil selects the wall clock;
	// tests inject control.Fake so backoff runs deterministically without
	// wall-clock sleeps.
	Clock control.Clock

	// coveredFrom is the first cycle number whose index covers the last
	// submitted query (from the server's ack); earlier cycles' indexes are
	// slept through during Retrieve.
	coveredFrom uint32
}

// Dial connects to a server's uplink and broadcast addresses.
func Dial(uplinkAddr, broadcastAddr string, model core.SizeModel) (*Client, error) {
	if model == (core.SizeModel{}) {
		model = core.DefaultSizeModel()
	}
	up, err := net.DialTimeout("tcp", uplinkAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netcast: dial uplink: %w", err)
	}
	down, err := net.DialTimeout("tcp", broadcastAddr, 5*time.Second)
	if err != nil {
		up.Close()
		return nil, fmt.Errorf("netcast: dial broadcast: %w", err)
	}
	return &Client{
		model:      model,
		up:         up,
		down:       down,
		br:         bufio.NewReaderSize(down, downlinkBufSize),
		upAddr:     uplinkAddr,
		downAddr:   broadcastAddr,
		AckTimeout: defaultAckTimeout,
	}, nil
}

// Close releases every connection.
func (c *Client) Close() {
	if c.up != nil {
		c.up.Close()
	}
	if c.down != nil {
		c.down.Close()
	}
	for _, cs := range c.chans {
		cs.conn.Close()
	}
}

// Submit sends one query over the uplink and waits for the server's ack,
// for at most AckTimeout.
func (c *Client) Submit(q xpath.Path) error {
	if err := writeFrame(c.up, FrameQuery, []byte(q.String())); err != nil {
		return fmt.Errorf("netcast: submit: %w", err)
	}
	if c.AckTimeout > 0 {
		_ = c.up.SetReadDeadline(time.Now().Add(c.AckTimeout))
		defer c.up.SetReadDeadline(time.Time{})
	}
	t, payload, err := readFrame(c.up)
	if err != nil {
		return fmt.Errorf("netcast: submit ack: %w", err)
	}
	if t == FrameReject {
		retryAfter, reason, derr := decodeReject(payload)
		if derr != nil {
			return fmt.Errorf("netcast: submit ack: %w", derr)
		}
		return &RejectedError{RetryAfter: retryAfter, Reason: reason}
	}
	if t != FrameAck {
		return fmt.Errorf("netcast: unexpected ack frame type %d", t)
	}
	msg := string(payload)
	if strings.HasPrefix(msg, "err:") {
		return fmt.Errorf("netcast: server rejected query: %s", strings.TrimSpace(msg[4:]))
	}
	if rest, ok := strings.CutPrefix(msg, "ok:"); ok {
		n, err := strconv.ParseUint(rest, 10, 32)
		if err != nil {
			return fmt.Errorf("netcast: malformed ack %q", msg)
		}
		c.coveredFrom = uint32(n)
		return nil
	}
	return fmt.Errorf("netcast: malformed ack %q", msg)
}

// CoveredFrom reports the first cycle number whose index covers the most
// recently submitted query, as acked by the server. It is the network
// protocol's arrival clock: a query acked with CoveredFrom k is scheduled
// exactly as a simulator request arriving at cycle k's start time.
func (c *Client) CoveredFrom() int64 { return int64(c.coveredFrom) }

// SubmitRetry submits q, honoring the server's admission control: each
// rejection is waited out for the server's retry-after hint (clamped to the
// reconnect backoff bounds, plus up to 50% jitter so a shedding server isn't
// re-flooded in lockstep) until the query is admitted, a non-overload error
// occurs, or the context expires.
func (c *Client) SubmitRetry(ctx context.Context, q xpath.Path) error {
	for {
		err := c.Submit(q)
		var rej *RejectedError
		if !errors.As(err, &rej) {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-control.Or(c.Clock).After(backoffWait(rej.RetryAfter)):
		}
	}
}

// backoffWait turns a server retry-after hint into a client wait: clamped to
// the reconnect backoff bounds, with up to 50% random jitter added.
func backoffWait(hint time.Duration) time.Duration {
	if hint < reconnectBaseDelay {
		hint = reconnectBaseDelay
	}
	if hint > reconnectMaxDelay {
		hint = reconnectMaxDelay
	}
	return hint + time.Duration(rand.Int64N(int64(hint)/2+1))
}

// Retrieve follows the access protocol over the broadcast stream until every
// result document of q has been received, returning the parsed documents in
// ID order. The context bounds the wait.
//
// Retrieve survives an unreliable downlink. A corrupt, truncated or
// undecodable frame drops the current cycle's state and rescans the byte
// stream for the next cycle head (the protocol is self-describing; the next
// index re-covers the query). A failed read redials the broadcast address
// with capped exponential backoff plus jitter. Both recoveries preserve the
// documents already received, and both resubmit q over the uplink so the
// server rebroadcasts anything the client may have missed (the server
// retires a request once its documents have been *sent*, not received).
func (c *Client) Retrieve(ctx context.Context, q xpath.Path) ([]*xmldoc.Document, ClientStats, error) {
	if len(c.chans) > 1 {
		return c.retrieveMulti(ctx, q)
	}
	var (
		stats     ClientStats
		nav       = core.NewNavigator(q)
		knowsDocs bool
		remaining = make(map[xmldoc.DocID]struct{})
		inCycle   bool // synchronised to a cycle head
		twoTier   bool
		head      *cycleHead
		wantThis  map[xmldoc.DocID]struct{} // docs to catch this cycle
		got       = make(map[xmldoc.DocID]*xmldoc.Document)
	)
	applyDeadline := func() {
		if deadline, ok := ctx.Deadline(); ok {
			_ = c.down.SetReadDeadline(deadline)
		}
	}
	applyDeadline()
	defer func() { _ = c.down.SetReadDeadline(time.Time{}) }()

	// dropCycle forgets mid-cycle state after corruption or disconnect; the
	// received-document state (got/remaining) is kept.
	dropCycle := func() {
		inCycle = false
		twoTier = false
		head = nil
		wantThis = nil
	}

	// resync recovers from in-stream corruption: count it, drop cycle
	// state, re-register the query, and rescan for the next cycle head.
	// Returns an I/O error if the scan hits one (caller then reconnects).
	resync := func() error {
		stats.Resyncs++
		dropCycle()
		c.resubmit(q)
		for {
			payload, skipped, err := resyncFrame(c.br, FrameCycleHead)
			stats.DozeBytes += skipped
			if err != nil {
				return err
			}
			h, derr := decodeCycleHead(payload)
			if derr != nil {
				// Checksum-valid but undecodable (shouldn't happen with an
				// honest server); keep scanning.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			head = h
			inCycle = true
			twoTier = h.TwoTier
			stats.Cycles++
			return nil
		}
	}

	// reconnect redials the broadcast address with capped exponential
	// backoff and jitter, then re-registers the query.
	reconnect := func() error {
		dropCycle()
		c.down.Close()
		delay := reconnectBaseDelay
		for {
			if err := ctx.Err(); err != nil {
				return err
			}
			conn, err := net.DialTimeout("tcp", c.downAddr, 5*time.Second)
			if err == nil {
				c.down = conn
				c.br = bufio.NewReaderSize(conn, downlinkBufSize)
				applyDeadline()
				stats.Reconnects++
				c.resubmit(q)
				return nil
			}
			jittered := delay + time.Duration(rand.Int64N(int64(delay)/2+1))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(jittered):
			}
			if delay *= 2; delay > reconnectMaxDelay {
				delay = reconnectMaxDelay
			}
		}
	}

	// recoverStream routes a failure to the right recovery: resync within
	// the stream for detected corruption, reconnect for connection loss.
	recoverStream := func(err error) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if isCorrupt(err) {
			err = resync()
			if err == nil {
				return nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
		}
		if err := reconnect(); err != nil {
			return fmt.Errorf("netcast: broadcast reconnect: %w", err)
		}
		return nil
	}

	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		t, payload, err := readFrame(c.br)
		if err != nil {
			if err := recoverStream(err); err != nil {
				return nil, stats, err
			}
			continue
		}
		switch t {
		case FrameCycleHead:
			h, derr := decodeCycleHead(payload)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			head = h
			inCycle = true
			twoTier = head.TwoTier
			wantThis = nil
			stats.Cycles++
		case FrameIndex:
			if !inCycle {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			if twoTier && knowsDocs {
				// Improved protocol: the first tier was already read once.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			if head.Number < c.coveredFrom {
				// This cycle's index predates our submission and need not
				// cover our query; doze until a covering cycle.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload))
			docs, offs, derr := c.decodeAndNavigate(payload, head, nav, twoTier)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			if !knowsDocs {
				for _, d := range docs {
					if _, done := got[d]; !done {
						remaining[d] = struct{}{}
					}
				}
				knowsDocs = true
			}
			if !twoTier {
				wantThis = make(map[xmldoc.DocID]struct{})
				for d := range offs {
					if _, need := remaining[d]; need {
						wantThis[d] = struct{}{}
					}
				}
			}
		case FrameSecondTier:
			if !inCycle || !knowsDocs {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload))
			entries, derr := wire.DecodeSecondTier(payload, c.model)
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			wantThis = make(map[xmldoc.DocID]struct{})
			for _, e := range entries {
				if _, need := remaining[e.Doc]; need {
					wantThis[e.Doc] = struct{}{}
				}
			}
		case FrameDoc:
			if len(payload) < 2 {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			id := xmldoc.DocID(binary.LittleEndian.Uint16(payload))
			if _, want := wantThis[id]; !want {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload) - 2)
			root, derr := xmldoc.Parse(bytes.NewReader(payload[2:]))
			if derr != nil {
				if err := recoverStream(errFrameCorrupt); err != nil {
					return nil, stats, err
				}
				continue
			}
			got[id] = xmldoc.NewDocument(id, root)
			delete(remaining, id)
			delete(wantThis, id)
		default:
			// A checksum-valid frame of unknown type means version skew or a
			// scan that locked onto the wrong boundary; resynchronise.
			if err := recoverStream(errFrameCorrupt); err != nil {
				return nil, stats, err
			}
			continue
		}
		// The retrieval is complete as soon as the remaining set drains —
		// including right after index decode when the query's result set was
		// already fully received, so a zero-remaining client returns
		// immediately instead of spinning until the context deadline.
		if knowsDocs && len(remaining) == 0 {
			return collect(got), stats, nil
		}
	}
}

// resubmit re-registers q after a resync or reconnect: the server retires a
// request once its documents have been broadcast, so anything this client
// missed is only rebroadcast if the query is pending again. Best effort —
// if the uplink died with the downlink it is redialed once; a still-failing
// uplink is left for the next recovery to retry.
func (c *Client) resubmit(q xpath.Path) {
	if c.up == nil {
		return // listen-only client (e.g. capture replay); nothing to re-register
	}
	err := c.Submit(q)
	if err == nil {
		return
	}
	// A rejection means the uplink is healthy and the server is shedding
	// load: honor the retry-after hint once instead of redialing (which
	// would only add connection churn to an overloaded server).
	var rej *RejectedError
	if errors.As(err, &rej) {
		<-control.Or(c.Clock).After(backoffWait(rej.RetryAfter))
		_ = c.Submit(q)
		return
	}
	conn, err := net.DialTimeout("tcp", c.upAddr, 5*time.Second)
	if err != nil {
		return
	}
	c.up.Close()
	c.up = conn
	_ = c.Submit(q)
}

// decodeAndNavigate decodes an index segment and runs the client's query
// automaton over it, returning the result doc IDs and (one-tier) offsets.
func (c *Client) decodeAndNavigate(seg []byte, head *cycleHead, nav *core.Navigator, twoTier bool) ([]xmldoc.DocID, wire.DocOffsets, error) {
	cat, err := wire.DecodeCatalog(head.Catalog)
	if err != nil {
		return nil, nil, err
	}
	tier := core.OneTier
	if twoTier {
		tier = core.FirstTier
	}
	ix, offs, err := wire.DecodeIndex(seg, c.model, tier, cat)
	if err != nil {
		return nil, nil, err
	}
	if err := wire.ApplyRootLabels(ix, head.RootLabels); err != nil {
		return nil, nil, err
	}
	res := nav.Lookup(ix)
	return res.Docs, offs, nil
}

// collect returns the received documents sorted by ID.
func collect(got map[xmldoc.DocID]*xmldoc.Document) []*xmldoc.Document {
	ids := make([]int, 0, len(got))
	for id := range got {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]*xmldoc.Document, 0, len(ids))
	for _, id := range ids {
		out = append(out, got[xmldoc.DocID(id)])
	}
	return out
}
