package netcast

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// ClientStats accounts one retrieval, mirroring the simulator's metrics on
// the real byte stream.
type ClientStats struct {
	// TuningBytes counts bytes the client actually downloaded: index
	// segments, second tiers and matching documents.
	TuningBytes int64
	// DozeBytes counts broadcast bytes the client slept through (frames it
	// skipped without reading their payloads into the protocol).
	DozeBytes int64
	// Cycles is the number of cycle heads observed.
	Cycles int
}

// Client is a mobile client: an uplink connection for submissions and a
// downlink subscription to the broadcast stream.
type Client struct {
	model core.SizeModel
	up    net.Conn
	down  net.Conn
	// coveredFrom is the first cycle number whose index covers the last
	// submitted query (from the server's ack); earlier cycles' indexes are
	// slept through during Retrieve.
	coveredFrom uint32
}

// Dial connects to a server's uplink and broadcast addresses.
func Dial(uplinkAddr, broadcastAddr string, model core.SizeModel) (*Client, error) {
	if model == (core.SizeModel{}) {
		model = core.DefaultSizeModel()
	}
	up, err := net.DialTimeout("tcp", uplinkAddr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("netcast: dial uplink: %w", err)
	}
	down, err := net.DialTimeout("tcp", broadcastAddr, 5*time.Second)
	if err != nil {
		up.Close()
		return nil, fmt.Errorf("netcast: dial broadcast: %w", err)
	}
	return &Client{model: model, up: up, down: down}, nil
}

// Close releases both connections.
func (c *Client) Close() {
	c.up.Close()
	c.down.Close()
}

// Submit sends one query over the uplink and waits for the server's ack.
func (c *Client) Submit(q xpath.Path) error {
	if err := writeFrame(c.up, FrameQuery, []byte(q.String())); err != nil {
		return fmt.Errorf("netcast: submit: %w", err)
	}
	t, payload, err := readFrame(c.up)
	if err != nil {
		return fmt.Errorf("netcast: submit ack: %w", err)
	}
	if t != FrameAck {
		return fmt.Errorf("netcast: unexpected ack frame type %d", t)
	}
	msg := string(payload)
	if strings.HasPrefix(msg, "err:") {
		return fmt.Errorf("netcast: server rejected query: %s", strings.TrimSpace(msg[4:]))
	}
	if rest, ok := strings.CutPrefix(msg, "ok:"); ok {
		n, err := strconv.ParseUint(rest, 10, 32)
		if err != nil {
			return fmt.Errorf("netcast: malformed ack %q", msg)
		}
		c.coveredFrom = uint32(n)
		return nil
	}
	return fmt.Errorf("netcast: malformed ack %q", msg)
}

// Retrieve follows the access protocol over the broadcast stream until every
// result document of q has been received, returning the parsed documents in
// ID order. The context bounds the wait.
func (c *Client) Retrieve(ctx context.Context, q xpath.Path) ([]*xmldoc.Document, ClientStats, error) {
	var (
		stats     ClientStats
		nav       = core.NewNavigator(q)
		knowsDocs bool
		remaining = make(map[xmldoc.DocID]struct{})
		inCycle   bool // synchronised to a cycle head
		twoTier   bool
		head      *cycleHead
		wantThis  map[xmldoc.DocID]struct{} // docs to catch this cycle
		got       = make(map[xmldoc.DocID]*xmldoc.Document)
	)
	if deadline, ok := ctx.Deadline(); ok {
		_ = c.down.SetReadDeadline(deadline)
		defer c.down.SetReadDeadline(time.Time{})
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, stats, err
		}
		t, payload, err := readFrame(c.down)
		if err != nil {
			return nil, stats, fmt.Errorf("netcast: broadcast read: %w", err)
		}
		switch t {
		case FrameCycleHead:
			head, err = decodeCycleHead(payload)
			if err != nil {
				return nil, stats, err
			}
			inCycle = true
			twoTier = head.TwoTier
			wantThis = nil
			stats.Cycles++
		case FrameIndex:
			if !inCycle {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			if twoTier && knowsDocs {
				// Improved protocol: the first tier was already read once.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			if head.Number < c.coveredFrom {
				// This cycle's index predates our submission and need not
				// cover our query; doze until a covering cycle.
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload))
			docs, offs, err := c.decodeAndNavigate(payload, head, nav, twoTier)
			if err != nil {
				return nil, stats, err
			}
			if !knowsDocs {
				for _, d := range docs {
					if _, done := got[d]; !done {
						remaining[d] = struct{}{}
					}
				}
				knowsDocs = true
			}
			if !twoTier {
				wantThis = make(map[xmldoc.DocID]struct{})
				for d := range offs {
					if _, need := remaining[d]; need {
						wantThis[d] = struct{}{}
					}
				}
			}
		case FrameSecondTier:
			if !inCycle || !knowsDocs {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload))
			entries, err := wire.DecodeSecondTier(payload, c.model)
			if err != nil {
				return nil, stats, err
			}
			wantThis = make(map[xmldoc.DocID]struct{})
			for _, e := range entries {
				if _, need := remaining[e.Doc]; need {
					wantThis[e.Doc] = struct{}{}
				}
			}
		case FrameDoc:
			if len(payload) < 2 {
				return nil, stats, fmt.Errorf("netcast: short doc frame")
			}
			id := xmldoc.DocID(binary.LittleEndian.Uint16(payload))
			if _, want := wantThis[id]; !want {
				stats.DozeBytes += int64(len(payload))
				continue
			}
			stats.TuningBytes += int64(len(payload) - 2)
			root, err := xmldoc.Parse(bytes.NewReader(payload[2:]))
			if err != nil {
				return nil, stats, fmt.Errorf("netcast: doc %d: %w", id, err)
			}
			got[id] = xmldoc.NewDocument(id, root)
			delete(remaining, id)
			delete(wantThis, id)
			if knowsDocs && len(remaining) == 0 {
				return collect(got), stats, nil
			}
		default:
			return nil, stats, fmt.Errorf("netcast: unexpected frame type %d", t)
		}
	}
}

// decodeAndNavigate decodes an index segment and runs the client's query
// automaton over it, returning the result doc IDs and (one-tier) offsets.
func (c *Client) decodeAndNavigate(seg []byte, head *cycleHead, nav *core.Navigator, twoTier bool) ([]xmldoc.DocID, wire.DocOffsets, error) {
	cat, err := wire.DecodeCatalog(head.Catalog)
	if err != nil {
		return nil, nil, err
	}
	tier := core.OneTier
	if twoTier {
		tier = core.FirstTier
	}
	ix, offs, err := wire.DecodeIndex(seg, c.model, tier, cat)
	if err != nil {
		return nil, nil, err
	}
	if err := wire.ApplyRootLabels(ix, head.RootLabels); err != nil {
		return nil, nil, err
	}
	res := nav.Lookup(ix)
	return res.Docs, offs, nil
}

// collect returns the received documents sorted by ID.
func collect(got map[xmldoc.DocID]*xmldoc.Document) []*xmldoc.Document {
	ids := make([]int, 0, len(got))
	for id := range got {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	out := make([]*xmldoc.Document, 0, len(ids))
	for _, id := range ids {
		out = append(out, got[xmldoc.DocID(id)])
	}
	return out
}
