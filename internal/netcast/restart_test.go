package netcast

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/netcast/chaos"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// startJournaledServer starts a server on stateDir with the given cycle
// interval and channel count. The caller owns the shutdown (tests restart
// servers mid-test, so no t.Cleanup here).
func startJournaledServer(t *testing.T, coll *xmldoc.Collection, stateDir string, interval time.Duration, channels int) *Server {
	t.Helper()
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		Channels:      channels,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: interval,
		StateDir:      stateDir,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	return srv
}

// retrieveIDs runs one retrieval and returns the document IDs.
func retrieveIDs(t *testing.T, cl *Client, q xpath.Path) []xmldoc.DocID {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve %s: %v", q, err)
	}
	ids := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	return ids
}

// TestServerRestartResumePending kills a journaled server before any cycle
// airs and restarts it on the same state directory: every acked submission
// is recovered, the session-resume handshake re-attaches it without a
// resubmit, and the restarted server broadcasts the full result sets.
func TestServerRestartResumePending(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	// A one-minute interval guarantees nothing airs before the kill: the
	// pending set exists only in the journal when the server dies.
	srv := startJournaledServer(t, coll, dir, time.Minute, 1)
	if srv.Generation() != 1 {
		t.Fatalf("fresh state dir generation = %d, want 1", srv.Generation())
	}
	epoch := srv.Epoch()

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	queries := []xpath.Path{
		xpath.MustParse("/nitf/body/body.content/block"),
		xpath.MustParse("/nitf/head/title"),
		xpath.MustParse("/nitf//p"),
	}
	for _, q := range queries {
		if err := cl.Submit(q); err != nil {
			t.Fatalf("Submit %s: %v", q, err)
		}
	}
	session := cl.Session()
	cl.Close()
	if session == nil || len(session.Entries) != len(queries) {
		t.Fatalf("session = %+v, want %d entries", session, len(queries))
	}

	srv.Kill()

	// The restarted server's first cycle fires one interval after start:
	// 250ms leaves room to dial, resume and start listening before the
	// recovered requests begin airing (once one request's documents air
	// and retire it, a client not yet listening would wait forever).
	srv2 := startJournaledServer(t, coll, dir, 250*time.Millisecond, 1)
	defer srv2.Shutdown()
	if srv2.Epoch() != epoch {
		t.Fatalf("restart changed epoch: %d != %d", srv2.Epoch(), epoch)
	}
	if srv2.Generation() != 2 {
		t.Fatalf("restart generation = %d, want 2", srv2.Generation())
	}
	if srv2.RecoveredPending() != len(queries) {
		t.Fatalf("recovered %d pending, want %d", srv2.RecoveredPending(), len(queries))
	}
	st := srv2.Stats()
	if st.Epoch != epoch || st.Generation != 2 || st.RecoveredPending != len(queries) {
		t.Fatalf("stats = %+v", st)
	}

	cl2, err := Dial(srv2.UplinkAddr(), srv2.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial restarted: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(statuses) != len(queries) {
		t.Fatalf("%d resume statuses, want %d", len(statuses), len(queries))
	}
	for _, rs := range statuses {
		if rs.Status != ResumeResumed {
			t.Errorf("request %d (%s) status = %d, want resumed", rs.ID, rs.Query, rs.Status)
		}
	}
	if got := cl2.Session(); got.Epoch != epoch || got.Generation != 2 {
		t.Errorf("session identity = %d/%d, want %d/2", got.Epoch, got.Generation, epoch)
	}
	// All three recovered requests air on the same cycles, so the
	// retrievals must listen concurrently: the resumed client takes one
	// query, fresh listen-only dials take the others.
	clients := []*Client{cl2}
	for range queries[1:] {
		cl, err := Dial(srv2.UplinkAddr(), srv2.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("Dial listener: %v", err)
		}
		defer cl.Close()
		clients = append(clients, cl)
	}
	type result struct {
		q   xpath.Path
		ids []xmldoc.DocID
		err error
	}
	results := make(chan result, len(queries))
	for i, q := range queries {
		go func(cl *Client, q xpath.Path) {
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			docs, _, err := cl.Retrieve(ctx, q)
			r := result{q: q, err: err}
			for _, d := range docs {
				r.ids = append(r.ids, d.ID)
			}
			results <- r
		}(clients[i], q)
	}
	for range queries {
		r := <-results
		if r.err != nil {
			t.Errorf("Retrieve %s: %v", r.q, r.err)
			continue
		}
		if want := r.q.MatchingDocs(coll); !reflect.DeepEqual(r.ids, want) {
			t.Errorf("%s: retrieved %v, want %v", r.q, r.ids, want)
		}
	}
}

// TestServerRestartAlreadyServed restarts a server whose request was fully
// served and gracefully shut down: the resume handshake reports the request
// as served (with its retiring cycle) instead of pending, and the client's
// lifetime Resumed counter stays untouched.
func TestServerRestartAlreadyServed(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	srv := startJournaledServer(t, coll, dir, 5*time.Millisecond, 1)

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	q := xpath.MustParse("/nitf/head/title")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if ids := retrieveIDs(t, cl, q); len(ids) == 0 {
		t.Fatalf("retrieved nothing")
	}
	// The server retires the request when its documents have been sent;
	// wait for the covering cycle's journal commit before shutting down.
	deadline := time.Now().Add(5 * time.Second)
	for srv.Pending() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("request still pending after retrieval")
		}
		time.Sleep(2 * time.Millisecond)
	}
	session := cl.Session()
	cl.Close()
	srv.Shutdown()

	srv2 := startJournaledServer(t, coll, dir, 5*time.Millisecond, 1)
	defer srv2.Shutdown()
	if srv2.RecoveredPending() != 0 {
		t.Fatalf("recovered %d pending, want 0", srv2.RecoveredPending())
	}
	cl2, err := Dial(srv2.UplinkAddr(), srv2.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial restarted: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(statuses) != 1 || statuses[0].Status != ResumeServed {
		t.Fatalf("statuses = %+v, want one served", statuses)
	}
	if statuses[0].Detail < 0 {
		t.Errorf("served detail (retiring cycle) = %d", statuses[0].Detail)
	}
}

// TestServerRestartFreshDirResubmit resumes against a server with a fresh
// state directory (the journal lineage is gone): the handshake reports
// resubmit, the query is re-registered under a new ID, and the retrieval
// still completes.
func TestServerRestartFreshDirResubmit(t *testing.T) {
	coll := testCollection(t)
	srv := startJournaledServer(t, coll, t.TempDir(), time.Minute, 1)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	q := xpath.MustParse("/nitf/body/body.content/block")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	session := cl.Session()
	oldID := session.Entries[0].ID
	cl.Close()
	srv.Kill()

	// Different directory: a server that lost its disk.
	srv2 := startJournaledServer(t, coll, t.TempDir(), 5*time.Millisecond, 1)
	defer srv2.Shutdown()
	cl2, err := Dial(srv2.UplinkAddr(), srv2.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(statuses) != 1 || statuses[0].Status != ResumeResubmit {
		t.Fatalf("statuses = %+v, want one resubmit", statuses)
	}
	if statuses[0].NewID == 0 || statuses[0].NewID == oldID && srv2.Epoch() == srv.Epoch() {
		t.Errorf("resubmit did not register a replacement ID: %+v", statuses[0])
	}
	want := q.MatchingDocs(coll)
	if got := retrieveIDs(t, cl2, q); !reflect.DeepEqual(got, want) {
		t.Errorf("retrieved %v, want %v", got, want)
	}
}

// TestServerRestartMultichannel restarts a K=4 server with recovered pending
// state: the resumed client's CoveredFrom follows the handshake and the
// multichannel retrieval completes — the striped cycle commitments are
// honored by the restarted process.
func TestServerRestartMultichannel(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	srv := startJournaledServer(t, coll, dir, time.Minute, 4)
	cl, err := DialChannels(srv.UplinkAddr(), srv.ChannelAddrs(), core.SizeModel{})
	if err != nil {
		t.Fatalf("DialChannels: %v", err)
	}
	q := xpath.MustParse("/nitf/body/body.content/block")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	session := cl.Session()
	cl.Close()
	srv.Kill()

	// 250ms first-cycle delay: resume and start listening before the
	// recovered request airs (and retires).
	srv2 := startJournaledServer(t, coll, dir, 250*time.Millisecond, 4)
	defer srv2.Shutdown()
	if srv2.RecoveredPending() != 1 {
		t.Fatalf("recovered %d pending, want 1", srv2.RecoveredPending())
	}
	cl2, err := DialChannels(srv2.UplinkAddr(), srv2.ChannelAddrs(), core.SizeModel{})
	if err != nil {
		t.Fatalf("DialChannels restarted: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if len(statuses) != 1 || statuses[0].Status != ResumeResumed {
		t.Fatalf("statuses = %+v, want one resumed", statuses)
	}
	if cl2.CoveredFrom() != statuses[0].Detail {
		t.Errorf("CoveredFrom = %d, want handshake detail %d", cl2.CoveredFrom(), statuses[0].Detail)
	}
	want := q.MatchingDocs(coll)
	if got := retrieveIDs(t, cl2, q); !reflect.DeepEqual(got, want) {
		t.Errorf("retrieved %v, want %v", got, want)
	}
}

// TestServerCrashMidPipeline wires a chaos.Crasher probe to Server.Crash: the
// process "dies" at a deterministic pipeline stage with clients connected,
// and a restart on the same directory recovers every acked request.
func TestServerCrashMidPipeline(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	fired := make(chan struct{})
	crasher := chaos.NewCrasher(11, 3, func() { close(fired) })
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		StateDir:      dir,
		Probe:         crasher,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	go func() {
		<-fired
		srv.Crash()
	}()

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	// Submit until the crash point is reached (the pipeline only runs while
	// requests are pending); acked submissions are durable by then.
	acked := make(map[int64]string)
	queries := []string{"/nitf/head/title", "/nitf//p", "/nitf/body/body.content/block"}
	deadline := time.Now().Add(10 * time.Second)
loop:
	for i := 0; ; i++ {
		select {
		case <-fired:
			break loop
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("crash point never reached (stage %q at %d)", crasher.Stage(), crasher.At())
		}
		q := xpath.MustParse(queries[i%len(queries)])
		if err := cl.Submit(q); err == nil {
			n := len(cl.Session().Entries)
			e := cl.Session().Entries[n-1]
			acked[e.ID] = e.Query
		}
		time.Sleep(2 * time.Millisecond)
	}
	session := cl.Session()
	cl.Close()
	srv.Kill() // waits for the async teardown Crash started
	if len(acked) == 0 {
		t.Fatalf("no submission was acked before the crash")
	}

	srv2 := startJournaledServer(t, coll, dir, 5*time.Millisecond, 1)
	defer srv2.Shutdown()
	cl2, err := Dial(srv2.UplinkAddr(), srv2.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial restarted: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	for _, st := range statuses {
		if st.Status == ResumeResubmit {
			t.Errorf("acked request %d (%s) lost across crash", st.ID, st.Query)
		}
	}
}

// TestShutdownFlushesJournal proves the graceful-shutdown durability
// guarantee: every submission acked before Shutdown returns is in the
// journal afterwards, closed with a clean (untorn) final snapshot.
func TestShutdownFlushesJournal(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	srv := startJournaledServer(t, coll, dir, time.Minute, 1)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	queries := []xpath.Path{
		xpath.MustParse("/nitf/head/title"),
		xpath.MustParse("/nitf//p"),
	}
	for _, q := range queries {
		if err := cl.Submit(q); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	session := cl.Session()
	cl.Close()
	srv.Shutdown()

	jn, st, err := journal.Open(journal.Options{Dir: dir})
	if err != nil {
		t.Fatalf("journal.Open after shutdown: %v", err)
	}
	defer jn.Close()
	if st.Truncated {
		t.Errorf("graceful shutdown left a torn journal tail")
	}
	if len(st.Pending) != len(queries) {
		t.Fatalf("journal holds %d pending, want %d", len(st.Pending), len(queries))
	}
	for i, e := range session.Entries {
		if st.Pending[i].ID != e.ID || st.Pending[i].Query != e.Query {
			t.Errorf("journal entry %d = %d/%q, acked %d/%q",
				i, st.Pending[i].ID, st.Pending[i].Query, e.ID, e.Query)
		}
	}
}

// TestCrashRecoverySoak is the kill/recover loop the CI crash-chaos step
// runs under -race: repeated submit → kill (sometimes with a torn journal
// tail) → restart → resume rounds, asserting after every round that no acked
// request was lost, and finishing with full retrievals.
func TestCrashRecoverySoak(t *testing.T) {
	coll := testCollection(t)
	dir := t.TempDir()
	queries := []string{"/nitf/head/title", "/nitf//p", "/nitf/body/body.content/block"}
	var session *ClientSession
	var epoch uint64
	const rounds = 4
	for round := 0; round < rounds; round++ {
		srv := startJournaledServer(t, coll, dir, 3*time.Millisecond, 1)
		if epoch == 0 {
			epoch = srv.Epoch()
		} else if srv.Epoch() != epoch {
			t.Fatalf("round %d: epoch drifted %d -> %d", round, epoch, srv.Epoch())
		}
		if got := srv.Generation(); got != uint32(round+1) {
			t.Fatalf("round %d: generation = %d, want %d", round, got, round+1)
		}
		cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("round %d: Dial: %v", round, err)
		}
		if session != nil {
			cl.AdoptSession(session)
			statuses, err := cl.Resume()
			if err != nil {
				t.Fatalf("round %d: Resume: %v", round, err)
			}
			for _, st := range statuses {
				if st.Status == ResumeResubmit {
					t.Errorf("round %d: acked request %d (%s) lost", round, st.ID, st.Query)
				}
			}
		}
		q := xpath.MustParse(queries[round%len(queries)])
		if err := cl.Submit(q); err != nil {
			t.Fatalf("round %d: Submit: %v", round, err)
		}
		if round == rounds-1 {
			// Final round: the survivor drains its retrieval cleanly.
			want := q.MatchingDocs(coll)
			if got := retrieveIDs(t, cl, q); !reflect.DeepEqual(got, want) {
				t.Errorf("final retrieval %v, want %v", got, want)
			}
			cl.Close()
			srv.Shutdown()
			break
		}
		// Let a couple of cycles air so some rounds kill mid-service, then
		// crash — every other round with a torn journal tail.
		time.Sleep(10 * time.Millisecond)
		if round%2 == 1 {
			srv.CrashJournalAfter(64)
			// Poke the journal so the torn write lands before the kill.
			_ = cl.Submit(xpath.MustParse("/nitf/head/title"))
		}
		session = cl.Session()
		cl.Close()
		srv.Kill()
	}
}

// TestResumeFrameRoundTrip exercises the protocol-v3 session-resume frame
// codecs, including their defensive limits.
func TestResumeFrameRoundTrip(t *testing.T) {
	ids := []int64{1, 7, 1 << 40, 9999}
	payload, err := encodeResume(ids)
	if err != nil {
		t.Fatalf("encodeResume: %v", err)
	}
	got, err := decodeResume(payload)
	if err != nil {
		t.Fatalf("decodeResume: %v", err)
	}
	if !reflect.DeepEqual(got, ids) {
		t.Errorf("resume round trip = %v, want %v", got, ids)
	}
	if empty, err := decodeResume([]byte{0, 0}); err != nil || len(empty) != 0 {
		t.Errorf("empty resume = %v, %v", empty, err)
	}
	if _, err := encodeResume(make([]int64, maxResumeIDs+1)); err == nil {
		t.Errorf("encodeResume accepted %d IDs", maxResumeIDs+1)
	}
	if _, err := decodeResume(payload[:len(payload)-3]); err == nil {
		t.Errorf("decodeResume accepted a truncated payload")
	}
	if _, err := decodeResume([]byte{5}); err == nil {
		t.Errorf("decodeResume accepted a headerless payload")
	}

	entries := []resumeEntry{
		{ID: 3, Status: ResumeResumed, Detail: 41},
		{ID: 9, Status: ResumeServed, Detail: 12},
		{ID: 44, Status: ResumeResubmit, Detail: 0},
	}
	ack, err := encodeResumeAck(0xFEEDFACE, 7, entries)
	if err != nil {
		t.Fatalf("encodeResumeAck: %v", err)
	}
	epoch, gen, dec, err := decodeResumeAck(ack)
	if err != nil {
		t.Fatalf("decodeResumeAck: %v", err)
	}
	if epoch != 0xFEEDFACE || gen != 7 || !reflect.DeepEqual(dec, entries) {
		t.Errorf("ack round trip = %x/%d/%v", epoch, gen, dec)
	}
	if _, err := encodeResumeAck(1, 1, make([]resumeEntry, maxResumeIDs+1)); err == nil {
		t.Errorf("encodeResumeAck accepted %d entries", maxResumeIDs+1)
	}
	if _, _, _, err := decodeResumeAck(ack[:len(ack)-1]); err == nil {
		t.Errorf("decodeResumeAck accepted a truncated payload")
	}
	if _, _, _, err := decodeResumeAck(ack[:10]); err == nil {
		t.Errorf("decodeResumeAck accepted a headerless payload")
	}
	bad := append([]byte(nil), ack...)
	bad[14+8] = ResumeResubmit + 1 // first entry's status byte
	if _, _, _, err := decodeResumeAck(bad); err == nil {
		t.Errorf("decodeResumeAck accepted an invalid status byte")
	}
}

// TestResubmitQueueBounded is the regression test for the unbounded client
// resubmit queue: the queue holds at most resubmitQueueCap distinct queries,
// drops oldest-first, counts the drops, and deduplicates re-queues.
func TestResubmitQueueBounded(t *testing.T) {
	c := &Client{}
	const extra = 5
	queries := make([]xpath.Path, resubmitQueueCap+extra)
	for i := range queries {
		queries[i] = xpath.MustParse(fmt.Sprintf("/nitf/head/q%d", i))
		c.queueResubmit(queries[i])
	}
	if len(c.resubq) != resubmitQueueCap {
		t.Fatalf("queue holds %d queries, want cap %d", len(c.resubq), resubmitQueueCap)
	}
	if c.resubDrops != extra {
		t.Errorf("dropped %d queries, want %d", c.resubDrops, extra)
	}
	// The oldest entries were dropped: the queue starts at queries[extra].
	if c.resubq[0].String() != queries[extra].String() {
		t.Errorf("queue head = %s, want %s (drop-oldest)", c.resubq[0], queries[extra])
	}
	// Re-queueing a query already in the queue neither grows it nor drops.
	c.queueResubmit(queries[len(queries)-1])
	if len(c.resubq) != resubmitQueueCap || c.resubDrops != extra {
		t.Errorf("duplicate re-queue changed state: len=%d drops=%d", len(c.resubq), c.resubDrops)
	}
}

// TestResumeEpochMismatch: a session carries the epoch of the journal
// lineage that acked it. Presented to a server on a *different* lineage —
// whose journal may coincidentally hold a pending request under the same
// ID — every entry must degrade to a resubmit: the other lineage's
// "resumed" claim describes someone else's query.
func TestResumeEpochMismatch(t *testing.T) {
	coll := testCollection(t)
	q := xpath.MustParse("/nitf/head/title")

	// Lineage A: submit, then resume once so the session learns A's epoch.
	srvA := startJournaledServer(t, coll, t.TempDir(), time.Minute, 1)
	clA, err := Dial(srvA.UplinkAddr(), srvA.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial A: %v", err)
	}
	if err := clA.Submit(q); err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	if _, err := clA.Resume(); err != nil {
		t.Fatalf("Resume A: %v", err)
	}
	session := clA.Session()
	clA.Close()
	srvA.Kill()
	if session.Epoch == 0 || session.Epoch != srvA.Epoch() {
		t.Fatalf("session epoch = %d, want lineage A's %d", session.Epoch, srvA.Epoch())
	}

	// Lineage B: an unrelated journaled server whose journal holds a pending
	// request under the same durable ID (first admission on a fresh journal).
	srvB := startJournaledServer(t, coll, t.TempDir(), time.Minute, 1)
	defer srvB.Shutdown()
	clB, err := Dial(srvB.UplinkAddr(), srvB.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial B: %v", err)
	}
	if err := clB.Submit(xpath.MustParse("/nitf//p")); err != nil {
		t.Fatalf("Submit B: %v", err)
	}
	clB.Close()

	// Without the epoch check, B would answer "resumed" for A's ID — it has
	// a pending request under that ID — silently adopting the wrong query.
	cl2, err := Dial(srvB.UplinkAddr(), srvB.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial B 2: %v", err)
	}
	defer cl2.Close()
	cl2.AdoptSession(session)
	statuses, err := cl2.Resume()
	if err != nil {
		t.Fatalf("Resume against B: %v", err)
	}
	if len(statuses) != 1 {
		t.Fatalf("got %d statuses, want 1", len(statuses))
	}
	if statuses[0].Status != ResumeResubmit {
		t.Fatalf("cross-lineage resume status = %d, want ResumeResubmit", statuses[0].Status)
	}
	if got := cl2.Session(); got.Epoch != srvB.Epoch() {
		t.Errorf("session did not adopt lineage B's epoch: %d != %d", got.Epoch, srvB.Epoch())
	}
	if cl2.resubmits != 1 {
		t.Errorf("resubmits = %d, want 1 (the forced cross-lineage resubmit)", cl2.resubmits)
	}
}
