package netcast

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netcast/chaos"
	"repro/internal/xpath"
)

// TestSubmitRejectedByPendingCap pins the typed overload path: a submission
// over MaxPending comes back as a RejectedError matching engine.ErrOverload
// (not a generic ack error), the connection survives the rejection, and
// SubmitRetry is admitted once the cycle retires the blocking request.
func TestSubmitRejectedByPendingCap(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: coll.TotalSize(), // one cycle retires any request
		CycleInterval: 300 * time.Millisecond,
		Limits:        engine.Limits{MaxPending: 1},
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	q := xpath.MustParse("/nitf/head/title")
	clA, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial A: %v", err)
	}
	defer clA.Close()
	clB, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial B: %v", err)
	}
	defer clB.Close()

	if err := clA.Submit(q); err != nil {
		t.Fatalf("Submit A: %v", err)
	}
	err = clB.Submit(xpath.MustParse("/nitf//p"))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("Submit B over the cap: err = %v, want *RejectedError", err)
	}
	if !errors.Is(err, engine.ErrOverload) {
		t.Error("RejectedError does not match engine.ErrOverload")
	}
	if rej.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %s, want a positive hint", rej.RetryAfter)
	}
	if st := srv.Stats(); st.RejectedPending == 0 {
		t.Errorf("stats = %+v, want RejectedPending > 0", st)
	}

	// The same uplink connection stays usable, and the retry loop is
	// admitted once the broadcast retires A's request.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := clB.SubmitRetry(ctx, xpath.MustParse("/nitf//p")); err != nil {
		t.Fatalf("SubmitRetry B: %v", err)
	}
}

func TestUplinkRateLimit(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: coll.TotalSize(),
		CycleInterval: 5 * time.Millisecond,
		UplinkRate:    1, // 1 query/s, burst 2: the third rapid submit must bounce
		UplinkBurst:   2,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/head/title")
	var rejected *RejectedError
	for i := 0; i < 3; i++ {
		err := cl.Submit(q)
		if errors.As(err, &rejected) {
			break
		}
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
	}
	if rejected == nil {
		t.Fatal("3 rapid submissions against burst 2 were all admitted")
	}
	if rejected.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %s, want a positive hint", rejected.RetryAfter)
	}
	if st := srv.Stats(); st.RejectedRate == 0 {
		t.Errorf("stats = %+v, want RejectedRate > 0", st)
	}
}

// TestDegradedCycleStillServes pins graceful degradation end to end: with an
// impossible build budget every cycle falls back to the unpruned CI, and an
// unmodified client still decodes the broadcast and retrieves byte-correct
// results.
func TestDegradedCycleStillServes(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		Limits:        engine.Limits{BuildBudget: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/body/body.content/block")
	want := q.MatchingDocs(coll)
	if len(want) == 0 {
		t.Fatal("test query matches nothing")
	}
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve over degraded cycles: %v", err)
	}
	if len(docs) != len(want) {
		t.Fatalf("retrieved %d docs, want %d", len(docs), len(want))
	}
	for i, d := range docs {
		if d.ID != want[i] {
			t.Fatalf("doc %d: ID %d, want %d", i, d.ID, want[i])
		}
		if !bytes.Equal(d.Marshal(), coll.ByID(want[i]).Marshal()) {
			t.Errorf("doc %d bytes differ from the source document", d.ID)
		}
	}
	if st := srv.Stats(); st.Engine.DegradedCycles == 0 {
		t.Errorf("engine metrics = %+v, want DegradedCycles > 0", st.Engine)
	}
}

// TestOverloadFlood is the chaos acceptance test: a multi-worker flood of
// submissions (valid, duplicate and junk queries) drives sustained
// rejections while the bounded caches hold the heap inside a fixed envelope,
// and a concurrent legitimate client still retrieves byte-correct results.
func TestOverloadFlood(t *testing.T) {
	if testing.Short() {
		t.Skip("flood test takes ~2s")
	}
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		Limits: engine.Limits{
			MaxPending:            8,
			MaxAnswerCacheEntries: 16,
			MaxPayloadCacheBytes:  64 << 10,
		},
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	// The legitimate client registers before the flood starts, so its
	// request is in the pending set no matter how hard the flood hammers
	// the admission path.
	legit, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial legit: %v", err)
	}
	defer legit.Close()
	q := xpath.MustParse("/nitf/body/body.content/block")
	want := q.MatchingDocs(coll)
	if len(want) == 0 {
		t.Fatal("legit query matches nothing")
	}
	if err := legit.Submit(q); err != nil {
		t.Fatalf("Submit legit: %v", err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Four flooding workers, each on its own uplink connection, submitting
	// flat out for ~1.5 s: pool queries compete for pending slots, and
	// endless distinct junk queries churn the bounded answer cache.
	pool := []string{"/nitf/head/title", "/nitf//p", "/nitf/body/body.content/block", "/nitf/head"}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	floodClients := make([]*Client, 4)
	for i := range floodClients {
		floodClients[i], err = Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("Dial flood %d: %v", i, err)
		}
		defer floodClients[i].Close()
	}
	floodDone := make(chan chaos.FloodStats, 1)
	go func() {
		floodDone <- chaos.Flood(ctx, len(floodClients), 0,
			func(worker, seq int) error {
				cl := floodClients[worker]
				if seq%2 == 0 {
					return cl.Submit(xpath.MustParse(pool[seq/2%len(pool)]))
				}
				// Distinct never-matching queries: resolved, memoized,
				// LRU-churned — the unbounded-memory attack this PR closes.
				return cl.Submit(xpath.MustParse(fmt.Sprintf("/nitf/zzz%d_%d/x", worker, seq)))
			},
			func(err error) bool { return errors.Is(err, engine.ErrOverload) })
	}()

	// Retrieve concurrently with the flood.
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()
	docs, _, err := legit.Retrieve(rctx, q)
	if err != nil {
		t.Fatalf("Retrieve during flood: %v", err)
	}
	if len(docs) != len(want) {
		t.Fatalf("retrieved %d docs, want %d", len(docs), len(want))
	}
	for i, d := range docs {
		if d.ID != want[i] || !bytes.Equal(d.Marshal(), coll.ByID(want[i]).Marshal()) {
			t.Errorf("doc %d corrupted during flood", d.ID)
		}
	}

	flood := <-floodDone
	st := srv.Stats()
	t.Logf("flood: %+v", flood)
	t.Logf("server: rejectedPending=%d rejectedRate=%d engine{%s}", st.RejectedPending, st.RejectedRate, st.Engine)
	if flood.Rejected == 0 || st.RejectedPending == 0 {
		t.Errorf("flood drove no admission rejections: flood=%+v stats=%+v", flood, st)
	}
	if flood.Accepted == 0 {
		t.Error("flood had zero accepted submissions; the test exercised only the cheap reject path")
	}
	if st.Engine.AnswerEvictions == 0 {
		t.Error("junk queries churned no answer-cache evictions; the bound is not engaged")
	}
	if st.Pending > 8 {
		t.Errorf("pending set %d exceeds MaxPending 8", st.Pending)
	}

	// Memory envelope: with every cache bounded, a flood's worth of junk
	// must not grow the heap beyond a fixed budget.
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const envelope = 64 << 20
	if grew := int64(after.HeapInuse) - int64(before.HeapInuse); grew > envelope {
		t.Errorf("heap grew %d bytes during flood, envelope %d", grew, envelope)
	}
}
