package netcast

import (
	"bytes"
	"context"
	"io"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/netcast/chaos"
	"repro/internal/netcast/transport"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func startCompressedServer(t *testing.T, mode broadcast.Mode) (*Server, *xmldoc.Collection) {
	t.Helper()
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          mode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		Compress:      true,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	t.Cleanup(srv.Shutdown)
	return srv, coll
}

// TestCompressedEndToEndRetrieve runs the full protocol over a compressed
// downlink in both modes: the client sniffs the transport hello, inflates
// every envelope and must retrieve exactly its result set, with tuning
// accounted in compressed envelope bytes.
func TestCompressedEndToEndRetrieve(t *testing.T) {
	for _, mode := range []broadcast.Mode{broadcast.OneTierMode, broadcast.TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			srv, coll := startCompressedServer(t, mode)
			cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
			if err != nil {
				t.Fatalf("Dial: %v", err)
			}
			defer cl.Close()

			q := xpath.MustParse("/nitf/body/body.content/block")
			want := q.MatchingDocs(coll)
			if len(want) == 0 {
				t.Fatal("test query matches nothing")
			}
			if err := cl.Submit(q); err != nil {
				t.Fatalf("Submit: %v", err)
			}
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			docs, stats, err := cl.Retrieve(ctx, q)
			if err != nil {
				t.Fatalf("Retrieve: %v", err)
			}
			gotIDs := make([]xmldoc.DocID, len(docs))
			for i, d := range docs {
				gotIDs[i] = d.ID
			}
			if !reflect.DeepEqual(gotIDs, want) {
				t.Errorf("retrieved %v, want %v", gotIDs, want)
			}
			if !cl.dl.isTransport() {
				t.Error("client did not negotiate the transport layer")
			}
			if stats.TuningBytes <= 0 || stats.Cycles == 0 {
				t.Errorf("stats = %+v", stats)
			}
		})
	}
}

// TestCompressedDownlinkShrinksTuning compares the same retrieval over a
// bare and a compressed downlink: the compressed run's tuning bytes (whole
// envelopes for the frames the client keeps) must come in below the bare
// run's, because XML deflates well and the envelope overhead is a few bytes
// per frame.
func TestCompressedDownlinkShrinksTuning(t *testing.T) {
	run := func(compress bool) int64 {
		t.Helper()
		coll := testCollection(t)
		srv, err := StartServer(ServerConfig{
			Collection:    coll,
			Mode:          broadcast.TwoTierMode,
			CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
			CycleInterval: 5 * time.Millisecond,
			Compress:      compress,
		})
		if err != nil {
			t.Fatalf("StartServer: %v", err)
		}
		defer srv.Shutdown()
		cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer cl.Close()
		q := xpath.MustParse("/nitf")
		if err := cl.Submit(q); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_, stats, err := cl.Retrieve(ctx, q)
		if err != nil {
			t.Fatalf("Retrieve: %v", err)
		}
		return stats.TuningBytes
	}
	bare := run(false)
	comp := run(true)
	if comp >= bare {
		t.Errorf("compressed tuning %d B did not improve on bare %d B", comp, bare)
	}
	t.Logf("tuning bytes: bare %d compressed %d (ratio %.2f)", bare, comp, float64(comp)/float64(bare))
}

// TestCompressedRetrieveUnderChaos reruns the fault-tolerance acceptance
// test with compression negotiated: bit flips and byte drops now land on
// transport envelopes (the chaos proxy sits below the transport layer), so
// recovery exercises the transport resync path, and forced disconnects
// exercise the hello re-sniff on redial. The client must still end up with
// exactly its result set.
func TestCompressedRetrieveUnderChaos(t *testing.T) {
	coll, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 30, Seed: 77})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		Compress:      true,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()
	proxy, err := chaos.NewProxy(srv.BroadcastAddr(), chaos.Config{
		Seed:     1,
		FlipProb: 2e-4,
		DropProb: 2e-5,
	})
	if err != nil {
		t.Fatalf("NewProxy: %v", err)
	}
	defer proxy.Close()

	q := xpath.MustParse("/nitf")
	cl, err := Dial(srv.UplinkAddr(), proxy.Addr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
	defer cancel()
	done := make(chan struct{})
	var (
		docs  []*xmldoc.Document
		stats ClientStats
		rerr  error
	)
	go func() {
		defer close(done)
		docs, stats, rerr = cl.Retrieve(ctx, q)
	}()

	// Forced disconnect mid-retrieval: the client must redial and re-sniff
	// the transport hello on the fresh connection.
	deadline := time.Now().Add(30 * time.Second)
	for proxy.LiveConns() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("client never connected through the proxy")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if proxy.KillAll() == 0 {
		t.Fatal("KillAll found no live links")
	}
	<-done

	if rerr != nil {
		t.Fatalf("Retrieve: %v (stats %+v)", rerr, stats)
	}
	ids := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	if want := q.MatchingDocs(coll); !reflect.DeepEqual(ids, want) {
		t.Errorf("retrieved %v, want %v", ids, want)
	}
	if stats.Reconnects < 1 {
		t.Errorf("Reconnects = %d, want >= 1 (stats %+v)", stats.Reconnects, stats)
	}
	if stats.Resyncs < 1 {
		t.Errorf("Resyncs = %d, want >= 1 (stats %+v)", stats.Resyncs, stats)
	}
	if st := proxy.Stats(); st.BitFlips == 0 {
		t.Errorf("proxy injected too little chaos: %+v", st)
	}
}

// TestCompressOffKeepsBareWire pins the K=1 byte-identity invariant's wire
// side: with compression off the downlink opens directly with a v2 frame
// sync (no hello, no envelopes — not a single byte differs from the bare
// protocol), and with compression on it opens with the transport hello.
func TestCompressOffKeepsBareWire(t *testing.T) {
	read4 := func(srv *Server) []byte {
		t.Helper()
		// An idle server airs nothing: submit demand so cycles flow.
		cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("Dial: %v", err)
		}
		defer cl.Close()
		if err := cl.Submit(xpath.MustParse("/nitf")); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		conn, err := net.DialTimeout("tcp", srv.BroadcastAddr(), 5*time.Second)
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		defer conn.Close()
		_ = conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		buf := make([]byte, 4)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Fatalf("read: %v", err)
		}
		return buf
	}
	bare, _ := startServer(t, broadcast.TwoTierMode)
	if b := read4(bare); b[0] != frameSync0 || b[1] != frameSync1 {
		t.Errorf("bare downlink opens %x, want v2 frame sync %x %x", b, frameSync0, frameSync1)
	}
	comp, _ := startCompressedServer(t, broadcast.TwoTierMode)
	if b := read4(comp); !transport.IsHelloPrefix(b) {
		t.Errorf("compressed downlink opens %x, want transport hello", b)
	}
}

// TestRecordCompressedCapture records a compressed broadcast into a v3
// capture (transport envelopes verbatim) and reads it back: the records
// must decode to the same index and documents a live client would see.
func TestRecordCompressedCapture(t *testing.T) {
	srv, coll := startCompressedServer(t, broadcast.TwoTierMode)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var buf bytes.Buffer
	n, err := Record(ctx, srv.BroadcastAddr(), 2, &buf)
	if err != nil {
		t.Fatalf("Record: %v", err)
	}
	if n != 2 {
		t.Fatalf("recorded %d cycles, want 2", n)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte(captureMagicV3)) {
		t.Fatalf("capture magic = %q, want %q", buf.Bytes()[:8], captureMagicV3)
	}
	records, err := ReadCapture(&buf)
	if err != nil {
		t.Fatalf("ReadCapture: %v", err)
	}
	if len(records) == 0 {
		t.Fatal("no cycle records")
	}
	for i := range records {
		ix, err := records[i].DecodeIndex(core.DefaultSizeModel())
		if err != nil {
			t.Fatalf("record %d DecodeIndex: %v", i, err)
		}
		if ix.NumNodes() == 0 {
			t.Errorf("record %d decoded an empty index", i)
		}
		for j := range records[i].Docs {
			if id := records[i].DocID(j); coll.ByID(id) == nil {
				t.Errorf("record %d doc %d: unknown ID %d", i, j, id)
			}
		}
	}
}

// TestMuxEndToEnd drives several logical clients over one multiplexed
// uplink: every submit is acked on its own stream, rejections surface as
// RejectedError exactly as on a dedicated connection, and a subscriber
// retrieves a mux-submitted query's documents off the air.
func TestMuxEndToEnd(t *testing.T) {
	srv, coll := startCompressedServer(t, broadcast.TwoTierMode)
	m, err := DialMux(srv.UplinkAddr(), MuxConfig{Compress: true})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer m.Close()
	if !m.Compressed() {
		t.Error("mux did not negotiate compression against a compressing server")
	}
	if m.Credit() <= 0 {
		t.Errorf("credit = %d, want > 0", m.Credit())
	}

	q := xpath.MustParse("/nitf/body/body.content/block")
	want := q.MatchingDocs(coll)
	const n = 8
	for i := 0; i < n; i++ {
		lc, err := m.Open()
		if err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
		if err := lc.Submit(q); err != nil {
			t.Fatalf("logical client %d Submit: %v", i, err)
		}
	}

	// A separate rejected query must fail with RejectedError, not poison
	// the mux.
	bad, err := m.Open()
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := bad.Submit(xpath.MustParse("/definitely/absent")); err == nil {
		t.Error("empty-result query accepted over mux")
	}

	// The mux-submitted demand airs: an ordinary subscriber retrieves it.
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	if err := cl.Submit(q); err != nil {
		t.Fatalf("subscriber Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	ids := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	if !reflect.DeepEqual(ids, want) {
		t.Errorf("retrieved %v, want %v", ids, want)
	}
	if m.UnknownFrames() != 0 {
		t.Errorf("mux dropped %d frames as unknown", m.UnknownFrames())
	}
	if m.Err() != nil {
		t.Errorf("mux failed: %v", m.Err())
	}
}

// TestMuxTenThousandLogicalClients is the fan-in acceptance test: one TCP
// connection sustains ten thousand logical clients, each submitting its own
// query and receiving its own per-stream ack, race-clean. Workers drive
// many streams each so the test exercises concurrent submits without ten
// thousand goroutines.
func TestMuxTenThousandLogicalClients(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-stream soak skipped in -short mode")
	}
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 50 * time.Millisecond,
		Compress:      true,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	m, err := DialMux(srv.UplinkAddr(), MuxConfig{Compress: true, AckTimeout: 60 * time.Second})
	if err != nil {
		t.Fatalf("DialMux: %v", err)
	}
	defer m.Close()

	const (
		streams = 10_000
		workers = 200
	)
	clients := make([]*LogicalClient, streams)
	for i := range clients {
		if clients[i], err = m.Open(); err != nil {
			t.Fatalf("Open %d: %v", i, err)
		}
	}
	q := xpath.MustParse("/nitf")
	var (
		acked  atomic.Int64
		failed atomic.Int64
		first  atomic.Value
		wg     sync.WaitGroup
	)
	per := streams / workers
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(batch []*LogicalClient) {
			defer wg.Done()
			for _, lc := range batch {
				if err := lc.Submit(q); err != nil {
					failed.Add(1)
					first.CompareAndSwap(nil, err)
					continue
				}
				acked.Add(1)
			}
		}(clients[w*per : (w+1)*per])
	}
	wg.Wait()

	if got := acked.Load(); got != streams {
		err, _ := first.Load().(error)
		t.Fatalf("%d/%d streams acked (%d failed, first error: %v)", got, streams, failed.Load(), err)
	}
	if m.UnknownFrames() != 0 {
		t.Errorf("mux dropped %d frames as unknown", m.UnknownFrames())
	}
	if m.Err() != nil {
		t.Errorf("mux failed: %v", m.Err())
	}
}
