package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"hash/crc32"
	"io"
	"strings"
	"testing"
)

// repetitive returns n bytes of highly compressible pseudo-XML.
func repetitive(n int) []byte {
	var b bytes.Buffer
	for b.Len() < n {
		b.WriteString("<item><name>broadcast</name><value>42</value></item>")
	}
	return b.Bytes()[:n]
}

func TestRoundTripCompressed(t *testing.T) {
	inner := repetitive(4096)
	var buf bytes.Buffer
	tw := NewWriter(&buf, true, 0)
	if err := tw.WriteFrame(NoStream, inner); err != nil {
		t.Fatal(err)
	}
	if buf.Len() >= len(inner) {
		t.Fatalf("compressible frame did not shrink: %d wire vs %d inner", buf.Len(), len(inner))
	}
	st := tw.Stats()
	if st.Frames != 1 || st.Compressed != 1 {
		t.Fatalf("stats = %+v, want 1 frame 1 compressed", st)
	}
	r := NewReader(&buf)
	fr, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if !fr.Compressed {
		t.Fatal("marker bit not set on compressed frame")
	}
	if fr.Stream != NoStream {
		t.Fatalf("stream = %d, want NoStream", fr.Stream)
	}
	if !bytes.Equal(fr.Inner, inner) {
		t.Fatal("inner frame corrupted in round trip")
	}
	if fr.Wire != int(st.WireBytes) {
		t.Fatalf("Wire = %d, want %d", fr.Wire, st.WireBytes)
	}
}

func TestRoundTripRawFallback(t *testing.T) {
	// Incompressible content must ship raw via the marker bit: wire
	// overhead is the envelope only, never a deflate expansion.
	inner := make([]byte, 1<<14)
	state := uint64(0x9E3779B97F4A7C15)
	for i := range inner {
		state = state*6364136223846793005 + 1442695040888963407
		inner[i] = byte(state >> 33)
	}

	var buf bytes.Buffer
	tw := NewWriter(&buf, true, 0)
	if err := tw.WriteFrame(NoStream, inner); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > len(inner)+16 {
		t.Fatalf("incompressible frame regressed: %d wire vs %d inner", buf.Len(), len(inner))
	}
	fr, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Compressed {
		t.Fatal("marker bit set on raw-fallback frame")
	}
	if !bytes.Equal(fr.Inner, inner) {
		t.Fatal("inner frame corrupted in round trip")
	}
}

func TestCompressFloor(t *testing.T) {
	var buf bytes.Buffer
	tw := NewWriter(&buf, true, 0)
	small := repetitive(CompressFloor - 1)
	if err := tw.WriteFrame(NoStream, small); err != nil {
		t.Fatal(err)
	}
	if st := tw.Stats(); st.Compressed != 0 {
		t.Fatalf("frame below floor was compressed: %+v", st)
	}
	fr, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if fr.Compressed || !bytes.Equal(fr.Inner, small) {
		t.Fatal("sub-floor frame mangled")
	}
}

func TestStreamIDs(t *testing.T) {
	var buf bytes.Buffer
	enc := NewEncoder(false, 0)
	for _, id := range []int64{0, 1, 127, 128, 300, 1 << 40} {
		env, err := enc.Encode(id, []byte("q"))
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(env)
	}
	r := NewReader(&buf)
	for _, id := range []int64{0, 1, 127, 128, 300, 1 << 40} {
		fr, err := r.Next()
		if err != nil {
			t.Fatal(err)
		}
		if fr.Stream != id {
			t.Fatalf("stream = %d, want %d", fr.Stream, id)
		}
		if string(fr.Inner) != "q" {
			t.Fatalf("inner = %q", fr.Inner)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF at clean stream end", err)
	}
}

func TestRawIsByteFaithful(t *testing.T) {
	inner := repetitive(2048)
	var buf bytes.Buffer
	tw := NewWriter(&buf, true, 0)
	if err := tw.WriteFrame(7, inner); err != nil {
		t.Fatal(err)
	}
	wire := append([]byte(nil), buf.Bytes()...)
	fr, err := NewReader(&buf).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Raw, wire) {
		t.Fatal("Frame.Raw is not the exact wire envelope")
	}
	if fr.Wire != len(wire) {
		t.Fatalf("Wire = %d, want %d", fr.Wire, len(wire))
	}
}

func TestResyncAfterCorruption(t *testing.T) {
	enc := NewEncoder(true, 0)
	b, _ := enc.Encode(NoStream, []byte("after the gap"))

	// Noise with lone syncA bytes never followed by syncB, so the scanner
	// exercises the false-sync path before finding the real frame.
	noise := bytes.Repeat([]byte{0x11, syncA}, 50)
	var stream bytes.Buffer
	stream.Write(noise)
	stream.Write(b)

	r := NewReader(&stream)
	if _, err := r.Next(); err == nil || !IsCorrupt(err) {
		t.Fatalf("read of corrupted stream: %v, want corrupt", err)
	}
	fr, skipped, err := r.Resync()
	if err != nil {
		t.Fatal(err)
	}
	if string(fr.Inner) != "after the gap" {
		t.Fatalf("resynced to %q", fr.Inner)
	}
	// Next consumed the first two noise bytes; Resync scanned the rest.
	if want := int64(len(noise) - 2); skipped != want {
		t.Fatalf("skipped = %d, want %d", skipped, want)
	}
}

func TestResyncSkipsCorruptCandidate(t *testing.T) {
	enc := NewEncoder(false, 0)
	bad, _ := enc.Encode(NoStream, []byte("doomed"))
	bad[len(bad)-1] ^= 0xFF // break the CRC
	good, _ := enc.Encode(NoStream, []byte("survivor"))

	var stream bytes.Buffer
	stream.WriteString("xx")
	stream.Write(bad)
	stream.Write(good)

	r := NewReader(&stream)
	fr, skipped, err := r.Resync()
	if err != nil {
		t.Fatal(err)
	}
	if string(fr.Inner) != "survivor" {
		t.Fatalf("resynced to %q", fr.Inner)
	}
	if want := int64(2 + len(bad)); skipped != want {
		t.Fatalf("skipped = %d, want %d (noise + failed candidate)", skipped, want)
	}
}

func TestCorruptDeflateBody(t *testing.T) {
	enc := NewEncoder(true, 0)
	env, _ := enc.Encode(NoStream, repetitive(4096))
	// Force the first deflate block's type to the reserved value (BTYPE=11)
	// and fix up the CRC so only the deflate layer can notice.
	bodyStart := len(env) - 4 - int(mustBodyLen(env))
	env[bodyStart] |= 0x06
	binary.LittleEndian.PutUint32(env[len(env)-4:], crc32Checksum(env[2:len(env)-4]))

	_, err := NewReader(bytes.NewReader(env)).Next()
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt", err)
	}
}

func crc32Checksum(p []byte) uint32 { return crc32.Checksum(p, crcTable) }

// mustBodyLen parses the body length uvarint of a no-stream envelope.
func mustBodyLen(env []byte) uint64 {
	n, k := binary.Uvarint(env[3:])
	if k <= 0 {
		panic("bad envelope")
	}
	return n
}

func TestDeclaredLengthCap(t *testing.T) {
	var env []byte
	env = append(env, syncA, syncB, 0)
	env = binary.AppendUvarint(env, MaxInner+1)
	env = binary.LittleEndian.AppendUint32(env, crc32Checksum(env[2:]))
	_, err := NewReader(bytes.NewReader(env)).Next()
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt for oversized declared length", err)
	}
}

func TestDecompressionBombCap(t *testing.T) {
	// A tiny deflate stream inflating past MaxInner must be rejected
	// without buffering the inflation.
	var comp bytes.Buffer
	fw, _ := flate.NewWriter(&comp, flate.BestCompression)
	zeros := make([]byte, 1<<20)
	for written := 0; written <= MaxInner; written += len(zeros) {
		fw.Write(zeros)
	}
	fw.Close()
	bomb := comp.Bytes()
	if len(bomb) > MaxInner {
		t.Fatalf("bomb body itself too large: %d", len(bomb))
	}

	var env []byte
	env = append(env, syncA, syncB, flagDeflate)
	env = binary.AppendUvarint(env, uint64(len(bomb)))
	env = append(env, bomb...)
	env = binary.LittleEndian.AppendUint32(env, crc32Checksum(env[2:]))

	r := NewReader(bytes.NewReader(env))
	_, err := r.Next()
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt for decompression bomb", err)
	}
	if r.db.Len() > MaxInner+1 {
		t.Fatalf("bomb buffered %d bytes past the cap", r.db.Len())
	}
}

func TestUnknownFlagsRejected(t *testing.T) {
	var env []byte
	env = append(env, syncA, syncB, 0x80)
	env = binary.AppendUvarint(env, 1)
	env = append(env, 'x')
	env = binary.LittleEndian.AppendUint32(env, crc32Checksum(env[2:]))
	_, err := NewReader(bytes.NewReader(env)).Next()
	if err == nil || !IsCorrupt(err) {
		t.Fatalf("err = %v, want corrupt for unknown flags", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	for _, h := range []Hello{
		{},
		{Compress: true},
		{Mux: true, Credit: 32},
		{Compress: true, Mux: true, Credit: 1 << 19},
	} {
		var buf bytes.Buffer
		if err := WriteHello(&buf, h); err != nil {
			t.Fatal(err)
		}
		if !IsHelloPrefix(buf.Bytes()[:1]) || !IsHelloPrefix(buf.Bytes()[:4]) {
			t.Fatal("hello prefix not recognised")
		}
		got, err := ReadHello(bufio.NewReader(&buf))
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Fatalf("hello = %+v, want %+v", got, h)
		}
	}
}

func TestHelloRejectsLegacyAndGarbage(t *testing.T) {
	if IsHelloPrefix([]byte{0xB5, 0xCA}) || IsHelloPrefix([]byte{syncA, syncB}) {
		t.Fatal("sync bytes misread as hello")
	}
	for _, bad := range []string{
		"XBT9\x01\x00\x00",          // wrong magic
		"XBT1\x02\x00\x00",          // unsupported version
		"XBT1\x01\xF0\x00",          // unknown flags
		"XBT1\x01\x03" + "\xff\xff\xff\xff\x7f", // insane credit
	} {
		if _, err := ReadHello(bufio.NewReader(strings.NewReader(bad))); err == nil {
			t.Fatalf("hello %q accepted", bad)
		}
	}
}

func TestEncoderReuseDoesNotLeakBetweenFrames(t *testing.T) {
	// Each frame's DEFLATE stream must be independent: decoding frame N
	// must not need frames 1..N-1 (late joiners, capture replay).
	enc := NewEncoder(true, 0)
	var first []byte
	var envs [][]byte
	for i := 0; i < 5; i++ {
		inner := repetitive(2000 + i)
		if i == 0 {
			first = append([]byte(nil), inner...)
		}
		env, err := enc.Encode(NoStream, inner)
		if err != nil {
			t.Fatal(err)
		}
		envs = append(envs, env)
	}
	// Decode frame 0 alone with a fresh reader.
	fr, err := NewReader(bytes.NewReader(envs[0])).Next()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fr.Inner, first) {
		t.Fatal("frame 0 not independently decodable")
	}
	// Decode frame 4 alone, too.
	if _, err := NewReader(bytes.NewReader(envs[4])).Next(); err != nil {
		t.Fatal(err)
	}
}
