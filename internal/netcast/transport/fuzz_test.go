package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"io"
	"testing"
)

// FuzzTransportDecode throws arbitrary bytes at the transport decoder —
// truncated deflate streams, oversized declared lengths, mangled stream
// IDs, random garbage — asserting it never panics, never returns an inner
// frame past the decompression-bomb cap, and classifies every failure as
// either corruption or end-of-stream.
func FuzzTransportDecode(f *testing.F) {
	// Well-formed seeds: raw, compressed, and mux-stamped frames.
	enc := NewEncoder(true, 0)
	if env, err := enc.Encode(NoStream, bytes.Repeat([]byte("<x/>"), 200)); err == nil {
		f.Add(env)
	}
	if env, err := enc.Encode(12345, []byte("tiny")); err == nil {
		f.Add(env)
	}
	var h bytes.Buffer
	WriteHello(&h, Hello{Compress: true, Mux: true, Credit: 64})
	f.Add(h.Bytes())

	// A truncated deflate stream inside an otherwise valid envelope.
	var comp bytes.Buffer
	fw, _ := flate.NewWriter(&comp, flate.DefaultCompression)
	fw.Write(bytes.Repeat([]byte("abcd"), 500))
	fw.Close()
	trunc := comp.Bytes()[:comp.Len()/2]
	var env []byte
	env = append(env, syncA, syncB, flagDeflate)
	env = binary.AppendUvarint(env, uint64(len(trunc)))
	env = append(env, trunc...)
	env = binary.LittleEndian.AppendUint32(env, crc32Checksum(env[2:]))
	f.Add(env)

	// An oversized declared length.
	var over []byte
	over = append(over, syncA, syncB, byte(flagStream))
	over = binary.AppendUvarint(over, 7)
	over = binary.AppendUvarint(over, uint64(MaxInner)*4)
	f.Add(over)

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for i := 0; i < 64; i++ {
			fr, err := r.Next()
			if err != nil {
				if err == io.EOF || err == io.ErrUnexpectedEOF || IsCorrupt(err) {
					if IsCorrupt(err) {
						// A corrupt stream must still support resync
						// without panicking.
						if _, _, rerr := r.Resync(); rerr == nil {
							continue
						}
					}
					return
				}
				t.Fatalf("unclassified decode error: %v", err)
			}
			if len(fr.Inner) > MaxInner {
				t.Fatalf("inner frame of %d bytes escaped the bomb cap", len(fr.Inner))
			}
			if fr.Wire <= 0 || fr.Wire != len(fr.Raw) {
				t.Fatalf("wire accounting broken: Wire=%d len(Raw)=%d", fr.Wire, len(fr.Raw))
			}
		}
	})
}
