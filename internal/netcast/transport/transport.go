// Package transport is the layered stream stack under the v2/v3 frame
// protocol, modeled on syncthing's BEP layering (TCP → per-message-boundary
// DEFLATE → protocol). A transport frame wraps one complete inner protocol
// frame:
//
//	sync(2) | flags(1) | [uvarint stream] | uvarint len | body | CRC32C(4)
//
// The flags byte is the per-frame compression marker: bit 0 set means the
// body is a raw DEFLATE (RFC 1951) stream whose inflation is the inner
// frame, clear means the body is the inner frame verbatim — so frames below
// the compression floor, and frames deflate fails to shrink, ship raw and
// incompressible payloads never regress. Bit 1 marks a multiplexed frame
// carrying a logical-stream ID (uplink only). The trailing CRC32C covers
// flags through body, and the sync pair (distinct from the inner protocol's)
// lets a receiver that lost framing rescan for the next transport boundary.
//
// Every frame's DEFLATE stream is independent — no shared dictionary across
// frames — so a broadcast server compresses each frame once and fans the
// identical bytes out to every subscriber regardless of join time, and a
// corrupted frame never poisons the decode of later ones. The encoder is
// reused per connection (flate.Writer.Reset), so steady-state compression
// allocates nothing.
//
// Negotiation happens at hello: the initiating side writes a Hello naming
// the features it wants, the accepting side replies with the intersection it
// grants (plus the per-stream flow-control credit for mux). The hello magic
// shares no prefix with the inner protocol's sync bytes, so an accepting
// side peeks one conservative prefix and serves legacy peers unchanged —
// with compression off, not a single byte differs from the bare protocol.
package transport

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Transport frame sync bytes; deliberately distinct from the inner
// protocol's 0xB5 0xCA pair so the two framings cannot be confused while
// rescanning a corrupted stream.
const (
	syncA = 0xD6
	syncB = 0x9A
)

// Per-frame flag bits. Unknown bits are rejected, which keeps the resync
// scanner from locking onto garbage.
const (
	flagDeflate = 0x01 // body is an independent DEFLATE stream
	flagStream  = 0x02 // a uvarint logical-stream ID precedes the length
)

// MaxInner bounds the inner frame a transport frame may carry, both as a
// declared-length sanity check and as the decompression-bomb cap: inflation
// is cut off at MaxInner+1 bytes and the frame rejected as corrupt. The
// bound is the inner protocol's 16 MiB payload ceiling plus its own framing.
const MaxInner = 16<<20 + 64

// CompressFloor is the default size floor below which frames are sent raw:
// tiny frames (acks, channel heads) cost more to deflate than they save.
const CompressFloor = 128

// NoStream encodes a frame with no logical-stream ID (the broadcast
// downlink, where the stream is shared by construction).
const NoStream int64 = -1

// crcTable is the CRC32C (Castagnoli) table, matching the inner protocol's
// checksum choice.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks a transport frame rejected for bad sync, flags, length,
// checksum, or an undecodable/oversized DEFLATE body — as opposed to
// connection-level I/O errors. Corruption is recoverable by Resync; I/O
// errors require a reconnect.
var ErrCorrupt = errors.New("transport: corrupt frame")

// IsCorrupt reports whether err is detected corruption rather than a
// connection failure.
func IsCorrupt(err error) bool { return errors.Is(err, ErrCorrupt) }

// Hello is the negotiation exchanged before the first transport frame:
//
//	'X' 'B' 'T' '1' | version(1) | flags(1) | uvarint credit
//
// The initiator's hello proposes features; the acceptor's reply grants the
// intersection and, when mux is granted, the per-stream flow-control credit
// (how many frames a logical stream may have in flight unanswered).
type Hello struct {
	// Compress requests (or grants) per-frame DEFLATE.
	Compress bool
	// Mux requests (or grants) logical-stream multiplexing.
	Mux bool
	// Credit is the per-stream flow-control window granted by an acceptor;
	// zero in an initiator's hello.
	Credit uint32
}

// helloMagic opens a hello. The first byte shares no value with either
// sync pair, so one peeked prefix distinguishes hello / legacy / frame.
const helloMagic = "XBT1"

const helloVersion = 1

// Hello flag bits.
const (
	helloCompress = 0x01
	helloMux      = 0x02
)

// IsHelloPrefix reports whether a peeked prefix (at least one byte) opens a
// transport hello rather than a legacy protocol frame.
func IsHelloPrefix(p []byte) bool {
	if len(p) == 0 {
		return false
	}
	n := len(p)
	if n > len(helloMagic) {
		n = len(helloMagic)
	}
	return string(p[:n]) == helloMagic[:n]
}

// WriteHello serialises h to w.
func WriteHello(w io.Writer, h Hello) error {
	var flags byte
	if h.Compress {
		flags |= helloCompress
	}
	if h.Mux {
		flags |= helloMux
	}
	buf := make([]byte, 0, len(helloMagic)+2+binary.MaxVarintLen32)
	buf = append(buf, helloMagic...)
	buf = append(buf, helloVersion, flags)
	buf = binary.AppendUvarint(buf, uint64(h.Credit))
	_, err := w.Write(buf)
	return err
}

// ReadHello parses a hello off br.
func ReadHello(br *bufio.Reader) (Hello, error) {
	var hdr [len(helloMagic) + 2]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return Hello{}, err
	}
	if string(hdr[:len(helloMagic)]) != helloMagic {
		return Hello{}, fmt.Errorf("transport: bad hello magic %q", hdr[:len(helloMagic)])
	}
	if hdr[len(helloMagic)] != helloVersion {
		return Hello{}, fmt.Errorf("transport: hello version %d unsupported", hdr[len(helloMagic)])
	}
	flags := hdr[len(helloMagic)+1]
	if flags&^(helloCompress|helloMux) != 0 {
		return Hello{}, fmt.Errorf("transport: hello flags %#02x unknown", flags)
	}
	credit, err := binary.ReadUvarint(br)
	if err != nil {
		return Hello{}, err
	}
	if credit > 1<<20 {
		return Hello{}, fmt.Errorf("transport: hello credit %d insane", credit)
	}
	return Hello{
		Compress: flags&helloCompress != 0,
		Mux:      flags&helloMux != 0,
		Credit:   uint32(credit),
	}, nil
}

// EncoderStats accounts an encoder's work for benchmarks and telemetry.
// Counters are not synchronised; an Encoder serves one goroutine.
type EncoderStats struct {
	// Frames counts encoded frames; Compressed those that shipped deflated.
	Frames, Compressed int64
	// InnerBytes is the total inner-frame size; WireBytes what actually
	// went on the wire (envelopes included). WireBytes/InnerBytes is the
	// achieved compression ratio.
	InnerBytes, WireBytes int64
}

// Encoder turns inner frames into transport envelopes. Not safe for
// concurrent use; one Encoder per connection (or per fan-out point).
type Encoder struct {
	compress bool
	floor    int
	fw       *flate.Writer
	cbuf     bytes.Buffer
	stats    EncoderStats
}

// NewEncoder returns an encoder; with compress set, frames at or above the
// floor are deflated (falling back to raw whenever deflate fails to shrink).
// floor <= 0 selects CompressFloor.
func NewEncoder(compress bool, floor int) *Encoder {
	if floor <= 0 {
		floor = CompressFloor
	}
	return &Encoder{compress: compress, floor: floor}
}

// Stats snapshots the encoder's counters.
func (e *Encoder) Stats() EncoderStats { return e.stats }

// Encode builds one transport envelope around inner. stream >= 0 stamps a
// logical-stream ID (mux); NoStream omits it. The returned slice is freshly
// allocated and safe to retain (fan-out queues hold encoded frames).
func (e *Encoder) Encode(stream int64, inner []byte) ([]byte, error) {
	if len(inner) > MaxInner {
		return nil, fmt.Errorf("transport: inner frame of %d bytes exceeds limit", len(inner))
	}
	body := inner
	var flags byte
	if e.compress && len(inner) >= e.floor {
		e.cbuf.Reset()
		if e.fw == nil {
			fw, err := flate.NewWriter(&e.cbuf, flate.DefaultCompression)
			if err != nil {
				return nil, err
			}
			e.fw = fw
		} else {
			e.fw.Reset(&e.cbuf)
		}
		if _, err := e.fw.Write(inner); err != nil {
			return nil, err
		}
		if err := e.fw.Close(); err != nil {
			return nil, err
		}
		// The marker bit ships only when deflate actually won, so
		// incompressible payloads never regress past the envelope overhead.
		if e.cbuf.Len() < len(inner) {
			body = e.cbuf.Bytes()
			flags |= flagDeflate
		}
	}
	if stream >= 0 {
		flags |= flagStream
	}
	out := make([]byte, 0, len(body)+2*binary.MaxVarintLen64+7)
	out = append(out, syncA, syncB, flags)
	if stream >= 0 {
		out = binary.AppendUvarint(out, uint64(stream))
	}
	out = binary.AppendUvarint(out, uint64(len(body)))
	out = append(out, body...)
	crc := crc32.Checksum(out[2:], crcTable)
	out = binary.LittleEndian.AppendUint32(out, crc)
	e.stats.Frames++
	if flags&flagDeflate != 0 {
		e.stats.Compressed++
	}
	e.stats.InnerBytes += int64(len(inner))
	e.stats.WireBytes += int64(len(out))
	return out, nil
}

// Writer couples an Encoder to an io.Writer.
type Writer struct {
	enc *Encoder
	w   io.Writer
}

// NewWriter returns a frame writer over w; see NewEncoder for the
// compression knobs.
func NewWriter(w io.Writer, compress bool, floor int) *Writer {
	return &Writer{enc: NewEncoder(compress, floor), w: w}
}

// Stats snapshots the underlying encoder's counters.
func (tw *Writer) Stats() EncoderStats { return tw.enc.Stats() }

// WriteFrame encodes and writes one frame.
func (tw *Writer) WriteFrame(stream int64, inner []byte) error {
	env, err := tw.enc.Encode(stream, inner)
	if err != nil {
		return err
	}
	_, err = tw.w.Write(env)
	return err
}

// Frame is one decoded transport frame.
type Frame struct {
	// Stream is the logical-stream ID, or NoStream when the frame carried
	// none.
	Stream int64
	// Inner is the wrapped inner frame, decompressed when the marker bit was
	// set. Valid only until the Reader's next call.
	Inner []byte
	// Wire is the envelope's size on the wire — the frame's true air cost,
	// which is what tuning/doze accounting counts when compression is
	// negotiated.
	Wire int
	// Raw is the envelope exactly as read (sync through CRC), for
	// byte-faithful capture. Valid only until the Reader's next call.
	Raw []byte
	// Compressed reports the per-frame marker bit.
	Compressed bool
}

// Reader decodes transport frames off a stream. Not safe for concurrent
// use.
type Reader struct {
	br  *bufio.Reader
	raw []byte        // last envelope, reused across frames
	db  bytes.Buffer  // decompression buffer, reused
	inf io.ReadCloser // flate reader, reused via flate.Resetter
}

// NewReader returns a frame reader over r.
func NewReader(r io.Reader) *Reader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Reader{br: br}
}

// NewReaderFromBufio wraps an existing buffered reader (whose buffer may
// already hold peeked bytes) without another buffering layer.
func NewReaderFromBufio(br *bufio.Reader) *Reader { return &Reader{br: br} }

// Next reads one transport frame. Corruption returns an error satisfying
// IsCorrupt (the caller rescans with Resync); I/O errors pass through
// unwrapped. A clean EOF before any byte of the frame is io.EOF.
func (r *Reader) Next() (Frame, error) {
	b0, err := r.br.ReadByte()
	if err != nil {
		return Frame{}, err
	}
	b1, err := r.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return Frame{}, io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if b0 != syncA || b1 != syncB {
		return Frame{}, fmt.Errorf("%w: bad sync bytes %#02x %#02x", ErrCorrupt, b0, b1)
	}
	return r.readAfterSync()
}

// Resync scans a desynchronised stream for the next well-formed transport
// frame, returning it plus the bytes consumed before it (garbage and failed
// candidates). I/O errors propagate; the scan itself never gives up — the
// caller's read deadline or context bounds it.
func (r *Reader) Resync() (Frame, int64, error) {
	var skipped int64
	for {
		b, err := r.br.ReadByte()
		if err != nil {
			return Frame{}, skipped, err
		}
		skipped++
		if b != syncA {
			continue
		}
		p, err := r.br.Peek(1)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return Frame{}, skipped, io.ErrUnexpectedEOF
			}
			return Frame{}, skipped, err
		}
		if p[0] != syncB {
			continue
		}
		_, _ = r.br.Discard(1)
		skipped++
		fr, err := r.readAfterSync()
		if err == nil {
			// The accepted frame's own bytes are not skipped garbage.
			return fr, skipped - 2, nil
		}
		if IsCorrupt(err) {
			// False sync inside other data, or the candidate itself is
			// corrupt; everything it consumed was garbage. Keep scanning.
			skipped += int64(len(r.raw)) - 2
			continue
		}
		return Frame{}, skipped, err
	}
}

// readAfterSync parses the remainder of a frame whose sync pair was just
// consumed, accumulating the envelope into r.raw for Frame.Raw.
func (r *Reader) readAfterSync() (Frame, error) {
	r.raw = append(r.raw[:0], syncA, syncB)
	flags, err := r.readByte()
	if err != nil {
		return Frame{}, err
	}
	if flags&^(flagDeflate|flagStream) != 0 {
		return Frame{}, fmt.Errorf("%w: unknown flags %#02x", ErrCorrupt, flags)
	}
	stream := NoStream
	if flags&flagStream != 0 {
		v, err := r.readUvarint()
		if err != nil {
			return Frame{}, err
		}
		if v > 1<<62 {
			return Frame{}, fmt.Errorf("%w: stream ID %d insane", ErrCorrupt, v)
		}
		stream = int64(v)
	}
	n, err := r.readUvarint()
	if err != nil {
		return Frame{}, err
	}
	if n > MaxInner {
		return Frame{}, fmt.Errorf("%w: declared body of %d bytes exceeds limit", ErrCorrupt, n)
	}
	bodyStart := len(r.raw)
	r.raw = append(r.raw, make([]byte, n+4)...)
	if _, err := io.ReadFull(r.br, r.raw[bodyStart:]); err != nil {
		return Frame{}, err
	}
	body := r.raw[bodyStart : bodyStart+int(n)]
	got := binary.LittleEndian.Uint32(r.raw[bodyStart+int(n):])
	if want := crc32.Checksum(r.raw[2:bodyStart+int(n)], crcTable); got != want {
		return Frame{}, fmt.Errorf("%w: checksum %#08x, want %#08x", ErrCorrupt, got, want)
	}
	fr := Frame{
		Stream:     stream,
		Inner:      body,
		Wire:       len(r.raw),
		Raw:        r.raw,
		Compressed: flags&flagDeflate != 0,
	}
	if fr.Compressed {
		inner, err := r.inflate(body)
		if err != nil {
			return Frame{}, err
		}
		fr.Inner = inner
	}
	return fr, nil
}

// inflate decompresses one frame body, enforcing the decompression-bomb cap:
// a body inflating past MaxInner is rejected as corrupt, never buffered.
func (r *Reader) inflate(body []byte) ([]byte, error) {
	src := bytes.NewReader(body)
	if r.inf == nil {
		r.inf = flate.NewReader(src)
	} else if err := r.inf.(flate.Resetter).Reset(src, nil); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	r.db.Reset()
	n, err := io.Copy(&r.db, io.LimitReader(r.inf, MaxInner+1))
	if err != nil {
		return nil, fmt.Errorf("%w: deflate: %v", ErrCorrupt, err)
	}
	if n > MaxInner {
		return nil, fmt.Errorf("%w: inflated frame exceeds %d bytes", ErrCorrupt, MaxInner)
	}
	return r.db.Bytes(), nil
}

// readByte reads one byte, appending it to the raw envelope.
func (r *Reader) readByte() (byte, error) {
	b, err := r.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			return 0, io.ErrUnexpectedEOF
		}
		return 0, err
	}
	r.raw = append(r.raw, b)
	return b, nil
}

// readUvarint reads a uvarint byte by byte, appending to the raw envelope.
// Malformed encodings are corruption, not I/O failure.
func (r *Reader) readUvarint() (uint64, error) {
	var v uint64
	for shift := 0; shift < 64; shift += 7 {
		b, err := r.readByte()
		if err != nil {
			return 0, err
		}
		v |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("%w: uvarint overflow", ErrCorrupt)
}
