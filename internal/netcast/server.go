package netcast

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broadcast"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/schedule"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// ServerConfig parameterises a broadcast server.
type ServerConfig struct {
	// Collection is the document set. Required.
	Collection *xmldoc.Collection
	// Model fixes on-air widths. Zero selects the default.
	Model core.SizeModel
	// Mode selects one-tier or two-tier broadcast. Zero selects two-tier.
	Mode broadcast.Mode
	// Scheduler plans cycles. Nil selects schedule.LeeLo.
	Scheduler schedule.Scheduler
	// CycleCapacity is the per-cycle document budget in bytes. Required.
	CycleCapacity int
	// CycleInterval paces cycles in wall-clock time; the server also emits
	// a cycle as soon as requests are pending. Default 50 ms.
	CycleInterval time.Duration
	// UplinkAddr and BroadcastAddr are TCP listen addresses; use ":0" (or
	// "127.0.0.1:0") to pick free ports.
	UplinkAddr, BroadcastAddr string
	// UplinkIdleTimeout drops uplink connections with no traffic for this
	// long, so dead clients cannot pin server goroutines. Default 60 s;
	// negative disables the deadline.
	UplinkIdleTimeout time.Duration
	// SubscriberQueue is the per-subscriber outgoing frame buffer. A
	// subscriber whose queue overflows (stalled beyond what the buffer and
	// write deadline absorb) is dropped; clients reconnect and resync.
	// Default 256 frames.
	SubscriberQueue int
	// Probe receives engine pipeline telemetry in addition to the built-in
	// collector surfaced by Stats. Optional.
	Probe engine.Probe
	// Limits bounds engine memory and per-cycle latency (see engine.Limits).
	// Limits.MaxPending doubles as the server's global admission cap: a
	// submission that would grow the pending set past it is refused with
	// FrameReject before any resolution work. The zero value imposes no
	// limits.
	Limits engine.Limits
	// UplinkRate is the per-connection sustained submission rate in
	// queries per second, enforced by a token bucket of UplinkBurst
	// capacity; queries beyond the budget are refused with FrameReject
	// carrying a retry-after hint. Zero disables rate limiting.
	UplinkRate float64
	// UplinkBurst is the token-bucket burst size. Default 8 when
	// UplinkRate is set.
	UplinkBurst int
	// PruneChurn is the query-churn fraction above which the engine's
	// incremental PCI maintainer falls back to a full prune. Zero selects
	// the default; negative disables incremental maintenance (see
	// engine.Config.PruneChurn). Prune-path counters surface in
	// Stats().Engine.
	PruneChurn float64
	// ScheduleChurn is the pending-set churn fraction above which the
	// engine rebuilds its demand index from scratch instead of applying
	// deltas. Zero selects the default; negative disables incremental
	// scheduling (see engine.Config.ScheduleChurn). Schedule-path counters
	// surface in Stats().Engine.
	ScheduleChurn float64
	// Adaptive replaces the static admission knobs with a self-tuning
	// control loop (engine.AdaptiveLimiter): Limits.MaxPending, UplinkRate
	// and the churn thresholds become seeds the controller retunes from
	// observed cycle latency, and FrameReject retry-after hints come from
	// its cycle-latency estimate. A zero MaxPending seeds
	// engine.DefaultAdaptivePending; a zero UplinkRate seeds
	// engine.DefaultAdaptiveUplinkRate. Health surfaces in Stats.
	Adaptive bool
	// AdaptiveTarget is the controller's per-cycle assembly-latency goal;
	// zero derives it from Limits.BuildBudget or the default (see
	// engine.AdaptiveConfig.TargetLatency). Ignored unless Adaptive.
	AdaptiveTarget time.Duration
	// Clock drives admission timing (token buckets, the controller's
	// latency estimate). Nil selects the wall clock; tests inject
	// control.Fake.
	Clock control.Clock
}

// subWriteTimeout bounds each frame write to one subscriber.
const subWriteTimeout = 2 * time.Second

// Server is a running broadcast station. Create with StartServer, stop with
// Shutdown.
type Server struct {
	cfg   ServerConfig
	clock control.Clock

	// eng owns cycle assembly, the memoized query answers and the dynamic
	// collection; it is internally synchronised.
	eng *engine.Engine
	// adaptive is the self-tuning admission controller; nil unless
	// ServerConfig.Adaptive. Its live MaxPending/UplinkRate supersede the
	// static config at every admission decision.
	adaptive *engine.AdaptiveLimiter

	upLn, bcLn net.Listener

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	uplinks map[net.Conn]struct{}
	pending []*srvRequest
	nextID  int64
	cycles  int64

	rejectedRate    atomic.Int64
	rejectedPending atomic.Int64

	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{} // closed when cycleLoop returns (in-flight cycle flushed)
	done     chan struct{}
	wg       sync.WaitGroup
}

// ServerStats is a point-in-time snapshot of a running server, including the
// assembly engine's pipeline telemetry.
type ServerStats struct {
	// Cycles is the number of broadcast cycles emitted so far.
	Cycles int64
	// Pending is the number of outstanding requests.
	Pending int
	// Subscribers is the number of connected broadcast listeners.
	Subscribers int
	// RejectedRate counts uplink queries refused by per-connection rate
	// limiting; RejectedPending counts queries refused by the global
	// pending-set cap (Limits.MaxPending).
	RejectedRate, RejectedPending int64
	// Engine holds per-stage wall times and sizes, answer-cache hit rate,
	// eviction and degraded-cycle counters from the shared assembly
	// engine.
	Engine engine.Metrics
	// Health is the adaptive admission controller's three-state load
	// signal; empty unless ServerConfig.Adaptive.
	Health engine.Health
}

// subscriber is one broadcast listener: frames are queued to a buffered
// channel and written by a dedicated goroutine, so one stalled connection
// cannot delay the cycle loop or the other subscribers.
type subscriber struct {
	conn     net.Conn
	ch       chan outFrame
	quitOnce sync.Once
}

// outFrame is one queued downlink frame.
type outFrame struct {
	t       FrameType
	payload []byte
}

// finish closes the subscriber's queue exactly once; its writer goroutine
// drains and flushes what remains, then closes the connection.
func (sub *subscriber) finish() {
	sub.quitOnce.Do(func() { close(sub.ch) })
}

// srvRequest is one uplink request's server-side state.
type srvRequest struct {
	id        int64
	query     xpath.Path
	arrival   int64
	remaining map[xmldoc.DocID]struct{}
}

// StartServer binds the uplink and broadcast listeners and starts the cycle
// loop.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Collection == nil || cfg.Collection.Len() == 0 {
		return nil, fmt.Errorf("netcast: ServerConfig.Collection is required")
	}
	if cfg.CycleCapacity <= 0 {
		return nil, fmt.Errorf("netcast: ServerConfig.CycleCapacity must be positive")
	}
	if cfg.Model == (core.SizeModel{}) {
		cfg.Model = core.DefaultSizeModel()
	}
	if cfg.Mode == 0 {
		cfg.Mode = broadcast.TwoTierMode
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = schedule.LeeLo{}
	}
	if cfg.CycleInterval == 0 {
		cfg.CycleInterval = 50 * time.Millisecond
	}
	if cfg.UplinkAddr == "" {
		cfg.UplinkAddr = "127.0.0.1:0"
	}
	if cfg.BroadcastAddr == "" {
		cfg.BroadcastAddr = "127.0.0.1:0"
	}
	if cfg.UplinkIdleTimeout == 0 {
		cfg.UplinkIdleTimeout = 60 * time.Second
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	clock := control.Or(cfg.Clock)
	var adaptive *engine.AdaptiveLimiter
	if cfg.Adaptive {
		if cfg.Limits.MaxPending <= 0 {
			cfg.Limits.MaxPending = engine.DefaultAdaptivePending
		}
		if cfg.UplinkRate <= 0 {
			cfg.UplinkRate = engine.DefaultAdaptiveUplinkRate
		}
		adaptive = engine.NewAdaptiveLimiter(engine.AdaptiveConfig{
			Limits:        cfg.Limits,
			UplinkRate:    cfg.UplinkRate,
			PruneChurn:    cfg.PruneChurn,
			ScheduleChurn: cfg.ScheduleChurn,
			TargetLatency: cfg.AdaptiveTarget,
			Clock:         clock,
		})
	}
	if cfg.UplinkRate > 0 && cfg.UplinkBurst <= 0 {
		cfg.UplinkBurst = 8
	}
	eng, err := engine.New(engine.Config{
		Collection:    cfg.Collection,
		Model:         cfg.Model,
		Mode:          cfg.Mode,
		Scheduler:     cfg.Scheduler,
		CycleCapacity: cfg.CycleCapacity,
		Probe:         cfg.Probe,
		Limits:        cfg.Limits,
		PruneChurn:    cfg.PruneChurn,
		ScheduleChurn: cfg.ScheduleChurn,
		Adaptive:      adaptive,
	})
	if err != nil {
		return nil, err
	}
	upLn, err := net.Listen("tcp", cfg.UplinkAddr)
	if err != nil {
		return nil, fmt.Errorf("netcast: uplink listen: %w", err)
	}
	bcLn, err := net.Listen("tcp", cfg.BroadcastAddr)
	if err != nil {
		upLn.Close()
		return nil, fmt.Errorf("netcast: broadcast listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		clock:    clock,
		adaptive: adaptive,
		eng:      eng,
		upLn:     upLn,
		bcLn:     bcLn,
		subs:     make(map[*subscriber]struct{}),
		uplinks:  make(map[net.Conn]struct{}),
		stop:     make(chan struct{}),
		loopDone: make(chan struct{}),
		done:     make(chan struct{}),
	}
	s.wg.Add(3)
	go s.acceptUplink()
	go s.acceptSubscribers()
	go s.cycleLoop()
	go func() {
		s.wg.Wait()
		close(s.done)
	}()
	return s, nil
}

// UplinkAddr is the bound uplink address.
func (s *Server) UplinkAddr() string { return s.upLn.Addr().String() }

// BroadcastAddr is the bound broadcast address.
func (s *Server) BroadcastAddr() string { return s.bcLn.Addr().String() }

// Cycles reports how many cycles have been broadcast.
func (s *Server) Cycles() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycles
}

// Pending reports the number of outstanding requests.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats snapshots the server's counters and the assembly engine's pipeline
// telemetry.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Cycles:          s.cycles,
		Pending:         len(s.pending),
		Subscribers:     len(s.subs),
		RejectedRate:    s.rejectedRate.Load(),
		RejectedPending: s.rejectedPending.Load(),
	}
	s.mu.Unlock()
	st.Engine = s.eng.Metrics()
	st.Health = st.Engine.Health
	return st
}

// Shutdown stops the server gracefully: the cycle loop finishes and flushes
// the in-flight cycle to every subscriber queue, subscriber writers drain
// their queues, then the listeners and every connection close. Safe to call
// more than once and from multiple goroutines; every call waits for the
// full teardown.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() {
		close(s.stop)
		// Let an in-flight broadcastCycle finish enqueueing its frames
		// before the subscriber queues are closed.
		<-s.loopDone
		s.upLn.Close()
		s.bcLn.Close()
		s.mu.Lock()
		subs := make([]*subscriber, 0, len(s.subs))
		for sub := range s.subs {
			subs = append(subs, sub)
		}
		uplinks := make([]net.Conn, 0, len(s.uplinks))
		for c := range s.uplinks {
			uplinks = append(uplinks, c)
		}
		s.mu.Unlock()
		for _, sub := range subs {
			sub.finish()
		}
		for _, c := range uplinks {
			c.Close()
		}
	})
	<-s.done
}

// acceptUplink serves request submissions.
func (s *Server) acceptUplink() {
	defer s.wg.Done()
	for {
		conn, err := s.upLn.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveUplink(conn)
	}
}

// tokenBucket is a per-uplink-connection rate limiter. Each query costs one
// token; tokens refill at rate per second up to burst. Used by a single
// goroutine, so no locking.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take spends one token if available and returns 0; otherwise it returns how
// long until the next token accrues (the retry-after hint).
func (b *tokenBucket) take(now time.Time) time.Duration {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// serveUplink handles one uplink connection: QUERY frames in, ACK or REJECT
// frames out. An idle deadline reaps dead clients; a token bucket sheds
// per-connection floods without dropping the connection.
func (s *Server) serveUplink(conn net.Conn) {
	defer s.wg.Done()
	s.mu.Lock()
	s.uplinks[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.uplinks, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var bucket *tokenBucket
	if s.cfg.UplinkRate > 0 {
		bucket = newTokenBucket(s.cfg.UplinkRate, s.cfg.UplinkBurst, s.clock.Now())
	}
	for {
		if s.cfg.UplinkIdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.UplinkIdleTimeout))
		}
		t, payload, err := readFrame(conn)
		if err != nil {
			// Corrupt frame, idle timeout or disconnect: the uplink is a
			// lockstep request/ack protocol, so drop the connection and let
			// the client redial rather than guess at framing.
			return
		}
		if t != FrameQuery {
			_ = writeFrame(conn, FrameAck, []byte("err: unexpected frame"))
			return
		}
		var out outFrame
		if bucket != nil {
			if s.adaptive != nil {
				// The controller retunes the sustained rate; the burst
				// capacity stays as configured.
				bucket.rate = s.adaptive.UplinkRate()
			}
			if wait := bucket.take(s.clock.Now()); wait > 0 {
				s.rejectedRate.Add(1)
				out = outFrame{FrameReject, encodeReject(wait, "rate limited")}
			}
		}
		if out.t == 0 {
			covered, err := s.submit(string(payload))
			switch {
			case err == nil:
				out = outFrame{FrameAck, []byte(fmt.Sprintf("ok:%d", covered))}
			case errors.Is(err, engine.ErrOverload):
				s.rejectedPending.Add(1)
				// The cap frees up as cycles retire requests, so the next
				// cycle boundary is the natural retry point: the configured
				// interval, or the controller's measured cycle latency when
				// one is running (under load cycles retire slower than the
				// interval promises).
				retry := s.cfg.CycleInterval
				if s.adaptive != nil {
					if ra := s.adaptive.RetryAfter(); ra > 0 {
						retry = ra
					}
				}
				out = outFrame{FrameReject, encodeReject(retry, "pending set full")}
			default:
				out = outFrame{FrameAck, []byte("err: " + err.Error())}
			}
		}
		_ = conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		if err := writeFrame(conn, out.t, out.payload); err != nil {
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// submit registers one query, resolving its result set server-side, and
// returns the number of the first broadcast cycle whose index is guaranteed
// to cover it. With Limits.MaxPending set, a submission that would grow the
// pending set past the cap is refused with a wrapped engine.ErrOverload —
// checked before resolution so floods cannot buy NFA work, and re-checked at
// the append because the set may have grown while resolving.
func (s *Server) submit(expr string) (int64, error) {
	if err := s.admit(); err != nil {
		return 0, err
	}
	q, err := xpath.Parse(strings.TrimSpace(expr))
	if err != nil {
		return 0, err
	}
	// The engine memoizes answers per canonical query string, so repeated
	// submissions of popular queries never rescan the collection.
	docs, err := s.eng.Resolve(q)
	if err != nil {
		return 0, err
	}
	if len(docs) == 0 {
		return 0, errors.New("query has an empty result set")
	}
	rem := make(map[xmldoc.DocID]struct{}, len(docs))
	for _, d := range docs {
		rem[d] = struct{}{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if max := s.maxPending(); max > 0 && len(s.pending) >= max {
		return 0, fmt.Errorf("netcast: pending set at MaxPending %d: %w", max, engine.ErrOverload)
	}
	s.nextID++
	s.pending = append(s.pending, &srvRequest{id: s.nextID, query: q, arrival: s.cycles, remaining: rem})
	// The next snapshot (cycle number s.cycles) will include this request.
	return s.cycles, nil
}

// maxPending is the live pending-set cap: the adaptive controller's value
// when one is running, the static Limits.MaxPending otherwise.
func (s *Server) maxPending() int {
	if s.adaptive != nil {
		return s.adaptive.MaxPending()
	}
	return s.cfg.Limits.MaxPending
}

// admit is the cheap pre-resolution admission check against the pending cap.
func (s *Server) admit() error {
	max := s.maxPending()
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= max {
		return fmt.Errorf("netcast: pending set at MaxPending %d: %w", max, engine.ErrOverload)
	}
	return nil
}

// acceptSubscribers registers broadcast listeners, each with its own
// buffered writer goroutine.
func (s *Server) acceptSubscribers() {
	defer s.wg.Done()
	for {
		conn, err := s.bcLn.Accept()
		if err != nil {
			return
		}
		sub := &subscriber{conn: conn, ch: make(chan outFrame, s.cfg.SubscriberQueue)}
		s.mu.Lock()
		s.subs[sub] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveSubscriber(sub)
	}
}

// serveSubscriber drains one subscriber's frame queue onto its connection.
// It exits when the queue is closed (drop or shutdown) or a write fails,
// flushing whatever was buffered.
func (s *Server) serveSubscriber(sub *subscriber) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
		sub.conn.Close()
	}()
	bw := bufio.NewWriterSize(sub.conn, 64<<10)
	for f := range sub.ch {
		_ = sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		if err := writeFrame(bw, f.t, f.payload); err != nil {
			return
		}
		if len(sub.ch) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
	_ = sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
	_ = bw.Flush()
}

// cycleLoop emits one broadcast cycle per interval whenever requests are
// pending.
func (s *Server) cycleLoop() {
	defer s.wg.Done()
	defer close(s.loopDone)
	ticker := time.NewTicker(s.cfg.CycleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if err := s.broadcastCycle(); err != nil {
				// Cycle assembly failures are fatal design errors; surface
				// by stopping the loop (subscribers observe EOF).
				return
			}
		}
	}
}

// broadcastCycle plans, encodes and fans out one cycle through the shared
// assembly engine.
func (s *Server) broadcastCycle() error {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return nil
	}
	snapshot := append([]*srvRequest(nil), s.pending...)
	pending := make([]engine.Pending, 0, len(snapshot))
	for _, r := range snapshot {
		rem := make([]xmldoc.DocID, 0, len(r.remaining))
		for d := range r.remaining {
			rem = append(rem, d)
		}
		pending = append(pending, engine.Pending{ID: r.id, Query: r.query, Arrival: r.arrival, Remaining: rem})
	}
	// The cycle number is claimed under the same lock that snapshots the
	// pending set, so a submission observing cycles == k is guaranteed to
	// be covered by the snapshot of cycle k.
	num := s.cycles
	s.cycles++
	s.mu.Unlock()

	// The server's clock is the cycle number: arrivals are stamped with it,
	// and the scheduler's "now" follows the same unit.
	cy, err := s.eng.AssembleCycle(num, num, pending)
	if err != nil {
		return err
	}
	enc, err := s.eng.EncodeCycle(cy)
	if err != nil {
		return err
	}
	catBytes, err := cy.Catalog.Encode()
	if err != nil {
		return err
	}
	head := &cycleHead{
		Number:     uint32(num),
		TwoTier:    s.cfg.Mode == broadcast.TwoTierMode,
		NumDocs:    uint16(len(cy.Docs)),
		Catalog:    catBytes,
		RootLabels: wire.RootLabels(cy.Index),
	}
	headBytes, err := head.encode()
	if err != nil {
		return err
	}

	// The encoded segments are retained by subscriber queues, so they are
	// never recycled here; the GC reclaims them once every writer is done.
	s.fanOut(FrameCycleHead, headBytes)
	s.fanOut(FrameIndex, enc.Index)
	if enc.SecondTier != nil {
		s.fanOut(FrameSecondTier, enc.SecondTier)
	}
	for _, payload := range enc.Docs {
		s.fanOut(FrameDoc, payload)
	}

	// Mark deliveries on the snapshotted requests only (requests submitted
	// mid-cycle did not have their documents announced in this index) and
	// retire completed ones.
	s.mu.Lock()
	inSnapshot := make(map[int64]struct{}, len(snapshot))
	for _, r := range snapshot {
		inSnapshot[r.id] = struct{}{}
	}
	var live []*srvRequest
	for _, r := range s.pending {
		if _, ok := inSnapshot[r.id]; ok {
			for _, p := range cy.Docs {
				delete(r.remaining, p.ID)
			}
		}
		if len(r.remaining) > 0 {
			live = append(live, r)
		}
	}
	s.pending = live
	s.mu.Unlock()
	return nil
}

// fanOut enqueues one frame to every subscriber's writer. A subscriber
// whose queue is full has stalled past what its buffer and write deadline
// absorb; it is dropped so the broadcast never blocks on one receiver.
func (s *Server) fanOut(t FrameType, payload []byte) {
	s.mu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- outFrame{t: t, payload: payload}:
		default:
			s.mu.Lock()
			delete(s.subs, sub)
			s.mu.Unlock()
			sub.finish()
			// Unblock a writer stuck mid-write; its deferred cleanup
			// tolerates the double Close.
			sub.conn.Close()
		}
	}
}

// AddDocument admits a new document to the live collection; it becomes
// visible to queries and schedulable from the next cycle. The engine
// invalidates its answer cache.
func (s *Server) AddDocument(d *xmldoc.Document) error {
	return s.eng.AddDocument(d)
}

// RemoveDocument retires a document from the live collection. Pending
// requests lose the document from their remaining sets; requests thereby
// satisfied are retired.
func (s *Server) RemoveDocument(id xmldoc.DocID) error {
	if err := s.eng.RemoveDocument(id); err != nil {
		return err
	}
	s.mu.Lock()
	var live []*srvRequest
	for _, r := range s.pending {
		delete(r.remaining, id)
		if len(r.remaining) > 0 {
			live = append(live, r)
		}
	}
	s.pending = live
	s.mu.Unlock()
	return nil
}

// NumDocs reports the current collection size.
func (s *Server) NumDocs() int {
	return s.eng.NumDocs()
}
