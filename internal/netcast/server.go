package netcast

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/broadcast"
	"repro/internal/netcast/transport"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/journal"
	"repro/internal/schedule"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// ServerConfig parameterises a broadcast server.
type ServerConfig struct {
	// Collection is the document set. Required.
	Collection *xmldoc.Collection
	// Model fixes on-air widths. Zero selects the default.
	Model core.SizeModel
	// Mode selects one-tier or two-tier broadcast. Zero selects two-tier.
	Mode broadcast.Mode
	// IndexEncoding selects the first tier's wire layout: the node-pointer
	// stream (the zero value) or the succinct balanced-parentheses form,
	// which requires two-tier mode. The choice is stamped into every cycle
	// head, so clients negotiate per cycle.
	IndexEncoding core.IndexEncoding
	// Scheduler plans cycles. Nil selects schedule.LeeLo.
	Scheduler schedule.Scheduler
	// Channels is the number of parallel broadcast streams (K). Zero or one
	// selects the classic single-channel broadcast. With K > 1 (two-tier
	// mode only) the server binds K broadcast listeners — channel 0 carries
	// the cycle head, channel directory and first tier, channels 1..K-1
	// carry striped second tiers and documents — and each cycle is fanned
	// out channel by channel (protocol version 3; see ChannelAddrs).
	Channels int
	// CycleCapacity is the per-cycle document budget in bytes. Required.
	CycleCapacity int
	// CycleInterval paces cycles in wall-clock time; the server also emits
	// a cycle as soon as requests are pending. Default 50 ms.
	CycleInterval time.Duration
	// UplinkAddr and BroadcastAddr are TCP listen addresses; use ":0" (or
	// "127.0.0.1:0") to pick free ports.
	UplinkAddr, BroadcastAddr string
	// UplinkIdleTimeout drops uplink connections with no traffic for this
	// long, so dead clients cannot pin server goroutines. Default 60 s;
	// negative disables the deadline.
	UplinkIdleTimeout time.Duration
	// SubscriberQueue is the per-subscriber outgoing frame buffer. A
	// subscriber whose queue overflows (stalled beyond what the buffer and
	// write deadline absorb) is dropped; clients reconnect and resync.
	// Default 256 frames.
	SubscriberQueue int
	// Probe receives engine pipeline telemetry in addition to the built-in
	// collector surfaced by Stats. Optional.
	Probe engine.Probe
	// Limits bounds engine memory and per-cycle latency (see engine.Limits).
	// Limits.MaxPending doubles as the server's global admission cap: a
	// submission that would grow the pending set past it is refused with
	// FrameReject before any resolution work. The zero value imposes no
	// limits.
	Limits engine.Limits
	// UplinkRate is the per-connection sustained submission rate in
	// queries per second, enforced by a token bucket of UplinkBurst
	// capacity; queries beyond the budget are refused with FrameReject
	// carrying a retry-after hint. Zero disables rate limiting.
	UplinkRate float64
	// UplinkBurst is the token-bucket burst size. Default 8 when
	// UplinkRate is set.
	UplinkBurst int
	// PruneChurn is the query-churn fraction above which the engine's
	// incremental PCI maintainer falls back to a full prune. Zero selects
	// the default; negative disables incremental maintenance (see
	// engine.Config.PruneChurn). Prune-path counters surface in
	// Stats().Engine.
	PruneChurn float64
	// ScheduleChurn is the pending-set churn fraction above which the
	// engine rebuilds its demand index from scratch instead of applying
	// deltas. Zero selects the default; negative disables incremental
	// scheduling (see engine.Config.ScheduleChurn). Schedule-path counters
	// surface in Stats().Engine.
	ScheduleChurn float64
	// Adaptive replaces the static admission knobs with a self-tuning
	// control loop (engine.AdaptiveLimiter): Limits.MaxPending, UplinkRate
	// and the churn thresholds become seeds the controller retunes from
	// observed cycle latency, and FrameReject retry-after hints come from
	// its cycle-latency estimate. A zero MaxPending seeds
	// engine.DefaultAdaptivePending; a zero UplinkRate seeds
	// engine.DefaultAdaptiveUplinkRate. Health surfaces in Stats.
	Adaptive bool
	// AdaptiveTarget is the controller's per-cycle assembly-latency goal;
	// zero derives it from Limits.BuildBudget or the default (see
	// engine.AdaptiveConfig.TargetLatency). Ignored unless Adaptive.
	AdaptiveTarget time.Duration
	// Clock drives admission timing (token buckets, the controller's
	// latency estimate). Nil selects the wall clock; tests inject
	// control.Fake.
	Clock control.Clock
	// StateDir enables crash-safe durability: admissions and cycle commits
	// are journaled to an append-only CRC-framed log under this directory
	// (compacted by periodic snapshots), submissions are acked only after
	// the admit record is durable, and a server restarted on the same
	// directory recovers the pending set, request-ID counter and cycle
	// number it had committed — so no acked request is ever lost and
	// assembly resumes from the last committed cycle. Empty runs the
	// classic in-memory server.
	StateDir string
	// Fsync fsyncs the journal on every append. Without it appends are
	// still flushed to the OS per record (a killed process loses nothing
	// acked), but a power failure can lose the unsynced tail. Ignored
	// without StateDir.
	Fsync bool
	// SnapshotEvery is the number of journal records between compacting
	// snapshots. Zero selects journal.DefaultSnapshotEvery; negative
	// disables automatic snapshots. Ignored without StateDir.
	SnapshotEvery int
	// Compress enables the transport layer on the downlink: every broadcast
	// stream opens with a transport hello and carries per-frame DEFLATE
	// envelopes (frames below the size floor, and frames deflate cannot
	// shrink, ship raw inside the envelope). Each frame is compressed once
	// at fan-out and the identical bytes go to every subscriber. Uplink
	// compression is granted to clients that request it in their hello.
	// Off, not a single downlink byte differs from the bare protocol.
	Compress bool
	// MuxCredit is the per-stream flow-control window granted to
	// multiplexed uplink connections (how many frames one logical client
	// may have in flight unanswered). Default 32. Note that UplinkRate
	// still applies per TCP connection, so a rate-limited mux carrying
	// thousands of logical clients shares one bucket.
	MuxCredit int
}

// defaultMuxCredit is the per-stream flow-control window granted to mux
// uplinks when ServerConfig.MuxCredit is zero.
const defaultMuxCredit = 32

// subWriteTimeout bounds each frame write to one subscriber.
const subWriteTimeout = 2 * time.Second

// Server is a running broadcast station. Create with StartServer, stop with
// Shutdown.
type Server struct {
	cfg   ServerConfig
	clock control.Clock

	// eng owns cycle assembly, the memoized query answers and the dynamic
	// collection; it is internally synchronised.
	eng *engine.Engine
	// adaptive is the self-tuning admission controller; nil unless
	// ServerConfig.Adaptive. Its live MaxPending/UplinkRate supersede the
	// static config at every admission decision.
	adaptive *engine.AdaptiveLimiter

	upLn net.Listener
	// bcLns holds one broadcast listener per channel; single-channel servers
	// have exactly one.
	bcLns []net.Listener

	// downEnc compresses downlink frames once at fan-out; nil without
	// ServerConfig.Compress. It lives on the cycle-loop goroutine (the only
	// fanOut caller), so it needs no lock. downHello is the pre-encoded
	// transport hello every subscriber stream opens with.
	downEnc   *transport.Encoder
	downHello []byte

	// jn is the durability journal; nil without ServerConfig.StateDir.
	// Journal appends happen under mu, so the log's record order always
	// matches the order state changed. epoch and generation identify this
	// journal lineage and restart in the session-resume handshake (both
	// zero on an in-memory server). recovered counts pending requests
	// restored at startup.
	jn         *journal.Journal
	epoch      uint64
	generation uint32
	recovered  int

	mu      sync.Mutex
	subs    map[*subscriber]struct{}
	uplinks map[net.Conn]struct{}
	pending []*srvRequest
	nextID  int64
	cycles  int64

	rejectedRate    atomic.Int64
	rejectedPending atomic.Int64

	// draining gates the uplink during Shutdown: frames that arrive after
	// the drain starts are refused with a retry-after reject instead of a
	// dropped connection, and inflight tracks frames already being
	// processed so their acks are written (and journaled) before the
	// journal and the connections close.
	draining atomic.Bool
	inflight sync.WaitGroup

	stop     chan struct{}
	stopOnce sync.Once
	loopDone chan struct{} // closed when cycleLoop returns (in-flight cycle flushed)
	done     chan struct{}
	wg       sync.WaitGroup
}

// ServerStats is a point-in-time snapshot of a running server, including the
// assembly engine's pipeline telemetry.
type ServerStats struct {
	// Cycles is the number of broadcast cycles emitted so far.
	Cycles int64
	// Pending is the number of outstanding requests.
	Pending int
	// Subscribers is the number of connected broadcast listeners.
	Subscribers int
	// RejectedRate counts uplink queries refused by per-connection rate
	// limiting; RejectedPending counts queries refused by the global
	// pending-set cap (Limits.MaxPending).
	RejectedRate, RejectedPending int64
	// Engine holds per-stage wall times and sizes, answer-cache hit rate,
	// eviction and degraded-cycle counters from the shared assembly
	// engine.
	Engine engine.Metrics
	// Health is the adaptive admission controller's three-state load
	// signal; empty unless ServerConfig.Adaptive.
	Health engine.Health
	// Epoch and Generation identify the durability journal's lineage and
	// restart count (1 = fresh state directory); zero on an in-memory
	// server. RecoveredPending counts requests restored from the journal at
	// startup.
	Epoch            uint64
	Generation       uint32
	RecoveredPending int
}

// subscriber is one broadcast listener: frames are queued to a buffered
// channel and written by a dedicated goroutine, so one stalled connection
// cannot delay the cycle loop or the other subscribers.
type subscriber struct {
	conn net.Conn
	ch   chan outFrame
	// channel is the broadcast channel this listener subscribed to (by
	// dialing its address); always 0 on a single-channel server.
	channel  int
	quitOnce sync.Once
}

// outFrame is one queued downlink frame. On a compressing server the
// transport envelope is encoded once at fan-out and carried in wire; the
// writer then puts those exact bytes on every subscriber's connection.
type outFrame struct {
	t       FrameType
	payload []byte
	wire    []byte // pre-encoded transport envelope; nil on a bare server
}

// finish closes the subscriber's queue exactly once; its writer goroutine
// drains and flushes what remains, then closes the connection.
func (sub *subscriber) finish() {
	sub.quitOnce.Do(func() { close(sub.ch) })
}

// srvRequest is one uplink request's server-side state.
type srvRequest struct {
	id        int64
	query     xpath.Path
	arrival   int64
	remaining map[xmldoc.DocID]struct{}
}

// StartServer binds the uplink and broadcast listeners and starts the cycle
// loop.
func StartServer(cfg ServerConfig) (*Server, error) {
	if cfg.Collection == nil || cfg.Collection.Len() == 0 {
		return nil, fmt.Errorf("netcast: ServerConfig.Collection is required")
	}
	if cfg.CycleCapacity <= 0 {
		return nil, fmt.Errorf("netcast: ServerConfig.CycleCapacity must be positive")
	}
	if cfg.Model == (core.SizeModel{}) {
		cfg.Model = core.DefaultSizeModel()
	}
	if cfg.Mode == 0 {
		cfg.Mode = broadcast.TwoTierMode
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = schedule.LeeLo{}
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Channels < 1 || cfg.Channels > 256 {
		return nil, fmt.Errorf("netcast: ServerConfig.Channels must be in [1, 256], got %d", cfg.Channels)
	}
	if cfg.Channels > 1 && cfg.Mode != broadcast.TwoTierMode {
		return nil, fmt.Errorf("netcast: multichannel broadcast requires two-tier mode")
	}
	if cfg.Compress && cfg.Channels > 1 {
		// The channel directory's hop offsets index the uncompressed stream;
		// envelope sizes would invalidate them. Same restriction as
		// sim.Config.Compress.
		return nil, fmt.Errorf("netcast: Compress requires a single broadcast channel, got K=%d", cfg.Channels)
	}
	if cfg.CycleInterval == 0 {
		cfg.CycleInterval = 50 * time.Millisecond
	}
	if cfg.UplinkAddr == "" {
		cfg.UplinkAddr = "127.0.0.1:0"
	}
	if cfg.BroadcastAddr == "" {
		cfg.BroadcastAddr = "127.0.0.1:0"
	}
	if cfg.UplinkIdleTimeout == 0 {
		cfg.UplinkIdleTimeout = 60 * time.Second
	}
	if cfg.SubscriberQueue <= 0 {
		cfg.SubscriberQueue = 256
	}
	if cfg.MuxCredit <= 0 {
		cfg.MuxCredit = defaultMuxCredit
	}
	clock := control.Or(cfg.Clock)
	var adaptive *engine.AdaptiveLimiter
	if cfg.Adaptive {
		if cfg.Limits.MaxPending <= 0 {
			cfg.Limits.MaxPending = engine.DefaultAdaptivePending
		}
		if cfg.UplinkRate <= 0 {
			cfg.UplinkRate = engine.DefaultAdaptiveUplinkRate
		}
		adaptive = engine.NewAdaptiveLimiter(engine.AdaptiveConfig{
			Limits:        cfg.Limits,
			UplinkRate:    cfg.UplinkRate,
			PruneChurn:    cfg.PruneChurn,
			ScheduleChurn: cfg.ScheduleChurn,
			TargetLatency: cfg.AdaptiveTarget,
			Clock:         clock,
		})
	}
	if cfg.UplinkRate > 0 && cfg.UplinkBurst <= 0 {
		cfg.UplinkBurst = 8
	}
	eng, err := engine.New(engine.Config{
		Collection:    cfg.Collection,
		Model:         cfg.Model,
		Mode:          cfg.Mode,
		IndexEncoding: cfg.IndexEncoding,
		Scheduler:     cfg.Scheduler,
		Channels:      cfg.Channels,
		CycleCapacity: cfg.CycleCapacity,
		Probe:         cfg.Probe,
		Limits:        cfg.Limits,
		PruneChurn:    cfg.PruneChurn,
		ScheduleChurn: cfg.ScheduleChurn,
		Adaptive:      adaptive,
	})
	if err != nil {
		return nil, err
	}
	var (
		jn         *journal.Journal
		recovered  []*srvRequest
		epoch      uint64
		generation uint32
		nextID     int64
		cycles     int64
	)
	if cfg.StateDir != "" {
		var st *journal.State
		jn, st, err = journal.Open(journal.Options{
			Dir:           cfg.StateDir,
			Fsync:         cfg.Fsync,
			SnapshotEvery: cfg.SnapshotEvery,
		})
		if err != nil {
			return nil, err
		}
		epoch, generation = st.Epoch, st.Generation
		nextID, cycles = st.NextID, st.Cycles
		recovered, err = restorePending(jn, eng, st)
		if err != nil {
			jn.Close()
			return nil, err
		}
	}
	upLn, err := net.Listen("tcp", cfg.UplinkAddr)
	if err != nil {
		if jn != nil {
			jn.Close()
		}
		return nil, fmt.Errorf("netcast: uplink listen: %w", err)
	}
	// One broadcast listener per channel: channel 0 binds the configured
	// address, data channels bind ephemeral ports on the same host (a fixed
	// configured port cannot be shared by K listeners).
	bcLns := make([]net.Listener, 0, cfg.Channels)
	closeAll := func() {
		upLn.Close()
		for _, ln := range bcLns {
			ln.Close()
		}
		if jn != nil {
			jn.Close()
		}
	}
	for c := 0; c < cfg.Channels; c++ {
		addr := cfg.BroadcastAddr
		if c > 0 {
			host, _, err := net.SplitHostPort(bcLns[0].Addr().String())
			if err != nil {
				closeAll()
				return nil, fmt.Errorf("netcast: broadcast listen: %w", err)
			}
			addr = net.JoinHostPort(host, "0")
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			closeAll()
			return nil, fmt.Errorf("netcast: broadcast listen (channel %d): %w", c, err)
		}
		bcLns = append(bcLns, ln)
	}
	s := &Server{
		cfg:        cfg,
		clock:      clock,
		adaptive:   adaptive,
		eng:        eng,
		upLn:       upLn,
		bcLns:      bcLns,
		jn:         jn,
		epoch:      epoch,
		generation: generation,
		recovered:  len(recovered),
		pending:    recovered,
		nextID:     nextID,
		cycles:     cycles,
		subs:       make(map[*subscriber]struct{}),
		uplinks:    make(map[net.Conn]struct{}),
		stop:       make(chan struct{}),
		loopDone:   make(chan struct{}),
		done:       make(chan struct{}),
	}
	if cfg.Compress {
		s.downEnc = transport.NewEncoder(true, 0)
		var hb bytes.Buffer
		if err := transport.WriteHello(&hb, transport.Hello{Compress: true}); err != nil {
			closeAll()
			return nil, err
		}
		s.downHello = hb.Bytes()
	}
	s.wg.Add(2 + len(bcLns))
	go s.acceptUplink()
	for c, ln := range bcLns {
		go s.acceptSubscribers(ln, c)
	}
	go s.cycleLoop()
	go func() {
		s.wg.Wait()
		close(s.done)
	}()
	return s, nil
}

// restorePending turns a recovered journal state back into live server
// requests. Queries are re-parsed from their canonical strings; when the
// collection fingerprint drifted while the server was down (documents added
// or removed under a different process), each recovered remaining set is
// re-intersected with the query's current result set so the schedule never
// chases documents that no longer exist. Requests that no longer parse,
// resolve, or retain any remaining documents are removed from the journal.
func restorePending(jn *journal.Journal, eng *engine.Engine, st *journal.State) ([]*srvRequest, error) {
	drifted := st.Fingerprint != 0 && st.Fingerprint != eng.CollectionFingerprint()
	out := make([]*srvRequest, 0, len(st.Pending))
	for _, jr := range st.Pending {
		drop := func() error { return jn.Remove(jr.ID) }
		q, err := xpath.Parse(jr.Query)
		if err != nil {
			if err := drop(); err != nil {
				return nil, err
			}
			continue
		}
		rem := make(map[xmldoc.DocID]struct{}, len(jr.Remaining))
		if drifted {
			docs, err := eng.Resolve(q)
			if err != nil {
				if err := drop(); err != nil {
					return nil, err
				}
				continue
			}
			now := make(map[xmldoc.DocID]struct{}, len(docs))
			for _, d := range docs {
				now[d] = struct{}{}
			}
			for _, d := range jr.Remaining {
				if _, ok := now[xmldoc.DocID(d)]; ok {
					rem[xmldoc.DocID(d)] = struct{}{}
				}
			}
		} else {
			for _, d := range jr.Remaining {
				rem[xmldoc.DocID(d)] = struct{}{}
			}
		}
		if len(rem) == 0 {
			if err := drop(); err != nil {
				return nil, err
			}
			continue
		}
		out = append(out, &srvRequest{id: jr.ID, query: q, arrival: jr.Arrival, remaining: rem})
	}
	// Re-stamp the journal's fingerprint to the live collection, so the
	// next recovery compares against what this process actually served.
	if fp := eng.CollectionFingerprint(); st.Fingerprint != fp {
		if err := jn.DocAdded(fp); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// UplinkAddr is the bound uplink address.
func (s *Server) UplinkAddr() string { return s.upLn.Addr().String() }

// Epoch reports the durability journal's lineage ID (zero on an in-memory
// server). It survives restarts on the same state directory, so clients can
// tell a restarted server from a different one.
func (s *Server) Epoch() uint64 { return s.epoch }

// Generation reports the restart generation: 1 on a fresh state directory,
// +1 per recovery. Zero on an in-memory server.
func (s *Server) Generation() uint32 { return s.generation }

// RecoveredPending reports how many pending requests were restored from the
// journal at startup.
func (s *Server) RecoveredPending() int { return s.recovered }

// BroadcastAddr is the bound broadcast address (channel 0: the only stream
// on a single-channel server, the index channel otherwise).
func (s *Server) BroadcastAddr() string { return s.bcLns[0].Addr().String() }

// ChannelAddrs lists every channel's bound broadcast address in channel
// order: entry 0 is the index channel (same as BroadcastAddr), entries
// 1..K-1 the data channels. Single-channel servers return one address.
func (s *Server) ChannelAddrs() []string {
	out := make([]string, len(s.bcLns))
	for i, ln := range s.bcLns {
		out[i] = ln.Addr().String()
	}
	return out
}

// Channels reports the number of broadcast channels.
func (s *Server) Channels() int { return len(s.bcLns) }

// Cycles reports how many cycles have been broadcast.
func (s *Server) Cycles() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycles
}

// Pending reports the number of outstanding requests.
func (s *Server) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Stats snapshots the server's counters and the assembly engine's pipeline
// telemetry.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	st := ServerStats{
		Cycles:          s.cycles,
		Pending:         len(s.pending),
		Subscribers:     len(s.subs),
		RejectedRate:    s.rejectedRate.Load(),
		RejectedPending: s.rejectedPending.Load(),
	}
	s.mu.Unlock()
	st.Engine = s.eng.Metrics()
	st.Health = st.Engine.Health
	st.Epoch = s.epoch
	st.Generation = s.generation
	st.RecoveredPending = s.recovered
	return st
}

// Shutdown stops the server gracefully: the cycle loop finishes and flushes
// the in-flight cycle to every subscriber queue, uplink frames already being
// processed get their acks (new ones are refused with a retry-after reject,
// never a dropped connection mid-ack), the journal absorbs those final admit
// records and closes with a flushed, fsynced snapshot, then the listeners
// and every connection close. Safe to call more than once and from multiple
// goroutines; every call waits for the full teardown.
func (s *Server) Shutdown() {
	s.stopOnce.Do(func() {
		close(s.stop)
		// Let an in-flight broadcastCycle finish enqueueing its frames (and
		// its journal commit) before the subscriber queues are closed.
		<-s.loopDone
		// Drain the uplink: no new work is accepted, frames mid-processing
		// complete and write their acks. Their admit records land before
		// the journal closes below, so every acked submission is durable.
		s.draining.Store(true)
		s.upLn.Close()
		s.inflight.Wait()
		if s.jn != nil {
			s.jn.Close()
		}
		for _, ln := range s.bcLns {
			ln.Close()
		}
		s.mu.Lock()
		subs := make([]*subscriber, 0, len(s.subs))
		for sub := range s.subs {
			subs = append(subs, sub)
		}
		uplinks := make([]net.Conn, 0, len(s.uplinks))
		for c := range s.uplinks {
			uplinks = append(uplinks, c)
		}
		s.mu.Unlock()
		for _, sub := range subs {
			sub.finish()
		}
		for _, c := range uplinks {
			c.Close()
		}
	})
	<-s.done
}

// Kill is the crash-test teardown: the SIGKILL equivalent of Shutdown. The
// journal dies first — in place, with no final snapshot, flush or fsync —
// freezing durable state at exactly what prior appends already pushed to the
// OS, then the goroutines and connections are torn down so tests do not leak
// them. A server restarted on the same StateDir recovers what a machine
// losing this process would have recovered. Safe to call more than once.
func (s *Server) Kill() {
	s.stopOnce.Do(func() {
		if s.jn != nil {
			s.jn.Kill()
		}
		s.draining.Store(true)
		close(s.stop)
		<-s.loopDone
		s.upLn.Close()
		for _, ln := range s.bcLns {
			ln.Close()
		}
		s.mu.Lock()
		subs := make([]*subscriber, 0, len(s.subs))
		for sub := range s.subs {
			subs = append(subs, sub)
		}
		uplinks := make([]net.Conn, 0, len(s.uplinks))
		for c := range s.uplinks {
			uplinks = append(uplinks, c)
		}
		s.mu.Unlock()
		for _, sub := range subs {
			sub.finish()
		}
		for _, c := range uplinks {
			c.Close()
		}
	})
	<-s.done
}

// Crash simulates the process dying from inside the assembly pipeline — the
// entry point a chaos.Crasher probe calls on the cycle-loop goroutine. The
// journal is killed synchronously at the call site, freezing durable state
// at exactly what prior appends pushed to the OS (the in-flight cycle's
// commit fails and is lost, as a real kill would lose it), while the rest of
// the teardown runs asynchronously: Kill waits on the cycle loop, which may
// be the very goroutine calling Crash. Safe to call more than once; callers
// that need the teardown complete follow with Kill, which waits.
func (s *Server) Crash() {
	if s.jn != nil {
		s.jn.Kill()
	}
	go s.Kill()
}

// CrashJournalAfter arms a torn-write crash: the journal accepts n more
// bytes of appended records and then dies mid-frame, leaving a torn record
// tail on disk exactly as a process killed mid-write would. The append that
// exceeds the budget fails, so the submission or cycle commit riding it is
// refused and the cycle loop stops; callers follow with Kill and restart a
// server on the same StateDir to exercise recovery's tail truncation.
// No-op on an in-memory server.
func (s *Server) CrashJournalAfter(n int64) {
	if s.jn != nil {
		s.jn.CrashAfter(n)
	}
}

// acceptUplink serves request submissions.
func (s *Server) acceptUplink() {
	defer s.wg.Done()
	for {
		conn, err := s.upLn.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go s.serveUplink(conn)
	}
}

// tokenBucket is a per-uplink-connection rate limiter. Each query costs one
// token; tokens refill at rate per second up to burst. Used by a single
// goroutine, so no locking.
type tokenBucket struct {
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64, burst int, now time.Time) *tokenBucket {
	return &tokenBucket{rate: rate, burst: float64(burst), tokens: float64(burst), last: now}
}

// take spends one token if available and returns 0; otherwise it returns how
// long until the next token accrues (the retry-after hint).
func (b *tokenBucket) take(now time.Time) time.Duration {
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return 0
	}
	return time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
}

// serveUplink handles one uplink connection: QUERY frames in, ACK or REJECT
// frames out. An idle deadline reaps dead clients; a token bucket sheds
// per-connection floods without dropping the connection. The connection's
// first bytes are sniffed once: a transport hello switches it to the
// multiplexed loop (serveUplinkMux), anything else is served as the bare
// lockstep protocol, byte for byte.
func (s *Server) serveUplink(conn net.Conn) {
	defer s.wg.Done()
	s.mu.Lock()
	s.uplinks[conn] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.uplinks, conn)
		s.mu.Unlock()
		conn.Close()
	}()
	var bucket *tokenBucket
	if s.cfg.UplinkRate > 0 {
		bucket = newTokenBucket(s.cfg.UplinkRate, s.cfg.UplinkBurst, s.clock.Now())
	}
	br := bufio.NewReaderSize(conn, downlinkBufSize)
	if s.cfg.UplinkIdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.UplinkIdleTimeout))
	}
	if p, err := br.Peek(4); err == nil && transport.IsHelloPrefix(p) {
		s.serveUplinkMux(conn, br, bucket)
		return
	}
	for {
		if s.cfg.UplinkIdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.UplinkIdleTimeout))
		}
		t, payload, err := readFrame(br)
		if err != nil {
			// Corrupt frame, idle timeout or disconnect: the uplink is a
			// lockstep request/ack protocol, so drop the connection and let
			// the client redial rather than guess at framing.
			return
		}
		// The frame is in flight from here: Shutdown waits for its response
		// (and any journal append) before closing the journal and the
		// connections. A frame that arrives once the drain has started is
		// refused with a retry-after hint instead of a dropped connection.
		s.inflight.Add(1)
		if s.draining.Load() {
			_ = conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
			_ = writeFrame(conn, FrameReject, encodeReject(s.cfg.CycleInterval, "server shutting down"))
			s.inflight.Done()
			return
		}
		out, drop := s.uplinkRespond(t, payload, bucket)
		_ = conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		err = writeFrame(conn, out.t, out.payload)
		s.inflight.Done()
		if err != nil || drop {
			return
		}
		_ = conn.SetWriteDeadline(time.Time{})
	}
}

// uplinkRespond computes the response to one uplink frame — shared by the
// bare and multiplexed loops, so admission control, journaling and resume
// semantics are identical regardless of framing. drop reports a protocol
// violation: the response is still written, then the connection dies.
func (s *Server) uplinkRespond(t FrameType, payload []byte, bucket *tokenBucket) (out outFrame, drop bool) {
	switch t {
	case FrameResume:
		ids, derr := decodeResume(payload)
		if derr != nil {
			return outFrame{t: FrameAck, payload: []byte("err: " + derr.Error())}, false
		}
		ack, aerr := encodeResumeAck(s.epoch, s.generation, s.resumeEntries(ids))
		if aerr != nil {
			return outFrame{t: FrameAck, payload: []byte("err: " + aerr.Error())}, false
		}
		return outFrame{t: FrameResumeAck, payload: ack}, false
	case FrameQuery:
		if bucket != nil {
			if s.adaptive != nil {
				// The controller retunes the sustained rate; the burst
				// capacity stays as configured.
				bucket.rate = s.adaptive.UplinkRate()
			}
			if wait := bucket.take(s.clock.Now()); wait > 0 {
				s.rejectedRate.Add(1)
				return outFrame{t: FrameReject, payload: encodeReject(wait, "rate limited")}, false
			}
		}
		covered, id, err := s.submit(string(payload))
		switch {
		case err == nil:
			// The ack names the covering cycle and the durable request ID
			// the client presents on session resume.
			return outFrame{t: FrameAck, payload: []byte(fmt.Sprintf("ok:%d:%d", covered, id))}, false
		case errors.Is(err, engine.ErrOverload):
			s.rejectedPending.Add(1)
			// The cap frees up as cycles retire requests, so the next cycle
			// boundary is the natural retry point: the configured interval,
			// or the controller's measured cycle latency when one is running
			// (under load cycles retire slower than the interval promises).
			retry := s.cfg.CycleInterval
			if s.adaptive != nil {
				if ra := s.adaptive.RetryAfter(); ra > 0 {
					retry = ra
				}
			}
			return outFrame{t: FrameReject, payload: encodeReject(retry, "pending set full")}, false
		default:
			return outFrame{t: FrameAck, payload: []byte("err: " + err.Error())}, false
		}
	default:
		return outFrame{t: FrameAck, payload: []byte("err: unexpected frame")}, true
	}
}

// serveUplinkMux is the multiplexed uplink loop: one TCP connection carries
// many logical clients, each tagged by a varint stream ID on its transport
// frames. The server grants the client's hello (compression only if the
// server enables it too), then answers each inner frame on its own stream.
// Responses batch in a buffered writer that flushes whenever the read side
// would block, so fan-in throughput scales with pipelining depth while a
// lone query still acks promptly.
func (s *Server) serveUplinkMux(conn net.Conn, br *bufio.Reader, bucket *tokenBucket) {
	h, err := transport.ReadHello(br)
	if err != nil {
		return
	}
	grant := transport.Hello{
		Compress: h.Compress && s.cfg.Compress,
		Mux:      h.Mux,
		Credit:   uint32(s.cfg.MuxCredit),
	}
	_ = conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
	if err := transport.WriteHello(conn, grant); err != nil {
		return
	}
	_ = conn.SetWriteDeadline(time.Time{})
	tr := transport.NewReaderFromBufio(br)
	enc := transport.NewEncoder(grant.Compress, 0)
	bw := bufio.NewWriterSize(conn, downlinkBufSize)
	respond := func(stream int64, out outFrame) error {
		inner, err := appendFrame(nil, out.t, out.payload)
		if err != nil {
			return err
		}
		env, err := enc.Encode(stream, inner)
		if err != nil {
			return err
		}
		_ = conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		if _, err := bw.Write(env); err != nil {
			return err
		}
		if br.Buffered() == 0 {
			// Nothing more to read without blocking: put the batched
			// responses on the wire before waiting.
			if err := bw.Flush(); err != nil {
				return err
			}
		}
		_ = conn.SetWriteDeadline(time.Time{})
		return nil
	}
	for {
		if s.cfg.UplinkIdleTimeout > 0 {
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.UplinkIdleTimeout))
		}
		fr, err := tr.Next()
		if err != nil {
			// The mux uplink stays drop-and-redial like the bare protocol:
			// corruption here means the client side is broken (TCP already
			// ordered the bytes), so guessing at framing buys nothing.
			return
		}
		t, payload, derr := decodeInner(fr.Inner)
		if derr != nil {
			return
		}
		s.inflight.Add(1)
		if s.draining.Load() {
			_ = respond(fr.Stream, outFrame{t: FrameReject, payload: encodeReject(s.cfg.CycleInterval, "server shutting down")})
			_ = bw.Flush()
			s.inflight.Done()
			return
		}
		out, drop := s.uplinkRespond(t, payload, bucket)
		err = respond(fr.Stream, out)
		s.inflight.Done()
		if err != nil {
			return
		}
		if drop {
			_ = bw.Flush()
			return
		}
	}
}

// resumeEntries answers one session-resume handshake: for every presented
// request ID, whether it is still pending (no resubmit needed; detail names
// the next cycle, which covers every pending request), was served within the
// journal's horizon (detail names the retiring cycle), or must be
// resubmitted.
func (s *Server) resumeEntries(ids []int64) []resumeEntry {
	s.mu.Lock()
	pending := make(map[int64]struct{}, len(s.pending))
	for _, r := range s.pending {
		pending[r.id] = struct{}{}
	}
	next := s.cycles
	s.mu.Unlock()
	entries := make([]resumeEntry, 0, len(ids))
	for _, id := range ids {
		e := resumeEntry{ID: id, Status: ResumeResubmit}
		if _, ok := pending[id]; ok {
			e.Status, e.Detail = ResumeResumed, next
		} else if s.jn != nil {
			if cyc, ok := s.jn.Served(id); ok {
				e.Status, e.Detail = ResumeServed, cyc
			}
		}
		entries = append(entries, e)
	}
	return entries
}

// submit registers one query, resolving its result set server-side, and
// returns the number of the first broadcast cycle whose index is guaranteed
// to cover it plus the request's durable ID. With Limits.MaxPending set, a
// submission that would grow the pending set past the cap is refused with a
// wrapped engine.ErrOverload — checked before resolution so floods cannot
// buy NFA work, and re-checked at the append because the set may have grown
// while resolving. On a journaled server the admit record is durably
// appended before submit returns, so the caller's ack never outruns the
// journal: a crash after the ack recovers the request.
func (s *Server) submit(expr string) (int64, int64, error) {
	if err := s.admit(); err != nil {
		return 0, 0, err
	}
	q, err := xpath.Parse(strings.TrimSpace(expr))
	if err != nil {
		return 0, 0, err
	}
	// The engine memoizes answers per canonical query string, so repeated
	// submissions of popular queries never rescan the collection.
	docs, err := s.eng.Resolve(q)
	if err != nil {
		return 0, 0, err
	}
	if len(docs) == 0 {
		return 0, 0, errors.New("query has an empty result set")
	}
	rem := make(map[xmldoc.DocID]struct{}, len(docs))
	for _, d := range docs {
		rem[d] = struct{}{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if max := s.maxPending(); max > 0 && len(s.pending) >= max {
		return 0, 0, fmt.Errorf("netcast: pending set at MaxPending %d: %w", max, engine.ErrOverload)
	}
	id := s.nextID + 1
	if s.jn != nil {
		// Journaling under mu keeps the log's admit order identical to ID
		// order; the fsync cost (when configured) is the price of the
		// ack-after-durability guarantee.
		jrem := make([]uint16, 0, len(docs))
		for _, d := range docs {
			jrem = append(jrem, uint16(d))
		}
		if err := s.jn.Admit(journal.Request{ID: id, Arrival: s.cycles, Query: q.String(), Remaining: jrem}); err != nil {
			return 0, 0, err
		}
	}
	s.nextID = id
	s.pending = append(s.pending, &srvRequest{id: id, query: q, arrival: s.cycles, remaining: rem})
	// The next snapshot (cycle number s.cycles) will include this request.
	return s.cycles, id, nil
}

// maxPending is the live pending-set cap: the adaptive controller's value
// when one is running, the static Limits.MaxPending otherwise.
func (s *Server) maxPending() int {
	if s.adaptive != nil {
		return s.adaptive.MaxPending()
	}
	return s.cfg.Limits.MaxPending
}

// admit is the cheap pre-resolution admission check against the pending cap.
func (s *Server) admit() error {
	max := s.maxPending()
	if max <= 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) >= max {
		return fmt.Errorf("netcast: pending set at MaxPending %d: %w", max, engine.ErrOverload)
	}
	return nil
}

// acceptSubscribers registers broadcast listeners on one channel's listener,
// each with its own buffered writer goroutine.
func (s *Server) acceptSubscribers(ln net.Listener, channel int) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		sub := &subscriber{conn: conn, ch: make(chan outFrame, s.cfg.SubscriberQueue), channel: channel}
		s.mu.Lock()
		s.subs[sub] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go s.serveSubscriber(sub)
	}
}

// serveSubscriber drains one subscriber's frame queue onto its connection.
// It exits when the queue is closed (drop or shutdown) or a write fails,
// flushing whatever was buffered.
func (s *Server) serveSubscriber(sub *subscriber) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.subs, sub)
		s.mu.Unlock()
		sub.conn.Close()
	}()
	bw := bufio.NewWriterSize(sub.conn, 64<<10)
	if s.downHello != nil {
		_ = sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		if _, err := bw.Write(s.downHello); err != nil {
			return
		}
	}
	for f := range sub.ch {
		_ = sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
		if f.wire != nil {
			if _, err := bw.Write(f.wire); err != nil {
				return
			}
		} else if err := writeFrame(bw, f.t, f.payload); err != nil {
			return
		}
		if len(sub.ch) == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
	_ = sub.conn.SetWriteDeadline(time.Now().Add(subWriteTimeout))
	_ = bw.Flush()
}

// cycleLoop emits one broadcast cycle per interval whenever requests are
// pending.
func (s *Server) cycleLoop() {
	defer s.wg.Done()
	defer close(s.loopDone)
	ticker := time.NewTicker(s.cfg.CycleInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			if err := s.broadcastCycle(); err != nil {
				// Cycle assembly failures are fatal design errors; surface
				// by stopping the loop (subscribers observe EOF).
				return
			}
		}
	}
}

// broadcastCycle plans, encodes and fans out one cycle through the shared
// assembly engine.
func (s *Server) broadcastCycle() error {
	s.mu.Lock()
	if len(s.pending) == 0 {
		s.mu.Unlock()
		return nil
	}
	snapshot := append([]*srvRequest(nil), s.pending...)
	pending := make([]engine.Pending, 0, len(snapshot))
	for _, r := range snapshot {
		rem := make([]xmldoc.DocID, 0, len(r.remaining))
		for d := range r.remaining {
			rem = append(rem, d)
		}
		pending = append(pending, engine.Pending{ID: r.id, Query: r.query, Arrival: r.arrival, Remaining: rem})
	}
	// The cycle number is claimed under the same lock that snapshots the
	// pending set, so a submission observing cycles == k is guaranteed to
	// be covered by the snapshot of cycle k.
	num := s.cycles
	s.cycles++
	s.mu.Unlock()

	// The server's clock is the cycle number: arrivals are stamped with it,
	// and the scheduler's "now" follows the same unit.
	cy, err := s.eng.AssembleCycle(num, num, pending)
	if err != nil {
		return err
	}
	enc, err := s.eng.EncodeCycle(cy)
	if err != nil {
		return err
	}
	catBytes, err := cy.Catalog.Encode()
	if err != nil {
		return err
	}
	head := &cycleHead{
		Number:     uint32(num),
		TwoTier:    s.cfg.Mode == broadcast.TwoTierMode,
		Succinct:   cy.Encoding == core.EncodingSuccinct,
		NumDocs:    uint16(len(cy.Docs)),
		Catalog:    catBytes,
		RootLabels: wire.RootLabels(cy.Index),
	}
	headBytes, err := head.encode()
	if err != nil {
		return err
	}

	// The encoded segments are retained by subscriber queues, so they are
	// never recycled here; the GC reclaims them once every writer is done.
	if len(cy.Channels) > 1 {
		// Multichannel cycle (protocol v3): each channel's share opens with
		// a channel head. Channel 0 carries the cycle head, channel
		// directory and first tier; data channel c carries its second-tier
		// stripe and its documents in stripe order.
		k := uint8(len(cy.Channels))
		ch0 := &channelHead{Number: uint32(num), Channel: 0, Channels: k,
			Role: channelRoleIndex, NumDocs: uint16(len(cy.Docs))}
		s.fanOut(0, FrameChannelHead, ch0.encode())
		s.fanOut(0, FrameCycleHead, headBytes)
		s.fanOut(0, FrameChannelDir, enc.ChannelDir)
		s.fanOut(0, FrameIndex, enc.Index)
		// enc.Docs is in aggregate plan order (cy.Docs order); map IDs back
		// to payloads so each stripe fans out in its own channel order.
		byID := make(map[xmldoc.DocID][]byte, len(cy.Docs))
		for i, p := range cy.Docs {
			byID[p.ID] = enc.Docs[i]
		}
		for c := 1; c < len(cy.Channels); c++ {
			lay := cy.Channels[c]
			chc := &channelHead{Number: uint32(num), Channel: uint8(c), Channels: k,
				Role: channelRoleData, NumDocs: uint16(len(lay.Docs))}
			s.fanOut(c, FrameChannelHead, chc.encode())
			s.fanOut(c, FrameSecondTier, enc.SecondTiers[c-1])
			for _, p := range lay.Docs {
				s.fanOut(c, FrameDoc, byID[p.ID])
			}
		}
	} else {
		s.fanOut(0, FrameCycleHead, headBytes)
		s.fanOut(0, FrameIndex, enc.Index)
		if enc.SecondTier != nil {
			s.fanOut(0, FrameSecondTier, enc.SecondTier)
		}
		for _, payload := range enc.Docs {
			s.fanOut(0, FrameDoc, payload)
		}
	}

	// Mark deliveries on the snapshotted requests only (requests submitted
	// mid-cycle did not have their documents announced in this index) and
	// retire completed ones. On a journaled server the whole cycle commits
	// as one record — per-request deliveries, retirements and the cycle
	// counter advance — so recovery resumes at cycle num+1 with exactly
	// this pending set; a crash before the commit re-airs cycle num from
	// the unchanged durable state instead.
	s.mu.Lock()
	inSnapshot := make(map[int64]struct{}, len(snapshot))
	for _, r := range snapshot {
		inSnapshot[r.id] = struct{}{}
	}
	var live []*srvRequest
	var deliveries []journal.Delivery
	for _, r := range s.pending {
		if _, ok := inSnapshot[r.id]; ok {
			// Multichannel cycles retire only what a single-tuner client
			// could actually have received (the Receivable commitment); the
			// rest stays pending and is rescheduled. The request's admission
			// cycle is its first covering cycle, where the client is still
			// reading the first tier.
			recv := cy.Receivable(r.remaining, num == r.arrival)
			for _, p := range recv {
				delete(r.remaining, p.ID)
			}
			if s.jn != nil && len(recv) > 0 {
				d := journal.Delivery{ID: r.id, Docs: make([]uint16, 0, len(recv)), Retired: len(r.remaining) == 0}
				for _, p := range recv {
					d.Docs = append(d.Docs, uint16(p.ID))
				}
				deliveries = append(deliveries, d)
			}
		}
		if len(r.remaining) > 0 {
			live = append(live, r)
		}
	}
	s.pending = live
	if s.jn != nil {
		if err := s.jn.Commit(num, deliveries); err != nil {
			s.mu.Unlock()
			return err
		}
	}
	s.mu.Unlock()
	return nil
}

// fanOut enqueues one frame to every subscriber of one channel. A subscriber
// whose queue is full has stalled past what its buffer and write deadline
// absorb; it is dropped so the broadcast never blocks on one receiver.
func (s *Server) fanOut(channel int, t FrameType, payload []byte) {
	var wireBytes []byte
	if s.downEnc != nil {
		// Compress once; every subscriber gets the identical envelope.
		inner, err := appendFrame(make([]byte, 0, len(payload)+frameHdrLen+frameCRCLen), t, payload)
		if err == nil {
			wireBytes, err = s.downEnc.Encode(transport.NoStream, inner)
		}
		if err != nil {
			return // payload exceeds the frame limit; unreachable by construction
		}
	}
	s.mu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		if sub.channel == channel {
			subs = append(subs, sub)
		}
	}
	s.mu.Unlock()
	for _, sub := range subs {
		select {
		case sub.ch <- outFrame{t: t, payload: payload, wire: wireBytes}:
		default:
			s.mu.Lock()
			delete(s.subs, sub)
			s.mu.Unlock()
			sub.finish()
			// Unblock a writer stuck mid-write; its deferred cleanup
			// tolerates the double Close.
			sub.conn.Close()
		}
	}
}

// AddDocument admits a new document to the live collection; it becomes
// visible to queries and schedulable from the next cycle. The engine
// invalidates its answer cache; a journaled server records the grown
// collection's fingerprint so recovery can detect drift.
func (s *Server) AddDocument(d *xmldoc.Document) error {
	if err := s.eng.AddDocument(d); err != nil {
		return err
	}
	if s.jn != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.jn.DocAdded(s.eng.CollectionFingerprint())
	}
	return nil
}

// RemoveDocument retires a document from the live collection. Pending
// requests lose the document from their remaining sets; requests thereby
// satisfied are retired. A journaled server records the removal, whose
// replay shrinks recovered remaining sets the same way.
func (s *Server) RemoveDocument(id xmldoc.DocID) error {
	if err := s.eng.RemoveDocument(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var live []*srvRequest
	for _, r := range s.pending {
		delete(r.remaining, id)
		if len(r.remaining) > 0 {
			live = append(live, r)
		}
	}
	s.pending = live
	if s.jn != nil {
		return s.jn.DocRemoved(uint16(id), s.eng.CollectionFingerprint())
	}
	return nil
}

// NumDocs reports the current collection size.
func (s *Server) NumDocs() int {
	return s.eng.NumDocs()
}
