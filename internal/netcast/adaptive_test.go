package netcast

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/netcast/chaos"
	"repro/internal/xpath"
)

// TestAdaptiveFloodE2E is the controller's chaos acceptance test: with an
// impossible build budget every cycle degrades, so the controller must shed
// the seeded limits multiplicatively while a flood hammers admission — and a
// concurrent legitimate client, admitted before the flood, still retrieves
// byte-correct results. The heap stays inside a fixed envelope throughout.
func TestAdaptiveFloodE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("flood test takes ~2s")
	}
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: 3 * coll.TotalSize() / coll.Len(),
		CycleInterval: 5 * time.Millisecond,
		Limits: engine.Limits{
			MaxPending:            32,
			MaxAnswerCacheEntries: 16,
			MaxPayloadCacheBytes:  64 << 10,
			BuildBudget:           time.Nanosecond, // every cycle degrades
		},
		Adaptive: true,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	legit, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial legit: %v", err)
	}
	defer legit.Close()
	q := xpath.MustParse("/nitf/body/body.content/block")
	want := q.MatchingDocs(coll)
	if len(want) == 0 {
		t.Fatal("legit query matches nothing")
	}
	if err := legit.Submit(q); err != nil {
		t.Fatalf("Submit legit: %v", err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	pool := []string{"/nitf/head/title", "/nitf//p", "/nitf/body/body.content/block", "/nitf/head"}
	ctx, cancel := context.WithTimeout(context.Background(), 1500*time.Millisecond)
	defer cancel()
	floodClients := make([]*Client, 4)
	for i := range floodClients {
		floodClients[i], err = Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
		if err != nil {
			t.Fatalf("Dial flood %d: %v", i, err)
		}
		defer floodClients[i].Close()
	}
	floodDone := make(chan chaos.FloodStats, 1)
	go func() {
		floodDone <- chaos.Flood(ctx, len(floodClients), 0,
			func(worker, seq int) error {
				cl := floodClients[worker]
				if seq%2 == 0 {
					return cl.Submit(xpath.MustParse(pool[seq/2%len(pool)]))
				}
				return cl.Submit(xpath.MustParse(fmt.Sprintf("/nitf/zzz%d_%d/x", worker, seq)))
			},
			func(err error) bool { return errors.Is(err, engine.ErrOverload) })
	}()

	// The legit retrieval proceeds mid-flood over degraded (unpruned) cycles.
	rctx, rcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer rcancel()
	docs, _, err := legit.Retrieve(rctx, q)
	if err != nil {
		t.Fatalf("Retrieve during flood: %v", err)
	}
	if len(docs) != len(want) {
		t.Fatalf("retrieved %d docs, want %d", len(docs), len(want))
	}
	for i, d := range docs {
		if d.ID != want[i] || !bytes.Equal(d.Marshal(), coll.ByID(want[i]).Marshal()) {
			t.Errorf("doc %d corrupted during flood", d.ID)
		}
	}

	flood := <-floodDone
	st := srv.Stats()
	t.Logf("flood: %+v", flood)
	t.Logf("server: health=%s rejectedPending=%d rejectedRate=%d engine{%s}",
		st.Health, st.RejectedPending, st.RejectedRate, st.Engine)

	if flood.Rejected == 0 || st.RejectedPending == 0 {
		t.Errorf("flood drove no admission rejections: flood=%+v stats=%+v", flood, st)
	}
	if st.Engine.DegradedCycles == 0 {
		t.Error("impossible build budget produced no degraded cycles")
	}
	// The controller converged: limits shed below the seeds, health left
	// Healthy, and the pending set stayed bounded by the (shrinking) cap.
	ad := st.Engine.Adaptive
	if ad == nil {
		t.Fatal("ServerStats carries no adaptive state with Adaptive enabled")
	}
	if ad.Sheds == 0 {
		t.Error("sustained degraded cycles recorded no sheds")
	}
	if ad.MaxPending >= 32 {
		t.Errorf("MaxPending = %d, want shed below the 32 seed", ad.MaxPending)
	}
	if st.Health != engine.Shedding && st.Health != engine.Degraded {
		t.Errorf("health = %q, want shedding or degraded under flood", st.Health)
	}
	if st.Health != st.Engine.Health {
		t.Errorf("ServerStats.Health %q != Engine.Health %q", st.Health, st.Engine.Health)
	}
	if st.Pending > 32 {
		t.Errorf("pending set %d exceeds the 32-request seed cap", st.Pending)
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	const envelope = 64 << 20
	if grew := int64(after.HeapInuse) - int64(before.HeapInuse); grew > envelope {
		t.Errorf("heap grew %d bytes during flood, envelope %d", grew, envelope)
	}
}

// TestAdaptiveRecoveryE2E pins the other half of the loop: under light,
// well-behaved load the controller re-opens limits additively past the seed
// and reports Healthy.
func TestAdaptiveRecoveryE2E(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:    coll,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: coll.TotalSize(), // one cycle retires any request
		CycleInterval: 5 * time.Millisecond,
		Limits:        engine.Limits{MaxPending: 16},
		Adaptive:      true,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()

	// A trickle of submissions keeps cycles turning (the loop only assembles
	// while requests are pending); every cycle lands far under target, so
	// the controller grows the cap each control step.
	q := xpath.MustParse("/nitf/head/title")
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := srv.Stats()
		if ad := st.Engine.Adaptive; ad != nil && ad.MaxPending > 16 && st.Health == engine.Healthy && ad.Grows > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("limits never re-opened: health=%s adaptive=%+v", st.Health, st.Engine.Adaptive)
		}
		if err := cl.SubmitRetry(ctx, q); err != nil {
			t.Fatalf("SubmitRetry: %v", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
