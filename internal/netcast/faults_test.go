package netcast

import (
	"context"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/netcast/chaos"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestRetrieveUnderChaos is the fault-tolerance acceptance test: two
// clients retrieve through a proxy that flips bits (well over 1% of frames
// at these rates), drops bytes (truncation that desynchronises framing),
// and force-kills every live downlink twice. Both clients must still end up
// with exactly their result sets, reporting the recoveries in ClientStats.
func TestRetrieveUnderChaos(t *testing.T) {
	for _, mode := range []broadcast.Mode{broadcast.OneTierMode, broadcast.TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			coll, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 30, Seed: 77})
			if err != nil {
				t.Fatalf("Documents: %v", err)
			}
			// Roughly one document per cycle, so a full retrieval spans many
			// cycles and both forced disconnects land mid-retrieval.
			srv, err := StartServer(ServerConfig{
				Collection:    coll,
				Mode:          mode,
				CycleCapacity: coll.TotalSize() / coll.Len(),
				CycleInterval: 5 * time.Millisecond,
			})
			if err != nil {
				t.Fatalf("StartServer: %v", err)
			}
			defer srv.Shutdown()
			proxy, err := chaos.NewProxy(srv.BroadcastAddr(), chaos.Config{
				Seed:     1,
				FlipProb: 2e-4, // ~1 flip per 5 kB: most cycles corrupted somewhere
				DropProb: 2e-5, // occasional lost bytes: frames truncated, framing lost
			})
			if err != nil {
				t.Fatalf("NewProxy: %v", err)
			}
			defer proxy.Close()

			queries := []xpath.Path{
				xpath.MustParse("/nitf"), // every document: the longest retrieval
				xpath.MustParse("/nitf//p"),
			}
			clients := make([]*Client, len(queries))
			for i, q := range queries {
				cl, err := Dial(srv.UplinkAddr(), proxy.Addr(), core.SizeModel{})
				if err != nil {
					t.Fatalf("Dial client %d: %v", i, err)
				}
				defer cl.Close()
				if err := cl.Submit(q); err != nil {
					t.Fatalf("Submit client %d: %v", i, err)
				}
				clients[i] = cl
			}

			// Forced disconnect #1: every downlink dies before the first
			// frame is read, so each client's very first read must recover.
			if n := proxy.KillAll(); n != len(clients) {
				t.Fatalf("first KillAll hit %d links, want %d", n, len(clients))
			}

			// Generous deadline: at these fault rates most cycles are corrupted
			// somewhere, so a loaded machine (CI, parallel packages) can need
			// hundreds of 5 ms cycles to deliver every wanted document.
			ctx, cancel := context.WithTimeout(context.Background(), 180*time.Second)
			defer cancel()
			type outcome struct {
				ids   []xmldoc.DocID
				stats ClientStats
				err   error
			}
			results := make([]chan outcome, len(clients))
			for i := range clients {
				results[i] = make(chan outcome, 1)
				go func(cl *Client, q xpath.Path, ch chan<- outcome) {
					docs, stats, err := cl.Retrieve(ctx, q)
					ids := make([]xmldoc.DocID, len(docs))
					for j, d := range docs {
						ids[j] = d.ID
					}
					ch <- outcome{ids: ids, stats: stats, err: err}
				}(clients[i], queries[i], results[i])
			}

			// Forced disconnect #2: once every client has re-established its
			// downlink, kill them all again mid-retrieval.
			deadline := time.Now().Add(30 * time.Second)
			for proxy.LiveConns() < len(clients) {
				if time.Now().After(deadline) {
					t.Fatal("clients never reconnected after first kill")
				}
				time.Sleep(2 * time.Millisecond)
			}
			if proxy.KillAll() == 0 {
				t.Fatal("second KillAll found no live links")
			}

			for i, q := range queries {
				o := <-results[i]
				if o.err != nil {
					t.Fatalf("client %d Retrieve: %v (stats %+v)", i, o.err, o.stats)
				}
				if want := q.MatchingDocs(coll); !reflect.DeepEqual(o.ids, want) {
					t.Errorf("client %d retrieved %v, want %v", i, o.ids, want)
				}
				if o.stats.Reconnects < 2 {
					t.Errorf("client %d Reconnects = %d, want >= 2 (stats %+v)", i, o.stats.Reconnects, o.stats)
				}
				if o.stats.Resyncs < 1 {
					t.Errorf("client %d Resyncs = %d, want >= 1 (stats %+v)", i, o.stats.Resyncs, o.stats)
				}
				if o.stats.Cycles < 1 {
					t.Errorf("client %d stats = %+v", i, o.stats)
				}
			}
			if st := proxy.Stats(); st.BitFlips == 0 || st.Drops == 0 || st.Kills < 2 {
				t.Errorf("proxy injected too little chaos: %+v", st)
			}
		})
	}
}

// cycleFrames encodes one complete broadcast cycle the way the server does,
// returning the frame sequence (head, index[, second tier], docs).
func cycleFrames(t *testing.T, b *broadcast.Builder, mode broadcast.Mode, num int64, queries []xpath.Path, plan []xmldoc.DocID) []outFrame {
	t.Helper()
	cy, err := b.BuildCycle(num, 0, queries, plan)
	if err != nil {
		t.Fatalf("BuildCycle: %v", err)
	}
	indexSeg, stSeg, err := b.Encode(cy)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	catBytes, err := cy.Catalog.Encode()
	if err != nil {
		t.Fatalf("Catalog.Encode: %v", err)
	}
	head := &cycleHead{
		Number:     uint32(num),
		TwoTier:    mode == broadcast.TwoTierMode,
		NumDocs:    uint16(len(cy.Docs)),
		Catalog:    catBytes,
		RootLabels: wire.RootLabels(cy.Index),
	}
	headBytes, err := head.encode()
	if err != nil {
		t.Fatalf("head.encode: %v", err)
	}
	frames := []outFrame{{t: FrameCycleHead, payload: headBytes}, {t: FrameIndex, payload: indexSeg}}
	if stSeg != nil {
		frames = append(frames, outFrame{t: FrameSecondTier, payload: stSeg})
	}
	for _, p := range cy.Docs {
		doc := b.DocByID(p.ID)
		payload := make([]byte, 2, 2+doc.Size())
		payload[0] = byte(p.ID)
		payload[1] = byte(p.ID >> 8)
		payload = append(payload, doc.Marshal()...)
		frames = append(frames, outFrame{t: FrameDoc, payload: payload})
	}
	return frames
}

// pipeClient builds a downlink-only client fed by a synthetic frame stream.
// The writer loops the given frame schedule until the client hangs up.
func pipeClient(t *testing.T, prelude, cycle []outFrame) *Client {
	t.Helper()
	srvEnd, cliEnd := net.Pipe()
	t.Cleanup(func() { srvEnd.Close(); cliEnd.Close() })
	go func() {
		for _, f := range prelude {
			if writeFrame(srvEnd, f.t, f.payload) != nil {
				return
			}
		}
		for {
			for _, f := range cycle {
				if writeFrame(srvEnd, f.t, f.payload) != nil {
					return
				}
			}
		}
	}()
	return &Client{model: core.DefaultSizeModel(), down: cliEnd, dl: newFrameSource(cliEnd)}
}

// TestMidStreamJoin: a client whose subscription starts between a cycle
// head and its document frames (it sees index, second-tier and doc frames
// with no preceding head) must doze to the next cycle head and still
// retrieve correctly — the !inCycle arms of the access protocol.
func TestMidStreamJoin(t *testing.T) {
	for _, mode := range []broadcast.Mode{broadcast.OneTierMode, broadcast.TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			coll := testCollection(t)
			b, err := broadcast.NewBuilder(coll, core.DefaultSizeModel(), mode)
			if err != nil {
				t.Fatalf("NewBuilder: %v", err)
			}
			q := xpath.MustParse("/nitf/body/body.content/block")
			want := q.MatchingDocs(coll)
			if len(want) == 0 {
				t.Fatal("test query matches nothing")
			}
			full := cycleFrames(t, b, mode, 0, []xpath.Path{q}, want)
			// The join point is mid-cycle: everything after the head.
			tail := full[1:]

			cl := pipeClient(t, tail, full)
			ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
			defer cancel()
			docs, stats, err := cl.Retrieve(ctx, q)
			if err != nil {
				t.Fatalf("Retrieve: %v (stats %+v)", err, stats)
			}
			ids := make([]xmldoc.DocID, len(docs))
			for i, d := range docs {
				ids[i] = d.ID
			}
			if !reflect.DeepEqual(ids, want) {
				t.Errorf("retrieved %v, want %v", ids, want)
			}
			if stats.DozeBytes == 0 {
				t.Error("mid-cycle frames before the first head were not dozed")
			}
			if stats.Resyncs != 0 || stats.Reconnects != 0 {
				t.Errorf("clean join counted recoveries: %+v", stats)
			}
		})
	}
}

// TestZeroRemainingReturnsImmediately: when the decoded index shows the
// query has nothing left to fetch, Retrieve must return right away instead
// of spinning on document frames until the context deadline.
func TestZeroRemainingReturnsImmediately(t *testing.T) {
	coll := testCollection(t)
	b, err := broadcast.NewBuilder(coll, core.DefaultSizeModel(), broadcast.TwoTierMode)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	// The cycle's index covers a different query, so navigating ours finds
	// no documents: remaining is empty as soon as the index decodes.
	other := xpath.MustParse("/nitf/head/title")
	full := cycleFrames(t, b, broadcast.TwoTierMode, 0, []xpath.Path{other}, other.MatchingDocs(coll))

	cl := pipeClient(t, nil, full)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	start := time.Now()
	docs, stats, err := cl.Retrieve(ctx, xpath.MustParse("/nitf/body/absent"))
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if len(docs) != 0 {
		t.Errorf("retrieved %d docs, want 0", len(docs))
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("zero-result retrieve took %v — hung until the deadline", elapsed)
	}
	if stats.Cycles != 1 {
		t.Errorf("stats = %+v, want exactly one cycle listened", stats)
	}
}

// TestSubmitTimesOutOnStalledServer: a server that accepts the query but
// never acks must not hang Submit forever.
func TestSubmitTimesOutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(io.Discard, conn) // swallow the query, never ack
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	cl := &Client{up: conn, AckTimeout: 200 * time.Millisecond}
	start := time.Now()
	if err := cl.Submit(xpath.MustParse("/nitf")); err == nil {
		t.Fatal("Submit succeeded against a mute server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("Submit took %v to fail, want ~200ms", elapsed)
	}
}

// TestServerDropsStalledSubscriber: a subscriber that never reads must be
// dropped once its queue overflows — without stalling an active client,
// which previously shared the stalled connection's 2 s write deadline on
// every frame.
func TestServerDropsStalledSubscriber(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:      coll,
		CycleCapacity:   3 * coll.TotalSize() / coll.Len(),
		CycleInterval:   2 * time.Millisecond,
		SubscriberQueue: 32, // small queue so the stall is detected quickly
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()

	// The stalled subscriber: subscribes, never reads a byte.
	stalled, err := net.Dial("tcp", srv.BroadcastAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close()

	// A live client must still retrieve at full speed.
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/body/body.content/block")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve alongside stalled subscriber: %v", err)
	}
	ids := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		ids[i] = d.ID
	}
	if want := q.MatchingDocs(coll); !reflect.DeepEqual(ids, want) {
		t.Errorf("retrieved %v, want %v", ids, want)
	}

	// Keep cycles flowing until the server gives up on the stalled
	// subscriber: its connection must be closed (queue overflow or write
	// deadline), observed as a read error once the buffered bytes drain.
	feederStop := make(chan struct{})
	feederDone := make(chan struct{})
	defer func() { close(feederStop); <-feederDone }()
	go func() {
		defer close(feederDone)
		for {
			select {
			case <-feederStop:
				return
			default:
			}
			if cl.Submit(q) != nil {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Detected by write probes: once the server closes the connection (with
	// unread data queued, so a reset, not a graceful FIN), writes fail.
	// Reading would un-stall the subscriber and defeat the test.
	deadline := time.Now().Add(25 * time.Second)
	for time.Now().Before(deadline) {
		if _, err := stalled.Write([]byte{0}); err != nil {
			return // dropped, as required
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("stalled subscriber was never dropped")
}

// TestUplinkIdleTimeout: a dead uplink connection is reaped instead of
// pinning a server goroutine forever.
func TestUplinkIdleTimeout(t *testing.T) {
	coll := testCollection(t)
	srv, err := StartServer(ServerConfig{
		Collection:        coll,
		CycleCapacity:     50_000,
		UplinkIdleTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("StartServer: %v", err)
	}
	defer srv.Shutdown()
	conn, err := net.Dial("tcp", srv.UplinkAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Say nothing; the server must hang up on us.
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle uplink was not closed")
	}
}
