package netcast

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// TestLiveCollectionUpdate publishes a brand-new document to a running
// server and checks a client can immediately query and retrieve it — the
// "fresh story hits the newsroom" flow.
func TestLiveCollectionUpdate(t *testing.T) {
	srv, coll := startServer(t, broadcast.TwoTierMode)

	fresh := xmldoc.NewDocument(5000, xmldoc.El("nitf",
		xmldoc.El("head", xmldoc.El("breaking", xmldoc.El("alert")))))
	if err := srv.AddDocument(fresh); err != nil {
		t.Fatalf("AddDocument: %v", err)
	}
	if srv.NumDocs() != coll.Len()+1 {
		t.Errorf("NumDocs = %d", srv.NumDocs())
	}

	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/head/breaking/alert")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	if len(docs) != 1 || docs[0].ID != 5000 {
		t.Fatalf("retrieved %v, want the fresh document", docs)
	}
	if docs[0].Root.Child("head").Child("breaking") == nil {
		t.Error("fresh document content mangled")
	}
}

// TestLiveRemovalRejectsQueries retires a document and checks queries only
// it satisfied are rejected afterwards.
func TestLiveRemovalRejectsQueries(t *testing.T) {
	srv, _ := startServer(t, broadcast.TwoTierMode)
	unique := xmldoc.NewDocument(6000, xmldoc.El("nitf",
		xmldoc.El("head", xmldoc.El("onlyhere"))))
	if err := srv.AddDocument(unique); err != nil {
		t.Fatalf("AddDocument: %v", err)
	}
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/head/onlyhere")
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit before removal: %v", err)
	}
	if err := srv.RemoveDocument(6000); err != nil {
		t.Fatalf("RemoveDocument: %v", err)
	}
	// The earlier pending request was satisfied-by-removal; the doc count
	// is back and a fresh submission is rejected as unsatisfiable.
	if err := cl.Submit(q); err == nil {
		t.Error("query for a removed document accepted")
	}
	if err := srv.RemoveDocument(6000); err == nil {
		t.Error("double removal succeeded")
	}
}

// TestLiveUpdateConsistency hammers add/query/remove cycles and checks the
// server's index always answers from the current collection.
func TestLiveUpdateConsistency(t *testing.T) {
	srv, _ := startServer(t, broadcast.TwoTierMode)
	cl, err := Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer cl.Close()
	q := xpath.MustParse("/nitf/head/rotating")
	var want []xmldoc.DocID
	for i := 0; i < 5; i++ {
		id := xmldoc.DocID(7000 + i)
		doc := xmldoc.NewDocument(id, xmldoc.El("nitf", xmldoc.El("head", xmldoc.El("rotating"))))
		if err := srv.AddDocument(doc); err != nil {
			t.Fatalf("AddDocument %d: %v", id, err)
		}
		want = append(want, id)
	}
	if err := cl.Submit(q); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	docs, _, err := cl.Retrieve(ctx, q)
	if err != nil {
		t.Fatalf("Retrieve: %v", err)
	}
	got := make([]xmldoc.DocID, len(docs))
	for i, d := range docs {
		got[i] = d.ID
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("retrieved %v, want %v", got, want)
	}
}
