package yfilter

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// fixture50x200 is the standard parallel-matching fixture: 50 NITF documents
// against 200 generated queries (the same shape as core's bench fixture).
func fixture50x200(tb testing.TB) (*xmldoc.Collection, []xpath.Path) {
	tb.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 50, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 200, MaxDepth: 5, WildcardProb: 0.1, Seed: 2})
	if err != nil {
		tb.Fatal(err)
	}
	return c, queries
}

func TestFilterParallelMatchesSerial(t *testing.T) {
	c, queries := fixture50x200(t)
	want := New(queries).Filter(c)
	for _, workers := range []int{0, 1, 2, 3, 4, 7, 16, 100} {
		got := New(queries).FilterParallel(c, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: FilterParallel diverges from Filter", workers)
		}
	}
	// A shared, already-warmed automaton must give the same answer too.
	f := New(queries)
	f.Filter(c)
	if got := f.FilterParallel(c, 4); !reflect.DeepEqual(got, want) {
		t.Error("FilterParallel on a warmed automaton diverges from Filter")
	}
}

// TestFilterParallelMergesWorkerMemos checks that steps discovered inside
// worker-private memos are folded back into the shared lazy DFA, so the next
// run (parallel or serial) starts warm instead of recomputing them.
func TestFilterParallelMergesWorkerMemos(t *testing.T) {
	c, queries := fixture50x200(t)
	f := New(queries)
	f.FilterParallel(c, 4)
	f.mu.RLock()
	warmed := len(f.dfa)
	f.mu.RUnlock()
	if warmed == 0 {
		t.Fatal("parallel run left the shared DFA memo empty")
	}
	// A fully warmed serial pass must not grow the memo further.
	f.Filter(c)
	f.mu.RLock()
	after := len(f.dfa)
	f.mu.RUnlock()
	if after != warmed {
		t.Errorf("serial pass after merge grew the memo %d → %d; merge-back is incomplete", warmed, after)
	}
}

// BenchmarkFilterSerial is the single-goroutine baseline on the 50-doc /
// 200-query fixture; BenchmarkFilterParallel is the acceptance benchmark for
// the engine's sharded matcher (target: ≥1.5× over serial at GOMAXPROCS ≥ 4;
// below 4 cores the per-worker goroutine and merge overhead can eat the win,
// so do not gate on boxes with fewer cores). Workers step through private DFA
// memos seeded from a snapshot and merged back after the join, so the
// parallel run holds no lock on the hot path.
func BenchmarkFilterSerial(b *testing.B) {
	c, queries := fixture50x200(b)
	f := New(queries)
	f.Filter(c) // warm the lazy-DFA memo so both benchmarks measure matching
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Filter(c)
	}
}

func BenchmarkFilterParallel(b *testing.B) {
	c, queries := fixture50x200(b)
	f := New(queries)
	f.Filter(c)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.FilterParallel(c, workers)
	}
}
