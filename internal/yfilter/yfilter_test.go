package yfilter

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dataguide"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func paperDocs(t *testing.T) *xmldoc.Collection {
	t.Helper()
	docs := []*xmldoc.Document{
		xmldoc.NewDocument(1, xmldoc.El("a", xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")))),
		xmldoc.NewDocument(2, xmldoc.El("a",
			xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")),
			xmldoc.El("c", xmldoc.El("b")))),
		xmldoc.NewDocument(3, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c"))),
		xmldoc.NewDocument(4, xmldoc.El("a", xmldoc.El("c", xmldoc.El("a")))),
		xmldoc.NewDocument(5, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c", xmldoc.El("a")))),
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return c
}

// TestFilterPaperQueryTable reproduces the answer table of Fig. 2(b),
// including the duplicated query q6 == q2.
func TestFilterPaperQueryTable(t *testing.T) {
	queries := []xpath.Path{
		xpath.MustParse("/a/b/a"), // q1
		xpath.MustParse("/a/c/a"), // q2
		xpath.MustParse("/a//c"),  // q3
		xpath.MustParse("/a/b"),   // q4
		xpath.MustParse("/a/c/*"), // q5
		xpath.MustParse("/a/c/a"), // q6 (duplicate of q2)
	}
	want := [][]xmldoc.DocID{
		{1, 2},
		{4, 5},
		{1, 2, 3, 4, 5},
		{1, 2, 3, 5},
		{2, 4, 5},
		{4, 5},
	}
	f := New(queries)
	got := f.Filter(paperDocs(t))
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Filter() = %v, want %v", got, want)
	}
}

func TestSharedPrefixesCompact(t *testing.T) {
	queries := []xpath.Path{
		xpath.MustParse("/a/b/c"),
		xpath.MustParse("/a/b/d"),
		xpath.MustParse("/a/b"),
	}
	f := New(queries)
	// states: 0(init) + a + b + c + d = 5; shared prefixes must not duplicate.
	if f.NumStates() != 5 {
		t.Errorf("NumStates() = %d, want 5", f.NumStates())
	}
	if f.NumQueries() != 3 {
		t.Errorf("NumQueries() = %d, want 3", f.NumQueries())
	}
}

func TestSteppingAPI(t *testing.T) {
	f := New([]xpath.Path{xpath.MustParse("/a//b")})
	s := f.Start()
	if s.Empty() {
		t.Fatal("Start() empty")
	}
	s = f.Step(s, "a")
	if got := f.Accepting(s); got != nil {
		t.Errorf("accepting after /a = %v, want none", got)
	}
	s2 := f.Step(s, "b")
	if got := f.Accepting(s2); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("accepting after /a/b = %v, want [0]", got)
	}
	s3 := f.Step(f.Step(s, "x"), "b")
	if got := f.Accepting(s3); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("accepting after /a/x/b = %v, want [0]", got)
	}
	dead := f.Step(f.Start(), "z")
	if !dead.Empty() {
		t.Error("stepping off the automaton should empty the set")
	}
	if !f.Step(dead, "a").Empty() {
		t.Error("empty set must absorb")
	}
}

func TestStepMemoisationStable(t *testing.T) {
	f := New([]xpath.Path{xpath.MustParse("/a/b"), xpath.MustParse("/a//c")})
	s := f.Start()
	first := f.Step(s, "a")
	second := f.Step(s, "a")
	if !reflect.DeepEqual(first, second) {
		t.Error("memoised step differs from first computation")
	}
}

func TestMatchGuideNodes(t *testing.T) {
	c := paperDocs(t)
	forest := dataguide.Merge(c)
	f := New([]xpath.Path{
		xpath.MustParse("/a/b"),
		xpath.MustParse("/a/b/c"),
	})
	gotMatches := make(map[string][]int)
	f.MatchGuideNodes(forest, func(n *dataguide.Guide, queries []int) {
		// Reconstruct the path by searching (test-only convenience).
		gotMatches[n.Label] = append([]int(nil), queries...)
	})
	// /a/b matches q0 (node label "b"), /a/b/c matches q1 (label "c").
	if !reflect.DeepEqual(gotMatches["b"], []int{0}) {
		t.Errorf("matches at b = %v, want [0]", gotMatches["b"])
	}
	if !reflect.DeepEqual(gotMatches["c"], []int{1}) {
		t.Errorf("matches at c = %v, want [1]", gotMatches["c"])
	}
	if _, ok := gotMatches["a"]; ok {
		t.Error("root should not match any query")
	}
}

func TestEmptyQuerySet(t *testing.T) {
	f := New(nil)
	if got := f.Filter(paperDocs(t)); len(got) != 0 {
		t.Errorf("Filter with no queries = %v, want empty", got)
	}
	s := f.Step(f.Start(), "a")
	if !s.Empty() {
		t.Error("no-query automaton should die after one step")
	}
}

// TestQuickFilterAgreesWithReferenceEvaluator is the differential test
// between the NFA filter and the naive xpath evaluator over random
// collections and random query pools.
func TestQuickFilterAgreesWithReferenceEvaluator(t *testing.T) {
	f := func(seed int64) bool {
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 5, Seed: seed, MaxDepth: 7})
		if err != nil {
			return false
		}
		queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 12, MaxDepth: 6, WildcardProb: 0.4, Seed: seed + 1})
		if err != nil {
			return false
		}
		filter := New(queries)
		got := filter.Filter(c)
		for qi, q := range queries {
			want := q.MatchingDocs(c)
			if !reflect.DeepEqual(got[qi], want) {
				t.Logf("query %s: nfa=%v reference=%v", q, got[qi], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickAcceptingMatchesMatchLabels checks that running the automaton
// down an arbitrary label path accepts exactly when the path matcher does.
func TestQuickAcceptingMatchesMatchLabels(t *testing.T) {
	labels := []string{"a", "b", "c"}
	f := func(seed int64) bool {
		r := newRand(seed)
		// Random query.
		var q xpath.Path
		steps := 1 + r.Intn(4)
		for i := 0; i < steps; i++ {
			axis := xpath.Child
			if r.Intn(3) == 0 {
				axis = xpath.Descendant
			}
			label := labels[r.Intn(len(labels))]
			if r.Intn(5) == 0 {
				label = xpath.Wildcard
			}
			q.Steps = append(q.Steps, xpath.Step{Axis: axis, Label: label})
		}
		filter := New([]xpath.Path{q})
		// Random label path.
		path := make([]string, 1+r.Intn(6))
		for i := range path {
			path[i] = labels[r.Intn(len(labels))]
		}
		s := filter.Start()
		for _, l := range path {
			s = filter.Step(s, l)
		}
		accepted := len(filter.Accepting(s)) > 0
		return accepted == q.MatchLabels(path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
