// Package yfilter implements an NFA-based multi-query filter for the simple
// XPath fragment, in the style of YFilter (Diao et al., TODS 2003): all
// pending queries are compiled into one shared-prefix automaton, which is
// then run over document structure to produce each query's matched-document
// list. The paper uses YFilter server-side for exactly this step.
//
// The automaton exposes a stepping API (Start/Step/Accepting) so that the
// same machine drives three consumers: document filtering here, CI-node
// matching for index pruning in package core, and client-side index
// navigation in the simulator.
package yfilter

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/dataguide"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// state is one NFA state.
type state struct {
	// byLabel are label-consuming transitions.
	byLabel map[string]int
	// star is the wildcard-consuming transition target, or -1.
	star int
	// desc is the ε-reachable descendant state (for `//` steps), or -1.
	// A descendant state loops on any label.
	desc int
	// selfLoop marks a descendant state, which stays active on any label.
	selfLoop bool
	// accept lists indices of queries accepting in this state.
	accept []int
}

// Filter is a compiled query set. The NFA is immutable after New; the lazy
// DFA memo is guarded by a read/write lock, so one Filter may be stepped
// from many goroutines at once. FilterParallel does not contend on that
// lock: each worker steps through a private stepper (a read-only snapshot of
// the memo plus a worker-local fresh map) and the fresh entries are merged
// back under one write lock after the workers join.
type Filter struct {
	states  []state
	queries []xpath.Path

	// dfa memoises subset-construction steps: key is the encoded state set
	// plus the consumed label. It is lazily filled under mu — read-mostly
	// once the reachable label alphabet has been seen.
	mu  sync.RWMutex
	dfa map[string]StateSet
}

// New compiles a query set into a shared NFA.
func New(queries []xpath.Path) *Filter {
	f := &Filter{
		queries: append([]xpath.Path(nil), queries...),
		dfa:     make(map[string]StateSet),
	}
	f.states = append(f.states, newState()) // state 0: initial
	for qi, q := range queries {
		cur := 0
		for _, step := range q.Steps {
			if step.Axis == xpath.Descendant {
				cur = f.descState(cur)
			}
			cur = f.consume(cur, step.Label)
		}
		f.states[cur].accept = append(f.states[cur].accept, qi)
	}
	return f
}

func newState() state {
	return state{byLabel: make(map[string]int), star: -1, desc: -1}
}

// descState returns (creating if needed) the ε-descendant state of s.
func (f *Filter) descState(s int) int {
	if f.states[s].desc >= 0 {
		return f.states[s].desc
	}
	id := len(f.states)
	ns := newState()
	ns.selfLoop = true
	f.states = append(f.states, ns)
	f.states[s].desc = id
	return id
}

// consume returns (creating if needed) the transition target of s on label.
func (f *Filter) consume(s int, label string) int {
	if label == xpath.Wildcard {
		if f.states[s].star >= 0 {
			return f.states[s].star
		}
		id := len(f.states)
		f.states = append(f.states, newState())
		f.states[s].star = id
		return id
	}
	if t, ok := f.states[s].byLabel[label]; ok {
		return t
	}
	id := len(f.states)
	f.states = append(f.states, newState())
	f.states[s].byLabel[label] = id
	return id
}

// NumQueries reports the number of compiled queries.
func (f *Filter) NumQueries() int { return len(f.queries) }

// NumStates reports the number of NFA states (a size diagnostic).
func (f *Filter) NumStates() int { return len(f.states) }

// Queries returns the compiled queries in index order. Callers must not
// mutate the result.
func (f *Filter) Queries() []xpath.Path { return f.queries }

// StateSet is a sorted, deduplicated set of active NFA states. The zero
// value is the empty set, which no Step can leave.
type StateSet struct {
	ids []int32
}

// Empty reports whether no state is active; once empty, a run can be
// abandoned.
func (s StateSet) Empty() bool { return len(s.ids) == 0 }

// appendKey serialises the set plus a consumed label into a memo key,
// appending to dst. Callers pass a stack-backed buffer and look the key
// up via string(dst), which Go maps resolve without allocating — so a
// memoised Step is allocation-free.
func (s StateSet) appendKey(dst []byte, label string) []byte {
	for _, id := range s.ids {
		dst = append(dst, byte(id), byte(id>>8), byte(id>>16))
	}
	dst = append(dst, 0)
	return append(dst, label...)
}

// keyBuf is the stack-allocated memo-key scratch; state sets deep enough
// to overflow it fall back to one heap buffer per step.
type keyBuf [96]byte

func (s StateSet) key(buf *keyBuf, label string) []byte {
	dst := buf[:0]
	if need := len(s.ids)*3 + 1 + len(label); need > len(buf) {
		dst = make([]byte, 0, need)
	}
	return s.appendKey(dst, label)
}

// Start returns the initial state set: the ε-closure of state 0.
func (f *Filter) Start() StateSet {
	return f.closure([]int32{0})
}

// closure adds ε-reachable descendant states and returns the normalised set.
func (f *Filter) closure(ids []int32) StateSet {
	seen := make(map[int32]struct{}, len(ids)*2)
	work := append([]int32(nil), ids...)
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		if _, ok := seen[id]; ok {
			continue
		}
		seen[id] = struct{}{}
		if d := f.states[id].desc; d >= 0 {
			work = append(work, int32(d))
		}
	}
	out := make([]int32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return StateSet{ids: out}
}

// Step consumes one element label and returns the next state set. Results
// are memoised (lazy DFA), so repeated structure — ubiquitous when scanning
// DataGuides — costs one map hit per (set, label) pair.
func (f *Filter) Step(s StateSet, label string) StateSet {
	if s.Empty() {
		return s
	}
	var buf keyBuf
	key := s.key(&buf, label)
	f.mu.RLock()
	next, ok := f.dfa[string(key)]
	f.mu.RUnlock()
	if ok {
		return next
	}
	result := f.computeStep(s, label)
	f.mu.Lock()
	f.dfa[string(key)] = result
	f.mu.Unlock()
	return result
}

// computeStep is the un-memoised subset-construction step: the ε-closure of
// every transition the active states have on label. It only reads the
// immutable NFA, so it is safe to call without holding mu.
func (f *Filter) computeStep(s StateSet, label string) StateSet {
	var ids []int32
	for _, id := range s.ids {
		st := &f.states[id]
		if t, ok := st.byLabel[label]; ok {
			ids = append(ids, int32(t))
		}
		if st.star >= 0 {
			ids = append(ids, int32(st.star))
		}
		if st.selfLoop {
			ids = append(ids, id)
		}
	}
	return f.closure(ids)
}

// stepFunc resolves one DFA step; f.Step is the locked shared-memo form,
// stepper.step the lock-free per-worker form.
type stepFunc func(StateSet, string) StateSet

// stepper is a worker-private view of the lazy DFA: seed is a read-only
// snapshot of the shared memo taken before the workers start, fresh collects
// the steps this worker discovered. Workers never touch the Filter's lock;
// their fresh maps are merged into the shared memo after they join.
type stepper struct {
	f     *Filter
	seed  map[string]StateSet
	fresh map[string]StateSet
}

func (st *stepper) step(s StateSet, label string) StateSet {
	if s.Empty() {
		return s
	}
	var buf keyBuf
	key := s.key(&buf, label)
	if next, ok := st.seed[string(key)]; ok {
		return next
	}
	if next, ok := st.fresh[string(key)]; ok {
		return next
	}
	result := st.f.computeStep(s, label)
	st.fresh[string(key)] = result
	return result
}

// snapshotDFA copies the shared memo for use as a stepper seed. The copy is
// taken under the read lock so concurrent Step callers stay safe; afterwards
// the snapshot needs no locking at all.
func (f *Filter) snapshotDFA() map[string]StateSet {
	f.mu.RLock()
	defer f.mu.RUnlock()
	seed := make(map[string]StateSet, len(f.dfa))
	for k, v := range f.dfa {
		seed[k] = v
	}
	return seed
}

// mergeDFA folds worker-discovered steps back into the shared memo, so the
// next FilterParallel (or Step) starts warm.
func (f *Filter) mergeDFA(fresh []map[string]StateSet) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range fresh {
		for k, v := range m {
			if _, ok := f.dfa[k]; !ok {
				f.dfa[k] = v
			}
		}
	}
}

// HasAccepting reports whether any query accepts in the state set. Unlike
// Accepting it allocates nothing, so per-node match checks on client hot
// paths stay allocation-free.
func (f *Filter) HasAccepting(s StateSet) bool {
	for _, id := range s.ids {
		if len(f.states[id].accept) > 0 {
			return true
		}
	}
	return false
}

// Accepting returns the indices of queries accepting in the state set,
// sorted and deduplicated. A nil result means no query matches here.
func (f *Filter) Accepting(s StateSet) []int {
	var out []int
	seen := make(map[int]struct{})
	for _, id := range s.ids {
		for _, qi := range f.states[id].accept {
			if _, ok := seen[qi]; !ok {
				seen[qi] = struct{}{}
				out = append(out, qi)
			}
		}
	}
	sort.Ints(out)
	return out
}

// MatchDocument returns the indices of queries matched by the document.
func (f *Filter) MatchDocument(d *xmldoc.Document) []int {
	return f.matchDocument(d, f.Step)
}

// matchDocument is MatchDocument stepping through the given step resolver
// (the shared locked memo, or a worker-private stepper).
func (f *Filter) matchDocument(d *xmldoc.Document, step stepFunc) []int {
	g := dataguide.Build(d)
	matched := make(map[int]struct{})
	f.walkGuide(g, f.Start(), step, func(_ *dataguide.Guide, accepted []int) {
		for _, qi := range accepted {
			matched[qi] = struct{}{}
		}
	})
	out := make([]int, 0, len(matched))
	for qi := range matched {
		out = append(out, qi)
	}
	sort.Ints(out)
	return out
}

// Filter evaluates all queries over the collection. The result has one
// sorted DocID slice per query, in query index order.
func (f *Filter) Filter(c *xmldoc.Collection) [][]xmldoc.DocID {
	results := make([][]xmldoc.DocID, len(f.queries))
	for _, d := range c.Docs() {
		for _, qi := range f.MatchDocument(d) {
			results[qi] = append(results[qi], d.ID)
		}
	}
	return results
}

// FilterParallel is Filter with document matching sharded across workers
// goroutines (runtime.GOMAXPROCS(0) when workers <= 0) over the shared
// automaton. Per-document matching — DataGuide construction plus the NFA
// walk — dominates the cost and is independent per document, so throughput
// scales with cores. The result is identical to Filter's.
func (f *Filter) FilterParallel(c *xmldoc.Collection, workers int) [][]xmldoc.DocID {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	docs := c.Docs()
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		return f.Filter(c)
	}

	// Each worker claims documents by atomic counter and accumulates into
	// its own result set; shards are merged and re-sorted afterwards, which
	// restores the deterministic per-query DocID order. Workers step through
	// private memos (one shared read-only seed snapshot plus a per-worker
	// fresh map) instead of the Filter's locked memo, so DFA lookups — the
	// hottest operation in the walk — never contend; the fresh maps are
	// folded back into the shared memo once the workers join.
	seed := f.snapshotDFA()
	shards := make([][][]xmldoc.DocID, workers)
	fresh := make([]map[string]StateSet, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stepper{f: f, seed: seed, fresh: make(map[string]StateSet)}
			local := make([][]xmldoc.DocID, len(f.queries))
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					break
				}
				d := docs[i]
				for _, qi := range f.matchDocument(d, st.step) {
					local[qi] = append(local[qi], d.ID)
				}
			}
			shards[w] = local
			fresh[w] = st.fresh
		}(w)
	}
	wg.Wait()
	f.mergeDFA(fresh)

	results := make([][]xmldoc.DocID, len(f.queries))
	for _, local := range shards {
		for qi, ids := range local {
			results[qi] = append(results[qi], ids...)
		}
	}
	for qi := range results {
		sort.Slice(results[qi], func(i, j int) bool { return results[qi][i] < results[qi][j] })
	}
	return results
}

// MatchGuideNodes runs the automaton over a merged DataGuide and invokes
// visit for every node where at least one query accepts, passing the
// accepting query indices. This is the "check each node in CI against the
// query DFA" step of the paper's pruning procedure.
func (f *Filter) MatchGuideNodes(forest *dataguide.Forest, visit func(node *dataguide.Guide, queries []int)) {
	for _, root := range forest.Roots {
		f.walkGuide(root, f.Start(), f.Step, func(n *dataguide.Guide, accepted []int) {
			if len(accepted) > 0 {
				visit(n, accepted)
			}
		})
	}
}

// walkGuide advances the automaton down a guide trie through the given step
// resolver, invoking visit at every node with the queries accepting there
// (possibly none).
func (f *Filter) walkGuide(g *dataguide.Guide, s StateSet, step stepFunc, visit func(node *dataguide.Guide, accepted []int)) {
	if g == nil || s.Empty() {
		return
	}
	next := step(s, g.Label)
	if next.Empty() {
		return
	}
	visit(g, f.Accepting(next))
	for _, c := range g.Children {
		f.walkGuide(c, next, step, visit)
	}
}
