package yfilter

import "math/rand"

// newRand is a tiny helper shared by the property tests in this package.
func newRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
