package yfilter

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

func BenchmarkNew(b *testing.B) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 200, MaxDepth: 6, WildcardProb: 0.2, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(queries)
	}
}

func BenchmarkFilterCollection(b *testing.B) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 100, MaxDepth: 6, WildcardProb: 0.2, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	f := New(queries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Filter(c)
	}
}

func BenchmarkStepMemoised(b *testing.B) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 5, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 50, MaxDepth: 6, WildcardProb: 0.3, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	f := New(queries)
	s := f.Step(f.Start(), "nitf")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Step(s, "body")
	}
}
