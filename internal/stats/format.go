package stats

import (
	"encoding/json"
	"fmt"
	"strings"
)

// RenderCSV emits the table as RFC-4180-ish CSV: a header row of column
// names followed by the data rows. Cells containing commas, quotes or
// newlines are quoted. The title is not emitted (CSV is for machines).
func (t *Table) RenderCSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// tableJSON is the stable JSON shape of a table.
type tableJSON struct {
	Title   string              `json:"title"`
	Columns []string            `json:"columns"`
	Rows    []map[string]string `json:"rows"`
}

// MarshalJSON encodes the table with one object per row, keyed by column
// name, so downstream plotting scripts can index cells by header.
func (t *Table) MarshalJSON() ([]byte, error) {
	out := tableJSON{Title: t.Title, Columns: t.Columns, Rows: make([]map[string]string, 0, len(t.Rows))}
	for _, row := range t.Rows {
		m := make(map[string]string, len(row))
		for i, cell := range row {
			key := fmt.Sprintf("col%d", i)
			if i < len(t.Columns) {
				key = t.Columns[i]
			}
			m[key] = cell
		}
		out.Rows = append(out.Rows, m)
	}
	return json.Marshal(out)
}
