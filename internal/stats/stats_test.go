package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanMinMax(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if Mean(xs) != 2.8 {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Min(xs) != 1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if Mean(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1},
		{50, 5},
		{90, 9},
		{100, 10},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); got != tt.want {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestStddev(t *testing.T) {
	if got := Stddev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); math.Abs(got-2) > 1e-9 {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if Stddev([]float64{1}) != 0 {
		t.Error("single-sample stddev should be 0")
	}
}

func TestFormatFloat(t *testing.T) {
	tests := []struct {
		give float64
		want string
	}{
		{3, "3"},
		{3.14159, "3.142"},
		{12345.6, "12345.6"},
		{-2, "-2"},
	}
	for _, tt := range tests {
		if got := FormatFloat(tt.give); got != tt.want {
			t.Errorf("FormatFloat(%v) = %q, want %q", tt.give, got, tt.want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"x", "value"}}
	tbl.AddRow(1, 3.14159)
	tbl.AddRow("wide-cell", 2)
	out := tbl.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows → 5? title+header+rule+2 = 5
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "wide-cell") || !strings.Contains(out, "3.142") {
		t.Errorf("render missing cells:\n%s", out)
	}
	// Header columns aligned: "x" padded to width of "wide-cell".
	for _, l := range lines {
		if strings.HasPrefix(l, "x") && !strings.HasPrefix(l, "x        ") {
			t.Errorf("header not padded: %q", l)
		}
	}
}

// TestQuickPercentileBounds: any percentile lies within [Min, Max].
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []float64, p float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		pct := math.Mod(math.Abs(p), 100)
		v := Percentile(xs, pct)
		return v >= Min(xs) && v <= Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRenderCSV(t *testing.T) {
	tbl := &Table{Title: "ignored", Columns: []string{"a", "b"}}
	tbl.AddRow("x,y", 2)
	tbl.AddRow(`quo"te`, 3.5)
	got := tbl.RenderCSV()
	want := "a,b\n\"x,y\",2\n\"quo\"\"te\",3.500\n"
	if got != want {
		t.Errorf("RenderCSV = %q, want %q", got, want)
	}
}

func TestMarshalJSON(t *testing.T) {
	tbl := &Table{Title: "t", Columns: []string{"k"}}
	tbl.AddRow("v")
	tbl.Rows = append(tbl.Rows, []string{"a", "extra"}) // more cells than columns
	data, err := tbl.MarshalJSON()
	if err != nil {
		t.Fatalf("MarshalJSON: %v", err)
	}
	s := string(data)
	for _, want := range []string{`"title":"t"`, `"k":"v"`, `"col1":"extra"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}
