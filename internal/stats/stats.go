// Package stats provides the small numeric and table-rendering helpers the
// experiment harness uses to print paper-style result tables.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0..100) by nearest-rank, or 0 for
// an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	return sorted[rank]
}

// Stddev returns the population standard deviation, or 0 for fewer than two
// samples.
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: integers without decimals, small
// values with three significant decimals.
func FormatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// Render draws the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(widths) && len(cell) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if total > 2 {
		b.WriteString(strings.Repeat("-", total-2))
		b.WriteByte('\n')
	}
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
