// Package docindex implements the prior-art baseline the paper argues
// against (§1, refs [2] Chung & Lee 2007 and [10] Park et al. 2006): an air
// index built *inside each XML document* and broadcast together with it.
// Each document carries its own DataGuide whose nodes point at the element
// instances of that document, so the per-document index grows with the
// number of elements — the paper's footnote 1 reports it at "close to 10% of
// the total data size", against 0.1%–0.5% for the pruned two-tier index.
//
// Under this organisation a client has no overall picture of the document
// set: it must stay awake for every document's index preamble to decide
// whether the document matches, and it cannot know when its result set is
// complete. The Baseline experiment quantifies both effects.
package docindex

import (
	"sort"

	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// Index is the per-document air index of [2]: the document's DataGuide with,
// at every node, position pointers to the matching element instances.
type Index struct {
	// Doc is the indexed document's ID.
	Doc xmldoc.DocID
	// Root is the document's DataGuide.
	Root *dataguide.Guide
	// Occurrences counts, per DataGuide path key, the element instances of
	// that path in the document; each instance costs one position pointer
	// on air.
	Occurrences map[string]int

	model core.SizeModel
}

// Build constructs the per-document index.
func Build(d *xmldoc.Document, m core.SizeModel) (*Index, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{
		Doc:         d.ID,
		Root:        dataguide.Build(d),
		Occurrences: make(map[string]int),
		model:       m,
	}
	d.WalkPaths(func(path []string, _ *xmldoc.Node) {
		ix.Occurrences[xmldoc.PathKey(path)]++
	})
	return ix, nil
}

// NumNodes reports the DataGuide node count.
func (ix *Index) NumNodes() int { return ix.Root.NumNodes() }

// NumOccurrences reports the total element-instance pointers carried.
func (ix *Index) NumOccurrences() int {
	total := 0
	for _, n := range ix.Occurrences {
		total += n
	}
	return total
}

// Size reports the on-air byte size of the per-document index: per node, a
// flag block, one <entry, pointer> tuple per child, and one position pointer
// per element instance of the node's path.
func (ix *Index) Size() int {
	total := 0
	ix.Root.Walk(func(path []string, g *dataguide.Guide) {
		total += ix.model.FlagBytes
		total += len(g.Children) * ix.model.EntryBytes()
		total += ix.Occurrences[xmldoc.PathKey(path)] * ix.model.PointerBytes
	})
	return total
}

// Matches reports whether the document satisfies the query, resolved over
// the per-document index alone (the client-side decision of [2]).
func (ix *Index) Matches(q xpath.Path) bool {
	f := yfilter.New([]xpath.Path{q})
	matched := false
	var walk func(g *dataguide.Guide, s yfilter.StateSet)
	walk = func(g *dataguide.Guide, s yfilter.StateSet) {
		if matched || g == nil {
			return
		}
		next := f.Step(s, g.Label)
		if next.Empty() {
			return
		}
		if len(f.Accepting(next)) > 0 {
			matched = true
			return
		}
		for _, c := range g.Children {
			walk(c, next)
		}
	}
	walk(ix.Root, f.Start())
	return matched
}

// Broadcast is a flat per-document broadcast program: every document of the
// collection preceded by its own index, in collection order — the push-style
// organisation of [2]/[10] that the paper contrasts with on-demand mode.
type Broadcast struct {
	// Items are the broadcast units in order.
	Items []Item
	// model fixes widths.
	model core.SizeModel
}

// Item is one (index, document) pair on air.
type Item struct {
	Doc        xmldoc.DocID
	Index      *Index
	IndexBytes int
	DocBytes   int
	// Offset is the item's byte offset within the program.
	Offset int
}

// NewBroadcast lays out the full collection as a per-document-index program.
func NewBroadcast(c *xmldoc.Collection, m core.SizeModel) (*Broadcast, error) {
	b := &Broadcast{model: m}
	offset := 0
	for _, d := range c.Docs() {
		ix, err := Build(d, m)
		if err != nil {
			return nil, err
		}
		item := Item{
			Doc:        d.ID,
			Index:      ix,
			IndexBytes: ix.Size(),
			DocBytes:   d.Size(),
			Offset:     offset,
		}
		offset += item.IndexBytes + item.DocBytes
		b.Items = append(b.Items, item)
	}
	return b, nil
}

// TotalBytes is the program length on air.
func (b *Broadcast) TotalBytes() int {
	if len(b.Items) == 0 {
		return 0
	}
	last := b.Items[len(b.Items)-1]
	return last.Offset + last.IndexBytes + last.DocBytes
}

// IndexBytes is the summed per-document index overhead.
func (b *Broadcast) IndexBytes() int {
	total := 0
	for _, it := range b.Items {
		total += it.IndexBytes
	}
	return total
}

// TuneResult is the outcome of one client pass over the program.
type TuneResult struct {
	// Docs is the sorted result set.
	Docs []xmldoc.DocID
	// IndexTuningBytes is the tuning time spent reading per-document
	// indexes: the client must wake for every item's index because it has
	// no overall picture of the set (§1 point (1)).
	IndexTuningBytes int64
	// DocTuningBytes is the tuning time spent downloading matched
	// documents.
	DocTuningBytes int64
	// AccessBytes is one full pass over the program — the client cannot
	// know its result set is complete before the pass ends.
	AccessBytes int64
}

// Tune plays one client's query over a full pass of the program.
func (b *Broadcast) Tune(q xpath.Path) TuneResult {
	var res TuneResult
	set := make(map[xmldoc.DocID]struct{})
	for _, it := range b.Items {
		res.IndexTuningBytes += int64(it.IndexBytes)
		if it.Index.Matches(q) {
			set[it.Doc] = struct{}{}
			res.DocTuningBytes += int64(it.DocBytes)
		}
	}
	res.AccessBytes = int64(b.TotalBytes())
	res.Docs = make([]xmldoc.DocID, 0, len(set))
	for id := range set {
		res.Docs = append(res.Docs, id)
	}
	sort.Slice(res.Docs, func(i, j int) bool { return res.Docs[i] < res.Docs[j] })
	if len(res.Docs) == 0 {
		res.Docs = nil
	}
	return res
}
