package docindex

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func sampleDoc() *xmldoc.Document {
	// d1 of the paper's running example: two b children (duplicate paths).
	return xmldoc.NewDocument(1, xmldoc.El("a",
		xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")),
		xmldoc.El("b", xmldoc.El("a")),
	))
}

func TestBuildCounts(t *testing.T) {
	ix, err := Build(sampleDoc(), core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ix.NumNodes() != 4 { // /a, /a/b, /a/b/a, /a/b/c
		t.Errorf("NumNodes = %d, want 4", ix.NumNodes())
	}
	// Instances: a×1, b×2, b/a×2, b/c×1 = 6.
	if ix.NumOccurrences() != 6 {
		t.Errorf("NumOccurrences = %d, want 6", ix.NumOccurrences())
	}
	// Size: 4 flags (2B) + entries: root 1 child? DataGuide: a->{b}, b->{a,c}
	// entries = 1 + 2 = 3 tuples ×8B + 6 pointers ×4B = 8 + 24 + 24 = 56.
	if got := ix.Size(); got != 56 {
		t.Errorf("Size = %d, want 56", got)
	}
}

func TestBuildBadModel(t *testing.T) {
	if _, err := Build(sampleDoc(), core.SizeModel{}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestMatches(t *testing.T) {
	ix, err := Build(sampleDoc(), core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	tests := []struct {
		expr string
		want bool
	}{
		{"/a/b/a", true},
		{"/a/b", true},
		{"/a//c", true},
		{"/a/c", false},
		{"/b", false},
		{"/a/*/c", true},
	}
	for _, tt := range tests {
		if got := ix.Matches(xpath.MustParse(tt.expr)); got != tt.want {
			t.Errorf("Matches(%s) = %v, want %v", tt.expr, got, tt.want)
		}
	}
}

func testCollection(t *testing.T) *xmldoc.Collection {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 15, Seed: 21})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	return c
}

func TestBroadcastLayout(t *testing.T) {
	c := testCollection(t)
	b, err := NewBroadcast(c, core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("NewBroadcast: %v", err)
	}
	if len(b.Items) != c.Len() {
		t.Fatalf("items = %d, want %d", len(b.Items), c.Len())
	}
	offset := 0
	for i, it := range b.Items {
		if it.Offset != offset {
			t.Errorf("item %d offset = %d, want %d", i, it.Offset, offset)
		}
		if it.DocBytes != c.ByID(it.Doc).Size() {
			t.Errorf("item %d doc bytes mismatch", i)
		}
		if it.IndexBytes <= 0 {
			t.Errorf("item %d has empty index", i)
		}
		offset += it.IndexBytes + it.DocBytes
	}
	if b.TotalBytes() != offset {
		t.Errorf("TotalBytes = %d, want %d", b.TotalBytes(), offset)
	}
	if b.IndexBytes() <= 0 || b.IndexBytes() >= b.TotalBytes() {
		t.Errorf("IndexBytes = %d of %d", b.IndexBytes(), b.TotalBytes())
	}
}

func TestEmptyBroadcast(t *testing.T) {
	c, err := xmldoc.NewCollection(nil)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	b, err := NewBroadcast(c, core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("NewBroadcast: %v", err)
	}
	if b.TotalBytes() != 0 || b.IndexBytes() != 0 {
		t.Error("empty broadcast not empty")
	}
	res := b.Tune(xpath.MustParse("/a"))
	if res.Docs != nil || res.AccessBytes != 0 {
		t.Errorf("tune over empty = %+v", res)
	}
}

// TestPaperFootnoteOverheadRegime checks the paper's footnote 1: the
// per-document index overhead sits near 10% of the data size — an order of
// magnitude above the two-tier pruned index.
func TestPaperFootnoteOverheadRegime(t *testing.T) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 40, Seed: 3, TextScale: 2.1})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	b, err := NewBroadcast(c, core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("NewBroadcast: %v", err)
	}
	ratio := 100 * float64(b.IndexBytes()) / float64(c.TotalSize())
	if ratio < 3 || ratio > 30 {
		t.Errorf("per-document index overhead %.1f%%, want the ~10%% regime", ratio)
	}
}

// TestQuickTuneMatchesReference: the per-document scheme returns exactly the
// reference answer for any satisfiable workload, at full-pass cost.
func TestQuickTuneMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 6, Seed: seed, MaxDepth: 7})
		if err != nil {
			return false
		}
		b, err := NewBroadcast(c, core.DefaultSizeModel())
		if err != nil {
			return false
		}
		queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 8, MaxDepth: 5, WildcardProb: 0.3, Seed: seed})
		if err != nil {
			return false
		}
		for _, q := range queries {
			res := b.Tune(q)
			if !reflect.DeepEqual(res.Docs, q.MatchingDocs(c)) {
				return false
			}
			if res.AccessBytes != int64(b.TotalBytes()) {
				return false
			}
			if res.IndexTuningBytes != int64(b.IndexBytes()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
