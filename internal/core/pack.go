package core

import "fmt"

// PackOrder selects the order in which nodes are laid out on air.
type PackOrder int

const (
	// PackDFS is the paper's depth-first order (§3.1): a match node's
	// subtree is contiguous, so subtree collection touches few packets.
	PackDFS PackOrder = iota + 1
	// PackBFS is a breadth-first alternative used by the packing-order
	// ablation: siblings are adjacent but subtrees scatter.
	PackBFS
)

// String names the order.
func (o PackOrder) String() string {
	switch o {
	case PackDFS:
		return "dfs"
	case PackBFS:
		return "bfs"
	default:
		return fmt.Sprintf("PackOrder(%d)", int(o))
	}
}

// Packing is the physical packet layout of an index under one tier: nodes in
// depth-first order, greedily packed into fixed-size packets (§3.1, Fig. 5).
// A node that does not fit in the current packet's free space starts a new
// packet; a node larger than a whole packet streams across consecutive
// packets.
type Packing struct {
	// Tier is the layout the packing was computed for.
	Tier Tier
	// Order is the node layout order.
	Order PackOrder
	// Model fixes widths, copied from the index.
	Model SizeModel
	// NodeOffsets[i] is the byte offset of node i in the index stream.
	NodeOffsets []int
	// NodeSizes[i] is the byte size of node i under the tier.
	NodeSizes []int
	// StreamBytes is the total stream length including alignment padding.
	StreamBytes int
	// NumPackets is the packet count, ceil(StreamBytes / PacketBytes).
	NumPackets int
	// FlagCountBits is the per-count bit width of the node flag block
	// ((FlagBytes*8 − 2) / 2), precomputed here so steady-state encoders
	// do not re-derive the flag layout every cycle; 0 when FlagBytes is
	// too small to encode node headers.
	FlagCountBits int
}

// Pack lays the index out on air under the given tier in the paper's
// depth-first order.
func (ix *Index) Pack(t Tier) *Packing {
	return ix.PackOrdered(t, PackDFS)
}

// PackOrdered lays the index out under an explicit node order; PackDFS is
// the paper's design, PackBFS exists for the packing-order ablation.
func (ix *Index) PackOrdered(t Tier, order PackOrder) *Packing {
	p := &Packing{
		Tier:        t,
		Order:       order,
		Model:       ix.Model,
		NodeOffsets: make([]int, len(ix.Nodes)),
		NodeSizes:   make([]int, len(ix.Nodes)),
	}
	if bits := ix.Model.FlagBytes*8 - 2; bits >= 2 {
		p.FlagCountBits = bits / 2
	}
	pb := ix.Model.PacketBytes
	offset := 0
	for _, id := range ix.layoutOrder(order) {
		size := ix.Nodes[id].Size(ix.Model, t)
		if size <= pb {
			if rem := pb - offset%pb; rem < size && rem < pb {
				offset += rem // start a fresh packet
			}
		}
		p.NodeOffsets[id] = offset
		p.NodeSizes[id] = size
		offset += size
	}
	p.StreamBytes = offset
	p.NumPackets = (offset + pb - 1) / pb
	return p
}

// layoutOrder returns node IDs in the requested layout order. Nodes are
// stored in DFS pre-order, so PackDFS is the identity.
func (ix *Index) layoutOrder(order PackOrder) []NodeID {
	ids := make([]NodeID, 0, len(ix.Nodes))
	switch order {
	case PackBFS:
		queue := append([]NodeID(nil), ix.Roots...)
		for len(queue) > 0 {
			id := queue[0]
			queue = queue[1:]
			ids = append(ids, id)
			queue = append(queue, ix.Nodes[id].Children...)
		}
	default: // PackDFS
		for i := range ix.Nodes {
			ids = append(ids, NodeID(i))
		}
	}
	return ids
}

// PacketRange reports the first and last packet (inclusive) occupied by the
// node.
func (p *Packing) PacketRange(id NodeID) (first, last int) {
	pb := p.Model.PacketBytes
	start := p.NodeOffsets[id]
	end := start + p.NodeSizes[id]
	if end > start {
		end--
	}
	return start / pb, end / pb
}

// PacketsFor counts the distinct packets covering the given nodes — the
// client's tuning cost for reading them, in packets.
func (p *Packing) PacketsFor(nodes []NodeID) int {
	seen := make(map[int]struct{})
	for _, id := range nodes {
		first, last := p.PacketRange(id)
		for pk := first; pk <= last; pk++ {
			seen[pk] = struct{}{}
		}
	}
	return len(seen)
}

// BytesFor is PacketsFor expressed in bytes (packets × packet size): data
// retrieval is in whole-packet units.
func (p *Packing) BytesFor(nodes []NodeID) int {
	return p.PacketsFor(nodes) * p.Model.PacketBytes
}

// AirBytes is the total on-air size of the packed index in bytes, i.e.
// packets × packet size.
func (p *Packing) AirBytes() int {
	return p.NumPackets * p.Model.PacketBytes
}
