package core

import (
	"reflect"
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// paperCollection builds the five documents of the paper's running example
// (Fig. 2), reconstructed from its query/answer table.
func paperCollection(t *testing.T) *xmldoc.Collection {
	t.Helper()
	docs := []*xmldoc.Document{
		xmldoc.NewDocument(1, xmldoc.El("a", xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")))),
		xmldoc.NewDocument(2, xmldoc.El("a",
			xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")),
			xmldoc.El("c", xmldoc.El("b")))),
		xmldoc.NewDocument(3, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c"))),
		xmldoc.NewDocument(4, xmldoc.El("a", xmldoc.El("c", xmldoc.El("a")))),
		xmldoc.NewDocument(5, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c", xmldoc.El("a")))),
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return c
}

func paperCI(t *testing.T) *Index {
	t.Helper()
	ix, err := BuildCI(paperCollection(t), DefaultSizeModel())
	if err != nil {
		t.Fatalf("BuildCI: %v", err)
	}
	if err := ix.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return ix
}

func TestBuildCIPaperExample(t *testing.T) {
	ix := paperCI(t)
	// DFS pre-order over the merged guide: /a, /a/b, /a/b/a, /a/b/c, /a/c,
	// /a/c/a, /a/c/b.
	wantPaths := []string{"/a", "/a/b", "/a/b/a", "/a/b/c", "/a/c", "/a/c/a", "/a/c/b"}
	if ix.NumNodes() != len(wantPaths) {
		t.Fatalf("NumNodes() = %d, want %d", ix.NumNodes(), len(wantPaths))
	}
	for i, want := range wantPaths {
		if got := xmldoc.PathKey(ix.PathOf(NodeID(i))); got != want {
			t.Errorf("node %d path = %s, want %s", i, got, want)
		}
	}
	// Attachments at maximal paths; d2 appears exactly three times (§3.3).
	// /a/b:{3,5} /a/b/a:{1,2} /a/b/c:{1,2} /a/c:{3} /a/c/a:{4,5} /a/c/b:{2}.
	if got := ix.NumAttachments(); got != 10 {
		t.Errorf("NumAttachments() = %d, want 10", got)
	}
	count := 0
	for i := range ix.Nodes {
		for _, d := range ix.Nodes[i].Docs {
			if d == 2 {
				count++
			}
		}
	}
	if count != 3 {
		t.Errorf("d2 attached %d times, want 3", count)
	}
	if got := ix.DocIDs(); !reflect.DeepEqual(got, []xmldoc.DocID{1, 2, 3, 4, 5}) {
		t.Errorf("DocIDs() = %v", got)
	}
}

func TestNodeKinds(t *testing.T) {
	ix := paperCI(t)
	root := ix.Roots[0]
	if got := ix.Nodes[root].Kind(); got != KindRoot {
		t.Errorf("root kind = %v", got)
	}
	b := ix.FindPath([]string{"a", "b"})
	if got := ix.Nodes[b].Kind(); got != KindInternal {
		t.Errorf("internal kind = %v", got)
	}
	leaf := ix.FindPath([]string{"a", "b", "a"})
	if got := ix.Nodes[leaf].Kind(); got != KindLeaf {
		t.Errorf("leaf kind = %v", got)
	}
	// Kind string coverage.
	for k, want := range map[NodeKind]string{KindRoot: "root", KindInternal: "internal", KindLeaf: "leaf", NodeKind(9): "NodeKind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestNodeSize(t *testing.T) {
	m := DefaultSizeModel()
	n := Node{Children: []NodeID{1, 2}, Docs: []xmldoc.DocID{7, 8, 9}}
	// one-tier: flag 2 + 2*(4+4) + 3*(2+4) = 2 + 16 + 18 = 36
	if got := n.Size(m, OneTier); got != 36 {
		t.Errorf("one-tier size = %d, want 36", got)
	}
	// first tier: flag 2 + 16 + 3*2 = 24
	if got := n.Size(m, FirstTier); got != 24 {
		t.Errorf("first-tier size = %d, want 24", got)
	}
}

func TestIndexSizeTwoTierSmaller(t *testing.T) {
	ix := paperCI(t)
	one := ix.Size(OneTier)
	first := ix.Size(FirstTier)
	if first >= one {
		t.Errorf("first-tier size %d not smaller than one-tier %d", first, one)
	}
	// Exactly PointerBytes saved per attachment.
	want := one - ix.NumAttachments()*ix.Model.PointerBytes
	if first != want {
		t.Errorf("first-tier size = %d, want %d", first, want)
	}
}

func TestFindPathAndSubtreeDocs(t *testing.T) {
	ix := paperCI(t)
	tests := []struct {
		path []string
		want []xmldoc.DocID
	}{
		{[]string{"a", "b", "a"}, []xmldoc.DocID{1, 2}},
		{[]string{"a", "b"}, []xmldoc.DocID{1, 2, 3, 5}},
		{[]string{"a", "c"}, []xmldoc.DocID{2, 3, 4, 5}},
		{[]string{"a"}, []xmldoc.DocID{1, 2, 3, 4, 5}},
	}
	for _, tt := range tests {
		id := ix.FindPath(tt.path)
		if id == NoNode {
			t.Fatalf("FindPath(%v) = NoNode", tt.path)
		}
		if got := ix.SubtreeDocs(id); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SubtreeDocs(%v) = %v, want %v", tt.path, got, tt.want)
		}
	}
	if got := ix.FindPath([]string{"a", "zz"}); got != NoNode {
		t.Errorf("FindPath(missing) = %d, want NoNode", got)
	}
	if got := ix.FindPath(nil); got != NoNode {
		t.Errorf("FindPath(nil) = %d, want NoNode", got)
	}
	if got := ix.FindPath([]string{"zz"}); got != NoNode {
		t.Errorf("FindPath(bad root) = %d, want NoNode", got)
	}
}

func TestLookupPaperQueries(t *testing.T) {
	ix := paperCI(t)
	tests := []struct {
		expr string
		want []xmldoc.DocID
	}{
		{"/a/b/a", []xmldoc.DocID{1, 2}},
		{"/a/c/a", []xmldoc.DocID{4, 5}},
		{"/a//c", []xmldoc.DocID{1, 2, 3, 4, 5}},
		{"/a/b", []xmldoc.DocID{1, 2, 3, 5}},
		{"/a/c/*", []xmldoc.DocID{2, 4, 5}},
		{"/zzz", nil},
	}
	for _, tt := range tests {
		t.Run(tt.expr, func(t *testing.T) {
			res := ix.Lookup(xpath.MustParse(tt.expr))
			if !reflect.DeepEqual(res.Docs, tt.want) {
				t.Errorf("Lookup(%s).Docs = %v, want %v", tt.expr, res.Docs, tt.want)
			}
		})
	}
}

func TestLookupVisitedIsSelective(t *testing.T) {
	ix := paperCI(t)
	// /a/b/a must not read the /a/c subtree: visited = a, b, b/a.
	res := ix.Lookup(xpath.MustParse("/a/b/a"))
	if len(res.Visited) != 3 {
		t.Errorf("visited %d nodes, want 3 (%v)", len(res.Visited), res.Visited)
	}
	// /a/b accepts at /a/b and must then read its whole subtree: a, b, b/a,
	// b/c = 4 nodes, and never /a/c.
	res = ix.Lookup(xpath.MustParse("/a/b"))
	if len(res.Visited) != 4 {
		t.Errorf("visited %d nodes, want 4 (%v)", len(res.Visited), res.Visited)
	}
	for _, id := range res.Visited {
		if xmldoc.PathKey(ix.PathOf(id)) == "/a/c" {
			t.Error("lookup for /a/b read /a/c")
		}
	}
}

func TestPrunePaperExample(t *testing.T) {
	ix := paperCI(t)
	// §3.2: Q = {/a/b, /a/b/c} keeps only n1 (/a), n2 (/a/b), n5 (/a/b/c).
	queries := []xpath.Path{xpath.MustParse("/a/b"), xpath.MustParse("/a/b/c")}
	pci, stats, err := ix.Prune(queries)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if err := pci.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	wantPaths := []string{"/a", "/a/b", "/a/b/c"}
	if pci.NumNodes() != len(wantPaths) {
		t.Fatalf("PCI has %d nodes, want %d", pci.NumNodes(), len(wantPaths))
	}
	for i, want := range wantPaths {
		if got := xmldoc.PathKey(pci.PathOf(NodeID(i))); got != want {
			t.Errorf("node %d path = %s, want %s", i, got, want)
		}
	}
	if stats.NodesBefore != 7 || stats.NodesAfter != 3 || stats.MatchedNodes != 2 {
		t.Errorf("stats = %+v", stats)
	}
	// Requested docs = answers of /a/b ∪ /a/b/c = {1,2,3,5}; doc 4 dropped.
	if stats.DocsRequested != 4 {
		t.Errorf("DocsRequested = %d, want 4", stats.DocsRequested)
	}
	if got := pci.DocIDs(); !reflect.DeepEqual(got, []xmldoc.DocID{1, 2, 3, 5}) {
		t.Errorf("PCI DocIDs = %v, want [1 2 3 5]", got)
	}
	// Orphaned attachment of /a/b/a (docs 1, 2) re-attached at /a/b.
	b := pci.FindPath([]string{"a", "b"})
	if got := pci.Nodes[b].Docs; !reflect.DeepEqual(got, []xmldoc.DocID{1, 2, 3, 5}) {
		t.Errorf("docs at /a/b = %v, want [1 2 3 5]", got)
	}
	// Pruning is transparent: both pending queries answer identically.
	for _, q := range queries {
		want := ix.Lookup(q).Docs
		got := pci.Lookup(q).Docs
		if !reflect.DeepEqual(got, want) {
			t.Errorf("PCI lookup %s = %v, want %v", q, got, want)
		}
	}
}

func TestPruneEmptyQuerySet(t *testing.T) {
	ix := paperCI(t)
	pci, stats, err := ix.Prune(nil)
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if pci.NumNodes() != 0 || len(pci.Roots) != 0 {
		t.Errorf("empty query set should prune everything: %d nodes", pci.NumNodes())
	}
	if stats.DocsRequested != 0 || stats.MatchedNodes != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if err := pci.Validate(); err != nil {
		t.Errorf("empty PCI invalid: %v", err)
	}
}

func TestPruneUnmatchedQueryDies(t *testing.T) {
	ix := paperCI(t)
	pci, _, err := ix.Prune([]xpath.Path{xpath.MustParse("/nope/nothing")})
	if err != nil {
		t.Fatalf("Prune: %v", err)
	}
	if pci.NumNodes() != 0 {
		t.Errorf("unmatched query kept %d nodes", pci.NumNodes())
	}
}

func TestBuildCIBadModel(t *testing.T) {
	if _, err := BuildCI(paperCollection(t), SizeModel{}); err == nil {
		t.Error("BuildCI with zero model succeeded, want error")
	}
}

func TestTierAndModelHelpers(t *testing.T) {
	m := DefaultSizeModel()
	if m.EntryBytes() != 8 {
		t.Errorf("EntryBytes = %d, want 8", m.EntryBytes())
	}
	if m.DocTupleBytes(OneTier) != 6 || m.DocTupleBytes(FirstTier) != 2 {
		t.Error("DocTupleBytes wrong")
	}
	if m.SecondTierEntryBytes() != 6 {
		t.Errorf("SecondTierEntryBytes = %d, want 6", m.SecondTierEntryBytes())
	}
	if OneTier.String() != "one-tier" || FirstTier.String() != "first-tier" {
		t.Error("tier strings wrong")
	}
	if got := Tier(9).String(); got != "Tier(9)" {
		t.Errorf("unknown tier = %q", got)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	fresh := func() *Index {
		ix, err := BuildCI(paperCollection(t), DefaultSizeModel())
		if err != nil {
			t.Fatalf("BuildCI: %v", err)
		}
		return ix
	}
	tests := []struct {
		name    string
		corrupt func(*Index)
	}{
		{"bad id", func(ix *Index) { ix.Nodes[2].ID = 5 }},
		{"parent after child", func(ix *Index) { ix.Nodes[1].Parent = 3 }},
		{"dangling child", func(ix *Index) { ix.Nodes[0].Children[0] = 99 }},
		{"child backlink", func(ix *Index) {
			ix.Nodes[1].Parent = 0
			ix.Nodes[0].Children = []NodeID{1}
			ix.Nodes[1].Children = nil
			ix.Nodes[2].Parent = 0
		}},
		{"unsorted docs", func(ix *Index) { ix.Nodes[2].Docs = []xmldoc.DocID{2, 1} }},
		{"root with parent", func(ix *Index) { ix.Roots = append(ix.Roots, 1) }},
		{"duplicate root", func(ix *Index) { ix.Roots = append(ix.Roots, ix.Roots[0]) }},
		{"out of range root", func(ix *Index) { ix.Roots[0] = 99 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			ix := fresh()
			tt.corrupt(ix)
			if err := ix.Validate(); err == nil {
				t.Error("Validate passed on corrupted index")
			}
		})
	}
}
