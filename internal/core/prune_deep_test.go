package core

import (
	"testing"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// deepChain builds a synthetic single-path trie of the given depth: a chain of
// "a" nodes ending in one "leaf" node carrying a document tuple. Real
// DataGuides never get this deep; the point is that pruning must not recurse
// per level.
func deepChain(depth int) *Index {
	ix := &Index{Model: DefaultSizeModel()}
	ix.Nodes = make([]Node, depth)
	for i := range ix.Nodes {
		ix.Nodes[i] = Node{ID: NodeID(i), Label: "a", Parent: NodeID(i - 1)}
		if i > 0 {
			ix.Nodes[i-1].Children = []NodeID{NodeID(i)}
		}
	}
	ix.Nodes[0].Parent = NoNode
	ix.Roots = []NodeID{0}
	ix.Nodes[depth-1].Label = "leaf"
	ix.Nodes[depth-1].Docs = []xmldoc.DocID{7}
	return ix
}

// TestPruneDeepTrie prunes a 20 000-level trie. With the old recursive
// walk/rebuild closures this overflowed the goroutine stack; the iterative
// passes must handle arbitrary depth.
func TestPruneDeepTrie(t *testing.T) {
	const depth = 20_000
	ix := deepChain(depth)
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
	leaf := xpath.MustParse("//leaf")

	pci, stats, err := ix.Prune([]xpath.Path{leaf})
	if err != nil {
		t.Fatal(err)
	}
	if err := pci.Validate(); err != nil {
		t.Fatalf("pruned deep trie invalid: %v", err)
	}
	// The single match node sits at the bottom, so the whole chain is kept.
	if pci.NumNodes() != depth {
		t.Errorf("PCI has %d nodes, want the full %d-deep chain", pci.NumNodes(), depth)
	}
	if stats.MatchedNodes != 1 || stats.DocsRequested != 1 {
		t.Errorf("stats = %+v, want 1 matched node and 1 requested doc", stats)
	}

	// The incremental maintainer walks the same chain (keep-path refcounts
	// run root-to-match); exercise it through a full build plus a delta that
	// drops and restores the deep match.
	view := NewPrunedView(1) // never fall back on churn
	got, _, err := view.Update(ix, []xpath.Path{leaf})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != depth {
		t.Errorf("view PCI has %d nodes, want %d", got.NumNodes(), depth)
	}
	shallow := xpath.MustParse("/a")
	if _, _, err := view.Update(ix, []xpath.Path{shallow}); err != nil {
		t.Fatal(err)
	}
	got, delta, err := view.Update(ix, []xpath.Path{leaf})
	if err != nil {
		t.Fatal(err)
	}
	if delta.Full {
		t.Fatalf("delta update ran a full prune (%s)", delta.Reason)
	}
	if got.NumNodes() != depth {
		t.Errorf("restored view PCI has %d nodes, want %d", got.NumNodes(), depth)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("restored view PCI invalid: %v", err)
	}
}
