package core

import (
	"sort"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// PruneStats summarises the effect of a pruning pass.
type PruneStats struct {
	// NodesBefore and NodesAfter count index nodes.
	NodesBefore, NodesAfter int
	// AttachmentsBefore and AttachmentsAfter count document tuples.
	AttachmentsBefore, AttachmentsAfter int
	// DocsRequested counts distinct documents requested by the query set.
	DocsRequested int
	// MatchedNodes counts nodes where at least one query accepts.
	MatchedNodes int
}

// Prune builds the PCI for the pending query set (§3.2): every node where
// some query accepts is marked, marked nodes and their ancestors are kept,
// all other nodes are removed. Documents requested by no query are dropped;
// document tuples orphaned by the removal of their node are re-attached to
// the nearest kept ancestor, which preserves the answer of every pending
// query exactly (an answer is the union of subtree attachments of the
// query's match nodes, and re-attachment never moves a document out of a
// kept match node's subtree).
//
// Pruning is transparent to clients: lookups over the PCI use the same
// protocol as over the CI.
func (ix *Index) Prune(queries []xpath.Path) (*Index, PruneStats, error) {
	f := yfilter.New(queries)
	return ix.PruneWithFilter(f)
}

// PruneWithFilter is Prune with a pre-compiled query automaton, letting the
// broadcast server reuse one filter for both document filtering and pruning.
func (ix *Index) PruneWithFilter(f *yfilter.Filter) (*Index, PruneStats, error) {
	stats := PruneStats{
		NodesBefore:       ix.NumNodes(),
		AttachmentsBefore: ix.NumAttachments(),
	}

	// Pass 1: run the query DFA over the trie to find match nodes, and
	// gather the requested document set (union of match-node subtree docs).
	matched := make(map[NodeID]struct{})
	requested := make(map[xmldoc.DocID]struct{})
	var walk func(id NodeID, s yfilter.StateSet)
	walk = func(id NodeID, s yfilter.StateSet) {
		n := &ix.Nodes[id]
		next := f.Step(s, n.Label)
		if next.Empty() {
			return
		}
		if len(f.Accepting(next)) > 0 {
			matched[id] = struct{}{}
			for _, d := range ix.SubtreeDocs(id) {
				requested[d] = struct{}{}
			}
		}
		for _, c := range n.Children {
			walk(c, next)
		}
	}
	for _, r := range ix.Roots {
		walk(r, f.Start())
	}
	stats.MatchedNodes = len(matched)
	stats.DocsRequested = len(requested)

	// Pass 2: keep = matched ∪ ancestors(matched).
	keep := make(map[NodeID]struct{}, len(matched)*2)
	for id := range matched {
		for cur := id; cur != NoNode; cur = ix.Nodes[cur].Parent {
			if _, ok := keep[cur]; ok {
				break
			}
			keep[cur] = struct{}{}
		}
	}

	// Pass 3: rebuild in DFS pre-order over kept nodes, filtering document
	// tuples to requested documents and bubbling orphaned tuples up to the
	// nearest kept ancestor. An unkept node's whole subtree is unkept
	// (any kept descendant would have kept it as an ancestor).
	out := &Index{Model: ix.Model}
	var rebuild func(old NodeID, parent NodeID) NodeID
	rebuild = func(old NodeID, parent NodeID) NodeID {
		id := NodeID(len(out.Nodes))
		n := &ix.Nodes[old]
		docs := make(map[xmldoc.DocID]struct{})
		for _, d := range n.Docs {
			if _, ok := requested[d]; ok {
				docs[d] = struct{}{}
			}
		}
		out.Nodes = append(out.Nodes, Node{ID: id, Label: n.Label, Parent: parent})
		for _, c := range n.Children {
			if _, ok := keep[c]; ok {
				childID := rebuild(c, id)
				out.Nodes[id].Children = append(out.Nodes[id].Children, childID)
				continue
			}
			ix.walkSubtree(c, func(dropped *Node) {
				for _, d := range dropped.Docs {
					if _, ok := requested[d]; ok {
						docs[d] = struct{}{}
					}
				}
			})
		}
		out.Nodes[id].Docs = sortedDocSet(docs)
		return id
	}
	for _, r := range ix.Roots {
		if _, ok := keep[r]; ok {
			out.Roots = append(out.Roots, rebuild(r, NoNode))
		}
	}

	stats.NodesAfter = out.NumNodes()
	stats.AttachmentsAfter = out.NumAttachments()
	return out, stats, nil
}

func sortedDocSet(set map[xmldoc.DocID]struct{}) []xmldoc.DocID {
	if len(set) == 0 {
		return nil
	}
	out := make([]xmldoc.DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
