package core

import (
	"sort"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// PruneStats summarises the effect of a pruning pass.
type PruneStats struct {
	// NodesBefore and NodesAfter count index nodes.
	NodesBefore, NodesAfter int
	// AttachmentsBefore and AttachmentsAfter count document tuples.
	AttachmentsBefore, AttachmentsAfter int
	// DocsRequested counts distinct documents requested by the query set.
	DocsRequested int
	// MatchedNodes counts nodes where at least one query accepts.
	MatchedNodes int
}

// Prune builds the PCI for the pending query set (§3.2): every node where
// some query accepts is marked, marked nodes and their ancestors are kept,
// all other nodes are removed. Documents requested by no query are dropped;
// document tuples orphaned by the removal of their node are re-attached to
// the nearest kept ancestor, which preserves the answer of every pending
// query exactly (an answer is the union of subtree attachments of the
// query's match nodes, and re-attachment never moves a document out of a
// kept match node's subtree).
//
// Pruning is transparent to clients: lookups over the PCI use the same
// protocol as over the CI.
//
// Prune always works from scratch; a server re-pruning every cycle against a
// slowly drifting query set should maintain a PrunedView instead.
func (ix *Index) Prune(queries []xpath.Path) (*Index, PruneStats, error) {
	f := yfilter.New(queries)
	return ix.PruneWithFilter(f)
}

// PruneWithFilter is Prune with a pre-compiled query automaton, letting the
// broadcast server reuse one filter for both document filtering and pruning.
func (ix *Index) PruneWithFilter(f *yfilter.Filter) (*Index, PruneStats, error) {
	stats := PruneStats{
		NodesBefore:       ix.NumNodes(),
		AttachmentsBefore: ix.NumAttachments(),
	}

	// Pass 1: run the query DFA over the trie to find match nodes, and
	// gather the requested document set (union of match-node subtree docs).
	matched := make(map[NodeID]struct{})
	requested := make(map[xmldoc.DocID]struct{})
	ix.forEachMatch(f, func(id NodeID, accepted []int) {
		matched[id] = struct{}{}
		for _, d := range ix.SubtreeDocs(id) {
			requested[d] = struct{}{}
		}
	})
	stats.MatchedNodes = len(matched)
	stats.DocsRequested = len(requested)

	// Pass 2: keep = matched ∪ ancestors(matched).
	keep := make(map[NodeID]struct{}, len(matched)*2)
	for id := range matched {
		for cur := id; cur != NoNode; cur = ix.Nodes[cur].Parent {
			if _, ok := keep[cur]; ok {
				break
			}
			keep[cur] = struct{}{}
		}
	}

	// Pass 3: rebuild in DFS pre-order over kept nodes, filtering document
	// tuples to requested documents and bubbling orphaned tuples up to the
	// nearest kept ancestor.
	out := ix.rebuildPruned(
		func(id NodeID) bool { _, ok := keep[id]; return ok },
		func(d xmldoc.DocID) bool { _, ok := requested[d]; return ok },
		nil,
	)

	stats.NodesAfter = out.NumNodes()
	stats.AttachmentsAfter = out.NumAttachments()
	return out, stats, nil
}

// matchFrame is one step of the explicit-stack DFA walk over the trie.
type matchFrame struct {
	id NodeID
	s  yfilter.StateSet
}

// forEachMatch runs the query automaton over the trie and invokes visit for
// every node where at least one query accepts, passing the sorted accepting
// query indices. The walk uses an explicit stack, so synthetic tries of
// arbitrary depth cannot exhaust the goroutine stack.
func (ix *Index) forEachMatch(f *yfilter.Filter, visit func(id NodeID, accepted []int)) {
	stack := make([]matchFrame, 0, 64)
	start := f.Start()
	for i := len(ix.Roots) - 1; i >= 0; i-- {
		stack = append(stack, matchFrame{ix.Roots[i], start})
	}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := &ix.Nodes[fr.id]
		next := f.Step(fr.s, n.Label)
		if next.Empty() {
			continue
		}
		if accepted := f.Accepting(next); len(accepted) > 0 {
			visit(fr.id, accepted)
		}
		for i := len(n.Children) - 1; i >= 0; i-- {
			stack = append(stack, matchFrame{n.Children[i], next})
		}
	}
}

// rebuildFrame is one step of the explicit-stack pruned rebuild: the source
// node and its already-created parent in the output index.
type rebuildFrame struct {
	old    NodeID
	parent NodeID
}

// rebuildPruned rebuilds the kept part of the index in DFS pre-order:
// kept nodes are copied, an unkept node's whole subtree is dropped (any kept
// descendant would have kept it as an ancestor) with its document tuples
// bubbled up to the nearest kept ancestor, and each node's attachment list is
// filtered to requested documents. When record is non-nil it receives, per
// output node, the node's sorted candidate attachment set — own tuples plus
// bubbled tuples of dropped subtrees, before the requested filter — which is
// what PrunedView needs to re-filter attachments without re-walking the trie.
// Iterative throughout, so depth is bounded by heap, not stack.
func (ix *Index) rebuildPruned(kept func(NodeID) bool, requested func(xmldoc.DocID) bool, record func(id NodeID, candidates []xmldoc.DocID)) *Index {
	out := &Index{Model: ix.Model}
	stack := make([]rebuildFrame, 0, 64)
	for i := len(ix.Roots) - 1; i >= 0; i-- {
		if kept(ix.Roots[i]) {
			stack = append(stack, rebuildFrame{ix.Roots[i], NoNode})
		}
	}
	for len(stack) > 0 {
		fr := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		id := NodeID(len(out.Nodes))
		n := &ix.Nodes[fr.old]
		out.Nodes = append(out.Nodes, Node{ID: id, Label: n.Label, Parent: fr.parent})
		if fr.parent == NoNode {
			out.Roots = append(out.Roots, id)
		} else {
			out.Nodes[fr.parent].Children = append(out.Nodes[fr.parent].Children, id)
		}

		set := make(map[xmldoc.DocID]struct{}, len(n.Docs))
		for _, d := range n.Docs {
			set[d] = struct{}{}
		}
		// Children pushed in reverse so they pop — and get their output IDs —
		// in original child order, preserving the DFS pre-order layout.
		for i := len(n.Children) - 1; i >= 0; i-- {
			c := n.Children[i]
			if kept(c) {
				stack = append(stack, rebuildFrame{c, id})
				continue
			}
			ix.walkSubtree(c, func(dropped *Node) {
				for _, d := range dropped.Docs {
					set[d] = struct{}{}
				}
			})
		}
		candidates := sortedDocSet(set)
		if record != nil {
			record(id, candidates)
		}
		out.Nodes[id].Docs = filterDocs(candidates, requested)
	}
	return out
}

// filterDocs returns the requested subset of a sorted candidate list, or nil
// when none qualify (matching sortedDocSet's nil-for-empty convention).
func filterDocs(candidates []xmldoc.DocID, requested func(xmldoc.DocID) bool) []xmldoc.DocID {
	var out []xmldoc.DocID
	for _, d := range candidates {
		if requested(d) {
			out = append(out, d)
		}
	}
	return out
}

func sortedDocSet(set map[xmldoc.DocID]struct{}) []xmldoc.DocID {
	if len(set) == 0 {
		return nil
	}
	out := make([]xmldoc.DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
