package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

func TestPackBasics(t *testing.T) {
	ix := paperCI(t)
	p := ix.Pack(OneTier)
	if p.Tier != OneTier {
		t.Errorf("Tier = %v", p.Tier)
	}
	if p.StreamBytes < ix.Size(OneTier) {
		t.Errorf("StreamBytes %d below logical size %d", p.StreamBytes, ix.Size(OneTier))
	}
	if p.NumPackets != (p.StreamBytes+ix.Model.PacketBytes-1)/ix.Model.PacketBytes {
		t.Errorf("NumPackets inconsistent: %d for %d bytes", p.NumPackets, p.StreamBytes)
	}
	if p.AirBytes() != p.NumPackets*ix.Model.PacketBytes {
		t.Errorf("AirBytes = %d", p.AirBytes())
	}
	// Offsets strictly increase in DFS order.
	for i := 1; i < len(p.NodeOffsets); i++ {
		if p.NodeOffsets[i] < p.NodeOffsets[i-1]+p.NodeSizes[i-1] {
			t.Fatalf("node %d overlaps node %d", i, i-1)
		}
	}
}

func TestPackNoBoundaryCrossingForSmallNodes(t *testing.T) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 30, Seed: 11})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	ix, err := BuildCI(c, DefaultSizeModel())
	if err != nil {
		t.Fatalf("BuildCI: %v", err)
	}
	for _, tier := range []Tier{OneTier, FirstTier} {
		p := ix.Pack(tier)
		pb := ix.Model.PacketBytes
		for i := range ix.Nodes {
			if p.NodeSizes[i] > pb {
				continue // oversized nodes legitimately span packets
			}
			start := p.NodeOffsets[i]
			end := start + p.NodeSizes[i]
			if start/pb != (end-1)/pb {
				t.Fatalf("tier %v: node %d [%d,%d) crosses packet boundary", tier, i, start, end)
			}
			first, last := p.PacketRange(NodeID(i))
			if first != last {
				t.Fatalf("tier %v: PacketRange(%d) = [%d,%d] for single-packet node", tier, i, first, last)
			}
		}
	}
}

func TestPackOversizedNodeSpans(t *testing.T) {
	// One node with many documents attached: size far beyond one packet.
	docs := make([]*xmldoc.Document, 60)
	for i := range docs {
		docs[i] = xmldoc.NewDocument(xmldoc.DocID(i+1), xmldoc.El("a", xmldoc.El("b")))
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	ix, err := BuildCI(c, DefaultSizeModel())
	if err != nil {
		t.Fatalf("BuildCI: %v", err)
	}
	b := ix.FindPath([]string{"a", "b"})
	if size := ix.Nodes[b].Size(ix.Model, OneTier); size <= ix.Model.PacketBytes {
		t.Fatalf("test setup: node size %d not oversized", size)
	}
	p := ix.Pack(OneTier)
	first, last := p.PacketRange(b)
	if last <= first {
		t.Errorf("oversized node occupies [%d,%d], want a span", first, last)
	}
	if got := p.PacketsFor([]NodeID{b}); got != last-first+1 {
		t.Errorf("PacketsFor = %d, want %d", got, last-first+1)
	}
}

func TestPacketsForDistinct(t *testing.T) {
	ix := paperCI(t)
	p := ix.Pack(OneTier)
	all := make([]NodeID, ix.NumNodes())
	for i := range all {
		all[i] = NodeID(i)
	}
	if got := p.PacketsFor(all); got != p.NumPackets {
		t.Errorf("PacketsFor(all) = %d, want %d", got, p.NumPackets)
	}
	// Duplicates don't double count.
	dup := append(append([]NodeID(nil), all...), all...)
	if got := p.PacketsFor(dup); got != p.NumPackets {
		t.Errorf("PacketsFor(dup) = %d, want %d", got, p.NumPackets)
	}
	if got := p.BytesFor(all); got != p.NumPackets*ix.Model.PacketBytes {
		t.Errorf("BytesFor = %d", got)
	}
	if got := p.PacketsFor(nil); got != 0 {
		t.Errorf("PacketsFor(nil) = %d, want 0", got)
	}
}

func TestPackEmptyIndex(t *testing.T) {
	ix := &Index{Model: DefaultSizeModel()}
	p := ix.Pack(OneTier)
	if p.NumPackets != 0 || p.StreamBytes != 0 || p.AirBytes() != 0 {
		t.Errorf("empty packing = %+v", p)
	}
}

// TestQuickPackingInvariants checks layout invariants over random NITF
// collections and packet sizes.
func TestQuickPackingInvariants(t *testing.T) {
	f := func(seed int64, pktRaw uint8) bool {
		pb := 64 + int(pktRaw)%192 // packet size in [64, 256)
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 8, Seed: seed, MaxDepth: 7})
		if err != nil {
			return false
		}
		m := DefaultSizeModel()
		m.PacketBytes = pb
		ix, err := BuildCI(c, m)
		if err != nil {
			return false
		}
		for _, tier := range []Tier{OneTier, FirstTier} {
			p := ix.Pack(tier)
			offset := 0
			for i := range ix.Nodes {
				if p.NodeOffsets[i] < offset {
					return false
				}
				// Padding never exceeds one packet's worth.
				if p.NodeOffsets[i]-offset >= pb {
					return false
				}
				offset = p.NodeOffsets[i] + p.NodeSizes[i]
				if p.NodeSizes[i] != ix.Nodes[i].Size(m, tier) {
					return false
				}
				if p.NodeSizes[i] <= pb {
					if p.NodeOffsets[i]/pb != (offset-1)/pb {
						return false
					}
				}
			}
			if p.StreamBytes != offset {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickLookupMatchesReference: CI lookup answers equal the naive
// evaluator for random workloads (the index is accurate, §3.1).
func TestQuickLookupMatchesReference(t *testing.T) {
	f := func(seed int64) bool {
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 6, Seed: seed, MaxDepth: 7})
		if err != nil {
			return false
		}
		queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 8, MaxDepth: 6, WildcardProb: 0.35, Seed: seed + 1})
		if err != nil {
			return false
		}
		ix, err := BuildCI(c, DefaultSizeModel())
		if err != nil {
			return false
		}
		for _, q := range queries {
			want := q.MatchingDocs(c)
			got := ix.Lookup(q).Docs
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickPruningPreservesAnswers: for every pending query, the PCI answers
// exactly as the CI does, and the PCI never exceeds the CI in size.
func TestQuickPruningPreservesAnswers(t *testing.T) {
	f := func(seed int64) bool {
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 6, Seed: seed, MaxDepth: 7})
		if err != nil {
			return false
		}
		queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 10, MaxDepth: 5, WildcardProb: 0.3, Seed: seed + 2})
		if err != nil {
			return false
		}
		ix, err := BuildCI(c, DefaultSizeModel())
		if err != nil {
			return false
		}
		pci, stats, err := ix.Prune(queries)
		if err != nil || pci.Validate() != nil {
			return false
		}
		if stats.NodesAfter > stats.NodesBefore || pci.Size(OneTier) > ix.Size(OneTier) {
			return false
		}
		for _, q := range queries {
			want := ix.Lookup(q).Docs
			got := pci.Lookup(q).Docs
			if len(got) != len(want) {
				t.Logf("seed %d query %s: pci=%v ci=%v", seed, q, got, want)
				return false
			}
			for i := range got {
				if got[i] != want[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestPackOrderedBFS(t *testing.T) {
	ix := paperCI(t)
	p := ix.PackOrdered(FirstTier, PackBFS)
	if p.Order != PackBFS {
		t.Errorf("Order = %v", p.Order)
	}
	// Every node has a distinct, non-overlapping extent.
	type span struct{ start, end int }
	var spans []span
	for i := range ix.Nodes {
		spans = append(spans, span{p.NodeOffsets[i], p.NodeOffsets[i] + p.NodeSizes[i]})
	}
	for i := range spans {
		for j := range spans {
			if i == j {
				continue
			}
			if spans[i].start < spans[j].end && spans[j].start < spans[i].end {
				t.Fatalf("nodes %d and %d overlap", i, j)
			}
		}
	}
	// BFS order: roots first, then depth-1 nodes, etc. The root must sit at
	// offset 0.
	if p.NodeOffsets[ix.Roots[0]] != 0 {
		t.Errorf("root offset = %d", p.NodeOffsets[ix.Roots[0]])
	}
	// A deepest node must come after every depth-1 node in BFS.
	leaf := ix.FindPath([]string{"a", "c", "b"})
	mid := ix.FindPath([]string{"a", "c"})
	if p.NodeOffsets[leaf] < p.NodeOffsets[mid] {
		t.Error("BFS put a depth-2 node before a depth-1 node")
	}
}

func TestPackOrderString(t *testing.T) {
	if PackDFS.String() != "dfs" || PackBFS.String() != "bfs" {
		t.Error("order strings wrong")
	}
	if got := PackOrder(9).String(); got != "PackOrder(9)" {
		t.Errorf("unknown order = %q", got)
	}
}
