// Package core implements the paper's contribution: the Compact Index (CI)
// over a merged DataGuide, query-set pruning into the PCI, depth-first greedy
// packet packing, the two-tier split of document pointers, and client-style
// index lookup with packet-level cost accounting.
//
// Sizes are governed by a SizeModel whose widths also drive the binary wire
// encoding (package wire), so analytic figures, simulated tuning times and
// decodable bytes all agree.
package core

import "fmt"

// Tier selects the physical layout of the index tree.
type Tier int

const (
	// OneTier embeds (docID, offset) pairs in every node — the flat
	// baseline structure of §3.1–3.2.
	OneTier Tier = iota + 1
	// FirstTier keeps only docIDs in nodes; offsets move to the per-cycle
	// second-tier list — the paper's two-tier structure (§3.3).
	FirstTier
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case OneTier:
		return "one-tier"
	case FirstTier:
		return "first-tier"
	default:
		return fmt.Sprintf("Tier(%d)", int(t))
	}
}

// SizeModel fixes the on-air width of every index field, following §3.1
// (node layout) and §4.1 (experimental setup: 2-byte document IDs, 4-byte
// pointers, 128-byte packets).
type SizeModel struct {
	// FlagBytes is the per-node flag block.
	FlagBytes int
	// EntryLabelBytes is the width of one child entry's label identifier.
	EntryLabelBytes int
	// PointerBytes is the width of a child pointer (byte offset within the
	// index) and of a document offset pointer (byte offset within a cycle).
	PointerBytes int
	// DocIDBytes is the width of a document identifier.
	DocIDBytes int
	// PacketBytes is the fixed broadcast packet size.
	PacketBytes int
}

// DefaultSizeModel returns the paper's experimental widths.
func DefaultSizeModel() SizeModel {
	return SizeModel{
		FlagBytes:       2,
		EntryLabelBytes: 4,
		PointerBytes:    4,
		DocIDBytes:      2,
		PacketBytes:     128,
	}
}

// Validate reports whether every width is positive.
func (m SizeModel) Validate() error {
	if m.FlagBytes <= 0 || m.EntryLabelBytes <= 0 || m.PointerBytes <= 0 ||
		m.DocIDBytes <= 0 || m.PacketBytes <= 0 {
		return fmt.Errorf("core: SizeModel fields must all be positive: %+v", m)
	}
	return nil
}

// EntryBytes is the width of one <entry, pointer> child tuple.
func (m SizeModel) EntryBytes() int { return m.EntryLabelBytes + m.PointerBytes }

// DocTupleBytes is the width of one per-node document tuple under the given
// tier: (docID, offset) one-tier, docID alone in the first tier.
func (m SizeModel) DocTupleBytes(t Tier) int {
	if t == FirstTier {
		return m.DocIDBytes
	}
	return m.DocIDBytes + m.PointerBytes
}

// SecondTierEntryBytes is the width of one (docID, offset) entry in the
// second-tier list.
func (m SizeModel) SecondTierEntryBytes() int { return m.DocIDBytes + m.PointerBytes }

// IndexEncoding selects the on-air byte layout of the first tier. The
// zero value is the node-pointer layout, so existing configurations and
// captures are unaffected by the knob.
type IndexEncoding int

const (
	// EncodingNode is the paper's per-node layout: flag block plus
	// <entry, pointer> and document tuples (package wire).
	EncodingNode IndexEncoding = iota
	// EncodingSuccinct is the balanced-parentheses layout: 2-bit
	// topology, bit-packed label IDs and a rank-indexed attachment
	// bitmap (package succinct). Two-tier only.
	EncodingSuccinct
)

// String names the encoding.
func (e IndexEncoding) String() string {
	switch e {
	case EncodingNode:
		return "node"
	case EncodingSuccinct:
		return "succinct"
	default:
		return fmt.Sprintf("IndexEncoding(%d)", int(e))
	}
}

// ParseIndexEncoding resolves a -index-enc flag value; the empty string
// means the default node layout.
func ParseIndexEncoding(s string) (IndexEncoding, error) {
	switch s {
	case "", "node":
		return EncodingNode, nil
	case "succinct":
		return EncodingSuccinct, nil
	default:
		return 0, fmt.Errorf("core: unknown index encoding %q (want node or succinct)", s)
	}
}

// NodeKind classifies index nodes, mirroring the paper's flag block: a root,
// an internal node, or a leaf.
type NodeKind int

const (
	// KindRoot is a tree root node.
	KindRoot NodeKind = iota + 1
	// KindInternal has children (and possibly document tuples).
	KindInternal
	// KindLeaf has only document tuples.
	KindLeaf
)

// String names the node kind.
func (k NodeKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindInternal:
		return "internal"
	case KindLeaf:
		return "leaf"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}
