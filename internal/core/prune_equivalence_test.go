// Equivalence property: a PrunedView driven through an arbitrary sequence of
// query-set deltas and collection changes must produce, every step, exactly
// the index a from-scratch Prune of the same inputs produces — same nodes,
// same attachments, same packing, same wire bytes. The test lives in an
// external package so it can compare encodings through internal/wire.
package core_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// encodeIndex packs and wire-encodes an index for byte-level comparison.
func encodeIndex(t *testing.T, ix *core.Index) []byte {
	t.Helper()
	p := ix.Pack(core.FirstTier)
	enc, err := wire.EncodeIndex(ix, p, wire.BuildCatalog(ix), nil)
	if err != nil {
		t.Fatalf("EncodeIndex: %v", err)
	}
	return enc
}

func TestPrunedViewEquivalenceRandomized(t *testing.T) {
	docs, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pool, err := gen.Queries(docs, gen.QueryConfig{NumQueries: 40, MaxDepth: 5, WildcardProb: 0.15, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	all := docs.Docs()

	rng := rand.New(rand.NewSource(42))
	active := make(map[int]bool, len(all)) // index into all → in collection
	for i := range all {
		active[i] = true
	}
	inSet := make(map[int]bool, len(pool)) // index into pool → in query set
	for i := 0; i < 10; i++ {
		inSet[rng.Intn(len(pool))] = true
	}

	buildCI := func() *core.Index {
		live := make([]*xmldoc.Document, 0, len(all))
		for i, d := range all {
			if active[i] {
				live = append(live, d)
			}
		}
		coll, err := xmldoc.NewCollection(live)
		if err != nil {
			t.Fatal(err)
		}
		ci, err := core.BuildCI(coll, core.DefaultSizeModel())
		if err != nil {
			t.Fatal(err)
		}
		return ci
	}
	queries := func() []xpath.Path {
		out := make([]xpath.Path, 0, len(inSet))
		for i, in := range inSet {
			if in {
				out = append(out, pool[i])
			}
		}
		return out
	}

	view := core.NewPrunedView(1) // only CI changes may force a full rebuild
	ci := buildCI()
	incremental := 0
	for step := 0; step < 60; step++ {
		// Mutate: mostly small query-set drift, occasionally a collection
		// add/remove (which rebuilds the CI and must reset the view).
		switch r := rng.Float64(); {
		case r < 0.15 && len(all) > 1:
			i := rng.Intn(len(all))
			active[i] = !active[i]
			ci = buildCI()
		default:
			for n := 1 + rng.Intn(3); n > 0; n-- {
				i := rng.Intn(len(pool))
				inSet[i] = !inSet[i]
			}
		}
		qs := queries()

		got, delta, err := view.Update(ci, qs)
		if err != nil {
			t.Fatalf("step %d: Update: %v", step, err)
		}
		if !delta.Full {
			incremental++
		}
		want, wantStats, err := ci.Prune(qs)
		if err != nil {
			t.Fatalf("step %d: Prune: %v", step, err)
		}

		if err := got.Validate(); err != nil {
			t.Fatalf("step %d: view PCI invalid: %v", step, err)
		}
		if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Roots, want.Roots) {
			t.Fatalf("step %d (%d queries, full=%v reason=%q): view PCI structure differs from Prune",
				step, len(qs), delta.Full, delta.Reason)
		}
		if got.NumAttachments() != want.NumAttachments() {
			t.Fatalf("step %d: %d attachments, Prune has %d", step, got.NumAttachments(), want.NumAttachments())
		}
		if delta.Stats != wantStats {
			t.Errorf("step %d: delta stats %+v, Prune stats %+v", step, delta.Stats, wantStats)
		}
		if len(want.Nodes) > 0 {
			if g, w := encodeIndex(t, got), encodeIndex(t, want); !bytes.Equal(g, w) {
				t.Fatalf("step %d: wire encodings differ (%d vs %d bytes)", step, len(g), len(w))
			}
		}
	}
	// The drift is small by construction; the incremental path must carry
	// most steps or the property test isn't exercising it.
	if incremental < 30 {
		t.Errorf("only %d of 60 steps took the incremental path", incremental)
	}
}
