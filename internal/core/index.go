package core

import (
	"fmt"
	"sort"

	"repro/internal/dataguide"
	"repro/internal/xmldoc"
)

// NodeID indexes a node within an Index; nodes are stored in depth-first
// pre-order, the order in which they are laid out on air.
type NodeID int32

// NoNode is the nil NodeID.
const NoNode NodeID = -1

// Node is one index node (paper Fig. 3(c)): a flag block, a list of
// <entry, pointer> child tuples and a list of document tuples.
type Node struct {
	// ID is the node's position in Index.Nodes (DFS pre-order).
	ID NodeID
	// Label is the element name this node represents.
	Label string
	// Parent is the parent node, or NoNode for roots.
	Parent NodeID
	// Children are child node IDs in label-sorted order. Because nodes are
	// stored in DFS pre-order, children always have larger IDs.
	Children []NodeID
	// Docs are the document tuples attached to this node: the documents for
	// which this node's path is maximal (after pruning, also re-attached
	// descendants' documents), sorted by ID.
	Docs []xmldoc.DocID
}

// Kind classifies the node per the paper's flag block.
func (n *Node) Kind() NodeKind {
	switch {
	case n.Parent == NoNode:
		return KindRoot
	case len(n.Children) == 0:
		return KindLeaf
	default:
		return KindInternal
	}
}

// Size reports the node's on-air byte size under the model and tier.
func (n *Node) Size(m SizeModel, t Tier) int {
	return m.FlagBytes + len(n.Children)*m.EntryBytes() + len(n.Docs)*m.DocTupleBytes(t)
}

// Index is a CI or PCI: the merged-DataGuide trie annotated with document
// tuples, in depth-first layout.
type Index struct {
	// Nodes in DFS pre-order. Nodes[i].ID == i.
	Nodes []Node
	// Roots are the tree roots (one per distinct document root label).
	Roots []NodeID
	// Model fixes field widths.
	Model SizeModel
}

// BuildCI constructs the Compact Index of a whole collection: the merged
// DataGuides of every document with documents attached at their maximal
// paths (§3.1).
func BuildCI(c *xmldoc.Collection, m SizeModel) (*Index, error) {
	return BuildCIFromForest(dataguide.Merge(c), m)
}

// BuildCIParallel is BuildCI with the per-document DataGuides built
// concurrently across workers goroutines (GOMAXPROCS when workers <= 0)
// before the serial merge. The result is identical to BuildCI's.
func BuildCIParallel(c *xmldoc.Collection, m SizeModel, workers int) (*Index, error) {
	return BuildCIFromForest(dataguide.MergeParallel(c, workers), m)
}

// BuildCIFromForest builds the CI over an already-merged DataGuide forest.
func BuildCIFromForest(f *dataguide.Forest, m SizeModel) (*Index, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{Model: m}
	for _, root := range f.Roots {
		id := ix.addSubtree(root, NoNode)
		ix.Roots = append(ix.Roots, id)
	}
	return ix, nil
}

// addSubtree appends the guide subtree in DFS pre-order and returns the new
// node's ID.
func (ix *Index) addSubtree(g *dataguide.Guide, parent NodeID) NodeID {
	id := NodeID(len(ix.Nodes))
	ix.Nodes = append(ix.Nodes, Node{
		ID:     id,
		Label:  g.Label,
		Parent: parent,
		Docs:   append([]xmldoc.DocID(nil), g.Docs...),
	})
	for _, c := range g.Children {
		childID := ix.addSubtree(c, id)
		ix.Nodes[id].Children = append(ix.Nodes[id].Children, childID)
	}
	return id
}

// NumNodes reports the node count.
func (ix *Index) NumNodes() int { return len(ix.Nodes) }

// NumAttachments reports the total number of document tuples across nodes —
// the duplication the two-tier structure normalises away.
func (ix *Index) NumAttachments() int {
	total := 0
	for i := range ix.Nodes {
		total += len(ix.Nodes[i].Docs)
	}
	return total
}

// DocIDs returns the distinct documents referenced by the index, sorted.
func (ix *Index) DocIDs() []xmldoc.DocID {
	set := make(map[xmldoc.DocID]struct{})
	for i := range ix.Nodes {
		for _, id := range ix.Nodes[i].Docs {
			set[id] = struct{}{}
		}
	}
	out := make([]xmldoc.DocID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Size reports the total logical index size in bytes under the tier (the sum
// of node sizes, before packet padding).
func (ix *Index) Size(t Tier) int {
	total := 0
	for i := range ix.Nodes {
		total += ix.Nodes[i].Size(ix.Model, t)
	}
	return total
}

// PathOf reconstructs the label path of a node, for diagnostics and tests.
func (ix *Index) PathOf(id NodeID) []string {
	var rev []string
	for id != NoNode {
		rev = append(rev, ix.Nodes[id].Label)
		id = ix.Nodes[id].Parent
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// FindPath returns the node with the given label path, or NoNode.
func (ix *Index) FindPath(labels []string) NodeID {
	if len(labels) == 0 {
		return NoNode
	}
	cur := NoNode
	for _, r := range ix.Roots {
		if ix.Nodes[r].Label == labels[0] {
			cur = r
			break
		}
	}
	if cur == NoNode {
		return NoNode
	}
	for _, l := range labels[1:] {
		next := NoNode
		for _, c := range ix.Nodes[cur].Children {
			if ix.Nodes[c].Label == l {
				next = c
				break
			}
		}
		if next == NoNode {
			return NoNode
		}
		cur = next
	}
	return cur
}

// SubtreeDocs returns the union of document tuples in the subtree of id,
// sorted. It is the answer set of a query matching at id.
func (ix *Index) SubtreeDocs(id NodeID) []xmldoc.DocID {
	set := make(map[xmldoc.DocID]struct{})
	ix.walkSubtree(id, func(n *Node) {
		for _, d := range n.Docs {
			set[d] = struct{}{}
		}
	})
	if len(set) == 0 {
		return nil
	}
	out := make([]xmldoc.DocID, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// walkSubtree visits the subtree of id in DFS pre-order. The walk keeps an
// explicit stack so pathologically deep tries cannot exhaust the goroutine
// stack.
func (ix *Index) walkSubtree(id NodeID, visit func(*Node)) {
	if id == NoNode {
		return
	}
	stack := make([]NodeID, 0, 64)
	stack = append(stack, id)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(&ix.Nodes[cur])
		children := ix.Nodes[cur].Children
		for i := len(children) - 1; i >= 0; i-- {
			stack = append(stack, children[i])
		}
	}
}

// Validate checks structural invariants: DFS-pre-order storage, consistent
// parent/child links, sorted children and document lists. It is used by
// tests and by the wire decoder.
func (ix *Index) Validate() error {
	if err := ix.Model.Validate(); err != nil {
		return err
	}
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		if n.ID != NodeID(i) {
			return fmt.Errorf("core: node %d has ID %d", i, n.ID)
		}
		if n.Parent != NoNode && (n.Parent < 0 || int(n.Parent) >= len(ix.Nodes)) {
			return fmt.Errorf("core: node %d has out-of-range parent %d", i, n.Parent)
		}
		if n.Parent != NoNode && n.Parent >= n.ID {
			return fmt.Errorf("core: node %d not in pre-order: parent %d", i, n.Parent)
		}
		prevLabel := ""
		for ci, c := range n.Children {
			if c <= n.ID || int(c) >= len(ix.Nodes) {
				return fmt.Errorf("core: node %d has bad child %d", i, c)
			}
			if ix.Nodes[c].Parent != n.ID {
				return fmt.Errorf("core: node %d child %d does not point back", i, c)
			}
			if ci > 0 && ix.Nodes[c].Label <= prevLabel {
				return fmt.Errorf("core: node %d children not label-sorted", i)
			}
			prevLabel = ix.Nodes[c].Label
		}
		for di := 1; di < len(n.Docs); di++ {
			if n.Docs[di-1] >= n.Docs[di] {
				return fmt.Errorf("core: node %d docs not sorted/deduped", i)
			}
		}
	}
	// Every non-root node must be listed exactly once among its parent's
	// children; otherwise it is unreachable from the roots.
	childCount := make(map[NodeID]int, len(ix.Nodes))
	for i := range ix.Nodes {
		for _, c := range ix.Nodes[i].Children {
			childCount[c]++
		}
	}
	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		if n.Parent == NoNode {
			if childCount[n.ID] != 0 {
				return fmt.Errorf("core: root-like node %d listed as a child", i)
			}
			continue
		}
		if childCount[n.ID] != 1 {
			return fmt.Errorf("core: node %d listed as a child %d times, want 1", i, childCount[n.ID])
		}
		found := false
		for _, c := range ix.Nodes[n.Parent].Children {
			if c == n.ID {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("core: node %d missing from parent %d's children", i, n.Parent)
		}
	}
	seen := make(map[NodeID]struct{}, len(ix.Roots))
	for _, r := range ix.Roots {
		if r < 0 || int(r) >= len(ix.Nodes) {
			return fmt.Errorf("core: out-of-range root %d", r)
		}
		if ix.Nodes[r].Parent != NoNode {
			return fmt.Errorf("core: root %d has a parent", r)
		}
		if _, dup := seen[r]; dup {
			return fmt.Errorf("core: duplicate root %d", r)
		}
		seen[r] = struct{}{}
	}
	return nil
}
