package core

import (
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// LookupResult is the outcome of one client-style index navigation.
type LookupResult struct {
	// Docs is the query's answer: the sorted IDs of matching documents.
	Docs []xmldoc.DocID
	// Visited lists the distinct index nodes the client had to read, in
	// read order: every node on the explored navigation frontier plus the
	// full subtree of every match node (document tuples are scattered
	// across match subtrees).
	Visited []NodeID
}

// Navigator performs index lookups for one query, caching the query's
// automaton so a client can re-navigate each broadcast cycle without
// recompiling. A Navigator is not safe for concurrent use.
type Navigator struct {
	query xpath.Path
	f     *yfilter.Filter
}

// NewNavigator compiles a navigator for the query.
func NewNavigator(q xpath.Path) *Navigator {
	return &Navigator{query: q, f: yfilter.New([]xpath.Path{q})}
}

// Query returns the navigator's query.
func (nav *Navigator) Query() xpath.Path { return nav.query }

// Filter exposes the navigator's compiled automaton so alternative index
// layouts (package succinct) can navigate with the identical machine.
func (nav *Navigator) Filter() *yfilter.Filter { return nav.f }

// Lookup navigates the index as the client access protocol does (§3.1):
// starting from the roots, the client reads a node, advances its query
// automaton on the node's label, and uses the node's <entry, pointer> tuples
// to descend only into children whose label keeps the automaton alive. At a
// node where the query accepts, the client reads the whole subtree to
// collect document tuples and descends no further there.
func (nav *Navigator) Lookup(ix *Index) LookupResult {
	var res LookupResult
	docs := make(map[xmldoc.DocID]struct{})
	var visit func(id NodeID, s yfilter.StateSet)
	visit = func(id NodeID, s yfilter.StateSet) {
		n := &ix.Nodes[id]
		res.Visited = append(res.Visited, id)
		next := nav.f.Step(s, n.Label)
		if next.Empty() {
			return
		}
		if nav.f.HasAccepting(next) {
			for _, d := range n.Docs {
				docs[d] = struct{}{}
			}
			for _, c := range n.Children {
				ix.walkSubtree(c, func(sub *Node) {
					res.Visited = append(res.Visited, sub.ID)
					for _, d := range sub.Docs {
						docs[d] = struct{}{}
					}
				})
			}
			return
		}
		for _, c := range n.Children {
			// The child's label is known from this node's entry list, so
			// the client steps the automaton before deciding to read it.
			if !nav.f.Step(next, ix.Nodes[c].Label).Empty() {
				visit(c, next)
			}
		}
	}
	for _, r := range ix.Roots {
		// The root's label is part of the index head, but the root node
		// itself must be read to obtain its entry list.
		visit(r, nav.f.Start())
	}
	res.Docs = sortedDocSet(docs)
	return res
}

// Lookup is a convenience wrapper that compiles and runs a one-off
// navigation for q.
func (ix *Index) Lookup(q xpath.Path) LookupResult {
	return NewNavigator(q).Lookup(ix)
}
