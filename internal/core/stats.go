package core

// IndexStats is a structural summary of an index, used by the inspection
// tooling and documentation examples.
type IndexStats struct {
	// Nodes is the node count.
	Nodes int
	// Leaves counts leaf nodes.
	Leaves int
	// Attachments counts document tuples across all nodes.
	Attachments int
	// Docs counts distinct referenced documents.
	Docs int
	// MaxDepth is the deepest node's depth (root = 1).
	MaxDepth int
	// MaxFanout is the largest child count of any node.
	MaxFanout int
	// AvgFanout is the mean child count over internal nodes.
	AvgFanout float64
	// OneTierBytes and FirstTierBytes are the logical sizes per tier.
	OneTierBytes, FirstTierBytes int
}

// Stats computes the structural summary.
func (ix *Index) Stats() IndexStats {
	st := IndexStats{
		Nodes:          ix.NumNodes(),
		Attachments:    ix.NumAttachments(),
		Docs:           len(ix.DocIDs()),
		OneTierBytes:   ix.Size(OneTier),
		FirstTierBytes: ix.Size(FirstTier),
	}
	internal := 0
	children := 0
	var walk func(id NodeID, depth int)
	walk = func(id NodeID, depth int) {
		n := &ix.Nodes[id]
		if depth > st.MaxDepth {
			st.MaxDepth = depth
		}
		if len(n.Children) == 0 {
			st.Leaves++
		} else {
			internal++
			children += len(n.Children)
			if len(n.Children) > st.MaxFanout {
				st.MaxFanout = len(n.Children)
			}
		}
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range ix.Roots {
		walk(r, 1)
	}
	if internal > 0 {
		st.AvgFanout = float64(children) / float64(internal)
	}
	return st
}
