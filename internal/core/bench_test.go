package core

import (
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func benchFixture(b *testing.B) (*xmldoc.Collection, *Index, []xpath.Path) {
	b.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 50, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ix, err := BuildCI(c, DefaultSizeModel())
	if err != nil {
		b.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 200, MaxDepth: 5, WildcardProb: 0.1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	return c, ix, queries
}

func BenchmarkBuildCI(b *testing.B) {
	c, _, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCI(c, DefaultSizeModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildCIParallel measures CI construction with the per-document
// DataGuides built across all available workers (the engine's default path).
func BenchmarkBuildCIParallel(b *testing.B) {
	c, _, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCIParallel(c, DefaultSizeModel(), 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPrune200Queries(b *testing.B) {
	_, ix, queries := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ix.Prune(queries); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPruneIncremental measures steady-state re-pruning under realistic
// query drift: every cycle swaps 5 of 200 active queries (≈5% churn, under
// the default fallback threshold). The delta sub-benchmark drives a warm
// PrunedView, full re-prunes from scratch over the identical drift sequence;
// the acceptance target is delta ≥ 2× faster than full.
func BenchmarkPruneIncremental(b *testing.B) {
	c, ix, _ := benchFixture(b)
	pool, err := gen.Queries(c, gen.QueryConfig{NumQueries: 220, MaxDepth: 5, WildcardProb: 0.1, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	// window slides by 5 queries per cycle over the 220-query pool, so
	// consecutive windows differ by exactly 5 removed + 5 added.
	window := func(i int) []xpath.Path {
		off := (i * 5) % 20
		return pool[off : off+200]
	}
	b.Run("delta", func(b *testing.B) {
		view := NewPrunedView(0)
		if _, _, err := view.Update(ix, window(0)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := view.Update(ix, window(i+1)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := ix.Prune(window(i + 1)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkNavigatorLookup(b *testing.B) {
	_, ix, queries := benchFixture(b)
	navs := make([]*Navigator, len(queries))
	for i, q := range queries {
		navs[i] = NewNavigator(q)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		navs[i%len(navs)].Lookup(ix)
	}
}

func BenchmarkPackBothTiers(b *testing.B) {
	_, ix, _ := benchFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Pack(OneTier)
		ix.Pack(FirstTier)
	}
}

func BenchmarkSubtreeDocs(b *testing.B) {
	_, ix, _ := benchFixture(b)
	root := ix.Roots[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SubtreeDocs(root)
	}
}
