package core

import (
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// DefaultPruneChurn is the query-churn fraction above which PrunedView.Update
// abandons delta maintenance and re-prunes from scratch: the delta walk plus
// per-flip bookkeeping stops paying for itself once a quarter of the active
// query set turns over in one cycle.
const DefaultPruneChurn = 0.25

// Reasons reported in PruneDelta.Reason when Update ran a full prune.
const (
	// PruneReasonInitial is the view's first Update (nothing to delta from).
	PruneReasonInitial = "initial"
	// PruneReasonIndexChanged means the CI itself changed (document added or
	// removed), invalidating every per-node refcount.
	PruneReasonIndexChanged = "index-changed"
	// PruneReasonChurn means the query-set delta exceeded the churn
	// threshold, making a from-scratch prune cheaper than the delta pass.
	PruneReasonChurn = "churn"
)

// PruneDelta summarises one PrunedView.Update: the query-set delta it was
// given, how much work the update could skip, and the equivalent full-prune
// statistics of the returned PCI.
type PruneDelta struct {
	// Added and Removed count queries entering and leaving the set since
	// the previous Update.
	Added, Removed int
	// Full reports that a from-scratch prune ran; Reason says why (one of
	// the PruneReason* constants). Both are zero for an incremental update.
	Full   bool
	Reason string
	// FlippedMatches counts CI nodes whose matched status (≥1 accepting
	// query) flipped under the delta.
	FlippedMatches int
	// KeptChanged reports that the kept-node set changed, forcing a
	// structural rebuild of the PCI rather than an attachment patch.
	KeptChanged bool
	// DocsChanged counts documents whose requested status flipped.
	DocsChanged int
	// Reused reports that the delta left the PCI identical to the previous
	// cycle's, which was returned as-is. Patched reports that only the
	// attachment lists of affected nodes were re-filtered on the previous
	// structure.
	Reused, Patched bool
	// Stats are the full-prune-equivalent statistics for the returned PCI.
	Stats PruneStats
}

// viewQuery is one active query's contribution to the view: the CI nodes
// where it accepts, so removing the query is pure refcount arithmetic.
type viewQuery struct {
	query xpath.Path
	nodes []NodeID
}

// PrunedView maintains a PCI incrementally across broadcast cycles. A full
// Prune re-runs the whole query automaton over the CI every cycle; a view
// instead keeps per-node and per-document refcounts so that when the pending
// query set drifts by a few queries, only the delta is re-evaluated:
//
//   - removed queries subtract their recorded match nodes (no automaton walk);
//   - added queries run a small automaton of just themselves over the trie;
//   - refcount flips re-mark only the affected root-to-match paths
//     (kept-node counts) and re-bubble only the attachments of documents
//     whose requested status flipped.
//
// When the delta changes no kept node, the previous PCI is either returned
// unchanged or patched copy-on-write (affected attachment lists re-filtered
// from cached candidate sets); only a kept-set change rebuilds the output
// index. Update falls back to a full prune when the CI pointer changes or the
// churn threshold is exceeded. The produced PCI is defined to be node-,
// attachment- and packing-identical to Prune of the same query set.
//
// A PrunedView is not safe for concurrent use; the engine guards it with its
// assembly mutex. Returned indexes are immutable and remain valid after
// further updates.
type PrunedView struct {
	churn float64

	// Source-CI state, rebuilt whenever ci changes.
	ci            *Index
	ciAttachments int
	queries       map[string]*viewQuery
	matchCount    []int32 // per CI node: active queries accepting there
	keepRef       []int32 // per CI node: matched nodes in its subtree (self incl.)
	docRef        map[xmldoc.DocID]int32
	subtree       [][]xmldoc.DocID // lazy per-node subtree-doc cache
	matchedNodes  int

	// Output state.
	pci         *Index
	candidates  [][]xmldoc.DocID // per PCI node: unfiltered attachment candidates
	docNodes    map[xmldoc.DocID][]NodeID
	attachments int
}

// NewPrunedView returns an empty view. churn is the query-churn fraction
// (delta size over the union of old and new query sets) above which Update
// falls back to a full prune; values <= 0 select DefaultPruneChurn, values
// >= 1 never fall back on churn.
func NewPrunedView(churn float64) *PrunedView {
	if churn <= 0 {
		churn = DefaultPruneChurn
	}
	return &PrunedView{churn: churn}
}

// SetChurn retunes the fallback threshold for subsequent Updates, with the
// same interpretation as NewPrunedView's churn. The engine's adaptive
// controller calls this each cycle with its measured breakeven.
func (v *PrunedView) SetChurn(churn float64) {
	if churn <= 0 {
		churn = DefaultPruneChurn
	}
	v.churn = churn
}

// Update re-prunes the index to the given query set, reusing the previous
// cycle's work where the delta allows. ci must be the caller's current CI; a
// different pointer than the previous call's (the index was rebuilt after a
// collection change) resets the view with a full prune.
func (v *PrunedView) Update(ci *Index, queries []xpath.Path) (*Index, PruneDelta, error) {
	// Dedup the incoming set by canonical string, preserving first-seen
	// order (Prune is insensitive to duplicates and order; the dedup makes
	// the delta well defined).
	want := make(map[string]xpath.Path, len(queries))
	order := make([]string, 0, len(queries))
	deduped := make([]xpath.Path, 0, len(queries))
	for _, q := range queries {
		key := q.String()
		if _, dup := want[key]; dup {
			continue
		}
		want[key] = q
		order = append(order, key)
		deduped = append(deduped, q)
	}

	var added, removed []string
	for _, key := range order {
		if _, ok := v.queries[key]; !ok {
			added = append(added, key)
		}
	}
	for key := range v.queries {
		if _, ok := want[key]; !ok {
			removed = append(removed, key)
		}
	}
	delta := PruneDelta{Added: len(added), Removed: len(removed)}

	if ci != v.ci {
		reason := PruneReasonInitial
		if v.ci != nil {
			reason = PruneReasonIndexChanged
		}
		return v.rebuildAll(ci, deduped, delta, reason)
	}
	if len(added)+len(removed) == 0 {
		delta.Reused = true
		delta.Stats = v.stats()
		return v.pci, delta, nil
	}
	// Churn check: the union of old and new sets is old ∪ added.
	union := len(v.queries) + len(added)
	if float64(len(added)+len(removed)) > v.churn*float64(union) {
		return v.rebuildAll(ci, deduped, delta, PruneReasonChurn)
	}

	// Apply the delta to the per-node refcounts, recording each touched
	// node's pre-update count so a node removed by one query and re-added by
	// another nets out to no flip.
	touched := make(map[NodeID]int32)
	note := func(id NodeID) {
		if _, ok := touched[id]; !ok {
			touched[id] = v.matchCount[id]
		}
	}
	for _, key := range removed {
		vq := v.queries[key]
		for _, id := range vq.nodes {
			note(id)
			v.matchCount[id]--
		}
		delete(v.queries, key)
	}
	if len(added) > 0 {
		addQueries := make([]xpath.Path, len(added))
		for i, key := range added {
			addQueries[i] = want[key]
		}
		perQuery := make([][]NodeID, len(added))
		ci.forEachMatch(yfilter.New(addQueries), func(id NodeID, accepted []int) {
			note(id)
			v.matchCount[id] += int32(len(accepted))
			for _, qi := range accepted {
				perQuery[qi] = append(perQuery[qi], id)
			}
		})
		for i, key := range added {
			v.queries[key] = &viewQuery{query: addQueries[i], nodes: perQuery[i]}
		}
	}

	// Propagate match flips into the kept-path and requested-doc refcounts,
	// again netting flips through pre-update snapshots.
	touchedDocs := make(map[xmldoc.DocID]int32)
	noteDoc := func(d xmldoc.DocID) {
		if _, ok := touchedDocs[d]; !ok {
			touchedDocs[d] = v.docRef[d]
		}
	}
	for id, before := range touched {
		was, is := before > 0, v.matchCount[id] > 0
		if was == is {
			continue
		}
		delta.FlippedMatches++
		var dir int32 = 1
		if !is {
			dir = -1
		}
		v.matchedNodes += int(dir)
		for cur := id; cur != NoNode; cur = ci.Nodes[cur].Parent {
			v.keepRef[cur] += dir
			if v.keepRef[cur] == 0 || (dir > 0 && v.keepRef[cur] == 1) {
				delta.KeptChanged = true
			}
		}
		for _, d := range v.subtreeDocs(id) {
			noteDoc(d)
			v.docRef[d] += dir
		}
	}
	changedDocs := make([]xmldoc.DocID, 0, len(touchedDocs))
	for d, before := range touchedDocs {
		if (before > 0) != (v.docRef[d] > 0) {
			changedDocs = append(changedDocs, d)
		}
		if v.docRef[d] == 0 {
			delete(v.docRef, d)
		}
	}
	delta.DocsChanged = len(changedDocs)

	switch {
	case delta.KeptChanged:
		v.rebuildOutput()
	case len(changedDocs) > 0:
		delta.Patched = v.patchDocs(changedDocs)
		delta.Reused = !delta.Patched
	default:
		delta.Reused = true
	}
	delta.Stats = v.stats()
	return v.pci, delta, nil
}

// rebuildAll resets the whole view against a (possibly new) CI and query set
// with one full prune pass, recording the per-query match lists the next
// delta needs.
func (v *PrunedView) rebuildAll(ci *Index, queries []xpath.Path, delta PruneDelta, reason string) (*Index, PruneDelta, error) {
	v.ci = ci
	v.ciAttachments = ci.NumAttachments()
	v.queries = make(map[string]*viewQuery, len(queries))
	v.matchCount = make([]int32, len(ci.Nodes))
	v.keepRef = make([]int32, len(ci.Nodes))
	v.docRef = make(map[xmldoc.DocID]int32)
	v.subtree = nil
	v.matchedNodes = 0

	perQuery := make([][]NodeID, len(queries))
	ci.forEachMatch(yfilter.New(queries), func(id NodeID, accepted []int) {
		v.matchCount[id] = int32(len(accepted))
		for _, qi := range accepted {
			perQuery[qi] = append(perQuery[qi], id)
		}
		v.matchedNodes++
		for cur := id; cur != NoNode; cur = ci.Nodes[cur].Parent {
			v.keepRef[cur]++
		}
		for _, d := range v.subtreeDocs(id) {
			v.docRef[d]++
		}
	})
	for i, q := range queries {
		v.queries[q.String()] = &viewQuery{query: q, nodes: perQuery[i]}
	}

	v.rebuildOutput()
	delta.Full = true
	delta.Reason = reason
	delta.Stats = v.stats()
	return v.pci, delta, nil
}

// rebuildOutput re-derives the PCI, its candidate attachment sets and the
// document → node inverted index from the current refcounts.
func (v *PrunedView) rebuildOutput() {
	v.candidates = v.candidates[:0]
	v.docNodes = make(map[xmldoc.DocID][]NodeID)
	v.pci = v.ci.rebuildPruned(
		func(id NodeID) bool { return v.keepRef[id] > 0 },
		func(d xmldoc.DocID) bool { return v.docRef[d] > 0 },
		func(id NodeID, candidates []xmldoc.DocID) {
			v.candidates = append(v.candidates, candidates)
			for _, d := range candidates {
				v.docNodes[d] = append(v.docNodes[d], id)
			}
		},
	)
	v.attachments = v.pci.NumAttachments()
}

// patchDocs re-filters the attachment lists of the nodes whose candidates
// contain a document whose requested status flipped. The structure (kept set)
// is unchanged, so the previous PCI is cloned copy-on-write: fresh Nodes
// slice, fresh Docs for affected nodes, everything else shared — previously
// returned indexes stay valid. Returns false when no node was affected (the
// previous PCI was returned unchanged).
func (v *PrunedView) patchDocs(changedDocs []xmldoc.DocID) bool {
	affected := make(map[NodeID]struct{})
	for _, d := range changedDocs {
		for _, id := range v.docNodes[d] {
			affected[id] = struct{}{}
		}
	}
	if len(affected) == 0 {
		return false
	}
	nodes := append([]Node(nil), v.pci.Nodes...)
	for id := range affected {
		docs := filterDocs(v.candidates[id], func(d xmldoc.DocID) bool { return v.docRef[d] > 0 })
		v.attachments += len(docs) - len(nodes[id].Docs)
		nodes[id].Docs = docs
	}
	v.pci = &Index{Nodes: nodes, Roots: v.pci.Roots, Model: v.pci.Model}
	return true
}

// subtreeDocs returns the (cached) sorted subtree document union of a CI
// node. The CI is immutable for the view's lifetime, so entries never
// invalidate; a zero-length sentinel distinguishes "computed, empty" from
// "not yet computed".
func (v *PrunedView) subtreeDocs(id NodeID) []xmldoc.DocID {
	if v.subtree == nil {
		v.subtree = make([][]xmldoc.DocID, len(v.ci.Nodes))
	}
	if v.subtree[id] == nil {
		docs := v.ci.SubtreeDocs(id)
		if docs == nil {
			docs = []xmldoc.DocID{}
		}
		v.subtree[id] = docs
	}
	return v.subtree[id]
}

// stats derives the full-prune-equivalent PruneStats from tracked state.
func (v *PrunedView) stats() PruneStats {
	return PruneStats{
		NodesBefore:       v.ci.NumNodes(),
		AttachmentsBefore: v.ciAttachments,
		NodesAfter:        v.pci.NumNodes(),
		AttachmentsAfter:  v.attachments,
		DocsRequested:     len(v.docRef),
		MatchedNodes:      v.matchedNodes,
	}
}
