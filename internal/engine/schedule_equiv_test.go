package engine

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/schedule"
	"repro/internal/xmldoc"
)

// TestIncrementalScheduleMatchesReference drives two engines — one using the
// default incremental demand index, one with ScheduleChurn disabled so every
// cycle replans from scratch — through the same randomized pending-set
// evolution (arrivals, lossy deliveries, abandons, completions, and one
// high-churn burst that trips the rebuild fallback) and requires byte-equal
// cycle plans from all four policies.
func TestIncrementalScheduleMatchesReference(t *testing.T) {
	c, queries := fixture(t, 30, 60)
	capacity := c.TotalSize() / 10

	for _, name := range schedule.Names() {
		t.Run(name, func(t *testing.T) {
			mk := func(churn float64) *Engine {
				sched, err := schedule.New(name)
				if err != nil {
					t.Fatal(err)
				}
				e, err := New(Config{
					Collection:    c,
					Mode:          broadcast.TwoTierMode,
					Scheduler:     sched,
					CycleCapacity: capacity,
					ScheduleChurn: churn,
				})
				if err != nil {
					t.Fatal(err)
				}
				return e
			}
			inc := mk(0)  // default: incremental demand index
			ref := mk(-1) // reference: full replan every cycle

			answers, err := inc.ResolveAll(queries)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(7))
			type client struct {
				p    Pending
				lost map[xmldoc.DocID]int // deliveries this client missed
			}
			var live []*client
			nextID := int64(0)
			for cycle := int64(0); cycle < 40; cycle++ {
				// Arrivals; cycle 20 replaces the whole audience — churn 1.0,
				// which must trip the fallback to a full rebuild.
				n := 1 + rng.Intn(4)
				if cycle == 20 {
					live = live[:0]
					n = 30
				}
				for i := 0; i < n; i++ {
					q := queries[rng.Intn(len(queries))]
					docs := answers[q.String()]
					if len(docs) == 0 {
						continue
					}
					live = append(live, &client{
						p: Pending{
							ID:        nextID,
							Query:     q,
							Arrival:   cycle,
							Remaining: append([]xmldoc.DocID(nil), docs...),
						},
						lost: map[xmldoc.DocID]int{},
					})
					nextID++
				}
				// Random abandons.
				keep := live[:0]
				for _, cl := range live {
					if rng.Intn(20) != 0 {
						keep = append(keep, cl)
					}
				}
				live = keep

				pending := make([]Pending, len(live))
				for i, cl := range live {
					pending[i] = cl.p
				}
				got, err := inc.AssembleCycle(cycle, cycle, pending)
				if err != nil {
					t.Fatal(err)
				}
				want, err := ref.AssembleCycle(cycle, cycle, pending)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Docs, want.Docs) {
					t.Fatalf("cycle %d: incremental plan %v, reference %v", cycle, got.Docs, want.Docs)
				}

				// Lossy delivery: 15% of (client, doc) tunes are missed, so
				// those Remaining sets stay unshrunk and the next diff must
				// reconcile them against the index's post-plan state.
				aired := make(map[xmldoc.DocID]struct{}, len(got.Docs))
				for _, p := range got.Docs {
					aired[p.ID] = struct{}{}
				}
				keep = live[:0]
				for _, cl := range live {
					rem := cl.p.Remaining[:0]
					for _, d := range cl.p.Remaining {
						if _, ok := aired[d]; ok && rng.Intn(100) >= 15 {
							continue
						}
						rem = append(rem, d)
					}
					cl.p.Remaining = rem
					if len(rem) > 0 {
						keep = append(keep, cl)
					}
				}
				live = keep
			}

			im, rm := inc.Metrics(), ref.Metrics()
			if im.IncrementalSchedules == 0 {
				t.Error("incremental engine never took the delta path")
			}
			if im.FullSchedules == 0 {
				t.Error("churn burst never forced a full rebuild")
			}
			if rm.IncrementalSchedules != 0 {
				t.Errorf("reference engine took %d incremental schedules", rm.IncrementalSchedules)
			}
			if im.Stages[StageScheduleDelta].Count == 0 {
				t.Error("schedule-delta stage never reported")
			}
		})
	}
}
