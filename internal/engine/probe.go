package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/broadcast"
)

// Pipeline stage names reported through Probe. Each AssembleCycle runs
// schedule then build; EncodeCycle runs encode; Resolve/ResolveAll run
// resolve for cache misses.
const (
	// StageResolve is query answering: the shared NFA filter (or the
	// answer cache) maps pending queries to result-document sets. Input is
	// the number of queries resolved against the collection (cache misses),
	// output the total matched document count.
	StageResolve = "resolve"
	// StageSchedule is cycle planning. Input is the number of pending
	// requests, output the number of planned documents.
	StageSchedule = "schedule"
	// StageBuild is PCI pruning, packing and cycle layout. Input is the CI
	// node count, output the pruned index node count.
	StageBuild = "build"
	// StagePruneDelta is the incremental-prune sub-span of the build stage:
	// the time the PrunedView spent applying a query-set delta instead of
	// re-pruning from scratch. Input is the delta size (queries added plus
	// removed), output the number of CI nodes whose matched status flipped.
	// Full prunes do not report this stage; their time lands in StageBuild
	// only.
	StagePruneDelta = "prune-delta"
	// StageScheduleDelta is the incremental-scheduling sub-span of the
	// schedule stage: the time spent diffing the pending set against the
	// persistent demand index and applying the delta instead of rebuilding
	// the aggregation from scratch. Input is the delta size (requests
	// added, reconciled or removed), output the number of requester-list
	// edits applied. Full rebuilds do not report this stage; their time
	// lands in StageSchedule only.
	StageScheduleDelta = "schedule-delta"
	// StageEncode is wire encoding of the index, second-tier and document
	// segments. Input is the number of encoded segments, output the total
	// encoded bytes.
	StageEncode = "encode"
)

// Schedule kinds reported through Probe.ScheduleDone.
const (
	// ScheduleIncremental is a cycle planned from the delta-maintained
	// demand index.
	ScheduleIncremental = "incremental"
	// ScheduleFull is a cycle planned after a from-scratch demand
	// aggregation: the index's first cycle, a churn fallback rebuild, or
	// incremental scheduling disabled (including non-indexable policies).
	ScheduleFull = "full"
)

// Cache kinds reported through Probe.CacheEvicted.
const (
	// EvictAnswer identifies the memoized query-answer cache.
	EvictAnswer = "answer"
	// EvictPayload identifies the per-document payload cache.
	EvictPayload = "payload"
)

// Prune kinds reported through Probe.PruneDone.
const (
	// PruneIncremental is a cycle whose PCI came from the incremental
	// maintainer (a delta update, including the degenerate no-change reuse).
	PruneIncremental = "incremental"
	// PruneFull is a from-scratch prune with no usable prior state: the
	// view's first cycle, or incremental maintenance disabled.
	PruneFull = "full"
	// PruneFallback is a from-scratch prune forced on a live view — the
	// query-set churn exceeded the threshold or the CI itself changed.
	PruneFallback = "fallback"
)

// Probe receives engine telemetry. Implementations must be safe for
// concurrent use; the engine may report from multiple goroutines. The
// zero-cost default is NopProbe.
type Probe interface {
	// StageDone reports one completed pipeline stage with its wall time and
	// the stage's input/output sizes (see the Stage* constants for units).
	StageDone(stage string, wall time.Duration, in, out int)
	// CacheAccess reports one answer-cache lookup.
	CacheAccess(hit bool)
	// CacheInvalidated reports one collection update that invalidated
	// cached state; the entries it actually dropped are reported through
	// CacheEvicted.
	CacheInvalidated()
	// CacheEvicted reports n entries dropped from the named cache
	// (EvictAnswer or EvictPayload), whether by an LRU bound or by
	// targeted invalidation after a collection update.
	CacheEvicted(kind string, n int)
	// PruneDone reports how one cycle's PCI was produced: kind is
	// PruneIncremental, PruneFull or PruneFallback. Degraded cycles (budget
	// overrun, no prune completed) report CycleDegraded instead.
	PruneDone(kind string)
	// ScheduleDone reports how one cycle's plan was produced: kind is
	// ScheduleIncremental or ScheduleFull.
	ScheduleDone(kind string)
	// CycleDegraded reports one cycle whose build stage blew its
	// Limits.BuildBudget and fell back to broadcasting the unpruned CI.
	CycleDegraded()
	// ChannelDone reports one channel's share of an assembled multichannel
	// cycle: its payload bytes this cycle and whether the cycle was
	// degraded. Single-channel cycles do not report it (their figures are
	// the cycle aggregates already carried by StageDone and CycleDone).
	ChannelDone(channel int, role broadcast.ChannelRole, bytes int64, degraded bool)
	// CycleDone reports one fully assembled broadcast cycle.
	CycleDone()
}

// NopProbe is the default Probe; every method is a no-op.
type NopProbe struct{}

// StageDone implements Probe.
func (NopProbe) StageDone(string, time.Duration, int, int) {}

// CacheAccess implements Probe.
func (NopProbe) CacheAccess(bool) {}

// CacheInvalidated implements Probe.
func (NopProbe) CacheInvalidated() {}

// CacheEvicted implements Probe.
func (NopProbe) CacheEvicted(string, int) {}

// PruneDone implements Probe.
func (NopProbe) PruneDone(string) {}

// ScheduleDone implements Probe.
func (NopProbe) ScheduleDone(string) {}

// CycleDegraded implements Probe.
func (NopProbe) CycleDegraded() {}

// ChannelDone implements Probe.
func (NopProbe) ChannelDone(int, broadcast.ChannelRole, int64, bool) {}

// CycleDone implements Probe.
func (NopProbe) CycleDone() {}

// StageStats accumulates one stage's counters.
type StageStats struct {
	// Count is the number of completed stage executions.
	Count int64
	// Wall is the total wall time spent in the stage.
	Wall time.Duration
	// In and Out accumulate the stage's input and output sizes.
	In, Out int64
}

// Metrics is a point-in-time snapshot of engine telemetry, exported through
// netcast.ServerStats and sim.Result.
type Metrics struct {
	// Stages holds per-stage counters keyed by the Stage* constants.
	Stages map[string]StageStats
	// CacheHits and CacheMisses count answer-cache lookups.
	CacheHits, CacheMisses int64
	// CacheInvalidations counts collection updates that invalidated cached
	// state.
	CacheInvalidations int64
	// AnswerEvictions and PayloadEvictions count entries dropped from the
	// answer and payload caches, by LRU bounds or targeted invalidation.
	AnswerEvictions, PayloadEvictions int64
	// Cycles counts assembled broadcast cycles.
	Cycles int64
	// DegradedCycles counts cycles that blew Limits.BuildBudget and were
	// broadcast with the unpruned CI instead of the PCI.
	DegradedCycles int64
	// IncrementalPrunes counts cycles whose PCI came from the incremental
	// maintainer's delta path; FullPrunes counts from-scratch prunes.
	// PruneFallbacks is the subset of FullPrunes forced on a live view by
	// query-set churn or a CI change.
	IncrementalPrunes, FullPrunes, PruneFallbacks int64
	// IncrementalSchedules counts cycles planned from the delta-maintained
	// demand index; FullSchedules counts cycles planned after a
	// from-scratch demand aggregation (cold start, churn fallback, or
	// incremental scheduling disabled).
	IncrementalSchedules, FullSchedules int64
	// Channels holds per-channel aggregates, indexed by channel ID; empty
	// on single-channel runs.
	Channels []ChannelMetrics
	// Health is the adaptive admission controller's three-state load
	// signal; empty when no controller is wired (see Config.Adaptive).
	Health Health
	// Adaptive snapshots the controller's live limits and estimators; nil
	// when no controller is wired.
	Adaptive *AdaptiveState
}

// ChannelMetrics accumulates one broadcast channel's share of the
// multichannel cycles assembled so far.
type ChannelMetrics struct {
	// Role names the channel's function: "index" or "data".
	Role string `json:"role"`
	// Cycles counts the cycles this channel took part in.
	Cycles int64 `json:"cycles"`
	// Bytes is the channel's cumulative payload.
	Bytes int64 `json:"bytes"`
	// LastCycleBytes and MaxCycleBytes track the channel's per-cycle
	// payload (its cycle length at channel pace).
	LastCycleBytes int64 `json:"last_cycle_bytes"`
	MaxCycleBytes  int64 `json:"max_cycle_bytes"`
	// DegradedCycles counts the channel's share of degraded cycles.
	DegradedCycles int64 `json:"degraded_cycles"`
}

// CacheHitRate is the fraction of answer-cache lookups that hit, or 0 when
// the cache was never consulted.
func (m Metrics) CacheHitRate() float64 {
	total := m.CacheHits + m.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(m.CacheHits) / float64(total)
}

// String renders the metrics as one compact line, for CLI reporting.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cycles=%d cache=%d/%d (%.0f%% hit)",
		m.Cycles, m.CacheHits, m.CacheHits+m.CacheMisses, 100*m.CacheHitRate())
	if m.DegradedCycles > 0 {
		fmt.Fprintf(&b, " degraded=%d", m.DegradedCycles)
	}
	if m.AnswerEvictions > 0 || m.PayloadEvictions > 0 {
		fmt.Fprintf(&b, " evicted=%d/%d", m.AnswerEvictions, m.PayloadEvictions)
	}
	if m.IncrementalPrunes > 0 || m.FullPrunes > 0 {
		fmt.Fprintf(&b, " prunes=%d incr/%d full", m.IncrementalPrunes, m.FullPrunes)
		if m.PruneFallbacks > 0 {
			fmt.Fprintf(&b, " (%d fallback)", m.PruneFallbacks)
		}
	}
	if m.IncrementalSchedules > 0 || m.FullSchedules > 0 {
		fmt.Fprintf(&b, " scheds=%d incr/%d full", m.IncrementalSchedules, m.FullSchedules)
	}
	if len(m.Channels) > 0 {
		b.WriteString(" channels=[")
		for i, ch := range m.Channels {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d:%s %dB/cycle", i, ch.Role, ch.LastCycleBytes)
		}
		b.WriteByte(']')
	}
	if m.Health != "" {
		fmt.Fprintf(&b, " health=%s", m.Health)
	}
	if a := m.Adaptive; a != nil {
		fmt.Fprintf(&b, " adaptive{pend=%d rate=%.3g churn=%.2f/%.2f lat=%s sheds=%d grows=%d}",
			a.MaxPending, a.UplinkRate, a.PruneChurn, a.ScheduleChurn,
			a.AssemblyLatency.Round(time.Microsecond), a.Sheds, a.Grows)
	}
	names := make([]string, 0, len(m.Stages))
	for name := range m.Stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := m.Stages[name]
		fmt.Fprintf(&b, " %s{n=%d wall=%s in=%d out=%d}", name, s.Count, s.Wall.Round(time.Microsecond), s.In, s.Out)
	}
	return b.String()
}

// Collector is a Probe that accumulates Metrics. Safe for concurrent use.
type Collector struct {
	mu sync.Mutex
	m  Metrics
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{m: Metrics{Stages: make(map[string]StageStats)}}
}

// StageDone implements Probe.
func (c *Collector) StageDone(stage string, wall time.Duration, in, out int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.m.Stages[stage]
	s.Count++
	s.Wall += wall
	s.In += int64(in)
	s.Out += int64(out)
	c.m.Stages[stage] = s
}

// CacheAccess implements Probe.
func (c *Collector) CacheAccess(hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if hit {
		c.m.CacheHits++
	} else {
		c.m.CacheMisses++
	}
}

// CacheInvalidated implements Probe.
func (c *Collector) CacheInvalidated() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.CacheInvalidations++
}

// CacheEvicted implements Probe.
func (c *Collector) CacheEvicted(kind string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case EvictAnswer:
		c.m.AnswerEvictions += int64(n)
	case EvictPayload:
		c.m.PayloadEvictions += int64(n)
	}
}

// PruneDone implements Probe.
func (c *Collector) PruneDone(kind string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case PruneIncremental:
		c.m.IncrementalPrunes++
	case PruneFull:
		c.m.FullPrunes++
	case PruneFallback:
		c.m.FullPrunes++
		c.m.PruneFallbacks++
	}
}

// ScheduleDone implements Probe.
func (c *Collector) ScheduleDone(kind string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch kind {
	case ScheduleIncremental:
		c.m.IncrementalSchedules++
	case ScheduleFull:
		c.m.FullSchedules++
	}
}

// CycleDegraded implements Probe.
func (c *Collector) CycleDegraded() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.DegradedCycles++
}

// ChannelDone implements Probe.
func (c *Collector) ChannelDone(channel int, role broadcast.ChannelRole, bytes int64, degraded bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.m.Channels) <= channel {
		c.m.Channels = append(c.m.Channels, ChannelMetrics{})
	}
	ch := &c.m.Channels[channel]
	ch.Role = role.String()
	ch.Cycles++
	ch.Bytes += bytes
	ch.LastCycleBytes = bytes
	if bytes > ch.MaxCycleBytes {
		ch.MaxCycleBytes = bytes
	}
	if degraded {
		ch.DegradedCycles++
	}
}

// CycleDone implements Probe.
func (c *Collector) CycleDone() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m.Cycles++
}

// Metrics returns a deep-copied snapshot.
func (c *Collector) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.m
	out.Stages = make(map[string]StageStats, len(c.m.Stages))
	for k, v := range c.m.Stages {
		out.Stages[k] = v
	}
	out.Channels = append([]ChannelMetrics(nil), c.m.Channels...)
	return out
}

// probes fans telemetry out to the internal collector plus an optional
// user probe.
type probes []Probe

func (p probes) StageDone(stage string, wall time.Duration, in, out int) {
	for _, pr := range p {
		pr.StageDone(stage, wall, in, out)
	}
}

func (p probes) CacheAccess(hit bool) {
	for _, pr := range p {
		pr.CacheAccess(hit)
	}
}

func (p probes) CacheInvalidated() {
	for _, pr := range p {
		pr.CacheInvalidated()
	}
}

func (p probes) CacheEvicted(kind string, n int) {
	for _, pr := range p {
		pr.CacheEvicted(kind, n)
	}
}

func (p probes) PruneDone(kind string) {
	for _, pr := range p {
		pr.PruneDone(kind)
	}
}

func (p probes) ScheduleDone(kind string) {
	for _, pr := range p {
		pr.ScheduleDone(kind)
	}
}

func (p probes) CycleDegraded() {
	for _, pr := range p {
		pr.CycleDegraded()
	}
}

func (p probes) ChannelDone(channel int, role broadcast.ChannelRole, bytes int64, degraded bool) {
	for _, pr := range p {
		pr.ChannelDone(channel, role, bytes, degraded)
	}
}

func (p probes) CycleDone() {
	for _, pr := range p {
		pr.CycleDone()
	}
}
