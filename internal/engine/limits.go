package engine

import (
	"container/list"
	"errors"
	"time"

	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// ErrOverload is returned (wrapped) when a configured Limits bound rejects
// work: AssembleCycle refuses a pending set larger than MaxPending, and
// admission layers built on the engine (netcast.Server) wrap it for their own
// rejections. Callers test with errors.Is(err, ErrOverload).
var ErrOverload = errors.New("engine: overloaded")

// Limits bounds the engine's memory and per-cycle latency. The zero value
// imposes no limits, preserving the unbounded pre-Limits behaviour.
type Limits struct {
	// MaxPending caps the pending-request set AssembleCycle accepts; a
	// larger set is rejected with ErrOverload before any scheduling work.
	// Admission layers reuse it as their submit-path cap. Zero means
	// unlimited.
	MaxPending int
	// MaxAnswerCacheEntries caps the memoized query answers; the least
	// recently used entry is evicted on overflow. Zero means unlimited.
	MaxAnswerCacheEntries int
	// MaxPayloadCacheBytes caps the total bytes of cached document
	// payloads; least recently broadcast payloads are evicted on overflow.
	// Zero means unlimited.
	MaxPayloadCacheBytes int
	// BuildBudget is the wall-time deadline for the build stage's PCI
	// pruning. When pruning overruns it, the cycle degrades gracefully:
	// the unpruned CI is packed and broadcast instead (a strict superset
	// of the PCI, so clients decode it unchanged) and the cycle is
	// reported through Probe.CycleDegraded. Zero means no deadline.
	BuildBudget time.Duration
}

// answerEntry is one memoized query answer. The parsed query is retained so
// collection updates can re-match only the changed document against the
// cached queries (incremental invalidation).
type answerEntry struct {
	key   string
	query xpath.Path
	docs  []xmldoc.DocID
}

// answerCache is an LRU memo of query answers keyed by canonical query
// string. maxEntries <= 0 means unbounded. Not safe for concurrent use; the
// engine guards it with its mutex.
type answerCache struct {
	maxEntries int
	ll         *list.List // front = most recently used; values are *answerEntry
	byKey      map[string]*list.Element
}

func newAnswerCache(maxEntries int) *answerCache {
	return &answerCache{maxEntries: maxEntries, ll: list.New(), byKey: make(map[string]*list.Element)}
}

func (c *answerCache) len() int { return c.ll.Len() }

func (c *answerCache) get(key string) ([]xmldoc.DocID, bool) {
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*answerEntry).docs, true
}

// put inserts or refreshes an entry and returns how many entries were
// evicted to stay within maxEntries.
func (c *answerCache) put(key string, q xpath.Path, docs []xmldoc.DocID) int {
	if el, ok := c.byKey[key]; ok {
		el.Value.(*answerEntry).docs = docs
		c.ll.MoveToFront(el)
		return 0
	}
	c.byKey[key] = c.ll.PushFront(&answerEntry{key: key, query: q, docs: docs})
	evicted := 0
	for c.maxEntries > 0 && c.ll.Len() > c.maxEntries {
		c.removeElement(c.ll.Back())
		evicted++
	}
	return evicted
}

func (c *answerCache) remove(key string) {
	if el, ok := c.byKey[key]; ok {
		c.removeElement(el)
	}
}

func (c *answerCache) removeElement(el *list.Element) {
	c.ll.Remove(el)
	delete(c.byKey, el.Value.(*answerEntry).key)
}

// entries returns the cached entries in no particular order. The returned
// slice is fresh; the entries are the cache's own (do not mutate).
func (c *answerCache) entries() []*answerEntry {
	out := make([]*answerEntry, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*answerEntry))
	}
	return out
}

// payloadEntry is one cached wire payload for a document.
type payloadEntry struct {
	id      xmldoc.DocID
	payload []byte
}

// payloadCache is an LRU cache of encoded document payloads bounded by total
// payload bytes. maxBytes <= 0 means unbounded. Not safe for concurrent use.
type payloadCache struct {
	maxBytes int
	bytes    int
	ll       *list.List // front = most recently used; values are *payloadEntry
	byID     map[xmldoc.DocID]*list.Element
}

func newPayloadCache(maxBytes int) *payloadCache {
	return &payloadCache{maxBytes: maxBytes, ll: list.New(), byID: make(map[xmldoc.DocID]*list.Element)}
}

func (c *payloadCache) get(id xmldoc.DocID) ([]byte, bool) {
	el, ok := c.byID[id]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*payloadEntry).payload, true
}

// put caches a payload and returns how many entries were evicted to fit
// maxBytes. A payload alone larger than maxBytes is still cached (it is the
// only entry left after eviction); it will be evicted by the next put.
func (c *payloadCache) put(id xmldoc.DocID, payload []byte) int {
	if el, ok := c.byID[id]; ok {
		e := el.Value.(*payloadEntry)
		c.bytes += len(payload) - len(e.payload)
		e.payload = payload
		c.ll.MoveToFront(el)
	} else {
		c.byID[id] = c.ll.PushFront(&payloadEntry{id: id, payload: payload})
		c.bytes += len(payload)
	}
	evicted := 0
	for c.maxBytes > 0 && c.bytes > c.maxBytes && c.ll.Len() > 1 {
		c.removeElement(c.ll.Back())
		evicted++
	}
	return evicted
}

func (c *payloadCache) remove(id xmldoc.DocID) {
	if el, ok := c.byID[id]; ok {
		c.removeElement(el)
	}
}

func (c *payloadCache) removeElement(el *list.Element) {
	e := el.Value.(*payloadEntry)
	c.ll.Remove(el)
	delete(c.byID, e.id)
	c.bytes -= len(e.payload)
}
