package engine

import (
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/xmldoc"
)

func limitedEngine(t testing.TB, numDocs, numQueries int, lim Limits) (*Engine, []Pending) {
	t.Helper()
	c, queries := fixture(t, numDocs, numQueries)
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: c.TotalSize(), Limits: lim})
	if err != nil {
		t.Fatal(err)
	}
	answers, err := e.ResolveAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	pending := make([]Pending, 0, len(queries))
	for i, q := range queries {
		if docs := answers[q.String()]; len(docs) > 0 {
			pending = append(pending, Pending{ID: int64(i), Query: q, Remaining: docs})
		}
	}
	if len(pending) < 2 {
		t.Fatalf("fixture yielded only %d non-empty queries", len(pending))
	}
	return e, pending
}

func TestAssembleCycleRejectsOverMaxPending(t *testing.T) {
	e, pending := limitedEngine(t, 10, 10, Limits{MaxPending: 1})
	if _, err := e.AssembleCycle(0, 0, pending); !errors.Is(err, ErrOverload) {
		t.Fatalf("AssembleCycle with %d pending over cap 1: err = %v, want ErrOverload", len(pending), err)
	}
	// At the cap is admitted, not rejected.
	if _, err := e.AssembleCycle(0, 0, pending[:1]); err != nil {
		t.Fatalf("AssembleCycle at the cap: %v", err)
	}
}

func TestAnswerCacheLRUEviction(t *testing.T) {
	const cacheCap = 3
	c, queries := fixture(t, 10, 20)
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: c.TotalSize(),
		Limits: Limits{MaxAnswerCacheEntries: cacheCap}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ResolveAll(queries); err != nil {
		t.Fatal(err)
	}
	if n := e.answers.len(); n > cacheCap {
		t.Errorf("answer cache holds %d entries, cap %d", n, cacheCap)
	}
	m := e.Metrics()
	distinct := make(map[string]struct{})
	for _, q := range queries {
		distinct[q.String()] = struct{}{}
	}
	if want := int64(len(distinct) - cacheCap); m.AnswerEvictions < want {
		t.Errorf("AnswerEvictions = %d, want >= %d", m.AnswerEvictions, want)
	}
	// Eviction must not corrupt answers: every query still resolves to the
	// same result as an unbounded engine.
	ref := newEngine(t, c, c.TotalSize())
	for _, q := range queries {
		got, err := e.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		want, err := ref.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %s: %d docs after eviction, want %d", q, len(got), len(want))
		}
	}
}

func TestPayloadCacheByteBound(t *testing.T) {
	const maxBytes = 4 << 10
	e, pending := limitedEngine(t, 12, 12, Limits{MaxPayloadCacheBytes: maxBytes})
	for i := 0; i < 3; i++ {
		cy, err := e.AssembleCycle(int64(i), int64(i), pending)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := e.EncodeCycle(cy)
		if err != nil {
			t.Fatal(err)
		}
		e.Recycle(enc)
	}
	// Documents average ~1 KB+, so a 4 KB bound forces evictions while the
	// cycle rebroadcasts every scheduled document.
	if got := e.payloads.bytes; got > maxBytes {
		t.Errorf("payload cache holds %d bytes, cap %d", got, maxBytes)
	}
	if m := e.Metrics(); m.PayloadEvictions == 0 {
		t.Error("no payload evictions recorded under a tight byte bound")
	}
}

func TestBuildBudgetDegradesToFullCI(t *testing.T) {
	e, pending := limitedEngine(t, 10, 8, Limits{BuildBudget: time.Nanosecond})
	cy, err := e.AssembleCycle(0, 0, pending)
	if err != nil {
		t.Fatal(err)
	}
	if !cy.Degraded {
		t.Fatal("1 ns build budget did not degrade the cycle")
	}
	e.mu.Lock()
	ciNodes := e.builder.CI().NumNodes()
	e.mu.Unlock()
	if cy.Index.NumNodes() != ciNodes {
		t.Errorf("degraded cycle carries %d index nodes, want the full CI's %d", cy.Index.NumNodes(), ciNodes)
	}
	if m := e.Metrics(); m.DegradedCycles != 1 {
		t.Errorf("DegradedCycles = %d, want 1", m.DegradedCycles)
	}
	// The degraded cycle must still encode (clients decode the CI exactly
	// like a PCI — same wire format, more nodes).
	enc, err := e.EncodeCycle(cy)
	if err != nil {
		t.Fatalf("EncodeCycle on degraded cycle: %v", err)
	}
	if len(enc.Index) == 0 {
		t.Error("degraded cycle encoded an empty index segment")
	}
	e.Recycle(enc)

	// Without a budget the same inputs build a pruned, non-degraded cycle.
	e2, pending2 := limitedEngine(t, 10, 8, Limits{})
	cy2, err := e2.AssembleCycle(0, 0, pending2)
	if err != nil {
		t.Fatal(err)
	}
	if cy2.Degraded {
		t.Error("unbudgeted cycle reported degraded")
	}
	if cy2.Index.NumNodes() > cy.Index.NumNodes() {
		t.Errorf("pruned index (%d nodes) larger than unpruned CI (%d nodes)",
			cy2.Index.NumNodes(), cy.Index.NumNodes())
	}
}

func TestIncrementalInvalidationOnAdd(t *testing.T) {
	c, queries := fixture(t, 10, 8)
	e := newEngine(t, c, 100_000)
	if _, err := e.ResolveAll(queries); err != nil {
		t.Fatal(err)
	}
	warm := e.answers.len()
	if warm == 0 {
		t.Fatal("no warm entries")
	}

	// A document no NITF query matches: unrelated root, so every warm
	// entry must survive.
	root, err := xmldoc.Parse(strings.NewReader("<zzz><unmatched/></zzz>"))
	if err != nil {
		t.Fatal(err)
	}
	alien := xmldoc.NewDocument(9001, root)
	before := e.Metrics()
	if err := e.AddDocument(alien); err != nil {
		t.Fatal(err)
	}
	after := e.Metrics()
	if e.answers.len() != warm {
		t.Errorf("unrelated AddDocument evicted entries: %d -> %d", warm, e.answers.len())
	}
	if after.CacheInvalidations != before.CacheInvalidations+1 {
		t.Errorf("CacheInvalidations = %d, want %d", after.CacheInvalidations, before.CacheInvalidations+1)
	}
	if after.CacheHits+after.CacheMisses != before.CacheHits+before.CacheMisses {
		t.Error("invalidation should not consume cache accesses")
	}
	// Re-resolving everything must be pure hits.
	if _, err := e.ResolveAll(queries); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.CacheMisses != after.CacheMisses {
		t.Errorf("re-resolve after unrelated add missed: %d -> %d", after.CacheMisses, m.CacheMisses)
	}

	// Re-adding a fixture document (same schema) must evict exactly the
	// queries that match it — and those must re-resolve to include it.
	victimQuery := queries[0]
	docs, err := e.Resolve(victimQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) == 0 {
		t.Skip("fixture query 0 matches nothing")
	}
	matched := c.ByID(docs[0])
	if err := e.RemoveDocument(matched.ID); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.answers.get(victimQuery.String()); ok {
		t.Error("removing a result document left its answer cached")
	}
	if err := e.AddDocument(matched); err != nil {
		t.Fatal(err)
	}
	restored, err := e.Resolve(victimQuery)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range restored {
		if d == matched.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("re-added document %d missing from re-resolved answer %v", matched.ID, restored)
	}
}

func TestIncrementalInvalidationOnRemove(t *testing.T) {
	c, queries := fixture(t, 10, 8)
	e := newEngine(t, c, 100_000)
	answers, err := e.ResolveAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a document and partition the cached queries by whether their
	// answer contains it.
	var victim = c.Docs()[0].ID
	contains := make(map[string]bool)
	for _, q := range queries {
		for _, d := range answers[q.String()] {
			if d == victim {
				contains[q.String()] = true
			}
		}
	}
	before := e.answers.len()
	if err := e.RemoveDocument(victim); err != nil {
		t.Fatal(err)
	}
	evicted := 0
	for _, q := range queries {
		_, cached := e.answers.get(q.String())
		if contains[q.String()] {
			if cached {
				t.Errorf("query %s contains removed doc %d but stayed cached", q, victim)
			}
			evicted++
		} else if !cached {
			t.Errorf("query %s unaffected by doc %d but was evicted", q, victim)
		}
	}
	if got := before - e.answers.len(); evicted == 0 && got != 0 {
		t.Errorf("expected no evictions, lost %d entries", got)
	}
}
