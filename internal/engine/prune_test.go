package engine

import (
	"bytes"
	"runtime/debug"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/xpath"
)

// assembleWith resolves the given queries and assembles one cycle pending
// exactly that set.
func assembleWith(t *testing.T, e *Engine, number int64, queries []xpath.Path) *Cycle {
	t.Helper()
	answers, err := e.ResolveAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	pending := make([]Pending, 0, len(queries))
	for i, q := range queries {
		pending = append(pending, Pending{ID: int64(i), Query: q, Arrival: 0, Remaining: answers[q.String()]})
	}
	cy, err := e.AssembleCycle(number, 0, pending)
	if err != nil {
		t.Fatal(err)
	}
	return cy
}

// TestPruneIncrementalAcrossCycles drives the engine through a drifting query
// set and checks that the incremental maintainer (a) takes the delta path, (b)
// produces a PCI byte-identical to a from-scratch prune, and (c) falls back on
// a collection change.
func TestPruneIncrementalAcrossCycles(t *testing.T) {
	c, queries := fixture(t, 20, 12)
	e := newEngine(t, c, c.TotalSize())

	// Cycle 0 over queries[0:8] is the view's first prune: full.
	assembleWith(t, e, 0, queries[:8])
	m := e.Metrics()
	if m.FullPrunes != 1 || m.IncrementalPrunes != 0 {
		t.Fatalf("after first cycle: %d full / %d incremental prunes, want 1/0", m.FullPrunes, m.IncrementalPrunes)
	}

	// Cycle 1 swaps one query (≈12% churn, under the default threshold).
	drifted := append(append([]xpath.Path(nil), queries[1:8]...), queries[8])
	cy := assembleWith(t, e, 1, drifted)
	m = e.Metrics()
	if m.IncrementalPrunes != 1 {
		t.Fatalf("after drifted cycle: IncrementalPrunes = %d, want 1", m.IncrementalPrunes)
	}
	if m.Stages[StagePruneDelta].Count == 0 {
		t.Error("delta update did not report StagePruneDelta")
	}

	// The incremental PCI must be exactly what a from-scratch engine prunes.
	ref := newEngine(t, c, c.TotalSize())
	ref.pruneChurn = -1 // full prune every cycle
	want := assembleWith(t, ref, 1, drifted)
	encGot, err := e.EncodeCycle(cy)
	if err != nil {
		t.Fatal(err)
	}
	encWant, err := ref.EncodeCycle(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encGot.Index, encWant.Index) {
		t.Error("incremental PCI index segment differs from from-scratch prune")
	}
	if !bytes.Equal(encGot.SecondTier, encWant.SecondTier) {
		t.Error("incremental second-tier segment differs from from-scratch prune")
	}
	e.Recycle(encGot)
	ref.Recycle(encWant)

	// An unchanged query set is the degenerate incremental update.
	assembleWith(t, e, 2, drifted)
	if m = e.Metrics(); m.IncrementalPrunes != 2 {
		t.Errorf("repeat cycle: IncrementalPrunes = %d, want 2", m.IncrementalPrunes)
	}

	// A collection change rebuilds the CI; the next prune must fall back.
	if err := e.RemoveDocument(cy.Docs[0].ID); err != nil {
		t.Fatal(err)
	}
	assembleWith(t, e, 3, drifted)
	m = e.Metrics()
	if m.PruneFallbacks != 1 {
		t.Errorf("after collection change: PruneFallbacks = %d, want 1", m.PruneFallbacks)
	}
	if m.FullPrunes != 2 {
		t.Errorf("after collection change: FullPrunes = %d, want 2 (initial + fallback)", m.FullPrunes)
	}
}

// TestPruneChurnFallback checks that swapping more than the churn fraction of
// the query set forces a full re-prune on the live view.
func TestPruneChurnFallback(t *testing.T) {
	c, queries := fixture(t, 20, 16)
	e := newEngine(t, c, c.TotalSize())
	assembleWith(t, e, 0, queries[:8]) // full (initial)
	// Replace all eight queries: 100% churn.
	assembleWith(t, e, 1, queries[8:16])
	m := e.Metrics()
	if m.PruneFallbacks != 1 {
		t.Errorf("PruneFallbacks = %d, want 1 after full query-set turnover", m.PruneFallbacks)
	}
	if m.IncrementalPrunes != 0 {
		t.Errorf("IncrementalPrunes = %d, want 0", m.IncrementalPrunes)
	}
}

// TestPruneIncrementalDisabled checks that a negative PruneChurn re-prunes
// from scratch every cycle and never creates a view.
func TestPruneIncrementalDisabled(t *testing.T) {
	c, queries := fixture(t, 10, 6)
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: c.TotalSize(), PruneChurn: -1})
	if err != nil {
		t.Fatal(err)
	}
	assembleWith(t, e, 0, queries[:4])
	assembleWith(t, e, 1, queries[:4])
	m := e.Metrics()
	if m.FullPrunes != 2 || m.IncrementalPrunes != 0 {
		t.Errorf("disabled maintainer: %d full / %d incremental, want 2/0", m.FullPrunes, m.IncrementalPrunes)
	}
	if e.view != nil {
		t.Error("disabled maintainer still built a PrunedView")
	}
}

// TestBuildBudgetOverrunResetsView checks that a budget overrun abandons the
// possibly half-updated view so the next cycle starts from a clean full prune.
func TestBuildBudgetOverrunResetsView(t *testing.T) {
	c, queries := fixture(t, 10, 8)
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: c.TotalSize(),
		Limits: Limits{BuildBudget: time.Nanosecond}})
	if err != nil {
		t.Fatal(err)
	}
	cy := assembleWith(t, e, 0, queries)
	if !cy.Degraded {
		t.Fatal("1 ns build budget did not degrade the cycle")
	}
	e.mu.Lock()
	view := e.view
	e.mu.Unlock()
	if view != nil {
		t.Error("budget overrun must reset the engine's PrunedView")
	}
}

// TestEncodeCycleErrorRecyclesBuffer is a regression test for a pooled-buffer
// leak: EncodeCycle error paths must hand the segment buffer back to the pool.
func TestEncodeCycleErrorRecyclesBuffer(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("sync.Pool randomly drops Puts under the race detector")
	}
	// Pin the pool: a GC may clear sync.Pool contents, which would count a
	// false miss below.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))

	c, queries := fixture(t, 6, 4)
	e := newEngine(t, c, c.TotalSize())
	cy := assembleWith(t, e, 0, queries)

	// Retire a scheduled document so the docs loop fails mid-encode, and
	// drop its cached payload so the miss hits the collection lookup.
	if err := e.RemoveDocument(cy.Docs[0].ID); err != nil {
		t.Fatal(err)
	}

	misses := 0
	e.segPool.New = func() any {
		misses++
		b := make([]byte, 0, 4096)
		return &b
	}
	for i := 0; i < 5; i++ {
		if _, err := e.EncodeCycle(cy); err == nil {
			t.Fatal("EncodeCycle of a retired document must fail")
		}
	}
	if misses > 1 {
		t.Errorf("pooled buffer leaked: %d pool misses across 5 failing encodes, want at most 1", misses)
	}
}
