//go:build !race

package engine

// raceDetectorEnabled reports whether the race detector is compiled in.
// sync.Pool intentionally drops a fraction of Puts under the detector, so
// tests asserting pool reuse must skip there.
const raceDetectorEnabled = false
