package engine_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/netcast"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// capturedCycle is one cycle's wire image, deep-copied out of the pipeline.
// Multichannel cycles also carry the channel directory and each data
// channel's second-tier stripe and documents (stripe order).
type capturedCycle struct {
	number     int64
	index      []byte
	secondTier []byte
	docs       [][]byte

	channelDir  []byte
	secondTiers [][]byte
	chanDocs    [][][]byte
}

// captureSink returns a Config.CycleSink that deep-copies every cycle's
// encoded segments — including, for multichannel cycles, the per-channel
// stripes and doc payloads — into out.
func captureSink(out *[]capturedCycle) func(*engine.Cycle, *engine.Encoded) {
	return func(cy *engine.Cycle, enc *engine.Encoded) {
		cc := capturedCycle{
			number:     cy.Number,
			index:      append([]byte(nil), enc.Index...),
			secondTier: append([]byte(nil), enc.SecondTier...),
			channelDir: append([]byte(nil), enc.ChannelDir...),
		}
		for _, d := range enc.Docs {
			cc.docs = append(cc.docs, append([]byte(nil), d...))
		}
		for _, st := range enc.SecondTiers {
			cc.secondTiers = append(cc.secondTiers, append([]byte(nil), st...))
		}
		if len(cy.Channels) > 1 {
			byID := make(map[xmldoc.DocID][]byte, len(cy.Docs))
			for i, p := range cy.Docs {
				byID[p.ID] = cc.docs[i]
			}
			cc.chanDocs = make([][][]byte, len(cy.Channels))
			for c := 1; c < len(cy.Channels); c++ {
				for _, p := range cy.Channels[c].Docs {
					cc.chanDocs[c] = append(cc.chanDocs[c], byID[p.ID])
				}
			}
		}
		*out = append(*out, cc)
	}
}

// TestSimNetcastCycleEquivalence drives the same collection and query set
// through both consumers of the shared engine — the discrete-event simulator
// and the networked broadcast server — and asserts they put byte-identical
// cycles on the air. All requests arrive before the first cycle, and the
// default LeeLo policy plans from remaining-document sets only, so the two
// drivers' differing clock units (byte-time vs cycle number) must not change
// a single encoded byte.
func TestSimNetcastCycleEquivalence(t *testing.T) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 8, MaxDepth: 5, WildcardProb: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	capacity := c.TotalSize() / 4 // force a multi-cycle broadcast

	simCycles := runSimCapture(t, c, queries, capacity)
	if len(simCycles) < 2 {
		t.Fatalf("fixture produced %d cycles; want a multi-cycle run", len(simCycles))
	}
	netCycles := runNetcastCapture(t, c, queries, capacity, len(simCycles))
	compareCycles(t, simCycles, netCycles)
}

// compareCycles asserts the netcast capture is a byte-identical replay of the
// simulator's cycles.
func compareCycles(t *testing.T, simCycles []capturedCycle, netCycles []netcast.CycleRecord) {
	t.Helper()
	if len(netCycles) < len(simCycles) {
		t.Fatalf("netcast broadcast %d cycles, sim %d", len(netCycles), len(simCycles))
	}
	for i, want := range simCycles {
		got := netCycles[i]
		if int64(got.Number) != want.number {
			t.Errorf("cycle %d: netcast number %d, sim number %d", i, got.Number, want.number)
		}
		if !bytes.Equal(got.IndexSeg, want.index) {
			t.Errorf("cycle %d: index segments differ (%d vs %d bytes)", i, len(got.IndexSeg), len(want.index))
		}
		if !bytes.Equal(got.SecondTierSeg, want.secondTier) {
			t.Errorf("cycle %d: second-tier segments differ (%d vs %d bytes)", i, len(got.SecondTierSeg), len(want.secondTier))
		}
		if len(got.Docs) != len(want.docs) {
			t.Fatalf("cycle %d: netcast carried %d documents, sim %d", i, len(got.Docs), len(want.docs))
		}
		for j := range want.docs {
			if !bytes.Equal(got.Docs[j], want.docs[j]) {
				t.Errorf("cycle %d doc %d: payloads differ", i, j)
			}
		}
	}
	if len(netCycles) > len(simCycles) {
		t.Errorf("netcast emitted %d extra cycles after the sim's pending set drained", len(netCycles)-len(simCycles))
	}
}

// TestSimNetcastStaggeredEquivalence extends the equivalence check to
// staggered arrivals, pinning the mapping between the two drivers' clocks:
// the simulator admits a request into cycle k when its byte-time arrival is
// at most cycle k's start, and the server admits it into cycle k when the
// submission lands while k-1 cycles have been broadcast (the ack's covered
// cycle number is exactly k). A query wave submitted at byte-time Start(k) in
// the sim and acked with CoveredFrom k over the wire must therefore produce
// byte-identical cycles.
//
// The byte-time arrivals are constructed inductively so the correspondence is
// exact rather than approximate: wave w's arrival is cycle w's start in a
// simulator run of waves 0..w-1 — which is unchanged by adding wave w, since
// wave w only joins at cycle w.
//
// The LeeLo variant runs with the simulator's default byte-time scheduler
// clock: LeeLo plans from remaining-document sets only, so the clock unit is
// irrelevant. The RxW variant is the interesting one — RxW scores depend on
// arrival times and "now", so the simulator switches to sim.ClockCycles,
// feeding the scheduler admission-cycle numbers exactly as the server does.
func TestSimNetcastStaggeredEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name  string
		clock sim.ClockUnit
	}{
		{"leelo", sim.ClockBytes},
		{"rxw", sim.ClockCycles},
	} {
		t.Run(tc.name, func(t *testing.T) {
			testStaggeredEquivalence(t, tc.name, tc.clock, 1)
		})
	}
}

// TestSimNetcastMultichannelEquivalence extends the staggered-arrival
// equivalence suite across channel counts: for every K the simulator's
// per-channel segments (index, channel directory, second-tier stripes and
// striped documents) must be byte-identical to what the server's K broadcast
// listeners put on their wires. K=1 pins the degenerate case to the classic
// v2 stream.
func TestSimNetcastMultichannelEquivalence(t *testing.T) {
	for _, k := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("k%d", k), func(t *testing.T) {
			testStaggeredEquivalence(t, "leelo", sim.ClockBytes, k)
		})
	}
}

func testStaggeredEquivalence(t *testing.T, policy string, clock sim.ClockUnit, channels int) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 15, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := gen.Queries(c, gen.QueryConfig{NumQueries: 24, MaxDepth: 5, WildcardProb: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// The server acks empty-result queries with an error instead of
	// registering them, so the staggered waves use only queries both drivers
	// admit.
	const waveSize, numWaves = 3, 3
	var queries []xpath.Path
	for _, q := range raw {
		if len(q.MatchingDocs(c)) > 0 {
			queries = append(queries, q)
		}
	}
	if len(queries) < waveSize*numWaves {
		t.Fatalf("fixture yielded %d non-empty queries, want %d", len(queries), waveSize*numWaves)
	}
	queries = queries[:waveSize*numWaves]
	capacity := c.TotalSize() / 4 // force a multi-cycle broadcast

	// Inductively derive each wave's byte-time arrival from the prefix run.
	arrivals := make([]int64, len(queries))
	for w := 1; w < numWaves; w++ {
		n := w * waveSize
		_, stats := runStaggeredSim(t, c, queries[:n], arrivals[:n], capacity, policy, clock, channels)
		if len(stats) <= w {
			t.Fatalf("waves 0..%d drained in %d cycles; fixture cannot stagger wave %d", w-1, len(stats), w)
		}
		for i := n; i < n+waveSize; i++ {
			arrivals[i] = stats[w].Start
		}
	}

	simCycles, _ := runStaggeredSim(t, c, queries, arrivals, capacity, policy, clock, channels)
	if len(simCycles) <= numWaves {
		t.Fatalf("staggered fixture produced %d cycles; want more than %d", len(simCycles), numWaves)
	}
	netChans := runStaggeredNetcast(t, c, queries, waveSize, capacity, len(simCycles), policy, channels)
	if channels == 1 {
		compareCycles(t, simCycles, netChans[0])
		return
	}
	compareMultiCycles(t, simCycles, netChans)
}

// compareMultiCycles asserts each of the server's K channel streams is a
// byte-identical replay of the simulator's per-channel cycle shares.
func compareMultiCycles(t *testing.T, simCycles []capturedCycle, netChans [][]netcast.CycleRecord) {
	t.Helper()
	for ch, records := range netChans {
		if len(records) < len(simCycles) {
			t.Fatalf("channel %d captured %d cycles, sim broadcast %d", ch, len(records), len(simCycles))
		}
		if len(records) > len(simCycles) {
			t.Errorf("channel %d captured %d extra cycles after the sim's pending set drained", ch, len(records)-len(simCycles))
		}
	}
	for i, want := range simCycles {
		ix := netChans[0][i]
		if int64(ix.Number) != want.number {
			t.Errorf("cycle %d: netcast number %d, sim number %d", i, ix.Number, want.number)
		}
		if ix.IsData || int(ix.Channels) != len(netChans) {
			t.Errorf("cycle %d: index-channel head misdescribes the stream: %+v", i, ix)
		}
		if !bytes.Equal(ix.IndexSeg, want.index) {
			t.Errorf("cycle %d: index segments differ (%d vs %d bytes)", i, len(ix.IndexSeg), len(want.index))
		}
		if !bytes.Equal(ix.DirSeg, want.channelDir) {
			t.Errorf("cycle %d: channel directories differ (%d vs %d bytes)", i, len(ix.DirSeg), len(want.channelDir))
		}
		for ch := 1; ch < len(netChans); ch++ {
			got := netChans[ch][i]
			if int64(got.Number) != want.number || !got.IsData {
				t.Errorf("cycle %d channel %d: head %+v does not match sim cycle %d", i, ch, got, want.number)
			}
			if !bytes.Equal(got.SecondTierSeg, want.secondTiers[ch-1]) {
				t.Errorf("cycle %d channel %d: second-tier stripes differ (%d vs %d bytes)", i, ch, len(got.SecondTierSeg), len(want.secondTiers[ch-1]))
			}
			var wantDocs [][]byte
			if want.chanDocs != nil {
				wantDocs = want.chanDocs[ch]
			}
			if len(got.Docs) != len(wantDocs) {
				t.Fatalf("cycle %d channel %d: netcast carried %d documents, sim %d", i, ch, len(got.Docs), len(wantDocs))
			}
			for j := range wantDocs {
				if !bytes.Equal(got.Docs[j], wantDocs[j]) {
					t.Errorf("cycle %d channel %d doc %d: payloads differ", i, ch, j)
				}
			}
		}
	}
}

// runStaggeredSim runs the simulator with per-request byte-time arrivals and
// returns the captured cycles alongside their stats (for Start times).
func runStaggeredSim(t *testing.T, c *xmldoc.Collection, queries []xpath.Path, arrivals []int64, capacity int, policy string, clock sim.ClockUnit, channels int) ([]capturedCycle, []sim.CycleStats) {
	t.Helper()
	sched, err := schedule.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]sim.ClientRequest, 0, len(queries))
	for i, q := range queries {
		reqs = append(reqs, sim.ClientRequest{Query: q, Arrival: arrivals[i]})
	}
	var out []capturedCycle
	res, err := sim.Run(sim.Config{
		Collection:    c,
		Mode:          broadcast.TwoTierMode,
		Scheduler:     sched,
		ScheduleClock: clock,
		Channels:      channels,
		CycleCapacity: capacity,
		Requests:      reqs,
		CycleSink:     captureSink(&out),
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, res.Cycles
}

// runStaggeredNetcast submits the queries in waves of waveSize, holding each
// wave until the server has broadcast exactly one cycle per earlier wave, and
// asserts every ack's covered cycle equals the wave number — the explicit
// cycle-number half of the arrival-clock mapping.
func runStaggeredNetcast(t *testing.T, c *xmldoc.Collection, queries []xpath.Path, waveSize, capacity, wantCycles int, policy string, channels int) [][]netcast.CycleRecord {
	t.Helper()
	sched, err := schedule.New(policy)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := netcast.StartServer(netcast.ServerConfig{
		Collection:    c,
		Mode:          broadcast.TwoTierMode,
		Scheduler:     sched,
		Channels:      channels,
		CycleCapacity: capacity,
		CycleInterval: 250 * time.Millisecond, // wide enough to land a whole wave between ticks
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	addrs := srv.ChannelAddrs()
	bufs := make([]bytes.Buffer, len(addrs))
	recDone := make(chan error, len(addrs))
	for i, addr := range addrs {
		go func(i int, addr string) {
			_, err := netcast.Record(ctx, addr, wantCycles+1, &bufs[i])
			recDone <- err
		}(i, addr)
	}
	waitFor(t, ctx, "recorder subscriptions", func() bool { return srv.Stats().Subscribers >= len(addrs) })

	cl, err := netcast.Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i, q := range queries {
		wave := i / waveSize
		if i%waveSize == 0 && wave > 0 {
			waitFor(t, ctx, "the next wave's cycle", func() bool { return srv.Stats().Cycles >= int64(wave) })
		}
		if err := cl.Submit(q); err != nil {
			t.Fatalf("submit %s: %v", q, err)
		}
		if got := cl.CoveredFrom(); got != int64(wave) {
			t.Fatalf("query %d acked covered from cycle %d, want wave %d", i, got, wave)
		}
	}

	waitFor(t, ctx, "pending set to drain", func() bool {
		st := srv.Stats()
		return st.Pending == 0 && st.Cycles >= int64(wantCycles)
	})
	srv.Shutdown()
	for range addrs {
		if err := <-recDone; err == nil {
			t.Fatal("recorder finished early: server emitted more cycles than the sim")
		}
	}

	out := make([][]netcast.CycleRecord, len(addrs))
	for i := range bufs {
		records, err := netcast.ReadCapture(bytes.NewReader(bufs[i].Bytes()))
		if err != nil {
			t.Fatalf("channel %d capture: %v", i, err)
		}
		out[i] = records
	}
	return out
}

// runSimCapture runs the simulator with every request arriving at time 0 and
// deep-copies each cycle's encoded segments through Config.CycleSink.
func runSimCapture(t *testing.T, c *xmldoc.Collection, queries []xpath.Path, capacity int) []capturedCycle {
	t.Helper()
	reqs := make([]sim.ClientRequest, 0, len(queries))
	for _, q := range queries {
		reqs = append(reqs, sim.ClientRequest{Query: q, Arrival: 0})
	}
	var out []capturedCycle
	_, err := sim.Run(sim.Config{
		Collection:    c,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: capacity,
		Requests:      reqs,
		CycleSink:     captureSink(&out),
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runNetcastCapture boots a real server over TCP, submits the same queries
// (all before the first cycle fires), records the broadcast stream and parses
// it back into cycles.
func runNetcastCapture(t *testing.T, c *xmldoc.Collection, queries []xpath.Path, capacity, wantCycles int) []netcast.CycleRecord {
	t.Helper()
	srv, err := netcast.StartServer(netcast.ServerConfig{
		Collection:    c,
		Mode:          broadcast.TwoTierMode,
		CycleCapacity: capacity,
		CycleInterval: 250 * time.Millisecond, // wide enough to land every submission before cycle 0
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown()

	// Start the recorder and wait for its subscription so cycle 0 is captured.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var buf bytes.Buffer
	recDone := make(chan error, 1)
	go func() {
		// One more cycle than expected: the recorder only closes a cycle on the
		// next head, so it keeps reading until the shutdown below cuts the
		// stream; ReadCapture then salvages the final complete cycle.
		_, err := netcast.Record(ctx, srv.BroadcastAddr(), wantCycles+1, &buf)
		recDone <- err
	}()
	waitFor(t, ctx, "recorder subscription", func() bool { return srv.Stats().Subscribers >= 1 })

	cl, err := netcast.Dial(srv.UplinkAddr(), srv.BroadcastAddr(), core.SizeModel{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for _, q := range queries {
		if err := cl.Submit(q); err != nil {
			t.Fatalf("submit %s: %v", q, err)
		}
	}

	// Let the server broadcast until the pending set drains, then cut the
	// stream so the recorder returns.
	waitFor(t, ctx, "pending set to drain", func() bool {
		st := srv.Stats()
		return st.Pending == 0 && st.Cycles >= int64(wantCycles)
	})
	srv.Shutdown()
	if err := <-recDone; err == nil {
		t.Fatal("recorder finished early: server emitted more cycles than the sim")
	}

	records, err := netcast.ReadCapture(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	return records
}

// waitFor polls cond until it holds or the context expires.
func waitFor(t *testing.T, ctx context.Context, what string, cond func() bool) {
	t.Helper()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
