package engine

import (
	"bytes"
	"encoding/binary"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenCycles assembles and encodes a deterministic three-cycle broadcast on
// the single-channel (K=1) path and serialises every wire segment into one
// self-describing blob. The committed golden file pins the pre-multichannel
// byte stream: any refactor of cycle assembly must keep K=1 output identical.
func goldenCycles(t *testing.T) []byte {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 12, MaxDepth: 5, WildcardProb: 0.1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: 8_000})
	if err != nil {
		t.Fatal(err)
	}

	pending := make([]Pending, 0, len(queries))
	for i, q := range queries {
		docs, err := eng.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) == 0 {
			continue
		}
		pending = append(pending, Pending{
			ID:        int64(i),
			Query:     q,
			Arrival:   int64(i) * 64,
			Remaining: append([]xmldoc.DocID(nil), docs...),
		})
	}
	if len(pending) < 4 {
		t.Fatalf("fixture too small: %d pending requests", len(pending))
	}

	var out bytes.Buffer
	writeSeg := func(seg []byte) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(seg)))
		out.Write(n[:])
		out.Write(seg)
	}

	start := int64(0)
	for number := int64(0); number < 3 && len(pending) > 0; number++ {
		cy, err := eng.AssembleCycle(number, start, pending)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := eng.EncodeCycle(cy)
		if err != nil {
			t.Fatal(err)
		}
		writeSeg(enc.Index)
		writeSeg(enc.SecondTier)
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(enc.Docs)))
		out.Write(n[:])
		for _, d := range enc.Docs {
			writeSeg(d)
		}
		eng.Recycle(enc)

		// Retire delivered documents so the next cycle schedules fresh work.
		delivered := make(map[xmldoc.DocID]struct{}, len(cy.Docs))
		for _, p := range cy.Docs {
			delivered[p.ID] = struct{}{}
		}
		survivors := pending[:0]
		for _, p := range pending {
			rem := p.Remaining[:0]
			for _, d := range p.Remaining {
				if _, ok := delivered[d]; !ok {
					rem = append(rem, d)
				}
			}
			p.Remaining = rem
			if len(p.Remaining) > 0 {
				survivors = append(survivors, p)
			}
		}
		pending = survivors
		start = cy.End()
	}
	return out.Bytes()
}

func TestGoldenK1ByteIdentity(t *testing.T) {
	got := goldenCycles(t)
	path := filepath.Join("testdata", "golden_k1.bin")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("K=1 cycle stream diverged from pre-refactor golden: len got %d want %d, first diff at byte %d", len(got), len(want), i)
	}
}

// TestGoldenK1PooledEncode pins the satellite requirement that the K=1 fast
// path keeps reusing pooled wire buffers: steady-state EncodeCycle/Recycle
// pairs must not allocate fresh index/second-tier backing arrays.
func TestGoldenK1PooledEncode(t *testing.T) {
	c, queries := fixture(t, 15, 10)
	eng := newEngine(t, c, 50_000)
	var pending []Pending
	for i, q := range queries {
		docs, err := eng.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) == 0 {
			continue
		}
		sort.Slice(docs, func(a, b int) bool { return docs[a] < docs[b] })
		pending = append(pending, Pending{ID: int64(i), Query: q, Arrival: int64(i), Remaining: docs})
	}
	cy, err := eng.AssembleCycle(0, 0, pending)
	if err != nil {
		t.Fatal(err)
	}
	// Warm the pool and the payload cache.
	for i := 0; i < 3; i++ {
		enc, err := eng.EncodeCycle(cy)
		if err != nil {
			t.Fatal(err)
		}
		eng.Recycle(enc)
	}
	allocs := testing.AllocsPerRun(50, func() {
		enc, err := eng.EncodeCycle(cy)
		if err != nil {
			t.Fatal(err)
		}
		eng.Recycle(enc)
	})
	// One Encoded header, one Docs slice header, plus small fixed-cost
	// bookkeeping — but never per-byte buffer or per-doc payload copies.
	if allocs > 8 {
		t.Fatalf("steady-state K=1 EncodeCycle allocates %.1f objects/run, want <= 8 (pooled buffers bypassed?)", allocs)
	}
}
