package engine

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/schedule"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

func fixture(t testing.TB, numDocs, numQueries int) (*xmldoc.Collection, []xpath.Path) {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: numDocs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: numQueries, MaxDepth: 5, WildcardProb: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return c, queries
}

func newEngine(t testing.TB, c *xmldoc.Collection, capacity int) *Engine {
	t.Helper()
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: capacity})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewValidation(t *testing.T) {
	c, _ := fixture(t, 3, 5)
	if _, err := New(Config{Mode: broadcast.TwoTierMode, CycleCapacity: 1}); err == nil {
		t.Error("nil collection should fail")
	}
	if _, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode}); err == nil {
		t.Error("zero capacity should fail")
	}
	if _, err := New(Config{Collection: c, Mode: 0, CycleCapacity: 1000}); err == nil {
		t.Error("invalid mode should fail")
	}
}

func TestResolveMatchesFilter(t *testing.T) {
	c, queries := fixture(t, 20, 50)
	e := newEngine(t, c, 100_000)
	want := yfilter.New(queries).Filter(c)
	for i, q := range queries {
		got, err := e.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Fatalf("query %s: Resolve = %v, Filter = %v", q, got, want[i])
		}
	}
}

func TestResolveMemoization(t *testing.T) {
	c, queries := fixture(t, 10, 8)
	e := newEngine(t, c, 100_000)
	if _, err := e.ResolveAll(queries); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.CacheHits != 0 {
		t.Errorf("first resolve: %d hits, want 0", m.CacheHits)
	}
	misses := m.CacheMisses
	if misses == 0 {
		t.Fatal("first resolve recorded no misses")
	}
	// Second pass: every distinct query must hit.
	if _, err := e.ResolveAll(queries); err != nil {
		t.Fatal(err)
	}
	m = e.Metrics()
	if m.CacheMisses != misses {
		t.Errorf("second resolve added misses: %d -> %d", misses, m.CacheMisses)
	}
	if m.CacheHits == 0 {
		t.Error("second resolve recorded no hits")
	}
	if m.CacheHitRate() <= 0 {
		t.Errorf("hit rate = %v, want > 0", m.CacheHitRate())
	}
}

func TestResolveInvalidationOnCollectionUpdate(t *testing.T) {
	c, queries := fixture(t, 10, 5)
	e := newEngine(t, c, 100_000)
	q := queries[0]
	before, err := e.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	// Removing a result document must drop it from the re-resolved answer.
	victim := before[0]
	if err := e.RemoveDocument(victim); err != nil {
		t.Fatal(err)
	}
	after, err := e.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range after {
		if d == victim {
			t.Fatalf("removed document %d still in answer %v", victim, after)
		}
	}
	if e.Metrics().CacheInvalidations != 1 {
		t.Errorf("invalidations = %d, want 1", e.Metrics().CacheInvalidations)
	}
	// Adding it back restores the original answer.
	doc := c.ByID(victim)
	if err := e.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
	restored, err := e.Resolve(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(restored, before) {
		t.Fatalf("after re-add: %v, want %v", restored, before)
	}
}

func TestAssembleCycleMatchesDirectBuilder(t *testing.T) {
	c, queries := fixture(t, 12, 10)
	capacity := c.TotalSize() / 3
	e := newEngine(t, c, capacity)

	answers, err := e.ResolveAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	pending := make([]Pending, 0, len(queries))
	for i, q := range queries {
		pending = append(pending, Pending{ID: int64(i), Query: q, Arrival: 0, Remaining: answers[q.String()]})
	}
	cy, err := e.AssembleCycle(0, 0, pending)
	if err != nil {
		t.Fatal(err)
	}
	if cy.NumPending != len(pending) {
		t.Errorf("NumPending = %d, want %d", cy.NumPending, len(pending))
	}

	// Replay the same inputs against a standalone builder + scheduler: the
	// engine must add nothing and lose nothing.
	builder, err := broadcast.NewBuilder(c, core.DefaultSizeModel(), broadcast.TwoTierMode)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]schedule.Request, 0, len(pending))
	var distinct []xpath.Path
	seen := make(map[string]struct{})
	for _, p := range pending {
		reqs = append(reqs, schedule.Request{ID: p.ID, Arrival: p.Arrival, Docs: p.Remaining})
		if _, ok := seen[p.Query.String()]; !ok {
			seen[p.Query.String()] = struct{}{}
			distinct = append(distinct, p.Query)
		}
	}
	plan := schedule.LeeLo{}.PlanCycle(reqs, func(d xmldoc.DocID) int { return c.ByID(d).Size() }, capacity, 0)
	want, err := builder.BuildCycle(0, 0, distinct, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cy.Docs, want.Docs) {
		t.Errorf("placements differ:\n  engine %v\n  direct %v", cy.Docs, want.Docs)
	}
	if cy.IndexBytes != want.IndexBytes || cy.SecondTierBytes != want.SecondTierBytes || cy.DocBytes != want.DocBytes {
		t.Errorf("segment sizes differ: engine (%d,%d,%d) direct (%d,%d,%d)",
			cy.IndexBytes, cy.SecondTierBytes, cy.DocBytes, want.IndexBytes, want.SecondTierBytes, want.DocBytes)
	}

	// Encoded segments must match the builder's reference encoding.
	enc, err := e.EncodeCycle(cy)
	if err != nil {
		t.Fatal(err)
	}
	wantIdx, wantST, err := builder.Encode(want)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc.Index, wantIdx) {
		t.Error("index segments differ")
	}
	if !bytes.Equal(enc.SecondTier, wantST) {
		t.Error("second-tier segments differ")
	}
	if len(enc.Docs) != len(cy.Docs) {
		t.Fatalf("%d doc payloads for %d placements", len(enc.Docs), len(cy.Docs))
	}
	for i, p := range cy.Docs {
		payload := enc.Docs[i]
		if got := xmldoc.DocID(uint16(payload[0]) | uint16(payload[1])<<8); got != p.ID {
			t.Errorf("doc %d payload carries ID %d, want %d", i, got, p.ID)
		}
		if !bytes.Equal(payload[2:], c.ByID(p.ID).Marshal()) {
			t.Errorf("doc %d payload body differs", i)
		}
	}
	e.Recycle(enc)

	m := e.Metrics()
	if m.Cycles != 1 {
		t.Errorf("metrics cycles = %d, want 1", m.Cycles)
	}
	for _, stage := range []string{StageResolve, StageSchedule, StageBuild, StageEncode} {
		if m.Stages[stage].Count == 0 {
			t.Errorf("stage %q never reported", stage)
		}
	}
}

func TestEncodeCycleReusesPayloadCache(t *testing.T) {
	c, queries := fixture(t, 6, 6)
	e := newEngine(t, c, c.TotalSize())
	answers, err := e.ResolveAll(queries)
	if err != nil {
		t.Fatal(err)
	}
	pending := []Pending{{ID: 1, Query: queries[0], Arrival: 0, Remaining: answers[queries[0].String()]}}
	cy, err := e.AssembleCycle(0, 0, pending)
	if err != nil {
		t.Fatal(err)
	}
	enc1, err := e.EncodeCycle(cy)
	if err != nil {
		t.Fatal(err)
	}
	docs1 := append([][]byte(nil), enc1.Docs...)
	e.Recycle(enc1)
	enc2, err := e.EncodeCycle(cy)
	if err != nil {
		t.Fatal(err)
	}
	for i := range docs1 {
		if &docs1[i][0] != &enc2.Docs[i][0] {
			t.Errorf("doc payload %d was re-allocated instead of served from cache", i)
		}
	}
	e.Recycle(enc2)
	if enc2.Index != nil || enc2.buf != nil {
		t.Error("Recycle must clear the pooled segment references")
	}
}

func TestAssembleCycleEmptyPending(t *testing.T) {
	c, _ := fixture(t, 3, 3)
	e := newEngine(t, c, 100_000)
	if _, err := e.AssembleCycle(0, 0, nil); err == nil {
		t.Error("empty pending must error")
	}
}
