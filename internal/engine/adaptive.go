package engine

import (
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/schedule"
)

// Health is the adaptive admission controller's three-state load signal,
// surfaced through Metrics, sim.Result and netcast.ServerStats.
type Health string

const (
	// Healthy: observed assembly latency has stayed under target long
	// enough that the controller is (or is back to) opening limits
	// additively.
	Healthy Health = "healthy"
	// Shedding: the controller recently cut limits multiplicatively and is
	// holding them down (hysteresis) until latency recovers.
	Shedding Health = "shedding"
	// Degraded: cycles are blowing Limits.BuildBudget faster than shedding
	// relieves them — the engine is broadcasting unpruned indexes and the
	// controller is at or racing towards its floors.
	Degraded Health = "degraded"
)

// Adaptive controller defaults. The zero AdaptiveConfig selects all of them.
const (
	// DefaultAdaptiveTarget is the per-cycle assembly-latency goal when
	// neither TargetLatency nor a BuildBudget to derive it from is set.
	DefaultAdaptiveTarget = 20 * time.Millisecond
	// DefaultTargetFraction of Limits.BuildBudget becomes the latency
	// target when TargetLatency is zero, leaving headroom so shedding
	// engages before cycles start degrading.
	DefaultTargetFraction = 0.5
	// DefaultAdaptivePending seeds MaxPending for drivers that enable the
	// controller without a configured cap.
	DefaultAdaptivePending = 256
	// DefaultAdaptiveUplinkRate (queries/sec per connection) seeds the
	// uplink rate for drivers that enable the controller without one.
	DefaultAdaptiveUplinkRate = 128
)

const (
	defaultAdaptiveAlpha  = 0.3
	defaultDecreaseFactor = 0.5
	defaultHoldCycles     = 8
	defaultRecoverCycles  = 12
	defaultDegradedStreak = 3
	// Auto-picked churn thresholds stay inside [minAutoChurn, maxAutoChurn]
	// so one skewed measurement can neither pin the engine to full rebuilds
	// nor to delta paths.
	minAutoChurn = 0.05
	maxAutoChurn = 0.95
)

// AdaptiveConfig parameterises NewAdaptiveLimiter. Only the seeds need
// thought; every control parameter has a sensible default.
type AdaptiveConfig struct {
	// Limits seeds MaxPending and, through BuildBudget, the default latency
	// target. A zero MaxPending leaves pending-cap tuning off (no cap).
	Limits Limits
	// UplinkRate seeds the per-connection uplink rate (queries/sec). Zero
	// leaves rate tuning off.
	UplinkRate float64
	// PruneChurn seeds the incremental-prune fallback threshold. Zero
	// selects core.DefaultPruneChurn; negative disables the incremental
	// path and its tuning, mirroring Config.PruneChurn.
	PruneChurn float64
	// ScheduleChurn seeds the incremental-scheduling fallback threshold.
	// Zero selects schedule.DefaultScheduleChurn; negative disables.
	ScheduleChurn float64
	// TargetLatency is the per-cycle assembly-latency goal. Zero derives
	// TargetFraction×Limits.BuildBudget, or DefaultAdaptiveTarget when no
	// budget is set.
	TargetLatency time.Duration
	// TargetFraction overrides DefaultTargetFraction for the derivation
	// above. Ignored when TargetLatency is set.
	TargetFraction float64
	// Alpha is the EWMA smoothing factor for all estimators; zero selects
	// 0.3.
	Alpha float64
	// DecreaseFactor is the multiplicative shed factor in (0, 1); zero
	// selects 0.5.
	DecreaseFactor float64
	// PendingStep and RateStep are the additive growth increments; zero
	// selects seed/64 (min 1) and seed/16 respectively.
	PendingStep int
	RateStep    float64
	// PendingFloor/PendingCeil bound MaxPending; zero selects min(8, seed)
	// and max(4096, 16×seed). RateFloor/RateCeil bound UplinkRate; zero
	// selects seed/64 (min 1) and 16×seed.
	PendingFloor, PendingCeil int
	RateFloor, RateCeil       float64
	// HoldCycles is the hysteresis window after a shed during which neither
	// further soft sheds nor growth happen; zero selects 8.
	HoldCycles int
	// RecoverCycles is the consecutive-good-cycle streak required to report
	// Healthy again; zero selects 12.
	RecoverCycles int
	// DegradedStreak is the consecutive degraded-cycle count that flips
	// health from Shedding to Degraded; zero selects 3.
	DegradedStreak int
	// Clock drives the controller's inter-cycle latency estimate. Nil
	// selects the wall clock; tests inject control.Fake.
	Clock control.Clock
}

// AdaptiveState is a point-in-time snapshot of the controller, exported
// through Metrics.Adaptive.
type AdaptiveState struct {
	// Health is the three-state load signal.
	Health Health
	// Target is the assembly-latency goal the loop steers towards.
	Target time.Duration
	// MaxPending and UplinkRate are the live limit values (0 = untuned).
	MaxPending int
	UplinkRate float64
	// PruneChurn and ScheduleChurn are the live fallback thresholds.
	PruneChurn, ScheduleChurn float64
	// AssemblyLatency is the EWMA of per-cycle stage wall time (schedule +
	// build + encode); CycleLatency the EWMA of observed spacing between
	// assembled cycles, which prices FrameReject retry-after hints.
	AssemblyLatency, CycleLatency time.Duration
	// Sheds counts multiplicative-decrease decisions; Grows counts
	// additive increases that actually moved a limit.
	Sheds, Grows int64
}

// AdaptiveLimiter closes the loop between the engine's Probe telemetry and
// its admission limits: additive-increase/multiplicative-decrease (AIMD)
// with hysteresis over MaxPending and the uplink rate, steering the
// per-cycle assembly latency towards a target fraction of BuildBudget, plus
// measurement-driven auto-picking of the incremental-vs-full churn
// thresholds. It implements Probe; wire it via Config.Adaptive and it sees
// every pipeline event. All methods are safe for concurrent use.
//
// Enforcement split: the controller only computes limits. Drivers enforce
// MaxPending/UplinkRate at admission time (netcast's submit path); the
// engine itself stops hard-rejecting oversized pending sets when a
// controller is wired, so work that was already admitted always assembles
// even right after a shed.
type AdaptiveLimiter struct {
	mu    sync.Mutex
	clock control.Clock

	target       time.Duration
	factor       float64
	stepPending  int
	stepRate     float64
	pendingFloor int
	pendingCeil  int
	rateFloor    float64
	rateCeil     float64
	hold         int
	recoverAfter int
	degStreakMax int

	// Live limit values.
	maxPending           int
	uplinkRate           float64
	pruneChurn           float64
	schedChurn           float64
	tunePrune, tuneSched bool
	health               Health

	// Per-cycle accumulation between CycleDone events.
	cycleWall     time.Duration
	sawDegraded   bool
	pendingDepth  int
	lastSchedKind string
	lastPruneKind string

	// Estimators.
	assembly       control.EWMA // per-cycle assembly wall
	interCycle     control.EWMA // spacing between CycleDone events
	setSize        control.EWMA // pending-set depth at schedule time
	schedFull      control.EWMA // full-rebuild schedule stage wall
	schedPerChange control.EWMA // per-request delta-schedule cost
	pruneFull      control.EWMA // full-prune build stage wall
	prunePerChange control.EWMA // per-query delta-prune cost
	lastCycleAt    time.Time

	holdLeft      int
	healthyStreak int
	degStreak     int
	sheds, grows  int64
}

// NewAdaptiveLimiter builds a controller from seeds and defaults; see
// AdaptiveConfig.
func NewAdaptiveLimiter(cfg AdaptiveConfig) *AdaptiveLimiter {
	target := cfg.TargetLatency
	if target <= 0 {
		if cfg.Limits.BuildBudget > 0 {
			frac := cfg.TargetFraction
			if frac <= 0 || frac >= 1 {
				frac = DefaultTargetFraction
			}
			target = time.Duration(frac * float64(cfg.Limits.BuildBudget))
		}
		if target <= 0 {
			target = DefaultAdaptiveTarget
		}
	}
	alpha := cfg.Alpha
	factor := cfg.DecreaseFactor
	if factor <= 0 || factor >= 1 {
		factor = defaultDecreaseFactor
	}
	a := &AdaptiveLimiter{
		clock:        control.Or(cfg.Clock),
		target:       target,
		factor:       factor,
		hold:         cfg.HoldCycles,
		recoverAfter: cfg.RecoverCycles,
		degStreakMax: cfg.DegradedStreak,
		maxPending:   cfg.Limits.MaxPending,
		uplinkRate:   cfg.UplinkRate,
		health:       Healthy,

		assembly:       control.NewEWMA(alpha),
		interCycle:     control.NewEWMA(alpha),
		setSize:        control.NewEWMA(alpha),
		schedFull:      control.NewEWMA(alpha),
		schedPerChange: control.NewEWMA(alpha),
		pruneFull:      control.NewEWMA(alpha),
		prunePerChange: control.NewEWMA(alpha),
	}
	if a.hold <= 0 {
		a.hold = defaultHoldCycles
	}
	if a.recoverAfter <= 0 {
		a.recoverAfter = defaultRecoverCycles
	}
	if a.degStreakMax <= 0 {
		a.degStreakMax = defaultDegradedStreak
	}
	if a.maxPending > 0 {
		a.stepPending = cfg.PendingStep
		if a.stepPending <= 0 {
			a.stepPending = max(1, a.maxPending/64)
		}
		a.pendingFloor = cfg.PendingFloor
		if a.pendingFloor <= 0 {
			a.pendingFloor = max(1, min(8, a.maxPending))
		}
		a.pendingCeil = cfg.PendingCeil
		if a.pendingCeil <= 0 {
			a.pendingCeil = max(4096, 16*a.maxPending)
		}
	}
	if a.uplinkRate > 0 {
		a.stepRate = cfg.RateStep
		if a.stepRate <= 0 {
			a.stepRate = a.uplinkRate / 16
		}
		a.rateFloor = cfg.RateFloor
		if a.rateFloor <= 0 {
			a.rateFloor = max(1, a.uplinkRate/64)
		}
		a.rateCeil = cfg.RateCeil
		if a.rateCeil <= 0 {
			a.rateCeil = 16 * a.uplinkRate
		}
	}
	a.pruneChurn = cfg.PruneChurn
	if a.pruneChurn == 0 {
		a.pruneChurn = core.DefaultPruneChurn
	}
	a.tunePrune = a.pruneChurn > 0
	a.schedChurn = cfg.ScheduleChurn
	if a.schedChurn == 0 {
		a.schedChurn = schedule.DefaultScheduleChurn
	}
	a.tuneSched = a.schedChurn > 0
	return a
}

// MaxPending is the live pending-set cap drivers enforce at admission (0 =
// uncapped).
func (a *AdaptiveLimiter) MaxPending() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.maxPending
}

// UplinkRate is the live per-connection uplink rate in queries/sec (0 =
// unlimited).
func (a *AdaptiveLimiter) UplinkRate() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.uplinkRate
}

// PruneChurn is the live incremental-prune fallback threshold (negative =
// incremental maintenance disabled).
func (a *AdaptiveLimiter) PruneChurn() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.pruneChurn
}

// ScheduleChurn is the live incremental-scheduling fallback threshold
// (negative = disabled).
func (a *AdaptiveLimiter) ScheduleChurn() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.schedChurn
}

// Health is the current three-state load signal.
func (a *AdaptiveLimiter) Health() Health {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.health
}

// RetryAfter prices a FrameReject retry-after hint from the controller's
// inter-cycle latency estimate: how long until the next cycle retires
// pending work. Returns 0 before the estimate is seeded (callers fall back
// to their static hint).
func (a *AdaptiveLimiter) RetryAfter() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.interCycle.Seeded() {
		return 0
	}
	d := a.interCycle.Duration()
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// State snapshots the controller.
func (a *AdaptiveLimiter) State() AdaptiveState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdaptiveState{
		Health:          a.health,
		Target:          a.target,
		MaxPending:      a.maxPending,
		UplinkRate:      a.uplinkRate,
		PruneChurn:      a.pruneChurn,
		ScheduleChurn:   a.schedChurn,
		AssemblyLatency: a.assembly.Duration(),
		CycleLatency:    a.interCycle.Duration(),
		Sheds:           a.sheds,
		Grows:           a.grows,
	}
}

// StageDone implements Probe: accumulate this cycle's assembly wall and feed
// the incremental-vs-full cost estimators. StageResolve is excluded — it is
// driven by uplink concurrency, not the cycle loop.
func (a *AdaptiveLimiter) StageDone(stage string, wall time.Duration, in, out int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch stage {
	case StageSchedule:
		a.cycleWall += wall
		a.pendingDepth = in
		a.setSize.Observe(float64(in))
		// ScheduleDone fires before StageDone(StageSchedule), so the kind
		// attributes this stage's wall.
		if a.lastSchedKind == ScheduleFull {
			a.schedFull.ObserveDuration(wall)
		}
		a.lastSchedKind = ""
	case StageScheduleDelta:
		if in > 0 {
			a.schedPerChange.Observe(float64(wall) / float64(in))
		}
	case StageBuild:
		a.cycleWall += wall
		if a.lastPruneKind == PruneFull || a.lastPruneKind == PruneFallback {
			a.pruneFull.ObserveDuration(wall)
		}
		a.lastPruneKind = ""
	case StagePruneDelta:
		if in > 0 {
			a.prunePerChange.Observe(float64(wall) / float64(in))
		}
	case StageEncode:
		// Encode runs after the cycle's CycleDone, so its wall lands in the
		// next control step — a one-cycle smear the EWMA absorbs.
		a.cycleWall += wall
	}
}

// CacheAccess implements Probe.
func (a *AdaptiveLimiter) CacheAccess(bool) {}

// CacheInvalidated implements Probe.
func (a *AdaptiveLimiter) CacheInvalidated() {}

// CacheEvicted implements Probe.
func (a *AdaptiveLimiter) CacheEvicted(string, int) {}

// PruneDone implements Probe.
func (a *AdaptiveLimiter) PruneDone(kind string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastPruneKind = kind
}

// ScheduleDone implements Probe.
func (a *AdaptiveLimiter) ScheduleDone(kind string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.lastSchedKind = kind
}

// CycleDegraded implements Probe.
func (a *AdaptiveLimiter) CycleDegraded() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sawDegraded = true
}

// ChannelDone implements Probe. Per-channel byte counts carry no load signal
// the controller acts on; the cycle-level stages drive the control loop.
func (a *AdaptiveLimiter) ChannelDone(int, broadcast.ChannelRole, int64, bool) {}

// CycleDone implements Probe and runs one control step:
//
//   - a degraded cycle always sheds multiplicatively (hard signal);
//   - assembly latency over target sheds too, but at most once per
//     HoldCycles window (soft signal with hysteresis), so the EWMA's memory
//     of a burst cannot cascade limits to the floor;
//   - latency under target with the hold window drained grows additively;
//   - health transitions Shedding→Degraded on a degraded streak and back to
//     Healthy after RecoverCycles consecutive good cycles.
func (a *AdaptiveLimiter) CycleDone() {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.clock.Now()
	if !a.lastCycleAt.IsZero() {
		a.interCycle.ObserveDuration(now.Sub(a.lastCycleAt))
	}
	a.lastCycleAt = now

	inst := a.cycleWall
	a.cycleWall = 0
	lat := a.assembly.ObserveDuration(inst)
	deg := a.sawDegraded
	a.sawDegraded = false
	if deg {
		a.degStreak++
	} else {
		a.degStreak = 0
	}

	over := inst > a.target || lat > a.target
	switch {
	case deg || (over && a.holdLeft == 0):
		a.shed()
		a.holdLeft = a.hold
		a.healthyStreak = 0
		if a.degStreak >= a.degStreakMax {
			a.health = Degraded
		} else {
			a.health = Shedding
		}
	case over:
		// Over target inside the hold window: let the last shed take
		// effect before cutting again.
		a.holdLeft--
		a.healthyStreak = 0
	default:
		if a.holdLeft > 0 {
			a.holdLeft--
		} else {
			a.grow()
		}
		a.healthyStreak++
		if a.health != Healthy && a.healthyStreak >= a.recoverAfter {
			a.health = Healthy
		}
	}
	a.retuneChurn()
}

// shed applies one multiplicative decrease. Called with a.mu held.
func (a *AdaptiveLimiter) shed() {
	a.sheds++
	if a.maxPending > 0 {
		a.maxPending = max(a.pendingFloor, int(float64(a.maxPending)*a.factor))
	}
	if a.uplinkRate > 0 {
		a.uplinkRate = max(a.rateFloor, a.uplinkRate*a.factor)
	}
}

// grow applies one additive increase, counting it only when a limit
// actually moved. Called with a.mu held.
func (a *AdaptiveLimiter) grow() {
	moved := false
	if a.maxPending > 0 && a.maxPending < a.pendingCeil {
		a.maxPending = min(a.pendingCeil, a.maxPending+a.stepPending)
		moved = true
	}
	if a.uplinkRate > 0 && a.uplinkRate < a.rateCeil {
		a.uplinkRate = min(a.rateCeil, a.uplinkRate+a.stepRate)
		moved = true
	}
	if moved {
		a.grows++
	}
}

// retuneChurn picks the incremental-vs-full fallback thresholds from
// measured costs: a delta path is worth taking while
// churn × setSize × perChangeCost < fullCost, so the breakeven churn is
// fullCost / (perChangeCost × setSize), clamped to [0.05, 0.95]. The
// pending-set depth stands in for the query-set size on the prune side — a
// proxy, but the two scale together under both drivers. Called with a.mu
// held.
func (a *AdaptiveLimiter) retuneChurn() {
	set := a.setSize.Value()
	if set < 1 {
		return
	}
	if a.tuneSched && a.schedFull.Seeded() && a.schedPerChange.Seeded() && a.schedPerChange.Value() > 0 {
		a.schedChurn = clampChurn(a.schedFull.Value() / (a.schedPerChange.Value() * set))
	}
	if a.tunePrune && a.pruneFull.Seeded() && a.prunePerChange.Seeded() && a.prunePerChange.Value() > 0 {
		a.pruneChurn = clampChurn(a.pruneFull.Value() / (a.prunePerChange.Value() * set))
	}
}

func clampChurn(x float64) float64 {
	if x < minAutoChurn {
		return minAutoChurn
	}
	if x > maxAutoChurn {
		return maxAutoChurn
	}
	return x
}
