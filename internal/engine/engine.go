// Package engine is the server-side cycle-assembly pipeline shared by the
// discrete-event simulator (internal/sim) and the networked broadcast server
// (internal/netcast). It owns the per-cycle loop of §3.4 Fig. 8 — resolve
// pending queries through the shared NFA filter, schedule result documents
// into the cycle budget, prune and pack the air index, and encode the wire
// segments — so the two drivers cannot drift apart, and it runs the
// profitable stages concurrently:
//
//   - query answering is memoized per canonical query string and, on misses,
//     batch-evaluated by one shared automaton with document matching sharded
//     across GOMAXPROCS workers (yfilter.FilterParallel);
//   - the builder's merged DataGuide is constructed with per-document guides
//     built in parallel (dataguide.MergeParallel via broadcast.NewBuilder);
//   - wire encoding reuses pooled buffers and a per-document payload cache,
//     so steady-state cycles allocate O(1) buffers instead of O(docs).
//
// Every stage reports wall time and input/output sizes through a Probe;
// the default probe collects Metrics surfaced in netcast.ServerStats and
// sim.Result.
package engine

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/journal"
	"repro/internal/schedule"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// Config parameterises an Engine.
type Config struct {
	// Collection is the initial document set. Required.
	Collection *xmldoc.Collection
	// Model fixes on-air field widths. Zero selects the default.
	Model core.SizeModel
	// Mode selects one-tier or two-tier broadcast. Required.
	Mode broadcast.Mode
	// IndexEncoding selects the first tier's wire layout: the node-pointer
	// stream (the zero value) or the succinct balanced-parentheses form,
	// which requires TwoTierMode.
	IndexEncoding core.IndexEncoding
	// Scheduler plans cycle content. Nil selects schedule.LeeLo.
	Scheduler schedule.Scheduler
	// CycleCapacity is the document-byte budget per cycle. Required (> 0).
	CycleCapacity int
	// Probe receives pipeline telemetry in addition to the engine's own
	// collector. Optional.
	Probe Probe
	// Workers bounds the filter/build parallelism. Zero selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// Limits bounds the engine's memory and per-cycle latency; see Limits.
	// The zero value imposes no limits.
	Limits Limits
	// PruneChurn is the query-churn fraction above which the incremental
	// PCI maintainer falls back to a full prune (see core.PrunedView). Zero
	// selects core.DefaultPruneChurn; a negative value disables incremental
	// maintenance entirely, re-pruning from scratch every cycle.
	PruneChurn float64
	// ScheduleChurn is the pending-set churn fraction above which the
	// incremental demand index falls back to a sharded full rebuild (see
	// schedule.DemandIndex). Zero selects schedule.DefaultScheduleChurn; a
	// negative value disables incremental scheduling entirely, planning
	// every cycle from the pending slice alone.
	ScheduleChurn float64
	// Adaptive wires a self-tuning admission controller into the probe
	// stream. When set, the controller's live values supersede the static
	// PruneChurn/ScheduleChurn each cycle, Metrics carries its health and
	// state, and AssembleCycle stops hard-rejecting on Limits.MaxPending —
	// the driver enforces the controller's cap at admission time instead,
	// so already-admitted work still assembles right after a shed.
	// Optional.
	Adaptive *AdaptiveLimiter
	// Channels selects the broadcast layout: 0 or 1 (the default) emits the
	// serial single-channel program; K > 1 splits each cycle across K
	// parallel streams sharing the aggregate bandwidth — channel 0 carries
	// the cycle head, channel directory and first tier, channels 1..K-1
	// carry second-tier stripes and documents. Requires TwoTierMode when
	// greater than 1.
	Channels int
}

// Pending is one outstanding request as the scheduler sees it: the query (for
// index pruning), the arrival time in the driver's clock, and the result
// documents the client still lacks.
type Pending struct {
	// ID uniquely identifies the request; relative order must follow
	// submission order for deterministic tie-breaking.
	ID int64
	// Query is the request's XPath query.
	Query xpath.Path
	// Arrival is the request's arrival time in the driver's clock units
	// (byte-time in sim, cycle number in netcast).
	Arrival int64
	// Remaining are the result documents not yet delivered. Order is
	// irrelevant; the engine sorts a copy.
	Remaining []xmldoc.DocID
}

// Cycle is one assembled broadcast cycle plus the pipeline inputs it was
// planned from. The engine, the simulator and the networked server share the
// single channel-aware plan type of package broadcast.
type Cycle = broadcast.Cycle

// Encoded holds one cycle's wire segments. The index and offset segments
// share one pooled backing buffer: callers that fully consume them may return
// it with Engine.Recycle, callers that retain them (e.g. broadcast fan-out
// queues) simply let the GC take it. Docs entries point into the engine's
// per-document payload cache and are shared, immutable, and never recycled.
type Encoded struct {
	// Index is the packed index segment.
	Index []byte
	// SecondTier is the offset-list segment; nil in one-tier mode and in
	// multichannel cycles (which stripe it into SecondTiers).
	SecondTier []byte
	// ChannelDir is the channel-directory segment; nil in single-channel
	// cycles.
	ChannelDir []byte
	// SecondTiers holds each data channel's second-tier stripe (entry i is
	// channel i+1); nil in single-channel cycles.
	SecondTiers [][]byte
	// Docs holds one payload per scheduled document, in broadcast order
	// (Cycle.Docs order — in multichannel cycles entry i rides the channel
	// of Cycle.Docs[i]): 2 little-endian ID bytes followed by the
	// marshalled document.
	Docs [][]byte

	buf []byte // pooled backing of the index and offset segments
}

// Engine owns the cycle-assembly pipeline over a dynamic collection. All
// methods are safe for concurrent use.
type Engine struct {
	scheduler schedule.Scheduler
	capacity  int
	workers   int
	limits    Limits
	probe     probes
	collector *Collector
	adaptive  *AdaptiveLimiter // nil without Config.Adaptive

	// mu serialises builder access (the Builder is not concurrent-safe) and
	// guards the caches; epoch invalidates in-flight resolutions racing a
	// collection update.
	mu       sync.Mutex
	builder  *broadcast.Builder
	answers  *answerCache
	payloads *payloadCache
	epoch    uint64

	// view maintains the PCI incrementally across cycles (keyed on the CI
	// pointer, which the builder replaces on every collection change). nil
	// until the first prune, after a budget overrun abandoned an update
	// mid-flight, or permanently when pruneChurn < 0.
	view       *core.PrunedView
	pruneChurn float64

	// demand maintains per-document demand aggregation across cycles by
	// pending-set deltas; nil until the first plan, or permanently when
	// schedChurn < 0 or the scheduler is not incremental. changeIdx and
	// keepIDs are per-cycle diff scratch, reused under mu.
	demand     *schedule.DemandIndex
	isched     schedule.IncrementalScheduler // nil when unsupported
	schedChurn float64
	changeIdx  []int
	keepIDs    map[int64]struct{}

	// fp is the order-independent collection fingerprint (XOR of
	// journal.DocHash per live document), maintained incrementally so the
	// durability layer can cheaply detect collection drift across restarts.
	// fpSizes remembers each live document's size for removal. Guarded by mu.
	fp      uint64
	fpSizes map[xmldoc.DocID]int

	segPool sync.Pool // *[]byte scratch for encoded index/second-tier segments
}

// New validates the configuration and builds the engine (including the
// merged DataGuide and initial CI).
func New(cfg Config) (*Engine, error) {
	if cfg.Collection == nil || cfg.Collection.Len() == 0 {
		return nil, fmt.Errorf("engine: Config.Collection is required")
	}
	if cfg.CycleCapacity <= 0 {
		return nil, fmt.Errorf("engine: Config.CycleCapacity must be positive, got %d", cfg.CycleCapacity)
	}
	if cfg.Model == (core.SizeModel{}) {
		cfg.Model = core.DefaultSizeModel()
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = schedule.LeeLo{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	builder, err := broadcast.NewBuilder(cfg.Collection, cfg.Model, cfg.Mode)
	if err != nil {
		return nil, err
	}
	if cfg.Channels > 1 {
		if err := builder.SetChannels(cfg.Channels); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	if cfg.IndexEncoding != core.EncodingNode {
		if err := builder.SetEncoding(cfg.IndexEncoding); err != nil {
			return nil, fmt.Errorf("engine: %w", err)
		}
	}
	schedChurn := cfg.ScheduleChurn
	if schedChurn == 0 {
		schedChurn = schedule.DefaultScheduleChurn
	}
	e := &Engine{
		scheduler:  cfg.Scheduler,
		capacity:   cfg.CycleCapacity,
		workers:    cfg.Workers,
		limits:     cfg.Limits,
		adaptive:   cfg.Adaptive,
		pruneChurn: cfg.PruneChurn,
		schedChurn: schedChurn,
		collector:  NewCollector(),
		builder:    builder,
		answers:    newAnswerCache(cfg.Limits.MaxAnswerCacheEntries),
		payloads:   newPayloadCache(cfg.Limits.MaxPayloadCacheBytes),
	}
	if schedChurn >= 0 {
		e.isched, _ = cfg.Scheduler.(schedule.IncrementalScheduler)
	}
	e.fpSizes = make(map[xmldoc.DocID]int, cfg.Collection.Len())
	for _, d := range cfg.Collection.Docs() {
		e.fpSizes[d.ID] = d.Size()
		e.fp ^= journal.DocHash(uint16(d.ID), d.Size())
	}
	e.probe = probes{e.collector}
	if cfg.Probe != nil {
		e.probe = append(e.probe, cfg.Probe)
	}
	if e.adaptive != nil {
		e.probe = append(e.probe, e.adaptive)
	}
	e.segPool.New = func() any { b := make([]byte, 0, 4096); return &b }
	return e, nil
}

// Mode reports the engine's index organisation.
func (e *Engine) Mode() broadcast.Mode {
	return e.builder.Mode()
}

// Channels reports the configured broadcast channel count (1 = serial).
func (e *Engine) Channels() int { return e.builder.Channels() }

// Encoding reports the first tier's wire layout.
func (e *Engine) Encoding() core.IndexEncoding { return e.builder.Encoding() }

// Scheduler reports the planning policy.
func (e *Engine) Scheduler() schedule.Scheduler { return e.scheduler }

// Limits reports the configured resource bounds.
func (e *Engine) Limits() Limits { return e.limits }

// NumDocs reports the current collection size.
func (e *Engine) NumDocs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.builder.NumDocs()
}

// CollectionFingerprint is the order-independent fingerprint of the live
// document collection (XOR of journal.DocHash over every document's ID and
// size), maintained incrementally across AddDocument/RemoveDocument. The
// durability layer journals it with collection events so a restarted server
// can detect that the collection drifted while it was down and re-resolve
// recovered queries instead of trusting their recorded result sets.
func (e *Engine) CollectionFingerprint() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.fp
}

// Metrics snapshots the engine's accumulated telemetry, including the
// adaptive controller's health and state when one is wired.
func (e *Engine) Metrics() Metrics {
	m := e.collector.Metrics()
	if e.adaptive != nil {
		st := e.adaptive.State()
		m.Health = st.Health
		m.Adaptive = &st
	}
	return m
}

// Resolve answers one query: the sorted IDs of matching documents. Answers
// are memoized by canonical query string until the collection changes, so
// repeated submissions of popular queries never rescan documents.
func (e *Engine) Resolve(q xpath.Path) ([]xmldoc.DocID, error) {
	answers, err := e.ResolveAll([]xpath.Path{q})
	if err != nil {
		return nil, err
	}
	return answers[q.String()], nil
}

// ResolveAll answers a query batch, keyed by canonical query string. Cached
// answers are served from the memo; the misses are compiled into one shared
// NFA and matched against the collection with document matching sharded
// across the engine's workers.
func (e *Engine) ResolveAll(queries []xpath.Path) (map[string][]xmldoc.DocID, error) {
	out := make(map[string][]xmldoc.DocID, len(queries))

	e.mu.Lock()
	epoch := e.epoch
	var misses []xpath.Path
	for _, q := range queries {
		key := q.String()
		if _, dup := out[key]; dup {
			continue
		}
		if docs, ok := e.answers.get(key); ok {
			out[key] = docs
			e.probe.CacheAccess(true)
		} else {
			out[key] = nil
			misses = append(misses, q)
			e.probe.CacheAccess(false)
		}
	}
	if len(misses) == 0 {
		e.mu.Unlock()
		return out, nil
	}
	coll, err := e.builder.Collection()
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Match outside the lock: the snapshot is immutable, and the epoch check
	// below discards results that raced a collection update.
	start := time.Now()
	perQuery := yfilter.New(misses).FilterParallel(coll, e.workers)
	matched := 0
	for _, docs := range perQuery {
		matched += len(docs)
	}
	e.probe.StageDone(StageResolve, time.Since(start), len(misses), matched)

	e.mu.Lock()
	fresh := e.epoch == epoch
	evicted := 0
	for i, q := range misses {
		out[q.String()] = perQuery[i]
		if fresh {
			evicted += e.answers.put(q.String(), q, perQuery[i])
		}
	}
	e.mu.Unlock()
	if evicted > 0 {
		e.probe.CacheEvicted(EvictAnswer, evicted)
	}
	return out, nil
}

// AssembleCycle plans and lays out one broadcast cycle: the scheduler fills
// the capacity budget from the pending requests' remaining documents, and the
// CI is pruned to the distinct pending queries and packed under the engine's
// tier. start is both the cycle's start time and the scheduler's "now", in
// the driver's clock units.
//
// With Limits.MaxPending set, a larger pending set is rejected with a wrapped
// ErrOverload before any scheduling work. With Limits.BuildBudget set, a
// pruning pass that overruns the budget degrades the cycle to the unpruned CI
// (see Cycle.Degraded).
func (e *Engine) AssembleCycle(number, start int64, pending []Pending) (*Cycle, error) {
	return e.AssembleCycleAt(number, start, start, pending)
}

// AssembleCycleAt is AssembleCycle with the scheduler's "now" decoupled
// from the cycle's start time, for drivers whose scheduling clock differs
// from their layout clock: the simulator's ClockCycles option keeps
// byte-time cycle starts while handing clock-sensitive policies (RxW) the
// cycle number netcast schedules with. Arrival values in pending must be in
// schedNow's unit.
//
// Incremental scheduling (see schedule.DemandIndex) additionally assumes
// driver-shaped pending sets across consecutive calls: a request keeps its
// ID and arrival, its Remaining set only shrinks, every Remaining is
// non-empty, and new requests are appended after surviving ones. Both
// drivers satisfy this; callers that mutate pending arbitrarily between
// cycles still get correct plans whenever a count or arrival changes, and
// can force reference behaviour with a negative Config.ScheduleChurn.
func (e *Engine) AssembleCycleAt(number, start, schedNow int64, pending []Pending) (*Cycle, error) {
	if len(pending) == 0 {
		return nil, fmt.Errorf("engine: AssembleCycle with no pending requests")
	}
	// With an adaptive controller the cap is the driver's to enforce at
	// admission time; assembly never refuses a pending set it already
	// admitted (a post-shed cap below the admitted depth would otherwise
	// kill the cycle loop).
	if e.adaptive == nil && e.limits.MaxPending > 0 && len(pending) > e.limits.MaxPending {
		return nil, fmt.Errorf("engine: %d pending requests exceed MaxPending %d: %w",
			len(pending), e.limits.MaxPending, ErrOverload)
	}
	reqs := make([]schedule.Request, 0, len(pending))
	queries := make([]xpath.Path, 0, len(pending))
	seen := make(map[string]struct{}, len(pending))
	for _, p := range pending {
		rem := append([]xmldoc.DocID(nil), p.Remaining...)
		sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })
		reqs = append(reqs, schedule.Request{ID: p.ID, Arrival: p.Arrival, Docs: rem})
		if _, ok := seen[p.Query.String()]; !ok {
			seen[p.Query.String()] = struct{}{}
			queries = append(queries, p.Query)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	schedStart := time.Now()
	size := func(d xmldoc.DocID) int { return e.builder.DocByID(d).Size() }
	plan := e.planCycle(reqs, size, schedNow)
	e.probe.StageDone(StageSchedule, time.Since(schedStart), len(reqs), len(plan))
	if len(plan) == 0 {
		return nil, fmt.Errorf("engine: scheduler %q planned an empty cycle with %d pending", e.scheduler.Name(), len(reqs))
	}

	buildStart := time.Now()
	ci := e.builder.CI()
	ciNodes := ci.NumNodes()
	index, degraded, err := e.pruneWithBudget(ci, queries)
	if err != nil {
		return nil, err
	}
	cy, err := e.builder.BuildCycleWithIndex(number, start, index, plan)
	if err != nil {
		return nil, err
	}
	e.probe.StageDone(StageBuild, time.Since(buildStart), ciNodes, cy.Index.NumNodes())
	if degraded {
		e.probe.CycleDegraded()
	}
	cy.Queries = queries
	cy.NumPending = len(pending)
	cy.Degraded = degraded
	for i := range cy.Channels {
		lay := &cy.Channels[i]
		e.probe.ChannelDone(lay.ID, lay.Role, int64(lay.Bytes), degraded)
	}
	e.probe.CycleDone()
	return cy, nil
}

// planCycle produces one cycle's document plan. With an incremental
// scheduler it diffs the pending set against the persistent demand index —
// cheap (count, arrival) probes decide between applying the delta and a
// sharded full rebuild when churn exceeds schedChurn — then plans from the
// index and applies the plan's predicted deliveries, so the next diff is
// no-op-sized for well-behaved drivers. Requests that complete are kept as
// zombies until the next pending set confirms them, which lets a lossy
// delivery resurrect a request without perturbing LeeLo's summation order.
// Called with e.mu held.
func (e *Engine) planCycle(reqs []schedule.Request, size func(xmldoc.DocID) int, now int64) []xmldoc.DocID {
	if e.isched == nil {
		e.probe.ScheduleDone(ScheduleFull)
		return e.scheduler.PlanCycle(reqs, size, e.capacity, now)
	}
	if e.demand == nil {
		e.demand = schedule.NewDemandIndex()
	}
	x := e.demand
	deltaStart := time.Now()
	changed := e.changeIdx[:0]
	matched := 0
	for i := range reqs {
		if n, arr, ok := x.Peek(reqs[i].ID); ok {
			matched++
			if n != len(reqs[i].Docs) || arr != reqs[i].Arrival {
				changed = append(changed, i)
			}
		} else {
			changed = append(changed, i)
		}
	}
	e.changeIdx = changed
	removed := x.Len() - matched
	churn := len(changed) + removed
	schedChurn := e.schedChurn
	if e.adaptive != nil {
		schedChurn = e.adaptive.ScheduleChurn()
	}
	if x.Len() == 0 || float64(churn) > schedChurn*float64(len(reqs)+removed) {
		x.Rebuild(reqs, size, e.workers)
		x.TakeEdits()
		e.probe.ScheduleDone(ScheduleFull)
	} else {
		for _, i := range changed {
			x.Apply(reqs[i], size)
		}
		if removed > 0 {
			if x.Zombies() == removed {
				x.ExpireZombies()
			} else {
				if e.keepIDs == nil {
					e.keepIDs = make(map[int64]struct{}, len(reqs))
				}
				clear(e.keepIDs)
				for i := range reqs {
					e.keepIDs[reqs[i].ID] = struct{}{}
				}
				x.RemoveExcept(e.keepIDs)
			}
		}
		e.probe.StageDone(StageScheduleDelta, time.Since(deltaStart), churn, x.TakeEdits())
		e.probe.ScheduleDone(ScheduleIncremental)
	}
	plan := e.isched.PlanIndexed(x, e.capacity, now)
	for _, d := range plan {
		x.DeliverDoc(d)
	}
	return plan
}

// pruneWithBudget prunes the CI to the pending query set through the
// incremental maintainer, racing the prune against Limits.BuildBudget when
// one is set. On overrun it abandons the prune goroutine together with the
// view it may have been mutating (a fresh view is built next cycle; the
// straggler only reads the immutable ci snapshot and writes the orphaned
// view) and returns the unpruned CI with degraded = true. Called with e.mu
// held.
func (e *Engine) pruneWithBudget(ci *core.Index, queries []xpath.Path) (*core.Index, bool, error) {
	pruneChurn := e.pruneChurn
	if e.adaptive != nil {
		pruneChurn = e.adaptive.PruneChurn()
	}
	if pruneChurn >= 0 {
		if e.view == nil {
			e.view = core.NewPrunedView(pruneChurn)
		} else if e.adaptive != nil {
			e.view.SetChurn(pruneChurn)
		}
	}
	view := e.view // nil when incremental maintenance is disabled
	if e.limits.BuildBudget <= 0 {
		pci, err := e.pruneOnce(view, ci, queries)
		if err != nil {
			return nil, false, err
		}
		return pci, false, nil
	}
	type pruned struct {
		index *core.Index
		err   error
	}
	done := make(chan pruned, 1)
	go func() {
		pci, err := e.pruneOnce(view, ci, queries)
		done <- pruned{pci, err}
	}()
	timer := time.NewTimer(e.limits.BuildBudget)
	defer timer.Stop()
	select {
	case r := <-done:
		if r.err != nil {
			return nil, false, r.err
		}
		return r.index, false, nil
	case <-timer.C:
		// The abandoned goroutine may leave view half-updated; never reuse it.
		e.view = nil
		return ci, true, nil
	}
}

// pruneOnce produces one cycle's PCI — through the view's delta maintenance
// when one is live, from scratch otherwise — and reports the outcome kind
// plus, for delta updates, the StagePruneDelta sub-span.
func (e *Engine) pruneOnce(view *core.PrunedView, ci *core.Index, queries []xpath.Path) (*core.Index, error) {
	if view == nil {
		pci, _, err := ci.Prune(queries)
		if err != nil {
			return nil, fmt.Errorf("engine: prune: %w", err)
		}
		e.probe.PruneDone(PruneFull)
		return pci, nil
	}
	start := time.Now()
	pci, delta, err := view.Update(ci, queries)
	if err != nil {
		return nil, fmt.Errorf("engine: prune: %w", err)
	}
	if !delta.Full {
		e.probe.StageDone(StagePruneDelta, time.Since(start), delta.Added+delta.Removed, delta.FlippedMatches)
		e.probe.PruneDone(PruneIncremental)
		return pci, nil
	}
	switch delta.Reason {
	case core.PruneReasonChurn, core.PruneReasonIndexChanged:
		e.probe.PruneDone(PruneFallback)
	default:
		e.probe.PruneDone(PruneFull)
	}
	return pci, nil
}

// EncodeCycle produces the cycle's wire segments: the packed index, the
// second-tier offset list (two-tier mode; one stripe per data channel in
// multichannel cycles, plus the channel directory) and one framed payload per
// scheduled document. Index/offset bytes come from a buffer pool; document
// payloads are cached across cycles, so rebroadcasting a document costs no
// allocation. See Encoded for the buffer ownership rules.
func (e *Engine) EncodeCycle(c *Cycle) (_ *Encoded, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	start := time.Now()
	bufp := e.segPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	// Every error return must hand the pooled buffer back; buf may have been
	// regrown by AppendEncoded, so re-point bufp at the latest backing.
	defer func() {
		if err != nil {
			*bufp = buf[:0]
			e.segPool.Put(bufp)
		}
	}()
	enc := &Encoded{}
	segments := 1 + len(c.Docs)
	if len(c.Channels) > 1 {
		var cuts []int
		buf, cuts, err = e.builder.AppendEncodedChannels(buf, c)
		if err != nil {
			return nil, err
		}
		enc.buf = buf
		segs := make([][]byte, len(cuts))
		prev := 0
		for i, cut := range cuts {
			segs[i] = buf[prev:cut:cut]
			prev = cut
		}
		enc.Index = segs[0]
		enc.ChannelDir = segs[1]
		enc.SecondTiers = segs[2:]
		segments += 1 + len(enc.SecondTiers)
	} else {
		buf, err = e.builder.AppendEncoded(buf, c)
		if err != nil {
			return nil, err
		}
		enc.buf = buf
		indexLen := c.IndexStreamBytes()
		enc.Index = buf[:indexLen:indexLen]
		if len(buf) > indexLen {
			enc.SecondTier = buf[indexLen:len(buf):len(buf)]
			segments++
		}
	}
	total := len(buf)
	enc.Docs = make([][]byte, 0, len(c.Docs))
	evicted := 0
	for _, p := range c.Docs {
		payload, ok := e.payloads.get(p.ID)
		if !ok {
			doc := e.builder.DocByID(p.ID)
			if doc == nil {
				return nil, fmt.Errorf("engine: document %d scheduled but not in collection", p.ID)
			}
			payload = make([]byte, 2, 2+doc.Size())
			binary.LittleEndian.PutUint16(payload, uint16(p.ID))
			payload = append(payload, doc.Marshal()...)
			evicted += e.payloads.put(p.ID, payload)
		}
		enc.Docs = append(enc.Docs, payload)
		total += len(payload)
	}
	e.probe.StageDone(StageEncode, time.Since(start), segments, total)
	if evicted > 0 {
		e.probe.CacheEvicted(EvictPayload, evicted)
	}
	return enc, nil
}

// Recycle returns an Encoded's pooled buffer for reuse. Only call it when the
// index and offset segment slices are fully consumed; the Docs payloads are
// cache entries and remain valid.
func (e *Engine) Recycle(enc *Encoded) {
	if enc == nil || enc.buf == nil {
		return
	}
	buf := enc.buf
	enc.buf, enc.Index, enc.SecondTier = nil, nil, nil
	enc.ChannelDir, enc.SecondTiers = nil, nil
	e.segPool.Put(&buf)
}

// AddDocument admits a new document to the live collection; it becomes
// visible to queries and schedulable from the next cycle. Invalidation is
// incremental: only cached answers whose query matches the new document are
// evicted; the rest stay warm and exactly correct.
func (e *Engine) AddDocument(d *xmldoc.Document) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.builder.AddDocument(d); err != nil {
		return err
	}
	// The epoch still advances on every update: it fences in-flight
	// ResolveAll write-backs computed against the pre-update snapshot.
	e.epoch++
	e.fp ^= journal.DocHash(uint16(d.ID), d.Size())
	e.fpSizes[d.ID] = d.Size()
	e.probe.CacheInvalidated()

	entries := e.answers.entries()
	if len(entries) == 0 {
		return nil
	}
	queries := make([]xpath.Path, len(entries))
	for i, en := range entries {
		queries[i] = en.query
	}
	evicted := 0
	for _, qi := range yfilter.New(queries).MatchDocument(d) {
		e.answers.remove(entries[qi].key)
		evicted++
	}
	if evicted > 0 {
		e.probe.CacheEvicted(EvictAnswer, evicted)
	}
	return nil
}

// RemoveDocument retires a document from the live collection. Invalidation
// is incremental: only cached answers that contain the removed document (and
// its payload-cache entry) are evicted.
func (e *Engine) RemoveDocument(id xmldoc.DocID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.builder.RemoveDocument(id); err != nil {
		return err
	}
	e.epoch++
	if sz, ok := e.fpSizes[id]; ok {
		e.fp ^= journal.DocHash(uint16(id), sz)
		delete(e.fpSizes, id)
	}
	e.probe.CacheInvalidated()
	e.payloads.remove(id)

	evicted := 0
	for _, en := range e.answers.entries() {
		// Answers are sorted DocID slices (yfilter emits them sorted).
		i := sort.Search(len(en.docs), func(i int) bool { return en.docs[i] >= id })
		if i < len(en.docs) && en.docs[i] == id {
			e.answers.remove(en.key)
			evicted++
		}
	}
	if evicted > 0 {
		e.probe.CacheEvicted(EvictAnswer, evicted)
	}
	if e.demand != nil {
		// Purge the doc from the demand index the same way a delivery
		// would: requesters stop missing it, and requests it completed
		// become zombies until the drivers' pending sets confirm.
		e.demand.DeliverDoc(id)
	}
	return nil
}
