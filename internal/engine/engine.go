// Package engine is the server-side cycle-assembly pipeline shared by the
// discrete-event simulator (internal/sim) and the networked broadcast server
// (internal/netcast). It owns the per-cycle loop of §3.4 Fig. 8 — resolve
// pending queries through the shared NFA filter, schedule result documents
// into the cycle budget, prune and pack the air index, and encode the wire
// segments — so the two drivers cannot drift apart, and it runs the
// profitable stages concurrently:
//
//   - query answering is memoized per canonical query string and, on misses,
//     batch-evaluated by one shared automaton with document matching sharded
//     across GOMAXPROCS workers (yfilter.FilterParallel);
//   - the builder's merged DataGuide is constructed with per-document guides
//     built in parallel (dataguide.MergeParallel via broadcast.NewBuilder);
//   - wire encoding reuses pooled buffers and a per-document payload cache,
//     so steady-state cycles allocate O(1) buffers instead of O(docs).
//
// Every stage reports wall time and input/output sizes through a Probe;
// the default probe collects Metrics surfaced in netcast.ServerStats and
// sim.Result.
package engine

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/schedule"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
	"repro/internal/yfilter"
)

// Config parameterises an Engine.
type Config struct {
	// Collection is the initial document set. Required.
	Collection *xmldoc.Collection
	// Model fixes on-air field widths. Zero selects the default.
	Model core.SizeModel
	// Mode selects one-tier or two-tier broadcast. Required.
	Mode broadcast.Mode
	// Scheduler plans cycle content. Nil selects schedule.LeeLo.
	Scheduler schedule.Scheduler
	// CycleCapacity is the document-byte budget per cycle. Required (> 0).
	CycleCapacity int
	// Probe receives pipeline telemetry in addition to the engine's own
	// collector. Optional.
	Probe Probe
	// Workers bounds the filter/build parallelism. Zero selects
	// runtime.GOMAXPROCS(0).
	Workers int
}

// Pending is one outstanding request as the scheduler sees it: the query (for
// index pruning), the arrival time in the driver's clock, and the result
// documents the client still lacks.
type Pending struct {
	// ID uniquely identifies the request; relative order must follow
	// submission order for deterministic tie-breaking.
	ID int64
	// Query is the request's XPath query.
	Query xpath.Path
	// Arrival is the request's arrival time in the driver's clock units
	// (byte-time in sim, cycle number in netcast).
	Arrival int64
	// Remaining are the result documents not yet delivered. Order is
	// irrelevant; the engine sorts a copy.
	Remaining []xmldoc.DocID
}

// Cycle is one assembled broadcast cycle plus the pipeline inputs it was
// planned from.
type Cycle struct {
	*broadcast.Cycle
	// Queries are the distinct pending queries, in first-seen order; the
	// index was pruned to exactly this set.
	Queries []xpath.Path
	// NumPending is the number of pending requests the plan drew from.
	NumPending int
}

// Encoded holds one cycle's wire segments. Index and SecondTier share one
// pooled backing buffer: callers that fully consume the segments may return
// it with Engine.Recycle, callers that retain them (e.g. broadcast fan-out
// queues) simply let the GC take it. Docs entries point into the engine's
// per-document payload cache and are shared, immutable, and never recycled.
type Encoded struct {
	// Index is the packed index segment.
	Index []byte
	// SecondTier is the offset-list segment; nil in one-tier mode.
	SecondTier []byte
	// Docs holds one payload per scheduled document, in broadcast order:
	// 2 little-endian ID bytes followed by the marshalled document.
	Docs [][]byte

	buf []byte // pooled backing of Index+SecondTier
}

// Engine owns the cycle-assembly pipeline over a dynamic collection. All
// methods are safe for concurrent use.
type Engine struct {
	scheduler schedule.Scheduler
	capacity  int
	workers   int
	probe     probes
	collector *Collector

	// mu serialises builder access (the Builder is not concurrent-safe) and
	// guards the caches; epoch invalidates in-flight resolutions racing a
	// collection update.
	mu       sync.Mutex
	builder  *broadcast.Builder
	answers  map[string][]xmldoc.DocID
	payloads map[xmldoc.DocID][]byte
	epoch    uint64

	segPool sync.Pool // *[]byte scratch for encoded index/second-tier segments
}

// New validates the configuration and builds the engine (including the
// merged DataGuide and initial CI).
func New(cfg Config) (*Engine, error) {
	if cfg.Collection == nil || cfg.Collection.Len() == 0 {
		return nil, fmt.Errorf("engine: Config.Collection is required")
	}
	if cfg.CycleCapacity <= 0 {
		return nil, fmt.Errorf("engine: Config.CycleCapacity must be positive, got %d", cfg.CycleCapacity)
	}
	if cfg.Model == (core.SizeModel{}) {
		cfg.Model = core.DefaultSizeModel()
	}
	if cfg.Scheduler == nil {
		cfg.Scheduler = schedule.LeeLo{}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	builder, err := broadcast.NewBuilder(cfg.Collection, cfg.Model, cfg.Mode)
	if err != nil {
		return nil, err
	}
	e := &Engine{
		scheduler: cfg.Scheduler,
		capacity:  cfg.CycleCapacity,
		workers:   cfg.Workers,
		collector: NewCollector(),
		builder:   builder,
		answers:   make(map[string][]xmldoc.DocID),
		payloads:  make(map[xmldoc.DocID][]byte),
	}
	e.probe = probes{e.collector}
	if cfg.Probe != nil {
		e.probe = append(e.probe, cfg.Probe)
	}
	e.segPool.New = func() any { b := make([]byte, 0, 4096); return &b }
	return e, nil
}

// Mode reports the engine's index organisation.
func (e *Engine) Mode() broadcast.Mode {
	return e.builder.Mode()
}

// Scheduler reports the planning policy.
func (e *Engine) Scheduler() schedule.Scheduler { return e.scheduler }

// NumDocs reports the current collection size.
func (e *Engine) NumDocs() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.builder.NumDocs()
}

// Metrics snapshots the engine's accumulated telemetry.
func (e *Engine) Metrics() Metrics { return e.collector.Metrics() }

// Resolve answers one query: the sorted IDs of matching documents. Answers
// are memoized by canonical query string until the collection changes, so
// repeated submissions of popular queries never rescan documents.
func (e *Engine) Resolve(q xpath.Path) ([]xmldoc.DocID, error) {
	answers, err := e.ResolveAll([]xpath.Path{q})
	if err != nil {
		return nil, err
	}
	return answers[q.String()], nil
}

// ResolveAll answers a query batch, keyed by canonical query string. Cached
// answers are served from the memo; the misses are compiled into one shared
// NFA and matched against the collection with document matching sharded
// across the engine's workers.
func (e *Engine) ResolveAll(queries []xpath.Path) (map[string][]xmldoc.DocID, error) {
	out := make(map[string][]xmldoc.DocID, len(queries))

	e.mu.Lock()
	epoch := e.epoch
	var misses []xpath.Path
	for _, q := range queries {
		key := q.String()
		if _, dup := out[key]; dup {
			continue
		}
		if docs, ok := e.answers[key]; ok {
			out[key] = docs
			e.probe.CacheAccess(true)
		} else {
			out[key] = nil
			misses = append(misses, q)
			e.probe.CacheAccess(false)
		}
	}
	if len(misses) == 0 {
		e.mu.Unlock()
		return out, nil
	}
	coll, err := e.builder.Collection()
	e.mu.Unlock()
	if err != nil {
		return nil, err
	}

	// Match outside the lock: the snapshot is immutable, and the epoch check
	// below discards results that raced a collection update.
	start := time.Now()
	perQuery := yfilter.New(misses).FilterParallel(coll, e.workers)
	matched := 0
	for _, docs := range perQuery {
		matched += len(docs)
	}
	e.probe.StageDone(StageResolve, time.Since(start), len(misses), matched)

	e.mu.Lock()
	fresh := e.epoch == epoch
	for i, q := range misses {
		out[q.String()] = perQuery[i]
		if fresh {
			e.answers[q.String()] = perQuery[i]
		}
	}
	e.mu.Unlock()
	return out, nil
}

// AssembleCycle plans and lays out one broadcast cycle: the scheduler fills
// the capacity budget from the pending requests' remaining documents, and the
// CI is pruned to the distinct pending queries and packed under the engine's
// tier. start is both the cycle's start time and the scheduler's "now", in
// the driver's clock units.
func (e *Engine) AssembleCycle(number, start int64, pending []Pending) (*Cycle, error) {
	if len(pending) == 0 {
		return nil, fmt.Errorf("engine: AssembleCycle with no pending requests")
	}
	reqs := make([]schedule.Request, 0, len(pending))
	queries := make([]xpath.Path, 0, len(pending))
	seen := make(map[string]struct{}, len(pending))
	for _, p := range pending {
		rem := append([]xmldoc.DocID(nil), p.Remaining...)
		sort.Slice(rem, func(i, j int) bool { return rem[i] < rem[j] })
		reqs = append(reqs, schedule.Request{ID: p.ID, Arrival: p.Arrival, Docs: rem})
		if _, ok := seen[p.Query.String()]; !ok {
			seen[p.Query.String()] = struct{}{}
			queries = append(queries, p.Query)
		}
	}

	e.mu.Lock()
	defer e.mu.Unlock()

	schedStart := time.Now()
	size := func(d xmldoc.DocID) int { return e.builder.DocByID(d).Size() }
	plan := e.scheduler.PlanCycle(reqs, size, e.capacity, start)
	e.probe.StageDone(StageSchedule, time.Since(schedStart), len(reqs), len(plan))
	if len(plan) == 0 {
		return nil, fmt.Errorf("engine: scheduler %q planned an empty cycle with %d pending", e.scheduler.Name(), len(reqs))
	}

	buildStart := time.Now()
	ciNodes := e.builder.CI().NumNodes()
	cy, err := e.builder.BuildCycle(number, start, queries, plan)
	if err != nil {
		return nil, err
	}
	e.probe.StageDone(StageBuild, time.Since(buildStart), ciNodes, cy.Index.NumNodes())
	e.probe.CycleDone()
	return &Cycle{Cycle: cy, Queries: queries, NumPending: len(pending)}, nil
}

// EncodeCycle produces the cycle's wire segments: the packed index, the
// second-tier offset list (two-tier mode) and one framed payload per
// scheduled document. Index/second-tier bytes come from a buffer pool;
// document payloads are cached across cycles, so rebroadcasting a document
// costs no allocation. See Encoded for the buffer ownership rules.
func (e *Engine) EncodeCycle(c *Cycle) (*Encoded, error) {
	e.mu.Lock()
	defer e.mu.Unlock()

	start := time.Now()
	bufp := e.segPool.Get().(*[]byte)
	buf := (*bufp)[:0]
	var err error
	buf, err = e.builder.AppendEncoded(buf, c.Cycle)
	if err != nil {
		e.segPool.Put(bufp)
		return nil, err
	}
	enc := &Encoded{buf: buf}
	indexLen := c.Packing.StreamBytes
	enc.Index = buf[:indexLen:indexLen]
	if len(buf) > indexLen {
		enc.SecondTier = buf[indexLen:len(buf):len(buf)]
	}

	segments := 1 + len(c.Docs)
	if enc.SecondTier != nil {
		segments++
	}
	total := len(buf)
	enc.Docs = make([][]byte, 0, len(c.Docs))
	for _, p := range c.Docs {
		payload, ok := e.payloads[p.ID]
		if !ok {
			doc := e.builder.DocByID(p.ID)
			if doc == nil {
				return nil, fmt.Errorf("engine: document %d scheduled but not in collection", p.ID)
			}
			payload = make([]byte, 2, 2+doc.Size())
			binary.LittleEndian.PutUint16(payload, uint16(p.ID))
			payload = append(payload, doc.Marshal()...)
			e.payloads[p.ID] = payload
		}
		enc.Docs = append(enc.Docs, payload)
		total += len(payload)
	}
	e.probe.StageDone(StageEncode, time.Since(start), segments, total)
	return enc, nil
}

// Recycle returns an Encoded's pooled buffer for reuse. Only call it when the
// Index and SecondTier slices are fully consumed; the Docs payloads are cache
// entries and remain valid.
func (e *Engine) Recycle(enc *Encoded) {
	if enc == nil || enc.buf == nil {
		return
	}
	buf := enc.buf
	enc.buf, enc.Index, enc.SecondTier = nil, nil, nil
	e.segPool.Put(&buf)
}

// AddDocument admits a new document to the live collection; it becomes
// visible to queries and schedulable from the next cycle. The answer cache
// is invalidated.
func (e *Engine) AddDocument(d *xmldoc.Document) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.builder.AddDocument(d); err != nil {
		return err
	}
	e.invalidateLocked()
	return nil
}

// RemoveDocument retires a document from the live collection and invalidates
// the answer and payload caches.
func (e *Engine) RemoveDocument(id xmldoc.DocID) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.builder.RemoveDocument(id); err != nil {
		return err
	}
	delete(e.payloads, id)
	e.invalidateLocked()
	return nil
}

func (e *Engine) invalidateLocked() {
	e.epoch++
	e.answers = make(map[string][]xmldoc.DocID)
	e.probe.CacheInvalidated()
}
