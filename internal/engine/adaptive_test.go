package engine

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/broadcast"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/schedule"
)

// driveCycle feeds the limiter one synthetic assembly cycle: offered requests
// arrive, the live MaxPending cap admits n of them, and each admitted request
// costs perReq of stage wall time (split across schedule and build, like the
// real pipeline). The injected clock advances by interCycle between cycles,
// so every run is deterministic.
func driveCycle(al *AdaptiveLimiter, clk *control.Fake, offered int, perReq, budget, interCycle time.Duration) (admitted int, degraded bool) {
	admitted = offered
	if cap := al.MaxPending(); cap > 0 && admitted > cap {
		admitted = cap
	}
	wall := time.Duration(admitted) * perReq
	al.ScheduleDone(ScheduleFull)
	al.StageDone(StageSchedule, wall/2, admitted, admitted)
	al.PruneDone(PruneFull)
	al.StageDone(StageBuild, wall-wall/2, admitted, admitted)
	degraded = budget > 0 && wall > budget
	if degraded {
		al.CycleDegraded()
	}
	clk.Advance(interCycle)
	al.CycleDone()
	return admitted, degraded
}

func TestAdaptiveTargetDerivation(t *testing.T) {
	cases := []struct {
		name string
		cfg  AdaptiveConfig
		want time.Duration
	}{
		{"explicit", AdaptiveConfig{TargetLatency: 5 * time.Millisecond}, 5 * time.Millisecond},
		{"from budget", AdaptiveConfig{Limits: Limits{BuildBudget: 12 * time.Millisecond}}, 6 * time.Millisecond},
		{"custom fraction", AdaptiveConfig{Limits: Limits{BuildBudget: 10 * time.Millisecond}, TargetFraction: 0.8}, 8 * time.Millisecond},
		{"no budget", AdaptiveConfig{}, DefaultAdaptiveTarget},
		// A degenerate 1ns budget derives a 0ns target, which falls through
		// to the default rather than demanding the impossible.
		{"degenerate budget", AdaptiveConfig{Limits: Limits{BuildBudget: 1}}, DefaultAdaptiveTarget},
	}
	for _, tc := range cases {
		if got := NewAdaptiveLimiter(tc.cfg).State().Target; got != tc.want {
			t.Errorf("%s: target = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAdaptiveChurnSeeds(t *testing.T) {
	al := NewAdaptiveLimiter(AdaptiveConfig{})
	if got := al.PruneChurn(); got != core.DefaultPruneChurn {
		t.Errorf("zero seed: PruneChurn = %v, want %v", got, core.DefaultPruneChurn)
	}
	if got := al.ScheduleChurn(); got != schedule.DefaultScheduleChurn {
		t.Errorf("zero seed: ScheduleChurn = %v, want %v", got, schedule.DefaultScheduleChurn)
	}
	al = NewAdaptiveLimiter(AdaptiveConfig{PruneChurn: 0.6, ScheduleChurn: 0.7})
	if al.PruneChurn() != 0.6 || al.ScheduleChurn() != 0.7 {
		t.Errorf("explicit seeds not kept: %v/%v", al.PruneChurn(), al.ScheduleChurn())
	}
}

// A flood the admission cap cannot hope to serve: the controller must shed
// multiplicatively out of the degraded regime, then settle into a bounded
// sawtooth under the build budget (DegradedCycles plateau) instead of
// oscillating back into it.
func TestAdaptiveFloodRampConverges(t *testing.T) {
	const (
		seedPending = 1024
		seedRate    = 128.0
		offered     = 10_000
		perReq      = 50 * time.Microsecond
		budget      = 12 * time.Millisecond // degraded above 240 admitted
		target      = 10 * time.Millisecond // soft shed above 200 admitted
	)
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{
		Limits:        Limits{MaxPending: seedPending, BuildBudget: budget},
		UplinkRate:    seedRate,
		TargetLatency: target,
		Clock:         clk,
	})

	var degTotal, degLate int
	sawDegradedHealth := false
	maxAdmittedLate := 0
	for cycle := 0; cycle < 200; cycle++ {
		admitted, deg := driveCycle(al, clk, offered, perReq, budget, 20*time.Millisecond)
		if deg {
			degTotal++
			if cycle >= 10 {
				degLate++
			}
		}
		if al.Health() == Degraded {
			sawDegradedHealth = true
		}
		if cycle >= 10 && admitted > maxAdmittedLate {
			maxAdmittedLate = admitted
		}
	}
	st := al.State()

	// The ramp-down: 1024 -> 512 -> 256 admitted all blow the 240-request
	// budget boundary; 128 does not. Exactly those cycles degrade, and the
	// streak is long enough to surface Degraded health.
	if degTotal != 3 {
		t.Errorf("degraded cycles = %d, want 3 (the initial ramp only)", degTotal)
	}
	if degLate != 0 {
		t.Errorf("%d degraded cycles after convergence, want a plateau", degLate)
	}
	if !sawDegradedHealth {
		t.Error("health never reported Degraded during the ramp")
	}
	if st.Health == Degraded {
		t.Errorf("health still Degraded after convergence: %+v", st)
	}

	// Converged operating regime: the sawtooth grows towards the soft
	// target and sheds before the budget boundary, so the admitted depth
	// stays bounded strictly under it.
	if maxAdmittedLate >= 240 {
		t.Errorf("admitted depth reached %d, want < 240 (budget boundary)", maxAdmittedLate)
	}
	if st.MaxPending < 8 || st.MaxPending >= 240 {
		t.Errorf("MaxPending = %d, want within [8, 240)", st.MaxPending)
	}
	if st.UplinkRate >= seedRate {
		t.Errorf("UplinkRate = %v, want shed below seed %v", st.UplinkRate, seedRate)
	}
	if st.Sheds < 4 {
		t.Errorf("Sheds = %d, want >= 4 (ramp + sawtooth)", st.Sheds)
	}
	if st.Grows == 0 {
		t.Error("Grows = 0, want additive regrowth between sheds")
	}
	if st.AssemblyLatency <= 0 || st.CycleLatency <= 0 {
		t.Errorf("latency estimators not seeded: %+v", st)
	}

	// Load subsides: limits must re-open past the flood plateau and health
	// must return to Healthy.
	floodPending := st.MaxPending
	floodRate := st.UplinkRate
	for cycle := 0; cycle < 150; cycle++ {
		if _, deg := driveCycle(al, clk, 50, perReq, budget, 20*time.Millisecond); deg {
			t.Fatalf("cycle %d degraded under light load", cycle)
		}
	}
	st = al.State()
	if st.Health != Healthy {
		t.Errorf("health after recovery = %s, want %s", st.Health, Healthy)
	}
	if st.MaxPending <= floodPending {
		t.Errorf("MaxPending did not re-open: %d -> %d", floodPending, st.MaxPending)
	}
	if st.MaxPending <= seedPending {
		t.Errorf("MaxPending = %d, want regrown past the %d seed", st.MaxPending, seedPending)
	}
	if st.UplinkRate <= floodRate {
		t.Errorf("UplinkRate did not re-open: %v -> %v", floodRate, st.UplinkRate)
	}
}

// A soft (over-target but not degraded) signal sheds at most once per hold
// window, so the EWMA's memory of a burst cannot cascade limits to the floor.
func TestAdaptiveSoftShedHysteresis(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{
		Limits:        Limits{MaxPending: 1024},
		TargetLatency: 10 * time.Millisecond,
		HoldCycles:    8,
		Clock:         clk,
	})
	over := func() {
		al.StageDone(StageBuild, 12*time.Millisecond, 100, 100)
		clk.Advance(20 * time.Millisecond)
		al.CycleDone()
	}
	over()
	if got := al.State().Sheds; got != 1 {
		t.Fatalf("first over-target cycle: Sheds = %d, want 1", got)
	}
	for i := 0; i < 8; i++ {
		over()
	}
	if got := al.State().Sheds; got != 1 {
		t.Errorf("inside hold window: Sheds = %d, want still 1", got)
	}
	over()
	if got := al.State().Sheds; got != 2 {
		t.Errorf("after hold window drained: Sheds = %d, want 2", got)
	}
}

// A degraded cycle is a hard signal: it sheds even inside the hold window.
func TestAdaptiveDegradedShedsThroughHold(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{
		Limits:        Limits{MaxPending: 1024},
		TargetLatency: 10 * time.Millisecond,
		HoldCycles:    8,
		Clock:         clk,
	})
	al.StageDone(StageBuild, 12*time.Millisecond, 100, 100)
	clk.Advance(time.Millisecond)
	al.CycleDone() // soft shed, hold window opens
	al.StageDone(StageBuild, 12*time.Millisecond, 100, 100)
	al.CycleDegraded()
	clk.Advance(time.Millisecond)
	al.CycleDone()
	if got := al.State().Sheds; got != 2 {
		t.Errorf("Sheds = %d, want 2 (degraded cycle ignores the hold window)", got)
	}
}

func TestAdaptiveUntunedAxesStayOff(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{TargetLatency: time.Millisecond, Clock: clk})
	for i := 0; i < 20; i++ {
		al.StageDone(StageBuild, 10*time.Millisecond, 100, 100)
		al.CycleDegraded()
		clk.Advance(time.Millisecond)
		al.CycleDone()
	}
	st := al.State()
	if st.Sheds == 0 {
		t.Fatal("degraded cycles recorded no sheds")
	}
	if st.MaxPending != 0 || st.UplinkRate != 0 {
		t.Errorf("untuned axes moved: pending=%d rate=%v, want 0/0", st.MaxPending, st.UplinkRate)
	}
}

func TestAdaptiveRetryAfter(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{Clock: clk})
	if got := al.RetryAfter(); got != 0 {
		t.Fatalf("unseeded RetryAfter = %v, want 0 (caller falls back to its static hint)", got)
	}
	for i := 0; i < 3; i++ {
		clk.Advance(20 * time.Millisecond)
		al.CycleDone()
	}
	if got := al.RetryAfter(); got != 20*time.Millisecond {
		t.Errorf("RetryAfter = %v, want the 20ms inter-cycle spacing", got)
	}

	// Sub-millisecond estimates clamp up so the hint survives the wire
	// format's millisecond truncation.
	clk2 := control.NewFake(time.Unix(0, 0))
	fast := NewAdaptiveLimiter(AdaptiveConfig{Clock: clk2})
	for i := 0; i < 3; i++ {
		clk2.Advance(100 * time.Microsecond)
		fast.CycleDone()
	}
	if got := fast.RetryAfter(); got != time.Millisecond {
		t.Errorf("sub-ms RetryAfter = %v, want clamped to 1ms", got)
	}
}

// driveChurnSamples feeds the limiter one full and one incremental cycle with
// the given stage costs over a pending set of setSize requests, then lets
// CycleDone retune the breakeven thresholds.
func driveChurnSamples(al *AdaptiveLimiter, clk *control.Fake, setSize int, fullWall, perChange time.Duration) {
	// Full cycle: both stages rebuilt from scratch.
	al.ScheduleDone(ScheduleFull)
	al.StageDone(StageSchedule, fullWall, setSize, setSize)
	al.PruneDone(PruneFull)
	al.StageDone(StageBuild, fullWall, setSize, setSize)
	clk.Advance(time.Millisecond)
	al.CycleDone()
	// Incremental cycle: delta sub-spans report the per-change cost.
	deltaWall := time.Duration(setSize) * perChange
	al.ScheduleDone(ScheduleIncremental)
	al.StageDone(StageScheduleDelta, deltaWall, setSize, setSize)
	al.StageDone(StageSchedule, deltaWall, setSize, setSize)
	al.PruneDone(PruneIncremental)
	al.StageDone(StagePruneDelta, deltaWall, setSize, setSize)
	al.StageDone(StageBuild, deltaWall, setSize, setSize)
	clk.Advance(time.Millisecond)
	al.CycleDone()
}

func TestAdaptiveChurnAutotune(t *testing.T) {
	cases := []struct {
		name      string
		setSize   int
		fullWall  time.Duration
		perChange time.Duration
		want      float64
	}{
		// breakeven = full / (perChange × set)
		{"mid", 500, 2500 * time.Microsecond, 10 * time.Microsecond, 0.5},
		{"clamp high", 500, 100 * time.Millisecond, 10 * time.Microsecond, 0.95},
		{"clamp low", 500, 10 * time.Microsecond, 10 * time.Microsecond, 0.05},
	}
	for _, tc := range cases {
		clk := control.NewFake(time.Unix(0, 0))
		al := NewAdaptiveLimiter(AdaptiveConfig{Clock: clk})
		driveChurnSamples(al, clk, tc.setSize, tc.fullWall, tc.perChange)
		if got := al.ScheduleChurn(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: ScheduleChurn = %v, want %v", tc.name, got, tc.want)
		}
		if got := al.PruneChurn(); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("%s: PruneChurn = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestAdaptiveChurnOptOut(t *testing.T) {
	clk := control.NewFake(time.Unix(0, 0))
	al := NewAdaptiveLimiter(AdaptiveConfig{PruneChurn: -1, ScheduleChurn: -1, Clock: clk})
	driveChurnSamples(al, clk, 500, 100*time.Millisecond, 10*time.Microsecond)
	if got := al.PruneChurn(); got != -1 {
		t.Errorf("PruneChurn = %v, want -1 passed through (tuning disabled)", got)
	}
	if got := al.ScheduleChurn(); got != -1 {
		t.Errorf("ScheduleChurn = %v, want -1 passed through (tuning disabled)", got)
	}
}

func TestEngineAdaptiveSkipsHardPendingReject(t *testing.T) {
	c, queries := fixture(t, 10, 8)
	limits := Limits{MaxPending: 1}

	resolve := func(e *Engine) []Pending {
		var pending []Pending
		for i, q := range queries {
			docs, err := e.Resolve(q)
			if err != nil {
				t.Fatal(err)
			}
			if len(docs) == 0 {
				continue
			}
			pending = append(pending, Pending{ID: int64(i), Query: q, Arrival: int64(i), Remaining: docs})
		}
		if len(pending) < 2 {
			t.Fatalf("fixture produced %d matching queries, need >= 2 to exceed MaxPending 1", len(pending))
		}
		return pending
	}

	// Without a controller the engine hard-rejects past the cap.
	plain, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: 100_000, Limits: limits})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plain.AssembleCycle(1, 0, resolve(plain)); !errors.Is(err, ErrOverload) {
		t.Fatalf("static limits: AssembleCycle err = %v, want ErrOverload", err)
	}

	// With a controller wired, admission is the driver's job: the same
	// oversized-but-admitted set must still assemble.
	al := NewAdaptiveLimiter(AdaptiveConfig{Limits: limits})
	adaptive, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: 100_000, Limits: limits, Adaptive: al})
	if err != nil {
		t.Fatal(err)
	}
	cy, err := adaptive.AssembleCycle(1, 0, resolve(adaptive))
	if err != nil {
		t.Fatalf("adaptive: AssembleCycle err = %v, want nil (no hard reject)", err)
	}
	if cy == nil || cy.NumPending < 2 {
		t.Fatalf("adaptive: unexpected cycle %+v", cy)
	}

	m := adaptive.Metrics()
	if m.Health == "" {
		t.Error("Metrics.Health empty with a controller wired")
	}
	if m.Adaptive == nil {
		t.Fatal("Metrics.Adaptive nil with a controller wired")
	}
	if m.Adaptive.MaxPending != al.MaxPending() {
		t.Errorf("Metrics.Adaptive.MaxPending = %d, limiter says %d", m.Adaptive.MaxPending, al.MaxPending())
	}
	if plain.Metrics().Health != "" || plain.Metrics().Adaptive != nil {
		t.Error("plain engine reports adaptive state")
	}
}

// The controller's live churn thresholds must reach the engine's incremental
// machinery: an opt-out seed (-1) forces the reference full-prune path even
// though the engine would default to incremental maintenance.
func TestEngineAdaptiveChurnFlowsIntoPrune(t *testing.T) {
	c, queries := fixture(t, 10, 6)
	al := NewAdaptiveLimiter(AdaptiveConfig{PruneChurn: -1, ScheduleChurn: -1})
	e, err := New(Config{Collection: c, Mode: broadcast.TwoTierMode, CycleCapacity: 100_000, Adaptive: al})
	if err != nil {
		t.Fatal(err)
	}
	var pending []Pending
	for i, q := range queries {
		docs, err := e.Resolve(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(docs) == 0 {
			continue
		}
		pending = append(pending, Pending{ID: int64(i), Query: q, Arrival: int64(i), Remaining: docs})
	}
	for cycle := int64(1); cycle <= 3; cycle++ {
		if _, err := e.AssembleCycle(cycle, cycle, pending); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.IncrementalPrunes != 0 {
		t.Errorf("IncrementalPrunes = %d, want 0 (controller churn -1 disables the view)", m.IncrementalPrunes)
	}
	if m.FullPrunes != 3 {
		t.Errorf("FullPrunes = %d, want 3", m.FullPrunes)
	}
}
