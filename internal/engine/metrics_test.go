package engine

import (
	"strings"
	"testing"
	"time"
)

func TestCacheHitRate(t *testing.T) {
	cases := []struct {
		hits, misses int64
		want         float64
	}{
		{0, 0, 0}, // never consulted: no division by zero
		{3, 1, 0.75},
		{0, 5, 0},
		{5, 0, 1},
	}
	for _, tc := range cases {
		m := Metrics{CacheHits: tc.hits, CacheMisses: tc.misses}
		if got := m.CacheHitRate(); got != tc.want {
			t.Errorf("hits=%d misses=%d: CacheHitRate = %v, want %v", tc.hits, tc.misses, got, tc.want)
		}
	}
}

func TestMetricsStringEmpty(t *testing.T) {
	// The zero Metrics (nil Stages map) must render without panicking and
	// keep the optional sections out of the line.
	s := Metrics{}.String()
	if !strings.Contains(s, "cycles=0") {
		t.Errorf("zero snapshot = %q, want cycles=0", s)
	}
	for _, forbidden := range []string{"degraded=", "evicted=", "prunes=", "scheds=", "health=", "adaptive{"} {
		if strings.Contains(s, forbidden) {
			t.Errorf("zero snapshot includes %q: %q", forbidden, s)
		}
	}
}

func TestMetricsStringPartial(t *testing.T) {
	m := Metrics{
		Cycles:         7,
		CacheHits:      3,
		CacheMisses:    1,
		DegradedCycles: 2,
		FullPrunes:     4,
		PruneFallbacks: 1,
		Stages: map[string]StageStats{
			StageBuild:    {Count: 7, Wall: 3 * time.Millisecond, In: 700, Out: 70},
			StageSchedule: {Count: 7, Wall: time.Millisecond, In: 70, Out: 7},
		},
	}
	s := m.String()
	for _, want := range []string{
		"cycles=7",
		"cache=3/4 (75% hit)",
		"degraded=2",
		"prunes=0 incr/4 full (1 fallback)",
		"build{n=7 wall=3ms in=700 out=70}",
		"schedule{n=7 wall=1ms in=70 out=7}",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot %q missing %q", s, want)
		}
	}
	// Stage sections render sorted by name, so the line is deterministic.
	if strings.Index(s, "build{") > strings.Index(s, "schedule{") {
		t.Errorf("stages not sorted: %q", s)
	}
	for _, forbidden := range []string{"evicted=", "scheds=", "health=", "adaptive{"} {
		if strings.Contains(s, forbidden) {
			t.Errorf("snapshot includes unset section %q: %q", forbidden, s)
		}
	}
}

func TestMetricsStringAdaptive(t *testing.T) {
	m := Metrics{
		Health: Shedding,
		Adaptive: &AdaptiveState{
			Health:          Shedding,
			MaxPending:      128,
			UplinkRate:      16,
			PruneChurn:      0.25,
			ScheduleChurn:   0.5,
			AssemblyLatency: 9 * time.Millisecond,
			Sheds:           3,
			Grows:           11,
		},
	}
	s := m.String()
	for _, want := range []string{
		"health=shedding",
		"adaptive{pend=128 rate=16 churn=0.25/0.50 lat=9ms sheds=3 grows=11}",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot %q missing %q", s, want)
		}
	}
}

func TestCollectorAggregation(t *testing.T) {
	c := NewCollector()

	// Empty collector: usable zero snapshot with a non-nil stage map.
	m := c.Metrics()
	if m.Stages == nil || len(m.Stages) != 0 {
		t.Fatalf("empty collector Stages = %v, want empty map", m.Stages)
	}

	c.StageDone(StageBuild, 2*time.Millisecond, 100, 10)
	c.StageDone(StageBuild, 3*time.Millisecond, 50, 5)
	c.StageDone(StageEncode, time.Millisecond, 3, 4096)
	c.CacheAccess(true)
	c.CacheAccess(false)
	c.CacheInvalidated()
	c.CacheEvicted(EvictAnswer, 2)
	c.CacheEvicted(EvictPayload, 3)
	c.CacheEvicted("unknown", 99) // ignored, not a crash
	c.PruneDone(PruneIncremental)
	c.PruneDone(PruneFull)
	c.PruneDone(PruneFallback)
	c.ScheduleDone(ScheduleIncremental)
	c.ScheduleDone(ScheduleFull)
	c.CycleDegraded()
	c.CycleDone()
	c.CycleDone()

	m = c.Metrics()
	build := m.Stages[StageBuild]
	if build.Count != 2 || build.Wall != 5*time.Millisecond || build.In != 150 || build.Out != 15 {
		t.Errorf("build stage = %+v, want n=2 wall=5ms in=150 out=15", build)
	}
	if enc := m.Stages[StageEncode]; enc.Count != 1 || enc.Out != 4096 {
		t.Errorf("encode stage = %+v", enc)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.CacheInvalidations != 1 {
		t.Errorf("cache counters = %d/%d/%d", m.CacheHits, m.CacheMisses, m.CacheInvalidations)
	}
	if m.AnswerEvictions != 2 || m.PayloadEvictions != 3 {
		t.Errorf("evictions = %d/%d, want 2/3", m.AnswerEvictions, m.PayloadEvictions)
	}
	// PruneFallback counts as a full prune plus the fallback sub-counter.
	if m.IncrementalPrunes != 1 || m.FullPrunes != 2 || m.PruneFallbacks != 1 {
		t.Errorf("prunes = %d incr/%d full/%d fallback, want 1/2/1",
			m.IncrementalPrunes, m.FullPrunes, m.PruneFallbacks)
	}
	if m.IncrementalSchedules != 1 || m.FullSchedules != 1 {
		t.Errorf("schedules = %d/%d, want 1/1", m.IncrementalSchedules, m.FullSchedules)
	}
	if m.Cycles != 2 || m.DegradedCycles != 1 {
		t.Errorf("cycles = %d (%d degraded), want 2 (1)", m.Cycles, m.DegradedCycles)
	}
}

func TestCollectorSnapshotIsDeepCopy(t *testing.T) {
	c := NewCollector()
	c.StageDone(StageBuild, time.Millisecond, 1, 1)
	snap := c.Metrics()
	snap.Stages[StageBuild] = StageStats{Count: 999}
	snap.Stages["bogus"] = StageStats{}
	if got := c.Metrics().Stages[StageBuild].Count; got != 1 {
		t.Errorf("mutating a snapshot reached the collector: Count = %d", got)
	}
	if _, ok := c.Metrics().Stages["bogus"]; ok {
		t.Error("snapshot map aliases the collector's map")
	}
}
