// Package dataguide implements strong DataGuides (Goldman & Widom, VLDB'97)
// over the xmldoc tree model, and their RoXSum-style merge into the single
// combined guide the paper's Compact Index (CI) is built from.
//
// A strong DataGuide of a tree-shaped XML document is simply the trie of the
// document's distinct label paths: concise (every unique path appears once)
// and accurate (it encodes exactly the paths that exist). When guides of many
// documents are merged, each document is *attached* at the nodes that are
// maximal paths of that document — the leaves of its own guide — so that a
// document appears once per distinct maximal path. This matches the paper's
// running example, where document d2 (maximal paths /a/b/a, /a/b/c, /a/c/b)
// "appears three times in the CI index".
package dataguide

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/xmldoc"
)

// Guide is a node of a DataGuide trie. The node's label path (root to this
// node) is a distinct label path of the underlying document set.
type Guide struct {
	// Label is the element name of this trie node.
	Label string
	// Children are sub-guides with distinct labels, sorted by label for
	// deterministic construction and traversal.
	Children []*Guide
	// Docs lists the documents for which this node's path is maximal (a
	// leaf of that document's own guide), sorted by ID without duplicates.
	Docs []xmldoc.DocID
	// Refs counts the documents containing this path; it supports
	// incremental removal (Forest.Remove) — a node whose count drops to
	// zero no longer exists in any document and is pruned.
	Refs int
}

// Build constructs the strong DataGuide of a document and attaches the
// document's ID at every node whose path is maximal in the document. A nil
// root yields a nil guide.
func Build(d *xmldoc.Document) *Guide {
	if d.Root == nil {
		return nil
	}
	g := buildNode(d.Root.Label, []*xmldoc.Node{d.Root})
	g.attachAtLeaves(d.ID)
	return g
}

// buildNode merges a group of document nodes sharing the same label into one
// guide node, recursing over their children grouped by label.
func buildNode(label string, group []*xmldoc.Node) *Guide {
	g := &Guide{Label: label, Refs: 1}
	byLabel := make(map[string][]*xmldoc.Node)
	var order []string
	for _, n := range group {
		for _, c := range n.Children {
			if _, ok := byLabel[c.Label]; !ok {
				order = append(order, c.Label)
			}
			byLabel[c.Label] = append(byLabel[c.Label], c)
		}
	}
	sort.Strings(order)
	for _, childLabel := range order {
		g.Children = append(g.Children, buildNode(childLabel, byLabel[childLabel]))
	}
	return g
}

func (g *Guide) attachAtLeaves(id xmldoc.DocID) {
	if len(g.Children) == 0 {
		g.Docs = []xmldoc.DocID{id}
		return
	}
	for _, c := range g.Children {
		c.attachAtLeaves(id)
	}
}

// NumNodes reports the number of nodes in the guide.
func (g *Guide) NumNodes() int {
	if g == nil {
		return 0
	}
	total := 1
	for _, c := range g.Children {
		total += c.NumNodes()
	}
	return total
}

// Child returns the sub-guide with the given label, or nil.
func (g *Guide) Child(label string) *Guide {
	// Children are sorted; a linear scan is fine at DataGuide fanouts.
	for _, c := range g.Children {
		if c.Label == label {
			return c
		}
	}
	return nil
}

// Walk visits every node in depth-first pre-order together with its label
// path. The path slice is reused between invocations and must not be
// retained.
func (g *Guide) Walk(visit func(path []string, node *Guide)) {
	if g == nil {
		return
	}
	path := make([]string, 0, 16)
	var walk func(*Guide)
	walk = func(n *Guide) {
		path = append(path, n.Label)
		visit(path, n)
		for _, c := range n.Children {
			walk(c)
		}
		path = path[:len(path)-1]
	}
	walk(g)
}

// Paths returns every node's path key in depth-first pre-order.
func (g *Guide) Paths() []string {
	var out []string
	g.Walk(func(path []string, _ *Guide) {
		out = append(out, xmldoc.PathKey(path))
	})
	return out
}

// SubtreeDocs returns the union of document attachments in the subtree rooted
// at g, sorted by ID. This is the answer set of a query whose match node is g.
func (g *Guide) SubtreeDocs() []xmldoc.DocID {
	set := make(map[xmldoc.DocID]struct{})
	var walk func(*Guide)
	walk = func(n *Guide) {
		for _, id := range n.Docs {
			set[id] = struct{}{}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	if g != nil {
		walk(g)
	}
	return sortedIDs(set)
}

// Merge combines the DataGuides of all documents in the collection into one
// guide (the paper's combined DataGuide / RoXSum structure). Documents whose
// root labels differ merge under distinct roots; in that case Merge returns a
// synthetic forest holder only if needed — for the single-rooted collections
// used throughout the paper the result is the shared root node. A nil result
// means the collection is empty.
//
// Merge returns an error-free result by construction; malformed collections
// are impossible to represent in xmldoc.
func Merge(c *xmldoc.Collection) *Forest {
	return merge(buildGuides(c, 1))
}

// MergeParallel is Merge with the per-document guide construction — the
// dominant cost, independent per document — sharded across workers
// goroutines (runtime.GOMAXPROCS(0) when workers <= 0). The guides are then
// merged serially in collection order, so the result is identical to
// Merge's.
func MergeParallel(c *xmldoc.Collection, workers int) *Forest {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return merge(buildGuides(c, workers))
}

// buildGuides constructs each document's guide, in collection order.
func buildGuides(c *xmldoc.Collection, workers int) []*Guide {
	docs := c.Docs()
	guides := make([]*Guide, len(docs))
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		for i, d := range docs {
			guides[i] = Build(d)
		}
		return guides
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(docs); i += workers {
				guides[i] = Build(docs[i])
			}
		}(w)
	}
	wg.Wait()
	return guides
}

// merge folds per-document guides into one forest, in slice order.
func merge(guides []*Guide) *Forest {
	f := &Forest{}
	for _, g := range guides {
		if g == nil {
			continue
		}
		if existing := f.Root(g.Label); existing != nil {
			mergeInto(existing, g)
		} else {
			f.Roots = append(f.Roots, g)
		}
	}
	sort.Slice(f.Roots, func(i, j int) bool { return f.Roots[i].Label < f.Roots[j].Label })
	return f
}

// Forest is a set of merged DataGuides, one per distinct document root label.
// Collections generated from a single schema have exactly one root.
type Forest struct {
	Roots []*Guide
}

// Root returns the merged guide with the given root label, or nil.
func (f *Forest) Root(label string) *Guide {
	for _, r := range f.Roots {
		if r.Label == label {
			return r
		}
	}
	return nil
}

// NumNodes reports the total node count over all roots.
func (f *Forest) NumNodes() int {
	total := 0
	for _, r := range f.Roots {
		total += r.NumNodes()
	}
	return total
}

// Walk visits every node of every root in depth-first pre-order.
func (f *Forest) Walk(visit func(path []string, node *Guide)) {
	for _, r := range f.Roots {
		r.Walk(visit)
	}
}

// mergeInto merges guide src into dst (same label), unioning document
// attachments, summing reference counts, and recursing over shared children.
func mergeInto(dst, src *Guide) {
	dst.Docs = unionIDs(dst.Docs, src.Docs)
	dst.Refs += src.Refs
	for _, sc := range src.Children {
		if dc := dst.Child(sc.Label); dc != nil {
			mergeInto(dc, sc)
			continue
		}
		dst.Children = append(dst.Children, sc)
	}
	sort.Slice(dst.Children, func(i, j int) bool { return dst.Children[i].Label < dst.Children[j].Label })
}

func unionIDs(a, b []xmldoc.DocID) []xmldoc.DocID {
	if len(b) == 0 {
		return a
	}
	set := make(map[xmldoc.DocID]struct{}, len(a)+len(b))
	for _, id := range a {
		set[id] = struct{}{}
	}
	for _, id := range b {
		set[id] = struct{}{}
	}
	return sortedIDs(set)
}

func sortedIDs(set map[xmldoc.DocID]struct{}) []xmldoc.DocID {
	if len(set) == 0 {
		return nil
	}
	out := make([]xmldoc.DocID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
