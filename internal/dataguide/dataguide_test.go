package dataguide

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

// paperDocs builds the five documents of the paper's running example (Fig. 2).
func paperDocs(t *testing.T) *xmldoc.Collection {
	t.Helper()
	docs := []*xmldoc.Document{
		xmldoc.NewDocument(1, xmldoc.El("a", xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")))),
		xmldoc.NewDocument(2, xmldoc.El("a",
			xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")),
			xmldoc.El("c", xmldoc.El("b")))),
		xmldoc.NewDocument(3, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c"))),
		xmldoc.NewDocument(4, xmldoc.El("a", xmldoc.El("c", xmldoc.El("a")))),
		xmldoc.NewDocument(5, xmldoc.El("a", xmldoc.El("b"), xmldoc.El("c", xmldoc.El("a")))),
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return c
}

func TestBuildSingleDocument(t *testing.T) {
	// d1 has duplicate sibling paths: two /a/b children.
	d := xmldoc.NewDocument(1, xmldoc.El("a",
		xmldoc.El("b", xmldoc.El("a"), xmldoc.El("c")),
		xmldoc.El("b", xmldoc.El("a")),
	))
	g := Build(d)
	want := []string{"/a", "/a/b", "/a/b/a", "/a/b/c"}
	if got := g.Paths(); !reflect.DeepEqual(got, want) {
		t.Errorf("Paths() = %v, want %v", got, want)
	}
	// Maximal paths of the doc are /a/b/a and /a/b/c.
	if got := g.Child("b").Child("a").Docs; !reflect.DeepEqual(got, []xmldoc.DocID{1}) {
		t.Errorf("docs at /a/b/a = %v, want [1]", got)
	}
	if got := g.Child("b").Child("c").Docs; !reflect.DeepEqual(got, []xmldoc.DocID{1}) {
		t.Errorf("docs at /a/b/c = %v, want [1]", got)
	}
	if got := g.Docs; got != nil {
		t.Errorf("docs at /a = %v, want none", got)
	}
	if got := g.Child("b").Docs; got != nil {
		t.Errorf("docs at /a/b = %v, want none", got)
	}
}

func TestBuildNilRoot(t *testing.T) {
	if g := Build(&xmldoc.Document{ID: 1}); g != nil {
		t.Errorf("Build(nil root) = %v, want nil", g)
	}
	var g *Guide
	if g.NumNodes() != 0 {
		t.Error("nil guide NumNodes != 0")
	}
	if docs := g.SubtreeDocs(); docs != nil {
		t.Errorf("nil guide SubtreeDocs = %v", docs)
	}
}

func TestMergePaperExample(t *testing.T) {
	f := Merge(paperDocs(t))
	if len(f.Roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(f.Roots))
	}
	g := f.Roots[0]
	// The paper's Fig. 3(b) CI has nine nodes for its Fig. 2 documents; our
	// reconstruction (from the query/answer table, since the figure is not
	// machine-readable) yields the seven distinct paths below. All answer
	// sets still match the paper's table (see TestSubtreeDocsPaperAnswers).
	got := g.Paths()
	want := []string{"/a", "/a/b", "/a/b/a", "/a/b/c", "/a/c", "/a/c/a", "/a/c/b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Paths() = %v, want %v", got, want)
	}
	if g.NumNodes() != len(want) {
		t.Errorf("NumNodes() = %d, want %d", g.NumNodes(), len(want))
	}

	// Attachments:
	tests := []struct {
		path string
		want []xmldoc.DocID
	}{
		{"/a/b/a", []xmldoc.DocID{1, 2}},
		{"/a/b/c", []xmldoc.DocID{1, 2}},
		{"/a/c/b", []xmldoc.DocID{2}},
		{"/a/c/a", []xmldoc.DocID{4, 5}},
		{"/a/b", []xmldoc.DocID{3, 5}}, // maximal for d3 and d5
		{"/a/c", []xmldoc.DocID{3}},    // maximal for d3
		{"/a", nil},
	}
	for _, tt := range tests {
		node := findPath(g, tt.path)
		if node == nil {
			t.Fatalf("path %s missing", tt.path)
		}
		if !reflect.DeepEqual(node.Docs, tt.want) {
			t.Errorf("docs at %s = %v, want %v", tt.path, node.Docs, tt.want)
		}
	}

	// d2 appears exactly three times overall — the paper's §3.3 example.
	count := 0
	g.Walk(func(_ []string, n *Guide) {
		for _, id := range n.Docs {
			if id == 2 {
				count++
			}
		}
	})
	if count != 3 {
		t.Errorf("d2 appears %d times, want 3", count)
	}
}

func TestSubtreeDocsPaperAnswers(t *testing.T) {
	f := Merge(paperDocs(t))
	g := f.Roots[0]
	tests := []struct {
		path string
		want []xmldoc.DocID
	}{
		// q1 = /a/b/a → d1, d2
		{"/a/b/a", []xmldoc.DocID{1, 2}},
		// q2 = /a/c/a → d4, d5
		{"/a/c/a", []xmldoc.DocID{4, 5}},
		// q4 = /a/b → d1, d2, d3, d5 (subtree of /a/b)
		{"/a/b", []xmldoc.DocID{1, 2, 3, 5}},
		// whole tree → all docs
		{"/a", []xmldoc.DocID{1, 2, 3, 4, 5}},
	}
	for _, tt := range tests {
		node := findPath(g, tt.path)
		if node == nil {
			t.Fatalf("path %s missing", tt.path)
		}
		if got := node.SubtreeDocs(); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("SubtreeDocs(%s) = %v, want %v", tt.path, got, tt.want)
		}
	}
}

func TestMergeDisjointRoots(t *testing.T) {
	docs := []*xmldoc.Document{
		xmldoc.NewDocument(1, xmldoc.El("a", xmldoc.El("x"))),
		xmldoc.NewDocument(2, xmldoc.El("b", xmldoc.El("y"))),
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	f := Merge(c)
	if len(f.Roots) != 2 {
		t.Fatalf("got %d roots, want 2", len(f.Roots))
	}
	if f.Roots[0].Label != "a" || f.Roots[1].Label != "b" {
		t.Errorf("roots not sorted: %s, %s", f.Roots[0].Label, f.Roots[1].Label)
	}
	if f.Root("a") == nil || f.Root("b") == nil || f.Root("z") != nil {
		t.Error("Root lookup wrong")
	}
	if f.NumNodes() != 4 {
		t.Errorf("NumNodes() = %d, want 4", f.NumNodes())
	}
}

func findPath(g *Guide, key string) *Guide {
	labels := xmldoc.SplitPathKey(key)
	if len(labels) == 0 || g.Label != labels[0] {
		return nil
	}
	n := g
	for _, l := range labels[1:] {
		n = n.Child(l)
		if n == nil {
			return nil
		}
	}
	return n
}

func randomCollection(seed int64, n int) *xmldoc.Collection {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: n, Seed: seed, MaxDepth: 8})
	if err != nil {
		panic(err)
	}
	return c
}

// TestQuickGuidePathsEqualDocPaths: the per-document guide's node set is
// exactly the document's distinct label paths.
func TestQuickGuidePathsEqualDocPaths(t *testing.T) {
	f := func(seed int64) bool {
		c := randomCollection(seed, 1)
		d := c.Docs()[0]
		g := Build(d)
		gp := append([]string(nil), g.Paths()...)
		dp := d.UniquePaths()
		if len(gp) != len(dp) {
			return false
		}
		set := make(map[string]struct{}, len(dp))
		for _, p := range dp {
			set[p] = struct{}{}
		}
		for _, p := range gp {
			if _, ok := set[p]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestQuickMergedGuideIsUnion: the merged guide's node set is the union of
// the per-document path sets, and each document's attachments sit exactly at
// its own guide's leaves.
func TestQuickMergedGuideIsUnion(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomCollection(seed, 2+r.Intn(5))
		forest := Merge(c)
		union := make(map[string]struct{})
		for _, d := range c.Docs() {
			for _, p := range d.UniquePaths() {
				union[p] = struct{}{}
			}
		}
		var merged []string
		forest.Walk(func(path []string, _ *Guide) {
			merged = append(merged, xmldoc.PathKey(path))
		})
		if len(merged) != len(union) {
			return false
		}
		for _, p := range merged {
			if _, ok := union[p]; !ok {
				return false
			}
		}
		// Each doc is attached exactly at its own maximal paths.
		for _, d := range c.Docs() {
			own := Build(d)
			maximal := make(map[string]bool)
			own.Walk(func(path []string, n *Guide) {
				if len(n.Children) == 0 {
					maximal[xmldoc.PathKey(path)] = true
				}
			})
			got := make(map[string]bool)
			forest.Walk(func(path []string, n *Guide) {
				for _, id := range n.Docs {
					if id == d.ID {
						got[xmldoc.PathKey(path)] = true
					}
				}
			})
			if !reflect.DeepEqual(maximal, got) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
