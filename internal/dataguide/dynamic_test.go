package dataguide

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/xmldoc"
)

func dynDocs(t *testing.T, n int, seed int64) []*xmldoc.Document {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: n, Seed: seed, MaxDepth: 7})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	return c.Docs()
}

func mergeOf(t *testing.T, docs []*xmldoc.Document) *Forest {
	t.Helper()
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return Merge(c)
}

func TestAddEquivalentToMerge(t *testing.T) {
	docs := dynDocs(t, 8, 31)
	incremental := &Forest{}
	for _, d := range docs {
		incremental.Add(d)
	}
	if !incremental.Equal(mergeOf(t, docs)) {
		t.Error("incremental adds differ from batch merge")
	}
}

func TestRemoveInvertsAdd(t *testing.T) {
	docs := dynDocs(t, 6, 37)
	f := mergeOf(t, docs)
	// Remove the third document; must equal the merge without it.
	victim := docs[2]
	if err := f.Remove(victim); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	rest := append(append([]*xmldoc.Document(nil), docs[:2]...), docs[3:]...)
	if !f.Equal(mergeOf(t, rest)) {
		t.Error("forest after removal differs from merge of the rest")
	}
	// Removing again must fail (attachment gone), leaving the forest intact.
	before := mergeOf(t, rest)
	if err := f.Remove(victim); err == nil {
		t.Error("double removal succeeded")
	}
	if !f.Equal(before) {
		t.Error("failed removal mutated the forest")
	}
}

func TestRemoveAllEmptiesForest(t *testing.T) {
	docs := dynDocs(t, 4, 41)
	f := mergeOf(t, docs)
	for _, d := range docs {
		if err := f.Remove(d); err != nil {
			t.Fatalf("Remove(%d): %v", d.ID, err)
		}
	}
	if len(f.Roots) != 0 || f.NumNodes() != 0 {
		t.Errorf("forest not empty after removing everything: %d nodes", f.NumNodes())
	}
}

func TestRemoveUnknownRoot(t *testing.T) {
	f := mergeOf(t, dynDocs(t, 2, 43))
	alien := xmldoc.NewDocument(99, xmldoc.El("alienroot"))
	if err := f.Remove(alien); err == nil {
		t.Error("removal of unknown root succeeded")
	}
}

// TestQuickDynamicSequenceEquivalence: any interleaving of adds and removes
// leaves the forest identical to a batch merge of the surviving documents —
// the incremental maintenance invariant.
func TestQuickDynamicSequenceEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 10, Seed: seed, MaxDepth: 6})
		if err != nil {
			return false
		}
		docs := c.Docs()
		forest := &Forest{}
		present := make(map[xmldoc.DocID]*xmldoc.Document)
		for op := 0; op < 30; op++ {
			d := docs[r.Intn(len(docs))]
			if _, in := present[d.ID]; in {
				if err := forest.Remove(d); err != nil {
					return false
				}
				delete(present, d.ID)
			} else {
				forest.Add(d)
				present[d.ID] = d
			}
		}
		var survivors []*xmldoc.Document
		for _, d := range docs {
			if _, in := present[d.ID]; in {
				survivors = append(survivors, d)
			}
		}
		coll, err := xmldoc.NewCollection(survivors)
		if err != nil {
			return false
		}
		return forest.Equal(Merge(coll))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
