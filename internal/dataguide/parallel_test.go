package dataguide

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dtd"
	"repro/internal/gen"
)

// flatten reduces a forest to a deterministic path -> (docs, refs) view.
func flatten(f *Forest) map[string]string {
	out := make(map[string]string)
	f.Walk(func(path []string, node *Guide) {
		out[strings.Join(path, "/")] = fmt.Sprintf("docs=%v refs=%d", node.Docs, node.Refs)
	})
	return out
}

func TestMergeParallelMatchesMerge(t *testing.T) {
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := Merge(c)
	for _, workers := range []int{0, 1, 2, 3, 8, 64} {
		got := MergeParallel(c, workers)
		if got.NumNodes() != want.NumNodes() {
			t.Fatalf("workers=%d: %d nodes, want %d", workers, got.NumNodes(), want.NumNodes())
		}
		if !reflect.DeepEqual(flatten(got), flatten(want)) {
			t.Errorf("workers=%d: MergeParallel forest diverges from Merge", workers)
		}
	}
}
