package dataguide

import (
	"fmt"
	"sort"

	"repro/internal/xmldoc"
)

// Dynamic maintenance: the merged forest can be kept up to date as documents
// join and leave the server's collection, instead of being rebuilt from
// scratch. Add merges a document's own guide in (summing reference counts);
// Remove walks the document's paths, decrements counts, detaches the
// document and prunes nodes whose count reaches zero. The invariant —
// checked by property tests — is that any add/remove sequence yields exactly
// the forest a batch Merge over the surviving documents would.

// Add merges one document into the forest.
func (f *Forest) Add(d *xmldoc.Document) {
	g := Build(d)
	if g == nil {
		return
	}
	if existing := f.Root(g.Label); existing != nil {
		mergeInto(existing, g)
	} else {
		f.Roots = append(f.Roots, g)
		sort.Slice(f.Roots, func(i, j int) bool { return f.Roots[i].Label < f.Roots[j].Label })
	}
}

// Remove detaches one document from the forest. The document's tree is
// needed to know which paths to decrement; removing a document that was
// never added (or was already removed) is reported as an error, detected by
// a reference count or attachment that would go inconsistent.
func (f *Forest) Remove(d *xmldoc.Document) error {
	own := Build(d)
	if own == nil {
		return nil
	}
	root := f.Root(own.Label)
	if root == nil {
		return fmt.Errorf("dataguide: document %d has unknown root %q", d.ID, own.Label)
	}
	// Pre-validate against a partial mutation: every path of the document
	// must exist with a positive count, and the document must be attached
	// exactly at its maximal paths.
	if err := validateRemoval(root, own, d.ID); err != nil {
		return err
	}
	removeGuide(root, own, d.ID)
	if root.Refs == 0 {
		for i, r := range f.Roots {
			if r == root {
				f.Roots = append(f.Roots[:i], f.Roots[i+1:]...)
				break
			}
		}
	}
	return nil
}

// validateRemoval checks the forest actually contains the document.
func validateRemoval(node, own *Guide, id xmldoc.DocID) error {
	if node == nil || node.Label != own.Label || node.Refs < 1 {
		return fmt.Errorf("dataguide: document %d path %q not present", id, own.Label)
	}
	if len(own.Children) == 0 {
		if !containsID(node.Docs, id) {
			return fmt.Errorf("dataguide: document %d not attached at a maximal path under %q", id, own.Label)
		}
		return nil
	}
	for _, oc := range own.Children {
		if err := validateRemoval(node.Child(oc.Label), oc, id); err != nil {
			return err
		}
	}
	return nil
}

// removeGuide applies the decrement/detach/prune walk.
func removeGuide(node, own *Guide, id xmldoc.DocID) {
	node.Refs--
	if len(own.Children) == 0 {
		node.Docs = withoutID(node.Docs, id)
	}
	for _, oc := range own.Children {
		child := node.Child(oc.Label)
		removeGuide(child, oc, id)
		if child.Refs == 0 {
			node.Children = dropChild(node.Children, child)
		}
	}
}

func containsID(ids []xmldoc.DocID, id xmldoc.DocID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

func withoutID(ids []xmldoc.DocID, id xmldoc.DocID) []xmldoc.DocID {
	out := ids[:0]
	for _, x := range ids {
		if x != id {
			out = append(out, x)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func dropChild(children []*Guide, child *Guide) []*Guide {
	out := children[:0]
	for _, c := range children {
		if c != child {
			out = append(out, c)
		}
	}
	return out
}

// Equal reports whether two forests are structurally identical (labels,
// children order, attachments and reference counts). Used by tests and by
// consistency checks after dynamic maintenance.
func (f *Forest) Equal(other *Forest) bool {
	if len(f.Roots) != len(other.Roots) {
		return false
	}
	for i := range f.Roots {
		if !guidesEqual(f.Roots[i], other.Roots[i]) {
			return false
		}
	}
	return true
}

func guidesEqual(a, b *Guide) bool {
	if a.Label != b.Label || a.Refs != b.Refs || len(a.Children) != len(b.Children) || len(a.Docs) != len(b.Docs) {
		return false
	}
	for i := range a.Docs {
		if a.Docs[i] != b.Docs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !guidesEqual(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
