package succinct

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/xmldoc"
)

// Decode materializes the parsed tier back into a core.Index — the
// inverse of EncodeTier, used by captures, tests and tools rather than
// the client hot path. The result passes core.Index.Validate; a parsed
// but non-canonical tree (e.g. siblings out of label order, impossible
// from AppendTier) returns an error.
func (t *Tier) Decode() (*core.Index, error) {
	lay := t.lay
	ix := &core.Index{Model: t.m}
	if lay.n > 0 {
		ix.Nodes = make([]core.Node, lay.n)
	}
	stack := make([]core.NodeID, 0, 64)
	id := 0
	for b := 0; b < 2*lay.n; b++ {
		if !t.isOpen(b, nil) {
			stack = stack[:len(stack)-1] // balanced: never underflows
			continue
		}
		nid := core.NodeID(id)
		id++
		parent := core.NoNode
		if len(stack) > 0 {
			parent = stack[len(stack)-1]
			ix.Nodes[parent].Children = append(ix.Nodes[parent].Children, nid)
		} else {
			ix.Roots = append(ix.Roots, nid)
		}
		ix.Nodes[nid] = core.Node{ID: nid, Label: t.label(id-1, nil), Parent: parent}
		stack = append(stack, nid)
	}
	ai := 0
	prevEnd := 0
	for i := 0; i < lay.n; i++ {
		off := lay.attOff + i>>3
		if t.data[off]>>uint(i&7)&1 == 0 {
			continue
		}
		end := t.endValue(ai, nil)
		ai++
		docs := make([]xmldoc.DocID, 0, end-prevEnd)
		for p := prevEnd; p < end; p++ {
			docs = append(docs, xmldoc.DocID(t.docValue(p, nil)))
		}
		ix.Nodes[i].Docs = docs
		prevEnd = end
	}
	if err := ix.Validate(); err != nil {
		return nil, fmt.Errorf("succinct: decoded index invalid: %w", err)
	}
	return ix, nil
}
