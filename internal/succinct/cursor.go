package succinct

import (
	"slices"

	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/yfilter"
)

// Cursor navigates a parsed tier the way a broadcast client does: it
// advances a query automaton down the parenthesis tree, skipping rejected
// subtrees via the excess directories and resolving matched subtrees'
// document tuples through the attachment ranks — all by reading tier
// bytes in place, never materializing core.Index nodes. The cursor tracks
// which packet-sized pages of the tier each lookup touched, giving the
// same selective-tuning accounting core.Packing.BytesFor provides for the
// node layout. A Cursor reuses its scratch buffers across lookups and is
// not safe for concurrent use.
type Cursor struct {
	t       *Tier
	docs    []xmldoc.DocID
	visited []core.NodeID
	pages   pageSet
}

// NewCursor returns a reusable cursor over the tier.
func (t *Tier) NewCursor() *Cursor {
	return &Cursor{t: t}
}

// Lookup answers the filter's query against the tier, mirroring
// core.Navigator.Lookup's access protocol exactly: every root is read,
// the automaton steps on each node label, children are descended only
// while the automaton stays alive, and at an accepting node the whole
// subtree's document tuples are collected. The returned slice (sorted,
// deduplicated document IDs) is owned by the cursor and valid until the
// next Lookup.
func (c *Cursor) Lookup(f *yfilter.Filter) []xmldoc.DocID {
	t := c.t
	c.docs = c.docs[:0]
	c.visited = c.visited[:0]
	c.pages.reset(t.lay.size, t.m.PacketBytes)
	c.pages.mark(0, headerSize)
	start := f.Start()
	nbits := 2 * t.lay.n
	pos, id := 0, 0
	for pos < nbits {
		close := t.findClose(pos, &c.pages)
		c.visit(pos, id, f, start)
		id += (close - pos + 1) / 2
		pos = close + 1
	}
	slices.Sort(c.docs)
	c.docs = slices.Compact(c.docs)
	return c.docs
}

// visit reads the node opened at pos (pre-order ID id) under automaton
// state s; the control flow matches core.Navigator.Lookup node for node,
// so the two layouts provably answer identically.
func (c *Cursor) visit(pos, id int, f *yfilter.Filter, s yfilter.StateSet) {
	t := c.t
	c.visited = append(c.visited, core.NodeID(id))
	next := f.Step(s, t.label(id, &c.pages))
	if next.Empty() {
		return
	}
	if f.HasAccepting(next) {
		close := t.findClose(pos, &c.pages)
		endID := id + (close-pos+1)/2
		for sub := id + 1; sub < endID; sub++ {
			c.visited = append(c.visited, core.NodeID(sub))
		}
		c.docs = t.appendSubtreeDocs(c.docs, id, endID, &c.pages)
		return
	}
	nbits := 2 * t.lay.n
	cpos, cid := pos+1, id+1
	for cpos < nbits && t.isOpen(cpos, &c.pages) {
		cclose := t.findClose(cpos, &c.pages)
		if !f.Step(next, t.label(cid, &c.pages)).Empty() {
			c.visit(cpos, cid, f, next)
		}
		cid += (cclose - cpos + 1) / 2
		cpos = cclose + 1
	}
}

// Visited lists the pre-order node IDs the last Lookup read, in read
// order — identical to core.Navigator.Lookup's Visited over the same
// index. The slice is owned by the cursor.
func (c *Cursor) Visited() []core.NodeID { return c.visited }

// TouchedBytes reports the last Lookup's tuning cost: distinct
// packet-sized pages of the tier read, in bytes.
func (c *Cursor) TouchedBytes() int {
	return c.pages.count() * c.t.m.PacketBytes
}
