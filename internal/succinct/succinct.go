// Package succinct provides the balanced-parentheses (BP) first-tier
// encoding: an alternative on-air layout for the pruned CI in which tree
// topology costs 2 bits per node instead of per-child <entry, pointer>
// tuples, labels are bit-packed dictionary IDs, and document attachments
// live in a rank-indexed bitmap plus a flat tuple array.
//
// Layout (all integers little-endian, bitvectors LSB-first within bytes):
//
//	header    — u32 numNodes N, u32 numAttach A (nodes with documents),
//	            u32 numDocTuples D, u8 labelBits, u8 docIDBytes
//	bp        — 2N bits of balanced parentheses, DFS pre-order over the
//	            root forest (1 = open, 0 = close), zero-padded to whole
//	            64-bit words
//	bpdir     — one 5-byte entry per BP word: u32 rank1 before the word,
//	            i8 minimum prefix excess within the word (relative to the
//	            excess at the word start)
//	bpsuper   — one 6-byte entry per 64-word superblock: u32 rank1 before
//	            the superblock, i16 minimum prefix excess within it
//	labels    — N label IDs in pre-order, bit-packed at labelBits each
//	            (labelBits covers the whole catalog, including roots)
//	attach    — N-bit attachment bitmap (bit i set iff node i has document
//	            tuples), zero-padded to whole 64-bit words
//	attachdir — one u32 rank1-before-word entry per attach word
//	ends      — A cumulative document-tuple counts, bit-packed at
//	            bitlen(D) bits each; entry k is the end of the k-th
//	            attached node's tuple range, so ranges need no per-node
//	            offsets
//	docs      — D document IDs, docIDBytes wide, grouped by attached node
//	            in pre-order, each group sorted ascending
//
// The rank/excess directories ride along on air: a client can skip a
// subtree (findclose) or resolve a node's attachment range by reading a
// handful of directory entries instead of the subtree's packets, which is
// what makes selective tuning cheap without the node layout's pointers.
// All directory and padding bytes are canonical (recomputable from the
// data sections), so a given index has exactly one encoding.
package succinct

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/wire"
)

const (
	// headerSize is the fixed tier header length in bytes.
	headerSize = 14
	// maxCount caps the node and document-tuple counts a header may claim,
	// keeping the layout arithmetic far from integer overflow.
	maxCount = 1 << 28

	wordDirEntry   = 5 // u32 rank + i8 min excess
	superDirEntry  = 6 // u32 rank + i16 min excess
	attachDirEntry = 4 // u32 rank
	superWords     = 64
)

// layout fixes every section offset of one encoded tier; it is derived
// from the five header fields and shared by the encoder and the parser.
type layout struct {
	n, a, d    int // nodes, attached nodes, document tuples
	labelBits  int
	endBits    int
	docIDBytes int

	words    int // 64-bit BP words
	supers   int // BP superblocks
	attWords int // 64-bit attach words

	bpOff, dirOff, superOff  int
	labOff                   int
	attOff, attDirOff        int
	endsOff, docsOff         int
	size                     int
}

// labelBitsFor is the bit width of one label ID over a numLabels-entry
// catalog (at least 1 so the section is well-defined).
func labelBitsFor(numLabels int) int {
	if numLabels <= 1 {
		return 1
	}
	return bits.Len(uint(numLabels - 1))
}

// endBitsFor is the bit width of one cumulative tuple count (values 1..d).
func endBitsFor(d int) int {
	if d <= 1 {
		return 1
	}
	return bits.Len(uint(d))
}

// computeLayout validates the header quantities and lays out the sections.
func computeLayout(n, a, d, numLabels, docIDBytes int) (layout, error) {
	switch {
	case n < 0 || n > maxCount:
		return layout{}, fmt.Errorf("succinct: node count %d out of range", n)
	case a < 0 || a > n:
		return layout{}, fmt.Errorf("succinct: %d attached nodes for %d nodes", a, n)
	case d < 0 || d > maxCount:
		return layout{}, fmt.Errorf("succinct: doc tuple count %d out of range", d)
	case d < a:
		return layout{}, fmt.Errorf("succinct: %d doc tuples for %d attached nodes", d, a)
	case (a == 0) != (d == 0):
		return layout{}, fmt.Errorf("succinct: inconsistent attach/tuple counts %d/%d", a, d)
	case docIDBytes < 1 || docIDBytes > 8:
		return layout{}, fmt.Errorf("succinct: unsupported docIDBytes %d", docIDBytes)
	case n > 0 && numLabels < 1:
		return layout{}, fmt.Errorf("succinct: %d nodes but empty catalog", n)
	case numLabels > 0xFFFF:
		return layout{}, fmt.Errorf("succinct: catalog has %d labels, max %d", numLabels, 0xFFFF)
	}
	lay := layout{
		n: n, a: a, d: d,
		labelBits:  labelBitsFor(numLabels),
		endBits:    endBitsFor(d),
		docIDBytes: docIDBytes,
		words:      (2*n + 63) / 64,
		attWords:   (n + 63) / 64,
	}
	lay.supers = (lay.words + superWords - 1) / superWords
	lay.bpOff = headerSize
	lay.dirOff = lay.bpOff + lay.words*8
	lay.superOff = lay.dirOff + lay.words*wordDirEntry
	lay.labOff = lay.superOff + lay.supers*superDirEntry
	lay.attOff = lay.labOff + (n*lay.labelBits+7)/8
	lay.attDirOff = lay.attOff + lay.attWords*8
	lay.endsOff = lay.attDirOff + lay.attWords*attachDirEntry
	lay.docsOff = lay.endsOff + (a*lay.endBits+7)/8
	lay.size = lay.docsOff + d*docIDBytes
	return lay, nil
}

// attachCounts scans the index for the attached-node and doc-tuple totals.
func attachCounts(ix *core.Index) (attached, tuples int) {
	for i := range ix.Nodes {
		if n := len(ix.Nodes[i].Docs); n > 0 {
			attached++
			tuples += n
		}
	}
	return attached, tuples
}

// TierSize reports the exact encoded size in bytes of the index's first
// tier under a numLabels-entry catalog, without encoding it.
func TierSize(ix *core.Index, numLabels int, m core.SizeModel) (int, error) {
	a, d := attachCounts(ix)
	lay, err := computeLayout(len(ix.Nodes), a, d, numLabels, m.DocIDBytes)
	if err != nil {
		return 0, err
	}
	return lay.size, nil
}

// EncodeTier serialises the index's first tier into a fresh buffer.
func EncodeTier(ix *core.Index, cat *wire.Catalog, m core.SizeModel) ([]byte, error) {
	return AppendTier(nil, ix, cat, m)
}

// AppendTier is EncodeTier appending to dst (which may be a pooled buffer)
// and returning the extended slice. The index must be in DFS pre-order
// with every node reachable from Roots (core.Index's invariant).
func AppendTier(dst []byte, ix *core.Index, cat *wire.Catalog, m core.SizeModel) ([]byte, error) {
	n := len(ix.Nodes)
	a, d := attachCounts(ix)
	lay, err := computeLayout(n, a, d, cat.Len(), m.DocIDBytes)
	if err != nil {
		return nil, err
	}
	base := len(dst)
	dst = grow(dst, lay.size)
	out := dst[base:]

	binary.LittleEndian.PutUint32(out[0:], uint32(n))
	binary.LittleEndian.PutUint32(out[4:], uint32(a))
	binary.LittleEndian.PutUint32(out[8:], uint32(d))
	out[12] = byte(lay.labelBits)
	out[13] = byte(lay.docIDBytes)

	if err := appendBP(out, ix, lay); err != nil {
		return nil, err
	}
	for i := range ix.Nodes {
		id, ok := cat.ID(ix.Nodes[i].Label)
		if !ok {
			return nil, fmt.Errorf("succinct: label %q missing from catalog", ix.Nodes[i].Label)
		}
		orBits(out, lay.labOff, i*lay.labelBits, uint64(id))
	}
	docMax := uint64(1)<<(8*minInt(lay.docIDBytes, 8)) - 1
	ai, cum, docPos := 0, 0, lay.docsOff
	for i := range ix.Nodes {
		docs := ix.Nodes[i].Docs
		if len(docs) == 0 {
			continue
		}
		out[lay.attOff+i>>3] |= 1 << (i & 7)
		cum += len(docs)
		orBits(out, lay.endsOff, ai*lay.endBits, uint64(cum))
		ai++
		for _, doc := range docs {
			if uint64(doc) > docMax {
				return nil, fmt.Errorf("succinct: doc ID %d exceeds %d-byte field", doc, lay.docIDBytes)
			}
			v := uint64(doc)
			for b := 0; b < lay.docIDBytes; b++ {
				out[docPos+b] = byte(v >> (8 * b))
			}
			docPos += lay.docIDBytes
		}
	}
	writeDirectories(out, lay)
	writeAttachDir(out, lay)
	return dst, nil
}

// appendBP emits the balanced-parentheses bits via an explicit-stack DFS,
// verifying that pre-order visit order matches node IDs (deep tries must
// not recurse).
func appendBP(out []byte, ix *core.Index, lay layout) error {
	type frame struct {
		id   core.NodeID
		next int
	}
	setOpen := func(bit int) { out[lay.bpOff+bit>>3] |= 1 << (bit & 7) }
	bit, pre := 0, 0
	stack := make([]frame, 0, 64)
	for _, r := range ix.Roots {
		if int(r) != pre {
			return fmt.Errorf("succinct: index not in DFS pre-order at node %d", r)
		}
		pre++
		setOpen(bit)
		bit++
		stack = append(stack, frame{id: r})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			children := ix.Nodes[f.id].Children
			if f.next < len(children) {
				c := children[f.next]
				f.next++
				if int(c) != pre {
					return fmt.Errorf("succinct: index not in DFS pre-order at node %d", c)
				}
				pre++
				setOpen(bit)
				bit++
				stack = append(stack, frame{id: c})
			} else {
				bit++ // close parenthesis: bit stays 0
				stack = stack[:len(stack)-1]
			}
		}
	}
	if pre != len(ix.Nodes) || bit != 2*len(ix.Nodes) {
		return fmt.Errorf("succinct: %d of %d nodes reachable from roots", pre, len(ix.Nodes))
	}
	return nil
}

// writeDirectories fills the per-word and per-superblock BP directories
// from the already-written BP section.
func writeDirectories(out []byte, lay layout) {
	rank := 0
	for w := 0; w < lay.words; w++ {
		word := binary.LittleEndian.Uint64(out[lay.bpOff+8*w:])
		valid := minInt(64, 2*lay.n-64*w)
		entry := out[lay.dirOff+wordDirEntry*w:]
		binary.LittleEndian.PutUint32(entry, uint32(rank))
		entry[4] = byte(int8(wordMinExcess(word, valid)))
		rank += bits.OnesCount64(word)
	}
	for sb := 0; sb < lay.supers; sb++ {
		w0 := sb * superWords
		wEnd := minInt(w0+superWords, lay.words)
		baseRank := int(binary.LittleEndian.Uint32(out[lay.dirOff+wordDirEntry*w0:]))
		baseExc := 2*baseRank - 64*w0
		minExc := 0
		for w := w0; w < wEnd; w++ {
			entry := out[lay.dirOff+wordDirEntry*w:]
			excBefore := 2*int(binary.LittleEndian.Uint32(entry)) - 64*w
			if rel := excBefore + int(int8(entry[4])) - baseExc; w == w0 || rel < minExc {
				minExc = rel
			}
		}
		sentry := out[lay.superOff+superDirEntry*sb:]
		binary.LittleEndian.PutUint32(sentry, uint32(baseRank))
		binary.LittleEndian.PutUint16(sentry[4:], uint16(int16(minExc)))
	}
}

// writeAttachDir fills the attach-bitmap rank directory.
func writeAttachDir(out []byte, lay layout) {
	rank := 0
	for w := 0; w < lay.attWords; w++ {
		binary.LittleEndian.PutUint32(out[lay.attDirOff+attachDirEntry*w:], uint32(rank))
		rank += bits.OnesCount64(binary.LittleEndian.Uint64(out[lay.attOff+8*w:]))
	}
}

// wordMinExcess is the minimum running excess over the first valid bits of
// word, relative to the excess at the word start.
func wordMinExcess(word uint64, valid int) int {
	exc, minExc := 0, 0
	for b := 0; b < valid; b++ {
		if word>>uint(b)&1 == 1 {
			exc++
		} else {
			exc--
		}
		if b == 0 || exc < minExc {
			minExc = exc
		}
	}
	return minExc
}

// orBits ORs v into the bitvector at section byte offset base, bit index
// bitIdx. v must fit the caller's field width; widths stay ≤ 32 bits so a
// shifted value spans at most five bytes.
func orBits(out []byte, base, bitIdx int, v uint64) {
	v <<= uint(bitIdx & 7)
	b := base + bitIdx>>3
	for v != 0 {
		out[b] |= byte(v)
		v >>= 8
		b++
	}
}

// grow extends dst by n zeroed bytes, reusing capacity when available.
func grow(dst []byte, n int) []byte {
	if cap(dst)-len(dst) >= n {
		base := len(dst)
		dst = dst[:base+n]
		clear(dst[base:])
		return dst
	}
	return append(dst, make([]byte, n)...)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
