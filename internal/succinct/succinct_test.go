package succinct

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// deepChain mirrors the prune_deep fixture: a single-path trie of the
// given depth ending in one "leaf" node carrying a document tuple.
func deepChain(depth int) *core.Index {
	ix := &core.Index{Model: core.DefaultSizeModel()}
	ix.Nodes = make([]core.Node, depth)
	for i := range ix.Nodes {
		ix.Nodes[i] = core.Node{ID: core.NodeID(i), Label: "a", Parent: core.NodeID(i - 1)}
		if i > 0 {
			ix.Nodes[i-1].Children = []core.NodeID{core.NodeID(i)}
		}
	}
	ix.Nodes[0].Parent = core.NoNode
	ix.Roots = []core.NodeID{0}
	ix.Nodes[depth-1].Label = "leaf"
	ix.Nodes[depth-1].Docs = []xmldoc.DocID{7}
	return ix
}

// genIndex builds the CI of a generated document set.
func genIndex(t testing.TB, numDocs int, seed int64) *core.Index {
	t.Helper()
	coll, err := gen.Documents(gen.DocConfig{Schema: dtd.ByName("nitf"), NumDocs: numDocs, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	ix, err := core.BuildCI(coll, core.DefaultSizeModel())
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func mustEncode(t testing.TB, ix *core.Index) (*Tier, *wire.Catalog, []byte) {
	t.Helper()
	cat := wire.BuildCatalog(ix)
	blob, err := EncodeTier(ix, cat, ix.Model)
	if err != nil {
		t.Fatal(err)
	}
	if size, err := TierSize(ix, cat.Len(), ix.Model); err != nil || size != len(blob) {
		t.Fatalf("TierSize = %d, %v; encoded %d bytes", size, err, len(blob))
	}
	tier, err := Parse(blob, ix.Model, cat)
	if err != nil {
		t.Fatalf("Parse of fresh encode: %v", err)
	}
	return tier, cat, blob
}

func TestRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		ix   *core.Index
	}{
		{"empty", &core.Index{Model: core.DefaultSizeModel()}},
		{"deep-20k", deepChain(20_000)},
		{"nitf", genIndex(t, 30, 1)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.ix.Validate(); err != nil {
				t.Fatal(err)
			}
			tier, _, _ := mustEncode(t, tc.ix)
			got, err := tier.Decode()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.ix) {
				t.Fatalf("decoded index differs from original")
			}
		})
	}
}

// TestBPOps cross-checks the parenthesis operations against the pointer
// structure on a real trie: each node's open position must navigate to
// the positions of its first child, next sibling and parent.
func TestBPOps(t *testing.T) {
	ix := genIndex(t, 20, 2)
	tier, _, _ := mustEncode(t, ix)

	// Reconstruct each node's open position by DFS (open i emitted when
	// node i is entered).
	openPos := make([]int, len(ix.Nodes))
	bit := 0
	var walk func(id core.NodeID)
	walk = func(id core.NodeID) {
		openPos[id] = bit
		bit++
		for _, c := range ix.Nodes[id].Children {
			walk(c)
		}
		bit++
	}
	for _, r := range ix.Roots {
		walk(r)
	}

	for i := range ix.Nodes {
		n := &ix.Nodes[i]
		pos := openPos[i]
		if got := tier.NodeID(pos); got != n.ID {
			t.Fatalf("NodeID(%d) = %d, want %d", pos, got, n.ID)
		}
		if got := tier.Label(n.ID); got != n.Label {
			t.Fatalf("Label(%d) = %q, want %q", n.ID, got, n.Label)
		}
		wantChild := -1
		if len(n.Children) > 0 {
			wantChild = openPos[n.Children[0]]
		}
		if got := tier.FirstChild(pos); got != wantChild {
			t.Fatalf("FirstChild(node %d) = %d, want %d", i, got, wantChild)
		}
		wantParent := -1
		if n.Parent != core.NoNode {
			wantParent = openPos[n.Parent]
		}
		if got := tier.Parent(pos); got != wantParent {
			t.Fatalf("Parent(node %d) = %d, want %d", i, got, wantParent)
		}
		wantSib := -1
		if n.Parent != core.NoNode {
			sibs := ix.Nodes[n.Parent].Children
			for si, c := range sibs {
				if c == n.ID && si+1 < len(sibs) {
					wantSib = openPos[sibs[si+1]]
				}
			}
		} else {
			for ri, r := range ix.Roots {
				if r == n.ID && ri+1 < len(ix.Roots) {
					wantSib = openPos[ix.Roots[ri+1]]
				}
			}
		}
		if got := tier.NextSibling(pos); got != wantSib {
			t.Fatalf("NextSibling(node %d) = %d, want %d", i, got, wantSib)
		}
		if got := tier.FindClose(pos); !subtreeSpan(ix, n.ID, pos, got) {
			t.Fatalf("FindClose(node %d at %d) = %d does not span the subtree", i, pos, got)
		}
	}
}

// subtreeSpan checks close − open + 1 == 2 × subtree size.
func subtreeSpan(ix *core.Index, id core.NodeID, open, close int) bool {
	count := 0
	var walk func(core.NodeID)
	walk = func(n core.NodeID) {
		count++
		for _, c := range ix.Nodes[n].Children {
			walk(c)
		}
	}
	walk(id)
	return close-open+1 == 2*count
}

// randomQuery builds a query over the alphabet with child/descendant axes
// and wildcards.
func randomQuery(r *rand.Rand, labels []string, maxDepth int, p float64) xpath.Path {
	depth := 1 + r.Intn(maxDepth)
	var b strings.Builder
	for i := 0; i < depth; i++ {
		if r.Float64() < 0.3 {
			b.WriteString("//")
		} else {
			b.WriteString("/")
		}
		if r.Float64() < p {
			b.WriteString("*")
		} else {
			b.WriteString(labels[r.Intn(len(labels))])
		}
	}
	return xpath.MustParse(b.String())
}

// randomDoc builds a random document tree over the alphabet.
func randomDoc(r *rand.Rand, id xmldoc.DocID, labels []string) *xmldoc.Document {
	var build func(depth int) *xmldoc.Node
	build = func(depth int) *xmldoc.Node {
		n := &xmldoc.Node{Label: labels[r.Intn(len(labels))]}
		if depth < 5 {
			for k := r.Intn(4 - depth/2); k > 0; k-- {
				n.Children = append(n.Children, build(depth+1))
			}
		}
		return n
	}
	return xmldoc.NewDocument(id, build(0))
}

// TestCursorEquivalence is the randomized equivalence property: over
// generated and random collections, pruned and unpruned, the succinct
// cursor must report exactly the navigation (Visited) and answers (Docs)
// of core.Navigator over the identical index — including the index as a
// receiver would see it, i.e. after a node-layout wire round trip.
func TestCursorEquivalence(t *testing.T) {
	type fixture struct {
		name    string
		ix      *core.Index
		queries []xpath.Path
	}
	var fixtures []fixture

	// Generated nitf collections with generated query sets, CI and PCI.
	for seed := int64(1); seed <= 3; seed++ {
		ci := genIndex(t, 25, seed)
		coll, err := gen.Documents(gen.DocConfig{Schema: dtd.ByName("nitf"), NumDocs: 25, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		queries, err := gen.Queries(coll, gen.QueryConfig{NumQueries: 40, MaxDepth: 5, WildcardProb: 0.15, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{fmt.Sprintf("nitf-ci-%d", seed), ci, queries})
		pci, _, err := ci.Prune(queries)
		if err != nil {
			t.Fatal(err)
		}
		fixtures = append(fixtures, fixture{fmt.Sprintf("nitf-pci-%d", seed), pci, queries})
	}

	// Random synthetic collections with random query mixes.
	labels := []string{"a", "b", "c", "d", "e"}
	for seed := int64(10); seed < 16; seed++ {
		r := rand.New(rand.NewSource(seed))
		docs := make([]*xmldoc.Document, 8)
		for i := range docs {
			docs[i] = randomDoc(r, xmldoc.DocID(i+1), labels)
		}
		coll, err := xmldoc.NewCollection(docs)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := core.BuildCI(coll, core.DefaultSizeModel())
		if err != nil {
			t.Fatal(err)
		}
		queries := make([]xpath.Path, 30)
		for i := range queries {
			queries[i] = randomQuery(r, labels, 6, 0.25)
		}
		fixtures = append(fixtures, fixture{fmt.Sprintf("rand-%d", seed), ix, queries})
	}

	// The deep fixture: navigation must survive 20k levels.
	fixtures = append(fixtures, fixture{"deep-20k", deepChain(20_000), []xpath.Path{
		xpath.MustParse("//leaf"), xpath.MustParse("/a"), xpath.MustParse("//a/leaf"),
	}})

	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			tier, cat, _ := mustEncode(t, fx.ix)
			cursor := tier.NewCursor()

			// The node-layout wire round trip of the same index: the
			// receiver-visible baseline.
			p := fx.ix.Pack(core.FirstTier)
			nodeBytes, err := wire.EncodeIndex(fx.ix, p, cat, nil)
			if err != nil {
				t.Fatal(err)
			}
			decoded, _, err := wire.DecodeIndex(nodeBytes, fx.ix.Model, core.FirstTier, cat)
			if err != nil {
				t.Fatal(err)
			}
			if err := wire.ApplyRootLabels(decoded, wire.RootLabels(fx.ix)); err != nil {
				t.Fatal(err)
			}

			for qi, q := range fx.queries {
				nav := core.NewNavigator(q)
				want := nav.Lookup(fx.ix)
				wantDecoded := nav.Lookup(decoded)
				got := cursor.Lookup(nav.Filter())
				if !equalDocs(got, want.Docs) || !equalDocs(got, wantDecoded.Docs) {
					t.Fatalf("query %d %v: docs %v, navigator %v (decoded %v)", qi, q, got, want.Docs, wantDecoded.Docs)
				}
				if !equalIDs(cursor.Visited(), want.Visited) {
					t.Fatalf("query %d %v: visited %v, navigator visited %v", qi, q, cursor.Visited(), want.Visited)
				}
				if c := cursor.TouchedBytes(); c <= 0 || c > tierAir(tier) {
					t.Fatalf("query %d: touched %d bytes of a %d-byte tier", qi, c, tierAir(tier))
				}
			}
		})
	}
}

func tierAir(t *Tier) int {
	pb := t.Model().PacketBytes
	return (t.Size() + pb - 1) / pb * pb
}

func equalDocs(a, b []xmldoc.DocID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalIDs(a, b []core.NodeID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestParseRejects exercises the hostile-byte paths deterministically:
// truncations and single-bit flips must error or keep full invariants —
// never panic.
func TestParseRejects(t *testing.T) {
	ix := genIndex(t, 10, 3)
	_, cat, blob := mustEncode(t, ix)
	m := ix.Model

	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := Parse(blob[:cut], m, cat); err == nil {
			t.Fatalf("truncation to %d bytes parsed", cut)
		}
	}
	flipped := 0
	for i := 0; i < len(blob); i++ {
		for b := 0; b < 8; b++ {
			mut := append([]byte(nil), blob...)
			mut[i] ^= 1 << b
			tier, err := Parse(mut, m, cat)
			if err != nil {
				continue
			}
			flipped++
			// A flip that still parses must still decode-or-error and
			// navigate without panicking.
			if ix2, err := tier.Decode(); err == nil {
				if _, err := EncodeTier(ix2, cat, m); err != nil {
					t.Fatalf("flip %d.%d: re-encode of decoded index failed: %v", i, b, err)
				}
			}
			nav := core.NewNavigator(xpath.MustParse("//nitf"))
			tier.NewCursor().Lookup(nav.Filter())
		}
	}
	t.Logf("%d of %d single-bit flips still parse (doc-id payload flips)", flipped, len(blob)*8)
}
