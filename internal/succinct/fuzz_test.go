package succinct

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// fuzzFixture builds a small index whose catalog anchors the fuzz target:
// hostile inputs are parsed against a real dictionary and size model.
func fuzzFixture() *core.Index {
	ix := &core.Index{Model: core.DefaultSizeModel()}
	add := func(label string, parent core.NodeID, docs ...xmldoc.DocID) core.NodeID {
		id := core.NodeID(len(ix.Nodes))
		ix.Nodes = append(ix.Nodes, core.Node{ID: id, Label: label, Parent: parent, Docs: docs})
		if parent == core.NoNode {
			ix.Roots = append(ix.Roots, id)
		} else {
			ix.Nodes[parent].Children = append(ix.Nodes[parent].Children, id)
		}
		return id
	}
	r := add("a", core.NoNode)
	b := add("b", r, 1, 3)
	add("c", b, 2)
	add("d", b)
	add("e", r, 5)
	r2 := add("b", core.NoNode)
	add("a", r2, 4, 6, 9)
	return ix
}

// FuzzSuccinctDecode feeds arbitrary bytes to the tier parser. Inputs that
// parse must round-trip byte-identically through Decode/EncodeTier (the
// format is canonical) and must navigate without panicking; truncations,
// flipped parentheses and out-of-range label IDs must surface as errors.
func FuzzSuccinctDecode(f *testing.F) {
	ix := fuzzFixture()
	if err := ix.Validate(); err != nil {
		f.Fatal(err)
	}
	m := ix.Model
	cat := wire.BuildCatalog(ix)
	seed, err := EncodeTier(ix, cat, m)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)-3])
	flipped := append([]byte(nil), seed...)
	flipped[headerSize] ^= 1 // first BP byte
	f.Add(flipped)
	f.Add([]byte{})

	queries := []xpath.Path{
		xpath.MustParse("//b"),
		xpath.MustParse("/a/*"),
		xpath.MustParse("/b/a"),
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		tier, err := Parse(data, m, cat)
		if err != nil {
			return
		}
		// Navigation over any parsed tier must be panic-free.
		cursor := tier.NewCursor()
		for _, q := range queries {
			nav := core.NewNavigator(q)
			cursor.Lookup(nav.Filter())
		}
		decoded, err := tier.Decode()
		if err != nil {
			// Parsed but non-canonical as a core index (e.g. sibling
			// label order): fine, as long as it errored cleanly.
			return
		}
		out, err := EncodeTier(decoded, cat, m)
		if err != nil {
			t.Fatalf("re-encode of decoded tier failed: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round trip not byte-identical: %d vs %d bytes", len(out), len(data))
		}
		// Cursor answers must agree with the materialized index.
		for _, q := range queries {
			nav := core.NewNavigator(q)
			want := nav.Lookup(decoded)
			got := cursor.Lookup(nav.Filter())
			if !equalDocs(got, want.Docs) {
				t.Fatalf("query %v: cursor %v, navigator %v", q, got, want.Docs)
			}
		}
	})
}
