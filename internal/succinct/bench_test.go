package succinct

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/wire"
	"repro/internal/xpath"
)

// benchSetup mirrors wire's encode benchmark fixture: the CI of 50
// generated NITF documents.
func benchSetup(tb testing.TB) (*core.Index, *core.Packing, *wire.Catalog) {
	tb.Helper()
	coll, err := gen.Documents(gen.DocConfig{Schema: dtd.ByName("nitf"), NumDocs: 50, Seed: 1})
	if err != nil {
		tb.Fatal(err)
	}
	ix, err := core.BuildCI(coll, core.DefaultSizeModel())
	if err != nil {
		tb.Fatal(err)
	}
	return ix, ix.Pack(core.FirstTier), wire.BuildCatalog(ix)
}

func BenchmarkAppendTier(b *testing.B) {
	ix, _, cat := benchSetup(b)
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = AppendTier(buf[:0], ix, cat, ix.Model)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(buf)))
}

func BenchmarkParse(b *testing.B) {
	ix, _, cat := benchSetup(b)
	blob, err := EncodeTier(ix, cat, ix.Model)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(blob, ix.Model, cat); err != nil {
			b.Fatal(err)
		}
	}
}

var benchQuery = xpath.MustParse("//nitf//body//p")

func BenchmarkCursorLookup(b *testing.B) {
	ix, _, cat := benchSetup(b)
	blob, err := EncodeTier(ix, cat, ix.Model)
	if err != nil {
		b.Fatal(err)
	}
	tier, err := Parse(blob, ix.Model, cat)
	if err != nil {
		b.Fatal(err)
	}
	nav := core.NewNavigator(benchQuery)
	cursor := tier.NewCursor()
	cursor.Lookup(nav.Filter()) // warm the automaton memo and scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if docs := cursor.Lookup(nav.Filter()); len(docs) == 0 {
			b.Fatal("no matches")
		}
	}
}

// BenchmarkNodeDecodeLookup is the node-layout baseline for
// BenchmarkCursorLookup: what a client pays to answer the same query from
// the pointer encoding (decode, re-label, navigate).
func BenchmarkNodeDecodeLookup(b *testing.B) {
	ix, p, cat := benchSetup(b)
	blob, err := wire.EncodeIndex(ix, p, cat, nil)
	if err != nil {
		b.Fatal(err)
	}
	nav := core.NewNavigator(benchQuery)
	roots := wire.RootLabels(ix)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, _, err := wire.DecodeIndex(blob, ix.Model, core.FirstTier, cat)
		if err != nil {
			b.Fatal(err)
		}
		if err := wire.ApplyRootLabels(decoded, roots); err != nil {
			b.Fatal(err)
		}
		if res := nav.Lookup(decoded); len(res.Docs) == 0 {
			b.Fatal("no matches")
		}
	}
}

// TestCursorMaterializationFree pins the client hot-path claim: a warm
// succinct lookup allocates an order of magnitude less than the node
// path's decode-and-navigate (which materializes every core.Index node),
// and the encoded tier undercuts the packed node stream by well over the
// acceptance bar.
func TestCursorMaterializationFree(t *testing.T) {
	ix, p, cat := benchSetup(t)
	blob, err := EncodeTier(ix, cat, ix.Model)
	if err != nil {
		t.Fatal(err)
	}
	tier, err := Parse(blob, ix.Model, cat)
	if err != nil {
		t.Fatal(err)
	}
	nodeBlob, err := wire.EncodeIndex(ix, p, cat, nil)
	if err != nil {
		t.Fatal(err)
	}
	roots := wire.RootLabels(ix)
	nav := core.NewNavigator(benchQuery)
	cursor := tier.NewCursor()
	cursor.Lookup(nav.Filter()) // warm scratch and automaton memo

	cursorAllocs := testing.AllocsPerRun(50, func() {
		cursor.Lookup(nav.Filter())
	})
	nodeAllocs := testing.AllocsPerRun(50, func() {
		decoded, _, err := wire.DecodeIndex(nodeBlob, ix.Model, core.FirstTier, cat)
		if err != nil {
			t.Fatal(err)
		}
		if err := wire.ApplyRootLabels(decoded, roots); err != nil {
			t.Fatal(err)
		}
		nav.Lookup(decoded)
	})
	if cursorAllocs*10 > nodeAllocs {
		t.Fatalf("cursor lookup allocates %.0f/op vs node decode+lookup %.0f/op; want ≤ 1/10", cursorAllocs, nodeAllocs)
	}
	if limit := float64(nodeAllocs) / 4; cursorAllocs > limit && cursorAllocs > 64 {
		t.Fatalf("cursor lookup allocates %.0f/op", cursorAllocs)
	}
	if 4*len(blob) > 3*p.StreamBytes {
		t.Fatalf("succinct tier %d bytes, node stream %d: want ≥ 25%% smaller", len(blob), p.StreamBytes)
	}
}
