package succinct

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
)

// Tier is a parsed succinct first tier: a validated view over the raw
// encoded bytes. Parsing builds no per-node structures — navigation reads
// the byte stream (and its on-air directories) in place, which is what
// keeps the client hot path materialization-free.
type Tier struct {
	data []byte
	m    core.SizeModel
	cat  *wire.Catalog
	lay  layout
}

// Parse validates an encoded first tier against the size model and label
// catalog it was encoded under. Every section is checked — balanced
// parentheses, in-range label IDs, truthful rank/excess directories,
// monotone tuple ranges, canonical padding — so hostile bytes error here
// rather than corrupting navigation. The data slice is retained.
func Parse(data []byte, m core.SizeModel, cat *wire.Catalog) (*Tier, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("succinct: tier truncated: %d bytes", len(data))
	}
	n := int(binary.LittleEndian.Uint32(data[0:]))
	a := int(binary.LittleEndian.Uint32(data[4:]))
	d := int(binary.LittleEndian.Uint32(data[8:]))
	lay, err := computeLayout(n, a, d, cat.Len(), m.DocIDBytes)
	if err != nil {
		return nil, err
	}
	if int(data[12]) != lay.labelBits {
		return nil, fmt.Errorf("succinct: labelBits %d, catalog needs %d", data[12], lay.labelBits)
	}
	if int(data[13]) != lay.docIDBytes {
		return nil, fmt.Errorf("succinct: docIDBytes %d, model has %d", data[13], lay.docIDBytes)
	}
	if len(data) != lay.size {
		return nil, fmt.Errorf("succinct: tier is %d bytes, layout needs %d", len(data), lay.size)
	}
	t := &Tier{data: data, m: m, cat: cat, lay: lay}
	if err := t.validateBP(); err != nil {
		return nil, err
	}
	if err := t.validateLabels(); err != nil {
		return nil, err
	}
	if err := t.validateAttach(); err != nil {
		return nil, err
	}
	if err := t.validateDocs(); err != nil {
		return nil, err
	}
	return t, nil
}

// validateBP checks the parenthesis sequence is a balanced forest with n
// opens, padding bits are zero, and both directory levels match the data.
func (t *Tier) validateBP() error {
	lay := t.lay
	rank, exc := 0, 0
	for w := 0; w < lay.words; w++ {
		word := binary.LittleEndian.Uint64(t.data[lay.bpOff+8*w:])
		valid := minInt(64, 2*lay.n-64*w)
		if valid < 64 && word>>uint(valid) != 0 {
			return fmt.Errorf("succinct: nonzero BP padding in word %d", w)
		}
		entry := t.data[lay.dirOff+wordDirEntry*w:]
		if int(binary.LittleEndian.Uint32(entry)) != rank {
			return fmt.Errorf("succinct: BP rank directory mismatch at word %d", w)
		}
		if int(int8(entry[4])) != wordMinExcess(word, valid) {
			return fmt.Errorf("succinct: BP excess directory mismatch at word %d", w)
		}
		if exc+wordMinExcess(word, valid) < 0 {
			return fmt.Errorf("succinct: unbalanced parentheses in word %d", w)
		}
		opens := bits.OnesCount64(word)
		rank += opens
		exc += 2*opens - valid
	}
	if rank != lay.n || exc != 0 {
		return fmt.Errorf("succinct: parentheses encode %d opens, excess %d (want %d, 0)", rank, exc, lay.n)
	}
	for sb := 0; sb < lay.supers; sb++ {
		w0 := sb * superWords
		wEnd := minInt(w0+superWords, lay.words)
		baseRank := int(binary.LittleEndian.Uint32(t.data[lay.dirOff+wordDirEntry*w0:]))
		baseExc := 2*baseRank - 64*w0
		minExc := 0
		for w := w0; w < wEnd; w++ {
			entry := t.data[lay.dirOff+wordDirEntry*w:]
			excBefore := 2*int(binary.LittleEndian.Uint32(entry)) - 64*w
			if rel := excBefore + int(int8(entry[4])) - baseExc; w == w0 || rel < minExc {
				minExc = rel
			}
		}
		sentry := t.data[lay.superOff+superDirEntry*sb:]
		if int(binary.LittleEndian.Uint32(sentry)) != baseRank ||
			int(int16(binary.LittleEndian.Uint16(sentry[4:]))) != minExc {
			return fmt.Errorf("succinct: BP superblock directory mismatch at %d", sb)
		}
	}
	return nil
}

// validateLabels checks every label ID resolves in the catalog and the
// section's trailing padding bits are zero.
func (t *Tier) validateLabels() error {
	lay := t.lay
	for i := 0; i < lay.n; i++ {
		if id := t.getBits(lay.labOff, i*lay.labelBits, lay.labelBits, nil); id >= uint64(t.cat.Len()) {
			return fmt.Errorf("succinct: node %d has out-of-range label id %d", i, id)
		}
	}
	return t.checkBitPadding(lay.labOff, lay.n*lay.labelBits, lay.attOff, "label")
}

// validateAttach checks the attachment bitmap has exactly a set bits, zero
// padding, and a truthful rank directory.
func (t *Tier) validateAttach() error {
	lay := t.lay
	rank := 0
	for w := 0; w < lay.attWords; w++ {
		word := binary.LittleEndian.Uint64(t.data[lay.attOff+8*w:])
		valid := minInt(64, lay.n-64*w)
		if valid < 64 && word>>uint(valid) != 0 {
			return fmt.Errorf("succinct: nonzero attach padding in word %d", w)
		}
		if int(binary.LittleEndian.Uint32(t.data[lay.attDirOff+attachDirEntry*w:])) != rank {
			return fmt.Errorf("succinct: attach rank directory mismatch at word %d", w)
		}
		rank += bits.OnesCount64(word)
	}
	if rank != lay.a {
		return fmt.Errorf("succinct: attach bitmap has %d set bits, header claims %d", rank, lay.a)
	}
	return nil
}

// validateDocs checks the cumulative ends are strictly increasing up to d,
// their padding is zero, and each node's tuple group is strictly sorted
// with IDs that fit xmldoc.DocID.
func (t *Tier) validateDocs() error {
	lay := t.lay
	prev := uint64(0)
	for k := 0; k < lay.a; k++ {
		end := t.getBits(lay.endsOff, k*lay.endBits, lay.endBits, nil)
		if end <= prev || end > uint64(lay.d) {
			return fmt.Errorf("succinct: tuple range ends not strictly increasing at %d", k)
		}
		prev = end
	}
	if lay.a > 0 && prev != uint64(lay.d) {
		return fmt.Errorf("succinct: tuple ranges cover %d of %d tuples", prev, lay.d)
	}
	if err := t.checkBitPadding(lay.endsOff, lay.a*lay.endBits, lay.docsOff, "ends"); err != nil {
		return err
	}
	start := uint64(0)
	for k := 0; k < lay.a; k++ {
		end := t.getBits(lay.endsOff, k*lay.endBits, lay.endBits, nil)
		var prevDoc uint64
		for p := start; p < end; p++ {
			v := t.docValue(int(p), nil)
			if v > uint64(^xmldoc.DocID(0)) {
				return fmt.Errorf("succinct: doc ID %d exceeds DocID range", v)
			}
			if p > start && v <= prevDoc {
				return fmt.Errorf("succinct: tuple group %d not sorted", k)
			}
			prevDoc = v
		}
		start = end
	}
	return nil
}

// checkBitPadding verifies the bits between bit index used (relative to
// section offset off) and the next section at end are all zero.
func (t *Tier) checkBitPadding(off, used, end int, what string) error {
	bytePos := off + used>>3
	if rem := used & 7; rem != 0 {
		if t.data[bytePos]>>uint(rem) != 0 {
			return fmt.Errorf("succinct: nonzero %s padding", what)
		}
		bytePos++
	}
	for ; bytePos < end; bytePos++ {
		if t.data[bytePos] != 0 {
			return fmt.Errorf("succinct: nonzero %s padding", what)
		}
	}
	return nil
}

// NumNodes reports the node count.
func (t *Tier) NumNodes() int { return t.lay.n }

// NumDocTuples reports the total document tuple count.
func (t *Tier) NumDocTuples() int { return t.lay.d }

// Size reports the encoded tier length in bytes.
func (t *Tier) Size() int { return len(t.data) }

// Model returns the size model the tier was parsed under.
func (t *Tier) Model() core.SizeModel { return t.m }

// pageSet tracks which packet-sized pages of the tier a navigation
// touched; nil receivers are no-ops so pure (unaccounted) ops share the
// same read helpers.
type pageSet struct {
	pageBytes int
	words     []uint64
}

func (p *pageSet) reset(size, pageBytes int) {
	pages := (size + pageBytes - 1) / pageBytes
	need := (pages + 63) / 64
	if cap(p.words) < need {
		p.words = make([]uint64, need)
	} else {
		p.words = p.words[:need]
		clear(p.words)
	}
	p.pageBytes = pageBytes
}

// mark records the byte range [start, end) as read.
func (p *pageSet) mark(start, end int) {
	if p == nil || end <= start {
		return
	}
	first, last := start/p.pageBytes, (end-1)/p.pageBytes
	for pg := first; pg <= last; pg++ {
		p.words[pg>>6] |= 1 << (pg & 63)
	}
}

// count reports the number of distinct pages marked.
func (p *pageSet) count() int {
	total := 0
	for _, w := range p.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// loadWord reads up to eight bytes of data at off, little-endian,
// zero-extending past the end of the slice.
func loadWord(data []byte, off int) uint64 {
	if off+8 <= len(data) {
		return binary.LittleEndian.Uint64(data[off:])
	}
	var v uint64
	for i := 0; off+i < len(data); i++ {
		v |= uint64(data[off+i]) << (8 * i)
	}
	return v
}

// getBits extracts the width-bit field at bit index bitIdx of the section
// at byte offset base (width ≤ 32, so one word load suffices).
func (t *Tier) getBits(base, bitIdx, width int, pg *pageSet) uint64 {
	b := base + bitIdx>>3
	pg.mark(b, b+(bitIdx&7+width+7)/8)
	return loadWord(t.data, b) >> uint(bitIdx&7) & (1<<uint(width) - 1)
}

// bpWord reads BP word w.
func (t *Tier) bpWord(w int, pg *pageSet) uint64 {
	off := t.lay.bpOff + 8*w
	pg.mark(off, off+8)
	return binary.LittleEndian.Uint64(t.data[off:])
}

// dirEntry reads BP word w's directory entry: rank1 before the word and
// the word's minimum relative prefix excess.
func (t *Tier) dirEntry(w int, pg *pageSet) (rank, minExc int) {
	off := t.lay.dirOff + wordDirEntry*w
	pg.mark(off, off+wordDirEntry)
	return int(binary.LittleEndian.Uint32(t.data[off:])), int(int8(t.data[off+4]))
}

// superEntry reads superblock sb's directory entry.
func (t *Tier) superEntry(sb int, pg *pageSet) (rank, minExc int) {
	off := t.lay.superOff + superDirEntry*sb
	pg.mark(off, off+superDirEntry)
	return int(binary.LittleEndian.Uint32(t.data[off:])),
		int(int16(binary.LittleEndian.Uint16(t.data[off+4:])))
}

// isOpen reports whether BP bit pos is an open parenthesis.
func (t *Tier) isOpen(pos int, pg *pageSet) bool {
	off := t.lay.bpOff + pos>>3
	pg.mark(off, off+1)
	return t.data[off]>>uint(pos&7)&1 == 1
}

// rank1 counts open parentheses strictly before BP bit pos; for an open
// at pos this is the node's pre-order ID.
func (t *Tier) rank1(pos int, pg *pageSet) int {
	w := pos >> 6
	rank, _ := t.dirEntry(w, pg)
	return rank + bits.OnesCount64(t.bpWord(w, pg)&(1<<uint(pos&63)-1))
}

// excessBefore is the parenthesis excess (opens − closes) of bits [0, pos).
func (t *Tier) excessBefore(pos int, pg *pageSet) int {
	w := pos >> 6
	rank, _ := t.dirEntry(w, pg)
	within := pos & 63
	opens := bits.OnesCount64(t.bpWord(w, pg) & (1<<uint(within) - 1))
	return 2*(rank+opens) - pos
}

// findClose returns the position of the close parenthesis matching the
// open at pos, skipping whole words and superblocks via the excess
// directories. Returns -1 only on malformed input (excluded by Parse).
func (t *Tier) findClose(pos int, pg *pageSet) int {
	lay := t.lay
	nbits := 2 * lay.n
	w := pos >> 6
	word := t.bpWord(w, pg)
	target := t.excessBefore(pos, pg) // matching close brings excess back here
	exc := target + 1
	valid := minInt(64, nbits-64*w)
	for b := pos&63 + 1; b < valid; b++ {
		if word>>uint(b)&1 == 1 {
			exc++
		} else {
			exc--
		}
		if exc == target {
			return 64*w + b
		}
	}
	for w++; w < lay.words; {
		if w&(superWords-1) == 0 {
			sb := w / superWords
			sRank, sMin := t.superEntry(sb, pg)
			if 2*sRank-64*w+sMin > target {
				w += superWords // the whole superblock stays above target
				continue
			}
		}
		rank, wMin := t.dirEntry(w, pg)
		if excBefore := 2*rank - 64*w; excBefore+wMin <= target {
			word = t.bpWord(w, pg)
			exc = excBefore
			valid = minInt(64, nbits-64*w)
			for b := 0; b < valid; b++ {
				if word>>uint(b)&1 == 1 {
					exc++
				} else {
					exc--
				}
				if exc == target {
					return 64*w + b
				}
			}
			return -1
		}
		w++
	}
	return -1
}

// FindClose is the unaccounted form of findClose: the matching close of
// the open parenthesis at pos.
func (t *Tier) FindClose(pos int) int { return t.findClose(pos, nil) }

// FirstChild returns the open position of the first child of the node
// opened at pos, or -1 for a leaf.
func (t *Tier) FirstChild(pos int) int { return t.firstChild(pos, nil) }

func (t *Tier) firstChild(pos int, pg *pageSet) int {
	c := pos + 1
	if c < 2*t.lay.n && t.isOpen(c, pg) {
		return c
	}
	return -1
}

// NextSibling returns the open position of the next sibling of the node
// opened at pos, or -1 if it is the last child (or last root).
func (t *Tier) NextSibling(pos int) int { return t.nextSibling(pos, nil) }

func (t *Tier) nextSibling(pos int, pg *pageSet) int {
	j := t.findClose(pos, pg) + 1
	if j > 0 && j < 2*t.lay.n && t.isOpen(j, pg) {
		return j
	}
	return -1
}

// Parent returns the open position of the parent of the node opened at
// pos, or -1 for a root.
func (t *Tier) Parent(pos int) int { return t.parent(pos, nil) }

func (t *Tier) parent(pos int, pg *pageSet) int {
	target := t.excessBefore(pos, pg)
	if target == 0 {
		return -1
	}
	cur := target // excess at pos-1 equals excess before pos
	w := (pos - 1) >> 6
	word := t.bpWord(w, pg)
	for j := pos - 1; j >= 0; j-- {
		if j>>6 != w {
			w = j >> 6
			word = t.bpWord(w, pg)
		}
		if word>>uint(j&63)&1 == 1 {
			if cur == target {
				return j
			}
			cur--
		} else {
			cur++
		}
	}
	return -1
}

// NodeID is the pre-order ID of the node opened at pos.
func (t *Tier) NodeID(pos int) core.NodeID { return core.NodeID(t.rank1(pos, nil)) }

// Label resolves node id's label through the catalog.
func (t *Tier) Label(id core.NodeID) string { return t.label(int(id), nil) }

func (t *Tier) label(id int, pg *pageSet) string {
	v := t.getBits(t.lay.labOff, id*t.lay.labelBits, t.lay.labelBits, pg)
	s, _ := t.cat.Label(uint32(v)) // in range: validated at Parse
	return s
}

// attachRank counts attached nodes with pre-order ID < id.
func (t *Tier) attachRank(id int, pg *pageSet) int {
	if id >= t.lay.n {
		return t.lay.a
	}
	w := id >> 6
	off := t.lay.attDirOff + attachDirEntry*w
	pg.mark(off, off+attachDirEntry)
	rank := int(binary.LittleEndian.Uint32(t.data[off:]))
	wOff := t.lay.attOff + 8*w
	pg.mark(wOff, wOff+8)
	word := binary.LittleEndian.Uint64(t.data[wOff:])
	return rank + bits.OnesCount64(word&(1<<uint(id&63)-1))
}

// endValue is the cumulative tuple count at attached-node index k.
func (t *Tier) endValue(k int, pg *pageSet) int {
	return int(t.getBits(t.lay.endsOff, k*t.lay.endBits, t.lay.endBits, pg))
}

// docValue is the p-th document ID in the tuple array.
func (t *Tier) docValue(p int, pg *pageSet) uint64 {
	off := t.lay.docsOff + p*t.lay.docIDBytes
	pg.mark(off, off+t.lay.docIDBytes)
	var v uint64
	for i := 0; i < t.lay.docIDBytes; i++ {
		v |= uint64(t.data[off+i]) << (8 * i)
	}
	return v
}

// appendSubtreeDocs appends the document tuples of the pre-order ID range
// [idStart, idEnd) — a subtree in DFS layout — to dst.
func (t *Tier) appendSubtreeDocs(dst []xmldoc.DocID, idStart, idEnd int, pg *pageSet) []xmldoc.DocID {
	aStart := t.attachRank(idStart, pg)
	aEnd := t.attachRank(idEnd, pg)
	if aStart == aEnd {
		return dst
	}
	lo := 0
	if aStart > 0 {
		lo = t.endValue(aStart-1, pg)
	}
	hi := t.endValue(aEnd-1, pg)
	if lo < hi { // mark the tuple range once, then read it
		off := t.lay.docsOff
		pg.mark(off+lo*t.lay.docIDBytes, off+hi*t.lay.docIDBytes)
	}
	for p := lo; p < hi; p++ {
		dst = append(dst, xmldoc.DocID(t.docValue(p, nil)))
	}
	return dst
}
