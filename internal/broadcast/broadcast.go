// Package broadcast assembles broadcast cycles: the per-cycle air index
// (PCI), the second-tier offset list under the two-tier organisation, and the
// scheduled documents, following the program layout of §3.4 (Fig. 8):
//
//	one-tier:  [head][one-tier index with embedded offsets][documents]
//	two-tier:  [head][first-tier index][second-tier offsets][documents]
//
// The head carries the label catalog, root labels and segment lengths. All
// segment sizes are real encodable bytes (package wire), so the simulator's
// byte clock matches what a receiver would download.
//
// With K > 1 channels the two tiers split across parallel streams sharing the
// aggregate bandwidth (each channel runs at 1/K of it):
//
//	channel 0 (index):   [head][channel directory][first-tier index]
//	channel 1..K-1:      [second-tier offsets][documents]   (striped)
//
// The channel directory tags every scheduled doc ID with its carrying channel
// and byte offset within that channel's stream, so a single-tuner client
// makes one short index-channel read per cycle and then hops to each data
// channel just in time. Multichannel layout requires TwoTierMode — the
// one-tier index embeds offsets that are only meaningful in a serial stream.
package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/schedule"
	"repro/internal/succinct"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Mode selects the index organisation of the broadcast program.
type Mode int

const (
	// OneTierMode embeds document offsets in the index nodes.
	OneTierMode Mode = iota + 1
	// TwoTierMode splits offsets into the second tier (the contribution).
	TwoTierMode
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case OneTierMode:
		return "one-tier"
	case TwoTierMode:
		return "two-tier"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DocPlacement locates one document inside a cycle's document section.
type DocPlacement struct {
	ID xmldoc.DocID
	// Offset is the byte offset within the document section (with K > 1
	// channels: within the carrying channel's document section).
	Offset int
	// Size is the document's serialised size.
	Size int
	// Channel is the broadcast channel carrying the document: 0 in
	// single-channel layout, 1..K-1 (a data channel) otherwise.
	Channel int
}

// ChannelRole distinguishes the index channel from the data channels.
type ChannelRole uint8

const (
	// IndexChannelRole carries the cycle head, channel directory and the
	// replicated first tier.
	IndexChannelRole ChannelRole = iota
	// DataChannelRole carries a second-tier stripe and its documents.
	DataChannelRole
)

// String names the role.
func (r ChannelRole) String() string {
	switch r {
	case IndexChannelRole:
		return "index"
	case DataChannelRole:
		return "data"
	default:
		return fmt.Sprintf("ChannelRole(%d)", int(r))
	}
}

// ChannelLayout is one channel's share of a multichannel cycle.
type ChannelLayout struct {
	// ID is the channel index (0 = index channel).
	ID int
	// Role is the channel's function.
	Role ChannelRole
	// SecondTierBytes is the channel's second-tier stripe size (data
	// channels only).
	SecondTierBytes int
	// DocBytes is the channel's document-section size (data channels only).
	DocBytes int
	// Bytes is the channel's total payload this cycle: head + directory +
	// index on the index channel, second tier + documents on data channels.
	Bytes int
	// Docs are the documents carried by this channel, in broadcast order,
	// with Offset relative to the channel's document section. Nil on the
	// index channel.
	Docs []DocPlacement
}

// Cycle is one fully laid-out broadcast cycle plus the pipeline inputs it was
// planned from. It is the single plan type shared by the assembly engine, the
// discrete-event simulator and the networked server.
type Cycle struct {
	// Number is the cycle's sequence number, starting at 0.
	Number int64
	// Start is the absolute byte-time at which the cycle begins.
	Start int64
	// Mode is the index organisation.
	Mode Mode
	// Encoding is the first tier's wire layout (node pointers or the
	// succinct balanced-parentheses form).
	Encoding core.IndexEncoding

	// Index is the pruned index broadcast this cycle (first tier in
	// two-tier mode, the full one-tier index otherwise).
	Index *core.Index
	// Packing is the index's packet layout.
	Packing *core.Packing
	// Catalog is the label dictionary for the index.
	Catalog *wire.Catalog

	// HeadBytes is the size of the cycle head (catalog, root labels,
	// segment lengths).
	HeadBytes int
	// IndexBytes is the on-air size of the packed index (L_I).
	IndexBytes int
	// TierBytes is the raw byte length of the succinct tier blob; zero
	// under node encoding (where the stream length lives in Packing).
	TierBytes int
	// SecondTierBytes is the size of the offset list (L_O); zero in
	// one-tier mode. With K > 1 channels it is the sum of the per-channel
	// stripes.
	SecondTierBytes int
	// DirBytes is the size of the channel directory; zero in
	// single-channel layout.
	DirBytes int
	// DocBytes is the size of the document section (L_D), summed across
	// channels when K > 1.
	DocBytes int

	// Docs are the scheduled documents in broadcast order.
	Docs []DocPlacement
	// Offsets maps each scheduled document to its offset in the document
	// section (its channel's document section when K > 1).
	Offsets wire.DocOffsets

	// HotDocs is the index channel's replication set (multichannel cycles
	// only): a prefix of the plan in delivery order — the most-demanded
	// documents under the on-demand policies — appended to the channel's
	// repetition unit, [head][directory][first tier][hot docs], and re-aired
	// with it through the cycle's slack. Offset is the byte offset within the
	// unit's hot section, Channel is 0. Replication is air-time only: the
	// wire stream carries each hot document once, on its data channel, where
	// it also airs normally.
	HotDocs []DocPlacement
	// HotBytes is the byte length of the repetition unit's hot section.
	HotBytes int

	// Channels is the per-channel layout; nil in single-channel cycles.
	Channels []ChannelLayout

	// Queries are the distinct pending queries, in first-seen order; the
	// index was pruned to exactly this set (unless Degraded).
	Queries []xpath.Path
	// NumPending is the number of pending requests the plan drew from.
	NumPending int
	// Degraded reports that PCI pruning blew the build budget and the
	// cycle carries the unpruned CI instead (a strict superset of the
	// PCI; clients decode it unchanged).
	Degraded bool
}

// IndexStreamBytes is the byte length of the cycle's index segment in the
// wire stream: the packed node stream under node encoding, the succinct
// tier blob otherwise. Encoders and decoders slice the cycle's data apart
// at this boundary.
func (c *Cycle) IndexStreamBytes() int {
	if c.Encoding == core.EncodingSuccinct {
		return c.TierBytes
	}
	return c.Packing.StreamBytes
}

// TotalBytes is the cycle's aggregate payload across all channels.
func (c *Cycle) TotalBytes() int {
	return c.HeadBytes + c.IndexBytes + c.DirBytes + c.SecondTierBytes + c.DocBytes
}

// ChannelCount reports how many parallel channels the cycle occupies.
func (c *Cycle) ChannelCount() int {
	if len(c.Channels) == 0 {
		return 1
	}
	return len(c.Channels)
}

// channelLead is the guard prefix of a multichannel cycle, in channel bytes:
// data channels stay idle while the index channel airs [head][directory], so
// every listening client holds the full placement map before the first
// document byte airs (no placement can be missed by a returning client).
func (c *Cycle) channelLead() int { return c.HeadBytes + c.DirBytes }

// Duration is the cycle's on-air length in aggregate byte-time. Each of K
// channels runs at 1/K of the aggregate bandwidth, so one channel byte costs
// K byte-ticks; after the guard prefix the cycle lasts until its slowest
// channel drains (the first tier on channel 0, the heaviest stripe
// otherwise). Single-channel cycles last exactly TotalBytes.
func (c *Cycle) Duration() int64 {
	if len(c.Channels) == 0 {
		return int64(c.TotalBytes())
	}
	return int64(len(c.Channels)) * int64(c.channelLead()+c.maxTail())
}

// maxTail is the heaviest channel payload past the guard prefix, in channel
// bytes: the first tier on channel 0, or the heaviest data stripe.
func (c *Cycle) maxTail() int {
	t := c.IndexBytes
	for i := 1; i < len(c.Channels); i++ {
		if c.Channels[i].Bytes > t {
			t = c.Channels[i].Bytes
		}
	}
	return t
}

// indexUnit is the index channel's repetition unit in channel bytes:
// [head][directory][first tier][hot docs].
func (c *Cycle) indexUnit() int {
	return c.channelLead() + c.IndexBytes + c.HotBytes
}

// IndexRepetitions is the number of complete copies of the index channel's
// repetition unit — [head][directory][first tier][hot docs] — aired per
// multichannel cycle. The cycle lasts until its slowest channel drains;
// instead of idling through that slack, channel 0 re-airs the unit back to
// back, so a client tuning in mid-cycle syncs at the next repetition instead
// of waiting for the next cycle (the "fast initial probe" a dedicated index
// channel buys) and finds the hottest documents right behind the tier. The
// wire stream carries one copy — repetitions, like channel padding, exist
// only in the air-time model (a reliable transport never re-sends them).
// Single-channel cycles air the index exactly once.
func (c *Cycle) IndexRepetitions() int {
	if len(c.Channels) <= 1 {
		return 1
	}
	unit := c.indexUnit()
	if unit <= 0 {
		return 1
	}
	if r := (c.channelLead() + c.maxTail()) / unit; r > 1 {
		return r
	}
	return 1
}

// ChannelRepetitions is the number of complete copies of a channel's payload
// unit aired per multichannel cycle. Like the index channel (whose unit is
// [head][directory][first tier]), a data channel lighter than the cycle's
// heaviest replays its [second-tier stripe][documents] unit back to back
// through the slack instead of idling — the broadcast-disk effect: documents
// striped onto a light channel repeat several times per cycle, cutting the
// expected wait for the skewed hot set far below one cycle. Repetitions are
// air-time only; the wire stream carries one copy per cycle.
func (c *Cycle) ChannelRepetitions(ch int) int {
	if len(c.Channels) <= 1 {
		return 1
	}
	if ch == 0 {
		return c.IndexRepetitions()
	}
	unit := c.Channels[ch].Bytes
	if unit <= 0 {
		return 1
	}
	if r := c.maxTail() / unit; r > 1 {
		return r
	}
	return 1
}

// SyncAfter reports when a client tuning in at absolute byte-time t next
// holds the channel directory and first tier: the tier's end within the
// earliest index repetition starting at or after t (the repetition's hot
// section airs immediately afterwards, so a synced client can catch it). ok
// is false when no complete repetition remains in the cycle (the client must
// wait for the next cycle head) and on single-channel cycles, whose serial
// index has already flown past any mid-cycle joiner.
func (c *Cycle) SyncAfter(t int64) (sync int64, ok bool) {
	k := int64(len(c.Channels))
	if k <= 1 {
		return 0, false
	}
	unit := int64(c.indexUnit())
	if unit <= 0 {
		return 0, false
	}
	r := int64(0)
	if t > c.Start {
		// ceil((t-Start)/(k*unit)): first repetition starting at or after t.
		r = (t - c.Start + k*unit - 1) / (k * unit)
	}
	if r >= int64(c.IndexRepetitions()) {
		return 0, false
	}
	return c.Start + k*(r*unit+int64(c.channelLead()+c.IndexBytes)), true
}

// IndexStart is the absolute byte-time of the index segment. In multichannel
// cycles the index channel carries [head][directory][first tier], so the
// segment starts after the directory, at index-channel pace (K aggregate
// byte-ticks per channel byte).
func (c *Cycle) IndexStart() int64 {
	if k := len(c.Channels); k > 1 {
		return c.Start + int64(k*(c.HeadBytes+c.DirBytes))
	}
	return c.Start + int64(c.HeadBytes)
}

// DirStart is the absolute byte-time of the channel directory (multichannel
// cycles only; it equals IndexStart otherwise, since the directory is empty).
func (c *Cycle) DirStart() int64 {
	if k := len(c.Channels); k > 1 {
		return c.Start + int64(k*c.HeadBytes)
	}
	return c.Start + int64(c.HeadBytes)
}

// SecondTierStart is the absolute byte-time of the second-tier segment.
// Meaningful in single-channel cycles only (each data channel carries its own
// stripe at its own pace otherwise).
func (c *Cycle) SecondTierStart() int64 { return c.Start + int64(c.HeadBytes+c.IndexBytes) }

// DocStart is the absolute byte-time of the document section in
// single-channel cycles.
func (c *Cycle) DocStart() int64 {
	return c.Start + int64(c.HeadBytes+c.IndexBytes+c.SecondTierBytes)
}

// End is the absolute byte-time one past the cycle.
func (c *Cycle) End() int64 { return c.Start + c.Duration() }

// Placement returns the placement of a document in this cycle, if scheduled.
func (c *Cycle) Placement(id xmldoc.DocID) (DocPlacement, bool) {
	for _, p := range c.Docs {
		if p.ID == id {
			return p, true
		}
	}
	return DocPlacement{}, false
}

// ChannelStreamOffset is a document's byte offset within its carrying
// channel's full cycle stream (second tier included) — the offset the channel
// directory broadcasts.
func (c *Cycle) ChannelStreamOffset(p DocPlacement) int {
	if len(c.Channels) == 0 {
		return p.Offset
	}
	return c.Channels[p.Channel].SecondTierBytes + p.Offset
}

// DirEnd is the absolute byte-time the channel directory finishes airing —
// the earliest moment a returning client can start receiving documents.
func (c *Cycle) DirEnd() int64 {
	return c.Start + int64(len(c.Channels))*int64(c.channelLead())
}

// IndexEnd is the absolute byte-time the first tier finishes airing on the
// index channel — the earliest moment a first-cycle client (which must hear
// the tier before it knows its result documents) can start receiving them.
func (c *Cycle) IndexEnd() int64 {
	return c.Start + int64(len(c.Channels))*int64(c.channelLead()+c.IndexBytes)
}

// DocAirInterval is the absolute byte-time interval during which a
// placement's first airing is on air. In multichannel cycles the carrying
// channel airs one byte per K aggregate byte-ticks, starting after the guard
// prefix; a single-tuner client receives the document iff it tunes the
// channel for this whole interval. Light channels replay their unit
// (ChannelRepetitions); later airings start one wall-clock unit apart.
func (c *Cycle) DocAirInterval(p DocPlacement) (start, end int64) {
	if len(c.Channels) == 0 {
		start = c.DocStart() + int64(p.Offset)
		return start, start + int64(p.Size)
	}
	k := int64(len(c.Channels))
	off := int64(c.channelLead() + c.ChannelStreamOffset(p))
	return c.Start + k*off, c.Start + k*(off+int64(p.Size))
}

// Commitment is one document a single-tuner client is committed to receive,
// with the absolute byte-time interval of the chosen airing (which may be a
// later replay of the carrying channel's unit, not its first).
type Commitment struct {
	DocPlacement
	Start, End int64
}

// Receivable selects the wanted documents a single-tuner client can receive
// from this cycle: every airing (replays included) of every wanted document
// is a candidate interval, committed greedily by earliest end (ties to
// earliest start, then lowest doc ID), skipping intervals that overlap a
// commitment or that start before the client holds the directory — DirEnd
// for a returning client, IndexEnd for one still reading the first tier
// (firstCycle). On a single-channel cycle every wanted document is
// receivable, since the serial layout airs all documents after the index.
//
// Both the simulator's client model and the networked server's request
// retirement use this commitment, so the two drivers' pending-set evolution
// stays identical: a document no single-tuner client could have caught is
// rescheduled by the server instead of being counted as delivered.
func (c *Cycle) Receivable(want map[xmldoc.DocID]struct{}, firstCycle bool) []DocPlacement {
	cms := c.Commitments(want, firstCycle)
	out := make([]DocPlacement, len(cms))
	for i, cm := range cms {
		out[i] = cm.DocPlacement
	}
	return out
}

// Commitments is Receivable returning the chosen airing intervals.
func (c *Cycle) Commitments(want map[xmldoc.DocID]struct{}, firstCycle bool) []Commitment {
	if len(c.Channels) <= 1 {
		return c.commitSerial(want)
	}
	ready := c.DirEnd()
	if firstCycle {
		ready = c.IndexEnd()
	}
	return c.commit(want, ready, nil)
}

// AirInterval is one absolute byte-time span a tuner is busy receiving.
type AirInterval struct {
	Start, End int64
}

// CommitmentsFrom is Commitments with an explicit ready time and a set of
// intervals during which the tuner is already busy (e.g. executing the
// server's commitment): the greedy earliest-end selection runs over wanted
// doc airings starting at or after ready that do not overlap busy or an
// earlier commitment. It lets a client that synced mid-cycle on an index
// repetition catch documents opportunistically beyond the server's
// conservative Receivable commitment.
func (c *Cycle) CommitmentsFrom(want map[xmldoc.DocID]struct{}, ready int64, busy []AirInterval) []Commitment {
	if len(c.Channels) <= 1 {
		return c.commitSerial(want)
	}
	return c.commit(want, ready, busy)
}

// commitSerial covers the single-channel case: a serial program airs every
// document after the index, so all wanted documents are receivable in plan
// order.
func (c *Cycle) commitSerial(want map[xmldoc.DocID]struct{}) []Commitment {
	out := make([]Commitment, 0, len(want))
	for _, p := range c.Docs {
		if _, ok := want[p.ID]; ok {
			start, end := c.DocAirInterval(p)
			out = append(out, Commitment{p, start, end})
		}
	}
	return out
}

// commit runs the greedy earliest-end interval selection shared by
// Commitments and CommitmentsFrom, over every airing of every wanted
// document: its data-channel airing (plus replays, if the channel is light
// enough to replay its unit) and, for the hot set, every index-channel
// repetition's copy, all starting at or after ready.
func (c *Cycle) commit(want map[xmldoc.DocID]struct{}, ready int64, busy []AirInterval) []Commitment {
	k := int64(len(c.Channels))
	cand := make([]Commitment, 0, len(want))
	addAirings := func(p DocPlacement, s0, unit, reps int64) {
		r := int64(0)
		if ready > s0 && unit > 0 {
			// First airing starting at or after ready.
			r = (ready - s0 + unit - 1) / unit
		}
		for ; r < reps; r++ {
			start := s0 + r*unit
			if start < ready {
				break // unit == 0 degenerate guard
			}
			cand = append(cand, Commitment{p, start, start + int64(p.Size)*k})
		}
	}
	for _, p := range c.Docs {
		if _, ok := want[p.ID]; !ok {
			continue
		}
		s0, _ := c.DocAirInterval(p)
		unit := k * int64(c.Channels[p.Channel].Bytes)
		addAirings(p, s0, unit, int64(c.ChannelRepetitions(p.Channel)))
	}
	hotStart := int64(c.channelLead() + c.IndexBytes)
	for _, p := range c.HotDocs {
		if _, ok := want[p.ID]; !ok {
			continue
		}
		s0 := c.Start + k*(hotStart+int64(p.Offset))
		addAirings(p, s0, k*int64(c.indexUnit()), int64(c.IndexRepetitions()))
	}
	sort.Slice(cand, func(i, j int) bool {
		if cand[i].End != cand[j].End {
			return cand[i].End < cand[j].End
		}
		if cand[i].Start != cand[j].Start {
			return cand[i].Start < cand[j].Start
		}
		return cand[i].ID < cand[j].ID
	})
	committed := make([]AirInterval, 0, len(busy)+4)
	committed = append(committed, busy...)
	taken := make(map[xmldoc.DocID]struct{}, len(want))
	var out []Commitment
	for _, w := range cand {
		if _, dup := taken[w.ID]; dup {
			continue // an earlier airing of this doc is already committed
		}
		conflict := false
		for _, cm := range committed {
			if w.Start < cm.End && cm.Start < w.End {
				conflict = true
				break
			}
		}
		if conflict {
			continue // single tuner: busy on another channel
		}
		committed = append(committed, AirInterval{w.Start, w.End})
		taken[w.ID] = struct{}{}
		out = append(out, w)
	}
	return out
}

// ChannelDir builds the channel-directory entries for the cycle's plan
// (multichannel cycles only).
func (c *Cycle) ChannelDir() []wire.ChannelDirEntry {
	if len(c.Channels) == 0 {
		return nil
	}
	entries := make([]wire.ChannelDirEntry, 0, len(c.Docs))
	for _, p := range c.Docs {
		entries = append(entries, wire.ChannelDirEntry{
			Doc:     p.ID,
			Channel: uint8(p.Channel),
			Offset:  uint64(c.ChannelStreamOffset(p)),
		})
	}
	return entries
}

// Builder assembles cycles over a document collection. The collection is
// dynamic: documents can be added and removed between cycles (the merged
// DataGuide is maintained incrementally) and the CI is rebuilt lazily from
// the maintained forest. A Builder is not safe for concurrent use; callers
// broadcasting from multiple goroutines (e.g. netcast.Server) serialise
// access.
type Builder struct {
	model    core.SizeModel
	mode     Mode
	encoding core.IndexEncoding
	channels int // 1 = single serial stream; K > 1 = index channel + K-1 data channels

	docs   map[xmldoc.DocID]*xmldoc.Document
	forest *dataguide.Forest

	// snapshot caches an immutable Collection view over docs; ci caches
	// the CI built from forest. Both invalidate on mutation.
	snapshot *xmldoc.Collection
	ci       *core.Index
}

// NewBuilder prepares a builder over the initial collection.
func NewBuilder(c *xmldoc.Collection, m core.SizeModel, mode Mode) (*Builder, error) {
	if mode != OneTierMode && mode != TwoTierMode {
		return nil, fmt.Errorf("broadcast: invalid mode %d", mode)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := &Builder{
		model:    m,
		mode:     mode,
		channels: 1,
		docs:     make(map[xmldoc.DocID]*xmldoc.Document, c.Len()),
		forest:   dataguide.MergeParallel(c, 0),
	}
	for _, d := range c.Docs() {
		b.docs[d.ID] = d
	}
	b.snapshot = c
	return b, nil
}

// AddDocument admits a new document to the collection; it becomes indexable
// and schedulable from the next cycle.
func (b *Builder) AddDocument(d *xmldoc.Document) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("broadcast: cannot add an empty document")
	}
	if _, dup := b.docs[d.ID]; dup {
		return fmt.Errorf("broadcast: document %d already present", d.ID)
	}
	b.forest.Add(d)
	b.docs[d.ID] = d
	b.invalidate()
	return nil
}

// RemoveDocument retires a document from the collection.
func (b *Builder) RemoveDocument(id xmldoc.DocID) error {
	d, ok := b.docs[id]
	if !ok {
		return fmt.Errorf("broadcast: document %d not present", id)
	}
	if err := b.forest.Remove(d); err != nil {
		return fmt.Errorf("broadcast: %w", err)
	}
	delete(b.docs, id)
	b.invalidate()
	return nil
}

func (b *Builder) invalidate() {
	b.snapshot = nil
	b.ci = nil
}

// Collection returns an immutable snapshot view of the current documents.
func (b *Builder) Collection() (*xmldoc.Collection, error) {
	if b.snapshot != nil {
		return b.snapshot, nil
	}
	ids := make([]int, 0, len(b.docs))
	for id := range b.docs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	docs := make([]*xmldoc.Document, 0, len(ids))
	for _, id := range ids {
		docs = append(docs, b.docs[xmldoc.DocID(id)])
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		return nil, err
	}
	b.snapshot = c
	return c, nil
}

// DocByID returns a current document, or nil.
func (b *Builder) DocByID(id xmldoc.DocID) *xmldoc.Document { return b.docs[id] }

// NumDocs reports the current collection size.
func (b *Builder) NumDocs() int { return len(b.docs) }

// CI exposes the full compact index over the current collection.
func (b *Builder) CI() *core.Index {
	if b.ci == nil {
		// BuildCIFromForest errors only on an invalid model, which the
		// constructor validated.
		b.ci, _ = core.BuildCIFromForest(b.forest, b.model)
	}
	return b.ci
}

// Mode reports the builder's index organisation.
func (b *Builder) Mode() Mode { return b.mode }

// SetChannels selects the cycle layout: 1 (the default) builds the serial
// single-channel program; k > 1 builds one index channel plus k-1 data
// channels. Multichannel layout requires TwoTierMode, and k-1 data channels
// must fit the directory's uint8 channel field.
func (b *Builder) SetChannels(k int) error {
	if k < 1 {
		return fmt.Errorf("broadcast: channel count %d < 1", k)
	}
	if k > 256 {
		return fmt.Errorf("broadcast: channel count %d exceeds 256", k)
	}
	if k > 1 && b.mode != TwoTierMode {
		return fmt.Errorf("broadcast: multichannel layout requires two-tier mode")
	}
	b.channels = k
	return nil
}

// Channels reports the configured channel count.
func (b *Builder) Channels() int { return b.channels }

// SetEncoding selects the first tier's wire layout. The succinct encoding
// requires TwoTierMode: the one-tier index embeds per-node document
// offsets, which the balanced-parentheses form does not carry.
func (b *Builder) SetEncoding(e core.IndexEncoding) error {
	switch e {
	case core.EncodingNode:
	case core.EncodingSuccinct:
		if b.mode != TwoTierMode {
			return fmt.Errorf("broadcast: succinct encoding requires two-tier mode")
		}
	default:
		return fmt.Errorf("broadcast: invalid index encoding %d", int(e))
	}
	b.encoding = e
	return nil
}

// Encoding reports the configured first-tier wire layout.
func (b *Builder) Encoding() core.IndexEncoding { return b.encoding }

// BuildCycle lays out one cycle: the CI is pruned to the pending query set,
// packed under the mode's tier, and the scheduled documents are placed after
// it. docPlan must not contain duplicates or unknown documents.
func (b *Builder) BuildCycle(number, start int64, pending []xpath.Path, docPlan []xmldoc.DocID) (*Cycle, error) {
	pci, _, err := b.CI().Prune(pending)
	if err != nil {
		return nil, fmt.Errorf("broadcast: prune: %w", err)
	}
	return b.BuildCycleWithIndex(number, start, pci, docPlan)
}

// BuildCycleWithIndex lays out one cycle around an already-chosen air index
// (a pruned PCI, or the full CI when a build deadline forced a degraded
// cycle — the CI is a strict superset of any PCI, so clients decode either).
// docPlan must not contain duplicates or unknown documents.
func (b *Builder) BuildCycleWithIndex(number, start int64, index *core.Index, docPlan []xmldoc.DocID) (*Cycle, error) {
	cycle := &Cycle{
		Number:   number,
		Start:    start,
		Mode:     b.mode,
		Encoding: b.encoding,
		Index:    index,
		Catalog:  wire.BuildCatalog(index),
		Offsets:  make(wire.DocOffsets, len(docPlan)),
	}

	// Document section layout.
	seen := make(map[xmldoc.DocID]struct{}, len(docPlan))
	for _, id := range docPlan {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("broadcast: duplicate document %d in plan", id)
		}
		seen[id] = struct{}{}
		if b.docs[id] == nil {
			return nil, fmt.Errorf("broadcast: unknown document %d in plan", id)
		}
	}
	if b.channels > 1 {
		b.layoutChannels(cycle, docPlan)
	} else {
		offset := 0
		for _, id := range docPlan {
			doc := b.docs[id]
			cycle.Docs = append(cycle.Docs, DocPlacement{ID: id, Offset: offset, Size: doc.Size()})
			cycle.Offsets[id] = uint64(offset)
			offset += doc.Size()
		}
		cycle.DocBytes = offset
	}

	// Index segment.
	tier := core.OneTier
	if b.mode == TwoTierMode {
		tier = core.FirstTier
	}
	cycle.Packing = index.Pack(tier)
	if b.encoding == core.EncodingSuccinct {
		sz, err := succinct.TierSize(index, cycle.Catalog.Len(), b.model)
		if err != nil {
			return nil, fmt.Errorf("broadcast: size succinct tier: %w", err)
		}
		cycle.TierBytes = sz
		pb := b.model.PacketBytes
		cycle.IndexBytes = (sz + pb - 1) / pb * pb
	} else {
		cycle.IndexBytes = cycle.Packing.AirBytes()
	}
	if b.mode == TwoTierMode && b.channels == 1 {
		cycle.SecondTierBytes = wire.SecondTierSize(len(docPlan), b.model)
	}

	// Head: encoded catalog + root labels + three segment lengths.
	catBytes, err := cycle.Catalog.Encode()
	if err != nil {
		return nil, fmt.Errorf("broadcast: encode catalog: %w", err)
	}
	head := len(catBytes) + 3*b.model.PointerBytes
	for _, l := range wire.RootLabels(index) {
		head += 1 + len(l)
	}
	cycle.HeadBytes = head
	if b.channels > 1 {
		cycle.Channels[0].Bytes = cycle.HeadBytes + cycle.DirBytes + cycle.IndexBytes
		selectHotDocs(cycle)
	}
	return cycle, nil
}

// hotRepTarget is the minimum number of index-channel repetitions preserved
// when hot documents extend the repetition unit: the hot budget is the slack
// left in a quarter of the channel's span after the guard and tier, so the
// unit — and with it every hot document — still airs at least four times per
// cycle (the cycle head plus three mid-cycle sync points). A higher target
// means more frequent sync points but a smaller hot section; four balances
// the two for the skewed workloads the policy layer produces.
const hotRepTarget = 4

// selectHotDocs appends the plan's hottest prefix to the index channel's
// repetition unit. The plan arrives in the scheduler's delivery order —
// demand-ranked under the on-demand policies — so the prefix is the cycle's
// most-requested content; replicating it beside the tier serves the skewed
// head of demand within one repetition of a client's sync instead of one
// cycle. The selection only consumes slack the index channel would otherwise
// idle through (the cycle's duration is pinned by its heaviest data stripe),
// so it never lengthens the cycle.
func selectHotDocs(cycle *Cycle) {
	span := cycle.channelLead() + cycle.maxTail()
	budget := span/hotRepTarget - cycle.channelLead() - cycle.IndexBytes
	off := 0
	for _, p := range cycle.Docs {
		if off+p.Size > budget {
			break
		}
		cycle.HotDocs = append(cycle.HotDocs, DocPlacement{ID: p.ID, Offset: off, Size: p.Size, Channel: 0})
		off += p.Size
	}
	cycle.HotBytes = off
}

// layoutChannels stripes a validated plan across the builder's data channels
// and fills the cycle's per-channel layout. The index channel's Bytes is
// completed by the caller once head and index sizes are known.
func (b *Builder) layoutChannels(cycle *Cycle, docPlan []xmldoc.DocID) {
	k := b.channels
	stripes := schedule.Stripe(docPlan, func(d xmldoc.DocID) int { return b.docs[d].Size() }, k-1)
	cycle.Channels = make([]ChannelLayout, k)
	cycle.Channels[0] = ChannelLayout{ID: 0, Role: IndexChannelRole}
	cycle.DirBytes = wire.ChannelDirSize(len(docPlan), b.model)

	// Per-channel placements, channel-local offsets.
	byID := make(map[xmldoc.DocID]DocPlacement, len(docPlan))
	for ci, stripe := range stripes {
		ch := ci + 1
		lay := ChannelLayout{ID: ch, Role: DataChannelRole}
		lay.SecondTierBytes = wire.SecondTierSize(len(stripe), b.model)
		offset := 0
		for _, id := range stripe {
			p := DocPlacement{ID: id, Offset: offset, Size: b.docs[id].Size(), Channel: ch}
			lay.Docs = append(lay.Docs, p)
			byID[id] = p
			cycle.Offsets[id] = uint64(offset)
			offset += p.Size
		}
		lay.DocBytes = offset
		lay.Bytes = lay.SecondTierBytes + lay.DocBytes
		cycle.Channels[ch] = lay
		cycle.SecondTierBytes += lay.SecondTierBytes
		cycle.DocBytes += offset
	}

	// Aggregate view keeps the scheduler's broadcast order.
	for _, id := range docPlan {
		cycle.Docs = append(cycle.Docs, byID[id])
	}
}

// Encode produces the real byte stream of the cycle's index and second-tier
// segments (the decodable air image used by examples and round-trip tests).
// It returns the index segment and, in two-tier mode, the second-tier
// segment.
func (b *Builder) Encode(c *Cycle) (indexSeg, secondTierSeg []byte, err error) {
	buf, err := b.AppendEncoded(nil, c)
	if err != nil {
		return nil, nil, err
	}
	cut := c.IndexStreamBytes()
	indexSeg = buf[:cut:cut]
	if len(buf) > cut {
		secondTierSeg = buf[cut:]
	}
	return indexSeg, secondTierSeg, nil
}

// AppendEncoded appends the cycle's index segment followed by, in two-tier
// mode, its second-tier segment to dst and returns the extended slice. The
// index segment occupies exactly c.IndexStreamBytes(); callers reusing
// pooled buffers slice the segments apart at that boundary. Single-channel
// cycles only; multichannel cycles encode through AppendEncodedChannels.
func (b *Builder) AppendEncoded(dst []byte, c *Cycle) ([]byte, error) {
	if len(c.Channels) > 1 {
		return nil, fmt.Errorf("broadcast: AppendEncoded on a %d-channel cycle", len(c.Channels))
	}
	var err error
	if c.Encoding == core.EncodingSuccinct {
		dst, err = succinct.AppendTier(dst, c.Index, c.Catalog, b.model)
	} else {
		var offs wire.DocOffsets
		if b.mode == OneTierMode {
			offs = c.Offsets
		}
		dst, err = wire.AppendIndex(dst, c.Index, c.Packing, c.Catalog, offs)
	}
	if err != nil {
		return nil, fmt.Errorf("broadcast: encode index: %w", err)
	}
	if b.mode == TwoTierMode {
		entries := make([]wire.SecondTierEntry, 0, len(c.Docs))
		for _, p := range c.Docs {
			entries = append(entries, wire.SecondTierEntry{Doc: p.ID, Offset: uint64(p.Offset)})
		}
		dst, err = wire.AppendSecondTier(dst, entries, b.model)
		if err != nil {
			return nil, fmt.Errorf("broadcast: encode second tier: %w", err)
		}
	}
	return dst, nil
}

// AppendEncodedChannels appends a multichannel cycle's index-and-offset
// segments to dst: the packed first tier, the channel directory, then each
// data channel's second-tier stripe. cuts holds the cumulative end offset of
// every appended segment (index, directory, stripe 1, ..., stripe K-1)
// relative to the start of this cycle's data, so callers slicing a pooled
// buffer can take the segments apart without re-measuring them.
func (b *Builder) AppendEncodedChannels(dst []byte, c *Cycle) (_ []byte, cuts []int, err error) {
	if len(c.Channels) < 2 {
		return nil, nil, fmt.Errorf("broadcast: AppendEncodedChannels on a single-channel cycle")
	}
	base := len(dst)
	cuts = make([]int, 0, 1+len(c.Channels))
	if c.Encoding == core.EncodingSuccinct {
		dst, err = succinct.AppendTier(dst, c.Index, c.Catalog, b.model)
	} else {
		dst, err = wire.AppendIndex(dst, c.Index, c.Packing, c.Catalog, nil)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("broadcast: encode index: %w", err)
	}
	cuts = append(cuts, len(dst)-base)
	dst, err = wire.AppendChannelDir(dst, c.ChannelDir(), b.model)
	if err != nil {
		return nil, nil, fmt.Errorf("broadcast: encode channel dir: %w", err)
	}
	cuts = append(cuts, len(dst)-base)
	for _, lay := range c.Channels[1:] {
		entries := make([]wire.SecondTierEntry, 0, len(lay.Docs))
		for _, p := range lay.Docs {
			entries = append(entries, wire.SecondTierEntry{Doc: p.ID, Offset: uint64(p.Offset)})
		}
		dst, err = wire.AppendSecondTier(dst, entries, b.model)
		if err != nil {
			return nil, nil, fmt.Errorf("broadcast: encode second tier (channel %d): %w", lay.ID, err)
		}
		cuts = append(cuts, len(dst)-base)
	}
	return dst, cuts, nil
}
