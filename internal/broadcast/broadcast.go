// Package broadcast assembles broadcast cycles: the per-cycle air index
// (PCI), the second-tier offset list under the two-tier organisation, and the
// scheduled documents, following the program layout of §3.4 (Fig. 8):
//
//	one-tier:  [head][one-tier index with embedded offsets][documents]
//	two-tier:  [head][first-tier index][second-tier offsets][documents]
//
// The head carries the label catalog, root labels and segment lengths. All
// segment sizes are real encodable bytes (package wire), so the simulator's
// byte clock matches what a receiver would download.
package broadcast

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/dataguide"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

// Mode selects the index organisation of the broadcast program.
type Mode int

const (
	// OneTierMode embeds document offsets in the index nodes.
	OneTierMode Mode = iota + 1
	// TwoTierMode splits offsets into the second tier (the contribution).
	TwoTierMode
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case OneTierMode:
		return "one-tier"
	case TwoTierMode:
		return "two-tier"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// DocPlacement locates one document inside a cycle's document section.
type DocPlacement struct {
	ID xmldoc.DocID
	// Offset is the byte offset within the document section.
	Offset int
	// Size is the document's serialised size.
	Size int
}

// Cycle is one fully laid-out broadcast cycle.
type Cycle struct {
	// Number is the cycle's sequence number, starting at 0.
	Number int64
	// Start is the absolute byte-time at which the cycle begins.
	Start int64
	// Mode is the index organisation.
	Mode Mode

	// Index is the pruned index broadcast this cycle (first tier in
	// two-tier mode, the full one-tier index otherwise).
	Index *core.Index
	// Packing is the index's packet layout.
	Packing *core.Packing
	// Catalog is the label dictionary for the index.
	Catalog *wire.Catalog

	// HeadBytes is the size of the cycle head (catalog, root labels,
	// segment lengths).
	HeadBytes int
	// IndexBytes is the on-air size of the packed index (L_I).
	IndexBytes int
	// SecondTierBytes is the size of the offset list (L_O); zero in
	// one-tier mode.
	SecondTierBytes int
	// DocBytes is the size of the document section (L_D).
	DocBytes int

	// Docs are the scheduled documents in broadcast order.
	Docs []DocPlacement
	// Offsets maps each scheduled document to its offset in the document
	// section.
	Offsets wire.DocOffsets
}

// TotalBytes is the full cycle length on air.
func (c *Cycle) TotalBytes() int {
	return c.HeadBytes + c.IndexBytes + c.SecondTierBytes + c.DocBytes
}

// IndexStart is the absolute byte-time of the index segment.
func (c *Cycle) IndexStart() int64 { return c.Start + int64(c.HeadBytes) }

// SecondTierStart is the absolute byte-time of the second-tier segment.
func (c *Cycle) SecondTierStart() int64 { return c.IndexStart() + int64(c.IndexBytes) }

// DocStart is the absolute byte-time of the document section.
func (c *Cycle) DocStart() int64 { return c.SecondTierStart() + int64(c.SecondTierBytes) }

// End is the absolute byte-time one past the cycle.
func (c *Cycle) End() int64 { return c.Start + int64(c.TotalBytes()) }

// Placement returns the placement of a document in this cycle, if scheduled.
func (c *Cycle) Placement(id xmldoc.DocID) (DocPlacement, bool) {
	for _, p := range c.Docs {
		if p.ID == id {
			return p, true
		}
	}
	return DocPlacement{}, false
}

// Builder assembles cycles over a document collection. The collection is
// dynamic: documents can be added and removed between cycles (the merged
// DataGuide is maintained incrementally) and the CI is rebuilt lazily from
// the maintained forest. A Builder is not safe for concurrent use; callers
// broadcasting from multiple goroutines (e.g. netcast.Server) serialise
// access.
type Builder struct {
	model core.SizeModel
	mode  Mode

	docs   map[xmldoc.DocID]*xmldoc.Document
	forest *dataguide.Forest

	// snapshot caches an immutable Collection view over docs; ci caches
	// the CI built from forest. Both invalidate on mutation.
	snapshot *xmldoc.Collection
	ci       *core.Index
}

// NewBuilder prepares a builder over the initial collection.
func NewBuilder(c *xmldoc.Collection, m core.SizeModel, mode Mode) (*Builder, error) {
	if mode != OneTierMode && mode != TwoTierMode {
		return nil, fmt.Errorf("broadcast: invalid mode %d", mode)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	b := &Builder{
		model:  m,
		mode:   mode,
		docs:   make(map[xmldoc.DocID]*xmldoc.Document, c.Len()),
		forest: dataguide.MergeParallel(c, 0),
	}
	for _, d := range c.Docs() {
		b.docs[d.ID] = d
	}
	b.snapshot = c
	return b, nil
}

// AddDocument admits a new document to the collection; it becomes indexable
// and schedulable from the next cycle.
func (b *Builder) AddDocument(d *xmldoc.Document) error {
	if d == nil || d.Root == nil {
		return fmt.Errorf("broadcast: cannot add an empty document")
	}
	if _, dup := b.docs[d.ID]; dup {
		return fmt.Errorf("broadcast: document %d already present", d.ID)
	}
	b.forest.Add(d)
	b.docs[d.ID] = d
	b.invalidate()
	return nil
}

// RemoveDocument retires a document from the collection.
func (b *Builder) RemoveDocument(id xmldoc.DocID) error {
	d, ok := b.docs[id]
	if !ok {
		return fmt.Errorf("broadcast: document %d not present", id)
	}
	if err := b.forest.Remove(d); err != nil {
		return fmt.Errorf("broadcast: %w", err)
	}
	delete(b.docs, id)
	b.invalidate()
	return nil
}

func (b *Builder) invalidate() {
	b.snapshot = nil
	b.ci = nil
}

// Collection returns an immutable snapshot view of the current documents.
func (b *Builder) Collection() (*xmldoc.Collection, error) {
	if b.snapshot != nil {
		return b.snapshot, nil
	}
	ids := make([]int, 0, len(b.docs))
	for id := range b.docs {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	docs := make([]*xmldoc.Document, 0, len(ids))
	for _, id := range ids {
		docs = append(docs, b.docs[xmldoc.DocID(id)])
	}
	c, err := xmldoc.NewCollection(docs)
	if err != nil {
		return nil, err
	}
	b.snapshot = c
	return c, nil
}

// DocByID returns a current document, or nil.
func (b *Builder) DocByID(id xmldoc.DocID) *xmldoc.Document { return b.docs[id] }

// NumDocs reports the current collection size.
func (b *Builder) NumDocs() int { return len(b.docs) }

// CI exposes the full compact index over the current collection.
func (b *Builder) CI() *core.Index {
	if b.ci == nil {
		// BuildCIFromForest errors only on an invalid model, which the
		// constructor validated.
		b.ci, _ = core.BuildCIFromForest(b.forest, b.model)
	}
	return b.ci
}

// Mode reports the builder's index organisation.
func (b *Builder) Mode() Mode { return b.mode }

// BuildCycle lays out one cycle: the CI is pruned to the pending query set,
// packed under the mode's tier, and the scheduled documents are placed after
// it. docPlan must not contain duplicates or unknown documents.
func (b *Builder) BuildCycle(number, start int64, pending []xpath.Path, docPlan []xmldoc.DocID) (*Cycle, error) {
	pci, _, err := b.CI().Prune(pending)
	if err != nil {
		return nil, fmt.Errorf("broadcast: prune: %w", err)
	}
	return b.BuildCycleWithIndex(number, start, pci, docPlan)
}

// BuildCycleWithIndex lays out one cycle around an already-chosen air index
// (a pruned PCI, or the full CI when a build deadline forced a degraded
// cycle — the CI is a strict superset of any PCI, so clients decode either).
// docPlan must not contain duplicates or unknown documents.
func (b *Builder) BuildCycleWithIndex(number, start int64, index *core.Index, docPlan []xmldoc.DocID) (*Cycle, error) {
	cycle := &Cycle{
		Number:  number,
		Start:   start,
		Mode:    b.mode,
		Index:   index,
		Catalog: wire.BuildCatalog(index),
		Offsets: make(wire.DocOffsets, len(docPlan)),
	}

	// Document section layout.
	seen := make(map[xmldoc.DocID]struct{}, len(docPlan))
	offset := 0
	for _, id := range docPlan {
		if _, dup := seen[id]; dup {
			return nil, fmt.Errorf("broadcast: duplicate document %d in plan", id)
		}
		seen[id] = struct{}{}
		doc := b.docs[id]
		if doc == nil {
			return nil, fmt.Errorf("broadcast: unknown document %d in plan", id)
		}
		cycle.Docs = append(cycle.Docs, DocPlacement{ID: id, Offset: offset, Size: doc.Size()})
		cycle.Offsets[id] = uint64(offset)
		offset += doc.Size()
	}
	cycle.DocBytes = offset

	// Index segment.
	tier := core.OneTier
	if b.mode == TwoTierMode {
		tier = core.FirstTier
	}
	cycle.Packing = index.Pack(tier)
	cycle.IndexBytes = cycle.Packing.AirBytes()
	if b.mode == TwoTierMode {
		cycle.SecondTierBytes = wire.SecondTierSize(len(docPlan), b.model)
	}

	// Head: encoded catalog + root labels + three segment lengths.
	catBytes, err := cycle.Catalog.Encode()
	if err != nil {
		return nil, fmt.Errorf("broadcast: encode catalog: %w", err)
	}
	head := len(catBytes) + 3*b.model.PointerBytes
	for _, l := range wire.RootLabels(index) {
		head += 1 + len(l)
	}
	cycle.HeadBytes = head
	return cycle, nil
}

// Encode produces the real byte stream of the cycle's index and second-tier
// segments (the decodable air image used by examples and round-trip tests).
// It returns the index segment and, in two-tier mode, the second-tier
// segment.
func (b *Builder) Encode(c *Cycle) (indexSeg, secondTierSeg []byte, err error) {
	buf, err := b.AppendEncoded(nil, c)
	if err != nil {
		return nil, nil, err
	}
	indexSeg = buf[:c.Packing.StreamBytes:c.Packing.StreamBytes]
	if len(buf) > c.Packing.StreamBytes {
		secondTierSeg = buf[c.Packing.StreamBytes:]
	}
	return indexSeg, secondTierSeg, nil
}

// AppendEncoded appends the cycle's index segment followed by, in two-tier
// mode, its second-tier segment to dst and returns the extended slice. The
// index segment occupies exactly c.Packing.StreamBytes; callers reusing
// pooled buffers slice the segments apart at that boundary.
func (b *Builder) AppendEncoded(dst []byte, c *Cycle) ([]byte, error) {
	var offs wire.DocOffsets
	if b.mode == OneTierMode {
		offs = c.Offsets
	}
	dst, err := wire.AppendIndex(dst, c.Index, c.Packing, c.Catalog, offs)
	if err != nil {
		return nil, fmt.Errorf("broadcast: encode index: %w", err)
	}
	if b.mode == TwoTierMode {
		entries := make([]wire.SecondTierEntry, 0, len(c.Docs))
		for _, p := range c.Docs {
			entries = append(entries, wire.SecondTierEntry{Doc: p.ID, Offset: uint64(p.Offset)})
		}
		dst, err = wire.AppendSecondTier(dst, entries, b.model)
		if err != nil {
			return nil, fmt.Errorf("broadcast: encode second tier: %w", err)
		}
	}
	return dst, nil
}
