package broadcast

import (
	"testing"

	"repro/internal/core"
	"repro/internal/wire"
	"repro/internal/xmldoc"
)

// buildMultichannel assembles one K-channel cycle over the whole collection.
func buildMultichannel(t *testing.T, k int) (*Builder, *Cycle) {
	t.Helper()
	c, queries := testSetup(t)
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	if err := b.SetChannels(k); err != nil {
		t.Fatalf("SetChannels(%d): %v", k, err)
	}
	plan := make([]xmldoc.DocID, 0, c.Len())
	for _, d := range c.Docs() {
		plan = append(plan, d.ID)
	}
	cy, err := b.BuildCycle(0, 0, queries[:6], plan)
	if err != nil {
		t.Fatalf("BuildCycle: %v", err)
	}
	return b, cy
}

func TestSetChannelsValidation(t *testing.T) {
	c, _ := testSetup(t)
	for _, tc := range []struct {
		mode Mode
		k    int
	}{
		{TwoTierMode, 0},
		{TwoTierMode, -2},
		{TwoTierMode, 257},
		{OneTierMode, 2},
	} {
		b, err := NewBuilder(c, core.DefaultSizeModel(), tc.mode)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.SetChannels(tc.k); err == nil {
			t.Errorf("SetChannels(%d) on %s accepted", tc.k, tc.mode)
		}
	}
}

func TestMultichannelLayout(t *testing.T) {
	const k = 3
	b, cy := buildMultichannel(t, k)
	m := b.model
	if got := cy.ChannelCount(); got != k {
		t.Fatalf("ChannelCount = %d, want %d", got, k)
	}
	if cy.Channels[0].Role != IndexChannelRole {
		t.Errorf("channel 0 role = %s", cy.Channels[0].Role)
	}
	if want := cy.HeadBytes + cy.DirBytes + cy.IndexBytes; cy.Channels[0].Bytes != want {
		t.Errorf("index channel carries %d bytes, want head+dir+index = %d", cy.Channels[0].Bytes, want)
	}
	if cy.DirBytes != wire.ChannelDirSize(len(cy.Docs), m) {
		t.Errorf("DirBytes = %d, want %d", cy.DirBytes, wire.ChannelDirSize(len(cy.Docs), m))
	}

	// Every planned document is placed on exactly one data channel, with
	// contiguous channel-local offsets, and each data channel's layout sums
	// its stripe.
	totalDocs, totalST, totalDoc := 0, 0, 0
	for ch := 1; ch < k; ch++ {
		lay := cy.Channels[ch]
		if lay.Role != DataChannelRole {
			t.Fatalf("channel %d role = %s", ch, lay.Role)
		}
		if lay.SecondTierBytes != wire.SecondTierSize(len(lay.Docs), m) {
			t.Errorf("channel %d stripe second tier = %d bytes, want %d", ch, lay.SecondTierBytes, wire.SecondTierSize(len(lay.Docs), m))
		}
		off := 0
		for _, p := range lay.Docs {
			if p.Channel != ch {
				t.Errorf("placement %v recorded on wrong channel (layout %d)", p, ch)
			}
			if p.Offset != off {
				t.Errorf("channel %d doc %d at offset %d, want contiguous %d", ch, p.ID, p.Offset, off)
			}
			off += p.Size
		}
		if lay.DocBytes != off {
			t.Errorf("channel %d DocBytes = %d, docs sum to %d", ch, lay.DocBytes, off)
		}
		if lay.Bytes != lay.SecondTierBytes+lay.DocBytes {
			t.Errorf("channel %d Bytes = %d, want %d", ch, lay.Bytes, lay.SecondTierBytes+lay.DocBytes)
		}
		totalDocs += len(lay.Docs)
		totalST += lay.SecondTierBytes
		totalDoc += lay.DocBytes
	}
	if totalDocs != len(cy.Docs) {
		t.Errorf("data channels carry %d docs, plan has %d", totalDocs, len(cy.Docs))
	}
	if cy.SecondTierBytes != totalST {
		t.Errorf("SecondTierBytes = %d, stripes sum to %d", cy.SecondTierBytes, totalST)
	}
	if cy.DocBytes != totalDoc {
		t.Errorf("DocBytes = %d, channel doc sections sum to %d", cy.DocBytes, totalDoc)
	}

	// Duration is K times the heaviest channel tail past the guard prefix.
	maxTail := cy.IndexBytes
	for ch := 1; ch < k; ch++ {
		if cy.Channels[ch].Bytes > maxTail {
			maxTail = cy.Channels[ch].Bytes
		}
	}
	lead := cy.HeadBytes + cy.DirBytes
	if want := int64(k) * int64(lead+maxTail); cy.Duration() != want {
		t.Errorf("Duration = %d, want %d", cy.Duration(), want)
	}
	if cy.End() != cy.Start+cy.Duration() {
		t.Errorf("End = %d, want Start+Duration = %d", cy.End(), cy.Start+cy.Duration())
	}
}

func TestMultichannelAirIntervals(t *testing.T) {
	const k = 4
	_, cy := buildMultichannel(t, k)
	dirEnd := cy.DirEnd()
	for _, p := range cy.Docs {
		start, end := cy.DocAirInterval(p)
		if start < dirEnd {
			t.Errorf("doc %d airs at %d, before the directory guard ends at %d", p.ID, start, dirEnd)
		}
		if end-start != int64(k)*int64(p.Size) {
			t.Errorf("doc %d air interval spans %d, want K*size = %d", p.ID, end-start, int64(k)*int64(p.Size))
		}
		if end > cy.End() {
			t.Errorf("doc %d airs past cycle end (%d > %d)", p.ID, end, cy.End())
		}
	}
	// Intervals on the same channel must not overlap.
	for _, a := range cy.Docs {
		for _, b := range cy.Docs {
			if a.ID >= b.ID || a.Channel != b.Channel {
				continue
			}
			as, ae := cy.DocAirInterval(a)
			bs, be := cy.DocAirInterval(b)
			if as < be && bs < ae {
				t.Errorf("docs %d and %d overlap on channel %d", a.ID, b.ID, a.Channel)
			}
		}
	}
}

func TestMultichannelDirMatchesLayout(t *testing.T) {
	_, cy := buildMultichannel(t, 3)
	dir := cy.ChannelDir()
	if len(dir) != len(cy.Docs) {
		t.Fatalf("dir has %d entries, plan %d docs", len(dir), len(cy.Docs))
	}
	byID := make(map[xmldoc.DocID]DocPlacement)
	for _, p := range cy.Docs {
		byID[p.ID] = p
	}
	for _, e := range dir {
		p, ok := byID[e.Doc]
		if !ok {
			t.Fatalf("dir entry for unplanned doc %d", e.Doc)
		}
		if int(e.Channel) != p.Channel {
			t.Errorf("doc %d: dir channel %d, placement channel %d", e.Doc, e.Channel, p.Channel)
		}
		if int(e.Offset) != cy.ChannelStreamOffset(p) {
			t.Errorf("doc %d: dir offset %d, stream offset %d", e.Doc, e.Offset, cy.ChannelStreamOffset(p))
		}
	}
}

func TestRepetitionsSingleChannel(t *testing.T) {
	c, queries := testSetup(t)
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]xmldoc.DocID, 0, c.Len())
	for _, d := range c.Docs() {
		plan = append(plan, d.ID)
	}
	cy, err := b.BuildCycle(0, 0, queries[:4], plan)
	if err != nil {
		t.Fatal(err)
	}
	if got := cy.IndexRepetitions(); got != 1 {
		t.Errorf("single-channel IndexRepetitions = %d, want 1", got)
	}
	if _, ok := cy.SyncAfter(cy.Start + 1); ok {
		t.Error("single-channel SyncAfter reported a mid-cycle sync point")
	}
	if len(cy.HotDocs) != 0 {
		t.Errorf("single-channel cycle selected %d hot docs", len(cy.HotDocs))
	}
}

func TestChannelRepetitions(t *testing.T) {
	const k = 4
	_, cy := buildMultichannel(t, k)
	lead := cy.HeadBytes + cy.DirBytes
	maxTail := cy.IndexBytes
	for ch := 1; ch < k; ch++ {
		if cy.Channels[ch].Bytes > maxTail {
			maxTail = cy.Channels[ch].Bytes
		}
	}
	unit := lead + cy.IndexBytes + cy.HotBytes
	if want := (lead + maxTail) / unit; cy.IndexRepetitions() != max(want, 1) {
		t.Errorf("IndexRepetitions = %d, want span/unit = %d", cy.IndexRepetitions(), want)
	}
	if cy.ChannelRepetitions(0) != cy.IndexRepetitions() {
		t.Errorf("ChannelRepetitions(0) = %d, want IndexRepetitions %d", cy.ChannelRepetitions(0), cy.IndexRepetitions())
	}
	for ch := 1; ch < k; ch++ {
		want := maxTail / cy.Channels[ch].Bytes
		if want < 1 {
			want = 1
		}
		if got := cy.ChannelRepetitions(ch); got != want {
			t.Errorf("ChannelRepetitions(%d) = %d, want %d", ch, got, want)
		}
		// Every replay of the channel's unit must fit inside the cycle.
		if int64(k)*int64(lead+want*cy.Channels[ch].Bytes) > cy.Duration() {
			t.Errorf("channel %d: %d replays overflow the cycle", ch, want)
		}
	}
}

func TestHotDocsSelection(t *testing.T) {
	const k = 4
	_, cy := buildMultichannel(t, k)
	lead := cy.HeadBytes + cy.DirBytes
	maxTail := cy.IndexBytes
	for ch := 1; ch < k; ch++ {
		if cy.Channels[ch].Bytes > maxTail {
			maxTail = cy.Channels[ch].Bytes
		}
	}
	// The hot budget preserves at least hotRepTarget repetitions.
	if budget := (lead+maxTail)/hotRepTarget - lead - cy.IndexBytes; budget > 0 && cy.HotBytes > budget {
		t.Errorf("HotBytes = %d exceeds the repetition budget %d", cy.HotBytes, budget)
	}
	if len(cy.HotDocs) > 0 && cy.IndexRepetitions() < hotRepTarget {
		t.Errorf("hot docs selected but only %d repetitions survive (target %d)", cy.IndexRepetitions(), hotRepTarget)
	}
	// Hot docs are the plan's prefix, contiguous on channel 0.
	off := 0
	for i, p := range cy.HotDocs {
		if p.ID != cy.Docs[i].ID {
			t.Errorf("hot doc %d is %d, plan prefix has %d", i, p.ID, cy.Docs[i].ID)
		}
		if p.Channel != 0 {
			t.Errorf("hot doc %d placed on channel %d", p.ID, p.Channel)
		}
		if p.Offset != off {
			t.Errorf("hot doc %d at offset %d, want contiguous %d", p.ID, p.Offset, off)
		}
		off += p.Size
	}
	if cy.HotBytes != off {
		t.Errorf("HotBytes = %d, hot docs sum to %d", cy.HotBytes, off)
	}
	// The index channel's advertised payload excludes the hot section: hot
	// documents stream once on their data channel, the index-channel copies
	// are air-time replication only.
	if want := cy.HeadBytes + cy.DirBytes + cy.IndexBytes; cy.Channels[0].Bytes != want {
		t.Errorf("index channel Bytes = %d, want %d (hot section excluded)", cy.Channels[0].Bytes, want)
	}
}

func TestSyncAfterBoundaries(t *testing.T) {
	const k = 4
	_, cy := buildMultichannel(t, k)
	reps := cy.IndexRepetitions()
	if reps < 2 {
		t.Fatalf("fixture airs only %d repetitions; boundaries need at least 2", reps)
	}
	unit := int64(cy.HeadBytes+cy.DirBytes+cy.IndexBytes+cy.HotBytes) * int64(k)
	tierRead := int64(cy.HeadBytes+cy.DirBytes+cy.IndexBytes) * int64(k)
	for r := 0; r < reps; r++ {
		repStart := cy.Start + int64(r)*unit
		sync, ok := cy.SyncAfter(repStart)
		if !ok {
			t.Fatalf("no sync point at repetition %d start", r)
		}
		if want := repStart + tierRead; sync != want {
			t.Errorf("SyncAfter(rep %d start) = %d, want tier end %d", r, sync, want)
		}
		if r > 0 {
			// Tuning in just after a repetition starts means waiting for
			// the next one.
			late, ok := cy.SyncAfter(repStart - unit + 1)
			if !ok || late != repStart+tierRead {
				t.Errorf("SyncAfter(mid repetition %d) = %d ok=%v, want next tier end %d", r-1, late, ok, repStart+tierRead)
			}
		}
	}
	// Past the last repetition's start there is nothing left to sync on.
	if _, ok := cy.SyncAfter(cy.Start + int64(reps-1)*unit + 1); ok {
		t.Error("SyncAfter past the last repetition start still reports a sync point")
	}
	// Before the cycle the first repetition serves.
	if sync, ok := cy.SyncAfter(cy.Start - 1000); !ok || sync != cy.Start+tierRead {
		t.Errorf("SyncAfter(before cycle) = %d ok=%v, want first tier end %d", sync, ok, cy.Start+tierRead)
	}
}

func TestCommitmentsHotAirings(t *testing.T) {
	const k = 4
	_, cy := buildMultichannel(t, k)
	if len(cy.HotDocs) == 0 {
		t.Skip("fixture selects no hot docs")
	}
	reps := cy.IndexRepetitions()
	if reps < 2 {
		t.Skip("fixture airs a single repetition")
	}
	// A client syncing on the last repetition has missed every first airing
	// on the data channels; the hot section behind the last tier (plus any
	// data-channel replays still to come) must still cover the hot set.
	unit := int64(cy.HeadBytes+cy.DirBytes+cy.IndexBytes+cy.HotBytes) * int64(k)
	ready, ok := cy.SyncAfter(cy.Start + int64(reps-1)*unit)
	if !ok {
		t.Fatal("no sync point at the last repetition")
	}
	want := make(map[xmldoc.DocID]struct{}, len(cy.HotDocs))
	for _, p := range cy.HotDocs {
		want[p.ID] = struct{}{}
	}
	got := cy.CommitmentsFrom(want, ready, nil)
	if len(got) != len(want) {
		t.Fatalf("late sync commits %d of %d hot docs", len(got), len(want))
	}
	for _, cm := range got {
		if cm.Start < ready {
			t.Errorf("hot doc %d committed at %d, before the client synced at %d", cm.ID, cm.Start, ready)
		}
		if cm.End > cy.End() {
			t.Errorf("hot doc %d committed past cycle end", cm.ID)
		}
	}
}

func TestReceivableSingleChannel(t *testing.T) {
	c, queries := testSetup(t)
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatal(err)
	}
	plan := make([]xmldoc.DocID, 0, c.Len())
	for _, d := range c.Docs() {
		plan = append(plan, d.ID)
	}
	cy, err := b.BuildCycle(0, 0, queries[:4], plan)
	if err != nil {
		t.Fatal(err)
	}
	want := map[xmldoc.DocID]struct{}{plan[0]: {}, plan[3]: {}}
	got := cy.Receivable(want, true)
	if len(got) != len(want) {
		t.Errorf("single channel: %d of %d wanted docs receivable", len(got), len(want))
	}
}

func TestReceivableMultichannel(t *testing.T) {
	_, cy := buildMultichannel(t, 3)
	want := make(map[xmldoc.DocID]struct{}, len(cy.Docs))
	for _, p := range cy.Docs {
		want[p.ID] = struct{}{}
	}
	got := cy.Commitments(want, false)
	if len(got) == 0 {
		t.Fatal("returning client receives nothing")
	}
	// Commitments carry the airing instance actually chosen — a first
	// airing, a channel replay, or a hot-section repetition — so the
	// overlap check runs on their own intervals, not the first airing.
	for _, cm := range got {
		if cm.Start < cy.DirEnd() {
			t.Errorf("committed doc %d airs before the client holds the directory", cm.ID)
		}
		if cm.End > cy.End() {
			t.Errorf("committed doc %d airs past cycle end (%d > %d)", cm.ID, cm.End, cy.End())
		}
		if cm.End-cm.Start != int64(cy.ChannelCount())*int64(cm.Size) {
			t.Errorf("committed doc %d interval spans %d, want K*size = %d", cm.ID, cm.End-cm.Start, int64(cy.ChannelCount())*int64(cm.Size))
		}
	}
	for i := range got {
		for j := i + 1; j < len(got); j++ {
			if got[i].Start < got[j].End && got[j].Start < got[i].End {
				t.Errorf("committed intervals %d and %d overlap", i, j)
			}
		}
	}
	// A first-cycle client is busy on the first tier longer, so it can
	// never receive more than a returning client.
	first := cy.Receivable(want, true)
	if len(first) > len(got) {
		t.Errorf("first-cycle client receives %d docs, returning client %d", len(first), len(got))
	}
}
