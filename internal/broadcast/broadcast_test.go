package broadcast

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dtd"
	"repro/internal/gen"
	"repro/internal/wire"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func testSetup(t *testing.T) (*xmldoc.Collection, []xpath.Path) {
	t.Helper()
	c, err := gen.Documents(gen.DocConfig{Schema: dtd.NITF(), NumDocs: 12, Seed: 3})
	if err != nil {
		t.Fatalf("Documents: %v", err)
	}
	queries, err := gen.Queries(c, gen.QueryConfig{NumQueries: 20, MaxDepth: 5, WildcardProb: 0.1, Seed: 4})
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	return c, queries
}

func TestNewBuilderInvalidMode(t *testing.T) {
	c, _ := testSetup(t)
	if _, err := NewBuilder(c, core.DefaultSizeModel(), Mode(0)); err == nil {
		t.Error("invalid mode accepted")
	}
}

func TestModeString(t *testing.T) {
	if OneTierMode.String() != "one-tier" || TwoTierMode.String() != "two-tier" {
		t.Error("mode strings wrong")
	}
	if got := Mode(7).String(); got != "Mode(7)" {
		t.Errorf("unknown mode = %q", got)
	}
}

func TestBuildCycleLayout(t *testing.T) {
	c, queries := testSetup(t)
	for _, mode := range []Mode{OneTierMode, TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			b, err := NewBuilder(c, core.DefaultSizeModel(), mode)
			if err != nil {
				t.Fatalf("NewBuilder: %v", err)
			}
			plan := []xmldoc.DocID{c.Docs()[0].ID, c.Docs()[3].ID, c.Docs()[5].ID}
			cy, err := b.BuildCycle(0, 1000, queries, plan)
			if err != nil {
				t.Fatalf("BuildCycle: %v", err)
			}
			if cy.TotalBytes() != cy.HeadBytes+cy.IndexBytes+cy.SecondTierBytes+cy.DocBytes {
				t.Error("TotalBytes inconsistent")
			}
			if cy.Start != 1000 || cy.End() != 1000+int64(cy.TotalBytes()) {
				t.Error("start/end inconsistent")
			}
			if cy.IndexStart() != 1000+int64(cy.HeadBytes) {
				t.Error("IndexStart wrong")
			}
			if cy.DocStart() != cy.SecondTierStart()+int64(cy.SecondTierBytes) {
				t.Error("DocStart wrong")
			}
			if mode == OneTierMode && cy.SecondTierBytes != 0 {
				t.Error("one-tier cycle has a second tier")
			}
			if mode == TwoTierMode && cy.SecondTierBytes != wire.SecondTierSize(len(plan), core.DefaultSizeModel()) {
				t.Errorf("SecondTierBytes = %d", cy.SecondTierBytes)
			}
			// Document placements are dense and ordered.
			offset := 0
			for i, p := range cy.Docs {
				if p.ID != plan[i] {
					t.Errorf("doc %d = %d, want %d", i, p.ID, plan[i])
				}
				if p.Offset != offset {
					t.Errorf("doc %d offset = %d, want %d", i, p.Offset, offset)
				}
				if p.Size != c.ByID(p.ID).Size() {
					t.Errorf("doc %d size mismatch", i)
				}
				offset += p.Size
			}
			if cy.DocBytes != offset {
				t.Errorf("DocBytes = %d, want %d", cy.DocBytes, offset)
			}
			if pl, ok := cy.Placement(plan[1]); !ok || pl.ID != plan[1] {
				t.Error("Placement lookup failed")
			}
			if _, ok := cy.Placement(9999); ok {
				t.Error("Placement found unscheduled doc")
			}
			// The cycle index is pruned: answers for pending queries match CI.
			for _, q := range queries[:5] {
				want := b.CI().Lookup(q).Docs
				got := cy.Index.Lookup(q).Docs
				if len(want) != len(got) {
					t.Errorf("query %s: PCI %v vs CI %v", q, got, want)
				}
			}
		})
	}
}

func TestBuildCyclePlanErrors(t *testing.T) {
	c, queries := testSetup(t)
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	id := c.Docs()[0].ID
	if _, err := b.BuildCycle(0, 0, queries, []xmldoc.DocID{id, id}); err == nil {
		t.Error("duplicate plan accepted")
	}
	if _, err := b.BuildCycle(0, 0, queries, []xmldoc.DocID{9999}); err == nil {
		t.Error("unknown doc accepted")
	}
}

func TestEncodeCycleRoundTrip(t *testing.T) {
	c, queries := testSetup(t)
	for _, mode := range []Mode{OneTierMode, TwoTierMode} {
		t.Run(mode.String(), func(t *testing.T) {
			b, err := NewBuilder(c, core.DefaultSizeModel(), mode)
			if err != nil {
				t.Fatalf("NewBuilder: %v", err)
			}
			plan := []xmldoc.DocID{c.Docs()[1].ID, c.Docs()[2].ID}
			cy, err := b.BuildCycle(0, 0, queries, plan)
			if err != nil {
				t.Fatalf("BuildCycle: %v", err)
			}
			indexSeg, stSeg, err := b.Encode(cy)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			if len(indexSeg) != cy.Packing.StreamBytes {
				t.Errorf("index segment %d bytes, want %d", len(indexSeg), cy.Packing.StreamBytes)
			}
			tier := core.OneTier
			if mode == TwoTierMode {
				tier = core.FirstTier
			}
			back, offs, err := wire.DecodeIndex(indexSeg, core.DefaultSizeModel(), tier, cy.Catalog)
			if err != nil {
				t.Fatalf("DecodeIndex: %v", err)
			}
			if err := wire.ApplyRootLabels(back, wire.RootLabels(cy.Index)); err != nil {
				t.Fatalf("ApplyRootLabels: %v", err)
			}
			if back.NumNodes() != cy.Index.NumNodes() {
				t.Errorf("decoded %d nodes, want %d", back.NumNodes(), cy.Index.NumNodes())
			}
			if mode == OneTierMode {
				// Every scheduled doc's offset must be recoverable.
				for _, p := range cy.Docs {
					if got, ok := offs[p.ID]; !ok || got != uint64(p.Offset) {
						t.Errorf("decoded offset for doc %d = %d,%v want %d", p.ID, got, ok, p.Offset)
					}
				}
				if stSeg != nil {
					t.Error("one-tier produced a second tier")
				}
			} else {
				entries, err := wire.DecodeSecondTier(stSeg, core.DefaultSizeModel())
				if err != nil {
					t.Fatalf("DecodeSecondTier: %v", err)
				}
				if len(entries) != len(plan) {
					t.Errorf("second tier has %d entries, want %d", len(entries), len(plan))
				}
				for _, e := range entries {
					if p, ok := cy.Placement(e.Doc); !ok || uint64(p.Offset) != e.Offset {
						t.Errorf("second tier entry %v mismatches placement", e)
					}
				}
			}
		})
	}
}

func TestEmptyCycle(t *testing.T) {
	c, _ := testSetup(t)
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	cy, err := b.BuildCycle(0, 0, nil, nil)
	if err != nil {
		t.Fatalf("BuildCycle: %v", err)
	}
	if cy.Index.NumNodes() != 0 || cy.DocBytes != 0 {
		t.Errorf("empty cycle not empty: %d nodes, %d doc bytes", cy.Index.NumNodes(), cy.DocBytes)
	}
	if cy.TotalBytes() <= 0 {
		t.Error("empty cycle should still carry a head")
	}
}
