package broadcast

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/xmldoc"
	"repro/internal/xpath"
)

func dynBuilder(t *testing.T) (*Builder, *xmldoc.Collection) {
	t.Helper()
	c, queries := testSetup(t)
	_ = queries
	b, err := NewBuilder(c, core.DefaultSizeModel(), TwoTierMode)
	if err != nil {
		t.Fatalf("NewBuilder: %v", err)
	}
	return b, c
}

func TestBuilderAddDocument(t *testing.T) {
	b, c := dynBuilder(t)
	before := b.CI().NumNodes()
	fresh := xmldoc.NewDocument(9001, xmldoc.El("nitf",
		xmldoc.El("head", xmldoc.El("brandnewlabel"))))
	if err := b.AddDocument(fresh); err != nil {
		t.Fatalf("AddDocument: %v", err)
	}
	if b.NumDocs() != c.Len()+1 {
		t.Errorf("NumDocs = %d, want %d", b.NumDocs(), c.Len()+1)
	}
	// The CI gained the new path and answers queries for it.
	if b.CI().NumNodes() <= before {
		t.Error("CI did not grow after add")
	}
	q := xpath.MustParse("/nitf/head/brandnewlabel")
	if got := b.CI().Lookup(q).Docs; !reflect.DeepEqual(got, []xmldoc.DocID{9001}) {
		t.Errorf("lookup after add = %v", got)
	}
	// And it is schedulable in a cycle.
	cy, err := b.BuildCycle(0, 0, []xpath.Path{q}, []xmldoc.DocID{9001})
	if err != nil {
		t.Fatalf("BuildCycle: %v", err)
	}
	if got := cy.Index.Lookup(q).Docs; !reflect.DeepEqual(got, []xmldoc.DocID{9001}) {
		t.Errorf("cycle PCI lookup = %v", got)
	}
	// Duplicate IDs are rejected.
	if err := b.AddDocument(fresh); err == nil {
		t.Error("duplicate add succeeded")
	}
	if err := b.AddDocument(&xmldoc.Document{ID: 9002}); err == nil {
		t.Error("empty document added")
	}
}

func TestBuilderRemoveDocument(t *testing.T) {
	b, c := dynBuilder(t)
	victim := c.Docs()[0].ID
	if err := b.RemoveDocument(victim); err != nil {
		t.Fatalf("RemoveDocument: %v", err)
	}
	if b.NumDocs() != c.Len()-1 {
		t.Errorf("NumDocs = %d", b.NumDocs())
	}
	if b.DocByID(victim) != nil {
		t.Error("removed document still resolvable")
	}
	// No lookup over the maintained CI may return the removed document.
	q := xpath.MustParse("/nitf")
	for _, d := range b.CI().Lookup(q).Docs {
		if d == victim {
			t.Error("removed document still indexed")
		}
	}
	// The maintained CI equals a fresh build over the survivors.
	snap, err := b.Collection()
	if err != nil {
		t.Fatalf("Collection: %v", err)
	}
	fresh, err := core.BuildCI(snap, core.DefaultSizeModel())
	if err != nil {
		t.Fatalf("BuildCI: %v", err)
	}
	if b.CI().NumNodes() != fresh.NumNodes() || b.CI().NumAttachments() != fresh.NumAttachments() {
		t.Errorf("maintained CI (%d nodes, %d att) differs from rebuild (%d, %d)",
			b.CI().NumNodes(), b.CI().NumAttachments(), fresh.NumNodes(), fresh.NumAttachments())
	}
	// Planning the removed document now fails.
	if _, err := b.BuildCycle(0, 0, nil, []xmldoc.DocID{victim}); err == nil {
		t.Error("cycle planned a removed document")
	}
	if err := b.RemoveDocument(victim); err == nil {
		t.Error("double removal succeeded")
	}
}

func TestBuilderCollectionSnapshotCaching(t *testing.T) {
	b, c := dynBuilder(t)
	s1, err := b.Collection()
	if err != nil {
		t.Fatalf("Collection: %v", err)
	}
	if s1 != c {
		t.Error("initial snapshot should be the constructor collection")
	}
	if err := b.RemoveDocument(c.Docs()[1].ID); err != nil {
		t.Fatalf("RemoveDocument: %v", err)
	}
	s2, err := b.Collection()
	if err != nil {
		t.Fatalf("Collection: %v", err)
	}
	if s2 == s1 || s2.Len() != c.Len()-1 {
		t.Error("snapshot not refreshed after mutation")
	}
	s3, err := b.Collection()
	if err != nil {
		t.Fatalf("Collection: %v", err)
	}
	if s3 != s2 {
		t.Error("snapshot not cached between mutations")
	}
}
