package dtd

import "testing"

func TestBuiltinSchemasValidate(t *testing.T) {
	for _, name := range []string{"nitf", "nasa"} {
		t.Run(name, func(t *testing.T) {
			s := ByName(name)
			if s == nil {
				t.Fatalf("ByName(%q) = nil", name)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if s.Name != name {
				t.Errorf("Name = %q, want %q", s.Name, name)
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if s := ByName("unknown"); s != nil {
		t.Errorf("ByName(unknown) = %v, want nil", s)
	}
}

func TestNITFIsRecursive(t *testing.T) {
	if !NITF().IsRecursive() {
		t.Error("NITF schema should be recursive (block -> bq -> block)")
	}
}

func TestNASAIsNotRecursive(t *testing.T) {
	if NASA().IsRecursive() {
		t.Error("NASA schema should not be recursive")
	}
}

func TestLabelsSortedAndComplete(t *testing.T) {
	s := NITF()
	labels := s.Labels()
	if len(labels) != len(s.Elements) {
		t.Fatalf("Labels() has %d entries, want %d", len(labels), len(s.Elements))
	}
	for i := 1; i < len(labels); i++ {
		if labels[i-1] >= labels[i] {
			t.Fatalf("Labels() not strictly sorted at %d: %q >= %q", i, labels[i-1], labels[i])
		}
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		give *Schema
	}{
		{
			name: "no root",
			give: &Schema{Name: "x", Elements: map[string]*Element{}},
		},
		{
			name: "undeclared root",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{}},
		},
		{
			name: "undeclared child",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
				"a": {Name: "a", Children: []Particle{{Name: "b", Min: 1, Max: 1, Prob: 1}}},
			}},
		},
		{
			name: "bad occurrence",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
				"a": {Name: "a", Children: []Particle{{Name: "a", Min: 2, Max: 1, Prob: 1}}},
			}},
		},
		{
			name: "bad probability",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
				"a": {Name: "a", Children: []Particle{{Name: "a", Min: 0, Max: 1, Prob: 1.5}}},
			}},
		},
		{
			name: "bad text probability",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
				"a": {Name: "a", TextProb: -0.1},
			}},
		},
		{
			name: "mismatched key",
			give: &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
				"a": {Name: "b"},
			}},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.give.Validate(); err == nil {
				t.Error("Validate succeeded, want error")
			}
		})
	}
}

func TestIsRecursiveSimpleCycle(t *testing.T) {
	s := &Schema{Name: "x", Root: "a", Elements: map[string]*Element{
		"a": {Name: "a", Children: []Particle{{Name: "b", Min: 0, Max: 1, Prob: 0.5}}},
		"b": {Name: "b", Children: []Particle{{Name: "a", Min: 0, Max: 1, Prob: 0.5}}},
	}}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if !s.IsRecursive() {
		t.Error("IsRecursive() = false, want true")
	}
}
