package dtd

// NITF returns a schema modelled after the News Industry Text Format DTD used
// in the paper's evaluation: a news document with a metadata head and a body
// whose content blocks recurse through block quotes. The occurrence numbers
// are tuned so that, with the default generator settings, documents average
// roughly 10 KB and expose the deep, label-sharing path structure that makes
// DataGuide merging worthwhile.
func NITF() *Schema {
	return build("nitf", "nitf", []*Element{
		{Name: "nitf", Children: []Particle{
			{Name: "head", Min: 1, Max: 1, Prob: 1},
			{Name: "body", Min: 1, Max: 1, Prob: 1},
		}},

		// --- head ---
		{Name: "head", Children: []Particle{
			{Name: "title", Min: 1, Max: 1, Prob: 1},
			{Name: "meta", Min: 1, Max: 4, Prob: 0.9},
			{Name: "docdata", Min: 1, Max: 1, Prob: 1},
			{Name: "pubdata", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "title", TextProb: 1, TextLen: 48},
		{Name: "meta", TextProb: 0.8, TextLen: 24},
		{Name: "docdata", Children: []Particle{
			{Name: "doc-id", Min: 1, Max: 1, Prob: 1},
			{Name: "urgency", Min: 0, Max: 1, Prob: 0.6},
			{Name: "date-issue", Min: 1, Max: 1, Prob: 1},
			{Name: "du-key", Min: 0, Max: 1, Prob: 0.4},
			{Name: "key-list", Min: 0, Max: 1, Prob: 0.7},
		}},
		{Name: "doc-id", TextProb: 1, TextLen: 16},
		{Name: "urgency", TextProb: 1, TextLen: 2},
		{Name: "date-issue", TextProb: 1, TextLen: 10},
		{Name: "du-key", TextProb: 1, TextLen: 12},
		{Name: "key-list", Children: []Particle{
			{Name: "keyword", Min: 1, Max: 6, Prob: 1},
		}},
		{Name: "keyword", TextProb: 1, TextLen: 10},
		{Name: "pubdata", Children: []Particle{
			{Name: "position-section", Min: 0, Max: 1, Prob: 0.7},
			{Name: "position-sequence", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "position-section", TextProb: 1, TextLen: 12},
		{Name: "position-sequence", TextProb: 1, TextLen: 4},

		// --- body ---
		{Name: "body", Children: []Particle{
			{Name: "body.head", Min: 1, Max: 1, Prob: 1},
			{Name: "body.content", Min: 1, Max: 1, Prob: 1},
			{Name: "body.end", Min: 0, Max: 1, Prob: 0.6},
		}},
		{Name: "body.head", Children: []Particle{
			{Name: "hedline", Min: 1, Max: 1, Prob: 1},
			{Name: "byline", Min: 0, Max: 2, Prob: 0.8},
			{Name: "dateline", Min: 0, Max: 1, Prob: 0.8},
			{Name: "abstract", Min: 0, Max: 1, Prob: 0.7},
		}},
		{Name: "hedline", Children: []Particle{
			{Name: "hl1", Min: 1, Max: 1, Prob: 1},
			{Name: "hl2", Min: 0, Max: 2, Prob: 0.5},
		}},
		{Name: "hl1", TextProb: 1, TextLen: 40},
		{Name: "hl2", TextProb: 1, TextLen: 32},
		{Name: "byline", Children: []Particle{
			{Name: "person", Min: 1, Max: 2, Prob: 1},
			{Name: "byttl", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "person", TextProb: 1, TextLen: 18},
		{Name: "byttl", TextProb: 1, TextLen: 20},
		{Name: "dateline", Children: []Particle{
			{Name: "location", Min: 1, Max: 1, Prob: 1},
			{Name: "story.date", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "location", TextProb: 1, TextLen: 16},
		{Name: "story.date", TextProb: 1, TextLen: 10},
		{Name: "abstract", Children: []Particle{
			{Name: "p", Min: 1, Max: 2, Prob: 1},
		}},

		{Name: "body.content", Children: []Particle{
			{Name: "block", Min: 2, Max: 6, Prob: 1},
		}},
		// block is the recursive workhorse: paragraphs plus optional media,
		// tables and nested block quotes.
		{Name: "block", Children: []Particle{
			{Name: "p", Min: 1, Max: 6, Prob: 1},
			{Name: "media", Min: 0, Max: 2, Prob: 0.4},
			{Name: "table", Min: 0, Max: 1, Prob: 0.2},
			{Name: "bq", Min: 0, Max: 1, Prob: 0.25},
			{Name: "note", Min: 0, Max: 1, Prob: 0.2},
			{Name: "hl2", Min: 0, Max: 1, Prob: 0.3},
		}},
		{Name: "p", TextProb: 1, TextLen: 160},
		{Name: "media", Children: []Particle{
			{Name: "media-reference", Min: 1, Max: 1, Prob: 1},
			{Name: "media-caption", Min: 0, Max: 1, Prob: 0.8},
			{Name: "media-producer", Min: 0, Max: 1, Prob: 0.4},
		}},
		{Name: "media-reference", TextProb: 1, TextLen: 30},
		{Name: "media-caption", TextProb: 1, TextLen: 60},
		{Name: "media-producer", TextProb: 1, TextLen: 20},
		{Name: "table", Children: []Particle{
			{Name: "tr", Min: 2, Max: 5, Prob: 1},
		}},
		{Name: "tr", Children: []Particle{
			{Name: "td", Min: 2, Max: 4, Prob: 1},
		}},
		{Name: "td", TextProb: 1, TextLen: 12},
		{Name: "bq", Children: []Particle{
			{Name: "block", Min: 1, Max: 1, Prob: 1},
			{Name: "credit", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "credit", TextProb: 1, TextLen: 20},
		{Name: "note", Children: []Particle{
			{Name: "body.content", Min: 1, Max: 1, Prob: 1},
		}},

		{Name: "body.end", Children: []Particle{
			{Name: "tagline", Min: 0, Max: 1, Prob: 0.7},
			{Name: "bibliography", Min: 0, Max: 1, Prob: 0.3},
		}},
		{Name: "tagline", TextProb: 1, TextLen: 24},
		{Name: "bibliography", TextProb: 1, TextLen: 60},
	})
}

// NASA returns a schema modelled after the NASA astronomy XML dataset the
// paper uses as its second document set: per-dataset metadata with reference
// chains, field tables and ingest history.
func NASA() *Schema {
	return build("nasa", "dataset", []*Element{
		{Name: "dataset", Children: []Particle{
			{Name: "title", Min: 1, Max: 1, Prob: 1},
			{Name: "altname", Min: 0, Max: 3, Prob: 0.6},
			{Name: "reference", Min: 1, Max: 3, Prob: 1},
			{Name: "keywords", Min: 0, Max: 1, Prob: 0.8},
			{Name: "descriptions", Min: 1, Max: 1, Prob: 1},
			{Name: "tableHead", Min: 1, Max: 1, Prob: 1},
			{Name: "history", Min: 1, Max: 1, Prob: 1},
			{Name: "identifier", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "title", TextProb: 1, TextLen: 50},
		{Name: "altname", TextProb: 1, TextLen: 20},
		{Name: "identifier", TextProb: 1, TextLen: 14},

		{Name: "reference", Children: []Particle{
			{Name: "source", Min: 1, Max: 1, Prob: 1},
			{Name: "related", Min: 0, Max: 2, Prob: 0.3},
		}},
		{Name: "source", Children: []Particle{
			{Name: "other", Min: 0, Max: 1, Prob: 0.5},
			{Name: "journal", Min: 0, Max: 1, Prob: 0.6},
		}},
		{Name: "other", Children: []Particle{
			{Name: "title", Min: 1, Max: 1, Prob: 1},
			{Name: "author", Min: 1, Max: 3, Prob: 1},
			{Name: "name", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "journal", Children: []Particle{
			{Name: "title", Min: 1, Max: 1, Prob: 1},
			{Name: "author", Min: 1, Max: 4, Prob: 1},
			{Name: "volume", Min: 0, Max: 1, Prob: 0.8},
		}},
		{Name: "author", Children: []Particle{
			{Name: "lastName", Min: 1, Max: 1, Prob: 1},
			{Name: "initial", Min: 0, Max: 2, Prob: 0.8},
		}},
		{Name: "lastName", TextProb: 1, TextLen: 12},
		{Name: "initial", TextProb: 1, TextLen: 2},
		{Name: "name", TextProb: 1, TextLen: 20},
		{Name: "volume", TextProb: 1, TextLen: 4},
		{Name: "related", TextProb: 1, TextLen: 30},

		{Name: "keywords", Children: []Particle{
			{Name: "keyword", Min: 1, Max: 8, Prob: 1},
		}},
		{Name: "keyword", TextProb: 1, TextLen: 12},

		{Name: "descriptions", Children: []Particle{
			{Name: "description", Min: 1, Max: 2, Prob: 1},
			{Name: "details", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "description", Children: []Particle{
			{Name: "para", Min: 1, Max: 6, Prob: 1},
		}},
		{Name: "para", TextProb: 1, TextLen: 200},
		{Name: "details", Children: []Particle{
			{Name: "para", Min: 1, Max: 3, Prob: 1},
		}},

		{Name: "tableHead", Children: []Particle{
			{Name: "tableLinks", Min: 0, Max: 1, Prob: 0.7},
			{Name: "fields", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "tableLinks", Children: []Particle{
			{Name: "tableLink", Min: 1, Max: 4, Prob: 1},
		}},
		{Name: "tableLink", TextProb: 1, TextLen: 24},
		{Name: "fields", Children: []Particle{
			{Name: "field", Min: 2, Max: 10, Prob: 1},
		}},
		{Name: "field", Children: []Particle{
			{Name: "name", Min: 1, Max: 1, Prob: 1},
			{Name: "definition", Min: 0, Max: 1, Prob: 0.8},
			{Name: "units", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "definition", TextProb: 1, TextLen: 40},
		{Name: "units", TextProb: 1, TextLen: 8},

		{Name: "history", Children: []Particle{
			{Name: "ingest", Min: 1, Max: 2, Prob: 1},
			{Name: "revision", Min: 0, Max: 3, Prob: 0.5},
		}},
		{Name: "ingest", Children: []Particle{
			{Name: "creator", Min: 1, Max: 1, Prob: 1},
			{Name: "date", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "creator", Children: []Particle{
			{Name: "lastName", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "revision", Children: []Particle{
			{Name: "date", Min: 1, Max: 1, Prob: 1},
			{Name: "description", Min: 0, Max: 1, Prob: 0.5},
		}},
		{Name: "date", Children: []Particle{
			{Name: "year", Min: 1, Max: 1, Prob: 1},
			{Name: "month", Min: 1, Max: 1, Prob: 1},
			{Name: "day", Min: 1, Max: 1, Prob: 1},
		}},
		{Name: "year", TextProb: 1, TextLen: 4},
		{Name: "month", TextProb: 1, TextLen: 2},
		{Name: "day", TextProb: 1, TextLen: 2},
	})
}

// ByName returns a built-in schema by name ("nitf" or "nasa"), or nil.
func ByName(name string) *Schema {
	switch name {
	case "nitf":
		return NITF()
	case "nasa":
		return NASA()
	default:
		return nil
	}
}
