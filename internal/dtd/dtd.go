// Package dtd models the part of a document type definition that matters for
// synthetic XML generation: which elements exist, which children each element
// may contain (with occurrence bounds and inclusion probabilities), and how
// much character data an element typically carries.
//
// It stands in for the DTDs fed to the IBM XML Generator in the paper's
// evaluation (News Industry Text Format, and the NASA astronomy dataset). The
// air index only depends on the label-path distribution of the generated
// documents, which these schemas mirror.
package dtd

import (
	"fmt"
	"sort"
)

// Particle is one candidate child of an element.
type Particle struct {
	// Name of the child element. Must be declared in the schema.
	Name string
	// Min and Max bound how many instances are generated when the particle
	// is included. Max must be >= Min >= 0.
	Min, Max int
	// Prob is the probability that the particle is included at all.
	// 1 means mandatory.
	Prob float64
}

// Element declares one element type.
type Element struct {
	// Name is the element label.
	Name string
	// Children are the candidate child particles, generated in order.
	Children []Particle
	// TextProb is the probability a generated instance carries character
	// data (only meaningful for elements that may be leaves).
	TextProb float64
	// TextLen is the mean character-data length in bytes.
	TextLen int
}

// Schema is a set of element declarations with a designated root.
type Schema struct {
	// Name identifies the schema (e.g. "nitf").
	Name string
	// Root is the document element label.
	Root string
	// Elements maps label to declaration.
	Elements map[string]*Element
}

// Validate checks internal consistency: the root is declared, every particle
// references a declared element, and occurrence bounds are sane.
func (s *Schema) Validate() error {
	if s.Root == "" {
		return fmt.Errorf("dtd: schema %q has no root", s.Name)
	}
	if _, ok := s.Elements[s.Root]; !ok {
		return fmt.Errorf("dtd: schema %q root %q not declared", s.Name, s.Root)
	}
	for name, el := range s.Elements {
		if el.Name != name {
			return fmt.Errorf("dtd: schema %q element %q declared under key %q", s.Name, el.Name, name)
		}
		for _, p := range el.Children {
			if _, ok := s.Elements[p.Name]; !ok {
				return fmt.Errorf("dtd: schema %q element %q references undeclared child %q", s.Name, name, p.Name)
			}
			if p.Min < 0 || p.Max < p.Min {
				return fmt.Errorf("dtd: schema %q element %q child %q has bad occurrence [%d,%d]", s.Name, name, p.Name, p.Min, p.Max)
			}
			if p.Prob < 0 || p.Prob > 1 {
				return fmt.Errorf("dtd: schema %q element %q child %q has bad probability %g", s.Name, name, p.Name, p.Prob)
			}
		}
		if el.TextProb < 0 || el.TextProb > 1 {
			return fmt.Errorf("dtd: schema %q element %q has bad text probability %g", s.Name, name, el.TextProb)
		}
	}
	return nil
}

// Labels returns the sorted element labels of the schema.
func (s *Schema) Labels() []string {
	labels := make([]string, 0, len(s.Elements))
	for l := range s.Elements {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	return labels
}

// IsRecursive reports whether any element can (transitively) contain itself.
// Generators must enforce a depth cap for recursive schemas.
func (s *Schema) IsRecursive() bool {
	// Colour-based DFS cycle detection over the child graph.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	colour := make(map[string]int, len(s.Elements))
	var visit func(string) bool
	visit = func(name string) bool {
		colour[name] = grey
		for _, p := range s.Elements[name].Children {
			switch colour[p.Name] {
			case grey:
				return true
			case white:
				if visit(p.Name) {
					return true
				}
			}
		}
		colour[name] = black
		return false
	}
	for name := range s.Elements {
		if colour[name] == white && visit(name) {
			return true
		}
	}
	return false
}

// build assembles a schema from a list of elements, panicking on an invalid
// definition. It is used only for the package's built-in schemas, which are
// validated by tests; user-defined schemas should call Validate directly.
func build(name, root string, els []*Element) *Schema {
	m := make(map[string]*Element, len(els))
	for _, el := range els {
		m[el.Name] = el
	}
	s := &Schema{Name: name, Root: root, Elements: m}
	if err := s.Validate(); err != nil {
		panic(err)
	}
	return s
}
