package exp

import (
	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/docindex"
	"repro/internal/stats"
)

// BaselinePerDocument reproduces the paper's §1 comparison against the
// per-document indexing of [2]/[10] (footnote 1: "the smallest index size
// [of [2]] is close to 10% of the total data size while our index size can
// be reduced to 0.1%~0.5%"): the same workload is served by (a) a flat
// broadcast where every document carries its own index and the client has no
// overall picture, and (b) the on-demand two-tier organisation.
func BaselinePerDocument(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	coll, err := cfg.documents()
	if err != nil {
		return nil, err
	}
	queries, err := cfg.queries(coll, cfg.NQ, cfg.P, cfg.DQ)
	if err != nil {
		return nil, err
	}

	// (a) per-document indexing [2]: one full pass per query.
	perDoc, err := docindex.NewBroadcast(coll, cfg.Model)
	if err != nil {
		return nil, err
	}
	var perDocIdxTT, perDocDocTT, perDocAccess float64
	for _, q := range queries {
		r := perDoc.Tune(q)
		perDocIdxTT += float64(r.IndexTuningBytes)
		perDocDocTT += float64(r.DocTuningBytes)
		perDocAccess += float64(r.AccessBytes)
	}
	perDocIdxTT /= float64(len(queries))
	perDocDocTT /= float64(len(queries))
	perDocAccess /= float64(len(queries))

	// (b) the two-tier on-demand organisation on the same workload.
	two, err := cfg.modeRun(broadcast.TwoTierMode, cfg.NQ, cfg.P, cfg.DQ)
	if err != nil {
		return nil, err
	}
	ci, err := core.BuildCI(coll, cfg.Model)
	if err != nil {
		return nil, err
	}
	pci, _, err := ci.Prune(queries)
	if err != nil {
		return nil, err
	}

	// (c) no index at all (§2.3's strawman): the client exhaustively
	// listens and filters locally, so its radio is active for its entire
	// access window.
	noIndexTT := two.MeanAccessBytes()

	data := float64(coll.TotalSize())
	tbl := &stats.Table{
		Title:   "Baseline — no index (§2.3) vs per-document index [2] vs two-tier PCI",
		Columns: []string{"metric", "no index", "per-document [2]", "two-tier PCI"},
	}
	tbl.AddRow("index bytes on air",
		0, perDoc.IndexBytes(), pci.Size(core.FirstTier))
	tbl.AddRow("index / data (%)",
		0.0,
		100*float64(perDoc.IndexBytes())/data,
		100*float64(pci.Size(core.FirstTier))/data)
	tbl.AddRow("index tuning per query (B)",
		0, perDocIdxTT, two.MeanIndexTuningBytes())
	tbl.AddRow("total tuning per query (B)",
		noIndexTT, perDocIdxTT+perDocDocTT, two.MeanIndexTuningBytes()+two.MeanDocTuningBytes())
	tbl.AddRow("access per query (B)",
		two.MeanAccessBytes(), perDocAccess, two.MeanAccessBytes())
	tbl.AddRow("client knows result count", "no", "no (monitors everything)", "yes (first tier)")
	return tbl, nil
}
