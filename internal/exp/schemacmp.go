package exp

import (
	"fmt"

	"repro/internal/broadcast"
	"repro/internal/core"
	"repro/internal/stats"
)

// SchemaCompare reproduces the paper's NASA replication claim (§4.1: "we
// evaluate the performance of our approaches using another document set
// (NASA). As the findings are pretty much the same, we omit the result"):
// the headline metrics are computed on both document sets side by side so
// the sameness is checkable rather than asserted.
func SchemaCompare(cfg Config) (*stats.Table, error) {
	cfg = cfg.withDefaults()
	tbl := &stats.Table{
		Title: "Replication — NITF vs NASA document sets (default workload)",
		Columns: []string{"schema", "data(B)", "CI/data(%)", "PCI/CI(%)",
			"TT one-tier", "TT two-tier", "ratio", "cycles/query"},
	}
	for _, schema := range []string{"nitf", "nasa"} {
		c := cfg
		c.Schema = schema
		coll, err := c.documents()
		if err != nil {
			return nil, fmt.Errorf("exp: schema %s: %w", schema, err)
		}
		ci, err := core.BuildCI(coll, c.Model)
		if err != nil {
			return nil, err
		}
		queries, err := c.queries(coll, c.NQ, c.P, c.DQ)
		if err != nil {
			return nil, err
		}
		pci, _, err := ci.Prune(queries)
		if err != nil {
			return nil, err
		}
		one, err := c.modeRun(broadcast.OneTierMode, c.NQ, c.P, c.DQ)
		if err != nil {
			return nil, err
		}
		two, err := c.modeRun(broadcast.TwoTierMode, c.NQ, c.P, c.DQ)
		if err != nil {
			return nil, err
		}
		data := float64(coll.TotalSize())
		tbl.AddRow(schema, coll.TotalSize(),
			100*float64(ci.Size(core.OneTier))/data,
			100*float64(pci.Size(core.OneTier))/float64(ci.Size(core.OneTier)),
			one.MeanIndexTuningBytes(), two.MeanIndexTuningBytes(),
			one.MeanIndexTuningBytes()/two.MeanIndexTuningBytes(),
			two.MeanCyclesListened())
	}
	return tbl, nil
}
